package peering

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/chaos"
	"repro/internal/inet"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

// waitChaos is waitFor with a deadline sized for backoff ladders and
// graceful-restart windows.
func waitChaos(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// chaosTestbed is multiPoPTestbed with a fault injector threaded through
// every transport and a resilient client.
func chaosTestbed(t *testing.T) (*Platform, *PoP, *PoP, *Client, *chaos.Injector) {
	t.Helper()
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)

	inj := chaos.New(chaos.Config{Seed: 7, Logf: t.Logf})
	p := NewPlatform(PlatformConfig{ASN: 47065, Topology: topo, Chaos: inj})
	popA, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	popB, err := p.AddPoP(PoPConfig{
		Name: "seattle", RouterID: addr("198.51.100.2"),
		LocalPool: pfx("127.66.0.0/16"), ExpLAN: pfx("100.66.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectBackbone(popA, popB, 400e6, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := popA.ConnectTransit(1000, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := popB.ConnectPeer(10000, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Proposal{
		Name: "soak", Owner: "alice", Plan: "chaos soak",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("soak", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("soak", key, expASN)
	c.SetResilient(true)
	return p, popA, popB, c, inj
}

// clientView canonicalizes a client's learned routes at a PoP by
// prefix, path ID, and AS path. Next hops are excluded: a reconnected
// tunnel is assigned a fresh address, but the routes themselves must
// come back identical.
func clientView(c *Client, popName string) string {
	var b strings.Builder
	for _, p := range c.Routes(popName) {
		fmt.Fprintf(&b, "%s|%d|%v\n", p.Prefix, p.ID, p.Attrs.ASPathFlat())
	}
	return b.String()
}

// tableView canonicalizes a RIB by prefix, ID, and owner.
func tableView(tbl *rib.Table) string {
	var lines []string
	tbl.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		for _, p := range paths {
			lines = append(lines, fmt.Sprintf("%s|%d|%s", prefix, p.ID, p.Peer))
		}
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// tableStale counts stale paths in a RIB.
func tableStale(tbl *rib.Table) int {
	n := 0
	tbl.Walk(func(_ netip.Prefix, paths []*rib.Path) bool {
		for _, p := range paths {
			if p.Stale {
				n++
			}
		}
		return true
	})
	return n
}

// TestChaosSoakAllSessionClassesRecover is the PR's end-to-end soak: a
// two-PoP platform with every transport behind the fault injector takes
// a scripted kill of each session class — neighbor, experiment, tunnel,
// backbone, plus byte corruption, a link flap, and a whole-PoP
// partition — and after every fault all sessions re-establish (bounded
// backoff), graceful restart retains routes until End-of-RIB, and the
// RIBs reconverge to the no-fault baseline.
func TestChaosSoakAllSessionClassesRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	_, popA, popB, c, inj := chaosTestbed(t)
	reg := telemetry.Default()

	for _, pop := range []*PoP{popA, popB} {
		if err := c.OpenTunnel(pop); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	p224, p225 := pfx("184.164.224.0/24"), pfx("184.164.225.0/24")
	if err := c.Announce("amsix", p224); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("seattle", p225); err != nil {
		t.Fatal(err)
	}

	topo := popA.platform.Topology()
	probe := inet.PrefixForASN(100)
	converged := func() bool {
		// Both client views carry both paths, and each announcement
		// reached the *other* PoP's neighbor through the backbone.
		return len(c.RoutesFor("amsix", probe)) == 2 &&
			len(c.RoutesFor("seattle", probe)) == 2 &&
			topo.Reachable(1000, p224) && topo.Reachable(10000, p224) &&
			topo.Reachable(1000, p225) && topo.Reachable(10000, p225)
	}
	waitChaos(t, "no-fault convergence", converged)

	baseline := clientView(c, "amsix") + clientView(c, "seattle") +
		tableView(popA.Router.ExperimentRoutes()) + tableView(popB.Router.ExperimentRoutes())

	recovered := func() bool {
		for _, pop := range []*PoP{popA, popB} {
			if c.BGPStatus(pop.Name) != bgp.StateEstablished {
				return false
			}
			for _, n := range pop.Router.Neighbors() {
				if tableStale(n.Table) > 0 {
					return false
				}
				if n.Remote {
					// Remote neighbors mirror another PoP's session; they
					// carry a table but no transport of their own.
					continue
				}
				sess := n.Session()
				if sess == nil || sess.State() != bgp.StateEstablished {
					return false
				}
			}
			if tableStale(pop.Router.ExperimentRoutes()) > 0 {
				return false
			}
		}
		if !converged() {
			return false
		}
		now := clientView(c, "amsix") + clientView(c, "seattle") +
			tableView(popA.Router.ExperimentRoutes()) + tableView(popB.Router.ExperimentRoutes())
		return now == baseline
	}

	schedule := []struct {
		desc    string
		fault   chaos.Fault
		kills   bool   // expect at least one supervised session to die and reconnect
		trigger func() // post-injection traffic that makes the fault bite
	}{
		{"neighbor reset at amsix", chaos.Fault{Kind: chaos.Reset, Class: "neighbor", PoP: "amsix"}, true, nil},
		{"experiment control reset at seattle", chaos.Fault{Kind: chaos.Reset, Class: "experiment", PoP: "seattle"}, true, nil},
		{"tunnel carrier reset at amsix", chaos.Fault{Kind: chaos.Reset, Class: "tunnel", PoP: "amsix"}, true, nil},
		{"backbone reset", chaos.Fault{Kind: chaos.Reset, Class: "backbone"}, true, nil},
		// Corruption poisons the next reads; an announcement supplies
		// them (sessions are otherwise quiet between keepalives).
		{"corrupted experiment stream at seattle", chaos.Fault{Kind: chaos.Corrupt, Class: "experiment", PoP: "seattle"}, true,
			func() { _ = c.Announce("seattle", p225) }},
		{"backbone link flap at amsix", chaos.Fault{Kind: chaos.LinkFlap, Name: "bb0:amsix", Duration: 50 * time.Millisecond}, false, nil},
		{"whole-PoP partition of seattle", chaos.Fault{Kind: chaos.Partition, PoP: "seattle"}, true, nil},
	}
	for _, step := range schedule {
		before := reg.Value("bgp_reconnects_total")
		if hit := inj.Inject(step.fault); hit == 0 {
			t.Fatalf("%s: fault matched no targets", step.desc)
		}
		if step.trigger != nil {
			step.trigger()
		}
		if step.kills {
			waitChaos(t, "reconnect after "+step.desc, func() bool {
				return reg.Value("bgp_reconnects_total") > before
			})
		}
		func() {
			deadline := time.Now().Add(20 * time.Second)
			for time.Now().Before(deadline) {
				if recovered() {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			for _, pop := range []*PoP{popA, popB} {
				t.Logf("%s: client BGP %s", pop.Name, c.BGPStatus(pop.Name))
				for _, n := range pop.Router.Neighbors() {
					sess := n.Session()
					st := "nil"
					if sess != nil {
						st = sess.State().String()
					}
					t.Logf("%s/%s: state=%s stale=%d paths=%d", pop.Name, n.Name, st, tableStale(n.Table), n.Table.PathCount())
				}
				t.Logf("%s expRoutes stale=%d view=%q", pop.Name, tableStale(pop.Router.ExperimentRoutes()), tableView(pop.Router.ExperimentRoutes()))
			}
			t.Logf("converged=%v", converged())
			now := clientView(c, "amsix") + clientView(c, "seattle") +
				tableView(popA.Router.ExperimentRoutes()) + tableView(popB.Router.ExperimentRoutes())
			bl := strings.Split(baseline, "\n")
			nw := strings.Split(now, "\n")
			for i := 0; i < len(bl) || i < len(nw); i++ {
				b, n := "", ""
				if i < len(bl) {
					b = bl[i]
				}
				if i < len(nw) {
					n = nw[i]
				}
				if b != n {
					t.Logf("diff line %d: baseline=%q now=%q", i, b, n)
				}
			}
			t.Fatalf("timed out waiting for reconvergence after %s", step.desc)
		}()
	}

	// The control plane is fully live after the soak: a withdrawal and a
	// fresh announcement still propagate end to end.
	if err := c.Withdraw("amsix", p224, 0); err != nil {
		t.Fatal(err)
	}
	waitChaos(t, "post-soak withdrawal propagates", func() bool {
		return popA.Router.ExperimentRoutes().Best(p224) == nil
	})
	if err := c.Announce("amsix", p224); err != nil {
		t.Fatal(err)
	}
	waitChaos(t, "post-soak announcement propagates", converged)

	// Telemetry carries the evidence: every fault counted, reconnects
	// recorded, and the recovery latency histogram populated.
	if got := len(inj.Events()); got < len(schedule) {
		t.Errorf("injector logged %d events, want >= %d", got, len(schedule))
	}
	if v := reg.Value("chaos_faults_total"); v < float64(len(schedule)) {
		t.Errorf("chaos_faults_total = %v, want >= %d", v, len(schedule))
	}
	if v := reg.Value("bgp_reconnects_total"); v < 4 {
		t.Errorf("bgp_reconnects_total = %v, want >= 4 (neighbor, experiment, tunnel, backbone)", v)
	}
	if v := reg.Value("tunnel_reconnect_attempts_total"); v < 2 {
		t.Errorf("tunnel_reconnect_attempts_total = %v, want >= 2", v)
	}
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "bgp_session_recovery_seconds" && s.Kind == telemetry.KindHistogram && s.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("bgp_session_recovery_seconds histogram is empty")
	}
}
