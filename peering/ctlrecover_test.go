package peering

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/ctlplane"
	"repro/internal/rib"
)

// crashSoakPlatform is the two-PoP dataplane the crash soak runs over.
// It deliberately has no control plane: the tests build (and kill, and
// rebuild) control planes over it, because the platform models the
// long-lived PoP routers that survive a peeringd restart.
func crashSoakPlatform(t *testing.T) *Platform {
	t.Helper()
	p := NewPlatform(PlatformConfig{ASN: 47065, Logf: t.Logf})
	popA, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	popB, err := p.AddPoP(PoPConfig{
		Name: "seattle", RouterID: addr("198.51.100.2"),
		LocalPool: pfx("127.66.0.0/16"), ExpLAN: pfx("100.66.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectBackbone(popA, popB, 400e6, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// startRecoverableCP builds a control plane over the platform with a
// durable state dir and optional crash injection.
func startRecoverableCP(t *testing.T, p *Platform, dir string, crasher *chaos.Crasher, onCrash func(any)) *ControlPlane {
	t.Helper()
	cfg := ControlPlaneConfig{
		Reconciler: ctlplane.ReconcilerConfig{
			Resync:         10 * time.Millisecond,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     100 * time.Millisecond,
			ActuationGrace: 2 * time.Second,
			OnCrash:        onCrash,
		},
		StateDir: dir,
		Logf:     t.Logf,
	}
	if crasher != nil {
		cfg.CrashHook = crasher.Hook()
		cfg.Reconciler.CrashHook = crasher.Hook()
	}
	cp, err := NewControlPlane(p, cfg)
	if err != nil {
		t.Fatalf("NewControlPlane: %v", err)
	}
	return cp
}

func soakSpec(name, alloc, ann string, asn uint32) ctlplane.Spec {
	return ctlplane.Spec{
		Name: name, Owner: "alice", ASN: asn,
		Plan:          "crash/restart soak",
		Prefixes:      []string{alloc},
		Announcements: []ctlplane.Announcement{{Prefix: ann, PoPs: []string{"amsix", "seattle"}}},
	}
}

func waitManagedConverged(t *testing.T, cp *ControlPlane, name string, rev int64) {
	t.Helper()
	waitFor(t, name+" converged", func() bool {
		st, ok := cp.Reconciler.ObjectStatusFor(name)
		return ok && st.Phase == ctlplane.PhaseConverged && st.ConvergedRevision >= rev
	})
}

// routeAtom is one installed experiment route, identified by everything
// that must reconverge exactly — but not the next hop, which an adopted
// (graceful-restart-retained) route legitimately keeps from the dead
// process's tunnel allocation.
type routeAtom struct {
	pop    string
	prefix string
	owner  string
	id     uint32
	asPath string
}

// experimentAtoms snapshots the direct experiment routes owned by the
// given experiments across every PoP, counted so duplicates show up.
// Backbone mesh copies (peer "mesh:<pop>") are excluded by the owner
// filter.
func experimentAtoms(p *Platform, owners map[string]bool) map[routeAtom]int {
	atoms := make(map[routeAtom]int)
	for _, popName := range p.PoPs() {
		p.PoP(popName).Router.ExperimentRoutes().Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
			for _, path := range paths {
				if !owners[path.Peer] {
					continue
				}
				a := routeAtom{pop: popName, prefix: prefix.String(), owner: path.Peer, id: uint32(path.ID)}
				if path.Attrs != nil {
					a.asPath = fmt.Sprintf("%v", path.Attrs.ASPathFlat())
				}
				atoms[a]++
			}
			return true
		})
	}
	return atoms
}

// foreignExperimentOwners reports experiment-RIB owners that are neither
// live experiments nor backbone mesh relays: crash orphans.
func foreignExperimentOwners(p *Platform, live map[string]bool) []string {
	found := map[string]bool{}
	for _, popName := range p.PoPs() {
		p.PoP(popName).Router.ExperimentRoutes().Walk(func(_ netip.Prefix, paths []*rib.Path) bool {
			for _, path := range paths {
				if !live[path.Peer] && !strings.HasPrefix(path.Peer, "mesh:") {
					found[path.Peer] = true
				}
			}
			return true
		})
	}
	var out []string
	for name := range found {
		out = append(out, name)
	}
	return out
}

func auditEntries(p *Platform, experiment string) int {
	n := 0
	for _, e := range p.Engine.Audit() {
		if e.Experiment == experiment {
			n++
		}
	}
	return n
}

// killControlPlane simulates SIGKILL's effect on the network: every
// client transport the dead process held is severed abruptly — no BGP
// NOTIFICATION, no tunnel teardown handshake — exactly what the PoP
// routers see when the daemon is killed -9. The routers' graceful
// restart machinery retains the routes as stale.
func killControlPlane(cp *ControlPlane) {
	cp.act.mu.Lock()
	clients := make([]*Client, 0, len(cp.act.runtimes))
	for _, rt := range cp.act.runtimes {
		clients = append(clients, rt.client)
	}
	cp.act.mu.Unlock()
	for _, c := range clients {
		c.mu.Lock()
		conns := make([]*popConn, 0, len(c.conns))
		for _, pc := range c.conns {
			conns = append(conns, pc)
		}
		c.mu.Unlock()
		for _, pc := range conns {
			if tun := pc.transport(); tun != nil {
				tun.Close()
			}
		}
	}
}

// TestControlPlaneCrashRestartSoak is the crash-only acceptance test:
// the control plane is killed at each seeded injection point — before
// the WAL write, after the WAL write but before actuation, and between
// two actuations of one batch — and a fresh control plane recovered
// from the state directory must reconverge to exactly the no-crash
// state: no lost specs beyond the fail-closed contract, no duplicate
// routes, no orphans, and no §4.7 update budget burned re-announcing
// routes graceful restart already retained.
func TestControlPlaneCrashRestartSoak(t *testing.T) {
	cases := []struct {
		point string
		after int
		// inStore: the crash fires inside the test's own Store call (the
		// store commit path); otherwise it fires in the reconciler.
		inStore bool
		// wantExp2: the second spec made it into the durable log before
		// the crash, so recovery must finish converging it.
		wantExp2 bool
	}{
		{point: "pre-wal-write", after: 0, inStore: true, wantExp2: false},
		{point: "post-wal-pre-actuate", after: 0, inStore: true, wantExp2: true},
		// exp-two's first pass is 5 actions (ensure-experiment, two
		// ensure-sessions, two announces); after=4 crashes the batch
		// between the two announces.
		{point: "mid-batch", after: 4, inStore: false, wantExp2: true},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			p := crashSoakPlatform(t)
			dir := t.TempDir()
			crasher := chaos.NewCrasher()
			crashed := make(chan struct{})
			cp1 := startRecoverableCP(t, p, dir, crasher, func(any) { close(crashed) })

			// exp-one converges before the fault: the no-crash baseline.
			obj1, _, err := cp1.Store.Create(soakSpec("exp-one", "184.164.224.0/23", "184.164.224.0/24", expASN))
			if err != nil {
				t.Fatalf("Create exp-one: %v", err)
			}
			waitManagedConverged(t, cp1, "exp-one", obj1.Revision)
			owners := map[string]bool{"exp-one": true}
			baseline := experimentAtoms(p, owners)
			if len(baseline) != 2 {
				t.Fatalf("baseline = %v, want one direct route per PoP", baseline)
			}
			auditBase := auditEntries(p, "exp-one")

			// Arm the crash and drive the mutation that trips it.
			crasher.Arm(tc.point, tc.after)
			spec2 := soakSpec("exp-two", "184.164.228.0/23", "184.164.228.0/24", expASN+1)
			if tc.inStore {
				v := func() (v any) {
					defer func() { v = recover() }()
					cp1.Store.Create(spec2)
					return nil
				}()
				cpanic, ok := v.(chaos.CrashPanic)
				if !ok || cpanic.Point != tc.point {
					t.Fatalf("store crash point recovered %v, want CrashPanic{%s}", v, tc.point)
				}
			} else {
				if _, _, err := cp1.Store.Create(spec2); err != nil {
					t.Fatalf("Create exp-two: %v", err)
				}
				select {
				case <-crashed:
				case <-time.After(5 * time.Second):
					t.Fatal("armed reconciler crash never fired")
				}
			}
			if !crasher.Fired() {
				t.Fatal("crasher did not report firing")
			}

			// The process is dead: sever its transports abruptly and wait
			// for graceful restart to mark the retained routes stale.
			killControlPlane(cp1)
			for _, popName := range []string{"amsix", "seattle"} {
				popName := popName
				waitFor(t, "stale retention at "+popName, func() bool {
					return p.PoP(popName).Router.ExperimentRoutes().StaleCount("exp-one") > 0
				})
			}

			// init respawns peeringd over the same dataplane. The config
			// mirror is controller state and died with the process; the
			// recovery replay rebuilds it from the WAL.
			p.Store = config.NewStore()
			cp2 := startRecoverableCP(t, p, dir, nil, nil)
			t.Cleanup(cp2.Close)

			waitManagedConverged(t, cp2, "exp-one", obj1.Revision)
			objs := cp2.Store.List()
			if tc.wantExp2 {
				owners["exp-two"] = true
				waitManagedConverged(t, cp2, "exp-two", 0)
				if len(objs) != 2 {
					t.Fatalf("recovered %d objects, want exp-one and exp-two: %+v", len(objs), objs)
				}
			} else {
				// The commit died before the durable write: fail-closed
				// means it never happened.
				if len(objs) != 1 || objs[0].Spec.Name != "exp-one" {
					t.Fatalf("recovered objects = %+v, want just exp-one", objs)
				}
				for _, prop := range p.Proposals() {
					if prop.Name == "exp-two" {
						t.Fatal("pre-wal-write crash leaked a proposal for the uncommitted spec")
					}
				}
			}

			// Exact reconvergence: exp-one's installed state is identical
			// to the no-crash baseline (same PoPs, prefixes, path IDs, AS
			// paths), exactly once each.
			got := experimentAtoms(p, owners)
			for atom, n := range got {
				if n != 1 {
					t.Fatalf("duplicate route after recovery: %+v x%d", atom, n)
				}
			}
			var exp2Atoms int
			for atom := range got {
				switch atom.owner {
				case "exp-one":
					if _, ok := baseline[atom]; !ok {
						t.Fatalf("exp-one atom %+v not in baseline %v", atom, baseline)
					}
				case "exp-two":
					exp2Atoms++
				}
			}
			for atom := range baseline {
				if _, ok := got[atom]; !ok {
					t.Fatalf("baseline atom %+v lost across recovery", atom)
				}
			}
			if tc.wantExp2 && exp2Atoms != 2 {
				t.Fatalf("exp-two has %d direct routes after recovery, want 2", exp2Atoms)
			}

			// No stale leftovers: every retained route was adopted (or
			// re-announced) and its stale mark cleared.
			for _, popName := range []string{"amsix", "seattle"} {
				table := p.PoP(popName).Router.ExperimentRoutes()
				for owner := range owners {
					if n := table.StaleCount(owner); n != 0 {
						t.Fatalf("%d stale %s routes at %s after recovery", n, owner, popName)
					}
				}
			}
			// No orphans: nothing in any experiment RIB belongs to an
			// experiment the recovered store does not know.
			if foreign := foreignExperimentOwners(p, owners); len(foreign) != 0 {
				t.Fatalf("orphan owners after recovery: %v", foreign)
			}

			// Budget-free adoption: recovery re-claimed exp-one's retained
			// routes without pushing a single new update through the
			// policy engine.
			if n := auditEntries(p, "exp-one"); n != auditBase {
				t.Fatalf("recovery burned update budget: %d audit entries, want %d", n, auditBase)
			}
		})
	}
}

// TestControlPlaneSweepsCrashOrphans covers the inverse failure: state
// actuated by a dead control plane whose spec did NOT survive (crash
// between actuating and logging). The recovered reconciler must notice
// the ownerless platform state and tear it down — nothing else ever
// will.
func TestControlPlaneSweepsCrashOrphans(t *testing.T) {
	p := crashSoakPlatform(t)

	// Hand-build the leftover: a Managed proposal whose client died with
	// the previous process, its announcement retained stale by graceful
	// restart.
	ghostPfx := pfx("184.164.230.0/24")
	if err := p.Submit(Proposal{
		Name: "ghost", Owner: "alice", Plan: "crash leftover",
		Prefixes: []netip.Prefix{ghostPfx}, ASNs: []uint32{expASN},
		Managed: true,
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	ghost := NewClient("ghost", key, expASN)
	ghost.GR = clientGRTime
	if err := ghost.OpenTunnel(p.PoP("seattle")); err != nil {
		t.Fatal(err)
	}
	if err := ghost.StartBGP("seattle"); err != nil {
		t.Fatal(err)
	}
	if err := ghost.WaitEstablished("seattle", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ghost.Announce("seattle", ghostPfx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ghost route installed", func() bool {
		return len(directPaths(p, "seattle", ghostPfx, "ghost")) == 1
	})
	ghost.mu.Lock()
	pc := ghost.conns["seattle"]
	ghost.mu.Unlock()
	pc.transport().Close()
	waitFor(t, "ghost route retained stale", func() bool {
		return p.PoP("seattle").Router.ExperimentRoutes().StaleCount("ghost") > 0
	})

	// A fresh control plane with an empty desired state: the Managed
	// proposal is observable but desired nowhere.
	cp := startRecoverableCP(t, p, t.TempDir(), nil, nil)
	t.Cleanup(cp.Close)

	// A live experiment rides along untouched by the sweep.
	obj, _, err := cp.Store.Create(soakSpec("alive", "184.164.224.0/23", "184.164.224.0/24", expASN+1))
	if err != nil {
		t.Fatal(err)
	}
	waitManagedConverged(t, cp, "alive", obj.Revision)

	waitFor(t, "orphan swept", func() bool {
		if len(directPaths(p, "seattle", ghostPfx, "ghost")) != 0 {
			return false
		}
		for _, prop := range p.Proposals() {
			if prop.Name == "ghost" {
				return false
			}
		}
		return true
	})
	if n := p.PoP("seattle").Router.ExperimentRoutes().StaleCount("ghost"); n != 0 {
		t.Fatalf("%d stale ghost routes survived the orphan sweep", n)
	}
	for _, popName := range []string{"amsix", "seattle"} {
		if n := len(directPaths(p, popName, pfx("184.164.224.0/24"), "alive")); n != 1 {
			t.Fatalf("orphan sweep disturbed the live experiment at %s: %d routes", popName, n)
		}
	}
}
