package peering

import (
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/policy"
)

const expASN = 61574

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testbed builds a small platform: an Internet, one PoP with a transit
// and a peer, and an approved experiment.
func testbed(t *testing.T) (*Platform, *PoP, *Client) {
	t.Helper()
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)

	p := NewPlatform(PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pop.ConnectTransit(1000, 30); err != nil { // tier-2 transit
		t.Fatal(err)
	}
	if _, err := pop.ConnectPeer(10000, 30); err != nil { // edge peer
		t.Fatal(err)
	}

	if err := p.Submit(Proposal{
		Name: "exp1", Owner: "alice", Plan: "announce and measure",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("exp1", nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, pop, NewClient("exp1", key, expASN)
}

func TestProposalWorkflow(t *testing.T) {
	p := NewPlatform(PlatformConfig{ASN: 47065})
	if err := p.Submit(Proposal{Name: "x"}); err == nil {
		t.Error("incomplete proposal accepted")
	}
	prop := Proposal{Name: "x", Owner: "o", Plan: "p",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/24")}, ASNs: []uint32{expASN}}
	if err := p.Submit(prop); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(prop); err == nil {
		t.Error("duplicate proposal accepted")
	}
	if got := p.Proposals(); len(got) != 1 || got[0].Status != StatusPending {
		t.Fatalf("proposals = %v", got)
	}
	// Risky request: reject (the paper rejected extreme poisoning
	// proposals, §7.1).
	if err := p.Reject("x", "too many poisonings"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Approve("x", nil); err == nil {
		t.Error("rejected proposal approved")
	}
	// A fresh proposal approves and registers with the engine.
	prop2 := prop
	prop2.Name = "y"
	p.Submit(prop2)
	key, err := p.Approve("y", &policy.Capabilities{MaxPoisonedASNs: 1})
	if err != nil || key == "" {
		t.Fatalf("approve: %q %v", key, err)
	}
	if e := p.Engine.Experiment("y"); e == nil || e.Caps.MaxPoisonedASNs != 1 {
		t.Error("approval did not register trimmed capabilities")
	}
	p.Revoke("y")
	if p.Engine.Experiment("y") != nil {
		t.Error("revoked experiment still registered")
	}
}

func TestTunnelLifecycle(t *testing.T) {
	_, pop, c := testbed(t)
	if c.TunnelStatus("amsix") != "down" {
		t.Error("status before open")
	}
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if c.TunnelStatus("amsix") != "up" {
		t.Error("status after open")
	}
	if err := c.OpenTunnel(pop); err == nil {
		t.Error("double open accepted")
	}
	if !c.LocalIP("amsix").IsValid() {
		t.Error("no tunnel address assigned")
	}
	if err := c.CloseTunnel("amsix"); err != nil {
		t.Fatal(err)
	}
	if c.TunnelStatus("amsix") != "down" {
		t.Error("status after close")
	}
}

func TestUnauthorizedClientRejected(t *testing.T) {
	_, pop, _ := testbed(t)
	bad := NewClient("exp1", "wrong-key", expASN)
	if err := bad.OpenTunnel(pop); err == nil {
		t.Fatal("wrong key accepted")
	}
	ghost := NewClient("ghost", "whatever", expASN)
	if err := ghost.OpenTunnel(pop); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestClientSeesRoutesViaAddPath(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Both neighbors announce a tier-1 prefix: the client must see two
	// paths for it, one per neighbor, with local-pool next hops.
	probe := inet.PrefixForASN(100)
	waitFor(t, "two paths for the probe prefix", func() bool {
		return len(c.RoutesFor("amsix", probe)) == 2
	})
	ids := map[uint32]bool{}
	for _, p := range c.RoutesFor("amsix", probe) {
		ids[uint32(p.ID)] = true
		if !pfx("127.65.0.0/16").Contains(p.NextHop()) {
			t.Errorf("next hop %s outside local pool", p.NextHop())
		}
	}
	if len(ids) != 2 {
		t.Errorf("path IDs %v", ids)
	}
}

func TestAnnouncementPropagatesIntoInternet(t *testing.T) {
	p, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	topo := p.Topology()
	waitFor(t, "announcement reaches a distant stub", func() bool {
		return topo.Reachable(10020, pfx("184.164.224.0/24"))
	})
	rt := topo.RouteAt(10020, pfx("184.164.224.0/24"))
	flat := rt.Path
	if flat[len(flat)-1] != expASN || flat[len(flat)-2] != 47065 {
		t.Errorf("distant path %v should end ... 47065 %d", flat, expASN)
	}
}

func TestSelectiveAnnouncement(t *testing.T) {
	p, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Neighbor IDs: transit=1, peer=2 (allocation order in testbed).
	if err := c.Announce("amsix", pfx("184.164.224.0/24"), ToNeighbors(2)); err != nil {
		t.Fatal(err)
	}
	topo := p.Topology()
	// The peer (AS 10000) learns it...
	waitFor(t, "peer learns the prefix", func() bool {
		return topo.Reachable(10000, pfx("184.164.224.0/24"))
	})
	time.Sleep(50 * time.Millisecond)
	// ...but the transit (AS 1000) must not have received it directly:
	// its path, if any, goes through the peer, not through the platform.
	if rt := topo.RouteAt(1000, pfx("184.164.224.0/24")); rt != nil {
		if len(rt.Path) >= 2 && rt.Path[1] == 47065 {
			t.Errorf("transit received a whitelisted-away announcement: %v", rt.Path)
		}
	}
}

func TestHijackBlockedEndToEnd(t *testing.T) {
	p, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	victim := inet.PrefixForASN(10000)
	if err := c.Announce("amsix", victim); err != nil {
		t.Fatal(err) // the session accepts it; enforcement drops it
	}
	time.Sleep(100 * time.Millisecond)
	rt := p.Topology().RouteAt(1000, victim)
	for _, hop := range rt.Path {
		if hop == 47065 {
			t.Fatal("hijack escaped the platform")
		}
	}
}

func TestDataPlanePerPacketEgress(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })

	dst := probe.Addr().Next()
	pkt := &ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP, Src: addr("184.164.224.1"), Dst: dst,
		Payload: []byte("probe")}
	if err := c.SendIP("amsix", 1, pkt); err != nil {
		t.Fatalf("send via neighbor 1: %v", err)
	}
	if err := c.SendIP("amsix", 2, pkt); err != nil {
		t.Fatalf("send via neighbor 2: %v", err)
	}
	if err := c.SendIP("amsix", 0, pkt); err != nil {
		t.Fatalf("send via best: %v", err)
	}
	waitFor(t, "frames forwarded", func() bool {
		return pop.Router.Forwarded.Load() >= 3
	})
	if err := c.SendIP("amsix", 99, pkt); err == nil {
		t.Error("send via unknown neighbor accepted")
	}
}

func TestAntiSpoofingDropsForgedSource(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) >= 1 })

	forwardedBefore := pop.Router.Forwarded.Load()
	spoofed := &ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: addr("8.8.8.8"), Dst: probe.Addr().Next(), Payload: []byte("spoof")}
	if err := c.SendIP("amsix", 0, spoofed); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if pop.Router.Forwarded.Load() != forwardedBefore {
		t.Error("spoofed packet was forwarded")
	}
}

func TestCLI(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if out := c.CLI("amsix", "show protocols"); !strings.Contains(out, "Established") {
		t.Errorf("show protocols: %q", out)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) >= 1 })
	if out := c.CLI("amsix", "show route"); !strings.Contains(out, probe.String()) {
		t.Errorf("show route missing %s:\n%s", probe, out)
	}
	if out := c.CLI("amsix", "show route "+probe.String()); !strings.Contains(out, "via 127.65.") {
		t.Errorf("show route <prefix>: %q", out)
	}
	if out := c.CLI("amsix", "flush dns"); !strings.Contains(out, "syntax error") {
		t.Errorf("bad command: %q", out)
	}
	if out := c.CLI("nowhere", "show protocols"); !strings.Contains(out, "no tunnel") {
		t.Errorf("unknown pop: %q", out)
	}
}

func TestBGPStopAndStatus(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if c.BGPStatus("amsix") != bgp.StateIdle {
		t.Error("status before start")
	}
	if err := c.StopBGP("amsix"); err == nil {
		t.Error("stop before start accepted")
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.BGPStatus("amsix") != bgp.StateEstablished {
		t.Error("status after establish")
	}
	if err := c.StopBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if c.BGPStatus("amsix") != bgp.StateIdle {
		t.Error("status after stop")
	}
}

func TestInboundTrafficReachesClient(t *testing.T) {
	p, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got int
	var fromMAC ethernet.MAC
	c.OnPacket("amsix", func(ip *ethernet.IPv4, from ethernet.MAC) {
		mu.Lock()
		got++
		fromMAC = from
		mu.Unlock()
	})
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement installed", func() bool {
		return pop.Router.ExperimentRoutes().Lookup(addr("184.164.224.9")) != nil
	})

	// Simulate inbound traffic arriving at the peer-neighbor port:
	// inject a frame at the router's neighbor interface as if the peer
	// delivered it.
	nbr := pop.Router.Neighbor("as10000")
	if nbr == nil {
		t.Fatal("peer neighbor missing")
	}
	ifc := pop.Router.Interface("nbr-as10000")
	seg := ifc.Segment()
	// Find the host interface standing in for the neighbor.
	var sender interface {
		Send(*ethernet.Frame)
	}
	for _, port := range seg.Ports() {
		if port != ifc {
			sender = port
		}
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: addr("9.9.9.9"), Dst: addr("184.164.224.9"), Payload: []byte("hello")}
	sender.Send(&ethernet.Frame{Dst: ifc.MAC(), Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	waitFor(t, "packet at client", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if fromMAC != nbr.LocalMAC {
		t.Errorf("delivering-neighbor MAC %s, want %s", fromMAC, nbr.LocalMAC)
	}
	_ = p
}

func TestPingViaChosenNeighbor(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })

	// Echo probes return because the stand-in neighbor edge answers for
	// any destination and routes replies back to the tunnel address.
	dst := probe.Addr().Next()
	if _, err := c.Ping("amsix", 1, dst, 7, 1, 5*time.Second); err != nil {
		t.Fatalf("ping via transit: %v", err)
	}
	if _, err := c.Ping("amsix", 2, dst, 7, 2, 5*time.Second); err != nil {
		t.Fatalf("ping via peer: %v", err)
	}
	if _, err := c.Ping("amsix", 0, dst, 7, 3, 5*time.Second); err != nil {
		t.Fatalf("ping via best: %v", err)
	}
}
