package peering

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/catchment"
	"repro/internal/inet"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// teSoakTopology builds a controllable Internet for the closed-loop
// soak: 10 peered tier-1s, each with one customer via at every PoP and
// a tail of single-homed stubs per via. Stub counts skew toward pop01
// and via ASNs within each tier-1 descend along the PoP order, so every
// tier-1's own (cone-heavy) traffic initially enters at pop05 — a
// deliberately lopsided starting catchment the controller must fix.
func teSoakTopology(t *testing.T) (*inet.Topology, map[string][]uint32) {
	t.Helper()
	top := inet.NewTopology()
	tier1s := make([]uint32, 0, 10)
	for k := 0; k < 10; k++ {
		asn := uint32(10 * (k + 1))
		top.AddAS(asn, "transit")
		tier1s = append(tier1s, asn)
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			if err := top.AddPeering(tier1s[i], tier1s[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	popNames := []string{"pop01", "pop02", "pop03", "pop04", "pop05"}
	stubCounts := []int{6, 4, 3, 2, 0}
	viasByPoP := make(map[string][]uint32)
	stub := uint32(30000)
	for k, t1 := range tier1s {
		for p, pop := range popNames {
			// Descending ASN along the PoP order: each tier-1 prefers its
			// lowest-ASN via, so shed weight drains pop05 → pop01.
			via := uint32(1000 + 10*k + (len(popNames) - 1 - p))
			top.AddAS(via, "transit")
			if err := top.AddTransit(via, t1); err != nil {
				t.Fatal(err)
			}
			viasByPoP[pop] = append(viasByPoP[pop], via)
			for i := 0; i < stubCounts[p]; i++ {
				top.AddAS(stub, "access")
				if err := top.AddTransit(stub, via); err != nil {
					t.Fatal(err)
				}
				stub++
			}
		}
	}
	return top, viasByPoP
}

// teSoakTestbed stands up the 5-PoP platform over the soak topology
// with a full backbone mesh, one transit session per via, and an
// approved experiment holding an open tunnel and an established BGP
// session at every PoP.
func teSoakTestbed(t *testing.T) (*Platform, *Client, []string) {
	t.Helper()
	top, viasByPoP := teSoakTopology(t)
	anycast := pfx("184.164.224.0/24")
	p := NewPlatform(PlatformConfig{
		ASN: 47065, Topology: top,
		TE: &TEConfig{Prefix: anycast, Clients: 100000, Seed: 47065},
	})
	// The controller re-announces per-PoP versions every round; lift the
	// default daily budget out of the way (144 would cap the soak).
	p.Engine.DailyUpdateLimit = 5000

	popNames := []string{"pop01", "pop02", "pop03", "pop04", "pop05"}
	pops := make([]*PoP, len(popNames))
	for i, name := range popNames {
		pop, err := p.AddPoP(PoPConfig{
			Name:      name,
			RouterID:  addr(fmt.Sprintf("198.51.100.%d", i+1)),
			LocalPool: pfx(fmt.Sprintf("127.%d.0.0/16", 65+i)),
			ExpLAN:    pfx(fmt.Sprintf("100.%d.0.0/24", 65+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		pops[i] = pop
	}
	for i := 0; i < len(pops); i++ {
		for j := i + 1; j < len(pops); j++ {
			if err := p.ConnectBackbone(pops[i], pops[j], 400e6, 10*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, name := range popNames {
		for _, via := range viasByPoP[name] {
			if _, err := pops[i].ConnectTransit(via, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Submit(Proposal{
		Name: "te-soak", Owner: "carol", Plan: "closed-loop anycast TE",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("te-soak", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("te-soak", key, expASN)
	for i, name := range popNames {
		if err := c.OpenTunnel(pops[i]); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP(name); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished(name, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return p, c, popNames
}

// TestTEControllerSoak is the acceptance soak: on a 5-PoP platform with
// a 100k-client cone-weighted population, the controller must move the
// catchment from a ≥2:1 imbalance to within 10% of equal per-PoP
// targets using only platform knobs, with every action visible in
// telemetry and in the policy engine's audit log.
func TestTEControllerSoak(t *testing.T) {
	p, c, popNames := teSoakTestbed(t)
	reg := telemetry.NewRegistry()
	te, err := p.NewTEController(c, &TEConfig{
		Tolerance:     0.10,
		MaxRounds:     64,
		Patience:      12,
		SettleTimeout: 30 * time.Second,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := catchment.TotalClients(te.Populations()); got != 100000 {
		t.Fatalf("population %d clients, want 100000", got)
	}

	res, err := te.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		t.Logf("round %d: imbalance %.3f shares %v actions %d",
			r.N, r.Imbalance, r.Shares, len(r.Actions))
	}
	if !res.Converged {
		t.Fatalf("controller did not converge: %+v", res.Certificate)
	}

	// The starting catchment must be genuinely lopsided: worst-to-best
	// PoP ratio of at least 2:1.
	first := res.Rounds[0]
	maxShare, minShare := 0.0, 1.0
	for _, pop := range popNames {
		s := first.Shares[pop]
		if s > maxShare {
			maxShare = s
		}
		if s < minShare {
			minShare = s
		}
	}
	if maxShare < 2*minShare {
		t.Errorf("initial shares %v not a 2:1 imbalance", first.Shares)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Imbalance > 0.10 {
		t.Errorf("final imbalance %.3f above tolerance", last.Imbalance)
	}
	for _, pop := range popNames {
		if s := last.Shares[pop]; s < 0.2*0.9-1e-9 || s > 0.2*1.1+1e-9 {
			t.Errorf("%s final share %.3f outside 0.18..0.22", pop, s)
		}
	}

	// Every action the controller took must be visible in telemetry…
	var totalActions int
	for _, r := range res.Rounds {
		totalActions += len(r.Actions)
	}
	if totalActions == 0 {
		t.Fatal("controller converged without acting")
	}
	var counted float64
	for _, s := range reg.Snapshot() {
		if s.Name == "te_actions_total" {
			counted += s.Value
		}
	}
	if int(counted) != totalActions {
		t.Errorf("te_actions_total %d, round history has %d", int(counted), totalActions)
	}
	var converged float64 = -1
	for _, s := range reg.Snapshot() {
		if s.Name == "te_converged" {
			converged = s.Value
		}
	}
	if converged != 1 {
		t.Errorf("te_converged gauge %v, want 1", converged)
	}

	// …and in the audit log: the actuator works through Client announce
	// and withdraw calls, each of which passes the policy engine. The
	// initial announcement fan-out covers every PoP; each steering
	// action re-announces (or withdraws) at its PoP.
	anycast := pfx("184.164.224.0/24")
	waitFor(t, "audit entries for all steering actions", func() bool {
		return len(auditFor(p, anycast)) >= totalActions+len(popNames)
	})
	byPoP := make(map[string]int)
	for _, e := range auditFor(p, anycast) {
		if e.Action == policy.ActionReject {
			t.Errorf("steering update rejected: %s", e)
		}
		byPoP[e.PoP]++
	}
	for _, pop := range popNames {
		if byPoP[pop] == 0 {
			t.Errorf("no audit entries at %s", pop)
		}
	}

	// Status after the run reflects the retained result.
	st := te.Status()
	if st.Running || !st.Converged || len(st.Rounds) != len(res.Rounds) {
		t.Errorf("status %+v inconsistent with result", st)
	}
}

// auditFor filters the engine's audit log to one prefix.
func auditFor(p *Platform, prefix netip.Prefix) []policy.AuditEntry {
	var out []policy.AuditEntry
	for _, e := range p.Engine.Audit() {
		if e.Prefix == prefix {
			out = append(out, e)
		}
	}
	return out
}
