package peering

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/guard"
	"repro/internal/inet"
	"repro/internal/telemetry"
)

const flapperASN = expASN + 1

// TestFlapStormAvailability is the convergence-safety soak: one
// experiment flaps 10k prefixes while a victim experiment holds a
// stable announcement. The damping layer must suppress the flapping
// prefixes, the watchdog must walk the PoP through degraded/shedding
// and back, and through all of it the victim's route stays advertised
// and the neighbor session never drops.
func TestFlapStormAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("flap-storm soak skipped in -short mode")
	}
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)

	// Transitions recorded via the chained OnChange hook.
	var (
		transMu  sync.Mutex
		maxState guard.State
		finals   []guard.State
	)
	gcfg := DefaultGuardConfig()
	gcfg.SampleInterval = 50 * time.Millisecond
	gcfg.Health.Degraded = guard.Limits{UpdateRate: 200}
	gcfg.Health.Shedding = guard.Limits{UpdateRate: 1_000}
	gcfg.Health.RecoverSamples = 2
	gcfg.Health.OnChange = func(from, to guard.State, why string) {
		transMu.Lock()
		if to > maxState {
			maxState = to
		}
		finals = append(finals, to)
		transMu.Unlock()
		t.Logf("health: %s -> %s (%s)", from, to, why)
	}

	p := NewPlatform(PlatformConfig{
		ASN: 47065, Topology: topo,
		Damping:      &guard.DampingConfig{HalfLife: 300 * time.Millisecond},
		NeighborMRAI: 50 * time.Millisecond,
		Guard:        gcfg,
	})
	defer p.StopGuard()
	pop, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	transit, err := pop.ConnectTransit(1000, 20)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: one stable announcement established before the storm.
	if err := p.Submit(Proposal{
		Name: "victim", Owner: "alice", Plan: "stable anycast",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	victimKey, err := p.Approve("victim", nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := NewClient("victim", victimKey, expASN)
	// Flapper: a /8 allocation covering the 10k storm prefixes.
	if err := p.Submit(Proposal{
		Name: "flapper", Owner: "mallory", Plan: "convergence stress",
		Prefixes: []netip.Prefix{pfx("10.0.0.0/8")},
		ASNs:     []uint32{flapperASN},
	}); err != nil {
		t.Fatal(err)
	}
	flapKey, err := p.Approve("flapper", nil)
	if err != nil {
		t.Fatal(err)
	}
	flapper := NewClient("flapper", flapKey, flapperASN)

	for _, c := range []*Client{victim, flapper} {
		if err := c.OpenTunnel(pop); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP("amsix"); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	victimPrefix := pfx("184.164.224.0/24")
	if err := victim.Announce("amsix", victimPrefix); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim route reaches the transit neighbor", func() bool {
		return pop.Router.ExperimentRoutes().Best(victimPrefix) != nil &&
			topo.Reachable(1000, victimPrefix)
	})

	reg := telemetry.Default()
	baseSuppressed := reg.Value("guard_damping_suppressed_total")
	baseReconnects := reg.Value("bgp_reconnects_total")
	baseSessionFlaps := reg.Value("bgp_session_flaps_total")
	baseTransitions := reg.Value("guard_health_transitions_total")

	// The storm: 10k prefixes, each flapped to suppression in rapid
	// succession (announce, withdraw, announce, withdraw, announce —
	// the last announce is charged past the suppress threshold and
	// rejected as damped).
	const storm = 10_000
	stormPrefix := func(i int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24)
	}
	for i := 0; i < storm; i++ {
		pfx := stormPrefix(i)
		for round := 0; round < 2; round++ {
			if err := flapper.Announce("amsix", pfx); err != nil {
				t.Fatal(err)
			}
			if err := flapper.Withdraw("amsix", pfx, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := flapper.Announce("amsix", pfx); err != nil {
			t.Fatal(err)
		}
	}

	// Suppression: (nearly) every storm prefix was driven past the
	// suppress threshold exactly once.
	waitChaos(t, "storm prefixes suppressed", func() bool {
		return reg.Value("guard_damping_suppressed_total")-baseSuppressed >= storm*95/100
	})
	// The watchdog saw the overload and walked the shedding ladder.
	waitChaos(t, "watchdog reached shedding", func() bool {
		transMu.Lock()
		defer transMu.Unlock()
		return maxState == guard.Shedding
	})
	// Availability through the storm: the victim's route never left the
	// platform, and the neighbor session never dropped.
	if pop.Router.ExperimentRoutes().Best(victimPrefix) == nil {
		t.Error("victim route evicted from experiment RIB during storm")
	}
	if !topo.Reachable(1000, victimPrefix) {
		t.Error("victim route withdrawn from the transit neighbor during storm")
	}
	if sess := transit.Session(); sess == nil || sess.State() != bgp.StateEstablished {
		t.Error("transit neighbor session not established after storm")
	}
	if d := reg.Value("bgp_reconnects_total") - baseReconnects; d != 0 {
		t.Errorf("bgp_reconnects_total rose by %v during storm, want 0", d)
	}
	if d := reg.Value("bgp_session_flaps_total") - baseSessionFlaps; d != 0 {
		t.Errorf("bgp_session_flaps_total rose by %v during storm, want 0", d)
	}
	// The storm's accepted re-advertisements were paced: MRAI coalescing
	// absorbed repeats on the neighbor session (the queued adverts are
	// then cancelled by the storm's own withdrawals, so the evidence is
	// the absorption counter, not flushed batches).
	if sess := transit.Session(); sess != nil && sess.MRAISuppressed.Load() == 0 {
		t.Error("MRAI coalescing absorbed no updates on the neighbor session during storm")
	}

	// Recovery: penalties decay, reuse timers drain the suppressed set,
	// and the watchdog steps the PoP back to healthy.
	waitChaos(t, "damper drains after storm", func() bool {
		return p.Engine.Damper().SuppressedCount() == 0
	})
	waitChaos(t, "PoP returns to healthy", func() bool {
		return p.PoPHealth("amsix") == guard.Healthy
	})
	// Full ladder in the metrics: at least the step up plus the two
	// hysteretic steps down.
	if got := reg.Value("guard_health_transitions_total") - baseTransitions; got < 3 {
		t.Errorf("guard_health_transitions_total rose by %v, want >= 3", got)
	}
	transMu.Lock()
	last := finals[len(finals)-1]
	transMu.Unlock()
	if last != guard.Healthy {
		t.Errorf("final health transition landed on %s, want healthy", last)
	}

	// The control plane is fully live after the storm: the victim can
	// still update its announcement end to end.
	if err := victim.Withdraw("amsix", victimPrefix, 0); err != nil {
		t.Fatal(err)
	}
	waitChaos(t, "post-storm withdrawal propagates", func() bool {
		return pop.Router.ExperimentRoutes().Best(victimPrefix) == nil
	})
	if err := victim.Announce("amsix", victimPrefix); err != nil {
		t.Fatal(err)
	}
	waitChaos(t, "post-storm announcement propagates", func() bool {
		return topo.Reachable(1000, victimPrefix)
	})
}
