package peering

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/ctlplane"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

// ControlPlane is the reconciling control plane wired to a platform:
// the desired-state store, the reconciler converging it through an
// audited experiment client per spec, the watch hub fed by the
// platform's monitoring and health taps, and the /v1 HTTP API.
type ControlPlane struct {
	Platform   *Platform
	Store      *ctlplane.Store
	Hub        *ctlplane.Hub
	Reconciler *ctlplane.Reconciler
	API        *ctlplane.Server
	Deployer   *config.Deployer

	act       *platformActuator
	closeOnce sync.Once
}

// ControlPlaneConfig tunes the control plane.
type ControlPlaneConfig struct {
	// Reconciler tunes the convergence loop (zero values select the
	// ctlplane defaults).
	Reconciler ctlplane.ReconcilerConfig
	// EstablishTimeout bounds how long EnsureSession waits for a BGP
	// session to establish. Default 10s.
	EstablishTimeout time.Duration
	// StateDir, when set, makes the desired-state store durable: every
	// commit, deploy, and actuation is logged to a WAL under this
	// directory before it is acknowledged, and NewControlPlane replays
	// snapshot+log on startup so specs survive a crash.
	StateDir string
	// CrashHook, when set, is invoked at seeded crash points inside the
	// store's commit path (chaos testing). Production leaves it nil.
	CrashHook func(point string)
	// Logf receives control-plane logs (defaults to the platform's).
	Logf func(format string, args ...any)
}

// NewControlPlane builds and starts a control plane over the platform:
// the reconciler loop runs until Close. The API server is returned
// unmounted — register it on a mux (peeringd mounts it on the metrics
// listener). With a StateDir the desired state is recovered from the
// WAL first; recovery fails closed on a corrupt log.
func NewControlPlane(p *Platform, cfg ControlPlaneConfig) (*ControlPlane, error) {
	if cfg.Logf == nil {
		cfg.Logf = p.cfg.Logf
	}
	if cfg.Reconciler.Logf == nil {
		cfg.Reconciler.Logf = cfg.Logf
	}
	if cfg.EstablishTimeout <= 0 {
		cfg.EstablishTimeout = 10 * time.Second
	}
	act := &platformActuator{
		p:                p,
		establishTimeout: cfg.EstablishTimeout,
		runtimes:         make(map[string]*expRuntime),
		recovered:        make(map[ctlplane.AnnKey]string),
	}
	storeCfg := ctlplane.StoreConfig{
		// Every accepted commit renders the full desired state into the
		// platform's versioned config store, so the §5 canary/promote/
		// rollback machinery operates on exactly the reconciled state.
		Config: p.Store,
		BaseModel: func() config.Model {
			return p.controlPlaneBaseModel(act.managedNames())
		},
		CrashHook: cfg.CrashHook,
	}
	var (
		store *ctlplane.Store
		rec   *ctlplane.RecoveredState
	)
	if cfg.StateDir != "" {
		var err error
		store, _, rec, err = ctlplane.RecoverStore(storeCfg, cfg.StateDir)
		if err != nil {
			return nil, err
		}
		// rec is nil on a pristine state directory: nothing to adopt.
		if rec != nil {
			cfg.Logf("control plane: recovered %d object(s), %d config revision(s), %d actuation record(s) from %s (wal seq %d)",
				len(rec.Objects), len(rec.Config), len(rec.Acts), cfg.StateDir, rec.Seq)
			// The WAL's actuation records are the proof obligations for
			// budget-free adoption: the reconciler re-claims a retained
			// route only when its fingerprint matches what was logged.
			for key, fp := range rec.Acts {
				act.recovered[key] = fp
			}
		}
	} else {
		store = ctlplane.NewStore(storeCfg)
	}
	hub := ctlplane.NewHub()
	store.OnChange(func(c ctlplane.Change) { hub.Publish(ctlplane.StreamStore, c) })
	reconciler := ctlplane.NewReconciler(store, act, hub, cfg.Reconciler)

	deployer := config.NewDeployer(p.Store, func(pop string, m config.Model) error {
		if p.PoP(pop) == nil {
			return fmt.Errorf("peering: unknown pop %s", pop)
		}
		m.SyncPolicy(p.Engine)
		return nil
	})
	if rec != nil {
		deployer.Restore(rec.Deployed)
	}

	api := ctlplane.NewServer(ctlplane.ServerConfig{
		Store:      store,
		Reconciler: reconciler,
		Hub:        hub,
		Deploy:     &ctlplane.Deploy{Store: p.Store, Deployer: deployer},
		Queries: ctlplane.Queries{
			Fleet:     p.fleetView,
			RIB:       p.ribView,
			Health:    func() any { return p.HealthReport() },
			Catchment: p.catchmentQuery(),
		},
		Logf: cfg.Logf,
	})

	// Tee the platform's monitoring feed and health-ladder transitions
	// into the watch hub. Both taps are non-blocking by construction
	// (the hub drops on full subscriber queues).
	p.SetEventSink(func(e telemetry.Event) { hub.Publish(ctlplane.StreamTelemetry, e) })
	p.SetHealthSink(func(pop string, s guard.State) {
		hub.Publish(ctlplane.StreamHealth, struct {
			PoP   string `json:"pop"`
			State string `json:"state"`
		}{pop, s.String()})
	})

	go reconciler.Run()
	return &ControlPlane{
		Platform: p, Store: store, Hub: hub,
		Reconciler: reconciler, API: api, Deployer: deployer, act: act,
	}, nil
}

// Close stops the reconciler, detaches the platform taps, closes the
// watch hub (draining SSE handlers), and syncs and closes the WAL.
// Experiment state actuated so far is left running.
func (cp *ControlPlane) Close() {
	cp.closeOnce.Do(func() {
		cp.Platform.SetEventSink(nil)
		cp.Platform.SetHealthSink(nil)
		cp.Reconciler.Close()
		cp.Hub.Close()
		cp.Store.Close()
	})
}

// controlPlaneBaseModel renders the non-experiment half of the mirrored
// model — platform identity, PoPs — plus any experiment approved
// outside the control plane (managed excludes control-plane-owned
// proposals so they are not mirrored twice).
func (p *Platform) controlPlaneBaseModel(managed map[string]bool) config.Model {
	m := config.Model{PlatformASN: p.cfg.ASN, GlobalPool: p.cfg.GlobalPool}
	for _, name := range p.PoPs() {
		m.PoPs = append(m.PoPs, config.PoPSpec{Name: name})
	}
	for _, prop := range p.Proposals() {
		// prop.Managed covers recovered proposals whose runtime has not
		// been rebuilt yet (between restart and the first reconcile).
		if prop.Status != StatusApproved || managed[prop.Name] || prop.Managed {
			continue
		}
		m.Experiments = append(m.Experiments, config.ExperimentSpec{
			Name: prop.Name, Owner: prop.Owner,
			ASNs: prop.ASNs, Prefixes: prop.Prefixes,
			Caps: prop.Caps, Approved: true, VPNKey: prop.VPNKey,
		})
	}
	return m
}

// fleetView is the /v1/fleet payload: PoPs with session/route counts
// and the provisioned backbone.
func (p *Platform) fleetView() any {
	type popRow struct {
		Name      string `json:"name"`
		Neighbors int    `json:"neighbors"`
		Routes    int    `json:"routes"`
		Health    string `json:"health"`
	}
	var pops []popRow
	for _, name := range p.PoPs() {
		pop := p.PoP(name)
		pops = append(pops, popRow{
			Name:      name,
			Neighbors: len(pop.Router.Neighbors()),
			Routes:    pop.Router.RouteCount(),
			Health:    p.PoPHealth(name).String(),
		})
	}
	return struct {
		ASN      uint32         `json:"asn"`
		PoPs     []popRow       `json:"pops"`
		Backbone []BackboneLink `json:"backbone"`
	}{p.cfg.ASN, pops, p.BackboneLinks()}
}

// ribView is the /v1/rib query hook: routes at one PoP from either the
// experiment-prefix table or the router-managed default table.
func (p *Platform) ribView(popName, table string, prefix netip.Prefix) (any, error) {
	pop := p.PoP(popName)
	if pop == nil {
		return nil, fmt.Errorf("peering: unknown pop %s", popName)
	}
	var t *rib.Table
	switch table {
	case "experiments":
		t = pop.Router.ExperimentRoutes()
	case "default":
		t = pop.Router.DefaultTable()
		if t == nil {
			return nil, fmt.Errorf("peering: pop %s does not maintain a default table", popName)
		}
	default:
		return nil, fmt.Errorf("peering: unknown table %q (want experiments or default)", table)
	}
	type routeRow struct {
		Prefix  string `json:"prefix"`
		ID      uint32 `json:"id"`
		Peer    string `json:"peer"`
		NextHop string `json:"next_hop,omitempty"`
		ASPath  string `json:"as_path,omitempty"`
	}
	row := func(pfx netip.Prefix, path *rib.Path) routeRow {
		r := routeRow{Prefix: pfx.String(), ID: uint32(path.ID), Peer: path.Peer}
		if path.Attrs != nil {
			if nh := path.NextHop(); nh.IsValid() {
				r.NextHop = nh.String()
			}
			r.ASPath = fmt.Sprintf("%v", path.Attrs.ASPathFlat())
		}
		return r
	}
	var routes []routeRow
	if prefix.IsValid() {
		for _, path := range t.Paths(prefix) {
			routes = append(routes, row(prefix, path))
		}
	} else {
		t.Walk(func(pfx netip.Prefix, paths []*rib.Path) bool {
			for _, path := range paths {
				routes = append(routes, row(pfx, path))
			}
			return true
		})
	}
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Prefix != routes[j].Prefix {
			return routes[i].Prefix < routes[j].Prefix
		}
		return routes[i].ID < routes[j].ID
	})
	return struct {
		PoP    string     `json:"pop"`
		Table  string     `json:"table"`
		Routes []routeRow `json:"routes"`
	}{popName, table, routes}, nil
}

// catchmentQuery returns the /v1/catchment hook, or nil when the
// platform has no TE configuration to measure against.
func (p *Platform) catchmentQuery() func() (any, error) {
	te := p.cfg.TE
	if te == nil || !te.Prefix.IsValid() {
		return nil
	}
	return func() (any, error) {
		if len(te.Populations) == 0 {
			return p.CatchmentViews(te.Prefix), nil
		}
		return p.ResolveCatchments(te.Prefix, te.Populations)
	}
}

// expRuntime is the actuator's per-experiment state: the audited client
// every actuation flows through, the PoPs it has opened, and the
// fingerprint each announcement atom was sent with.
type expRuntime struct {
	client *Client
	pops   map[string]bool
	sent   map[ctlplane.AnnKey]string
}

// platformActuator implements ctlplane.Actuator over a Platform. Each
// managed experiment gets a real experiment Client — registration goes
// through Submit/Approve, announcements through Client.Announce — so
// the policy engine evaluates and audits every control-plane actuation
// exactly like a researcher-issued one.
type platformActuator struct {
	p                *Platform
	establishTimeout time.Duration

	mu       sync.Mutex
	runtimes map[string]*expRuntime
	// recovered maps announcement atoms replayed from the WAL to the
	// fingerprint they were last actuated with. Adopt consumes entries
	// as proof that a graceful-restart-retained route still matches the
	// recovered desired state.
	recovered map[ctlplane.AnnKey]string
}

// managedNames snapshots the experiments the actuator owns.
func (a *platformActuator) managedNames() map[string]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]bool, len(a.runtimes))
	for name := range a.runtimes {
		out[name] = true
	}
	return out
}

func (a *platformActuator) runtime(name string) *expRuntime {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runtimes[name]
}

// Validate dry-runs a spec against platform state without actuating.
func (a *platformActuator) Validate(spec ctlplane.Spec) error {
	for _, pop := range spec.SessionPoPs() {
		if a.p.PoP(pop) == nil {
			return fmt.Errorf("peering: unknown pop %s", pop)
		}
	}
	if a.runtime(spec.Name) == nil {
		// The name must be free: an out-of-band proposal under this name
		// would collide at Submit time.
		a.p.mu.Lock()
		_, taken := a.p.proposals[spec.Name]
		a.p.mu.Unlock()
		if taken {
			return fmt.Errorf("peering: experiment name %s is taken by an existing proposal", spec.Name)
		}
	}
	return nil
}

// specPrefixes parses a validated spec's allocation.
func specPrefixes(spec ctlplane.Spec) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(spec.Prefixes))
	for _, raw := range spec.Prefixes {
		out = append(out, netip.MustParsePrefix(raw))
	}
	return out
}

// EnsureExperiment registers the experiment through the §4.6 workflow
// on first sight (proposal, approval, credential issue) and refreshes
// the enforcement registration on spec changes — without re-issuing
// credentials, so open tunnels survive updates.
func (a *platformActuator) EnsureExperiment(spec ctlplane.Spec) error {
	caps := ctlplane.CapsFor(spec)
	prefixes := specPrefixes(spec)
	rt := a.runtime(spec.Name)
	if rt == nil {
		plan := spec.Plan
		if plan == "" {
			plan = "managed by the control plane (declarative spec)"
		}
		if err := a.p.Submit(Proposal{
			Name: spec.Name, Owner: spec.Owner, Plan: plan,
			Prefixes: prefixes, ASNs: []uint32{spec.ASN}, Caps: caps,
			Managed: true,
		}); err != nil {
			// A Managed proposal surviving under this name is our own,
			// left behind by a crash: adopt it rather than failing, after
			// syncing its resource grant to the recovered spec so the
			// re-approval registers current state with enforcement.
			a.p.mu.Lock()
			prior := a.p.proposals[spec.Name]
			adoptable := prior != nil && prior.Managed && prior.Status != StatusRejected
			if adoptable {
				prior.Prefixes = prefixes
				prior.ASNs = []uint32{spec.ASN}
			}
			a.p.mu.Unlock()
			if !adoptable {
				return err
			}
		}
		key, err := a.p.Approve(spec.Name, &caps)
		if err != nil {
			return err
		}
		rt = &expRuntime{
			client: NewClient(spec.Name, key, spec.ASN),
			pops:   make(map[string]bool),
			sent:   make(map[ctlplane.AnnKey]string),
		}
		// Advertise graceful restart so a control-plane crash leaves the
		// experiment's routes retained (stale) for the restart window,
		// where the recovered reconciler can adopt them in place.
		rt.client.GR = clientGRTime
		a.mu.Lock()
		a.runtimes[spec.Name] = rt
		a.mu.Unlock()
	} else {
		// Spec changed at the same identity: refresh the capability
		// grant and allocation in place.
		a.p.Engine.Register(&policy.Experiment{
			Name: spec.Name, Prefixes: prefixes,
			ASNs: []uint32{spec.ASN}, Caps: caps,
		})
	}
	// Pacing override applies to sessions started after this point.
	rt.client.MRAI = spec.Overrides.ParsedMRAI()
	return nil
}

// EnsureSession brings the experiment's tunnel and BGP session at a PoP
// to Established, repairing dead tunnels along the way.
func (a *platformActuator) EnsureSession(spec ctlplane.Spec, popName string) error {
	rt := a.runtime(spec.Name)
	if rt == nil {
		return fmt.Errorf("peering: experiment %s not registered", spec.Name)
	}
	pop := a.p.PoP(popName)
	if pop == nil {
		return fmt.Errorf("peering: unknown pop %s", popName)
	}
	if rt.client.BGPStatus(popName) == bgp.StateEstablished {
		a.mu.Lock()
		rt.pops[popName] = true
		a.mu.Unlock()
		return nil
	}
	if rt.client.TunnelStatus(popName) != "up" {
		// Either no tunnel or a dead one; clear any carcass and redial.
		_ = rt.client.CloseTunnel(popName)
		if err := rt.client.OpenTunnel(pop); err != nil {
			return err
		}
	}
	if rt.client.BGPStatus(popName) == bgp.StateIdle {
		_ = rt.client.StopBGP(popName) // drop a dead session object, if any
		if err := rt.client.StartBGP(popName); err != nil {
			return err
		}
	}
	if err := rt.client.WaitEstablished(popName, a.establishTimeout); err != nil {
		return err
	}
	a.mu.Lock()
	rt.pops[popName] = true
	a.mu.Unlock()
	return nil
}

// annOptions translates a compiled announcement atom into client
// announce options (shared by Announce and Adopt, which must record
// identical state for replay).
func annOptions(ann ctlplane.CompiledAnn) []AnnounceOption {
	var opts []AnnounceOption
	if ann.Key.Version != 0 {
		opts = append(opts, WithVersion(ann.Key.Version))
	}
	if ann.Prepend > 0 {
		opts = append(opts, WithPrepend(ann.Prepend))
	}
	if len(ann.Poison) > 0 {
		opts = append(opts, WithPoison(ann.Poison...))
	}
	if len(ann.Communities) > 0 {
		comms := make([]bgp.Community, len(ann.Communities))
		for i, c := range ann.Communities {
			comms[i] = bgp.NewCommunity(c.ASN, c.Value)
		}
		opts = append(opts, WithCommunities(comms...))
	}
	if len(ann.ToNeighbors) > 0 {
		opts = append(opts, ToNeighbors(ann.ToNeighbors...))
	}
	if len(ann.ExceptNeighbors) > 0 {
		opts = append(opts, ExceptNeighbors(ann.ExceptNeighbors...))
	}
	return opts
}

// Announce actuates one announcement atom through the audited client.
func (a *platformActuator) Announce(spec ctlplane.Spec, ann ctlplane.CompiledAnn) error {
	rt := a.runtime(spec.Name)
	if rt == nil {
		return fmt.Errorf("peering: experiment %s not registered", spec.Name)
	}
	if err := rt.client.Announce(ann.Key.PoP, ann.Key.Prefix, annOptions(ann)...); err != nil {
		return err
	}
	a.mu.Lock()
	rt.sent[ann.Key] = ann.Fingerprint()
	a.mu.Unlock()
	return nil
}

// expectedASPath is the flat AS path an announcement atom installs
// (buildAnnouncement's shape after policy strips nothing from the
// path): the experiment ASN repeated 1+prepend times, the poisoned
// ASNs, and a closing origin copy when poisoning.
func expectedASPath(asn uint32, ann ctlplane.CompiledAnn) []uint32 {
	path := make([]uint32, 0, ann.Prepend+len(ann.Poison)+2)
	for i := 0; i <= ann.Prepend; i++ {
		path = append(path, asn)
	}
	path = append(path, ann.Poison...)
	if len(ann.Poison) > 0 {
		path = append(path, asn)
	}
	return path
}

// Adopt re-claims a route retained across a control-plane restart
// (graceful restart keeps it installed, marked stale) without
// re-announcing it, so recovery does not burn the §4.7 update budget.
// The route must be proven to still match desired state: the WAL's
// recovered actuation fingerprint must equal the atom's current
// fingerprint AND the installed path's AS path must have the shape this
// atom would build. Anything less falls back to a normal re-announce
// via ErrAdoptMismatch.
func (a *platformActuator) Adopt(spec ctlplane.Spec, ann ctlplane.CompiledAnn) error {
	rt := a.runtime(spec.Name)
	if rt == nil {
		return fmt.Errorf("peering: experiment %s not registered", spec.Name)
	}
	pop := a.p.PoP(ann.Key.PoP)
	if pop == nil {
		return fmt.Errorf("peering: unknown pop %s", ann.Key.PoP)
	}
	fp := ann.Fingerprint()
	a.mu.Lock()
	logged, ok := a.recovered[ann.Key]
	a.mu.Unlock()
	if !ok || logged != fp {
		return ctlplane.ErrAdoptMismatch
	}
	var installed *rib.Path
	for _, path := range pop.Router.ExperimentRoutes().Paths(ann.Key.Prefix) {
		if path.Peer == spec.Name && uint32(path.ID) == ann.Key.Version {
			installed = path
			break
		}
	}
	if installed == nil || installed.Attrs == nil {
		return ctlplane.ErrAdoptMismatch
	}
	want := expectedASPath(spec.ASN, ann)
	got := installed.Attrs.ASPathFlat()
	if len(got) != len(want) {
		return ctlplane.ErrAdoptMismatch
	}
	for i := range want {
		if got[i] != want[i] {
			return ctlplane.ErrAdoptMismatch
		}
	}
	// Record the announcement client-side (replayed on reconnect exactly
	// like a sent one) and clear the stale mark router-side so neither
	// the restart-window flush nor a re-announce is needed.
	if err := rt.client.Adopt(ann.Key.PoP, ann.Key.Prefix, annOptions(ann)...); err != nil {
		return err
	}
	pop.Router.AdoptExperimentRoute(spec.Name, ann.Key.Prefix, bgp.PathID(ann.Key.Version))
	a.mu.Lock()
	rt.sent[ann.Key] = fp
	delete(a.recovered, ann.Key)
	a.mu.Unlock()
	return nil
}

// Withdraw retracts one announcement atom.
func (a *platformActuator) Withdraw(experiment, popName string, prefix netip.Prefix, version uint32) error {
	rt := a.runtime(experiment)
	if rt == nil {
		return fmt.Errorf("peering: experiment %s not registered", experiment)
	}
	if err := rt.client.Withdraw(popName, prefix, version); err != nil {
		return err
	}
	a.mu.Lock()
	delete(rt.sent, ctlplane.AnnKey{Experiment: experiment, PoP: popName, Prefix: prefix, Version: version})
	a.mu.Unlock()
	return nil
}

// CloseSession tears the experiment's session and tunnel at a PoP down.
func (a *platformActuator) CloseSession(experiment, popName string) error {
	rt := a.runtime(experiment)
	if rt == nil {
		return nil
	}
	_ = rt.client.StopBGP(popName)
	_ = rt.client.CloseTunnel(popName)
	a.mu.Lock()
	delete(rt.pops, popName)
	for key := range rt.sent {
		if key.PoP == popName {
			delete(rt.sent, key)
		}
	}
	a.mu.Unlock()
	return nil
}

// Teardown removes the experiment entirely: sessions, credentials, and
// the proposal record, freeing the name for recreation.
func (a *platformActuator) Teardown(experiment string) error {
	rt := a.runtime(experiment)
	if rt != nil {
		a.mu.Lock()
		pops := make([]string, 0, len(rt.pops))
		for pop := range rt.pops {
			pops = append(pops, pop)
		}
		a.mu.Unlock()
		for _, pop := range pops {
			_ = rt.client.StopBGP(pop)
			_ = rt.client.CloseTunnel(pop)
		}
	}
	// Purge whatever the routers still hold for this owner — including
	// graceful-restart-retained routes of an orphan with no runtime
	// (its client died with the previous control-plane process).
	for _, popName := range a.p.PoPs() {
		a.p.PoP(popName).Router.PurgeExperiment(experiment)
	}
	a.p.Forget(experiment)
	a.mu.Lock()
	delete(a.runtimes, experiment)
	for key := range a.recovered {
		if key.Experiment == experiment {
			delete(a.recovered, key)
		}
	}
	a.mu.Unlock()
	return nil
}

// Rejections reports engine-side rejections recorded after since,
// classified from the audit trail so the reconciler can surface why an
// actuation was refused (damping, rate limit, RPKI, generic policy)
// and when retrying makes sense.
func (a *platformActuator) Rejections(since time.Time) []ctlplane.Rejection {
	var out []ctlplane.Rejection
	for _, e := range a.p.Engine.Audit() {
		if e.Action != policy.ActionReject || !e.Time.After(since) {
			continue
		}
		reason := strings.Join(e.Reasons, "; ")
		kind := ctlplane.RejectPolicy
		switch {
		case strings.Contains(reason, "flap damping"):
			kind = ctlplane.RejectDamping
		case strings.Contains(reason, "update rate for"):
			kind = ctlplane.RejectRateLimit
		case strings.Contains(reason, "RPKI invalid"):
			kind = ctlplane.RejectRPKI
		}
		out = append(out, ctlplane.Rejection{
			Experiment: e.Experiment, PoP: e.PoP, Prefix: e.Prefix,
			Kind: kind, Reason: reason, At: e.Time,
		})
	}
	return out
}

// Shedding reports whether a PoP's overload guard is refusing work, so
// the reconciler can mark objects rejected without burning their update
// budget on announcements the guard would drop.
func (a *platformActuator) Shedding(pop string) bool {
	return a.p.PoPHealth(pop) == guard.Shedding
}

// Observed reports ground truth for the managed experiments: session
// establishment straight from the BGP state machines, announcement
// presence from each PoP router's experiment RIB (the §4.1 authority on
// what is actually installed), fingerprinted by the actuator's own
// send records.
func (a *platformActuator) Observed() (ctlplane.Observed, error) {
	obs := ctlplane.Observed{
		Sessions: make(map[ctlplane.SessKey]bool),
		Anns:     make(map[ctlplane.AnnKey]string),
	}
	a.mu.Lock()
	type rtView struct {
		client *Client
		pops   []string
	}
	views := make(map[string]rtView, len(a.runtimes))
	for name, rt := range a.runtimes {
		v := rtView{client: rt.client}
		for pop := range rt.pops {
			v.pops = append(v.pops, pop)
		}
		views[name] = v
	}
	a.mu.Unlock()
	// Managed proposals without a runtime are crash leftovers: their
	// client died with the previous process, but their routes may still
	// be installed (graceful-restart retention). Include them so the
	// reconciler can adopt survivors and sweep orphans.
	for _, prop := range a.p.Proposals() {
		if prop.Managed {
			if _, ok := views[prop.Name]; !ok {
				views[prop.Name] = rtView{}
			}
		}
	}

	for name, v := range views {
		if v.client == nil {
			continue
		}
		for _, pop := range v.pops {
			if v.client.BGPStatus(pop) == bgp.StateEstablished {
				obs.Sessions[ctlplane.SessKey{Experiment: name, PoP: pop}] = true
			}
		}
	}
	for _, popName := range a.p.PoPs() {
		pop := a.p.PoP(popName)
		pop.Router.ExperimentRoutes().Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
			for _, path := range paths {
				if _, managed := views[path.Peer]; !managed {
					continue
				}
				key := ctlplane.AnnKey{
					Experiment: path.Peer, PoP: popName,
					Prefix: prefix, Version: uint32(path.ID),
				}
				a.mu.Lock()
				fp := ""
				if rt := a.runtimes[path.Peer]; rt != nil {
					fp = rt.sent[key]
				}
				a.mu.Unlock()
				obs.Anns[key] = fp
			}
			return true
		})
	}
	return obs, nil
}
