package peering

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/config"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/policy"
)

func TestIPv6AutoApproval(t *testing.T) {
	p := NewPlatform(PlatformConfig{ASN: 47065})
	if _, _, err := p.SubmitIPv6("v6exp", "alice", "plan", 61574); err == nil {
		t.Fatal("auto-approval worked before being enabled")
	}
	if err := p.EnableIPv6AutoApproval(netip.MustParsePrefix("2804:269c::/32")); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableIPv6AutoApproval(netip.MustParsePrefix("10.0.0.0/8")); err == nil {
		t.Fatal("v4 auto-approval pool accepted")
	}

	alloc, key, err := p.SubmitIPv6("v6exp", "alice", "measure v6 adoption", 61574)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Bits() != 48 || !netip.MustParsePrefix("2804:269c::/32").Contains(alloc.Addr()) {
		t.Errorf("allocation %s", alloc)
	}
	if key == "" {
		t.Error("no credentials issued")
	}
	// Registered with the engine under least privilege.
	e := p.Engine.Experiment("v6exp")
	if e == nil || len(e.Prefixes) != 1 || e.Prefixes[0] != alloc {
		t.Fatalf("engine registration: %+v", e)
	}
	if e.Caps != (policy.Capabilities{}) {
		t.Error("auto-approval granted extra capabilities")
	}
	// Distinct allocations per experiment; duplicates rejected.
	alloc2, _, err := p.SubmitIPv6("v6exp2", "bob", "plan", 61575)
	if err != nil {
		t.Fatal(err)
	}
	if alloc2 == alloc {
		t.Error("allocations collide")
	}
	if _, _, err := p.SubmitIPv6("v6exp", "alice", "plan", 61574); err == nil {
		t.Error("duplicate name accepted")
	}
	// The proposal shows up as approved in the normal listing.
	found := false
	for _, prop := range p.Proposals() {
		if prop.Name == "v6exp" && prop.Status == StatusApproved {
			found = true
		}
	}
	if !found {
		t.Error("auto-approved proposal not listed")
	}
}

func TestAttachContainer(t *testing.T) {
	_, pop, c := testbed(t)
	// Containers require approval first.
	if _, err := pop.AttachContainer("nobody"); err == nil {
		t.Fatal("container for unapproved experiment")
	}
	ct, err := pop.AttachContainer("exp1")
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Addr.IsValid() || ct.Host == nil {
		t.Fatal("container not addressed")
	}

	// The container reaches the Internet through the PoP without any
	// tunnel: ping a destination the router knows via its default route.
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) >= 1 })

	// Containers are plain hosts: they route via the PoP router's
	// experiment-LAN address and the router forwards via the best path.
	// The router only forwards frames addressed to per-neighbor MACs or
	// its own MAC; a default route via the router's address exercises
	// the inbound path, so instead steer explicitly: resolve a neighbor
	// next hop through ARP like any router would.
	nbr := pop.Router.Neighbor("as1000")
	mac, err := ct.Host.Resolve(ct.Iface, nbr.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mac != nbr.LocalMAC {
		t.Errorf("container resolved %s, want %s", mac, nbr.LocalMAC)
	}

	// Anti-spoofing applies to containers too.
	txBefore := ct.Iface.TxDrops.Load()
	spoofed := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: addr("8.8.8.8"), Dst: probe.Addr().Next()}
	ct.Iface.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: spoofed.Marshal()})
	if ct.Iface.TxDrops.Load() != txBefore+1 {
		t.Error("spoofed container frame not dropped")
	}
	// Legitimate container traffic (sourced from its address) passes.
	legit := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ct.Addr, Dst: probe.Addr().Next()}
	fwdBefore := pop.Router.Forwarded.Load()
	ct.Iface.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: legit.Marshal()})
	if pop.Router.Forwarded.Load() != fwdBefore+1 {
		t.Error("legitimate container frame not forwarded")
	}
}

func TestApplyModel(t *testing.T) {
	_, pop, _ := testbed(t)
	p := pop.platform

	m := config.Model{
		PlatformASN: 47065,
		Experiments: []config.ExperimentSpec{
			{Name: "modeled", Owner: "ops", ASNs: []uint32{61580},
				Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.230.0/24")},
				Approved: true, VPNKey: "model-key"},
		},
		PoPs: []config.PoPSpec{{
			Name: "amsix", RouterID: netip.MustParseAddr("198.51.100.1"),
			LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
			Interfaces: []config.IfaceSpec{
				{Name: "exp0", Role: "experiment", Addr: netip.MustParsePrefix("100.65.0.254/24")},
			},
		}},
	}
	if err := p.ApplyModel(&m); err != nil {
		t.Fatal(err)
	}
	// The modeled experiment is registered and its credentials work.
	if p.Engine.Experiment("modeled") == nil {
		t.Fatal("modeled experiment not registered")
	}
	c := NewClient("modeled", "model-key", 61580)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatalf("modeled credentials rejected: %v", err)
	}
	// exp1 was registered outside the model: SyncPolicy removes it.
	if p.Engine.Experiment("exp1") != nil {
		t.Error("out-of-model experiment survived sync")
	}
	// Re-applying is idempotent and keeps the tunnel up.
	if err := p.ApplyModel(&m); err != nil {
		t.Fatal(err)
	}
	if c.TunnelStatus("amsix") != "up" {
		t.Error("config push disturbed a running tunnel")
	}
	// Invalid models are rejected before touching anything.
	bad := m
	bad.PoPs = append([]config.PoPSpec(nil), m.PoPs...)
	bad.PoPs[0].Neighbors = []config.NeighborSpec{{Name: "x", ID: 0, Interface: "exp0"}}
	if err := p.ApplyModel(&bad); err == nil {
		t.Error("invalid model applied")
	}
}

func TestPoPBandwidthShaping(t *testing.T) {
	// A bandwidth-constrained site (§4.7): all experiment traffic into
	// the PoP is policed to the agreed rate.
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)
	p := NewPlatform(PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := p.AddPoP(PoPConfig{
		Name: "constrained", RouterID: addr("198.51.100.9"),
		LocalPool: pfx("127.69.0.0/16"), ExpLAN: pfx("100.69.0.0/24"),
		BandwidthLimitBps: 8 * 2000, // 2 kB/s: a few frames of burst
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pop.ConnectTransit(1000, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Proposal{Name: "bw", Owner: "o", Plan: "p",
		Prefixes: []netip.Prefix{pfx("184.164.226.0/24")}, ASNs: []uint32{expASN}}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("bw", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("bw", key, expASN)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("constrained")
	if err := c.WaitEstablished("constrained", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("constrained", probe)) >= 1 })

	// Blast 100 sizeable packets: the shaper must drop most of them.
	payload := make([]byte, 500)
	for i := 0; i < 100; i++ {
		pkt := &ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
			Src: addr("184.164.226.1"), Dst: probe.Addr().Next(), Payload: payload}
		if err := c.SendIP("constrained", 0, pkt); err != nil {
			t.Logf("send %d: %v", i, err)
		}
	}
	// Tunnel frame delivery is asynchronous: wait until the router's
	// experiment interface has seen (or policed) every frame.
	expIfc := pop.Router.Interface("exp0")
	waitFor(t, "frames processed", func() bool {
		return expIfc.RxFrames.Load()+expIfc.RxDrops.Load() >= 101
	})
	fwd := pop.Router.Forwarded.Load()
	if fwd >= 50 {
		t.Errorf("shaper let %d of 100 oversized frames through", fwd)
	}
	if fwd == 0 {
		t.Error("shaper blocked everything, including the burst")
	}
}

func TestAttachCollector(t *testing.T) {
	_, pop, c := testbed(t)
	col, err := pop.AttachCollector("route-views.amsix", 6447)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// The collector receives the PoP's full view via ADD-PATH.
	probe := inet.PrefixForASN(100)
	waitFor(t, "collector RIB", func() bool {
		return len(col.RIB().Paths(probe)) == 2
	})

	// An experiment's announcement shows up in the collector feed —
	// generating the ground-truth event stream controlled experiments
	// need (§7.1).
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	// Experiment routes propagate to neighbors, not back to other
	// experiment sessions — the collector observes the *neighbor* view,
	// i.e. the routes the platform knows. The announcement reaches the
	// collector indirectly once a neighbor re-announces it; in this
	// small testbed the peer AS's speaker does not re-announce to the
	// platform, so assert only on the event log contents so far.
	if col.EventCount() == 0 {
		t.Fatal("no events recorded")
	}
	hist := col.History(probe)
	if len(hist) == 0 || hist[0].Kind != collector.KindAnnounce {
		t.Fatalf("history: %+v", hist)
	}
}

func TestTracerouteShowsPrimaryAddresses(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })

	dst := probe.Addr().Next()
	hops, err := c.Traceroute("amsix", 1, dst, 5, 5*time.Second)
	if err != nil {
		t.Fatalf("traceroute: %v (hops %v)", err, hops)
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %v, want router + destination", hops)
	}
	// Hop 1 is the PoP router, answering from the experiment-LAN
	// interface's PRIMARY address (the §5 behavior).
	rtrAddr := pop.Router.Interface("exp0").PrimaryAddr()
	if hops[0].Addr != rtrAddr || hops[0].Reached {
		t.Errorf("hop 1 = %+v, want router primary %s", hops[0], rtrAddr)
	}
	if !hops[1].Reached || hops[1].Addr != dst {
		t.Errorf("hop 2 = %+v, want destination %s", hops[1], dst)
	}
}

func TestAppendixADebuggingWorkflow(t *testing.T) {
	// Appendix A end to end: an experiment's announcement is not globally
	// reachable because a network upstream carries a stale filter; the
	// troubleshooting tool identifies the edge and the reason.
	p, pop, c := testbed(t)
	topo := p.Topology()

	// AS 1000 is the PoP's transit; its tier-1 provider silently filters
	// the experiment prefix.
	provider := topo.AS(1000).Providers[0]
	if err := topo.BlockPrefixAt(provider, pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}

	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("amsix", pfx("184.164.224.0/24"), ToNeighbors(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "transit learns the prefix", func() bool {
		return topo.Reachable(1000, pfx("184.164.224.0/24"))
	})
	time.Sleep(100 * time.Millisecond)

	// The looking glass shows presence/absence but cannot explain it.
	lgHave := topo.LookingGlass(1000, pfx("184.164.224.0/24"))
	lgMiss := topo.LookingGlass(provider, pfx("184.164.224.0/24"))
	if !strings.Contains(lgHave, "*>") || !strings.Contains(lgMiss, "not in table") {
		t.Fatalf("looking glass:\n%s\n%s", lgHave, lgMiss)
	}

	// Diagnose pinpoints the filtering edge.
	found := false
	for _, g := range topo.Diagnose(pfx("184.164.224.0/24")) {
		if g.To == provider && strings.Contains(g.Reason, "import filter") {
			found = true
		}
	}
	if !found {
		t.Fatalf("filter edge toward AS%d not identified:\n%s",
			provider, topo.DiagnoseReport(pfx("184.164.224.0/24")))
	}
}
