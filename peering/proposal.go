package peering

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/policy"
)

// ProposalStatus is the review state of an experiment proposal.
type ProposalStatus int

// Proposal states.
const (
	StatusPending ProposalStatus = iota
	StatusApproved
	StatusRejected
)

// String names the status.
func (s ProposalStatus) String() string {
	return [...]string{"pending", "approved", "rejected"}[s]
}

// Proposal is an experiment application, the web-form equivalent of
// §4.6: goals, resource requirements, and execution plan, reviewed
// manually before any resources are granted.
type Proposal struct {
	// Name of the experiment.
	Name string
	// Owner is the responsible researcher.
	Owner string
	// Plan describes goals and execution (free text, reviewed by
	// admins).
	Plan string
	// Prefixes requested.
	Prefixes []netip.Prefix
	// ASNs requested.
	ASNs []uint32
	// Caps requested (granted verbatim or trimmed on approval).
	Caps policy.Capabilities

	Status ProposalStatus
	// Reason records why a proposal was rejected.
	Reason string
	// VPNKey is the tunnel credential issued on approval.
	VPNKey string
	// Managed marks a proposal owned by the declarative control plane:
	// its platform state (sessions, installed routes) is observed and
	// reconciled — including orphan teardown after a crash — while
	// unmanaged proposals (REPL, TE controller, tests) are left alone.
	Managed bool
}

// Submit files a proposal for review.
func (p *Platform) Submit(prop Proposal) error {
	if prop.Name == "" || prop.Owner == "" || prop.Plan == "" {
		return fmt.Errorf("peering: proposal needs a name, owner, and plan")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.proposals[prop.Name]; dup {
		return fmt.Errorf("peering: proposal %s already exists", prop.Name)
	}
	prop.Status = StatusPending
	p.proposals[prop.Name] = &prop
	return nil
}

// Proposals lists proposals sorted by name.
func (p *Platform) Proposals() []*Proposal {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Proposal, 0, len(p.proposals))
	for _, prop := range p.proposals {
		out = append(out, prop)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Approve grants a pending proposal, optionally overriding the granted
// capability set (admins trim risky requests, §7.3), registers the
// experiment with the enforcement engine, and issues tunnel credentials.
// Running experiments and BGP sessions are not disturbed (§4.6).
func (p *Platform) Approve(name string, grantedCaps *policy.Capabilities) (vpnKey string, err error) {
	p.mu.Lock()
	prop := p.proposals[name]
	if prop == nil {
		p.mu.Unlock()
		return "", fmt.Errorf("peering: no proposal %s", name)
	}
	if prop.Status == StatusRejected {
		p.mu.Unlock()
		return "", fmt.Errorf("peering: proposal %s was rejected: %s", name, prop.Reason)
	}
	if len(prop.Prefixes) == 0 || len(prop.ASNs) == 0 {
		p.mu.Unlock()
		return "", fmt.Errorf("peering: proposal %s has no resource request", name)
	}
	caps := prop.Caps
	if grantedCaps != nil {
		caps = *grantedCaps
	}
	prop.Status = StatusApproved
	p.keySeq++
	prop.VPNKey = fmt.Sprintf("key-%s-%06d", name, p.keySeq)
	prop.Caps = caps
	p.creds[name] = prop.VPNKey
	p.mu.Unlock()

	p.Engine.Register(&policy.Experiment{
		Name:     name,
		Prefixes: prop.Prefixes,
		ASNs:     prop.ASNs,
		Caps:     caps,
	})
	return prop.VPNKey, nil
}

// Reject declines a proposal with a reason (the paper rejected an
// experiment requesting a large number of poisonings and one announcing
// thousand-AS paths, §7.1).
func (p *Platform) Reject(name, reason string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	prop := p.proposals[name]
	if prop == nil {
		return fmt.Errorf("peering: no proposal %s", name)
	}
	prop.Status = StatusRejected
	prop.Reason = reason
	delete(p.creds, name)
	return nil
}

// Forget erases a proposal entirely, releasing its name for
// resubmission: credentials are withdrawn, the enforcement registration
// dropped, and — unlike Revoke, which leaves a rejected tombstone — the
// proposal record itself is removed. The control plane uses it after
// teardown so a deleted experiment's name can be recreated.
func (p *Platform) Forget(name string) {
	p.mu.Lock()
	delete(p.proposals, name)
	delete(p.creds, name)
	p.mu.Unlock()
	p.Engine.Unregister(name)
}

// Revoke deactivates an approved experiment: credentials are withdrawn
// and the enforcement engine stops accepting its announcements.
func (p *Platform) Revoke(name string) {
	p.mu.Lock()
	delete(p.creds, name)
	if prop := p.proposals[name]; prop != nil {
		prop.Status = StatusRejected
		prop.Reason = "revoked"
	}
	p.mu.Unlock()
	p.Engine.Unregister(name)
}
