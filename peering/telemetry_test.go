package peering

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/telemetry"
)

// TestMetricsFromAllSubsystems runs the quickstart loop — tunnel, BGP,
// announce, per-packet egress — and checks that one registry snapshot
// carries live counters from every instrumented layer: the BGP engine,
// the vBGP core, the policy engine, the RIB, and the BPF VM.
func TestMetricsFromAllSubsystems(t *testing.T) {
	_, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })

	// The policy engine vets this announcement; exporting it rewrites
	// next hops and pushes RIB churn.
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	// A data-plane probe crosses the anti-spoofing BPF filter and the
	// per-packet table selection.
	pkt := &ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: addr("184.164.224.1"), Dst: probe.Addr().Next(), Payload: []byte("probe")}
	if err := c.SendIP("amsix", 1, pkt); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame forwarded", func() bool { return pop.Router.Forwarded.Load() >= 1 })

	live := map[string]bool{}
	for _, s := range telemetry.Default().Snapshot() {
		if s.Value > 0 || s.Count > 0 {
			for _, prefix := range []string{"bgp_", "core_", "policy_", "rib_", "bpf_"} {
				if strings.HasPrefix(s.Name, prefix) {
					live[prefix] = true
				}
			}
		}
	}
	for _, prefix := range []string{"bgp_", "core_", "policy_", "rib_", "bpf_"} {
		if !live[prefix] {
			t.Errorf("no live %s* metric in the snapshot", prefix)
		}
	}
}

// TestStationSeesQuickstartScenario checks the platform monitoring
// station's view after the same loop: peers up, the experiment's
// announcement visible, and stats reports delivered on request.
func TestStationSeesQuickstartScenario(t *testing.T) {
	p, pop, c := testbed(t)
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "routes", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	// The router processes the announcement asynchronously; wait until
	// the station has seen its RouteMonitoring event.
	st := p.Station()
	waitFor(t, "experiment announce observed", func() bool {
		e, ok := st.Peer("amsix", "exp:exp1")
		return ok && e.Announces > 0
	})
	pop.Router.EmitStatsReport()
	if !p.WaitMonitorDrained(5 * time.Second) {
		t.Fatalf("station lagging: processed %d of %d accepted events",
			st.Processed(), p.Monitor().Accepted())
	}

	exp, ok := st.Peer("amsix", "exp:exp1")
	if !ok {
		t.Fatal("station never saw the experiment peer")
	}
	if !exp.Up {
		t.Errorf("experiment peer status = up:%v", exp.Up)
	}
	transit, ok := st.Peer("amsix", "as1000")
	if !ok {
		t.Fatal("station never saw the transit neighbor")
	}
	if !transit.Up || transit.Announces == 0 {
		t.Errorf("transit status = up:%v announces:%d", transit.Up, transit.Announces)
	}
	if len(transit.Stats) == 0 {
		t.Error("stats report carried no TLVs for the transit neighbor")
	}
	if p.Monitor().Dropped() != 0 {
		t.Errorf("platform queue dropped %d events in a small scenario", p.Monitor().Dropped())
	}
	report := st.Report()
	for _, want := range []string{"as1000", "as10000", "exp:exp1"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %s:\n%s", want, report)
		}
	}
}
