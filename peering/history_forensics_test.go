package peering

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/telemetry"
)

// forensicsTestbed builds two hand-wired PoPs (no synthetic Internet,
// no neighbors — the only monitored routes are the experiment's) with a
// history store teed into the monitoring feed.
func forensicsTestbed(t *testing.T, dir string) (*Platform, *history.Store, *Client) {
	t.Helper()
	store, err := history.Open(history.Config{Dir: dir, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(PlatformConfig{ASN: 47065, History: store})
	popA, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	popB, err := p.AddPoP(PoPConfig{
		Name: "seattle", RouterID: addr("198.51.100.2"),
		LocalPool: pfx("127.66.0.0/16"), ExpLAN: pfx("100.66.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Proposal{
		Name: "whitehat", Owner: "sec-team", Plan: "hijack forensics",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{61574},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("whitehat", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient("whitehat", key, 61574)
	for _, pop := range []*PoP{popA, popB} {
		if err := c.OpenTunnel(pop); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return p, store, c
}

// TestHijackForensicsFromDiskAlone replays the paper's security-study
// scenario — victim announce at two PoPs, a more-specific hijack at one,
// containment — then closes the platform and reconstructs the whole
// incident from the on-disk segment log alone. The replayed state at
// each checkpoint must be identical to what the live store observed,
// and DiffPoPs must localize the rogue origin to the poisoned PoP.
func TestHijackForensicsFromDiskAlone(t *testing.T) {
	dir := t.TempDir()
	p, store, c := forensicsTestbed(t, dir)
	victim := pfx("184.164.224.0/24")
	specific := pfx("184.164.224.0/25")

	// The routers process experiment updates asynchronously, so each
	// phase waits until the store's replayed view reflects it before the
	// checkpoint clock is read.
	stateLen := func(prefix netip.Prefix) int {
		state, err := store.StateAt(prefix, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return len(state)
	}

	// Phase 1: the victim /24 announced at BOTH PoPs. The content-hash
	// deduper must collapse the two observations into one record with a
	// two-bit vantage map.
	if err := c.Announce("amsix", victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "amsix announce in history", func() bool { return stateLen(victim) == 1 })
	if err := c.Announce("seattle", victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cross-PoP dedup merge", func() bool { return store.Stats().Deduped >= 1 })
	tBaseline := time.Now()

	// Phase 2: the hijack — the more-specific /25 from seattle only.
	if err := c.Announce("seattle", specific); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hijack in history", func() bool { return stateLen(specific) == 1 })
	tHijack := time.Now()

	// Phase 3: containment — the /25 withdrawn.
	if err := c.Withdraw("seattle", specific, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "containment in history", func() bool { return stateLen(specific) == 0 })
	tContained := time.Now()

	// Live observations at each checkpoint, straight from the running
	// store. These are the ground truth the disk replay must match.
	type checkpoint struct {
		name   string
		at     time.Time
		prefix netip.Prefix
		live   []history.RouteState
	}
	var checkpoints []checkpoint
	for _, cp := range []struct {
		name   string
		at     time.Time
		prefix netip.Prefix
	}{
		{"baseline /24", tBaseline, victim},
		{"baseline /25", tBaseline, specific},
		{"mid-hijack /24", tHijack, victim},
		{"mid-hijack /25", tHijack, specific},
		{"contained /24", tContained, victim},
		{"contained /25", tContained, specific},
	} {
		live, err := store.StateAt(cp.prefix, cp.at)
		if err != nil {
			t.Fatal(err)
		}
		checkpoints = append(checkpoints, checkpoint{cp.name, cp.at, cp.prefix, live})
	}
	liveDiff, err := store.DiffPoPs("amsix", "seattle", tHijack)
	if err != nil {
		t.Fatal(err)
	}

	// The live run itself must show the expected shape before we trust
	// it as ground truth: victim held at both PoPs via one deduped
	// record, the /25 alive mid-hijack, gone after containment.
	if st := store.Stats(); st.Deduped == 0 {
		t.Fatalf("cross-PoP dedup never fired: %+v", st)
	}
	if got := checkpoints[0].live; len(got) != 1 || !reflect.DeepEqual(got[0].Vantages, []string{"amsix", "seattle"}) {
		t.Fatalf("baseline /24 state = %+v, want one route held at both PoPs", got)
	}
	if got := checkpoints[3].live; len(got) != 1 || !reflect.DeepEqual(got[0].Vantages, []string{"seattle"}) {
		t.Fatalf("mid-hijack /25 state = %+v, want the hijack at seattle only", got)
	}
	if got := checkpoints[5].live; len(got) != 0 {
		t.Fatalf("contained /25 state = %+v, want empty after withdraw", got)
	}

	// Shut the platform down: the history store seals its active segment
	// on the way out, leaving the incident entirely on disk.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the directory alone and replay.
	re, err := history.Open(history.Config{Dir: dir, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	for _, cp := range checkpoints {
		got, err := re.StateAt(cp.prefix, cp.at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, cp.live) {
			t.Errorf("%s: disk replay diverges from live observation:\n got %+v\nwant %+v", cp.name, got, cp.live)
		}
	}

	// The /25's full timeline: announce then withdraw, both seattle-only.
	events, err := re.Between(specific, time.Time{}, tContained)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Withdraw || !events[1].Withdraw {
		t.Fatalf("hijack timeline = %+v, want [announce withdraw]", events)
	}
	for _, ev := range events {
		if !reflect.DeepEqual(ev.VantageNames, []string{"seattle"}) {
			t.Errorf("hijack event vantages = %v, want [seattle]", ev.VantageNames)
		}
	}
	// The victim's announce is one record carrying both vantages and two
	// observations.
	events, err = re.Between(victim, time.Time{}, tContained)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Dups != 2 || !reflect.DeepEqual(events[0].VantageNames, []string{"amsix", "seattle"}) {
		t.Fatalf("victim timeline = %+v, want one deduped record seen from both PoPs", events)
	}

	// Forensics verdict: mid-hijack the PoPs diverge on exactly the /25,
	// with the rogue origin visible only at the poisoned PoP — matching
	// what the live store reported.
	diff, err := re.DiffPoPs("amsix", "seattle", tHijack)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diff, liveDiff) {
		t.Errorf("disk DiffPoPs = %+v, live = %+v", diff, liveDiff)
	}
	if len(diff) != 1 || diff[0].Prefix != specific || diff[0].OnlyAt != "seattle" || diff[0].Origin != 61574 {
		t.Fatalf("divergence = %+v, want the /25 only at seattle from origin 61574", diff)
	}
	// Before and after the incident the PoPs agree.
	for _, at := range []time.Time{tBaseline, tContained} {
		diff, err := re.DiffPoPs("amsix", "seattle", at)
		if err != nil {
			t.Fatal(err)
		}
		if len(diff) != 0 {
			t.Fatalf("DiffPoPs at %v = %+v, want none outside the hijack window", at, diff)
		}
	}
}
