package peering

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/inet"
)

// multiPoPTestbed builds two backbone-connected PoPs with one neighbor
// each and an approved experiment.
func multiPoPTestbed(t *testing.T) (*Platform, *PoP, *PoP, *Client) {
	t.Helper()
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)

	p := NewPlatform(PlatformConfig{ASN: 47065, Topology: topo})
	popA, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	popB, err := p.AddPoP(PoPConfig{
		Name: "seattle", RouterID: addr("198.51.100.2"),
		LocalPool: pfx("127.66.0.0/16"), ExpLAN: pfx("100.66.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectBackbone(popA, popB, 400e6, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := popA.ConnectTransit(1000, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := popB.ConnectPeer(10000, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Proposal{
		Name: "multi", Owner: "alice", Plan: "multi-pop study",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("multi", nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, popA, popB, NewClient("multi", key, expASN)
}

func TestClientAtTwoPoPsSimultaneously(t *testing.T) {
	_, popA, popB, c := multiPoPTestbed(t)
	for _, pop := range []*PoP{popA, popB} {
		if err := c.OpenTunnel(pop); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Each PoP hands the client its own view: local neighbor plus the
	// remote PoP's neighbor via the backbone.
	probe := inet.PrefixForASN(100)
	waitFor(t, "both views converge", func() bool {
		return len(c.RoutesFor("amsix", probe)) == 2 && len(c.RoutesFor("seattle", probe)) == 2
	})
	// Next hops at each PoP come from that PoP's own local pool.
	for _, p := range c.RoutesFor("amsix", probe) {
		if !pfx("127.65.0.0/16").Contains(p.NextHop()) {
			t.Errorf("amsix next hop %s from wrong pool", p.NextHop())
		}
	}
	for _, p := range c.RoutesFor("seattle", probe) {
		if !pfx("127.66.0.0/16").Contains(p.NextHop()) {
			t.Errorf("seattle next hop %s from wrong pool", p.NextHop())
		}
	}
	// Announce different subnets at different PoPs — ingress engineering.
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("seattle", pfx("184.164.225.0/24")); err != nil {
		t.Fatal(err)
	}
	topo := popA.platform.Topology()
	waitFor(t, "both announcements propagate", func() bool {
		return topo.Reachable(10000, pfx("184.164.224.0/24")) &&
			topo.Reachable(1000, pfx("184.164.225.0/24"))
	})
}

func TestTunnelDropWithdrawsRoutes(t *testing.T) {
	_, popA, _, c := multiPoPTestbed(t)
	if err := c.OpenTunnel(popA); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	topo := popA.platform.Topology()
	waitFor(t, "announcement out", func() bool {
		return topo.Reachable(1000, pfx("184.164.224.0/24"))
	})
	// The tunnel dies (laptop closed, VPN dropped): the platform must
	// withdraw everything the experiment announced.
	if err := c.CloseTunnel("amsix"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement withdrawn after tunnel drop", func() bool {
		rt := topo.RouteAt(1000, pfx("184.164.224.0/24"))
		if rt == nil {
			return true
		}
		for _, hop := range rt.Path {
			if hop == 47065 {
				return false
			}
		}
		return true
	})
	if popA.Router.ExperimentRoutes().Lookup(addr("184.164.224.1")) != nil {
		t.Error("experiment route survived tunnel drop")
	}
}

func TestRouteRefreshRedumpsTables(t *testing.T) {
	_, popA, _, c := multiPoPTestbed(t)
	if err := c.OpenTunnel(popA); err != nil {
		t.Fatal(err)
	}
	c.StartBGP("amsix")
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	probe := inet.PrefixForASN(100)
	waitFor(t, "initial routes", func() bool { return len(c.RoutesFor("amsix", probe)) >= 1 })

	pc, err := c.conn("amsix")
	if err != nil {
		t.Fatal(err)
	}
	before := pc.sess.UpdatesIn.Load()
	if err := pc.sess.SendRouteRefresh(ipv4Unicast()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "table re-dump after refresh", func() bool {
		return pc.sess.UpdatesIn.Load() > before
	})
}
