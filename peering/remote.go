package peering

import (
	"fmt"
	"io"
	"net"

	"repro/internal/tunnel"
)

// ServeAndAttach serves an experiment tunnel on carrier and immediately
// attaches the experiment's BGP session to the PoP router over the
// tunnel's control channel. This is the entry point for REMOTE clients
// (e.g. over TCP), where no in-process Client will call
// ConnectExperimentBGP: the router accepts whatever ASN the experiment
// opens with (announcement-level origin validation still applies, §4.7).
func (pop *PoP) ServeAndAttach(carrier net.Conn) (*tunnel.Tunnel, error) {
	tun, err := pop.ServeTunnel(carrier)
	if err != nil {
		return nil, err
	}
	if _, err := pop.Router.ConnectExperiment(tun.Name, 0, tun.Control()); err != nil {
		tun.Close()
		return nil, err
	}
	return tun, nil
}

// ListenAndServe accepts experiment connections for the platform on a
// TCP listener. Each connection starts with a one-line PoP selector
// ("<len><popname>") followed by the ordinary tunnel handshake. It
// returns when the listener closes.
func (p *Platform) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			popName, err := readLenString(conn)
			if err != nil {
				conn.Close()
				return
			}
			pop := p.PoP(popName)
			if pop == nil {
				conn.Close()
				return
			}
			if _, err := pop.ServeAndAttach(conn); err != nil && p.cfg.Logf != nil {
				p.cfg.Logf("remote tunnel: %v", err)
			}
		}()
	}
}

func readLenString(r io.Reader) (string, error) {
	var n [1]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, n[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// OpenTunnelRemote connects the client to a PoP over an arbitrary
// carrier (a TCP connection to a peeringd with -listen, for example).
// The server side must run ServeAndAttach; platformASN is the
// platform's AS number, needed for BGP negotiation and community
// construction.
func (c *Client) OpenTunnelRemote(popName string, platformASN uint32, carrier net.Conn) error {
	c.mu.Lock()
	if _, dup := c.conns[popName]; dup {
		c.mu.Unlock()
		return fmt.Errorf("peering: tunnel to %s already open", popName)
	}
	c.mu.Unlock()

	tun, err := tunnel.Dial(carrier, c.Name, c.Key)
	if err != nil {
		return err
	}
	_, err = c.newPopConn(popName, platformASN, tun)
	return err
}

// DialTCP opens a remote tunnel to popName at a platform's TCP endpoint.
func (c *Client) DialTCP(addr, popName string, platformASN uint32) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if len(popName) > 255 {
		conn.Close()
		return fmt.Errorf("peering: pop name too long")
	}
	if _, err := conn.Write(append([]byte{byte(len(popName))}, popName...)); err != nil {
		conn.Close()
		return err
	}
	return c.OpenTunnelRemote(popName, platformASN, conn)
}
