package peering

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/guard"
	"repro/internal/inet"
	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/pipe"
	"repro/internal/rpki"
	"repro/internal/tunnel"
)

// PoP is one point of presence: a vBGP router plus its experiment LAN
// and interconnections.
type PoP struct {
	// Name of the PoP.
	Name string
	// Router is the PoP's vBGP instance.
	Router *core.Router
	// RPKI is the PoP's RTR client (nil without a platform ROA store):
	// the router's live validated cache, synchronized from the
	// platform's trust anchor.
	RPKI *rpki.Client

	platform *Platform
	expLAN   *netsim.Segment
	expCIDR  netip.Prefix
	bbAddr   netip.Addr
	health   *guard.Health

	mu           sync.Mutex
	expHosts     int
	speakers     []*inet.Speaker
	servers      []*ixp.RouteServer
	guardPrev    uint64
	guardPrevAt  time.Time
	lastPressure guard.Pressure
}

// newConnPair returns both ends of an in-memory transport.
func newConnPair() (net.Conn, net.Conn) {
	a, b := pipe.New()
	return a, b
}

// ConnectTransit attaches an AS from the platform topology as a transit
// provider of the PoP (the AS treats the platform as a customer), on a
// dedicated segment, and starts the BGP session. maxRoutes bounds the
// routes announced (0 = full table).
func (pop *PoP) ConnectTransit(asn uint32, maxRoutes int) (*core.Neighbor, error) {
	return pop.connectTopologyNeighbor(asn, inet.RelCustomer, maxRoutes)
}

// ConnectPeer attaches an AS as a settlement-free peer of the PoP.
func (pop *PoP) ConnectPeer(asn uint32, maxRoutes int) (*core.Neighbor, error) {
	return pop.connectTopologyNeighbor(asn, inet.RelPeer, maxRoutes)
}

func (pop *PoP) connectTopologyNeighbor(asn uint32, rel inet.Rel, maxRoutes int) (*core.Neighbor, error) {
	topo := pop.platform.Topology()
	if topo == nil {
		return nil, fmt.Errorf("peering: platform has no topology")
	}
	if topo.AS(asn) == nil {
		return nil, fmt.Errorf("peering: AS%d not in topology", asn)
	}
	id := pop.platform.NextNeighborID()
	name := fmt.Sprintf("as%d", asn)
	seg := netsim.NewSegment(fmt.Sprintf("%s-%s-link", pop.Name, name))
	nbrAddr := netip.AddrFrom4([4]byte{198, 18, byte(id >> 8), byte(id)})
	rtrAddr := netip.AddrFrom4([4]byte{198, 19, byte(id >> 8), byte(id)})
	pop.Router.AddInterface("nbr-"+name, "neighbor", netip.PrefixFrom(rtrAddr, 16), seg)

	// A host stands in for the neighbor's edge: its address resolves,
	// delivered frames are observable, it answers echo probes for any
	// destination behind it, and it routes replies back through the
	// platform.
	h := netsim.NewHost(name)
	h.EchoAll = true
	hifc := h.AddInterface("eth0", ethernet.MAC{0x02, 0xa5, byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)},
		netip.PrefixFrom(nbrAddr, 16), seg)
	h.SetDefaultRoute(rtrAddr, hifc)

	cr, cn := newConnPair()
	cr = pop.platform.chaosWrap("neighbor", name, pop.Name, cr)
	ncfg := core.NeighborConfig{
		Name: name, ID: id, ASN: asn, Addr: nbrAddr,
		Interface: "nbr-" + name, Conn: cr,
	}
	if pop.platform.resilient() {
		// Chaos mode: the router redials the neighbor after transport
		// loss (a fresh speaker stands in for the neighbor's restarted
		// edge router) and retains its routes across the restart.
		ncfg.GracefulRestart = neighborGRTime
		ncfg.Redial = func() (net.Conn, error) {
			rr, rn := newConnPair()
			rr = pop.platform.chaosWrap("neighbor", name, pop.Name, rr)
			sp := inet.NewSpeaker(topo, asn, nbrAddr, rel, pop.platform.ASN(), maxRoutes, rn)
			pop.mu.Lock()
			pop.speakers = append(pop.speakers, sp)
			pop.mu.Unlock()
			return rr, nil
		}
	}
	nbr, err := pop.Router.AddNeighbor(ncfg)
	if err != nil {
		return nil, err
	}
	sp := inet.NewSpeaker(topo, asn, nbrAddr, rel, pop.platform.ASN(), maxRoutes, cn)
	pop.mu.Lock()
	pop.speakers = append(pop.speakers, sp)
	pop.mu.Unlock()
	return nbr, nil
}

// ConnectIXP attaches the PoP to an exchange: one session per route
// server plus bilateral sessions with the exchange's bilateral members.
// maxRoutesPerMember bounds each member's table (0 = full).
func (pop *PoP) ConnectIXP(x *ixp.IXP, routeServers int, maxRoutesPerMember int) error {
	addr := netip.AddrFrom4([4]byte{198, 19, 255, byte(len(pop.Router.Neighbors())%250 + 1)})
	ifcName := "ix-" + x.Name
	pop.Router.AddInterface(ifcName, "neighbor", netip.PrefixFrom(addr, 16), x.Fabric)

	for i := 0; i < routeServers; i++ {
		id := pop.platform.NextNeighborID()
		name := fmt.Sprintf("%s-rs%d", x.Name, i+1)
		cr, cn := newConnPair()
		if _, err := pop.Router.AddNeighbor(core.NeighborConfig{
			Name: name, ID: id, ASN: x.RouteServerASN,
			Addr:      netip.AddrFrom4([4]byte{198, 19, 254, byte(i + 1)}),
			Interface: ifcName, Conn: cr, RouteServer: true,
		}); err != nil {
			return err
		}
		rs := x.ConnectRouteServer(name, pop.platform.ASN(), cn, maxRoutesPerMember)
		pop.mu.Lock()
		pop.servers = append(pop.servers, rs)
		pop.mu.Unlock()
	}
	for _, m := range x.Members() {
		if !m.Bilateral {
			continue
		}
		id := pop.platform.NextNeighborID()
		cr, cn := newConnPair()
		if _, err := pop.Router.AddNeighbor(core.NeighborConfig{
			Name: fmt.Sprintf("%s-as%d", x.Name, m.ASN), ID: id, ASN: m.ASN,
			Addr: m.Addr, Interface: ifcName, Conn: cr,
		}); err != nil {
			return err
		}
		sp, err := x.ConnectBilateral(m.ASN, pop.platform.ASN(), maxRoutesPerMember, cn)
		if err != nil {
			return err
		}
		_ = sp
		pop.mu.Lock()
		pop.speakers = append(pop.speakers, sp)
		pop.mu.Unlock()
	}
	return nil
}

// ExpLAN returns the PoP's experiment segment.
func (pop *PoP) ExpLAN() *netsim.Segment { return pop.expLAN }

// ServeTunnel authenticates an inbound experiment tunnel on carrier and,
// on success, bridges the tunnel onto the experiment LAN: a bridge
// interface carries the client's MAC and answers ARP for its tunnel IP;
// every frame the experiment sends enters the LAN through the PoP's
// data-plane security filters (source-address validation compiled from
// the experiment's allocation, §4.7), and frames for the client's MAC
// flow back through the tunnel.
func (pop *PoP) ServeTunnel(carrier net.Conn) (*tunnel.Tunnel, error) {
	pop.platform.mu.Lock()
	creds := make(tunnel.Credentials, len(pop.platform.creds))
	for k, v := range pop.platform.creds {
		creds[k] = v
	}
	pop.platform.mu.Unlock()

	pop.mu.Lock()
	pop.expHosts++
	idx := pop.expHosts
	pop.mu.Unlock()
	clientIP := clientAddr(pop.expCIDR, idx)
	clientMAC := ethernet.MAC{0x0a, 0x00, 0, 0, 0, byte(idx)}
	blob := []byte(fmt.Sprintf("%s %d %s", clientIP, pop.expCIDR.Bits(), lastUsable(pop.expCIDR)))

	tun, err := tunnel.Serve(carrier, creds, func(string) []byte { return blob })
	if err != nil {
		return nil, err
	}
	exp := pop.platform.Engine.Experiment(tun.Name)
	if exp == nil {
		tun.Close()
		return nil, fmt.Errorf("peering: experiment %s not registered", tun.Name)
	}

	bridge := netsim.NewInterface(pop.Name+"-tap-"+tun.Name, clientMAC)
	bridge.AddAddr(clientIP) // answers ARP for the client's tunnel IP
	bridge.SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		_ = tun.SendFrame(fr.Marshal())
	})

	// Data-plane enforcement: experiment frames may only source from the
	// experiment's allocation or its tunnel address (anti-spoofing).
	allowed := append([]netip.Prefix{netip.PrefixFrom(clientIP, 32)}, exp.Prefixes...)
	filter, err := sourceFilterFor("antispoof-"+tun.Name, allowed)
	if err != nil {
		tun.Close()
		return nil, err
	}
	bridge.AddEgressFilter(filter)

	tun.OnFrame(func(data []byte) {
		var fr ethernet.Frame
		if fr.DecodeFromBytes(data) != nil {
			return
		}
		bridge.Send(&fr)
	})
	bridge.Attach(pop.expLAN)
	pop.Router.SetExperimentTunnelIP(tun.Name, clientIP)
	go func() {
		<-tun.Done()
		bridge.Attach(nil)
	}()
	return tun, nil
}

// sourceFilterFor compiles an anti-spoofing whitelist into a netsim
// filter backed by the BPF VM (§4.7).
func sourceFilterFor(name string, allowed []netip.Prefix) (netsim.Filter, error) {
	prog, err := bpf.SourceIPFilter(name, allowed)
	if err != nil {
		return nil, err
	}
	return netsim.FilterFunc(func(data []byte) netsim.Verdict {
		if prog.Run(data) == bpf.VerdictPass {
			return netsim.VerdictPass
		}
		return netsim.VerdictDrop
	}), nil
}

// clientAddr allocates the idx-th client address in the experiment LAN.
func clientAddr(cidr netip.Prefix, idx int) netip.Addr {
	raw := cidr.Masked().Addr().As4()
	v := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	v += uint32(idx)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// ConnectExperimentBGP attaches the experiment's BGP session carried on
// tun to the PoP's router. The router-side control conn goes through
// the fault injector as class "experiment"; severing it kills the whole
// tunnel (control and data share one carrier), which is exactly how an
// OpenVPN drop takes BIRD down with it.
func (pop *PoP) ConnectExperimentBGP(tun *tunnel.Tunnel, expASN uint32) error {
	conn := pop.platform.chaosWrap("experiment", tun.Name, pop.Name, tun.Control())
	_, err := pop.Router.ConnectExperiment(tun.Name, expASN, conn)
	return err
}
