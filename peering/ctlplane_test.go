package peering

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"net/netip"

	"repro/internal/ctlplane"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

// ctlplaneTestbed is two backbone-connected PoPs under a running
// control plane with its API served over HTTP.
func ctlplaneTestbed(t *testing.T) (*Platform, *ControlPlane, *httptest.Server) {
	t.Helper()
	p := NewPlatform(PlatformConfig{ASN: 47065, Logf: t.Logf})
	popA, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	popB, err := p.AddPoP(PoPConfig{
		Name: "seattle", RouterID: addr("198.51.100.2"),
		LocalPool: pfx("127.66.0.0/16"), ExpLAN: pfx("100.66.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectBackbone(popA, popB, 400e6, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cp, err := NewControlPlane(p, ControlPlaneConfig{
		Reconciler: ctlplane.ReconcilerConfig{
			Resync:         10 * time.Millisecond,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     100 * time.Millisecond,
			ActuationGrace: 2 * time.Second,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	cp.API.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		cp.Close()
		p.Close()
	})
	return p, cp, srv
}

// httpJSON drives one API call and decodes the response.
func httpJSON(t *testing.T, srv *httptest.Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// directPaths returns the pop's experiment-RIB paths for the prefix
// installed directly by the named experiment's own session. The
// backbone mesh redistributes accepted routes between PoPs under peer
// "mesh:<pop>", so the raw table holds copies beyond the direct one.
func directPaths(p *Platform, pop string, prefix netip.Prefix, exp string) []*rib.Path {
	var out []*rib.Path
	for _, path := range p.PoP(pop).Router.ExperimentRoutes().Paths(prefix) {
		if path.Peer == exp {
			out = append(out, path)
		}
	}
	return out
}

// waitExperimentPhase polls the API until the experiment reports the
// phase at (or past) the wanted revision.
func waitExperimentPhase(t *testing.T, srv *httptest.Server, name string, phase ctlplane.Phase, rev int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last []byte
	for time.Now().Before(deadline) {
		code, body := httpJSON(t, srv, "GET", "/v1/experiments/"+name, nil)
		last = body
		if code == 200 {
			var view struct {
				Status *ctlplane.ObjectStatus `json:"status"`
			}
			if json.Unmarshal(body, &view) == nil && view.Status != nil &&
				view.Status.Phase == phase &&
				(rev == 0 || view.Status.ConvergedRevision >= rev) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("experiment %s never reached %s@%d over HTTP; last: %s", name, phase, rev, last)
}

// TestControlPlaneHTTPLifecycle is the acceptance test: a full
// experiment lifecycle driven purely over the HTTP API —
// create → validate → canary → promote → steer → withdraw → delete —
// with idempotent convergence, CAS conflicts, a concurrent SSE
// subscriber observing every transition, metrics, and audit entries.
func TestControlPlaneHTTPLifecycle(t *testing.T) {
	p, cp, srv := ctlplaneTestbed(t)

	// Concurrent SSE subscriber: collect reconcile + store + deploy
	// events for the whole lifecycle.
	sseResp, err := srv.Client().Get(srv.URL + "/v1/watch?types=reconcile,store,deploy")
	if err != nil {
		t.Fatalf("open watch stream: %v", err)
	}
	defer sseResp.Body.Close()
	var sseMu sync.Mutex
	sseEvents := make(map[string][]string) // event type -> data payloads
	go func() {
		scanner := bufio.NewScanner(sseResp.Body)
		var event string
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "event: ") {
				event = strings.TrimPrefix(line, "event: ")
			}
			if strings.HasPrefix(line, "data: ") {
				sseMu.Lock()
				sseEvents[event] = append(sseEvents[event], strings.TrimPrefix(line, "data: "))
				sseMu.Unlock()
			}
		}
	}()
	waitFor(t, "SSE subscriber registered", func() bool { return cp.Hub.Subscribers() == 1 })

	spec := map[string]any{
		"name": "steering", "owner": "alice", "asn": expASN,
		"plan":     "control-plane lifecycle study",
		"prefixes": []string{"184.164.224.0/23"},
		"announcements": []map[string]any{
			{"prefix": "184.164.224.0/24", "pops": []string{"amsix", "seattle"}},
		},
	}

	// Dry-run first: validated, not stored.
	code, _ := httpJSON(t, srv, "POST", "/v1/experiments?dry_run=1", spec)
	if code != 200 {
		t.Fatalf("dry run -> %d", code)
	}
	if code, _ := httpJSON(t, srv, "GET", "/v1/experiments/steering", nil); code != 404 {
		t.Fatalf("dry run stored the object (GET -> %d)", code)
	}

	// Create.
	code, body := httpJSON(t, srv, "POST", "/v1/experiments", spec)
	if code != 201 {
		t.Fatalf("create -> %d %s", code, body)
	}
	var view struct {
		Object ctlplane.Object `json:"object"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	rev := view.Object.Revision

	// Idempotent re-POST: 200, no new revision.
	code, body = httpJSON(t, srv, "POST", "/v1/experiments", spec)
	if code != 200 {
		t.Fatalf("re-create -> %d %s", code, body)
	}
	json.Unmarshal(body, &view)
	if view.Object.Revision != rev {
		t.Fatalf("idempotent re-POST bumped revision %d -> %d", rev, view.Object.Revision)
	}

	// The reconciler converges: proposal approved, tunnels opened,
	// sessions established, both announcements installed in the PoPs'
	// experiment RIBs.
	waitExperimentPhase(t, srv, "steering", ctlplane.PhaseConverged, rev)
	for _, pop := range []string{"amsix", "seattle"} {
		paths := directPaths(p, pop, pfx("184.164.224.0/24"), "steering")
		if len(paths) != 1 {
			t.Fatalf("pop %s RIB = %v, want one steering path", pop, paths)
		}
	}

	// The mirror recorded config revisions; canary then promote the
	// latest onto the fleet over HTTP.
	code, body = httpJSON(t, srv, "GET", "/v1/experiments/steering", nil)
	json.Unmarshal(body, &view)
	cfgRev := view.Object.ConfigRev
	if cfgRev == 0 {
		t.Fatal("no mirrored config revision")
	}
	code, body = httpJSON(t, srv, "POST", "/v1/deploy/canary",
		map[string]any{"revision": cfgRev, "pops": []string{"amsix"}})
	if code != 200 {
		t.Fatalf("canary -> %d %s", code, body)
	}
	code, body = httpJSON(t, srv, "POST", "/v1/deploy/promote", map[string]any{"revision": cfgRev})
	if code != 200 {
		t.Fatalf("promote -> %d %s", code, body)
	}
	var deployResult struct {
		Deployed map[string]int `json:"deployed"`
	}
	json.Unmarshal(body, &deployResult)
	if deployResult.Deployed["amsix"] != cfgRev || deployResult.Deployed["seattle"] != cfgRev {
		t.Fatalf("promote deployed = %v, want rev %d fleet-wide", deployResult.Deployed, cfgRev)
	}

	// Stale CAS: PATCH at the creation revision after it advanced is
	// rejected with 409 and the current object.
	steered := map[string]any{
		"name": "steering", "owner": "alice", "asn": expASN,
		"plan":     "control-plane lifecycle study",
		"prefixes": []string{"184.164.224.0/23"},
		"announcements": []map[string]any{
			{"prefix": "184.164.224.0/24", "pops": []string{"seattle"}, "prepend": 2},
		},
	}
	code, _ = httpJSON(t, srv, "PATCH", "/v1/experiments/steering",
		map[string]any{"revision": rev + 1000, "spec": steered})
	if code != 409 {
		t.Fatalf("stale PATCH -> %d, want 409", code)
	}

	// Steer with the current revision: withdraw at amsix, prepend at
	// seattle.
	code, body = httpJSON(t, srv, "GET", "/v1/experiments/steering", nil)
	json.Unmarshal(body, &view)
	code, body = httpJSON(t, srv, "PATCH", "/v1/experiments/steering",
		map[string]any{"revision": view.Object.Revision, "spec": steered})
	if code != 200 {
		t.Fatalf("steer PATCH -> %d %s", code, body)
	}
	json.Unmarshal(body, &view)
	waitExperimentPhase(t, srv, "steering", ctlplane.PhaseConverged, view.Object.Revision)

	waitFor(t, "amsix withdrawal converges", func() bool {
		return len(directPaths(p, "amsix", pfx("184.164.224.0/24"), "steering")) == 0
	})
	paths := directPaths(p, "seattle", pfx("184.164.224.0/24"), "steering")
	if len(paths) != 1 {
		t.Fatalf("seattle RIB after steer = %v", paths)
	}
	asPath := paths[0].Attrs.ASPathFlat()
	prepends := 0
	for _, asn := range asPath {
		if asn == expASN {
			prepends++
		}
	}
	if prepends < 3 { // origin + 2 prepends
		t.Fatalf("prepend not applied: AS path %v", asPath)
	}

	// Delete: 202, teardown converges, object gone, RIBs clean, name
	// reusable.
	code, _ = httpJSON(t, srv, "DELETE", "/v1/experiments/steering", nil)
	if code != 202 {
		t.Fatalf("delete -> %d, want 202", code)
	}
	waitFor(t, "object removed", func() bool {
		code, _ := httpJSON(t, srv, "GET", "/v1/experiments/steering", nil)
		return code == 404
	})
	for _, pop := range []string{"amsix", "seattle"} {
		if n := len(directPaths(p, pop, pfx("184.164.224.0/24"), "steering")); n != 0 {
			t.Fatalf("pop %s RIB not cleaned after delete: %d paths", pop, n)
		}
	}
	code, _ = httpJSON(t, srv, "POST", "/v1/experiments", spec)
	if code != 201 {
		t.Fatalf("recreate after delete -> %d, want 201", code)
	}

	// Every actuation flowed through the audited enforcement path: the
	// lifecycle (2 announces, steer = withdraw + re-announce, teardown
	// withdraw) leaves at least 5 audit entries for the experiment.
	var audited int
	for _, e := range p.Engine.Audit() {
		if e.Experiment == "steering" {
			audited++
		}
	}
	if audited < 5 {
		t.Fatalf("audit log has %d entries for the managed experiment, want >= 5", audited)
	}

	// The SSE subscriber saw the whole story: store commits for
	// create/update/delete, reconcile transitions through converged,
	// and the deploy verbs.
	waitFor(t, "SSE stream catches up", func() bool {
		sseMu.Lock()
		defer sseMu.Unlock()
		return len(sseEvents["deploy"]) >= 2 && len(sseEvents["store"]) >= 4
	})
	sseMu.Lock()
	defer sseMu.Unlock()
	storeAll := strings.Join(sseEvents["store"], "\n")
	for _, kind := range []string{"created", "updated", "deleted", "removed"} {
		if !strings.Contains(storeAll, fmt.Sprintf("%q", kind)) {
			t.Errorf("store stream missing %s change: %s", kind, storeAll)
		}
	}
	recAll := strings.Join(sseEvents["reconcile"], "\n")
	for _, phase := range []string{"converging", "converged", "deleting"} {
		if !strings.Contains(recAll, fmt.Sprintf("%q", phase)) {
			t.Errorf("reconcile stream missing %s transition: %s", phase, recAll)
		}
	}
	deployAll := strings.Join(sseEvents["deploy"], "\n")
	for _, verb := range []string{"canary", "promote"} {
		if !strings.Contains(deployAll, verb) {
			t.Errorf("deploy stream missing %s: %s", verb, deployAll)
		}
	}

	// ctlplane metrics registered and moving.
	reg := telemetry.Default()
	if reg.Counter("ctlplane_store_commits_total").Value() == 0 {
		t.Error("ctlplane_store_commits_total never incremented")
	}
	if reg.Counter("ctlplane_reconcile_runs_total").Value() == 0 {
		t.Error("ctlplane_reconcile_runs_total never incremented")
	}
	if reg.Counter("ctlplane_reconcile_actions_total", telemetry.L("kind", "announce")).Value() == 0 {
		t.Error("announce action counter never incremented")
	}
	if reg.Counter("ctlplane_watch_events_total", telemetry.L("type", "reconcile")).Value() == 0 {
		t.Error("watch event counter never incremented")
	}
}

// TestControlPlaneValidationRejectsUnknownPoP exercises the synchronous
// platform validation path: a spec naming a PoP that does not exist is
// rejected at POST time with 422, before any actuation.
func TestControlPlaneValidationRejectsUnknownPoP(t *testing.T) {
	_, _, srv := ctlplaneTestbed(t)
	spec := map[string]any{
		"name": "ghost", "owner": "alice", "asn": expASN,
		"prefixes": []string{"184.164.226.0/24"},
		"announcements": []map[string]any{
			{"prefix": "184.164.226.0/24", "pops": []string{"atlantis"}},
		},
	}
	code, body := httpJSON(t, srv, "POST", "/v1/experiments", spec)
	if code != 422 {
		t.Fatalf("unknown-pop create -> %d %s, want 422", code, body)
	}
}

// TestControlPlaneCoexistsWithManualExperiments checks the mirror keeps
// out-of-band experiments: an experiment approved through the manual
// workflow survives a control-plane commit + promote cycle.
func TestControlPlaneCoexistsWithManualExperiments(t *testing.T) {
	p, _, srv := ctlplaneTestbed(t)
	if err := p.Submit(Proposal{
		Name: "manual", Owner: "bob", Plan: "hand-driven study",
		Prefixes: []netip.Prefix{pfx("184.164.230.0/24")},
		ASNs:     []uint32{65010},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Approve("manual", nil); err != nil {
		t.Fatal(err)
	}

	spec := map[string]any{
		"name": "managed", "owner": "alice", "asn": expASN,
		"prefixes": []string{"184.164.224.0/24"},
		"announcements": []map[string]any{
			{"prefix": "184.164.224.0/24", "pops": []string{"amsix"}},
		},
	}
	code, body := httpJSON(t, srv, "POST", "/v1/experiments", spec)
	if code != 201 {
		t.Fatalf("create -> %d %s", code, body)
	}
	waitExperimentPhase(t, srv, "managed", ctlplane.PhaseConverged, 0)

	var view struct {
		Object ctlplane.Object `json:"object"`
	}
	_, body = httpJSON(t, srv, "GET", "/v1/experiments/managed", nil)
	json.Unmarshal(body, &view)
	code, body = httpJSON(t, srv, "POST", "/v1/deploy/promote",
		map[string]any{"revision": view.Object.ConfigRev})
	if code != 200 {
		t.Fatalf("promote -> %d %s", code, body)
	}
	// Both experiments remain registered with the enforcement engine.
	names := p.Engine.Experiments()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["manual"] || !found["managed"] {
		t.Fatalf("promote disturbed registrations: %v", names)
	}
}
