package peering

import (
	"fmt"
	"net/netip"

	"repro/internal/collector"
	"repro/internal/config"
	"repro/internal/ethernet"
	"repro/internal/netctl"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// EnableIPv6AutoApproval turns on the automatic-approval path the paper
// considered for IPv6 (§4.6: "We considered automatic approval and
// allocation of an IPv6 prefix ... since vBGP's security architecture
// and filters will prevent misbehavior"): proposals that request no
// IPv4 space are granted a /48 from pool and approved without manual
// review, with default (least-privilege) capabilities.
func (p *Platform) EnableIPv6AutoApproval(pool netip.Prefix) error {
	if !pool.Addr().Is6() || pool.Bits() > 48 {
		return fmt.Errorf("peering: auto-approval pool must be IPv6 and at least a /48")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.v6AutoPool = pool.Masked()
	return nil
}

// allocV6Locked carves the next /48 from the auto-approval pool.
func (p *Platform) allocV6Locked() (netip.Prefix, error) {
	p.v6AutoSeq++
	if p.v6AutoSeq >= 1<<(48-p.v6AutoPool.Bits()) {
		return netip.Prefix{}, fmt.Errorf("peering: IPv6 auto-approval pool exhausted")
	}
	raw := p.v6AutoPool.Addr().As16()
	// The /48 index lands in bytes 4-5 (below a /32 pool base).
	raw[4] = byte(p.v6AutoSeq >> 8)
	raw[5] = byte(p.v6AutoSeq)
	return netip.PrefixFrom(netip.AddrFrom16(raw), 48), nil
}

// SubmitIPv6 files an IPv6-only proposal through the automatic-approval
// path, returning the allocated /48 and the issued credentials.
func (p *Platform) SubmitIPv6(name, owner, plan string, asn uint32) (netip.Prefix, string, error) {
	p.mu.Lock()
	if !p.v6AutoPool.IsValid() {
		p.mu.Unlock()
		return netip.Prefix{}, "", fmt.Errorf("peering: IPv6 auto-approval not enabled")
	}
	if name == "" || owner == "" || plan == "" {
		p.mu.Unlock()
		return netip.Prefix{}, "", fmt.Errorf("peering: proposal needs a name, owner, and plan")
	}
	if _, dup := p.proposals[name]; dup {
		p.mu.Unlock()
		return netip.Prefix{}, "", fmt.Errorf("peering: proposal %s already exists", name)
	}
	alloc, err := p.allocV6Locked()
	if err != nil {
		p.mu.Unlock()
		return netip.Prefix{}, "", err
	}
	p.keySeq++
	key := fmt.Sprintf("key-%s-%06d", name, p.keySeq)
	prop := &Proposal{
		Name: name, Owner: owner, Plan: plan,
		Prefixes: []netip.Prefix{alloc}, ASNs: []uint32{asn},
		Status: StatusApproved, VPNKey: key,
	}
	p.proposals[name] = prop
	p.creds[name] = key
	p.mu.Unlock()

	p.Engine.Register(&policy.Experiment{
		Name: name, Prefixes: []netip.Prefix{alloc}, ASNs: []uint32{asn},
	})
	return alloc, key, nil
}

// Container is experiment logic running directly on a Peering server
// (the platform extension of §7.4 [50]): a host attached to the PoP's
// experiment LAN without a tunnel, for lightweight latency-sensitive
// applications. The host still passes the PoP's data-plane enforcement
// on egress and receives inbound traffic for its address.
type Container struct {
	// Host is the container's network stack. Add protocol handlers with
	// Host.Handle, send with Host.SendIP / Host.Ping.
	Host *netsim.Host
	// Addr is the container's address on the experiment LAN.
	Addr netip.Addr
	// Iface is the container's interface.
	Iface *netsim.Interface
}

// AttachContainer runs a container for an approved experiment at the
// PoP: it is addressed on the experiment LAN, protected by the same
// anti-spoofing filter tunnels get, and reachable for inbound traffic.
func (pop *PoP) AttachContainer(expName string) (*Container, error) {
	exp := pop.platform.Engine.Experiment(expName)
	if exp == nil {
		return nil, fmt.Errorf("peering: experiment %s not approved", expName)
	}
	pop.mu.Lock()
	pop.expHosts++
	idx := pop.expHosts
	pop.mu.Unlock()
	addr := clientAddr(pop.expCIDR, idx)
	mac := ethernet.MAC{0x0a, 0x01, 0, 0, 0, byte(idx)}

	h := netsim.NewHost("container-" + expName)
	ifc := h.AddInterface("eth0", mac, netip.PrefixFrom(addr, pop.expCIDR.Bits()), pop.expLAN)
	h.SetDefaultRoute(lastUsable(pop.expCIDR), ifc)

	// Same data-plane enforcement as tunnel clients (§4.7).
	allowed := append([]netip.Prefix{netip.PrefixFrom(addr, 32)}, exp.Prefixes...)
	filter, err := sourceFilterFor("container-"+expName, allowed)
	if err != nil {
		return nil, err
	}
	ifc.AddEgressFilter(filter)

	pop.Router.SetExperimentTunnelIP(expName, addr)
	return &Container{Host: h, Addr: addr, Iface: ifc}, nil
}

// ApplyModel pushes a configuration-model revision onto the live
// platform: the enforcement engine is synchronized with the approved
// experiments (without disturbing rate-limit state or running
// sessions), tunnel credentials are refreshed, and each PoP's interface
// state is reconciled transactionally (§5).
func (p *Platform) ApplyModel(m *config.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	m.SyncPolicy(p.Engine)

	p.mu.Lock()
	for _, e := range m.ApprovedExperiments() {
		if e.VPNKey != "" {
			p.creds[e.Name] = e.VPNKey
		}
	}
	pops := make([]*PoP, 0, len(p.pops))
	for _, pop := range p.pops {
		pops = append(pops, pop)
	}
	p.mu.Unlock()

	for _, pop := range pops {
		spec := m.PoP(pop.Name)
		if spec == nil {
			continue
		}
		intent, err := m.NetworkIntent(pop.Name)
		if err != nil {
			return err
		}
		// Only reconcile interfaces that exist on the router; the model
		// may describe interconnections not yet wired in this process.
		ifaces := make(map[string]*netsim.Interface)
		for name := range intent.Ifaces {
			if ifc := pop.Router.Interface(name); ifc != nil {
				ifaces[name] = ifc
			} else {
				delete(intent.Ifaces, name)
			}
		}
		ctl := netctl.NewController(ifaces)
		if _, err := ctl.Reconcile(intent); err != nil {
			return fmt.Errorf("peering: reconcile %s: %w", pop.Name, err)
		}
	}
	return nil
}

// AttachCollector peers a passive route collector with a PoP's router
// (the RouteViews/RIS role, §8): the collector receives every route the
// PoP knows via ADD-PATH and records the update stream for offline
// analysis. Collectors never announce; any announcement they might send
// is rejected by enforcement like any unregistered experiment's.
func (pop *PoP) AttachCollector(name string, collectorASN uint32) (*collector.Collector, error) {
	cr, cc := newConnPair()
	if _, err := pop.Router.ConnectExperiment("collector:"+name, collectorASN, cr); err != nil {
		return nil, err
	}
	col := collector.New(name, collectorASN, pop.platform.ASN(),
		netip.AddrFrom4([4]byte{128, 223, 51, byte(len(name)%250 + 1)}), cc)
	return col, nil
}
