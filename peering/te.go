package peering

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/catchment"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// TEConfig configures closed-loop traffic engineering: an anycast
// prefix, per-PoP load targets, and the population the catchment is
// measured against. It rides on PlatformConfig.TE (operator defaults,
// e.g. from peeringd flags) or is passed directly to NewTEController.
type TEConfig struct {
	// Prefix is the anycast prefix under engineering.
	Prefix netip.Prefix
	// Targets is the desired share of client weight per PoP (should
	// sum to ~1). Empty means equal shares across all PoPs.
	Targets map[string]float64
	// Clients is the synthetic population size placed across the
	// topology (cone-weighted) when Populations is nil.
	Clients int
	// Seed makes the population placement reproducible.
	Seed int64
	// Populations overrides generated placement.
	Populations []catchment.Population
	// Tolerance, MaxRounds, MaxPrepend, Patience tune the control loop
	// (see catchment.Config; zero selects the defaults).
	Tolerance  float64
	MaxRounds  int
	MaxPrepend int
	Patience   int
	// SettleTimeout bounds how long one observation waits for routing
	// to settle (default 10s).
	SettleTimeout time.Duration
	// PoPIngressBps is the modeled ingress capacity per PoP for the
	// traffic measurement (default 400e6, the paper's backbone
	// average).
	PoPIngressBps float64
	// PerClientBps is each client's demand in the traffic model
	// (default 1000 bps, keeping 100k-client demand near link scale).
	PerClientBps float64
	// Registry receives te_*/catchment_* metrics (default
	// telemetry.Default()).
	Registry *telemetry.Registry
}

// TE returns the platform's traffic-engineering defaults, or nil.
func (p *Platform) TE() *TEConfig { return p.cfg.TE }

// CatchmentViews snapshots every PoP's contribution to catchment
// resolution: its local neighbor set plus its experiment-FIB snapshot
// (built fresh, so the view reflects the routes of this instant).
func (p *Platform) CatchmentViews(prefix netip.Prefix) []catchment.PoPView {
	views := make([]catchment.PoPView, 0, len(p.PoPs()))
	for _, name := range p.PoPs() {
		pop := p.PoP(name)
		var refs []catchment.NeighborRef
		for _, n := range pop.Router.Neighbors() {
			if n.Remote {
				continue
			}
			refs = append(refs, catchment.NeighborRef{PoP: name, ID: n.ID, ASN: n.ASN})
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
		snap := pop.Router.ExperimentRoutes().BuildSnapshot()
		views = append(views, catchment.ViewFromFIB(name, snap, refs, prefix))
	}
	return views
}

// ResolveCatchments resolves where every population's best path lands
// right now, straight from the routers' FIB snapshots and the synthetic
// Internet's converged routes.
func (p *Platform) ResolveCatchments(prefix netip.Prefix, pops []catchment.Population) (*catchment.Map, error) {
	if p.cfg.Topology == nil {
		return nil, fmt.Errorf("peering: catchment resolution needs a topology")
	}
	views := p.CatchmentViews(prefix)
	return catchment.Resolve(p.cfg.Topology, p.cfg.ASN, prefix, views, pops), nil
}

// teActuator turns controller actions into client announcements. Each
// PoP owns one announcement version (a stable ADD-PATH ID) whose
// target-community whitelist is that PoP's local neighbors minus the
// vias shed so far — so per-PoP versions never fight each other, and
// every action lands in the policy engine's audit log as a regular
// announce or withdraw.
type teActuator struct {
	client *Client
	prefix netip.Prefix

	mu    sync.Mutex
	state map[string]*popAnnState
}

type popAnnState struct {
	version   uint32
	neighbors []catchment.NeighborRef // local neighbors, sorted by ID
	excluded  map[uint32]bool         // neighbor IDs shed by no-export
	prepend   int
	withdrawn bool
	announced bool // a version is currently on the wire
}

// AnnounceAll pushes every PoP's initial announcement (all local
// neighbors, no prepend).
func (a *teActuator) AnnounceAll() error {
	a.mu.Lock()
	pops := make([]string, 0, len(a.state))
	for pop := range a.state {
		pops = append(pops, pop)
	}
	a.mu.Unlock()
	sort.Strings(pops)
	for _, pop := range pops {
		if err := a.sync(pop); err != nil {
			return err
		}
	}
	return nil
}

// Apply implements catchment.Actuator.
func (a *teActuator) Apply(act catchment.Action) error {
	a.mu.Lock()
	st := a.state[act.PoP]
	if st == nil {
		a.mu.Unlock()
		return fmt.Errorf("peering: te action for unknown pop %s", act.PoP)
	}
	switch act.Kind {
	case catchment.ActionNoExport:
		id, ok := st.neighborID(act.Via)
		if !ok {
			a.mu.Unlock()
			return fmt.Errorf("peering: no neighbor AS%d at %s", act.Via, act.PoP)
		}
		st.excluded[id] = true
	case catchment.ActionReExport:
		id, ok := st.neighborID(act.Via)
		if !ok {
			a.mu.Unlock()
			return fmt.Errorf("peering: no neighbor AS%d at %s", act.Via, act.PoP)
		}
		delete(st.excluded, id)
	case catchment.ActionPrepend:
		st.prepend = act.Prepend
	case catchment.ActionWithdraw:
		st.withdrawn = true
	case catchment.ActionAnnounce:
		st.withdrawn = false
	default:
		a.mu.Unlock()
		return fmt.Errorf("peering: unknown te action %v", act.Kind)
	}
	a.mu.Unlock()
	return a.sync(act.PoP)
}

func (st *popAnnState) neighborID(asn uint32) (uint32, bool) {
	for _, n := range st.neighbors {
		if n.ASN == asn {
			return n.ID, true
		}
	}
	return 0, false
}

// sync pushes one PoP's current desired state onto the wire. An empty
// whitelist means "export to everyone" in the community scheme, so a
// PoP with every neighbor excluded — or an explicit withdraw — sends a
// version withdraw instead.
func (a *teActuator) sync(pop string) error {
	a.mu.Lock()
	st := a.state[pop]
	allowed := make([]uint32, 0, len(st.neighbors))
	for _, n := range st.neighbors {
		if !st.excluded[n.ID] {
			allowed = append(allowed, n.ID)
		}
	}
	version := st.version
	prepend := st.prepend
	down := st.withdrawn || len(allowed) == 0
	wasAnnounced := st.announced
	st.announced = !down
	a.mu.Unlock()

	if down {
		if !wasAnnounced {
			return nil
		}
		return a.client.Withdraw(pop, a.prefix, version)
	}
	opts := []AnnounceOption{WithVersion(version), ToNeighbors(allowed...)}
	if prepend > 0 {
		opts = append(opts, WithPrepend(prepend))
	}
	return a.client.Announce(pop, a.prefix, opts...)
}

// TEController runs the closed-loop controller against a live platform
// through an experiment client.
type TEController struct {
	platform *Platform
	client   *Client
	cfg      TEConfig
	act      *teActuator
	pops     []catchment.Population

	mu     sync.Mutex
	result *catchment.Result
	rounds []catchment.Round
}

// NewTEController wires a controller: cfg falls back to the platform's
// PlatformConfig.TE defaults field by field, the population is
// generated if not supplied, and the client must already have open
// tunnels and established BGP at every PoP.
func (p *Platform) NewTEController(client *Client, cfg *TEConfig) (*TEController, error) {
	base := TEConfig{}
	if p.cfg.TE != nil {
		base = *p.cfg.TE
	}
	if cfg != nil {
		merged := *cfg
		if !merged.Prefix.IsValid() {
			merged.Prefix = base.Prefix
		}
		if merged.Targets == nil {
			merged.Targets = base.Targets
		}
		if merged.Clients == 0 {
			merged.Clients = base.Clients
		}
		if merged.Seed == 0 {
			merged.Seed = base.Seed
		}
		base = merged
	}
	if !base.Prefix.IsValid() {
		return nil, fmt.Errorf("peering: TE needs a prefix")
	}
	if base.Clients == 0 && base.Populations == nil {
		base.Clients = 100000
	}
	if base.SettleTimeout <= 0 {
		base.SettleTimeout = 10 * time.Second
	}
	if base.PoPIngressBps <= 0 {
		base.PoPIngressBps = 400e6
	}
	if base.PerClientBps <= 0 {
		base.PerClientBps = 1000
	}
	if base.Registry == nil {
		base.Registry = telemetry.Default()
	}
	if len(base.Targets) == 0 {
		names := p.PoPs()
		base.Targets = make(map[string]float64, len(names))
		for _, name := range names {
			base.Targets[name] = 1 / float64(len(names))
		}
	}

	pops := base.Populations
	if pops == nil {
		if p.cfg.Topology == nil {
			return nil, fmt.Errorf("peering: TE population generation needs a topology")
		}
		pops = catchment.GeneratePopulations(p.cfg.Topology, base.Clients, base.Seed)
	}

	act := &teActuator{
		client: client,
		prefix: base.Prefix,
		state:  make(map[string]*popAnnState),
	}
	for i, name := range p.PoPs() {
		pop := p.PoP(name)
		var refs []catchment.NeighborRef
		for _, n := range pop.Router.Neighbors() {
			if n.Remote {
				continue
			}
			refs = append(refs, catchment.NeighborRef{PoP: name, ID: n.ID, ASN: n.ASN})
		}
		sort.Slice(refs, func(a, b int) bool { return refs[a].ID < refs[b].ID })
		act.state[name] = &popAnnState{
			version:   uint32(i + 1),
			neighbors: refs,
			excluded:  make(map[uint32]bool),
		}
	}
	return &TEController{platform: p, client: client, cfg: base, act: act, pops: pops}, nil
}

// Populations returns the client placement under engineering.
func (te *TEController) Populations() []catchment.Population { return te.pops }

// observe resolves the catchment until two consecutive reads agree
// (announcement propagation through speakers and the mesh is
// asynchronous), then measures per-PoP load with the traffic model.
func (te *TEController) observe() (catchment.Observation, error) {
	// Give in-flight announcements a moment to reach the speakers before
	// sampling: session sends and topology injection are asynchronous.
	time.Sleep(25 * time.Millisecond)
	deadline := time.Now().Add(te.cfg.SettleTimeout)
	var prev *catchment.Map
	for {
		m, err := te.platform.ResolveCatchments(te.cfg.Prefix, te.pops)
		if err != nil {
			return catchment.Observation{}, err
		}
		if prev != nil && prev.Equal(m) {
			load, err := te.measureLoad(m)
			if err != nil {
				return catchment.Observation{}, err
			}
			return catchment.Observation{Map: m, LoadBps: load}, nil
		}
		if time.Now().After(deadline) {
			return catchment.Observation{}, fmt.Errorf("peering: catchment did not settle in %s", te.cfg.SettleTimeout)
		}
		prev = m
		time.Sleep(10 * time.Millisecond)
	}
}

// measureLoad runs the fluid traffic model for the current catchment:
// one capacity-constrained ingress link per PoP, one aggregate flow per
// (PoP, entry-neighbor) group with demand proportional to its client
// weight. The achieved per-PoP goodput is what the paper's iperf3-style
// measurements would see.
func (te *TEController) measureLoad(m *catchment.Map) (map[string]float64, error) {
	sim := traffic.NewSim()
	type popFlow struct {
		pop  string
		flow *traffic.Flow
	}
	var flows []popFlow
	for _, pop := range m.PoPNames() {
		ingress := traffic.Link{
			Name: "ingress:" + pop, CapacityBps: te.cfg.PoPIngressBps,
			Latency: 10 * time.Millisecond,
		}
		weights := m.ViaWeightsOf(pop, te.pops)
		vias := make([]uint32, 0, len(weights))
		for via := range weights {
			vias = append(vias, via)
		}
		sort.Slice(vias, func(i, j int) bool { return vias[i] < vias[j] })
		for _, via := range vias {
			demand := float64(weights[via]) * te.cfg.PerClientBps
			if demand <= 0 {
				continue
			}
			tail := traffic.Link{
				Name: fmt.Sprintf("demand:%s:as%d", pop, via), CapacityBps: demand,
				Latency: 5 * time.Millisecond,
			}
			f, err := sim.AddFlow(fmt.Sprintf("%s-as%d", pop, via), []traffic.Link{tail, ingress})
			if err != nil {
				return nil, err
			}
			flows = append(flows, popFlow{pop, f})
		}
	}
	if len(flows) == 0 {
		return map[string]float64{}, nil
	}
	sim.Run(1 * time.Second)      // warmup
	d := sim.Run(2 * time.Second) // measured
	load := make(map[string]float64)
	for _, pf := range flows {
		load[pf.pop] += pf.flow.ThroughputBps(d)
	}
	return load, nil
}

// Run announces the anycast prefix at every PoP and drives the
// observe→decide→act loop to convergence or an infeasibility
// certificate. The result (including full round history) is retained
// for Status.
func (te *TEController) Run() (*catchment.Result, error) {
	if err := te.act.AnnounceAll(); err != nil {
		return nil, err
	}
	ctl, err := catchment.NewController(catchment.Config{
		Targets:     te.cfg.Targets,
		Tolerance:   te.cfg.Tolerance,
		MaxRounds:   te.cfg.MaxRounds,
		MaxPrepend:  te.cfg.MaxPrepend,
		Patience:    te.cfg.Patience,
		Populations: te.pops,
		Registry:    te.cfg.Registry,
		Logf:        te.platform.cfg.Logf,
	}, func() (catchment.Observation, error) {
		obs, err := te.observe()
		if err == nil {
			te.mu.Lock()
			te.rounds = append(te.rounds, catchment.Round{
				N: len(te.rounds) + 1, Imbalance: obs.Map.Imbalance(te.cfg.Targets),
				Shares: obs.Map.Shares(), LoadBps: obs.LoadBps,
			})
			te.mu.Unlock()
		}
		return obs, err
	}, te.act)
	if err != nil {
		return nil, err
	}
	res, err := ctl.Run()
	te.mu.Lock()
	te.result = res
	te.mu.Unlock()
	return res, err
}

// TEStatus is the inspectable controller state (the peeringd /te/status
// surface).
type TEStatus struct {
	Prefix    string                 `json:"prefix"`
	Targets   map[string]float64     `json:"targets"`
	Running   bool                   `json:"running"`
	Converged bool                   `json:"converged"`
	Rounds    []catchment.Round      `json:"rounds"`
	Cert      *catchment.Certificate `json:"certificate,omitempty"`
}

// Status reports the controller's progress; safe to call concurrently
// with Run.
func (te *TEController) Status() TEStatus {
	te.mu.Lock()
	defer te.mu.Unlock()
	st := TEStatus{
		Prefix:  te.cfg.Prefix.String(),
		Targets: te.cfg.Targets,
		Running: te.result == nil,
	}
	if te.result != nil {
		st.Converged = te.result.Converged
		st.Rounds = te.result.Rounds
		st.Cert = te.result.Certificate
	} else {
		st.Rounds = append([]catchment.Round(nil), te.rounds...)
	}
	return st
}
