package peering

import (
	"net"
	"testing"
	"time"

	"repro/internal/inet"
)

// TestRemoteClientOverTCP drives the full experiment loop over a real
// TCP connection: the platform listens, a remote client dials, opens the
// tunnel, runs BGP, announces, and sends data-plane traffic — the
// deployment shape of the real system (researcher's machine -> VPN ->
// PoP).
func TestRemoteClientOverTCP(t *testing.T) {
	p, pop, c := testbed(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go p.ListenAndServe(ln)

	if err := c.DialTCP(ln.Addr().String(), pop.Name, p.ASN()); err != nil {
		t.Fatal(err)
	}
	if c.TunnelStatus("amsix") != "up" {
		t.Fatal("tunnel down")
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	probe := inet.PrefixForASN(100)
	waitFor(t, "routes over TCP", func() bool { return len(c.RoutesFor("amsix", probe)) == 2 })

	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement propagates", func() bool {
		return p.Topology().Reachable(1000, pfx("184.164.224.0/24"))
	})
	// Data plane across TCP: egress selection and an echo round trip.
	if _, err := c.Ping("amsix", 1, probe.Addr().Next(), 3, 1, 5*time.Second); err != nil {
		t.Fatalf("ping over TCP tunnel: %v", err)
	}
	// Policy still applies to remote clients.
	if err := c.Announce("amsix", pfx("8.8.8.0/24")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if rt := p.Topology().RouteAt(1000, pfx("8.8.8.0/24")); rt != nil {
		for _, hop := range rt.Path {
			if hop == 47065 {
				t.Fatal("hijack escaped over remote path")
			}
		}
	}
}

func TestRemoteClientBadPopName(t *testing.T) {
	p, _, c := testbed(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go p.ListenAndServe(ln)

	if err := c.DialTCP(ln.Addr().String(), "nonexistent", p.ASN()); err == nil {
		t.Fatal("dial to unknown pop succeeded")
	}
}

func TestRemoteClientBadCredentials(t *testing.T) {
	p, pop, _ := testbed(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go p.ListenAndServe(ln)

	bad := NewClient("exp1", "not-the-key", expASN)
	if err := bad.DialTCP(ln.Addr().String(), pop.Name, p.ASN()); err == nil {
		t.Fatal("bad credentials accepted over TCP")
	}
}
