package peering

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/tunnel"
)

// clientGRTime is the restart window a resilient client advertises: the
// router retains the experiment's routes as stale for this long after a
// tunnel failure, giving the supervisor time to redial and replay.
const clientGRTime = 10 * time.Second

// SetResilient switches the client's BGP sessions to supervised mode:
// when a tunnel or control session dies with a transport error, the
// client redials the tunnel (exponential backoff with jitter), replays
// its live announcements with the newly assigned tunnel address as next
// hop, and closes the RFC 4724 window with End-of-RIB. Must be set
// before StartBGP; administrative StopBGP/CloseTunnel still tear down
// immediately.
func (c *Client) SetResilient(on bool) {
	c.mu.Lock()
	c.resilient = on
	c.mu.Unlock()
}

func (c *Client) isResilient() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resilient
}

// startResilientBGP runs the experiment session under a bgp.Supervisor
// whose dial path rebuilds the whole tunnel, mirroring how a real
// experiment's OpenVPN client and BIRD daemon recover independently of
// the PoP.
func (c *Client) startResilientBGP(pc *popConn) error {
	if err := pc.pop.ConnectExperimentBGP(pc.serverTun, c.ASN); err != nil {
		return err
	}
	scfg := bgp.Config{
		LocalASN:  c.ASN,
		RemoteASN: pc.platformASN,
		LocalID:   pc.local(),
		MRAI:      c.MRAI,
		PeerName:  c.Name + "@" + pc.popName,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSendReceive,
			bgp.IPv6Unicast: bgp.AddPathSendReceive,
		},
		GracefulRestart: &bgp.GracefulRestartConfig{RestartTime: clientGRTime},
		OnUpdate:        func(u *bgp.Update) { pc.handleUpdate(u) },
		OnEstablished: func() {
			pc.signalEstablished()
			c.replayAnnouncements(pc)
		},
	}
	sup := bgp.NewSupervisor(bgp.SupervisorConfig{
		Session:   scfg,
		Conn:      pc.transport().Control(),
		Dial:      func() (net.Conn, error) { return c.redialTunnel(pc) },
		OnSession: pc.setSession,
	})
	pc.stateMu.Lock()
	pc.sup = sup
	pc.stateMu.Unlock()
	sup.Start()
	return nil
}

// redialTunnel replaces a dead tunnel end to end: new authenticated
// carrier, new tunnel address (the PoP allocates a fresh one), new
// router-side BGP attachment. Returns the new control channel for the
// supervisor's next session incarnation.
func (c *Client) redialTunnel(pc *popConn) (net.Conn, error) {
	tunnel.CountReconnectAttempt()
	// The old carrier is dead (that is why we are here); make sure its
	// tunnel state is fully torn down before replacing it.
	_ = pc.transport().Close()
	tun, serverTun, err := dialPopTunnel(pc.pop, c.Name, c.Key)
	if err != nil {
		return nil, err
	}
	var bits int
	var ipStr, rtrStr string
	if _, err := fmt.Sscanf(string(tun.Payload), "%s %d %s", &ipStr, &bits, &rtrStr); err != nil {
		tun.Close()
		return nil, fmt.Errorf("peering: bad tunnel config %q: %v", tun.Payload, err)
	}
	tun.OnFrame(pc.handleFrame)
	pc.stateMu.Lock()
	pc.tun = tun
	pc.serverTun = serverTun
	pc.localIP = netip.MustParseAddr(ipStr)
	pc.routerAddr = netip.MustParseAddr(rtrStr)
	pc.stateMu.Unlock()
	// Reattach the router side. If the router has not yet noticed the
	// old session's death this fails; the supervisor backs off and
	// retries with a fresh tunnel.
	if err := pc.pop.ConnectExperimentBGP(serverTun, c.ASN); err != nil {
		tun.Close()
		return nil, err
	}
	return tun.Control(), nil
}

// replayAnnouncements re-sends every recorded announcement (rebuilt
// against the current tunnel address) and closes with End-of-RIB for
// both families so the router sweeps whatever was not replayed.
func (c *Client) replayAnnouncements(pc *popConn) {
	sess := pc.session()
	if sess == nil {
		return
	}
	pc.annMu.Lock()
	anns := make(map[annKey]announcement, len(pc.anns))
	for k, a := range pc.anns {
		anns[k] = a
	}
	pc.annMu.Unlock()
	nextHop := pc.local()
	for k, a := range anns {
		_ = sess.Send(buildAnnouncement(c.ASN, pc.platformASN, nextHop, k.prefix, a))
	}
	_ = sess.SendEndOfRIB(bgp.IPv4Unicast)
	_ = sess.SendEndOfRIB(bgp.IPv6Unicast)
}
