package peering

import (
	"sort"
	"time"

	"repro/internal/guard"
)

// GuardConfig configures the platform's overload watchdog: a single
// goroutine that samples every PoP's pressure signals and drives its
// guard.Health state machine. State transitions apply the shedding
// ladder — Degraded drops telemetry emission (the cheapest work to
// lose); Shedding additionally tears down non-established experiment
// sessions and treats new experiment announcements as withdrawals
// (RFC 7606 style) until pressure recedes.
type GuardConfig struct {
	// Health holds the per-PoP thresholds and hysteresis. Its OnChange
	// hook, if set, is chained after the platform's own shed actions.
	Health guard.HealthConfig
	// SampleInterval is the watchdog cadence (default 250ms).
	SampleInterval time.Duration
}

// DefaultGuardConfig returns production-shaped watchdog thresholds:
// degraded at sustained thousands of updates/sec or a backed-up
// monitoring queue, shedding an order of magnitude above that.
func DefaultGuardConfig() *GuardConfig {
	return &GuardConfig{
		Health: guard.HealthConfig{
			Degraded: guard.Limits{
				UpdateRate: 2_000,
				QueueDepth: 256,
				LoopLag:    250 * time.Millisecond,
			},
			Shedding: guard.Limits{
				UpdateRate: 20_000,
				QueueDepth: 1024,
				LoopLag:    time.Second,
			},
			RecoverSamples: 3,
		},
		SampleInterval: 250 * time.Millisecond,
	}
}

// applyHealthState executes the shedding ladder for a PoP entering
// state s. Transitions are monotone per call: entering Shedding turns
// on everything Degraded sheds, and recovery to Healthy re-enables all.
func (p *Platform) applyHealthState(pop *PoP, s guard.State) {
	r := pop.Router
	switch s {
	case guard.Healthy:
		r.SetTelemetryShed(false)
		r.SetAnnouncementShed(false)
	case guard.Degraded:
		r.SetTelemetryShed(true)
		r.SetAnnouncementShed(false)
	case guard.Shedding:
		r.SetTelemetryShed(true)
		r.SetAnnouncementShed(true)
		if n := r.ShedNonEstablishedExperiments(); n > 0 && p.cfg.Logf != nil {
			p.cfg.Logf("guard[%s]: shed %d non-established experiment sessions", pop.Name, n)
		}
	}
	p.sinkMu.RLock()
	sink := p.healthSink
	p.sinkMu.RUnlock()
	if sink != nil {
		sink(pop.Name, s)
	}
}

// runGuard is the watchdog loop. LoopLag is measured as the drift of
// the tick itself: a starved scheduler shows up as late ticks, the
// closest in-process analogue to control-plane event-loop lag.
func (p *Platform) runGuard(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	expected := time.Now().Add(interval)
	for {
		select {
		case <-p.guardStop:
			return
		case now := <-tick.C:
			lag := now.Sub(expected)
			if lag < 0 {
				lag = 0
			}
			expected = now.Add(interval)
			p.sampleGuard(now, lag)
		}
	}
}

// sampleGuard takes one pressure sample per PoP and feeds its health
// state machine.
func (p *Platform) sampleGuard(now time.Time, lag time.Duration) {
	p.mu.Lock()
	pops := make([]*PoP, 0, len(p.pops))
	for _, pop := range p.pops {
		pops = append(pops, pop)
	}
	p.mu.Unlock()

	for _, pop := range pops {
		if pop.health == nil {
			continue
		}
		updates := pop.Router.UpdatesProcessed()
		pop.mu.Lock()
		prev, prevAt := pop.guardPrev, pop.guardPrevAt
		pop.guardPrev, pop.guardPrevAt = updates, now
		pop.mu.Unlock()
		rate := 0.0
		if !prevAt.IsZero() {
			if dt := now.Sub(prevAt).Seconds(); dt > 0 {
				rate = float64(updates-prev) / dt
			}
		}
		pr := guard.Pressure{
			UpdateRate: rate,
			RIBPaths:   pop.Router.RouteCount() + pop.Router.ExperimentRoutes().PathCount(),
			QueueDepth: p.monitor.QueueLen(),
			LoopLag:    lag,
		}
		pop.mu.Lock()
		pop.lastPressure = pr
		pop.mu.Unlock()
		pop.health.Observe(pr)
	}
}

// StopGuard stops the watchdog goroutine. Idempotent; a no-op on
// platforms built without a GuardConfig.
func (p *Platform) StopGuard() {
	if p.guardStop == nil {
		return
	}
	p.guardOnce.Do(func() { close(p.guardStop) })
}

// Health returns the PoP's guard state machine, or nil when the
// platform runs without a watchdog.
func (pop *PoP) Health() *guard.Health { return pop.health }

// PoPHealth returns the watchdog state of the named PoP. Unknown PoPs
// and guard-less platforms report Healthy.
func (p *Platform) PoPHealth(name string) guard.State {
	pop := p.PoP(name)
	if pop == nil || pop.health == nil {
		return guard.Healthy
	}
	return pop.health.State()
}

// PoPHealthStatus is one row of a platform health report.
type PoPHealthStatus struct {
	PoP      string
	State    guard.State
	Pressure guard.Pressure
}

// HealthReport returns the current state and last pressure sample of
// every PoP, sorted by name. Empty without a GuardConfig.
func (p *Platform) HealthReport() []PoPHealthStatus {
	p.mu.Lock()
	pops := make([]*PoP, 0, len(p.pops))
	for _, pop := range p.pops {
		pops = append(pops, pop)
	}
	p.mu.Unlock()

	out := make([]PoPHealthStatus, 0, len(pops))
	for _, pop := range pops {
		if pop.health == nil {
			continue
		}
		pop.mu.Lock()
		pr := pop.lastPressure
		pop.mu.Unlock()
		out = append(out, PoPHealthStatus{PoP: pop.Name, State: pop.health.State(), Pressure: pr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PoP < out[j].PoP })
	return out
}
