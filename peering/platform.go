// Package peering is the public API of the platform reproduction: it
// assembles vBGP routers, the enforcement engine, tunnels, the
// management workflow, and the experiment toolkit into a turn-key
// testbed equivalent to the system the paper operates (§4).
//
// A Platform owns the pieces shared across PoPs — the AS number, the
// security enforcement engine, the global neighbor pool, experiment
// credentials, and the synthetic Internet topology. PoPs are added with
// AddPoP and interconnected with ConnectBackbone; neighbors attach via
// the inet and ixp packages or raw BGP transports. Experiments are
// proposed, reviewed, and approved (§4.6), then drive everything through
// a Client: tunnels, BGP sessions, announcements with community-steered
// export, AS-path manipulation, and per-packet egress selection (Table
// 1 and §3.2).
package peering

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/history"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/rpki"
	"repro/internal/telemetry"
	"repro/internal/tunnel"
)

// PlatformConfig configures a platform.
type PlatformConfig struct {
	// ASN is the platform's primary AS number (Peering's is 47065).
	ASN uint32
	// GlobalPool is the platform-wide neighbor pool; defaults to
	// 127.127.0.0/16.
	GlobalPool netip.Prefix
	// Topology is the synthetic Internet neighbors are drawn from. May
	// be nil for hand-wired setups.
	Topology *inet.Topology
	// Chaos, when set, threads every BGP transport, tunnel carrier, and
	// backbone attachment through the fault injector, and switches the
	// sessions it covers to resilient mode (supervised redial with
	// backoff, graceful restart). Nil leaves the platform fault-free
	// with the original one-shot sessions.
	Chaos *chaos.Injector
	// RPKI, when set, is the platform's trust-anchor ROA store. The
	// enforcement engine validates experiment announcements against it
	// directly, and every PoP's router runs a live RTR client session to
	// it (threaded through the fault injector as class "rtr"), tagging
	// experiment-exported routes with their validation state.
	RPKI *rpki.Store
	// RPKIStaleExpiry overrides the RTR clients' freshness window after
	// session loss (zero selects rpki.DefaultStaleExpiry).
	RPKIStaleExpiry time.Duration
	// Damping, when set, enables RFC 2439 route-flap damping at both
	// layers: the enforcement engine suppresses flapping experiment
	// announcements platform-wide, and every PoP router damps flapping
	// neighbor routes (withheld from experiments, retained in the
	// adj-RIB-in, re-exported when the penalty decays).
	Damping *guard.DampingConfig
	// NeighborMRAI paces UPDATE batches on every PoP's neighbor and
	// backbone sessions (RFC 4271 §9.2.1.1 coalescing). Zero disables
	// pacing.
	NeighborMRAI time.Duration
	// Guard, when set, runs the overload watchdog: per-PoP pressure
	// sampling driving healthy → degraded → shedding transitions with
	// hysteretic recovery. See GuardConfig and DefaultGuardConfig.
	Guard *GuardConfig
	// History, when set, receives a copy of every monitoring event the
	// station consumes: route events land in the durable segment log for
	// time-travel queries and post-hoc forensics. The caller opens the
	// store (history.Open) and the platform adopts it; Close closes it.
	History *history.Store
	// TE, when set, supplies defaults for closed-loop traffic
	// engineering: the anycast prefix, per-PoP load targets, and the
	// synthetic client population the catchment is measured against.
	// NewTEController merges these with its own config argument.
	TE *TEConfig
	// Logf receives platform event logs.
	Logf func(format string, args ...any)
}

// Platform is a running testbed.
type Platform struct {
	cfg    PlatformConfig
	Engine *policy.Engine
	Store  *config.Store

	globalPool *core.Pool
	monitor    *telemetry.Emitter
	station    *telemetry.Station
	rpkiServer *rpki.Server

	mu             sync.Mutex
	pops           map[string]*PoP
	creds          tunnel.Credentials
	proposals      map[string]*Proposal
	nextNeighborID uint32
	keySeq         int
	backbone       *netsim.Segment
	bbHosts        int
	bbLinks        map[[2]string]BackboneLink
	v6AutoPool     netip.Prefix
	v6AutoSeq      int

	guardStop   chan struct{}
	guardOnce   sync.Once
	monitorDone chan struct{}

	// sinkMu guards the optional control-plane taps: eventSink receives
	// a copy of every monitoring event the station consumes, healthSink
	// every guard-ladder transition. Both may be nil.
	sinkMu     sync.RWMutex
	eventSink  func(telemetry.Event)
	healthSink func(pop string, state guard.State)
}

// NewPlatform creates a platform with an empty footprint.
func NewPlatform(cfg PlatformConfig) *Platform {
	if !cfg.GlobalPool.IsValid() {
		cfg.GlobalPool = core.DefaultGlobalPool
	}
	p := &Platform{
		cfg:        cfg,
		Engine:     policy.NewEngine(cfg.ASN),
		Store:      config.NewStore(),
		globalPool: core.NewPool(cfg.GlobalPool),
		monitor:    telemetry.NewEmitter(nil, 0),
		station:    telemetry.NewStation(nil),
		pops:       make(map[string]*PoP),
		creds:      make(tunnel.Credentials),
		proposals:  make(map[string]*Proposal),
	}
	// The platform-wide monitoring station consumes every router's
	// BMP-style event feed for the life of the platform. With a history
	// store configured the feed is teed: the station folds live state,
	// the store appends the durable timeline. History ingestion is
	// non-blocking on its own bounded queue, so a slow disk drops
	// history (with accounting) instead of stalling the station.
	p.monitorDone = make(chan struct{})
	go func() {
		defer close(p.monitorDone)
		for e := range p.monitor.Events() {
			p.station.Handle(e)
			if cfg.History != nil {
				cfg.History.Observe(e)
			}
			p.sinkMu.RLock()
			sink := p.eventSink
			p.sinkMu.RUnlock()
			if sink != nil {
				sink(e)
			}
		}
	}()
	if cfg.RPKI != nil {
		// The controller holds the authoritative trust-anchor view: the
		// enforcement engine validates against it directly, while PoP
		// routers sync their own caches over RTR (see AddPoP).
		p.rpkiServer = rpki.NewServer(cfg.RPKI, 1)
		p.Engine.SetValidator(cfg.RPKI)
	}
	if cfg.Damping != nil {
		// The engine's damper is platform-wide (keyed experiment@pop) and
		// separate from the per-router neighbor dampers AddPoP creates.
		p.Engine.SetDamper(guard.NewDamper(*cfg.Damping))
	}
	if cfg.Guard != nil {
		interval := cfg.Guard.SampleInterval
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		p.guardStop = make(chan struct{})
		go p.runGuard(interval)
	}
	return p
}

// RPKI returns the platform's trust-anchor ROA store, or nil.
func (p *Platform) RPKI() *rpki.Store { return p.cfg.RPKI }

// DeployROV installs the trust-anchor store as the topology's validator
// and enables route origin validation at a deterministic fraction of
// its ASes. Returns how many ASes now validate (0 without a topology or
// RPKI store).
func (p *Platform) DeployROV(fraction float64, seed int64) int {
	if p.cfg.Topology == nil || p.cfg.RPKI == nil {
		return 0
	}
	p.cfg.Topology.SetValidator(p.cfg.RPKI)
	return p.cfg.Topology.DeployROV(fraction, seed)
}

// SetEventSink installs (or, with nil, removes) a tap receiving a copy
// of every monitoring event after the station and history store consume
// it. The sink runs on the monitor goroutine and must not block — the
// control plane's watch hub (bounded, drop-on-full) is the intended
// consumer.
func (p *Platform) SetEventSink(fn func(telemetry.Event)) {
	p.sinkMu.Lock()
	p.eventSink = fn
	p.sinkMu.Unlock()
}

// SetHealthSink installs (or removes) a tap receiving every guard
// health-ladder transition as it is applied.
func (p *Platform) SetHealthSink(fn func(pop string, state guard.State)) {
	p.sinkMu.Lock()
	p.healthSink = fn
	p.sinkMu.Unlock()
}

// Monitor returns the platform's monitoring event queue (routers emit
// into it; the station consumes it).
func (p *Platform) Monitor() *telemetry.Emitter { return p.monitor }

// Station returns the platform's BMP-style monitoring station.
func (p *Platform) Station() *telemetry.Station { return p.station }

// History returns the platform's durable RIB history store, or nil.
func (p *Platform) History() *history.Store { return p.cfg.History }

// WaitMonitorDrained blocks until the station has applied every event
// accepted so far (or the timeout lapses), for tests and report
// generation that read station state right after control-plane churn.
// With a history store configured it also waits for the store to apply
// its share of the feed, so queries issued next see the same events.
func (p *Platform) WaitMonitorDrained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for p.station.Processed() < p.monitor.Accepted() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	if p.cfg.History != nil {
		return p.cfg.History.Drain(time.Until(deadline))
	}
	return true
}

// Close shuts the platform's shared services down: the guard watchdog,
// the monitoring feed, and — when configured — the history store, whose
// active segment is sealed so the on-disk log alone reconstructs the
// run. Routers keep working; their subsequent monitor emissions drop.
func (p *Platform) Close() error {
	p.StopGuard()
	p.monitor.Close()
	// Wait for the station/history tee to drain the monitor queue before
	// closing the store, so the tail of the feed reaches the log.
	<-p.monitorDone
	if p.cfg.History != nil {
		return p.cfg.History.Close()
	}
	return nil
}

// ASN returns the platform AS number.
func (p *Platform) ASN() uint32 { return p.cfg.ASN }

// Chaos returns the platform's fault injector, or nil.
func (p *Platform) Chaos() *chaos.Injector { return p.cfg.Chaos }

// chaosWrap threads a transport through the fault injector (a no-op
// without one).
func (p *Platform) chaosWrap(class, name, popName string, conn net.Conn) net.Conn {
	return p.cfg.Chaos.WrapConn(class, name, popName, conn)
}

// resilient reports whether platform sessions should supervise their
// transports (on whenever a fault injector is present).
func (p *Platform) resilient() bool { return p.cfg.Chaos != nil }

// Topology returns the synthetic Internet, or nil.
func (p *Platform) Topology() *inet.Topology { return p.cfg.Topology }

// NextNeighborID allocates a platform-wide neighbor ID (the community
// value experiments use to steer announcements).
func (p *Platform) NextNeighborID() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextNeighborID++
	return p.nextNeighborID
}

// PoP returns the named PoP, or nil.
func (p *Platform) PoP(name string) *PoP {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pops[name]
}

// PoPs returns all PoP names, sorted.
func (p *Platform) PoPs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.pops))
	for name := range p.pops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PoPConfig configures one point of presence.
type PoPConfig struct {
	// Name of the PoP, e.g. "amsix".
	Name string
	// RouterID of its vBGP router.
	RouterID netip.Addr
	// LocalPool is the PoP's next-hop pool; must be distinct per PoP.
	LocalPool netip.Prefix
	// ExpLAN is the experiment-LAN prefix; the router takes .254.
	ExpLAN netip.Prefix
	// MaintainDefaultTable enables the router-managed best-path table
	// (the Fig. 6a ablation).
	MaintainDefaultTable bool
	// BandwidthLimitBps shapes all experiment traffic entering the PoP,
	// modeling the paper's two bandwidth-constrained sites (§4.7). Zero
	// means unconstrained.
	BandwidthLimitBps float64
}

// AddPoP creates a PoP with its vBGP router and experiment LAN.
func (p *Platform) AddPoP(cfg PoPConfig) (*PoP, error) {
	p.mu.Lock()
	if _, dup := p.pops[cfg.Name]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("peering: duplicate pop %s", cfg.Name)
	}
	p.mu.Unlock()

	// Per-PoP RTR client: the router validates through its own live
	// cache, synchronized from the platform's trust anchor over a
	// fault-injectable session (class "rtr"). The session doubles as a
	// flappable chaos link: taking it down severs the live session and
	// fails every redial until it comes back up, modeling a cache
	// outage (the fail-closed scenario).
	var rtr *rpki.Client
	var validator rpki.Validator
	if p.cfg.RPKI != nil {
		var rtrMu sync.Mutex
		var rtrDown bool
		var rtrConn net.Conn
		rtr = rpki.NewClient(rpki.ClientConfig{
			Name: cfg.Name,
			Dial: func() (net.Conn, error) {
				rtrMu.Lock()
				down := rtrDown
				rtrMu.Unlock()
				if down {
					return nil, fmt.Errorf("rtr[%s]: cache unreachable (link down)", cfg.Name)
				}
				cc, cs := newConnPair()
				cc = p.chaosWrap("rtr", "rtr-"+cfg.Name, cfg.Name, cc)
				go func() { _ = p.rpkiServer.Serve(cs) }()
				rtrMu.Lock()
				rtrConn = cc
				rtrMu.Unlock()
				return cc, nil
			},
			StaleExpiry: p.cfg.RPKIStaleExpiry,
			Logf:        p.cfg.Logf,
		})
		p.cfg.Chaos.RegisterLink("rtr-"+cfg.Name, cfg.Name,
			func() {
				rtrMu.Lock()
				rtrDown = true
				conn := rtrConn
				rtrMu.Unlock()
				if conn != nil {
					conn.Close()
				}
			},
			func() {
				rtrMu.Lock()
				rtrDown = false
				rtrMu.Unlock()
			})
		validator = rtr
	}

	router := core.NewRouter(core.Config{
		Name: cfg.Name, ASN: p.cfg.ASN, RouterID: cfg.RouterID,
		LocalPool: cfg.LocalPool, GlobalPool: p.globalPool,
		Enforcer:             p.Engine,
		Monitor:              p.monitor,
		Validator:            validator,
		MaintainDefaultTable: cfg.MaintainDefaultTable,
		Damping:              p.cfg.Damping,
		NeighborMRAI:         p.cfg.NeighborMRAI,
		Logf:                 p.cfg.Logf,
	})
	if rtr != nil {
		// A ROA change converging over RTR re-stamps and re-exports the
		// routes whose validation state flipped — no session restart.
		rtr.SetOnChange(router.RevalidateExports)
	}
	pop := &PoP{
		Name:     cfg.Name,
		Router:   router,
		RPKI:     rtr,
		platform: p,
		expLAN:   netsim.NewSegment(cfg.Name + "-exp-lan"),
		expCIDR:  cfg.ExpLAN,
	}
	if p.cfg.Guard != nil {
		// Chain the platform's shed actions before any user OnChange so
		// state transitions always execute the ladder.
		hc := p.cfg.Guard.Health
		userChange := hc.OnChange
		if hc.Logf == nil {
			hc.Logf = p.cfg.Logf
		}
		hc.OnChange = func(from, to guard.State, why string) {
			p.applyHealthState(pop, to)
			if userChange != nil {
				userChange(from, to, why)
			}
		}
		pop.health = guard.NewHealth(cfg.Name, hc)
		// Baseline the rate window at creation so a burst landing before
		// the watchdog's first tick still registers.
		pop.guardPrevAt = time.Now()
	}
	routerAddr := lastUsable(cfg.ExpLAN)
	expIfc := router.AddInterface("exp0", "experiment", netip.PrefixFrom(routerAddr, cfg.ExpLAN.Bits()), pop.expLAN)
	if cfg.BandwidthLimitBps > 0 {
		expIfc.AddIngressFilter(netsim.NewTokenBucketFilter(cfg.BandwidthLimitBps, 0))
	}

	p.mu.Lock()
	p.pops[cfg.Name] = pop
	p.mu.Unlock()
	return pop, nil
}

// lastUsable returns the .254-style address of a v4 prefix.
func lastUsable(p netip.Prefix) netip.Addr {
	raw := p.Masked().Addr().As4()
	host := uint32(1)<<(32-p.Bits()) - 2
	v := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	v += host
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Backbone returns the platform's shared backbone segment (the AL2S
// equivalent, §4.3), created on first use.
func (p *Platform) Backbone() *netsim.Segment {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.backbone == nil {
		p.backbone = netsim.NewSegment("backbone")
	}
	return p.backbone
}

// meshGRTime and neighborGRTime are the graceful-restart windows used
// for resilient platform sessions (chaos mode): long enough for the
// supervisor's backoff to reconnect well within the window.
const (
	meshGRTime     = 10 * time.Second
	neighborGRTime = 10 * time.Second
)

// ConnectBackbone joins two PoPs over the backbone: both routers attach
// to the shared segment (once each), a mesh BGP session comes up between
// them, and the pair's provisioned capacity and latency are recorded for
// the traffic model (§4.3, §4.4, §6). With a fault injector configured
// the session is supervised: PoP a redials after transport loss and PoP
// b accepts the replacement, with graceful restart retaining state
// across the flap.
func (p *Platform) ConnectBackbone(a, b *PoP, capacityBps float64, latency time.Duration) error {
	seg := p.Backbone()
	addrA := p.backboneAttach(a, seg)
	addrB := p.backboneAttach(b, seg)

	linkName := a.Name + "-" + b.Name
	ca, cb := newConnPair()
	ca = p.chaosWrap("backbone", linkName, a.Name, ca)
	cb = p.chaosWrap("backbone", linkName, b.Name, cb)
	if p.resilient() {
		if err := a.Router.AddBackbonePeerConfig(core.BackbonePeerConfig{
			Name: b.Name, Addr: addrB, Conn: ca,
			GracefulRestart: meshGRTime,
			Redial: func() (net.Conn, error) {
				na, nb := newConnPair()
				na = p.chaosWrap("backbone", linkName, a.Name, na)
				nb = p.chaosWrap("backbone", linkName, b.Name, nb)
				if err := b.Router.AcceptBackbonePeerConn(a.Name, nb); err != nil {
					return nil, err
				}
				return na, nil
			},
		}); err != nil {
			return err
		}
		if err := b.Router.AddBackbonePeerConfig(core.BackbonePeerConfig{
			Name: a.Name, Addr: addrA, Conn: cb,
			Resilient: true, GracefulRestart: meshGRTime,
		}); err != nil {
			return err
		}
	} else {
		if err := a.Router.AddBackbonePeer(b.Name, addrB, ca); err != nil {
			return err
		}
		if err := b.Router.AddBackbonePeer(a.Name, addrA, cb); err != nil {
			return err
		}
	}
	p.mu.Lock()
	if p.bbLinks == nil {
		p.bbLinks = make(map[[2]string]BackboneLink)
	}
	p.bbLinks[linkKey(a.Name, b.Name)] = BackboneLink{
		A: a.Name, B: b.Name, CapacityBps: capacityBps, Latency: latency,
	}
	p.mu.Unlock()
	return nil
}

// backboneAttach gives a PoP its backbone interface if missing and
// returns its backbone address.
func (p *Platform) backboneAttach(pop *PoP, seg *netsim.Segment) netip.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pop.bbAddr.IsValid() {
		return pop.bbAddr
	}
	p.bbHosts++
	pop.bbAddr = netip.AddrFrom4([4]byte{100, 127, 0, byte(p.bbHosts)})
	ifc := pop.Router.AddInterface("bb0", "backbone", netip.PrefixFrom(pop.bbAddr, 24), seg)
	// Expose the attachment as a flappable link so the injector can take
	// a PoP's backbone down and back up (LinkFlap / Partition faults).
	p.cfg.Chaos.RegisterLink("bb0:"+pop.Name, pop.Name,
		func() { ifc.Attach(nil) },
		func() { ifc.Attach(seg) })
	return pop.bbAddr
}

// BackboneLink is the provisioned capacity between a pair of PoPs.
type BackboneLink struct {
	A, B        string
	CapacityBps float64
	Latency     time.Duration
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// BackboneLinkBetween returns the provisioned link between two PoPs.
func (p *Platform) BackboneLinkBetween(a, b string) (BackboneLink, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.bbLinks[linkKey(a, b)]
	return l, ok
}

// BackboneLinks returns every provisioned pair.
func (p *Platform) BackboneLinks() []BackboneLink {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackboneLink, 0, len(p.bbLinks))
	for _, l := range p.bbLinks {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	return out
}
