package peering

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/inet"
	"repro/internal/ixp"
)

// TestSoakQuarterScaleAMSIX builds a quarter-scale AMS-IX PoP — ~213
// members, 4 route servers, dozens of bilateral sessions — runs three
// concurrent experiments, and exercises announcements, withdrawal, and
// per-packet forwarding under the load. Skipped with -short.
func TestSoakQuarterScaleAMSIX(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 40
	cfg.Edges = 300
	topo := inet.Generate(cfg)

	p := NewPlatform(PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	profile := struct{ members, bilateral, rs, routes int }{213, 26, 4, 10}
	x := ixp.New("AMS-IX", 64700, topo, pfx("80.249.208.0/21"))
	for i := 0; i < profile.members; i++ {
		if _, err := x.AddMember(uint32(10000+i), i < profile.bilateral); err != nil {
			t.Fatal(err)
		}
	}
	if err := pop.ConnectIXP(x, profile.rs, profile.routes); err != nil {
		t.Fatal(err)
	}
	if _, err := pop.ConnectTransit(1000, 40); err != nil {
		t.Fatal(err)
	}

	// Expected paths: 4 RS x 213 members x 10 + 26 bilateral x 10 + 40.
	want := profile.rs*profile.members*profile.routes + profile.bilateral*profile.routes + 40
	deadline := time.Now().Add(60 * time.Second)
	for pop.Router.RouteCount() < want && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if got := pop.Router.RouteCount(); got != want {
		t.Fatalf("routes = %d, want %d", got, want)
	}
	// Experiments see the best route per (neighbor, prefix).
	expView := 0
	for _, n := range pop.Router.Neighbors() {
		expView += n.Table.Prefixes()
	}
	t.Logf("loaded %d paths (%d per-neighbor prefixes) across %d neighbors",
		pop.Router.RouteCount(), expView, len(pop.Router.Neighbors()))

	// Three concurrent experiments announce, see routes, and forward.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("soak%d", i)
		prefix := netip.MustParsePrefix(fmt.Sprintf("184.164.%d.0/24", 224+i))
		if err := p.Submit(Proposal{Name: name, Owner: "soak", Plan: "scale",
			Prefixes: []netip.Prefix{prefix}, ASNs: []uint32{uint32(61574 + i)}}); err != nil {
			t.Fatal(err)
		}
		key, err := p.Approve(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(name, key, uint32(61574+i))
		if err := c.OpenTunnel(pop); err != nil {
			t.Fatal(err)
		}
		if err := c.StartBGP("amsix"); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitEstablished("amsix", 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := c.Announce("amsix", prefix); err != nil {
			t.Fatal(err)
		}
		// Every experiment's view converges to best-per-neighbor-prefix.
		waitDeadline := time.Now().Add(60 * time.Second)
		for len(c.Routes("amsix")) < expView && time.Now().Before(waitDeadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if got := len(c.Routes("amsix")); got < expView {
			t.Fatalf("experiment %s sees %d routes, want %d", name, got, expView)
		}
		// Forward a packet via the transit and via a route server.
		dst := inet.PrefixForASN(100).Addr().Next()
		if _, err := c.Ping("amsix", pop.Router.Neighbor("as1000").ID, dst, uint16(i), 1, 10*time.Second); err != nil {
			t.Fatalf("%s ping via transit: %v", name, err)
		}
	}
	t.Logf("forwarded=%d dropped=%d", pop.Router.Forwarded.Load(), pop.Router.DroppedNoRoute.Load())
}
