package peering

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/rib"
)

// AnnounceTo builds the community whitelisting export to one neighbor
// (§3.2.1).
func AnnounceTo(platformASN, neighborID uint32) bgp.Community {
	return core.AnnounceTo(platformASN, neighborID)
}

// NoExportTo builds the community blacklisting export to one neighbor.
func NoExportTo(platformASN, neighborID uint32) bgp.Community {
	return core.NoExportTo(platformASN, neighborID)
}

// handleFrame processes a data-plane frame arriving from the tunnel:
// ARP replies feed the resolver, IPv4 packets go to the OnPacket
// callback along with the source MAC that identifies the delivering
// neighbor (§3.2.2).
func (pc *popConn) handleFrame(data []byte) {
	var fr ethernet.Frame
	if fr.DecodeFromBytes(data) != nil {
		return
	}
	switch fr.Type {
	case ethernet.TypeARP:
		var arp ethernet.ARP
		if arp.DecodeFromBytes(fr.Payload) != nil {
			return
		}
		switch arp.Op {
		case ethernet.ARPReply:
			pc.learnARP(arp.SenderIP, arp.SenderMAC)
		case ethernet.ARPRequest:
			// The bridge answers for our tunnel IP server-side; nothing
			// to do here.
		}
	case ethernet.TypeIPv4:
		var ip ethernet.IPv4
		if ip.DecodeFromBytes(fr.Payload) != nil {
			return
		}
		if ip.Protocol == ethernet.ProtoICMP {
			var m ethernet.ICMP
			if m.DecodeFromBytes(ip.Payload) == nil {
				switch m.Type {
				case ethernet.ICMPEchoReply:
					if pc.signalProbe(m.ID, m.Seq, probeReply{From: ip.Src, Reached: true}) {
						return
					}
				case ethernet.ICMPTimeExceed:
					// The embedded original datagram carries our probe's
					// ICMP header: header bytes 4-8 are ID and sequence.
					if id, seq, ok := embeddedEchoID(m.Data); ok &&
						pc.signalProbe(id, seq, probeReply{From: ip.Src}) {
						return
					}
				}
			}
		}
		cp := ip
		cp.Payload = append([]byte(nil), ip.Payload...)
		pc.pktMu.Lock()
		fn := pc.onPacket
		pc.pktMu.Unlock()
		if fn != nil {
			fn(&cp, fr.Src)
		}
	}
}

func (pc *popConn) learnARP(addr netip.Addr, mac ethernet.MAC) {
	pc.arpMu.Lock()
	pc.arp[addr] = mac
	waiters := pc.arpWait[addr]
	delete(pc.arpWait, addr)
	pc.arpMu.Unlock()
	for _, ch := range waiters {
		ch <- mac
	}
}

// resolve performs ARP through the tunnel for a local-pool next hop,
// exactly as a hardware router attached to the LAN would (Fig. 2b).
func (pc *popConn) resolve(target netip.Addr, timeout time.Duration) (ethernet.MAC, error) {
	pc.arpMu.Lock()
	if mac, ok := pc.arp[target]; ok {
		pc.arpMu.Unlock()
		return mac, nil
	}
	ch := make(chan ethernet.MAC, 1)
	pc.arpWait[target] = append(pc.arpWait[target], ch)
	pc.arpMu.Unlock()

	mac := clientMACFor(pc)
	req := ethernet.NewARPRequest(mac, pc.local(), target)
	fr := req.Frame(mac)
	if err := pc.transport().SendFrame(fr.Marshal()); err != nil {
		return ethernet.MAC{}, err
	}
	select {
	case m := <-ch:
		return m, nil
	case <-time.After(timeout):
		return ethernet.MAC{}, fmt.Errorf("peering: ARP for %s via %s timed out", target, pc.popName)
	}
}

// clientMACFor derives the client-side MAC; it must match the bridge's
// MAC so LAN frames reach the tunnel. The bridge index is recoverable
// from the assigned address's last octet.
func clientMACFor(pc *popConn) ethernet.MAC {
	raw := pc.local().As4()
	return ethernet.MAC{0x0a, 0x00, 0, 0, 0, raw[3]}
}

// OnPacket installs the receiver for data-plane packets arriving at a
// PoP. fromNeighbor is the per-neighbor MAC identifying which
// interconnection delivered the packet.
func (c *Client) OnPacket(popName string, fn func(ip *ethernet.IPv4, fromNeighbor ethernet.MAC)) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	pc.pktMu.Lock()
	pc.onPacket = fn
	pc.pktMu.Unlock()
	return nil
}

// pathFor picks the route for dst at a PoP: the path learned through
// neighbor viaNeighborID, or the decision-process best when
// viaNeighborID is 0.
func (pc *popConn) pathFor(dst netip.Addr, viaNeighborID uint32) *rib.Path {
	if viaNeighborID == 0 {
		return pc.table.Lookup(dst)
	}
	var found *rib.Path
	pc.table.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		if !prefix.Contains(dst) {
			return true
		}
		for _, p := range paths {
			if uint32(p.ID) == viaNeighborID {
				if found == nil || p.Prefix.Bits() > found.Prefix.Bits() {
					found = p
				}
			}
		}
		return true
	})
	return found
}

// SendIP routes one IPv4 packet out a PoP. viaNeighborID selects the
// egress interconnection per packet (0 = best route): the packet is
// framed to the MAC that the chosen neighbor's local next hop resolves
// to — the vBGP data-plane delegation in action.
func (c *Client) SendIP(popName string, viaNeighborID uint32, pkt *ethernet.IPv4) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	path := pc.pathFor(pkt.Dst, viaNeighborID)
	if path == nil {
		return fmt.Errorf("peering: no route to %s via neighbor %d at %s", pkt.Dst, viaNeighborID, popName)
	}
	nh := path.NextHop()
	mac, err := pc.resolve(nh, 2*time.Second)
	if err != nil {
		return err
	}
	if !pkt.Src.IsValid() {
		pkt.Src = pc.local()
	}
	fr := ethernet.Frame{Dst: mac, Src: clientMACFor(pc), Type: ethernet.TypeIPv4, Payload: pkt.Marshal()}
	return pc.transport().SendFrame(fr.Marshal())
}

// probeReply is what a probe waiter receives: the responding address
// and whether the destination itself answered (echo reply) as opposed
// to an intermediate hop (time exceeded).
type probeReply struct {
	From    netip.Addr
	Reached bool
}

// signalProbe wakes the waiter for (id, seq), if any.
func (pc *popConn) signalProbe(id, seq uint16, r probeReply) bool {
	pc.echoMu.Lock()
	ch := pc.echoWait[[2]uint16{id, seq}]
	pc.echoMu.Unlock()
	if ch == nil {
		return false
	}
	select {
	case ch <- r:
	default:
	}
	return true
}

// embeddedEchoID recovers the probe ID/seq from the original datagram an
// ICMP error embeds (IP header + first 8 payload bytes, RFC 792).
func embeddedEchoID(data []byte) (id, seq uint16, ok bool) {
	if len(data) < ethernet.IPv4HeaderLen+8 {
		return 0, 0, false
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ethernet.IPv4HeaderLen || len(data) < ihl+8 {
		return 0, 0, false
	}
	icmp := data[ihl:]
	return uint16(icmp[4])<<8 | uint16(icmp[5]), uint16(icmp[6])<<8 | uint16(icmp[7]), true
}

// probe sends one echo with the given TTL and waits for whichever
// response arrives first.
func (c *Client) probe(popName string, via uint32, dst netip.Addr, ttl uint8, id, seq uint16, timeout time.Duration) (probeReply, time.Duration, error) {
	pc, err := c.conn(popName)
	if err != nil {
		return probeReply{}, 0, err
	}
	ch := make(chan probeReply, 1)
	key := [2]uint16{id, seq}
	pc.echoMu.Lock()
	pc.echoWait[key] = ch
	pc.echoMu.Unlock()
	defer func() {
		pc.echoMu.Lock()
		delete(pc.echoWait, key)
		pc.echoMu.Unlock()
	}()

	echo := ethernet.ICMP{Type: ethernet.ICMPEchoRequest, ID: id, Seq: seq, Data: []byte("peering-probe")}
	start := time.Now()
	err = c.SendIP(popName, via, &ethernet.IPv4{
		TTL: ttl, Protocol: ethernet.ProtoICMP, Dst: dst, Payload: echo.Marshal(),
	})
	if err != nil {
		return probeReply{}, 0, err
	}
	select {
	case r := <-ch:
		return r, time.Since(start), nil
	case <-time.After(timeout):
		return probeReply{}, 0, fmt.Errorf("peering: probe of %s (ttl %d) via neighbor %d timed out", dst, ttl, via)
	}
}

// Ping sends an ICMP echo request to dst via the chosen neighbor
// (0 = best route) and waits for the reply, returning the round-trip
// time — the toolkit's end-to-end connectivity probe.
func (c *Client) Ping(popName string, viaNeighborID uint32, dst netip.Addr, id, seq uint16, timeout time.Duration) (time.Duration, error) {
	r, rtt, err := c.probe(popName, viaNeighborID, dst, 64, id, seq, timeout)
	if err != nil {
		return 0, err
	}
	if !r.Reached {
		return 0, fmt.Errorf("peering: ping %s answered by intermediate hop %s", dst, r.From)
	}
	return rtt, nil
}

// Hop is one traceroute step.
type Hop struct {
	// Addr of the responding hop (the hop's PRIMARY address, the
	// identity §5's network controller works to preserve).
	Addr netip.Addr
	// RTT to the hop.
	RTT time.Duration
	// Reached marks the destination's own reply.
	Reached bool
}

// Traceroute walks toward dst via the chosen neighbor with increasing
// TTLs, collecting the time-exceeded sources along the way.
func (c *Client) Traceroute(popName string, viaNeighborID uint32, dst netip.Addr, maxHops int, timeout time.Duration) ([]Hop, error) {
	var hops []Hop
	id := uint16(0x7472) // 'tr'
	for ttl := 1; ttl <= maxHops; ttl++ {
		r, rtt, err := c.probe(popName, viaNeighborID, dst, uint8(ttl), id, uint16(ttl), timeout)
		if err != nil {
			return hops, err
		}
		hops = append(hops, Hop{Addr: r.From, RTT: rtt, Reached: r.Reached})
		if r.Reached {
			return hops, nil
		}
	}
	return hops, fmt.Errorf("peering: %s not reached within %d hops", dst, maxHops)
}

// LocalIP returns the client's tunnel address at a PoP (the next hop it
// announces with).
func (c *Client) LocalIP(popName string) netip.Addr {
	pc, err := c.conn(popName)
	if err != nil {
		return netip.Addr{}
	}
	return pc.local()
}

// ipv4Unicast exposes the IPv4 unicast family tag for toolkit callers
// issuing route-refresh requests.
func ipv4Unicast() bgp.AFISAFI { return bgp.IPv4Unicast }
