package peering

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/policy"
	"repro/internal/rpki"
)

// rpkiTestbed is testbed with a trust-anchor ROA store: every topology
// prefix is signed by its originator and the experiment's allocation is
// split — 184.164.224.0/24 signed for the experiment ASN, .225.0/24
// signed for a foreign AS (so announcing it is RPKI-Invalid), and the
// rest of the /23 unsigned (NotFound).
func rpkiTestbed(t *testing.T, inj *chaos.Injector) (*Platform, *PoP, *Client, *rpki.Store) {
	t.Helper()
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)

	roas := rpki.NewStore()
	for _, asn := range topo.ASNs() {
		for _, prefix := range topo.AS(asn).Originated {
			roas.Add(rpki.ROA{Prefix: prefix, ASN: asn})
		}
	}
	roas.Add(rpki.ROA{Prefix: pfx("184.164.224.0/24"), ASN: expASN})
	roas.Add(rpki.ROA{Prefix: pfx("184.164.225.0/24"), ASN: 64999})

	p := NewPlatform(PlatformConfig{
		ASN: 47065, Topology: topo, Chaos: inj,
		RPKI: roas, RPKIStaleExpiry: 100 * time.Millisecond,
	})
	pop, err := p.AddPoP(PoPConfig{
		Name: "amsix", RouterID: addr("198.51.100.1"),
		LocalPool: pfx("127.65.0.0/16"), ExpLAN: pfx("100.65.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pop.ConnectTransit(1000, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := pop.ConnectPeer(10000, 30); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(Proposal{
		Name: "exp1", Owner: "alice", Plan: "study ROV",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		t.Fatal(err)
	}
	key, err := p.Approve("exp1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pop.RPKI.WaitSynced(5 * time.Second) {
		t.Fatal("PoP RTR client never synced")
	}
	return p, pop, NewClient("exp1", key, expASN), roas
}

func startRPKIClient(t *testing.T, pop *PoP, c *Client) {
	t.Helper()
	if err := c.OpenTunnel(pop); err != nil {
		t.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestROVRejectsInvalidAnnouncement: the engine drops announcements
// whose (prefix, origin) is Invalid even when the prefix is inside the
// experiment's allocation, while Valid and NotFound ones pass.
func TestROVRejectsInvalidAnnouncement(t *testing.T) {
	p, pop, c, _ := rpkiTestbed(t, nil)
	startRPKIClient(t, pop, c)

	// Valid: signed for the experiment's ASN.
	if err := c.Announce("amsix", pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid announcement propagates", func() bool {
		return p.Topology().Reachable(10020, pfx("184.164.224.0/24"))
	})

	// Invalid: inside the allocation but signed for AS64999. The session
	// accepts it; enforcement drops it before it reaches the router.
	if err := c.Announce("amsix", pfx("184.164.225.0/24")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if p.Topology().Reachable(1000, pfx("184.164.225.0/24")) {
		t.Fatal("RPKI-Invalid announcement escaped the platform")
	}
	found := false
	for _, e := range p.Engine.Audit() {
		if e.Prefix == pfx("184.164.225.0/24") && e.Action == policy.ActionReject {
			for _, r := range e.Reasons {
				if strings.Contains(r, "RPKI invalid") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no RPKI-invalid audit entry recorded")
	}
}

// TestValidationStateCommunitiesStamped: routes exported to experiments
// carry the platform's validation-state large community, and a ROA
// change converging over the live RTR session re-exports the affected
// routes with the flipped state — no session restart.
func TestValidationStateCommunitiesStamped(t *testing.T) {
	_, pop, c, roas := rpkiTestbed(t, nil)
	startRPKIClient(t, pop, c)

	probe := inet.PrefixForASN(100) // tier-1 prefix, signed in the testbed
	waitFor(t, "probe routes arrive", func() bool {
		return len(c.RoutesFor("amsix", probe)) > 0
	})
	stateOf := func() (rpki.State, bool) {
		for _, rt := range c.RoutesFor("amsix", probe) {
			return core.ValidationStateFrom(47065, rt.Attrs.LargeCommunities)
		}
		return 0, false
	}
	waitFor(t, "Valid stamp on signed route", func() bool {
		st, ok := stateOf()
		return ok && st == rpki.Valid
	})

	serialBefore := pop.RPKI.Cache().Serial()
	// Revoke the origin's ROA and sign the space for someone else: the
	// held route flips Valid -> Invalid purely over the RTR session.
	roas.Add(rpki.ROA{Prefix: probe, ASN: 64111})
	roas.Revoke(rpki.ROA{Prefix: probe, ASN: 100})
	waitFor(t, "stamp flips to Invalid over live RTR", func() bool {
		st, ok := stateOf()
		return ok && st == rpki.Invalid
	})
	if pop.RPKI.Cache().Serial() <= serialBefore {
		t.Fatal("client serial did not advance with the store")
	}

	// And back.
	roas.Add(rpki.ROA{Prefix: probe, ASN: 100})
	waitFor(t, "stamp flips back to Valid", func() bool {
		st, ok := stateOf()
		return ok && st == rpki.Valid
	})
}

// TestRTROutageFailsClosed is the chaos soak: flapping the RTR link
// kills the cache session and blocks redials. After the freshness
// window the PoP's cache is stale but keeps validating — Invalid never
// passes, NotFound-only coverage still does — and when the link comes
// back the client reconverges, picking up ROAs added during the outage.
func TestRTROutageFailsClosed(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 11, Logf: t.Logf})
	_, pop, _, roas := rpkiTestbed(t, inj)

	outage := 2 * time.Second
	if n := inj.Inject(chaos.Fault{Kind: chaos.LinkFlap, Name: "rtr-amsix", Duration: outage}); n == 0 {
		t.Fatal("RTR link not registered with the injector")
	}
	waitChaos(t, "stale trip after freshness window", func() bool {
		return pop.RPKI.Stale()
	})

	// Fail closed on stale data.
	if st := pop.RPKI.Validate(pfx("184.164.225.0/24"), expASN); st != rpki.Invalid {
		t.Fatalf("stale cache must keep rejecting Invalid: %v", st)
	}
	if st := pop.RPKI.Validate(pfx("203.0.113.0/24"), expASN); st != rpki.NotFound {
		t.Fatalf("stale cache must keep passing NotFound: %v", st)
	}
	if st := pop.RPKI.Validate(pfx("184.164.224.0/24"), expASN); st != rpki.Valid {
		t.Fatalf("stale cache retains Valid: %v", st)
	}

	// A ROA signed during the outage must arrive after reconvergence.
	roas.Add(rpki.ROA{Prefix: pfx("198.51.100.0/24"), ASN: 64888})
	waitChaos(t, "reconvergence after the link returns", func() bool {
		return pop.RPKI.Connected() && !pop.RPKI.Stale() &&
			pop.RPKI.Validate(pfx("198.51.100.0/24"), 64888) == rpki.Valid
	})
	if pop.RPKI.Serial() != roas.Serial() {
		t.Fatalf("client serial %d != store serial %d after outage", pop.RPKI.Serial(), roas.Serial())
	}
}
