package peering

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/rib"
	"repro/internal/tunnel"
)

// Client is the experiment-side toolkit (paper §4.5, Table 1): it opens
// tunnels to PoPs, runs BGP sessions over them, announces and withdraws
// prefixes with AS-path and community manipulation, inspects learned
// routes, and exchanges data-plane traffic with per-packet egress
// selection.
type Client struct {
	// Name and Key are the credentials issued at approval.
	Name string
	Key  string
	// ASN the experiment originates from.
	ASN uint32
	// MRAI, when positive, paces the client's own UPDATE stream on
	// sessions started after it is set (RFC 4271 §9.2.1.1 coalescing on
	// the experiment side). The control plane sets it from a spec's
	// pacing override.
	MRAI time.Duration
	// GR, when positive, advertises the graceful-restart capability
	// (RFC 4724) with this restart time on plain (non-resilient)
	// sessions started after it is set. The control plane sets it so a
	// crash-killed daemon's routes are retained as stale — adoptable on
	// recovery — instead of withdrawn the moment the tunnel dies.
	GR time.Duration

	mu        sync.Mutex
	resilient bool
	conns     map[string]*popConn
}

// clientSnapshotInterval is the table-version stride between FIB
// snapshot rebuilds on a client's per-PoP route table. Client tables
// are small next to a PoP's adj-RIBs, so a tight stride keeps the
// packet path on the lock-free snapshot almost immediately.
const clientSnapshotInterval = 64

// popConn is the client's state for one PoP.
type popConn struct {
	// popName and platformASN identify the PoP; pop is set only for
	// in-process connections (nil when the PoP is remote, e.g. over
	// TCP via OpenTunnelRemote).
	popName     string
	platformASN uint32
	pop         *PoP
	// stateMu guards the fields a resilient reconnect replaces: the
	// tunnel pair, the BGP session, and the addresses parsed from the
	// (re-issued) tunnel payload.
	stateMu sync.Mutex
	// tun is the client end; serverTun is the PoP end (the router's BGP
	// session attaches to its control channel; nil for remote PoPs,
	// where the server attaches it itself).
	tun       *tunnel.Tunnel
	serverTun *tunnel.Tunnel
	sess      *bgp.Session
	// sup keeps the session alive across tunnel loss in resilient mode.
	sup *bgp.Supervisor

	localIP    netip.Addr
	routerAddr netip.Addr

	estMu   sync.Mutex
	estDone bool

	// anns records live announcements so a resilient client can replay
	// them (with the re-assigned tunnel address as next hop) after a
	// reconnect, RFC 4724 style.
	annMu sync.Mutex
	anns  map[annKey]announcement

	table *rib.Table // routes learned at this PoP

	arpMu   sync.Mutex
	arp     map[netip.Addr]ethernet.MAC
	arpWait map[netip.Addr][]chan ethernet.MAC

	pktMu    sync.Mutex
	onPacket func(ip *ethernet.IPv4, fromNeighbor ethernet.MAC)

	echoMu   sync.Mutex
	echoWait map[[2]uint16]chan probeReply

	estCh chan struct{}
}

// NewClient creates a toolkit client for an approved experiment.
func NewClient(name, key string, asn uint32) *Client {
	return &Client{Name: name, Key: key, ASN: asn, conns: make(map[string]*popConn)}
}

// OpenTunnel establishes the authenticated tunnel to a PoP (Table 1:
// "open tunnels").
func (c *Client) OpenTunnel(pop *PoP) error {
	c.mu.Lock()
	if _, dup := c.conns[pop.Name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("peering: tunnel to %s already open", pop.Name)
	}
	c.mu.Unlock()

	tun, serverTun, err := dialPopTunnel(pop, c.Name, c.Key)
	if err != nil {
		return err
	}
	pc, err := c.newPopConn(pop.Name, pop.platform.ASN(), tun)
	if err != nil {
		return err
	}
	pc.pop = pop
	pc.serverTun = serverTun
	return nil
}

// dialPopTunnel opens one authenticated in-process tunnel to pop,
// threading the server-side carrier through the platform's fault
// injector so chaos runs can sever it.
func dialPopTunnel(pop *PoP, name, key string) (tun, serverTun *tunnel.Tunnel, err error) {
	serverSide, clientSide := newConnPair()
	serverSide = pop.platform.chaosWrap("tunnel", name, pop.Name, serverSide)
	type serveResult struct {
		tun *tunnel.Tunnel
		err error
	}
	served := make(chan serveResult, 1)
	go func() {
		st, err := pop.ServeTunnel(serverSide)
		served <- serveResult{st, err}
	}()
	tun, err = tunnel.Dial(clientSide, name, key)
	if err != nil {
		<-served
		return nil, nil, err
	}
	res := <-served
	if res.err != nil {
		return nil, nil, res.err
	}
	return tun, res.tun, nil
}

// newPopConn builds per-PoP client state around an authenticated tunnel
// and registers it.
func (c *Client) newPopConn(popName string, platformASN uint32, tun *tunnel.Tunnel) (*popConn, error) {
	pc := &popConn{
		popName: popName, platformASN: platformASN, tun: tun,
		table:    rib.NewTable(c.Name + "@" + popName),
		arp:      make(map[netip.Addr]ethernet.MAC),
		arpWait:  make(map[netip.Addr][]chan ethernet.MAC),
		echoWait: make(map[[2]uint16]chan probeReply),
		estCh:    make(chan struct{}),
		anns:     make(map[annKey]announcement),
	}
	// Data-plane lookups (pathFor) run per packet: keep a FIB snapshot
	// maintained so they bypass the table's shard locks.
	pc.table.EnableAutoSnapshot(clientSnapshotInterval)
	var bits int
	var ipStr, rtrStr string
	if _, err := fmt.Sscanf(string(tun.Payload), "%s %d %s", &ipStr, &bits, &rtrStr); err != nil {
		tun.Close()
		return nil, fmt.Errorf("peering: bad tunnel config %q: %v", tun.Payload, err)
	}
	pc.localIP = netip.MustParseAddr(ipStr)
	pc.routerAddr = netip.MustParseAddr(rtrStr)
	tun.OnFrame(pc.handleFrame)

	c.mu.Lock()
	c.conns[popName] = pc
	c.mu.Unlock()
	return pc, nil
}

// session, transport, and local read the reconnect-replaceable state;
// setSession installs each new session incarnation (the Supervisor's
// OnSession hook in resilient mode).
func (pc *popConn) session() *bgp.Session {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.sess
}

func (pc *popConn) setSession(s *bgp.Session) {
	pc.stateMu.Lock()
	pc.sess = s
	pc.stateMu.Unlock()
}

func (pc *popConn) transport() *tunnel.Tunnel {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.tun
}

func (pc *popConn) local() netip.Addr {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.localIP
}

func (pc *popConn) supervisor() *bgp.Supervisor {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.sup
}

// signalEstablished closes estCh exactly once; resilient sessions
// establish repeatedly.
func (pc *popConn) signalEstablished() {
	pc.estMu.Lock()
	if !pc.estDone {
		pc.estDone = true
		close(pc.estCh)
	}
	pc.estMu.Unlock()
}

// CloseTunnel tears down the tunnel to a PoP (Table 1: "close tunnels").
func (c *Client) CloseTunnel(popName string) error {
	c.mu.Lock()
	pc := c.conns[popName]
	delete(c.conns, popName)
	c.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("peering: no tunnel to %s", popName)
	}
	if sup := pc.supervisor(); sup != nil {
		sup.Stop()
	} else if sess := pc.session(); sess != nil {
		sess.Close()
	}
	return pc.transport().Close()
}

// TunnelStatus reports "up" or "down" (Table 1: "check status").
func (c *Client) TunnelStatus(popName string) string {
	c.mu.Lock()
	pc := c.conns[popName]
	c.mu.Unlock()
	if pc == nil {
		return "down"
	}
	select {
	case <-pc.transport().Done():
		return "down"
	default:
		return "up"
	}
}

func (c *Client) conn(popName string) (*popConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc := c.conns[popName]
	if pc == nil {
		return nil, fmt.Errorf("peering: no tunnel to %s (open one first)", popName)
	}
	return pc, nil
}

// StartBGP brings up the experiment's BGP session at a PoP over the
// tunnel (Table 1: "start BIRD v4 and v6 sessions" — one session carries
// both families here).
func (c *Client) StartBGP(popName string) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	if pc.session() != nil {
		return fmt.Errorf("peering: BGP already running at %s", popName)
	}
	if c.isResilient() && pc.pop != nil {
		return c.startResilientBGP(pc)
	}
	// In-process PoPs attach the router side here; remote PoPs attached
	// it at tunnel setup (ServeAndAttach).
	if pc.pop != nil {
		if err := pc.pop.ConnectExperimentBGP(pc.serverTun, c.ASN); err != nil {
			return err
		}
	}
	cfg := bgp.Config{
		LocalASN:  c.ASN,
		RemoteASN: pc.platformASN,
		LocalID:   pc.local(),
		MRAI:      c.MRAI,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSendReceive,
			bgp.IPv6Unicast: bgp.AddPathSendReceive,
		},
		OnUpdate:      func(u *bgp.Update) { pc.handleUpdate(u) },
		OnEstablished: func() { pc.signalEstablished() },
	}
	if c.GR > 0 {
		// A plain client never sends End-of-RIB after a restart (only
		// resilient mode replays), so the router's stale routes persist
		// until adopted or flushed by the restart timer.
		cfg.GracefulRestart = &bgp.GracefulRestartConfig{RestartTime: c.GR}
	}
	sess := bgp.NewSession(pc.transport().Control(), cfg)
	pc.setSession(sess)
	go sess.Run()
	return nil
}

// WaitEstablished blocks until the PoP's BGP session establishes.
func (c *Client) WaitEstablished(popName string, timeout time.Duration) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	// The supervisor spawns its first session asynchronously, so a
	// resilient popConn counts as started once the supervisor exists.
	if pc.session() == nil && pc.supervisor() == nil {
		return fmt.Errorf("peering: BGP not started at %s", popName)
	}
	select {
	case <-pc.estCh:
		return nil
	case <-time.After(timeout):
		state := bgp.StateIdle
		if sess := pc.session(); sess != nil {
			state = sess.State()
		}
		return fmt.Errorf("peering: BGP at %s did not establish (state %s)", popName, state)
	}
}

// StopBGP closes the session (Table 1: "stop sessions").
func (c *Client) StopBGP(popName string) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	sess := pc.session()
	if sess == nil {
		return fmt.Errorf("peering: BGP not running at %s", popName)
	}
	if sup := pc.supervisor(); sup != nil {
		sup.Stop()
		pc.stateMu.Lock()
		pc.sup = nil
		pc.stateMu.Unlock()
	} else {
		sess.Close()
	}
	pc.setSession(nil)
	return nil
}

// BGPStatus returns the session state (Table 1: "status of BGP
// connections").
func (c *Client) BGPStatus(popName string) bgp.State {
	pc, err := c.conn(popName)
	if err != nil {
		return bgp.StateIdle
	}
	sess := pc.session()
	if sess == nil {
		return bgp.StateIdle
	}
	return sess.State()
}

// handleUpdate maintains the client's per-PoP route table.
func (pc *popConn) handleUpdate(u *bgp.Update) {
	for _, w := range append(append([]bgp.NLRI(nil), u.Withdrawn...), u.MPUnreach...) {
		pc.table.Withdraw(w.Prefix, pc.popName, w.ID)
	}
	store := func(nlri bgp.NLRI) {
		if u.Attrs == nil {
			return
		}
		pc.table.Add(&rib.Path{
			Prefix: nlri.Prefix, ID: nlri.ID, Peer: pc.popName,
			Attrs: u.Attrs.Clone(), EBGP: true, Seq: rib.NextSeq(),
		})
	}
	for _, nlri := range u.NLRI {
		store(nlri)
	}
	for _, nlri := range u.MPReach {
		store(nlri)
	}
}

// Routes returns a snapshot of the routes learned at a PoP. Each path's
// ID is the neighbor the route came through; its next hop is the
// neighbor's local-pool address.
func (c *Client) Routes(popName string) []*rib.Path {
	pc, err := c.conn(popName)
	if err != nil {
		return nil
	}
	var out []*rib.Path
	pc.table.Walk(func(_ netip.Prefix, paths []*rib.Path) bool {
		out = append(out, paths...)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix.String() < out[j].Prefix.String()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RoutesFor returns the paths for one prefix at a PoP.
func (c *Client) RoutesFor(popName string, prefix netip.Prefix) []*rib.Path {
	pc, err := c.conn(popName)
	if err != nil {
		return nil
	}
	return pc.table.Paths(prefix)
}

// AnnounceOption customizes an announcement (Table 1: "manipulate
// community / AS-path attributes").
type AnnounceOption func(*announcement)

type announcement struct {
	version  bgp.PathID
	prepend  int
	poison   []uint32
	comms    []bgp.Community
	origin   uint32
	announce []uint32 // whitelist neighbor IDs
	noExport []uint32 // blacklist neighbor IDs
}

// WithVersion announces a distinct version of the prefix (its ADD-PATH
// ID), letting different versions target different neighbors.
func WithVersion(id uint32) AnnounceOption {
	return func(a *announcement) { a.version = bgp.PathID(id) }
}

// WithPrepend prepends the experiment ASN n extra times.
func WithPrepend(n int) AnnounceOption {
	return func(a *announcement) { a.prepend = n }
}

// WithPoison inserts the given ASNs into the path (BGP poisoning;
// requires the capability).
func WithPoison(asns ...uint32) AnnounceOption {
	return func(a *announcement) { a.poison = append(a.poison, asns...) }
}

// WithCommunities attaches BGP communities (requires the capability).
func WithCommunities(comms ...bgp.Community) AnnounceOption {
	return func(a *announcement) { a.comms = append(a.comms, comms...) }
}

// WithOriginASN originates from a different authorized ASN.
func WithOriginASN(asn uint32) AnnounceOption {
	return func(a *announcement) { a.origin = asn }
}

// ToNeighbors whitelists export to the given neighbor IDs only.
func ToNeighbors(ids ...uint32) AnnounceOption {
	return func(a *announcement) { a.announce = append(a.announce, ids...) }
}

// ExceptNeighbors blacklists export to the given neighbor IDs.
func ExceptNeighbors(ids ...uint32) AnnounceOption {
	return func(a *announcement) { a.noExport = append(a.noExport, ids...) }
}

// annKey identifies one live announcement: a (prefix, version) pair.
type annKey struct {
	prefix  netip.Prefix
	version bgp.PathID
}

// buildAnnouncement assembles the UPDATE for one announcement with the
// given next hop (the client's current tunnel address — reconnects are
// assigned a fresh one, so replay rebuilds rather than caches updates).
func buildAnnouncement(expASN, platformASN uint32, nextHop netip.Addr, prefix netip.Prefix, a announcement) *bgp.Update {
	// Path shape: experiment ASN, then any poisoned ASNs, then the
	// origin (repeated experiment ASN when poisoning, so the origin
	// check still passes).
	path := []uint32{expASN}
	path = append(path, a.poison...)
	if a.origin != expASN || len(a.poison) > 0 {
		path = append(path, a.origin)
	}
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: path}},
		NextHop:     nextHop,
		Communities: a.comms,
	}
	attrs.PrependAS(expASN, a.prepend)
	for _, id := range a.announce {
		attrs.AddCommunity(AnnounceTo(platformASN, id))
	}
	for _, id := range a.noExport {
		attrs.AddCommunity(NoExportTo(platformASN, id))
	}
	return &bgp.Update{
		Attrs: attrs,
		NLRI:  []bgp.NLRI{{Prefix: prefix, ID: a.version}},
	}
}

// Announce sends a prefix announcement at a PoP (Table 1:
// "announce/withdraw prefix").
func (c *Client) Announce(popName string, prefix netip.Prefix, opts ...AnnounceOption) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	sess := pc.session()
	if sess == nil {
		return fmt.Errorf("peering: BGP not running at %s", popName)
	}
	a := announcement{origin: c.ASN}
	for _, o := range opts {
		o(&a)
	}
	pc.annMu.Lock()
	pc.anns[annKey{prefix, a.version}] = a
	pc.annMu.Unlock()
	return sess.Send(buildAnnouncement(c.ASN, pc.platformASN, pc.local(), prefix, a))
}

// Adopt records an announcement as live without sending it: the route
// is already installed at the PoP (retained across a control-plane
// restart via graceful restart) and verified to match, so re-sending
// would only burn the experiment's update budget. After Adopt the
// announcement is replayed on reconnects exactly as if this client had
// announced it.
func (c *Client) Adopt(popName string, prefix netip.Prefix, opts ...AnnounceOption) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	if pc.session() == nil {
		return fmt.Errorf("peering: BGP not running at %s", popName)
	}
	a := announcement{origin: c.ASN}
	for _, o := range opts {
		o(&a)
	}
	pc.annMu.Lock()
	pc.anns[annKey{prefix, a.version}] = a
	pc.annMu.Unlock()
	return nil
}

// Withdraw retracts a prefix (a specific version, or version 0).
func (c *Client) Withdraw(popName string, prefix netip.Prefix, version uint32) error {
	pc, err := c.conn(popName)
	if err != nil {
		return err
	}
	sess := pc.session()
	if sess == nil {
		return fmt.Errorf("peering: BGP not running at %s", popName)
	}
	pc.annMu.Lock()
	delete(pc.anns, annKey{prefix, bgp.PathID(version)})
	pc.annMu.Unlock()
	return sess.Send(&bgp.Update{
		Withdrawn: []bgp.NLRI{{Prefix: prefix, ID: bgp.PathID(version)}},
	})
}

// CLI evaluates a BIRD-style show command against the client's state
// (Table 1: "access BIRD CLI").
func (c *Client) CLI(popName, command string) string {
	pc, err := c.conn(popName)
	if err != nil {
		return err.Error()
	}
	fields := strings.Fields(command)
	switch {
	case len(fields) == 2 && fields[0] == "show" && fields[1] == "protocols":
		state := "down"
		if sess := pc.session(); sess != nil {
			state = sess.State().String()
		}
		return fmt.Sprintf("name     proto  state\n%-8s BGP    %s", popName, state)
	case len(fields) >= 2 && fields[0] == "show" && fields[1] == "route":
		var b strings.Builder
		var filter netip.Prefix
		if len(fields) == 3 {
			p, err := netip.ParsePrefix(fields[2])
			if err != nil {
				return "syntax error: " + err.Error()
			}
			filter = p
		}
		for _, p := range c.Routes(popName) {
			if filter.IsValid() && p.Prefix != filter {
				continue
			}
			fmt.Fprintf(&b, "%-20s via %-12s [id %d] %v\n",
				p.Prefix, p.NextHop(), p.ID, p.Attrs.ASPathFlat())
		}
		if b.Len() == 0 {
			return "<no routes>"
		}
		return strings.TrimRight(b.String(), "\n")
	default:
		return "syntax error: supported commands: show protocols, show route [prefix]"
	}
}
