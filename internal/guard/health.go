package guard

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is a PoP's control-plane health. Ordering matters: higher is
// worse, and the watchdog steps up immediately but down one level at a
// time.
type State int

const (
	Healthy State = iota
	Degraded
	Shedding
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Pressure is one watchdog sample of a PoP's control-plane load.
type Pressure struct {
	// UpdateRate is the recent BGP update processing rate (updates/s).
	UpdateRate float64
	// RIBPaths is the total path count across the PoP's tables.
	RIBPaths int
	// QueueDepth is the telemetry emitter's backlog.
	QueueDepth int
	// LoopLag is how late the sampling tick itself ran — a proxy for
	// scheduler/event-loop starvation.
	LoopLag time.Duration
}

// Limits is one level's thresholds. A zero field disables that signal
// at that level.
type Limits struct {
	UpdateRate float64
	RIBPaths   int
	QueueDepth int
	LoopLag    time.Duration
}

// exceeded lists the signals at or over their limits.
func (l Limits) exceeded(p Pressure) []string {
	var over []string
	if l.UpdateRate > 0 && p.UpdateRate >= l.UpdateRate {
		over = append(over, fmt.Sprintf("update-rate %.0f/s ≥ %.0f/s", p.UpdateRate, l.UpdateRate))
	}
	if l.RIBPaths > 0 && p.RIBPaths >= l.RIBPaths {
		over = append(over, fmt.Sprintf("rib-paths %d ≥ %d", p.RIBPaths, l.RIBPaths))
	}
	if l.QueueDepth > 0 && p.QueueDepth >= l.QueueDepth {
		over = append(over, fmt.Sprintf("queue-depth %d ≥ %d", p.QueueDepth, l.QueueDepth))
	}
	if l.LoopLag > 0 && p.LoopLag >= l.LoopLag {
		over = append(over, fmt.Sprintf("loop-lag %s ≥ %s", p.LoopLag, l.LoopLag))
	}
	return over
}

// HealthConfig parameterizes one PoP's health tracker.
type HealthConfig struct {
	// Degraded and Shedding are the step-up thresholds for each level.
	Degraded Limits
	Shedding Limits
	// RecoverSamples is how many consecutive samples must sit below the
	// next level down before stepping down (hysteresis so the state
	// does not flap with the load). Defaults to 3.
	RecoverSamples int
	// OnChange, when set, is called (without locks held) on every
	// transition with a human-readable cause.
	OnChange func(from, to State, why string)
	// Logf, when set, receives transition log lines.
	Logf func(format string, args ...any)
}

// Health tracks one PoP through the healthy → degraded → shedding
// machine: any sample breaching a level's limits steps up to that
// level immediately; recovery steps down one level after
// RecoverSamples consecutive clean samples.
type Health struct {
	cfg HealthConfig
	pop string

	mu    sync.Mutex
	state State
	clean int // consecutive samples strictly below the current level

	stateGauge  *telemetry.Gauge
	transitions *telemetry.Counter
}

// NewHealth returns a Health tracker for pop, registering its
// guard_health_* series.
func NewHealth(pop string, cfg HealthConfig) *Health {
	if cfg.RecoverSamples <= 0 {
		cfg.RecoverSamples = 3
	}
	reg := telemetry.Default()
	return &Health{
		cfg:         cfg,
		pop:         pop,
		stateGauge:  reg.Gauge("guard_health_state", telemetry.L("pop", pop)),
		transitions: reg.Counter("guard_health_transitions_total", telemetry.L("pop", pop)),
	}
}

// Observe folds one pressure sample into the machine and returns the
// resulting state.
func (h *Health) Observe(p Pressure) State {
	h.mu.Lock()
	target, why := Healthy, ""
	if over := h.cfg.Shedding.exceeded(p); len(over) > 0 {
		target, why = Shedding, strings.Join(over, ", ")
	} else if over := h.cfg.Degraded.exceeded(p); len(over) > 0 {
		target, why = Degraded, strings.Join(over, ", ")
	}

	var from, to State
	changed := false
	switch {
	case target > h.state:
		from, to = h.state, target
		h.state, h.clean, changed = target, 0, true
	case target == h.state:
		h.clean = 0
	default: // pressure below the current level: recover hysteretically
		h.clean++
		if h.clean >= h.cfg.RecoverSamples {
			from, to = h.state, h.state-1
			h.state, h.clean, changed = h.state-1, 0, true
			why = fmt.Sprintf("pressure below thresholds for %d samples", h.cfg.RecoverSamples)
		}
	}
	state := h.state
	h.stateGauge.Set(int64(state))
	if changed {
		h.transitions.Inc()
	}
	cb, logf := h.cfg.OnChange, h.cfg.Logf
	h.mu.Unlock()

	if changed {
		if logf != nil {
			logf("guard: %s health %s -> %s (%s)", h.pop, from, to, why)
		}
		if cb != nil {
			cb(from, to, why)
		}
	}
	return state
}

// State reports the current health state.
func (h *Health) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}
