package guard

import "repro/internal/telemetry"

// Damping counters are global (one process-wide registry): a flap is a
// flap whether it was charged by a core router or the policy engine.
// Per-PoP health series are registered per tracker in NewHealth.
var (
	reg = telemetry.Default()

	dampingFlaps         = reg.Counter("guard_damping_flaps_total")
	dampingSuppressed    = reg.Counter("guard_damping_suppressed_total")
	dampingReused        = reg.Counter("guard_damping_reused_total")
	dampingSuppressedNow = reg.Gauge("guard_damping_suppressed_current")
)
