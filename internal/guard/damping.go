// Package guard is the platform's convergence-safety and
// overload-protection layer. It implements RFC 2439 route-flap damping
// (per-(peer, prefix) penalties with exponential decay and
// suppress/reuse thresholds) and the healthy → degraded → shedding
// health-state machine the peering watchdog drives per PoP. Both sit
// on every update path: damping keeps one flapping route from churning
// real neighbors, the health machine keeps one misbehaving experiment
// from melting a PoP's control plane.
package guard

import (
	"math"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// RFC 2439 suggests these figure-of-merit defaults (penalty per flap
// and the classic Cisco/Juniper suppress/reuse split). The half-life
// here is scaled to the simulator's time base — production BGP uses
// 15 minutes, the in-memory platform converges in milliseconds.
const (
	DefaultFlapPenalty       = 1000.0
	DefaultSuppressThreshold = 3000.0
	DefaultReuseThreshold    = 750.0
	DefaultHalfLife          = 15 * time.Second
)

// DampingConfig parameterizes a Damper. The zero value of every field
// falls back to the RFC 2439 defaults above.
type DampingConfig struct {
	// FlapPenalty is added to a route's figure of merit on every flap
	// (withdrawal of a known route, or re-advertisement).
	FlapPenalty float64
	// SuppressThreshold suppresses a route once its penalty reaches it.
	SuppressThreshold float64
	// ReuseThreshold releases a suppressed route once decay brings the
	// penalty back under it. Must be below SuppressThreshold.
	ReuseThreshold float64
	// HalfLife is the penalty's exponential-decay half-life.
	HalfLife time.Duration
	// MaxPenalty caps the figure of merit so a long storm cannot push
	// the reuse time out indefinitely (RFC 2439 §4.2 ceiling). Defaults
	// to 4× the suppress threshold.
	MaxPenalty float64
	// OnReuse, when set, is called (without locks held) whenever a
	// suppressed route's penalty decays below the reuse threshold via
	// the reuse timer, so the owner can re-export the withheld route.
	OnReuse func(Key)
	// Now overrides the clock, for tests.
	Now func() time.Time
}

func (c DampingConfig) withDefaults() DampingConfig {
	if c.FlapPenalty <= 0 {
		c.FlapPenalty = DefaultFlapPenalty
	}
	if c.SuppressThreshold <= 0 {
		c.SuppressThreshold = DefaultSuppressThreshold
	}
	if c.ReuseThreshold <= 0 {
		c.ReuseThreshold = DefaultReuseThreshold
	}
	if c.ReuseThreshold >= c.SuppressThreshold {
		c.ReuseThreshold = c.SuppressThreshold / 4
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.MaxPenalty <= 0 {
		c.MaxPenalty = 4 * c.SuppressThreshold
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Key identifies one damped route: the peer it was learned from (a
// neighbor name in core, "experiment@pop" in the policy engine) and
// the prefix.
type Key struct {
	Peer   string
	Prefix netip.Prefix
}

func (k Key) String() string { return k.Prefix.String() + " from " + k.Peer }

// flapEntry is the per-route figure of merit. The penalty decays
// lazily: it is brought current (exponential decay since last) on
// every access rather than by a background ticker.
type flapEntry struct {
	penalty    float64
	last       time.Time
	announced  bool
	suppressed bool
	reuse      *time.Timer
}

// Damper tracks per-route flap penalties per RFC 2439. All methods are
// safe for concurrent use.
type Damper struct {
	cfg DampingConfig

	mu     sync.Mutex
	routes map[Key]*flapEntry
	closed bool
}

// NewDamper returns a Damper with cfg's zero fields defaulted.
func NewDamper(cfg DampingConfig) *Damper {
	return &Damper{cfg: cfg.withDefaults(), routes: make(map[Key]*flapEntry)}
}

// Config reports the effective (defaulted) configuration.
func (d *Damper) Config() DampingConfig { return d.cfg }

// Announce records an advertisement of key. The first advertisement of
// an unknown route is free; any re-advertisement (implicit withdraw or
// attribute change — either way an UPDATE the platform must propagate)
// counts as a flap. It reports whether the route is suppressed and the
// current penalty.
func (d *Damper) Announce(key Key) (suppressed bool, penalty float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	e := d.routes[key]
	if e == nil {
		// First sighting: remember it so the next update counts, but
		// charge no penalty.
		d.routes[key] = &flapEntry{last: now, announced: true}
		return false, 0
	}
	d.decayLocked(key, e, now)
	e.announced = true
	d.chargeLocked(key, e)
	return e.suppressed, e.penalty
}

// Withdraw records a withdrawal of key. Withdrawing a route that was
// announced is a flap; withdrawing an unknown route is a no-op.
// Withdrawals are never blocked — suppression only withholds
// advertisements — but the reported state lets callers mark the
// adj-RIB-in entry damped.
func (d *Damper) Withdraw(key Key) (suppressed bool, penalty float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.routes[key]
	if e == nil {
		return false, 0
	}
	d.decayLocked(key, e, d.cfg.Now())
	if !e.announced {
		return e.suppressed, e.penalty
	}
	e.announced = false
	d.chargeLocked(key, e)
	return e.suppressed, e.penalty
}

// Suppressed reports whether key is currently suppressed, bringing its
// penalty current first.
func (d *Damper) Suppressed(key Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.routes[key]
	if e == nil {
		return false
	}
	d.decayLocked(key, e, d.cfg.Now())
	return e.suppressed
}

// Penalty reports key's current (decayed) figure of merit.
func (d *Damper) Penalty(key Key) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.routes[key]
	if e == nil {
		return 0
	}
	d.decayLocked(key, e, d.cfg.Now())
	return e.penalty
}

// SuppressedCount reports how many routes are currently suppressed.
func (d *Damper) SuppressedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	n := 0
	for key, e := range d.routes {
		d.decayLocked(key, e, now)
		if e.suppressed {
			n++
		}
	}
	return n
}

// SuppressedFor reports how many of peer's routes are currently
// suppressed (the per-neighbor figure StatsReports carry).
func (d *Damper) SuppressedFor(peer string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	n := 0
	for key, e := range d.routes {
		if key.Peer != peer {
			continue
		}
		d.decayLocked(key, e, now)
		if e.suppressed {
			n++
		}
	}
	return n
}

// SuppressedRoute is one row of SuppressedRoutes: a withheld route,
// its penalty, and the time until decay releases it.
type SuppressedRoute struct {
	Key     Key
	Penalty float64
	ReuseIn time.Duration
}

// SuppressedRoutes lists every currently suppressed route, sorted by
// descending penalty, for operator visibility (peering-cli health and
// the telemetry station).
func (d *Damper) SuppressedRoutes() []SuppressedRoute {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	var out []SuppressedRoute
	for key, e := range d.routes {
		d.decayLocked(key, e, now)
		if e.suppressed {
			out = append(out, SuppressedRoute{Key: key, Penalty: e.penalty, ReuseIn: d.reuseDelay(e.penalty)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Penalty != out[j].Penalty {
			return out[i].Penalty > out[j].Penalty
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// Len reports how many routes have live damping state.
func (d *Damper) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.routes)
}

// Close stops all reuse timers. The damper remains usable but no
// OnReuse callbacks will fire.
func (d *Damper) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	for _, e := range d.routes {
		if e.reuse != nil {
			e.reuse.Stop()
			e.reuse = nil
		}
	}
}

// chargeLocked adds one flap's penalty and handles the
// suppress-threshold crossing.
func (d *Damper) chargeLocked(key Key, e *flapEntry) {
	e.penalty = math.Min(e.penalty+d.cfg.FlapPenalty, d.cfg.MaxPenalty)
	dampingFlaps.Inc()
	if !e.suppressed && e.penalty >= d.cfg.SuppressThreshold {
		e.suppressed = true
		dampingSuppressed.Inc()
		dampingSuppressedNow.Add(1)
	}
	if e.suppressed {
		d.armReuseLocked(key, e)
	}
}

// decayLocked brings e's penalty current and handles the
// reuse-threshold crossing. It returns true when this call released a
// suppressed route.
func (d *Damper) decayLocked(key Key, e *flapEntry, now time.Time) (released bool) {
	if dt := now.Sub(e.last); dt > 0 {
		if e.penalty > 0 {
			e.penalty *= math.Exp2(-float64(dt) / float64(d.cfg.HalfLife))
		}
		e.last = now
	}
	if e.suppressed && e.penalty < d.cfg.ReuseThreshold {
		e.suppressed = false
		released = true
		dampingReused.Inc()
		dampingSuppressedNow.Add(-1)
		if e.reuse != nil {
			e.reuse.Stop()
			e.reuse = nil
		}
	}
	// Fully cooled and withdrawn: forget the route so the state map
	// tracks only active flappers and a long-quiet route's next
	// announcement is again free.
	if !e.suppressed && !e.announced && e.penalty < d.cfg.ReuseThreshold/8 {
		delete(d.routes, key)
	}
	return released
}

// reuseDelay computes how long the penalty takes to decay from p to
// the reuse threshold.
func (d *Damper) reuseDelay(p float64) time.Duration {
	if p <= d.cfg.ReuseThreshold {
		return 0
	}
	halves := math.Log2(p / d.cfg.ReuseThreshold)
	return time.Duration(halves * float64(d.cfg.HalfLife))
}

// armReuseLocked (re)arms the timer that releases a suppressed route
// once its penalty has decayed to the reuse threshold.
func (d *Damper) armReuseLocked(key Key, e *flapEntry) {
	if d.closed {
		return
	}
	delay := d.reuseDelay(e.penalty) + time.Millisecond
	if e.reuse != nil {
		e.reuse.Stop()
	}
	e.reuse = time.AfterFunc(delay, func() { d.reuseTick(key) })
}

// reuseTick runs when a reuse timer fires: if decay has released the
// route, notify the owner; if a fake clock or further flaps kept it
// suppressed, re-arm.
func (d *Damper) reuseTick(key Key) {
	d.mu.Lock()
	e := d.routes[key]
	if e == nil || d.closed {
		d.mu.Unlock()
		return
	}
	released := d.decayLocked(key, e, d.cfg.Now())
	if !released && e.suppressed {
		d.armReuseLocked(key, e)
	}
	cb := d.cfg.OnReuse
	d.mu.Unlock()
	if released && cb != nil {
		cb(key)
	}
}
