package guard

import (
	"testing"
	"time"
)

func TestHealthStepsUpImmediately(t *testing.T) {
	h := NewHealth("test-up", HealthConfig{
		Degraded: Limits{UpdateRate: 100},
		Shedding: Limits{UpdateRate: 1000},
	})
	if st := h.Observe(Pressure{UpdateRate: 50}); st != Healthy {
		t.Fatalf("state = %v, want healthy", st)
	}
	if st := h.Observe(Pressure{UpdateRate: 150}); st != Degraded {
		t.Fatalf("state = %v, want degraded", st)
	}
	// Shedding breach jumps straight over degraded.
	h2 := NewHealth("test-up2", HealthConfig{
		Degraded: Limits{UpdateRate: 100},
		Shedding: Limits{UpdateRate: 1000},
	})
	if st := h2.Observe(Pressure{UpdateRate: 5000}); st != Shedding {
		t.Fatalf("state = %v, want shedding from healthy in one sample", st)
	}
}

func TestHealthRecoversHysteretically(t *testing.T) {
	var transitions []string
	h := NewHealth("test-recover", HealthConfig{
		Degraded:       Limits{QueueDepth: 10},
		Shedding:       Limits{QueueDepth: 100},
		RecoverSamples: 3,
		OnChange: func(from, to State, why string) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	h.Observe(Pressure{QueueDepth: 500}) // -> shedding
	if h.State() != Shedding {
		t.Fatalf("state = %v", h.State())
	}
	// Two clean samples: still shedding (hysteresis).
	h.Observe(Pressure{})
	h.Observe(Pressure{})
	if h.State() != Shedding {
		t.Fatal("stepped down before RecoverSamples clean samples")
	}
	// A dirty sample resets the clean streak.
	h.Observe(Pressure{QueueDepth: 500})
	h.Observe(Pressure{})
	h.Observe(Pressure{})
	if h.State() != Shedding {
		t.Fatal("clean streak not reset by a dirty sample")
	}
	// Three consecutive clean samples step down ONE level only.
	h.Observe(Pressure{})
	if h.State() != Degraded {
		t.Fatalf("state = %v, want degraded after full clean streak", h.State())
	}
	// Three more reach healthy.
	h.Observe(Pressure{})
	h.Observe(Pressure{})
	h.Observe(Pressure{})
	if h.State() != Healthy {
		t.Fatalf("state = %v, want healthy", h.State())
	}
	want := []string{"healthy>shedding", "shedding>degraded", "degraded>healthy"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestHealthZeroLimitsDisableSignals(t *testing.T) {
	h := NewHealth("test-zero", HealthConfig{
		Degraded: Limits{UpdateRate: 100}, // only update rate is armed
		Shedding: Limits{UpdateRate: 1000},
	})
	st := h.Observe(Pressure{RIBPaths: 1 << 30, QueueDepth: 1 << 30, LoopLag: time.Hour})
	if st != Healthy {
		t.Fatalf("disabled signals tripped the machine: %v", st)
	}
}

func TestHealthMultipleSignals(t *testing.T) {
	h := NewHealth("test-multi", HealthConfig{
		Degraded: Limits{UpdateRate: 100, RIBPaths: 1000, QueueDepth: 50, LoopLag: 100 * time.Millisecond},
		Shedding: Limits{UpdateRate: 1000, RIBPaths: 10000, QueueDepth: 500, LoopLag: time.Second},
	})
	// Each signal alone can degrade.
	for _, p := range []Pressure{
		{UpdateRate: 200},
		{RIBPaths: 2000},
		{QueueDepth: 60},
		{LoopLag: 200 * time.Millisecond},
	} {
		h2 := NewHealth("test-multi-one", HealthConfig{Degraded: h.cfg.Degraded, Shedding: h.cfg.Shedding})
		if st := h2.Observe(p); st != Degraded {
			t.Fatalf("pressure %+v: state = %v, want degraded", p, st)
		}
	}
	// RIB pressure at shedding level wins over update rate at degraded.
	if st := h.Observe(Pressure{UpdateRate: 200, RIBPaths: 20000}); st != Shedding {
		t.Fatalf("state = %v, want shedding (worst signal wins)", st)
	}
}
