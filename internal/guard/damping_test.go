package guard

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic decay.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func key(peer, prefix string) Key {
	return Key{Peer: peer, Prefix: netip.MustParsePrefix(prefix)}
}

func TestDamperSuppressesAfterRepeatedFlaps(t *testing.T) {
	clk := newFakeClock()
	d := NewDamper(DampingConfig{HalfLife: time.Minute, Now: clk.Now})
	defer d.Close()
	k := key("n1", "10.0.0.0/24")

	// First announcement is free.
	if sup, p := d.Announce(k); sup || p != 0 {
		t.Fatalf("first announce: suppressed=%v penalty=%v, want free", sup, p)
	}
	// withdraw (1000) + announce (2000): churning but not yet suppressed.
	if sup, _ := d.Withdraw(k); sup {
		t.Fatal("suppressed after one flap")
	}
	if sup, p := d.Announce(k); sup || p != 2000 {
		t.Fatalf("after 2 flaps: suppressed=%v penalty=%v", sup, p)
	}
	// Third flap crosses the default 3000 threshold.
	sup, p := d.Withdraw(k)
	if !sup || p != 3000 {
		t.Fatalf("after 3 flaps: suppressed=%v penalty=%v, want suppressed at 3000", sup, p)
	}
	if !d.Suppressed(k) {
		t.Fatal("Suppressed() disagrees")
	}
	if n := d.SuppressedCount(); n != 1 {
		t.Fatalf("SuppressedCount = %d, want 1", n)
	}
}

func TestDamperPenaltyDecaysAndReleases(t *testing.T) {
	clk := newFakeClock()
	d := NewDamper(DampingConfig{HalfLife: time.Minute, Now: clk.Now})
	defer d.Close()
	k := key("n1", "10.0.0.0/24")

	d.Announce(k)
	for i := 0; i < 2; i++ {
		d.Withdraw(k)
		d.Announce(k)
	}
	if !d.Suppressed(k) {
		t.Fatal("not suppressed after 4 flaps")
	}
	p0 := d.Penalty(k)

	// One half-life halves the penalty.
	clk.Advance(time.Minute)
	if p := d.Penalty(k); p < p0/2*0.99 || p > p0/2*1.01 {
		t.Fatalf("penalty after one half-life = %v, want ~%v", p, p0/2)
	}
	// Enough half-lives to cross the reuse threshold (750): 4000 → 500.
	clk.Advance(2 * time.Minute)
	if d.Suppressed(k) {
		t.Fatalf("still suppressed at penalty %v (reuse 750)", d.Penalty(k))
	}
	if n := d.SuppressedCount(); n != 0 {
		t.Fatalf("SuppressedCount = %d after release", n)
	}
}

func TestDamperMaxPenaltyCapsReuseTime(t *testing.T) {
	clk := newFakeClock()
	d := NewDamper(DampingConfig{HalfLife: time.Minute, Now: clk.Now})
	defer d.Close()
	k := key("n1", "10.0.0.0/24")

	d.Announce(k)
	for i := 0; i < 100; i++ {
		d.Withdraw(k)
		d.Announce(k)
	}
	if p, max := d.Penalty(k), d.Config().MaxPenalty; p != max {
		t.Fatalf("penalty = %v, want capped at %v", p, max)
	}
}

func TestDamperOnReuseFiresViaTimer(t *testing.T) {
	// Real clock: tiny half-life so the reuse timer fires quickly.
	released := make(chan Key, 1)
	d := NewDamper(DampingConfig{
		HalfLife: 20 * time.Millisecond,
		OnReuse:  func(k Key) { released <- k },
	})
	defer d.Close()
	k := key("n1", "10.0.0.0/24")

	d.Announce(k)
	d.Withdraw(k)
	d.Announce(k)
	d.Withdraw(k) // ~3000 minus sub-millisecond real-clock decay
	if sup, _ := d.Announce(k); !sup {
		t.Fatal("not suppressed after 4 flaps")
	}
	select {
	case got := <-released:
		if got != k {
			t.Fatalf("OnReuse(%v), want %v", got, k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnReuse never fired")
	}
	if d.Suppressed(k) {
		t.Fatal("still suppressed after OnReuse")
	}
}

func TestDamperForgetsCooledRoutes(t *testing.T) {
	clk := newFakeClock()
	d := NewDamper(DampingConfig{HalfLife: time.Minute, Now: clk.Now})
	defer d.Close()
	k := key("n1", "10.0.0.0/24")

	d.Announce(k)
	d.Withdraw(k) // penalty 1000, withdrawn
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// 750/8 ≈ 94: ~3.5 half-lives from 1000. Give it plenty.
	clk.Advance(10 * time.Minute)
	d.Suppressed(k) // any access prunes
	if d.Len() != 0 {
		t.Fatalf("cooled withdrawn route not pruned, Len = %d", d.Len())
	}
	// A fresh announcement after pruning is free again.
	if sup, p := d.Announce(k); sup || p != 0 {
		t.Fatalf("announce after cooldown: suppressed=%v penalty=%v", sup, p)
	}
}

func TestDamperWithdrawUnknownIsFree(t *testing.T) {
	d := NewDamper(DampingConfig{})
	defer d.Close()
	if sup, p := d.Withdraw(key("n1", "10.0.0.0/24")); sup || p != 0 {
		t.Fatalf("withdraw of unknown route charged: suppressed=%v penalty=%v", sup, p)
	}
	if d.Len() != 0 {
		t.Fatal("withdraw of unknown route created state")
	}
}

func TestDamperSuppressedRoutesSorted(t *testing.T) {
	clk := newFakeClock()
	d := NewDamper(DampingConfig{HalfLife: time.Minute, Now: clk.Now})
	defer d.Close()
	hot, warm := key("n1", "10.0.0.0/24"), key("n2", "10.0.1.0/24")
	for i, k := range []Key{hot, warm} {
		d.Announce(k)
		for j := 0; j < 3-i; j++ { // hot gets one extra flap pair
			d.Withdraw(k)
			d.Announce(k)
		}
	}
	routes := d.SuppressedRoutes()
	if len(routes) != 2 {
		t.Fatalf("SuppressedRoutes len = %d, want 2", len(routes))
	}
	if routes[0].Key != hot || routes[0].Penalty <= routes[1].Penalty {
		t.Fatalf("not sorted by descending penalty: %+v", routes)
	}
	if routes[0].ReuseIn <= routes[1].ReuseIn {
		t.Fatalf("hotter route should take longer to reuse: %+v", routes)
	}
}
