package rpki

import "testing"

func TestPeerlockBlocked(t *testing.T) {
	// AS 100 protects tier-1 peer AS 200; AS 300 is an authorized
	// upstream of 200.
	pl := Peerlock{Protected: 200, Allowed: []uint32{300}}
	cases := []struct {
		name string
		from uint32
		path []uint32
		want bool
	}{
		{"direct from protected", 200, []uint32{200, 555}, false},
		{"via authorized upstream", 300, []uint32{300, 200, 555}, false},
		{"leak via customer", 1000, []uint32{1000, 200, 555}, true},
		{"leak deep in path", 1000, []uint32{1000, 999, 200, 555}, true},
		{"clean path", 1000, []uint32{1000, 999, 555}, false},
	}
	for _, c := range cases {
		if got := pl.Blocked(c.from, c.path); got != c.want {
			t.Errorf("%s: Blocked(%d, %v) = %v, want %v", c.name, c.from, c.path, got, c.want)
		}
	}
}

func TestAnyBlockedCounts(t *testing.T) {
	rules := []Peerlock{{Protected: 200}, {Protected: 201}}
	before := peerlockHit.Value()
	if !AnyBlocked(rules, 1000, []uint32{1000, 201, 5}) {
		t.Fatal("leak of AS201 not blocked")
	}
	if AnyBlocked(rules, 1000, []uint32{1000, 5}) {
		t.Fatal("clean path blocked")
	}
	if got := peerlockHit.Value() - before; got != 1 {
		t.Fatalf("peerlock counter moved by %d, want 1", got)
	}
}
