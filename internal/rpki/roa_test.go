package rpki

import (
	"fmt"
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestValidateRFC6811(t *testing.T) {
	s := NewStore()
	s.Add(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574})

	cases := []struct {
		prefix string
		origin uint32
		want   State
	}{
		{"184.164.224.0/22", 61574, Valid},
		{"184.164.224.0/24", 61574, Valid},    // within maxLength
		{"184.164.225.0/24", 61574, Valid},    // sibling subnet, covered
		{"184.164.224.0/25", 61574, Invalid},  // too specific
		{"184.164.224.0/24", 65000, Invalid},  // wrong origin
		{"184.164.224.0/21", 61574, NotFound}, // less specific than ROA
		{"8.8.8.0/24", 15169, NotFound},       // uncovered space
	}
	for _, c := range cases {
		if got := s.Validate(pfx(c.prefix), c.origin); got != c.want {
			t.Errorf("Validate(%s, AS%d) = %v, want %v", c.prefix, c.origin, got, c.want)
		}
	}
}

func TestValidateMultipleROAs(t *testing.T) {
	s := NewStore()
	// Two origins authorized for overlapping space: any match → Valid.
	s.Add(ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 24, ASN: 1})
	s.Add(ROA{Prefix: pfx("10.1.0.0/16"), MaxLength: 24, ASN: 2})
	if got := s.Validate(pfx("10.1.2.0/24"), 2); got != Valid {
		t.Fatalf("more-specific ROA should validate AS2: got %v", got)
	}
	if got := s.Validate(pfx("10.1.2.0/24"), 1); got != Valid {
		t.Fatalf("covering /8 ROA should validate AS1: got %v", got)
	}
	if got := s.Validate(pfx("10.1.2.0/24"), 3); got != Invalid {
		t.Fatalf("unauthorized origin should be Invalid: got %v", got)
	}
	if got := s.Validate(pfx("10.9.0.0/16"), 2); got != Invalid {
		t.Fatalf("AS2 outside its /16 should be Invalid (the /8 covers): got %v", got)
	}
}

func TestValidateIPv6(t *testing.T) {
	s := NewStore()
	s.Add(ROA{Prefix: pfx("2001:db8::/32"), MaxLength: 48, ASN: 61574})
	if got := s.Validate(pfx("2001:db8:1::/48"), 61574); got != Valid {
		t.Fatalf("v6 Valid: got %v", got)
	}
	if got := s.Validate(pfx("2001:db8:1::/64"), 61574); got != Invalid {
		t.Fatalf("v6 too specific: got %v", got)
	}
	if got := s.Validate(pfx("2001:dead::/32"), 61574); got != NotFound {
		t.Fatalf("v6 uncovered: got %v", got)
	}
}

func TestMaxLengthDefaultsToPrefixLength(t *testing.T) {
	s := NewStore()
	s.Add(ROA{Prefix: pfx("192.0.2.0/24"), ASN: 64500})
	if got := s.Validate(pfx("192.0.2.0/24"), 64500); got != Valid {
		t.Fatalf("exact prefix: got %v", got)
	}
	if got := s.Validate(pfx("192.0.2.0/25"), 64500); got != Invalid {
		t.Fatalf("sub-prefix without explicit maxLength must be Invalid: got %v", got)
	}
}

func TestSerialAndDeltas(t *testing.T) {
	s := NewStore()
	if s.Serial() != 0 {
		t.Fatalf("fresh store serial = %d", s.Serial())
	}
	r1 := ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 24, ASN: 1}
	r2 := ROA{Prefix: pfx("10.1.0.0/16"), MaxLength: 24, ASN: 2}
	s.Add(r1)
	s.Add(r2)
	s.Add(r2) // duplicate: no serial bump
	if s.Serial() != 2 {
		t.Fatalf("serial after 2 adds = %d, want 2", s.Serial())
	}
	s.Revoke(r1)
	if s.Serial() != 3 {
		t.Fatalf("serial after revoke = %d, want 3", s.Serial())
	}
	ds, ok := s.DeltasSince(1)
	if !ok || len(ds) != 2 {
		t.Fatalf("DeltasSince(1) = %v, %v", ds, ok)
	}
	if ds[0].ROA != r2.normalize() || !ds[0].Announce {
		t.Fatalf("delta 2 = %+v", ds[0])
	}
	if ds[1].ROA != r1.normalize() || ds[1].Announce {
		t.Fatalf("delta 3 = %+v", ds[1])
	}
	if _, ok := s.DeltasSince(99); ok {
		t.Fatal("future serial should not be ok")
	}
	serial, roas := s.Snapshot()
	if serial != 3 || len(roas) != 1 || roas[0] != r2.normalize() {
		t.Fatalf("snapshot = %d %v", serial, roas)
	}
}

func TestDeltaWindowEviction(t *testing.T) {
	s := NewStore()
	for i := 0; i < deltaLogCap+10; i++ {
		s.Add(ROA{Prefix: pfx(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256)), ASN: uint32(i + 1)})
	}
	if _, ok := s.DeltasSince(1); ok {
		t.Fatal("serial before the retained window must force a reset")
	}
	if ds, ok := s.DeltasSince(uint32(deltaLogCap + 5)); !ok || len(ds) != 5 {
		t.Fatalf("recent serial should yield deltas: %v %v", len(ds), ok)
	}
}

func TestSubscribeNotifiesAndUnsubscribes(t *testing.T) {
	s := NewStore()
	var got []uint32
	unsub := s.Subscribe(func(serial uint32) { got = append(got, serial) })
	s.Add(ROA{Prefix: pfx("10.0.0.0/8"), ASN: 1})
	s.Add(ROA{Prefix: pfx("10.0.0.0/8"), ASN: 1}) // duplicate: no notify
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("notifications = %v", got)
	}
	unsub()
	s.Add(ROA{Prefix: pfx("11.0.0.0/8"), ASN: 2})
	if len(got) != 1 {
		t.Fatalf("notified after unsubscribe: %v", got)
	}
}

func TestCoveringTrieStress(t *testing.T) {
	s := NewStore()
	// Nested ROAs at several depths plus scattered siblings.
	for i := 0; i < 64; i++ {
		s.Add(ROA{Prefix: pfx(fmt.Sprintf("10.%d.0.0/16", i)), MaxLength: 24, ASN: uint32(100 + i)})
	}
	s.Add(ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 16, ASN: 99})
	for i := 0; i < 64; i++ {
		p := pfx(fmt.Sprintf("10.%d.5.0/24", i))
		if got := s.Validate(p, uint32(100+i)); got != Valid {
			t.Fatalf("%s AS%d = %v", p, 100+i, got)
		}
		if got := s.Validate(p, 99); got != Invalid {
			t.Fatalf("%s via /8 beyond maxLength 16 = %v, want invalid", p, got)
		}
	}
	if got := s.Validate(pfx("10.70.0.0/16"), 99); got != Valid {
		t.Fatalf("/8 ROA at /16: %v", got)
	}
	for i := 0; i < 64; i++ {
		s.Revoke(ROA{Prefix: pfx(fmt.Sprintf("10.%d.0.0/16", i)), MaxLength: 24, ASN: uint32(100 + i)})
	}
	if s.Len() != 1 {
		t.Fatalf("len after revocations = %d", s.Len())
	}
	if got := s.Validate(pfx("10.3.5.0/24"), 103); got != Invalid {
		t.Fatalf("after revoke, only /8 covers: %v", got)
	}
}
