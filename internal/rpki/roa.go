// Package rpki models the Internet's cryptographic routing registry as
// the platform's neighbors would consume it: a store of Route Origin
// Authorizations with RFC 6811 origin validation, an RTR-style cache
// protocol (modeled on RFC 8210) that keeps routers' validated caches
// live as ROAs change, and Peerlock-style route-leak rules of the kind
// transit ASes deploy out of band ("Flexsealing BGP Against Route
// Leaks").
//
// The paper's enforcement engine validates what experiments may
// announce; this package models the other side — how the Internet
// judges what the platform announces. vBGP routers and synthetic ASes
// hold a ValidatedCache synchronized over the RTR protocol; when the
// cache session drops and the data goes stale the cache fails closed
// (per the platform's §3.3 posture): stale ROAs keep rejecting Invalid
// routes rather than forgetting them and waving hijacks through.
package rpki

import (
	"fmt"
	"net/netip"
	"sync"
)

// State is an RFC 6811 route origin validation outcome.
type State int

// Validation states, in RFC 6811 terms.
const (
	// NotFound: no ROA covers the route's prefix.
	NotFound State = iota
	// Valid: a covering ROA authorizes the origin at this length.
	Valid
	// Invalid: covering ROAs exist but none matches origin+length.
	Invalid
)

// String names the state as operators spell it.
func (s State) String() string {
	switch s {
	case NotFound:
		return "not-found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// ROA is one Route Origin Authorization: origin ASN may announce
// Prefix and its subnets down to MaxLength bits.
type ROA struct {
	Prefix    netip.Prefix
	MaxLength int
	ASN       uint32
}

// String formats the ROA in the conventional notation.
func (r ROA) String() string {
	return fmt.Sprintf("%s-%d => AS%d", r.Prefix, r.MaxLength, r.ASN)
}

// normalize masks the prefix and defaults MaxLength to the prefix
// length (a ROA with no explicit maxLength authorizes only the exact
// prefix, per RFC 6482).
func (r ROA) normalize() ROA {
	r.Prefix = r.Prefix.Masked()
	if r.MaxLength < r.Prefix.Bits() {
		r.MaxLength = r.Prefix.Bits()
	}
	return r
}

// covers reports whether the ROA's prefix contains p (same family,
// shorter-or-equal length).
func (r ROA) covers(p netip.Prefix) bool {
	return r.Prefix.Addr().Is4() == p.Addr().Is4() &&
		r.Prefix.Bits() <= p.Bits() && r.Prefix.Contains(p.Addr())
}

// matches reports whether the ROA authorizes (p, origin): covering,
// within maxLength, and the right origin ASN (RFC 6811 §2).
func (r ROA) matches(p netip.Prefix, origin uint32) bool {
	return r.covers(p) && p.Bits() <= r.MaxLength && r.ASN == origin
}

// roaNode is one node of the per-family binary ROA trie. Nodes with no
// ROAs are branching points.
type roaNode struct {
	prefix   netip.Prefix
	roas     []ROA
	children [2]*roaNode
}

// roaTrie is a binary radix trie of ROAs keyed by their prefix,
// supporting the covering-set walk origin validation needs (every ROA
// whose prefix contains the route's prefix, not just the longest).
type roaTrie struct {
	root *roaNode
	size int
}

func newROATrie(v6 bool) *roaTrie {
	addr := netip.IPv4Unspecified()
	if v6 {
		addr = netip.IPv6Unspecified()
	}
	return &roaTrie{root: &roaNode{prefix: netip.PrefixFrom(addr, 0)}}
}

// bitAt returns bit i (0 = most significant) of the address.
func bitAt(a netip.Addr, i int) int {
	raw := a.AsSlice()
	return int(raw[i/8]>>(7-i%8)) & 1
}

// commonBits returns the length of the longest common prefix of a and
// b, capped at max.
func commonBits(a, b netip.Addr, max int) int {
	ra, rb := a.AsSlice(), b.AsSlice()
	n := 0
	for i := 0; i < len(ra) && n < max; i++ {
		x := ra[i] ^ rb[i]
		if x == 0 {
			n += 8
			continue
		}
		for m := byte(0x80); m != 0 && n < max; m >>= 1 {
			if x&m != 0 {
				return n
			}
			n++
		}
	}
	if n > max {
		n = max
	}
	return n
}

// insert adds a ROA under its prefix.
func (t *roaTrie) insert(r ROA) {
	p := r.Prefix
	n := t.root
	for {
		if n.prefix == p {
			for _, have := range n.roas {
				if have == r {
					return
				}
			}
			n.roas = append(n.roas, r)
			t.size++
			return
		}
		// p extends below n. Descend by p's next bit.
		b := bitAt(p.Addr(), n.prefix.Bits())
		child := n.children[b]
		if child == nil {
			n.children[b] = &roaNode{prefix: p, roas: []ROA{r}}
			t.size++
			return
		}
		cb := commonBits(p.Addr(), child.prefix.Addr(), min(p.Bits(), child.prefix.Bits()))
		if cb == child.prefix.Bits() && child.prefix.Bits() <= p.Bits() {
			n = child
			continue
		}
		// Split: insert a branching node at the divergence point.
		branch := &roaNode{prefix: netip.PrefixFrom(p.Addr(), cb).Masked()}
		branch.children[bitAt(child.prefix.Addr(), cb)] = child
		n.children[b] = branch
		if branch.prefix == p {
			branch.roas = []ROA{r}
		} else {
			branch.children[bitAt(p.Addr(), cb)] = &roaNode{prefix: p, roas: []ROA{r}}
		}
		t.size++
		return
	}
}

// remove deletes an exact ROA. It reports whether the ROA was present.
// Emptied nodes are left as branching points (the trie shrinks only in
// value count; ROA stores are small and churn rarely).
func (t *roaTrie) remove(r ROA) bool {
	n := t.root
	for n != nil {
		if n.prefix == r.Prefix {
			for i, have := range n.roas {
				if have == r {
					n.roas = append(n.roas[:i], n.roas[i+1:]...)
					t.size--
					return true
				}
			}
			return false
		}
		if n.prefix.Bits() >= r.Prefix.Bits() || !n.prefix.Contains(r.Prefix.Addr()) {
			return false
		}
		n = n.children[bitAt(r.Prefix.Addr(), n.prefix.Bits())]
	}
	return false
}

// covering appends every stored ROA whose prefix contains p: the walk
// follows p's bit path from the root, collecting values at each node
// along the way.
func (t *roaTrie) covering(p netip.Prefix, out []ROA) []ROA {
	n := t.root
	for n != nil {
		if n.prefix.Bits() > p.Bits() || !n.prefix.Contains(p.Addr()) {
			break
		}
		for _, r := range n.roas {
			if r.covers(p) {
				out = append(out, r)
			}
		}
		if n.prefix.Bits() == p.Bits() {
			break
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
	return out
}

// walk visits every ROA in the trie.
func (t *roaTrie) walk(fn func(ROA)) {
	var rec func(n *roaNode)
	rec = func(n *roaNode) {
		if n == nil {
			return
		}
		for _, r := range n.roas {
			fn(r)
		}
		rec(n.children[0])
		rec(n.children[1])
	}
	rec(t.root)
}

// Delta is one serial-numbered ROA change: an announcement (Announce
// true) or a revocation.
type Delta struct {
	Serial   uint32
	Announce bool
	ROA      ROA
}

// deltaLogCap bounds the retained change history; clients asking for
// serials older than the window receive a Cache Reset and resync from
// scratch (RFC 8210 §5.9).
const deltaLogCap = 4096

// Store is a serial-numbered ROA database: the authoritative cache an
// RTR server exposes, and also the local ValidatedCache an RTR client
// maintains. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	v4, v6 *roaTrie
	serial uint32
	// firstSerial is the serial before the oldest retained delta.
	firstSerial uint32
	deltas      []Delta
	subs        []func(serial uint32)
}

// NewStore creates an empty ROA store at serial 0.
func NewStore() *Store {
	return &Store{v4: newROATrie(false), v6: newROATrie(true)}
}

func (s *Store) trieFor(p netip.Prefix) *roaTrie {
	if p.Addr().Is6() {
		return s.v6
	}
	return s.v4
}

// Add announces a ROA, bumping the serial. Adding a ROA already present
// is a no-op and does not bump the serial.
func (s *Store) Add(r ROA) uint32 {
	r = r.normalize()
	s.mu.Lock()
	before := s.trieFor(r.Prefix).size
	s.trieFor(r.Prefix).insert(r)
	if s.trieFor(r.Prefix).size == before {
		serial := s.serial
		s.mu.Unlock()
		return serial
	}
	serial := s.bumpLocked(Delta{Announce: true, ROA: r})
	subs := make([]func(uint32), len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	roaGauge.Set(int64(s.Len()))
	serialGauge.Set(int64(serial))
	for _, fn := range subs {
		if fn != nil {
			fn(serial)
		}
	}
	return serial
}

// Revoke withdraws a ROA, bumping the serial when it was present.
func (s *Store) Revoke(r ROA) uint32 {
	r = r.normalize()
	s.mu.Lock()
	if !s.trieFor(r.Prefix).remove(r) {
		serial := s.serial
		s.mu.Unlock()
		return serial
	}
	serial := s.bumpLocked(Delta{Announce: false, ROA: r})
	subs := make([]func(uint32), len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	roaGauge.Set(int64(s.Len()))
	serialGauge.Set(int64(serial))
	for _, fn := range subs {
		if fn != nil {
			fn(serial)
		}
	}
	return serial
}

func (s *Store) bumpLocked(d Delta) uint32 {
	s.serial++
	d.Serial = s.serial
	s.deltas = append(s.deltas, d)
	if len(s.deltas) > deltaLogCap {
		drop := len(s.deltas) - deltaLogCap
		s.firstSerial = s.deltas[drop-1].Serial
		s.deltas = s.deltas[drop:]
	}
	return s.serial
}

// Subscribe registers fn to run after every serial bump (the RTR
// server's Serial Notify trigger). fn runs on the mutating goroutine
// and must not call back into the store's writers. The returned
// function unsubscribes.
func (s *Store) Subscribe(fn func(serial uint32)) (unsubscribe func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
	idx := len(s.subs) - 1
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if idx < len(s.subs) {
			s.subs[idx] = nil
		}
	}
}

// Serial returns the current serial number.
func (s *Store) Serial() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.serial
}

// Len returns the number of stored ROAs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v4.size + s.v6.size
}

// Snapshot returns the serial and every ROA at that serial.
func (s *Store) Snapshot() (uint32, []ROA) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ROA, 0, s.v4.size+s.v6.size)
	s.v4.walk(func(r ROA) { out = append(out, r) })
	s.v6.walk(func(r ROA) { out = append(out, r) })
	return s.serial, out
}

// DeltasSince returns the changes after serial, oldest first. ok is
// false when serial predates the retained window (or is ahead of the
// store), in which case the caller must resync from a snapshot.
func (s *Store) DeltasSince(serial uint32) (ds []Delta, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if serial > s.serial || serial < s.firstSerial {
		return nil, false
	}
	for _, d := range s.deltas {
		if d.Serial > serial {
			ds = append(ds, d)
		}
	}
	return ds, true
}

// Apply replays one delta (an RTR client folding a Cache Response into
// its local cache). It does not notify subscribers of the originating
// store; the client owns notification of its own consumers.
func (s *Store) Apply(d Delta) {
	r := d.ROA.normalize()
	s.mu.Lock()
	if d.Announce {
		s.trieFor(r.Prefix).insert(r)
	} else {
		s.trieFor(r.Prefix).remove(r)
	}
	if d.Serial > s.serial {
		s.serial = d.Serial
	}
	s.mu.Unlock()
}

// Reset replaces the store's contents with a snapshot at the given
// serial (an RTR client handling a full Cache Response after reset).
func (s *Store) Reset(serial uint32, roas []ROA) {
	s.mu.Lock()
	v4, v6 := newROATrie(false), newROATrie(true)
	for _, r := range roas {
		r = r.normalize()
		if r.Prefix.Addr().Is6() {
			v6.insert(r)
		} else {
			v4.insert(r)
		}
	}
	s.v4, s.v6 = v4, v6
	s.serial = serial
	s.firstSerial = serial
	s.deltas = nil
	s.mu.Unlock()
}

// Validate classifies (prefix, origin) per RFC 6811: NotFound when no
// ROA covers the prefix, Valid when some covering ROA matches origin
// and maxLength, Invalid otherwise.
func (s *Store) Validate(prefix netip.Prefix, origin uint32) State {
	prefix = prefix.Masked()
	s.mu.RLock()
	covering := s.trieFor(prefix).covering(prefix, nil)
	s.mu.RUnlock()
	if len(covering) == 0 {
		return NotFound
	}
	for _, r := range covering {
		if r.matches(prefix, origin) {
			return Valid
		}
	}
	return Invalid
}

// Validator is anything that can classify a route origin: a Store, an
// RTR Client's live cache, or a test stub.
type Validator interface {
	Validate(prefix netip.Prefix, origin uint32) State
}

// SetSerial advances the store's serial without a content change (an
// RTR client applying an empty incremental response).
func (s *Store) SetSerial(serial uint32) {
	s.mu.Lock()
	if serial > s.serial {
		s.serial = serial
	}
	s.mu.Unlock()
}
