package rpki

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPDURoundTrip(t *testing.T) {
	cases := []PDU{
		{Type: PDUSerialNotify, Session: 7, Serial: 42},
		{Type: PDUSerialQuery, Session: 7, Serial: 41},
		{Type: PDUResetQuery},
		{Type: PDUCacheResponse, Session: 7},
		{Type: PDUIPv4Prefix, Announce: true, ROA: ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574}},
		{Type: PDUIPv4Prefix, Announce: false, ROA: ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 8, ASN: 1}},
		{Type: PDUIPv6Prefix, Announce: true, ROA: ROA{Prefix: pfx("2001:db8::/32"), MaxLength: 48, ASN: 61574}},
		{Type: PDUEndOfData, Session: 7, Serial: 42},
		{Type: PDUCacheReset, Session: 7},
		{Type: PDUErrorReport, Text: "unexpected PDU type 9"},
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		for _, p := range cases {
			if err := WritePDU(a, p); err != nil {
				return
			}
		}
	}()
	for i, want := range cases {
		got, err := ReadPDU(b)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type != want.Type || got.Serial != want.Serial || got.Announce != want.Announce ||
			got.ROA != want.ROA || got.Text != want.Text {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
}

// testCache is a server plus a dialer that hands the server one end of
// a fresh pipe per dial — the shape the platform wires through chaos.
type testCache struct {
	store  *Store
	server *Server
	mu     sync.Mutex
	conns  []net.Conn
}

func newTestCache(store *Store) *testCache {
	return &testCache{store: store, server: NewServer(store, 1)}
}

func (tc *testCache) dial() (net.Conn, error) {
	client, srv := net.Pipe()
	tc.mu.Lock()
	tc.conns = append(tc.conns, srv)
	tc.mu.Unlock()
	go func() { _ = tc.server.Serve(srv) }()
	return client, nil
}

// killSessions severs every active cache session server-side.
func (tc *testCache) killSessions() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, c := range tc.conns {
		c.Close()
	}
	tc.conns = nil
}

func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSerialSyncPropagates is the acceptance-criterion test: a ROA
// added or revoked on the cache reaches a connected client via Serial
// Notify + incremental Cache Response — no session restart — flipping
// a held route between Valid and Invalid.
func TestSerialSyncPropagates(t *testing.T) {
	store := NewStore()
	store.Add(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574})
	tc := newTestCache(store)

	c := NewClient(ClientConfig{Name: "t", Dial: tc.dial, Logf: t.Logf})
	defer c.Close()
	if !c.WaitSynced(5 * time.Second) {
		t.Fatal("client never synced")
	}
	route := pfx("184.164.224.0/24")
	if got := c.Validate(route, 61574); got != Valid {
		t.Fatalf("after initial sync: %v", got)
	}
	dialsBefore := rtrDials.Value()

	// A competing ROA keeps the prefix covered, so revoking the
	// authorizing ROA flips the held route Valid → Invalid (rather than
	// to NotFound).
	store.Add(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 22, ASN: 64999})
	store.Revoke(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574})
	waitFor(t, "revocation to propagate", 5*time.Second, func() bool {
		return c.Validate(route, 61574) == Invalid
	})

	// Re-add: flips back to Valid, again purely via notify+serial query.
	store.Add(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574})
	waitFor(t, "announcement to propagate", 5*time.Second, func() bool {
		return c.Validate(route, 61574) == Valid
	})

	if got := rtrDials.Value(); got != dialsBefore {
		t.Fatalf("sync used %d redials; must converge over the live session", got-dialsBefore)
	}
	if c.Serial() != store.Serial() {
		t.Fatalf("client serial %d != store serial %d", c.Serial(), store.Serial())
	}
}

// TestStaleExpiryFailsClosed kills the cache session and checks the
// fail-closed contract: after the freshness window lapses the cache is
// stale but keeps validating — Invalid never passes, NotFound-only
// coverage still does — and a redial reconverges.
func TestStaleExpiryFailsClosed(t *testing.T) {
	store := NewStore()
	store.Add(ROA{Prefix: pfx("184.164.224.0/22"), MaxLength: 24, ASN: 61574})
	tc := newTestCache(store)

	var dialable sync.Mutex
	blocked := false
	dial := func() (net.Conn, error) {
		dialable.Lock()
		b := blocked
		dialable.Unlock()
		if b {
			return nil, fmt.Errorf("cache unreachable")
		}
		return tc.dial()
	}
	c := NewClient(ClientConfig{Name: "t", Dial: dial, StaleExpiry: 50 * time.Millisecond, Logf: t.Logf})
	defer c.Close()
	if !c.WaitSynced(5 * time.Second) {
		t.Fatal("client never synced")
	}

	dialable.Lock()
	blocked = true
	dialable.Unlock()
	tc.killSessions()
	waitFor(t, "stale trip", 5*time.Second, func() bool { return c.Stale() })

	// Fail closed on stale data: Invalid still rejected, NotFound still
	// passes.
	if got := c.Validate(pfx("184.164.224.0/25"), 64666); got != Invalid {
		t.Fatalf("stale cache must still return Invalid: %v", got)
	}
	if got := c.Validate(pfx("8.8.8.0/24"), 15169); got != NotFound {
		t.Fatalf("stale cache NotFound: %v", got)
	}
	if got := c.Validate(pfx("184.164.224.0/24"), 61574); got != Valid {
		t.Fatalf("stale cache retains Valid: %v", got)
	}

	// A ROA change while disconnected must arrive after the redial.
	store.Add(ROA{Prefix: pfx("198.51.100.0/24"), ASN: 64777})
	dialable.Lock()
	blocked = false
	dialable.Unlock()
	waitFor(t, "reconvergence after redial", 5*time.Second, func() bool {
		return c.Connected() && !c.Stale() && c.Validate(pfx("198.51.100.0/24"), 64777) == Valid
	})
	if c.Serial() != store.Serial() {
		t.Fatalf("client serial %d != store serial %d after redial", c.Serial(), store.Serial())
	}
}

// TestCacheResetResync forces the client's serial out of the retained
// delta window and checks the Cache Reset → full resync path.
func TestCacheResetResync(t *testing.T) {
	store := NewStore()
	store.Add(ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 24, ASN: 1})
	tc := newTestCache(store)
	c := NewClient(ClientConfig{Name: "t", Dial: tc.dial, StaleExpiry: time.Hour, Logf: t.Logf})
	defer c.Close()
	if !c.WaitSynced(5 * time.Second) {
		t.Fatal("client never synced")
	}
	tc.killSessions()
	// Push the store far beyond the delta window while disconnected.
	for i := 0; i < deltaLogCap+8; i++ {
		store.Add(ROA{Prefix: pfx(fmt.Sprintf("172.%d.%d.0/24", 16+i/256, i%256)), ASN: uint32(i%64 + 2)})
	}
	waitFor(t, "full resync after cache reset", 10*time.Second, func() bool {
		return c.Connected() && c.Serial() == store.Serial()
	})
	if got := c.Validate(pfx("172.16.7.0/24"), 9); got != Valid {
		t.Fatalf("post-resync validation: %v", got)
	}
}

func TestServerMultipleSessions(t *testing.T) {
	store := NewStore()
	store.Add(ROA{Prefix: pfx("10.0.0.0/8"), MaxLength: 24, ASN: 1})
	tc := newTestCache(store)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c := NewClient(ClientConfig{Name: fmt.Sprintf("c%d", i), Dial: tc.dial})
		defer c.Close()
		clients = append(clients, c)
	}
	for _, c := range clients {
		if !c.WaitSynced(5 * time.Second) {
			t.Fatal("client never synced")
		}
	}
	store.Add(ROA{Prefix: pfx("11.0.0.0/8"), MaxLength: 24, ASN: 2})
	for i, c := range clients {
		cl := c
		waitFor(t, fmt.Sprintf("client %d convergence", i), 5*time.Second, func() bool {
			return cl.Validate(pfx("11.1.1.0/24"), 2) == Valid
		})
	}
}
