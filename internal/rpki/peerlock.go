package rpki

// Peerlock is one route-leak protection rule of the kind large transit
// networks deploy out of band ("Flexsealing BGP Against Route Leaks"):
// the deploying AS agrees with a protected peer that the peer's ASN
// must never appear in a path learned from anyone except the peer
// itself (or an explicitly authorized upstream of it). A route carrying
// the protected ASN mid-path from an unauthorized neighbor is a leak —
// some customer or peer is illegitimately transiting the protected
// network — and is rejected regardless of what the RPKI says about its
// origin.
type Peerlock struct {
	// Protected is the ASN this rule shields.
	Protected uint32
	// Allowed lists neighbor ASNs (besides Protected itself) permitted
	// to send paths containing Protected.
	Allowed []uint32
}

// Blocked reports whether a route arriving from neighbor fromASN with
// the given AS path (nearest AS first, excluding the deploying AS
// itself) violates the rule. The neighbor's own announcements are
// always allowed: the first hop of the path is the neighbor, so only
// a Protected ASN beyond it marks a leak.
func (pl Peerlock) Blocked(fromASN uint32, path []uint32) bool {
	if fromASN == pl.Protected {
		return false
	}
	for _, a := range pl.Allowed {
		if a == fromASN {
			return false
		}
	}
	for _, hop := range path {
		if hop == pl.Protected {
			return true
		}
	}
	return false
}

// AnyBlocked applies a rule set, counting hits; it reports whether any
// rule blocks the route.
func AnyBlocked(rules []Peerlock, fromASN uint32, path []uint32) bool {
	for _, pl := range rules {
		if pl.Blocked(fromASN, path) {
			peerlockHit.Inc()
			return true
		}
	}
	return false
}
