package rpki

import "repro/internal/telemetry"

// Package-wide rpki_* metrics: ROA-store population and serial, origin
// validations by outcome, a validation-latency histogram, RTR session
// machinery (syncs, notifies, resets), and the fail-closed stale
// machinery. Peerlock blocks are counted here too so all registry-
// related defenses expose under one prefix.
var (
	roaGauge    *telemetry.Gauge
	serialGauge *telemetry.Gauge

	validations       map[State]*telemetry.Counter
	validationSeconds *telemetry.Histogram

	rtrSyncs        *telemetry.Counter
	rtrNotifies     *telemetry.Counter
	rtrCacheResets  *telemetry.Counter
	rtrSessionDrops *telemetry.Counter
	rtrDials        *telemetry.Counter
	rtrSyncSeconds  *telemetry.Histogram

	staleTrips  *telemetry.Counter
	staleGauge  *telemetry.Gauge
	rtrUpGauge  *telemetry.Gauge
	peerlockHit *telemetry.Counter
)

func init() {
	reg := telemetry.Default()
	roaGauge = reg.Gauge("rpki_roas")
	serialGauge = reg.Gauge("rpki_serial")
	validations = map[State]*telemetry.Counter{
		Valid:    reg.Counter("rpki_validations_total", telemetry.L("state", Valid.String())),
		Invalid:  reg.Counter("rpki_validations_total", telemetry.L("state", Invalid.String())),
		NotFound: reg.Counter("rpki_validations_total", telemetry.L("state", NotFound.String())),
	}
	validationSeconds = reg.Histogram("rpki_validation_seconds",
		[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2})
	rtrSyncs = reg.Counter("rpki_rtr_syncs_total")
	rtrNotifies = reg.Counter("rpki_rtr_notifies_total")
	rtrCacheResets = reg.Counter("rpki_rtr_cache_resets_total")
	rtrSessionDrops = reg.Counter("rpki_rtr_session_drops_total")
	rtrDials = reg.Counter("rpki_rtr_dials_total")
	rtrSyncSeconds = reg.Histogram("rpki_rtr_sync_seconds",
		[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	staleTrips = reg.Counter("rpki_cache_stale_trips_total")
	staleGauge = reg.Gauge("rpki_stale_caches")
	rtrUpGauge = reg.Gauge("rpki_rtr_sessions_up")
	peerlockHit = reg.Counter("rpki_peerlock_blocked_total")
}
