package rpki

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
)

// The RTR wire protocol, modeled on RFC 8210: fixed 8-byte header
// (version, PDU type, a type-dependent 16-bit field, total length),
// followed by a type-specific body. The subset implemented is the
// router-cache synchronization core: Serial Notify, Serial/Reset Query,
// Cache Response, IPvX Prefix, End of Data, Cache Reset, Error Report.

// RTRVersion is the protocol version emitted in every header.
const RTRVersion = 1

// PDU types (RFC 8210 §5).
const (
	PDUSerialNotify  = 0
	PDUSerialQuery   = 1
	PDUResetQuery    = 2
	PDUCacheResponse = 3
	PDUIPv4Prefix    = 4
	PDUIPv6Prefix    = 6
	PDUEndOfData     = 7
	PDUCacheReset    = 8
	PDUErrorReport   = 10
)

// PDU is one decoded RTR protocol data unit. Fields are populated
// according to Type.
type PDU struct {
	Type int
	// Session identifies the cache session (header field for most
	// types).
	Session uint16
	// Serial is the serial number of Serial Notify/Query and End of
	// Data PDUs.
	Serial uint32
	// Announce distinguishes announcements from withdrawals in prefix
	// PDUs.
	Announce bool
	// ROA carries the payload of prefix PDUs.
	ROA ROA
	// Text carries Error Report diagnostics.
	Text string
}

const rtrHeaderLen = 8

// flagAnnounce marks a prefix PDU as an announcement (withdrawal when
// clear), RFC 8210 §5.6.
const flagAnnounce = 1

// WritePDU encodes and writes one PDU.
func WritePDU(w io.Writer, p PDU) error {
	var body []byte
	field := p.Session
	switch p.Type {
	case PDUSerialNotify, PDUSerialQuery, PDUEndOfData:
		body = binary.BigEndian.AppendUint32(nil, p.Serial)
	case PDUResetQuery, PDUCacheResponse, PDUCacheReset:
		if p.Type == PDUResetQuery {
			field = 0
		}
	case PDUIPv4Prefix, PDUIPv6Prefix:
		field = 0
		flags := byte(0)
		if p.Announce {
			flags = flagAnnounce
		}
		addr := p.ROA.Prefix.Addr()
		raw := addr.AsSlice()
		body = append(body, flags, byte(p.ROA.Prefix.Bits()), byte(p.ROA.MaxLength), 0)
		body = append(body, raw...)
		body = binary.BigEndian.AppendUint32(body, p.ROA.ASN)
	case PDUErrorReport:
		body = binary.BigEndian.AppendUint32(nil, uint32(len(p.Text)))
		body = append(body, p.Text...)
	default:
		return fmt.Errorf("rpki: cannot encode PDU type %d", p.Type)
	}
	hdr := make([]byte, rtrHeaderLen, rtrHeaderLen+len(body))
	hdr[0] = RTRVersion
	hdr[1] = byte(p.Type)
	binary.BigEndian.PutUint16(hdr[2:], field)
	binary.BigEndian.PutUint32(hdr[4:], uint32(rtrHeaderLen+len(body)))
	_, err := w.Write(append(hdr, body...))
	return err
}

// maxPDULen bounds accepted PDU lengths, protecting the reader from
// absurd length fields on corrupted transports.
const maxPDULen = 4096

// ReadPDU reads and decodes one PDU.
func ReadPDU(r io.Reader) (PDU, error) {
	var hdr [rtrHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return PDU{}, err
	}
	if hdr[0] != RTRVersion {
		return PDU{}, fmt.Errorf("rpki: unsupported RTR version %d", hdr[0])
	}
	p := PDU{Type: int(hdr[1]), Session: binary.BigEndian.Uint16(hdr[2:])}
	total := binary.BigEndian.Uint32(hdr[4:])
	if total < rtrHeaderLen || total > maxPDULen {
		return PDU{}, fmt.Errorf("rpki: bad PDU length %d", total)
	}
	body := make([]byte, total-rtrHeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return PDU{}, err
	}
	switch p.Type {
	case PDUSerialNotify, PDUSerialQuery, PDUEndOfData:
		if len(body) < 4 {
			return PDU{}, fmt.Errorf("rpki: truncated serial PDU")
		}
		p.Serial = binary.BigEndian.Uint32(body)
	case PDUResetQuery, PDUCacheResponse, PDUCacheReset:
		// Header only.
	case PDUIPv4Prefix, PDUIPv6Prefix:
		alen := 4
		if p.Type == PDUIPv6Prefix {
			alen = 16
		}
		if len(body) < 4+alen+4 {
			return PDU{}, fmt.Errorf("rpki: truncated prefix PDU")
		}
		p.Announce = body[0]&flagAnnounce != 0
		bits, maxLen := int(body[1]), int(body[2])
		addr, ok := netip.AddrFromSlice(body[4 : 4+alen])
		if !ok || bits > alen*8 || maxLen > alen*8 {
			return PDU{}, fmt.Errorf("rpki: bad prefix PDU")
		}
		p.ROA = ROA{
			Prefix:    netip.PrefixFrom(addr, bits).Masked(),
			MaxLength: maxLen,
			ASN:       binary.BigEndian.Uint32(body[4+alen:]),
		}
	case PDUErrorReport:
		if len(body) >= 4 {
			n := binary.BigEndian.Uint32(body)
			if int(n) <= len(body)-4 {
				p.Text = string(body[4 : 4+n])
			}
		}
	default:
		return PDU{}, fmt.Errorf("rpki: unknown PDU type %d", p.Type)
	}
	return p, nil
}

// prefixPDU builds the prefix PDU for one ROA delta.
func prefixPDU(r ROA, announce bool) PDU {
	t := PDUIPv4Prefix
	if r.Prefix.Addr().Is6() {
		t = PDUIPv6Prefix
	}
	return PDU{Type: t, Announce: announce, ROA: r}
}

// Server exposes a Store over the RTR protocol. One Server handles any
// number of concurrent router sessions; each Serve call owns one conn.
type Server struct {
	store   *Store
	session uint16
}

// NewServer creates an RTR cache server for the store. The session ID
// distinguishes cache incarnations (a client seeing a different session
// ID must drop its state and resync).
func NewServer(store *Store, session uint16) *Server {
	return &Server{store: store, session: session}
}

// Serve speaks the cache side of the RTR protocol on conn until the
// conn fails or the peer goes away. Serial Notify PDUs are pushed
// whenever the store's serial advances (RFC 8210 §5.2), so connected
// routers learn of ROA changes without polling.
func (sv *Server) Serve(conn net.Conn) error {
	defer conn.Close()
	var writeMu sync.Mutex
	send := func(p PDU) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		p.Session = sv.session
		return WritePDU(conn, p)
	}
	unsubscribe := sv.store.Subscribe(func(serial uint32) {
		rtrNotifies.Inc()
		// Best effort: a failed notify surfaces as a dead conn on the
		// read side.
		_ = send(PDU{Type: PDUSerialNotify, Serial: serial})
	})
	defer unsubscribe()

	for {
		p, err := ReadPDU(conn)
		if err != nil {
			return err
		}
		switch p.Type {
		case PDUResetQuery:
			serial, roas := sv.store.Snapshot()
			if err := send(PDU{Type: PDUCacheResponse}); err != nil {
				return err
			}
			for _, r := range roas {
				if err := send(prefixPDU(r, true)); err != nil {
					return err
				}
			}
			if err := send(PDU{Type: PDUEndOfData, Serial: serial}); err != nil {
				return err
			}
		case PDUSerialQuery:
			if p.Session != sv.session {
				// Different cache incarnation: force a full resync.
				if err := send(PDU{Type: PDUCacheReset}); err != nil {
					return err
				}
				continue
			}
			deltas, ok := sv.store.DeltasSince(p.Serial)
			if !ok {
				rtrCacheResets.Inc()
				if err := send(PDU{Type: PDUCacheReset}); err != nil {
					return err
				}
				continue
			}
			if err := send(PDU{Type: PDUCacheResponse}); err != nil {
				return err
			}
			end := p.Serial
			for _, d := range deltas {
				if err := send(prefixPDU(d.ROA, d.Announce)); err != nil {
					return err
				}
				end = d.Serial
			}
			if err := send(PDU{Type: PDUEndOfData, Serial: end}); err != nil {
				return err
			}
		case PDUErrorReport:
			return fmt.Errorf("rpki: peer error: %s", p.Text)
		default:
			_ = send(PDU{Type: PDUErrorReport, Text: fmt.Sprintf("unexpected PDU type %d", p.Type)})
		}
	}
}
