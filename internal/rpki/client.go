package rpki

import (
	"net"
	"net/netip"
	"sync"
	"time"
)

// ClientConfig configures an RTR client.
type ClientConfig struct {
	// Name labels the client in logs ("amsix", "inet").
	Name string
	// Dial opens a transport to the cache server. The client redials
	// through it after session loss.
	Dial func() (net.Conn, error)
	// StaleExpiry is how long after session loss the cache's data is
	// still considered fresh. Once it lapses the cache is marked stale
	// — but retained: validation keeps running on stale ROAs, so
	// Invalid routes stay rejected (fail closed, paper §3.3) rather
	// than reverting to NotFound and waving hijacks through. Zero
	// selects DefaultStaleExpiry.
	StaleExpiry time.Duration
	// OnChange runs after every applied synchronization (End of Data)
	// and after a stale-expiry trip, so consumers can revalidate held
	// routes. Runs on the client's session goroutine.
	OnChange func()
	// Logf receives session logs.
	Logf func(format string, args ...any)
}

// DefaultStaleExpiry is the post-disconnect freshness window.
const DefaultStaleExpiry = 30 * time.Second

// redial backoff bounds.
const (
	redialMin = 10 * time.Millisecond
	redialMax = 500 * time.Millisecond
)

// Client is the router side of the RTR protocol: it maintains a live
// ValidatedCache synchronized from a cache server, converging
// incrementally on Serial Notify and failing closed when the session
// drops and the data expires. Validate may be called from any
// goroutine.
type Client struct {
	cfg   ClientConfig
	cache *Store

	mu        sync.Mutex
	changeFn  func()
	conn      net.Conn
	sessionID uint16
	synced    bool // at least one End of Data applied this incarnation
	everSync  bool // ever synchronized (serial is meaningful)
	stale     bool
	connected bool
	closed    bool
	expiry    *time.Timer
}

// NewClient creates a client and starts its session loop.
func NewClient(cfg ClientConfig) *Client {
	if cfg.StaleExpiry <= 0 {
		cfg.StaleExpiry = DefaultStaleExpiry
	}
	c := &Client{cfg: cfg, cache: NewStore(), changeFn: cfg.OnChange}
	go c.run()
	return c
}

// SetOnChange replaces the change callback. Useful when the consumer
// (e.g. a router revalidating its exports) is constructed after the
// client it validates through.
func (c *Client) SetOnChange(fn func()) {
	c.mu.Lock()
	c.changeFn = fn
	c.mu.Unlock()
}

func (c *Client) notifyChange() {
	c.mu.Lock()
	fn := c.changeFn
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("rtr[%s]: "+format, append([]any{c.cfg.Name}, args...)...)
	}
}

// Validate classifies (prefix, origin) against the local validated
// cache, counting the outcome and observing validation latency.
func (c *Client) Validate(prefix netip.Prefix, origin uint32) State {
	start := time.Now()
	st := c.cache.Validate(prefix, origin)
	validations[st].Inc()
	validationSeconds.Observe(time.Since(start).Seconds())
	return st
}

// Cache exposes the local validated cache (read-only use).
func (c *Client) Cache() *Store { return c.cache }

// Serial returns the serial of the last applied synchronization.
func (c *Client) Serial() uint32 { return c.cache.Serial() }

// Stale reports whether the cache session is down and the freshness
// window has lapsed. Validation still runs (fail closed).
func (c *Client) Stale() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stale
}

// Connected reports whether an RTR session is currently up and synced.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected && c.synced
}

// WaitSynced blocks until the client has applied a synchronization and
// is connected, or the timeout lapses.
func (c *Client) WaitSynced(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Connected() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return c.Connected()
}

// Close terminates the session loop.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	if c.expiry != nil {
		c.expiry.Stop()
	}
	wasConnected := c.connected
	c.connected = false
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if wasConnected {
		rtrUpGauge.Add(-1)
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// run is the session loop: dial, synchronize, follow notifies; on
// transport loss arm the stale-expiry timer and redial with backoff.
func (c *Client) run() {
	backoff := redialMin
	for !c.isClosed() {
		rtrDials.Inc()
		conn, err := c.cfg.Dial()
		if err != nil {
			c.logf("dial: %v", err)
			time.Sleep(backoff)
			if backoff *= 2; backoff > redialMax {
				backoff = redialMax
			}
			continue
		}
		backoff = redialMin
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.connected = true
		c.synced = false
		c.mu.Unlock()
		rtrUpGauge.Add(1)

		err = c.session(conn)
		conn.Close()
		c.mu.Lock()
		c.connected = false
		c.conn = nil
		closed := c.closed
		if !closed {
			// Freshness countdown: if no session comes back within the
			// window, trip to stale (fail closed) and tell consumers.
			if c.expiry != nil {
				c.expiry.Stop()
			}
			c.expiry = time.AfterFunc(c.cfg.StaleExpiry, c.tripStale)
		}
		c.mu.Unlock()
		rtrUpGauge.Add(-1)
		if closed {
			return
		}
		rtrSessionDrops.Inc()
		c.logf("session lost: %v", err)
		time.Sleep(backoff)
	}
}

// tripStale marks the cache stale after the freshness window lapses
// with no session.
func (c *Client) tripStale() {
	c.mu.Lock()
	if c.closed || c.connected || c.stale {
		c.mu.Unlock()
		return
	}
	c.stale = true
	c.mu.Unlock()
	staleTrips.Inc()
	staleGauge.Add(1)
	c.logf("freshness window lapsed: validating on stale data (fail closed)")
	c.notifyChange()
}

// session drives one established RTR session to completion. Outbound
// PDUs go through a dedicated writer goroutine so the read loop is
// never blocked on an unbuffered transport while the cache is itself
// mid-write (both ends of an in-memory pipe writing is a deadlock).
func (c *Client) session(conn net.Conn) error {
	out := make(chan PDU, 16)
	go func() {
		for p := range out {
			if err := WritePDU(conn, p); err != nil {
				conn.Close() // unblocks the read loop
				return
			}
		}
	}()
	defer close(out)

	// Resume incrementally when this incarnation has synchronized
	// before; first contact does a full reset sync.
	query := PDU{Type: PDUResetQuery}
	c.mu.Lock()
	if c.everSync {
		query = PDU{Type: PDUSerialQuery, Session: c.sessionID, Serial: c.cache.Serial()}
	}
	c.mu.Unlock()
	out <- query

	var (
		inResponse bool
		full       bool // reset sync: collect a snapshot; else apply deltas
		snapshot   []ROA
		deltas     []Delta
		started    time.Time
		// awaiting coalesces Serial Notifies: one query in flight; a
		// notify received meanwhile re-queries after End of Data.
		awaiting = true
		notified uint32
	)
	fullRequested := query.Type == PDUResetQuery
	for {
		p, err := ReadPDU(conn)
		if err != nil {
			return err
		}
		switch p.Type {
		case PDUCacheResponse:
			inResponse = true
			full = fullRequested
			snapshot, deltas = nil, nil
			started = time.Now()
		case PDUIPv4Prefix, PDUIPv6Prefix:
			if !inResponse {
				continue
			}
			if full {
				if p.Announce {
					snapshot = append(snapshot, p.ROA)
				}
			} else {
				deltas = append(deltas, Delta{Announce: p.Announce, ROA: p.ROA})
			}
		case PDUEndOfData:
			if !inResponse {
				continue
			}
			if full {
				c.cache.Reset(p.Serial, snapshot)
			} else {
				for _, d := range deltas {
					d.Serial = p.Serial
					c.cache.Apply(d)
				}
				// Serial advances even when no delta touched the trie.
				c.cache.SetSerial(p.Serial)
			}
			inResponse = false
			c.mu.Lock()
			c.sessionID = p.Session
			c.synced = true
			c.everSync = true
			wasStale := c.stale
			c.stale = false
			if c.expiry != nil {
				c.expiry.Stop()
			}
			c.mu.Unlock()
			if wasStale {
				staleGauge.Add(-1)
			}
			rtrSyncs.Inc()
			rtrSyncSeconds.Observe(time.Since(started).Seconds())
			fullRequested = false
			awaiting = false
			c.notifyChange()
			if notified > c.cache.Serial() {
				out <- PDU{Type: PDUSerialQuery, Session: p.Session, Serial: c.cache.Serial()}
				awaiting = true
			}
		case PDUSerialNotify:
			if p.Serial > notified {
				notified = p.Serial
			}
			if !awaiting && notified > c.cache.Serial() {
				out <- PDU{Type: PDUSerialQuery, Session: p.Session, Serial: c.cache.Serial()}
				awaiting = true
			}
		case PDUCacheReset:
			// Our serial is outside the cache's window: full resync,
			// keeping current data until the new snapshot lands.
			fullRequested = true
			awaiting = true
			out <- PDU{Type: PDUResetQuery}
		case PDUErrorReport:
			c.logf("cache error: %s", p.Text)
		}
	}
}
