package pipe

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestSimultaneousWritesDoNotDeadlock(t *testing.T) {
	// The reason this package exists: two BGP speakers both write their
	// OPEN before reading. net.Pipe would deadlock here.
	a, b := New()
	done := make(chan struct{}, 2)
	write := func(c *Conn) {
		if _, err := c.Write(make([]byte, 64*1024)); err != nil {
			t.Error(err)
		}
		done <- struct{}{}
	}
	go write(a)
	go write(b)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("simultaneous writes deadlocked")
		}
	}
}

func TestDataIntegrityAndOrder(t *testing.T) {
	a, b := New()
	var sent bytes.Buffer
	go func() {
		for i := 0; i < 100; i++ {
			chunk := bytes.Repeat([]byte{byte(i)}, i+1)
			sent.Write(chunk)
			a.Write(chunk)
		}
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sent.Bytes()) {
		t.Fatalf("stream corrupted: %d bytes vs %d", len(got), sent.Len())
	}
}

func TestCloseDrainsBufferedDataThenEOF(t *testing.T) {
	a, b := New()
	a.Write([]byte("tail"))
	a.Close()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tail" {
		t.Errorf("got %q", got)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, _ := New()
	a.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestCloseUnblocksPendingRead(t *testing.T) {
	a, b := New()
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := b.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err != io.EOF {
			t.Errorf("err = %v, want EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not unblock")
	}
}

func TestConcurrentWritersInterleaveSafely(t *testing.T) {
	a, b := New()
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte(w)}, 10)
			for i := 0; i < per; i++ {
				a.Write(msg)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*per*10 {
		t.Errorf("read %d bytes, want %d", len(got), writers*per*10)
	}
}

func TestAddrsAndDeadlinesPresent(t *testing.T) {
	a, _ := New()
	if a.LocalAddr().Network() != "pipe" || a.RemoteAddr().String() == "" {
		t.Error("addr methods")
	}
	if err := a.SetDeadline(time.Now()); err != nil {
		t.Error(err)
	}
	if err := a.SetReadDeadline(time.Now()); err != nil {
		t.Error(err)
	}
	if err := a.SetWriteDeadline(time.Now()); err != nil {
		t.Error(err)
	}
}
