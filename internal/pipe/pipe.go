// Package pipe provides an in-memory, buffered, full-duplex connection
// pair implementing net.Conn. Unlike net.Pipe, writes complete without a
// matching read, which lets two BGP speakers exchange OPEN messages
// simultaneously without deadlocking — the behavior a kernel TCP socket
// pair would give.
package pipe

import (
	"io"
	"net"
	"sync"
	"time"
)

// Buffer is an unbounded byte queue usable as one direction of a
// stream: writes never block, reads block until data or close. The
// tunnel package uses it for its control channel so a slow (or not yet
// attached) BGP reader cannot stall data-plane frames.
type Buffer = buffer

// NewBuffer creates an empty Buffer.
func NewBuffer() *Buffer { return newBuffer() }

// Read implements io.Reader.
func (b *buffer) Read(p []byte) (int, error) { return b.read(p) }

// Write implements io.Writer.
func (b *buffer) Write(p []byte) (int, error) { return b.write(p) }

// Close marks the buffer closed; reads drain then return EOF.
func (b *buffer) Close() error { b.close(); return nil }

// buffer is one direction of the pipe: an unbounded byte queue.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Conn is one endpoint of the pair.
type Conn struct {
	name      string
	rd, wr    *buffer
	closeOnce sync.Once
}

// New returns the two ends of a connected, buffered duplex stream.
func New() (*Conn, *Conn) {
	ab, ba := newBuffer(), newBuffer()
	return &Conn{name: "pipe-a", rd: ba, wr: ab}, &Conn{name: "pipe-b", rd: ab, wr: ba}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close closes both directions; pending and future reads on the peer see
// EOF after draining buffered data.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.close()
		c.rd.close()
	})
	return nil
}

// addr is a trivial net.Addr.
type addr string

func (a addr) Network() string { return "pipe" }
func (a addr) String() string  { return string(a) }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return addr(c.name) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return addr(c.name + "-peer") }

// SetDeadline is a no-op; the simulator does not use I/O deadlines.
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline is a no-op.
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline is a no-op.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
