package history

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"repro/internal/telemetry"
)

// The deduper collapses identical route events observed via multiple
// PoPs/collectors into one stored record. "Identical" is defined by a
// content hash over the protocol-level route event — kind, peer,
// prefix, path — and deliberately excludes:
//
//   - PoP: that is the vantage, the very dimension being merged;
//   - Time: two collectors see the same event microseconds apart; the
//     DedupWindow bounds the allowed skew instead;
//   - NextHop: the platform rewrites next hops per PoP (§3.2.1), so the
//     same announcement legitimately differs in next hop by vantage.
//
// A merge is only taken when the new observation comes from a vantage
// the record has not seen: the same vantage repeating identical content
// is a real protocol event (a flap leg) and must stay on the timeline.
// Records seal with their segment, so the merge horizon is the shorter
// of the dedup window and the segment's life.

// dedupEntry locates a mergeable record in the active segment.
type dedupEntry struct {
	time    time.Time
	seq     uint64 // segment sequence the record lives in
	off     uint32 // record offset in the segment buffer
	vantage uint64 // bitmap already merged into the record
}

type deduper struct {
	window  time.Duration
	entries map[uint64]dedupEntry
}

func newDeduper(window time.Duration) *deduper {
	return &deduper{window: window, entries: make(map[uint64]dedupEntry)}
}

// lookup finds a mergeable record for hash h: it must live in the
// current active segment and be within the window of t.
func (d *deduper) lookup(h uint64, t time.Time, activeSeq uint64) (off uint32, vantage uint64, ok bool) {
	e, found := d.entries[h]
	if !found || e.seq != activeSeq {
		return 0, 0, false
	}
	if dt := t.Sub(e.time); dt > d.window || dt < -d.window {
		return 0, 0, false
	}
	return e.off, e.vantage, true
}

// store records a freshly appended record as the merge target for h.
func (d *deduper) store(h uint64, t time.Time, seq uint64, off uint32, vantage uint64) {
	d.entries[h] = dedupEntry{time: t, seq: seq, off: off, vantage: vantage}
}

// merge marks bit as merged into h's record.
func (d *deduper) merge(h uint64, bit uint64) {
	e := d.entries[h]
	e.vantage |= bit
	d.entries[h] = e
}

// reset forgets every entry (called when the active segment seals — the
// records can no longer be patched).
func (d *deduper) reset() {
	clear(d.entries)
}

// contentHash is the FNV-1a 64 content hash of a route event.
func contentHash(e telemetry.Event) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	scratch[0] = byte(e.Kind)
	if e.Withdraw {
		scratch[1] = 1
	}
	h.Write(scratch[:2])
	h.Write([]byte(e.Peer))
	binary.BigEndian.PutUint32(scratch[:4], e.PeerASN)
	binary.BigEndian.PutUint32(scratch[4:8], e.PathID)
	h.Write(scratch[:8])
	addr := e.Prefix.Addr().As16()
	h.Write(addr[:])
	scratch[0] = byte(e.Prefix.Bits())
	h.Write(scratch[:1])
	for _, asn := range e.ASPath {
		binary.BigEndian.PutUint32(scratch[:4], asn)
		h.Write(scratch[:4])
	}
	return h.Sum64()
}
