package history

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"os"
	"sort"
	"time"
)

// Segment file layout. A segment is the unit of sealing, retention, and
// compaction: an immutable run of binary route-event records framed by a
// fixed header and, once sealed, a footer carrying the per-prefix index,
// the vantage table, and a CRC over the record region.
//
//	header (16 bytes):
//	  magic    uint32  0x56485331 ("VHS1")
//	  version  uint8   1
//	  reserved uint8[3]
//	  seq      uint64  segment sequence number
//	records: repeated (see record layout below)
//	footer (sealed segments only):
//	  magic       uint32  0x56485346 ("VHSF")
//	  flags       uint8   bit0 = compacted
//	  recordCount uint32
//	  minTime     int64   Unix nanoseconds of the earliest record
//	  maxTime     int64   Unix nanoseconds of the latest observation
//	  vantages    uint8 count, count x (uint8 len + bytes), bit order
//	  index       uint32 prefixCount, per prefix:
//	                fam uint8 (4|6), bits uint8, 4/16 addr bytes,
//	                uint32 offsetCount, offsetCount x uint32 offsets
//	  crc         uint32  CRC-32C over the record region
//	  footerLen   uint32  bytes from footer magic up to this field
//	  tail        uint32  0x56485345 ("VHSE")
//
// A file without the tail magic is an unsealed (or truncated) segment:
// the reader falls back to scanning the record region and fails closed —
// reporting the byte offset — at the first corrupt record.
const (
	segMagic     = 0x56485331 // "VHS1"
	footerMagic  = 0x56485346 // "VHSF"
	tailMagic    = 0x56485345 // "VHSE"
	segVersion   = 1
	segHeaderLen = 16

	footerFlagCompacted = 1 << 0
)

// Record layout (offsets relative to the record start):
//
//	off  0: magic   uint16  0x5648 ("VH")
//	off  2: flags   uint8   bit0 = withdraw
//	off  3: time    int64   Unix nanoseconds (first observation)
//	off 11: vantage uint64  bitmap of observing PoPs/collectors
//	off 19: dups    uint32  observations merged into this record
//	off 23: peerASN uint32
//	off 27: pathID  uint32
//	off 31: peer    uint8 len + bytes
//	then    prefix  fam uint8 (4|6), bits uint8, 4/16 addr bytes
//	then    nextHop fam uint8 (0|4|6), 0/4/16 addr bytes
//	then    asPath  uint16 count, count x uint32
//
// The vantage bitmap and dup counter sit at fixed offsets so the store
// can patch them in place while the record is still in the active
// (unsealed) segment — the content-hash deduper's merge path.
const (
	recMagic      = 0x5648 // "VH"
	recFlagsOff   = 2
	recTimeOff    = 3
	recVantageOff = 11
	recDupsOff    = 19
	recFixedLen   = 31

	recFlagWithdraw = 1 << 0

	// maxPeerName caps the encoded peer-name length (mirrors the
	// telemetry event codec's string cap).
	maxPeerName = 255
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one stored route event: a RouteMonitoring observation,
// possibly merged from several vantage points by the deduper.
type Record struct {
	// Time of the first observation of this event.
	Time time.Time
	// Peer names the session the event was learned on (a neighbor name,
	// an "exp:" experiment, or a "mesh:" backbone peer).
	Peer string
	// PeerASN is the peer's AS number (0 when unknown).
	PeerASN uint32
	// PathID is the route's ADD-PATH / platform identifier.
	PathID uint32
	// Prefix is the affected route.
	Prefix netip.Prefix
	// NextHop of the first observation (vantage-local by nature — the
	// platform rewrites next hops per PoP — and therefore excluded from
	// the dedup content hash).
	NextHop netip.Addr
	// ASPath of the announcement, flattened.
	ASPath []uint32
	// Withdraw marks a withdrawal.
	Withdraw bool
	// Vantage is the bitmap of PoPs/collectors that observed this event
	// (bit i corresponds to the segment's vantage table entry i).
	Vantage uint64
	// Dups counts the observations merged into this record (>= 1).
	Dups uint32
}

// appendRecord appends the binary encoding of r to b.
func appendRecord(b []byte, r Record) []byte {
	b = binary.BigEndian.AppendUint16(b, recMagic)
	var flags byte
	if r.Withdraw {
		flags |= recFlagWithdraw
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, r.Vantage)
	b = binary.BigEndian.AppendUint32(b, r.Dups)
	b = binary.BigEndian.AppendUint32(b, r.PeerASN)
	b = binary.BigEndian.AppendUint32(b, r.PathID)
	peer := r.Peer
	if len(peer) > maxPeerName {
		peer = peer[:maxPeerName]
	}
	b = append(b, byte(len(peer)))
	b = append(b, peer...)
	addr := r.Prefix.Addr()
	if addr.Is6() {
		raw := addr.As16()
		b = append(b, 6, byte(r.Prefix.Bits()))
		b = append(b, raw[:]...)
	} else {
		raw := addr.As4()
		b = append(b, 4, byte(r.Prefix.Bits()))
		b = append(b, raw[:]...)
	}
	switch {
	case !r.NextHop.IsValid():
		b = append(b, 0)
	case r.NextHop.Is6():
		raw := r.NextHop.As16()
		b = append(b, 6)
		b = append(b, raw[:]...)
	default:
		raw := r.NextHop.As4()
		b = append(b, 4)
		b = append(b, raw[:]...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.ASPath)))
	for _, asn := range r.ASPath {
		b = binary.BigEndian.AppendUint32(b, asn)
	}
	return b
}

// reader walks a byte slice with bounds checking, tracking the absolute
// byte offset for error reporting.
type reader struct {
	b    []byte
	off  int
	base int // absolute offset of b[0] in the file
	err  error
}

func (d *reader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("history: offset %d: %s", d.base+d.off, fmt.Sprintf(format, args...))
	}
}

func (d *reader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("history: offset %d: %w", d.base+len(d.b), io.ErrUnexpectedEOF)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *reader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *reader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *reader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *reader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// decodeRecord decodes one record from the front of d.
func decodeRecord(d *reader) (Record, bool) {
	var r Record
	start := d.off
	if magic := d.u16(); d.err == nil && magic != recMagic {
		d.off = start
		d.fail("bad record magic %#x", magic)
		return r, false
	}
	flags := d.u8()
	if d.err == nil && flags&^byte(recFlagWithdraw) != 0 {
		d.off = start
		d.fail("unknown record flags %#x", flags)
		return r, false
	}
	r.Withdraw = flags&recFlagWithdraw != 0
	r.Time = time.Unix(0, int64(d.u64()))
	r.Vantage = d.u64()
	r.Dups = d.u32()
	r.PeerASN = d.u32()
	r.PathID = d.u32()
	peerLen := int(d.u8())
	if b := d.take(peerLen); b != nil {
		r.Peer = string(b)
	}
	famOff := d.off
	switch fam := d.u8(); fam {
	case 4:
		bits := int(d.u8())
		raw := d.take(4)
		if d.err == nil && bits > 32 {
			d.off = famOff
			d.fail("v4 prefix bits %d", bits)
			return r, false
		}
		if raw != nil {
			r.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte(raw)), bits)
		}
	case 6:
		bits := int(d.u8())
		raw := d.take(16)
		if d.err == nil && bits > 128 {
			d.off = famOff
			d.fail("v6 prefix bits %d", bits)
			return r, false
		}
		if raw != nil {
			r.Prefix = netip.PrefixFrom(netip.AddrFrom16([16]byte(raw)), bits)
		}
	default:
		if d.err == nil {
			d.off = famOff
			d.fail("bad prefix family %d", fam)
		}
		return r, false
	}
	nhOff := d.off
	switch fam := d.u8(); fam {
	case 0:
	case 4:
		if raw := d.take(4); raw != nil {
			r.NextHop = netip.AddrFrom4([4]byte(raw))
		}
	case 6:
		if raw := d.take(16); raw != nil {
			r.NextHop = netip.AddrFrom16([16]byte(raw))
		}
	default:
		if d.err == nil {
			d.off = nhOff
			d.fail("bad next-hop family %d", fam)
		}
		return r, false
	}
	pathLen := int(d.u16())
	for i := 0; i < pathLen && d.err == nil; i++ {
		r.ASPath = append(r.ASPath, d.u32())
	}
	if d.err == nil && r.Dups == 0 {
		d.off = start
		d.fail("record dup count 0")
		return r, false
	}
	return r, d.err == nil
}

// segment is one unit of the log. The active segment grows its record
// buffer in memory; sealing freezes it, writes the file, and makes the
// struct immutable from then on (compaction swaps in a fresh struct).
type segment struct {
	seq       uint64
	path      string // file path once sealed
	sealed    bool
	compacted bool
	minTime   int64 // Unix nanos of the earliest record (0 when empty)
	maxTime   int64 // Unix nanos of the latest observation
	buf       []byte
	count     int
	// index maps each prefix to the buffer offsets of its records, in
	// append (and therefore time) order.
	index map[netip.Prefix][]uint32
	// vantages is the bit-ordered vantage table. For the active segment
	// it aliases the store's live table; sealing snapshots it.
	vantages []string
}

func newSegment(seq uint64) *segment {
	return &segment{seq: seq, index: make(map[netip.Prefix][]uint32)}
}

// append adds r to the segment, returning the record's buffer offset.
func (s *segment) append(r Record) uint32 {
	off := uint32(len(s.buf))
	s.buf = appendRecord(s.buf, r)
	s.index[r.Prefix] = append(s.index[r.Prefix], off)
	s.count++
	ns := r.Time.UnixNano()
	if s.minTime == 0 || ns < s.minTime {
		s.minTime = ns
	}
	if ns > s.maxTime {
		s.maxTime = ns
	}
	return off
}

// observe extends maxTime to cover a merged duplicate observation.
func (s *segment) observe(t time.Time) {
	if ns := t.UnixNano(); ns > s.maxTime {
		s.maxTime = ns
	}
}

// mergeVantage patches the record at off in place: OR in the vantage bit
// and bump the dup counter. Only legal on the active (unsealed) segment.
func (s *segment) mergeVantage(off uint32, bit uint64) {
	o := int(off)
	v := binary.BigEndian.Uint64(s.buf[o+recVantageOff:])
	binary.BigEndian.PutUint64(s.buf[o+recVantageOff:], v|bit)
	d := binary.BigEndian.Uint32(s.buf[o+recDupsOff:])
	binary.BigEndian.PutUint32(s.buf[o+recDupsOff:], d+1)
}

// recordAt decodes the record at buffer offset off.
func (s *segment) recordAt(off uint32) (Record, error) {
	d := &reader{b: s.buf[off:], base: segHeaderLen + int(off)}
	r, ok := decodeRecord(d)
	if !ok {
		return Record{}, d.err
	}
	return r, nil
}

// records decodes every record of the segment in append order.
func (s *segment) records() ([]Record, error) {
	out := make([]Record, 0, s.count)
	d := &reader{b: s.buf, base: segHeaderLen}
	for d.off < len(s.buf) {
		r, ok := decodeRecord(d)
		if !ok {
			return nil, d.err
		}
		out = append(out, r)
	}
	return out, nil
}

// vantageBit returns the bitmap bit for a vantage name, or 0 if the
// name is not in this segment's table.
func (s *segment) vantageBit(name string) uint64 {
	for i, v := range s.vantages {
		if v == name {
			return 1 << uint(i)
		}
	}
	return 0
}

// vantageNames expands a bitmap into the table's names.
func (s *segment) vantageNames(bitmap uint64) []string {
	var out []string
	for i, v := range s.vantages {
		if bitmap&(1<<uint(i)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// encode serializes the segment as a sealed file image.
func (s *segment) encode() []byte {
	b := make([]byte, 0, segHeaderLen+len(s.buf)+1024)
	b = binary.BigEndian.AppendUint32(b, segMagic)
	b = append(b, segVersion, 0, 0, 0)
	b = binary.BigEndian.AppendUint64(b, s.seq)
	b = append(b, s.buf...)

	footStart := len(b)
	b = binary.BigEndian.AppendUint32(b, footerMagic)
	var flags byte
	if s.compacted {
		flags |= footerFlagCompacted
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, uint32(s.count))
	b = binary.BigEndian.AppendUint64(b, uint64(s.minTime))
	b = binary.BigEndian.AppendUint64(b, uint64(s.maxTime))
	b = append(b, byte(len(s.vantages)))
	for _, v := range s.vantages {
		if len(v) > maxPeerName {
			v = v[:maxPeerName]
		}
		b = append(b, byte(len(v)))
		b = append(b, v...)
	}
	prefixes := make([]netip.Prefix, 0, len(s.index))
	for p := range s.index {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		a, c := prefixes[i], prefixes[j]
		if a.Addr() != c.Addr() {
			return a.Addr().Less(c.Addr())
		}
		return a.Bits() < c.Bits()
	})
	b = binary.BigEndian.AppendUint32(b, uint32(len(prefixes)))
	for _, p := range prefixes {
		addr := p.Addr()
		if addr.Is6() {
			raw := addr.As16()
			b = append(b, 6, byte(p.Bits()))
			b = append(b, raw[:]...)
		} else {
			raw := addr.As4()
			b = append(b, 4, byte(p.Bits()))
			b = append(b, raw[:]...)
		}
		offs := s.index[p]
		b = binary.BigEndian.AppendUint32(b, uint32(len(offs)))
		for _, off := range offs {
			b = binary.BigEndian.AppendUint32(b, off)
		}
	}
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(s.buf, castagnoli))
	b = binary.BigEndian.AppendUint32(b, uint32(len(b)-footStart))
	b = binary.BigEndian.AppendUint32(b, tailMagic)
	return b
}

// decodeSegment parses a segment file image. Sealed images are verified
// against their footer (index, CRC); an image without the tail magic is
// scanned record by record, failing closed — with the byte offset — at
// the first corruption.
func decodeSegment(data []byte) (*segment, error) {
	if len(data) < segHeaderLen {
		return nil, fmt.Errorf("history: offset 0: %w", io.ErrUnexpectedEOF)
	}
	hd := &reader{b: data}
	if magic := hd.u32(); magic != segMagic {
		return nil, fmt.Errorf("history: offset 0: bad segment magic %#x", magic)
	}
	if v := hd.u8(); v != segVersion {
		return nil, fmt.Errorf("history: offset 4: unsupported segment version %d", v)
	}
	hd.take(3)
	seg := newSegment(hd.u64())

	// Locate the footer via the tail magic; fall back to a record scan.
	if len(data) >= segHeaderLen+12 &&
		binary.BigEndian.Uint32(data[len(data)-4:]) == tailMagic {
		footerLen := int(binary.BigEndian.Uint32(data[len(data)-8:]))
		footStart := len(data) - 8 - footerLen
		if footStart < segHeaderLen || footerLen < 21 {
			return nil, fmt.Errorf("history: offset %d: bad footer length %d", len(data)-8, footerLen)
		}
		fd := &reader{b: data[footStart : len(data)-8], base: footStart}
		if magic := fd.u32(); fd.err == nil && magic != footerMagic {
			return nil, fmt.Errorf("history: offset %d: bad footer magic %#x", footStart, magic)
		}
		flags := fd.u8()
		seg.compacted = flags&footerFlagCompacted != 0
		seg.count = int(fd.u32())
		seg.minTime = int64(fd.u64())
		seg.maxTime = int64(fd.u64())
		nv := int(fd.u8())
		for i := 0; i < nv && fd.err == nil; i++ {
			l := int(fd.u8())
			if b := fd.take(l); b != nil {
				seg.vantages = append(seg.vantages, string(b))
			}
		}
		seg.buf = data[segHeaderLen:footStart]
		np := int(fd.u32())
		for i := 0; i < np && fd.err == nil; i++ {
			var prefix netip.Prefix
			famOff := fd.off
			switch fam := fd.u8(); fam {
			case 4:
				bits := int(fd.u8())
				raw := fd.take(4)
				if fd.err == nil && bits > 32 {
					fd.off = famOff
					fd.fail("v4 index prefix bits %d", bits)
					break
				}
				if raw != nil {
					prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte(raw)), bits)
				}
			case 6:
				bits := int(fd.u8())
				raw := fd.take(16)
				if fd.err == nil && bits > 128 {
					fd.off = famOff
					fd.fail("v6 index prefix bits %d", bits)
					break
				}
				if raw != nil {
					prefix = netip.PrefixFrom(netip.AddrFrom16([16]byte(raw)), bits)
				}
			default:
				fd.off = famOff
				fd.fail("bad index prefix family %d", fam)
			}
			no := int(fd.u32())
			for j := 0; j < no && fd.err == nil; j++ {
				off := fd.u32()
				if fd.err == nil && int(off)+recFixedLen > len(seg.buf) {
					fd.fail("index offset %d beyond record region (%d bytes)", off, len(seg.buf))
					break
				}
				seg.index[prefix] = append(seg.index[prefix], off)
			}
		}
		crc := fd.u32()
		if fd.err != nil {
			return nil, fd.err
		}
		if got := crc32.Checksum(seg.buf, castagnoli); got != crc {
			return nil, fmt.Errorf("history: offset %d: record CRC mismatch: file %#x, computed %#x", footStart+footerLen-4, crc, got)
		}
		// The CRC guards integrity, not semantic validity: validate the
		// whole record region now so a bad segment fails at open, not at
		// query time, and check the index only names record boundaries.
		starts := make(map[uint32]bool)
		rd := &reader{b: seg.buf, base: segHeaderLen}
		n := 0
		for rd.off < len(seg.buf) {
			starts[uint32(rd.off)] = true
			if _, ok := decodeRecord(rd); !ok {
				return nil, rd.err
			}
			n++
		}
		if n != seg.count {
			return nil, fmt.Errorf("history: offset %d: footer claims %d records, region holds %d", footStart, seg.count, n)
		}
		for prefix, offs := range seg.index {
			for _, off := range offs {
				if !starts[off] {
					return nil, fmt.Errorf("history: offset %d: index offset %d for %s is not a record boundary", footStart, off, prefix)
				}
			}
		}
		seg.sealed = true
		return seg, nil
	}

	// Unsealed (or truncated) image: rebuild state by scanning records.
	seg.buf = data[segHeaderLen:]
	d := &reader{b: seg.buf, base: segHeaderLen}
	for d.off < len(seg.buf) {
		off := uint32(d.off)
		r, ok := decodeRecord(d)
		if !ok {
			return nil, d.err
		}
		seg.index[r.Prefix] = append(seg.index[r.Prefix], off)
		seg.count++
		ns := r.Time.UnixNano()
		if seg.minTime == 0 || ns < seg.minTime {
			seg.minTime = ns
		}
		if ns > seg.maxTime {
			seg.maxTime = ns
		}
	}
	return seg, nil
}

// ReadSegmentFile parses one segment file, verifying the footer CRC of
// sealed segments and failing closed — with the byte offset — on any
// corruption. Exposed for tests and offline tooling.
func ReadSegmentFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seg, err := decodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return seg.records()
}

// writeFile atomically writes the sealed image of s to its path.
func (s *segment) writeFile() error {
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, s.encode(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
