package history

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// RouteState is one route alive at a queried instant: the replayed
// outcome of the event stream for a (peer, pathID) key, with the set of
// vantage points that held it.
type RouteState struct {
	Prefix  netip.Prefix `json:"prefix"`
	Peer    string       `json:"peer"`
	PeerASN uint32       `json:"peerASN,omitempty"`
	PathID  uint32       `json:"pathID"`
	NextHop netip.Addr   `json:"nextHop,omitempty"`
	ASPath  []uint32     `json:"asPath,omitempty"`
	// Since is the time of the announcement that established the state.
	Since time.Time `json:"since"`
	// Vantages names the PoPs/collectors holding the route at the
	// queried instant.
	Vantages []string `json:"vantages"`
}

// Origin returns the route's origin AS (the last AS-path hop), or 0.
func (rs RouteState) Origin() uint32 {
	if len(rs.ASPath) == 0 {
		return 0
	}
	return rs.ASPath[len(rs.ASPath)-1]
}

// Divergence is one route visible at exactly one of two compared PoPs.
type Divergence struct {
	Prefix  netip.Prefix `json:"prefix"`
	Peer    string       `json:"peer"`
	PathID  uint32       `json:"pathID"`
	ASPath  []uint32     `json:"asPath,omitempty"`
	Origin  uint32       `json:"origin,omitempty"`
	// OnlyAt names the PoP that holds the route; the other does not.
	OnlyAt string `json:"onlyAt"`
}

// Event is one timeline entry returned by Between: a stored record with
// its vantage bitmap expanded to names.
type Event struct {
	Record
	// VantageNames expands Record.Vantage against the store's table.
	VantageNames []string `json:"vantages"`
}

// eventsFor collects every record for an exact prefix across the log
// (sealed segments in sequence order, then the active segment), in
// stored — and therefore time — order. Callers hold s.mu.
func (s *Store) eventsForLocked(prefix netip.Prefix) ([]Event, error) {
	var out []Event
	segs := make([]*segment, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	segs = append(segs, s.active)
	for _, seg := range segs {
		offs, ok := seg.index[prefix]
		if !ok {
			continue
		}
		vantages := seg.vantages
		if !seg.sealed {
			vantages = s.vantages
		}
		for _, off := range offs {
			r, err := seg.recordAt(off)
			if err != nil {
				return nil, fmt.Errorf("history: segment %d: %w", seg.seq, err)
			}
			ev := Event{Record: r}
			for i, v := range vantages {
				if r.Vantage&(1<<uint(i)) != 0 {
					ev.VantageNames = append(ev.VantageNames, v)
				}
			}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// Between returns the stored route events for prefix with timestamps in
// [t0, t1], in time order.
func (s *Store) Between(prefix netip.Prefix, t0, t1 time.Time) ([]Event, error) {
	defer s.met.observeQuery(s.met.queryBetween, time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	all, err := s.eventsForLocked(prefix)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, ev := range all {
		if ev.Time.Before(t0) || ev.Time.After(t1) {
			continue
		}
		out = append(out, ev)
	}
	return out, nil
}

// stateKey identifies one replayed route: events with the same peer and
// path ID describe the same route's lifecycle.
type stateKey struct {
	peer   string
	pathID uint32
}

// stateAtLocked replays prefix's events up to t. Callers hold s.mu.
func (s *Store) stateAtLocked(prefix netip.Prefix, t time.Time) ([]RouteState, error) {
	events, err := s.eventsForLocked(prefix)
	if err != nil {
		return nil, err
	}
	type live struct {
		rs      RouteState
		vantage uint64
	}
	state := make(map[stateKey]*live)
	for _, ev := range events {
		if ev.Time.After(t) {
			break
		}
		k := stateKey{ev.Peer, ev.PathID}
		if ev.Withdraw {
			if l, ok := state[k]; ok {
				l.vantage &^= ev.Vantage
				if l.vantage == 0 {
					delete(state, k)
				}
			}
			continue
		}
		l, ok := state[k]
		if !ok {
			l = &live{}
			state[k] = l
		}
		l.vantage |= ev.Vantage
		l.rs = RouteState{
			Prefix: ev.Prefix, Peer: ev.Peer, PeerASN: ev.PeerASN,
			PathID: ev.PathID, NextHop: ev.NextHop, ASPath: ev.ASPath,
			Since: ev.Time,
		}
	}
	out := make([]RouteState, 0, len(state))
	for _, l := range state {
		l.rs.Vantages = s.vantageNamesLocked(l.vantage)
		out = append(out, l.rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].PathID < out[j].PathID
	})
	return out, nil
}

// vantageNamesLocked expands a bitmap against the live table (a
// superset of every sealed segment's table).
func (s *Store) vantageNamesLocked(bitmap uint64) []string {
	var out []string
	for i, v := range s.vantages {
		if bitmap&(1<<uint(i)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// StateAt reconstructs the routes alive for prefix at time t: the
// platform's adj-RIB-in view of that prefix, replayed from the log.
// Exact-prefix semantics: query the /24 and the /25 separately to see a
// sub-prefix hijack against its victim.
func (s *Store) StateAt(prefix netip.Prefix, t time.Time) ([]RouteState, error) {
	defer s.met.observeQuery(s.met.queryState, time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateAtLocked(prefix, t)
}

// Prefixes returns every prefix with at least one stored event.
func (s *Store) Prefixes() []netip.Prefix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefixesLocked()
}

func (s *Store) prefixesLocked() []netip.Prefix {
	seen := make(map[netip.Prefix]struct{})
	segs := make([]*segment, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	segs = append(segs, s.active)
	for _, seg := range segs {
		for p := range seg.index {
			seen[p] = struct{}{}
		}
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	return out
}

// DiffPoPs reconstructs the state of every stored prefix at time t and
// reports the routes visible at exactly one of the two PoPs — the
// divergence report a hijack forensics run reads to localize where a
// rogue origin entered.
func (s *Store) DiffPoPs(popA, popB string, t time.Time) ([]Divergence, error) {
	defer s.met.observeQuery(s.met.queryDiff, time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Divergence
	for _, prefix := range s.prefixesLocked() {
		states, err := s.stateAtLocked(prefix, t)
		if err != nil {
			return nil, err
		}
		for _, rs := range states {
			hasA, hasB := false, false
			for _, v := range rs.Vantages {
				switch v {
				case popA:
					hasA = true
				case popB:
					hasB = true
				}
			}
			if hasA == hasB {
				continue
			}
			only := popA
			if hasB {
				only = popB
			}
			out = append(out, Divergence{
				Prefix: rs.Prefix, Peer: rs.Peer, PathID: rs.PathID,
				ASPath: rs.ASPath, Origin: rs.Origin(), OnlyAt: only,
			})
		}
	}
	return out, nil
}

