package history

import (
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// seedRecords covers both address families, announce and withdraw, an
// absent next hop, merged vantage bitmaps, and path lists.
func seedRecords() []Record {
	return []Record{
		{
			Time: time.Unix(0, 1_000), Peer: "transit-1000", PeerASN: 1000,
			Prefix:  netip.MustParsePrefix("184.164.224.0/24"), PathID: 1,
			NextHop: netip.MustParseAddr("127.65.0.1"),
			ASPath:  []uint32{1000, 3356, 10040},
			Vantage: 0b11, Dups: 2,
		},
		{
			Time: time.Unix(0, 2_000), Peer: "exp:whitehat",
			Prefix: netip.MustParsePrefix("184.164.224.0/25"), PathID: 0,
			ASPath: []uint32{61574}, Vantage: 0b10, Dups: 1,
		},
		{
			Time: time.Unix(0, 3_000), Peer: "exp:whitehat",
			Prefix: netip.MustParsePrefix("184.164.224.0/25"), PathID: 0,
			Withdraw: true, Vantage: 0b10, Dups: 1,
		},
		{
			Time: time.Unix(0, 4_000), Peer: "peer-v6", PeerASN: 64500,
			Prefix:  netip.MustParsePrefix("2804:269c::/32"), PathID: 7,
			NextHop: netip.MustParseAddr("2001:db8::1"),
			ASPath:  []uint32{64500}, Vantage: 0b1, Dups: 1,
		},
	}
}

func buildSealed(t *testing.T, records []Record) *segment {
	t.Helper()
	seg := newSegment(3)
	seg.vantages = []string{"amsix", "seattle"}
	for _, r := range records {
		seg.append(r)
	}
	seg.sealed = true
	return seg
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range seedRecords() {
		b := appendRecord(nil, want)
		d := &reader{b: b}
		got, ok := decodeRecord(d)
		if !ok {
			t.Fatalf("decode failed: %v", d.err)
		}
		if d.off != len(b) {
			t.Fatalf("decode consumed %d of %d bytes", d.off, len(b))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := buildSealed(t, seedRecords())
	img := seg.encode()
	got, err := decodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if !got.sealed {
		t.Fatal("decoded segment not marked sealed")
	}
	if got.seq != seg.seq {
		t.Fatalf("seq = %d, want %d", got.seq, seg.seq)
	}
	if !reflect.DeepEqual(got.vantages, seg.vantages) {
		t.Fatalf("vantages = %v, want %v", got.vantages, seg.vantages)
	}
	if got.minTime != seg.minTime || got.maxTime != seg.maxTime {
		t.Fatalf("time bounds = [%d, %d], want [%d, %d]", got.minTime, got.maxTime, seg.minTime, seg.maxTime)
	}
	if !reflect.DeepEqual(got.index, seg.index) {
		t.Fatalf("index mismatch:\n got %v\nwant %v", got.index, seg.index)
	}
	gr, err := got.records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gr, seedRecords()) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", gr, seedRecords())
	}
}

// TestSegmentUnsealedScan exercises the recovery path: an image with no
// footer is scanned record by record and rebuilds the index.
func TestSegmentUnsealedScan(t *testing.T) {
	seg := buildSealed(t, seedRecords())
	img := seg.encode()
	// Chop the footer off: everything after the record region.
	img = img[:segHeaderLen+len(seg.buf)]
	got, err := decodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.sealed {
		t.Fatal("footerless segment decoded as sealed")
	}
	if got.count != len(seedRecords()) {
		t.Fatalf("count = %d, want %d", got.count, len(seedRecords()))
	}
	if !reflect.DeepEqual(got.index, seg.index) {
		t.Fatalf("scanned index mismatch:\n got %v\nwant %v", got.index, seg.index)
	}
}

// TestSegmentCorruptInputs drives the reader through every structured
// failure mode: each corruption must fail closed with an error naming
// the byte offset, never panic, and truncations must read as unexpected
// EOF.
func TestSegmentCorruptInputs(t *testing.T) {
	seg := buildSealed(t, seedRecords())
	good := seg.encode()
	recStart := segHeaderLen // first record's absolute offset
	mutate := func(fn func(b []byte) []byte) []byte {
		return fn(append([]byte(nil), good...))
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string // substring of the expected error ("" = any)
		wantEOF bool   // io.ErrUnexpectedEOF expected in the chain
		wantOff string // "offset N" substring expected ("" = any offset)
	}{
		{
			name:    "empty file",
			data:    nil,
			wantEOF: true,
			wantOff: "offset 0",
		},
		{
			name:    "bad segment magic",
			data:    mutate(func(b []byte) []byte { b[0] = 0xAA; return b }),
			wantErr: "bad segment magic",
			wantOff: "offset 0",
		},
		{
			name:    "unsupported version",
			data:    mutate(func(b []byte) []byte { b[4] = 99; return b }),
			wantErr: "unsupported segment version",
		},
		{
			name: "bad record magic",
			data: mutate(func(b []byte) []byte {
				b[recStart] = 0xFF
				return b[:segHeaderLen+len(seg.buf)] // force the scan path
			}),
			wantErr: "bad record magic",
			wantOff: "offset 16",
		},
		{
			name: "unknown record flags",
			data: mutate(func(b []byte) []byte {
				b[recStart+recFlagsOff] = 0x80
				return b[:segHeaderLen+len(seg.buf)]
			}),
			wantErr: "unknown record flags",
		},
		{
			name: "mid-record EOF",
			data: mutate(func(b []byte) []byte {
				return b[:recStart+recFixedLen+3] // cut inside the peer name
			}),
			wantEOF: true,
		},
		{
			name: "bad prefix family",
			data: mutate(func(b []byte) []byte {
				// First record: fixed header + peer len byte + peer.
				off := recStart + recFixedLen + 1 + len("transit-1000")
				b[off] = 9
				return b[:segHeaderLen+len(seg.buf)]
			}),
			wantErr: "bad prefix family",
		},
		{
			name: "prefix bits out of range",
			data: mutate(func(b []byte) []byte {
				off := recStart + recFixedLen + 1 + len("transit-1000")
				b[off+1] = 77
				return b[:segHeaderLen+len(seg.buf)]
			}),
			wantErr: "v4 prefix bits 77",
		},
		{
			name: "path length claims more than the region holds",
			data: mutate(func(b []byte) []byte {
				// AS-path count sits before the first record's 3 uint32
				// hops, which end at the second record's offset.
				second := segHeaderLen + int(seg.index[netip.MustParsePrefix("184.164.224.0/25")][0])
				binary.BigEndian.PutUint16(b[second-3*4-2:], 0xFFFF)
				return b[:segHeaderLen+len(seg.buf)]
			}),
			wantEOF: true,
		},
		{
			name: "corrupt record under a sealed footer (bad CRC)",
			data: mutate(func(b []byte) []byte {
				b[recStart+recTimeOff] ^= 0xFF
				return b
			}),
			wantErr: "record CRC mismatch",
		},
		{
			name: "footer length out of range",
			data: mutate(func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[len(b)-8:], uint32(len(b)))
				return b
			}),
			wantErr: "bad footer length",
		},
		{
			name: "index offset beyond record region",
			data: func() []byte {
				bad := buildSealed(t, seedRecords())
				bad.index[netip.MustParsePrefix("184.164.224.0/24")][0] = uint32(len(bad.buf)) + 100
				return bad.encode()
			}(),
			wantErr: "beyond record region",
		},
		{
			// With the tail magic gone the decoder falls back to the
			// unsealed scan, which runs into footer bytes and rejects them.
			name:    "truncated sealed file (tail magic gone)",
			data:    good[:len(good)-6],
			wantErr: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeSegment(tc.data)
			if err == nil {
				t.Fatal("corrupt input parsed without error")
			}
			if tc.wantEOF && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("err = %v, want io.ErrUnexpectedEOF in chain", err)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "offset ") {
				t.Fatalf("err = %v, want a byte offset", err)
			}
			if tc.wantOff != "" && !strings.Contains(err.Error(), tc.wantOff) {
				t.Fatalf("err = %v, want %q", err, tc.wantOff)
			}
		})
	}
}

func TestReadSegmentFile(t *testing.T) {
	dir := t.TempDir()
	seg := buildSealed(t, seedRecords())
	seg.path = filepath.Join(dir, "seg-00000003.vhs")
	if err := seg.writeFile(); err != nil {
		t.Fatal(err)
	}
	records, err := ReadSegmentFile(seg.path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, seedRecords()) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", records, seedRecords())
	}

	// A flipped byte must surface as a CRC failure naming the file.
	data, err := os.ReadFile(seg.path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+5] ^= 0x01
	bad := filepath.Join(dir, "seg-bad.vhs")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegmentFile(bad); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("err = %v, want CRC mismatch", err)
	}
}

// TestMergeVantagePatch checks the in-place dedup patch against a
// subsequent decode.
func TestMergeVantagePatch(t *testing.T) {
	seg := newSegment(0)
	r := seedRecords()[1]
	off := seg.append(r)
	seg.mergeVantage(off, 0b100)
	got, err := seg.recordAt(off)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vantage != r.Vantage|0b100 {
		t.Fatalf("vantage = %#b, want %#b", got.Vantage, r.Vantage|0b100)
	}
	if got.Dups != r.Dups+1 {
		t.Fatalf("dups = %d, want %d", got.Dups, r.Dups+1)
	}
}
