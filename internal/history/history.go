// Package history is the platform's durable RIB history store: an
// embedded, append-only segment log fed by the telemetry event stream,
// with time-travel queries over it.
//
// The paper's operators lean on post-hoc forensics — "what did the
// AMS-IX adj-RIB-in look like when the hijack started?" (§4.2, §5) —
// and route-leak / community-churn studies need replayable per-prefix
// update histories deduplicated across redundant vantage points. The
// store provides both for the reproduction:
//
//   - RouteMonitoring events from every router land in fixed-size
//     binary segments with a per-segment prefix index and CRC, sealed
//     and rotated by size or age (segment.go);
//   - a content-hash deduper collapses identical route events observed
//     via multiple PoPs/collectors into one stored record carrying a
//     vantage bitmap (dedup.go);
//   - retention drops sealed segments past a configurable window and
//     compaction collapses intra-segment churn (announce/withdraw
//     flaps) into boundary state deltas;
//   - the query layer reconstructs state: StateAt(prefix, t) time
//     travel, Between(prefix, t0, t1) event ranges, and
//     DiffPoPs(popA, popB, t) divergence reports (query.go).
//
// Ingestion mirrors the telemetry emitter's stance: Observe is
// non-blocking and bounded, dropping (with accounting) rather than
// applying backpressure to the control plane. The active segment lives
// in memory until sealed; Close seals it, so a cleanly shut down store
// is fully reconstructible from the on-disk log alone.
package history

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Defaults for Config zero values.
const (
	DefaultMaxSegmentBytes     = 1 << 20
	DefaultMaxSegmentAge       = time.Minute
	DefaultDedupWindow         = 2 * time.Second
	DefaultQueueSize           = telemetry.DefaultQueueSize
	DefaultMaintenanceInterval = 500 * time.Millisecond
)

// Config configures a Store.
type Config struct {
	// Dir is the segment-log directory (created if missing). Required.
	Dir string
	// MaxSegmentBytes seals the active segment when its record region
	// reaches this size (<= 0 selects DefaultMaxSegmentBytes).
	MaxSegmentBytes int
	// MaxSegmentAge seals the active segment when its oldest record
	// reaches this age (<= 0 selects DefaultMaxSegmentAge).
	MaxSegmentAge time.Duration
	// DedupWindow bounds how far apart two observations of the same
	// route event may be and still merge into one record (<= 0 selects
	// DefaultDedupWindow). Merging only happens while the original
	// record is in the active segment.
	DedupWindow time.Duration
	// Retention, when > 0, deletes sealed segments whose newest
	// observation is older than the window. It bounds the reconstruction
	// horizon: StateAt cannot see routes whose only events were retired.
	Retention time.Duration
	// CompactAfter, when > 0, compacts sealed segments older than this:
	// per (prefix, pathID, peer) group, intra-segment churn is collapsed
	// to the boundary records (first and last), trading intra-segment
	// resolution for space. State reconstruction at or after the
	// segment's end stays exact.
	CompactAfter time.Duration
	// QueueSize is the ingest queue capacity (<= 0 selects
	// DefaultQueueSize).
	QueueSize int
	// MaintenanceInterval paces the seal-by-age / retention / compaction
	// loop (0 selects DefaultMaintenanceInterval, < 0 disables the
	// background loop — tests drive Maintain directly).
	MaintenanceInterval time.Duration
	// Registry receives the history_* metrics (nil selects
	// telemetry.Default()).
	Registry *telemetry.Registry
	// Logf receives store event logs.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the store's accounting, the
// numbers the peeringd -watch history line and peering-cli render.
type Stats struct {
	// Observed counts events handed to Observe that entered the queue.
	Observed uint64
	// Stored counts records appended to the log.
	Stored uint64
	// Deduped counts observations merged into an existing record.
	Deduped uint64
	// Dropped counts events lost to a full queue or closed store.
	Dropped uint64
	// Skipped counts non-route events (PeerUp/PeerDown/StatsReport).
	Skipped uint64
	// Records is the number of records currently in the log (sealed +
	// active segments). Unlike Stored — a lifetime ingest counter that
	// restarts at zero on reopen — Records reflects what is on disk.
	Records uint64
	// Segments is the number of live segments (sealed + active).
	Segments int
	// SealedBytes is the total record-region size of sealed segments.
	SealedBytes int64
	// RetiredSegments counts segments deleted by retention.
	RetiredSegments uint64
	// CompactedEvents counts records removed by compaction.
	CompactedEvents uint64
}

// Store is the embedded RIB history store.
type Store struct {
	cfg Config

	queueMu sync.RWMutex
	closed  bool
	queue   chan telemetry.Event

	mu      sync.Mutex
	active  *segment
	sealed  []*segment
	nextSeq uint64
	// vantages is the live bit-ordered vantage table; vantageBits maps
	// names back to bit indexes.
	vantages    []string
	vantageBits map[string]int
	dedup       *deduper

	observed  uint64
	stored    uint64
	deduped   uint64
	dropped   uint64
	skipped   uint64
	processed uint64
	retired   uint64
	compacted uint64

	met  storeMetrics
	done chan struct{}
}

// Open opens (or creates) the store rooted at cfg.Dir, loading every
// sealed segment already on disk. A corrupt segment fails the open —
// the reader fails closed rather than silently skipping history.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("history: Config.Dir is required")
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if cfg.MaxSegmentAge <= 0 {
		cfg.MaxSegmentAge = DefaultMaxSegmentAge
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = DefaultDedupWindow
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.MaintenanceInterval == 0 {
		cfg.MaintenanceInterval = DefaultMaintenanceInterval
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:         cfg,
		queue:       make(chan telemetry.Event, cfg.QueueSize),
		vantageBits: make(map[string]int),
		dedup:       newDeduper(cfg.DedupWindow),
		met:         newStoreMetrics(cfg.Registry),
		done:        make(chan struct{}),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.active = newSegment(s.nextSeq)
	s.active.vantages = s.vantages
	s.nextSeq++
	go s.run()
	return s, nil
}

// load reads every sealed segment file under Dir.
func (s *Store) load() error {
	paths, err := filepath.Glob(filepath.Join(s.cfg.Dir, "seg-*.vhs"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		seg, err := decodeSegment(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		seg.path = path
		s.sealed = append(s.sealed, seg)
		if seg.seq >= s.nextSeq {
			s.nextSeq = seg.seq + 1
		}
		// The vantage table is append-only across the store's life, so
		// later segments carry supersets of earlier tables; adopt the
		// longest and verify the rest agree.
		if len(seg.vantages) > len(s.vantages) {
			s.vantages = seg.vantages
		}
	}
	sort.Slice(s.sealed, func(i, j int) bool { return s.sealed[i].seq < s.sealed[j].seq })
	for _, seg := range s.sealed {
		for i, v := range seg.vantages {
			if s.vantages[i] != v {
				return fmt.Errorf("%s: vantage table diverges at bit %d: %q vs %q", seg.path, i, v, s.vantages[i])
			}
		}
	}
	for i, v := range s.vantages {
		s.vantageBits[v] = i
	}
	return nil
}

// Observe enqueues one telemetry event without blocking. It reports
// whether the event was accepted; a full queue or closed store drops
// the event and increments history_dropped_total.
func (s *Store) Observe(e telemetry.Event) bool {
	s.queueMu.RLock()
	defer s.queueMu.RUnlock()
	if s.closed {
		s.addDropped()
		return false
	}
	select {
	case s.queue <- e:
		s.mu.Lock()
		s.observed++
		s.mu.Unlock()
		s.met.observed.Inc()
		return true
	default:
		s.addDropped()
		return false
	}
}

func (s *Store) addDropped() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
	s.met.dropped.Inc()
}

// run is the ingest goroutine: it drains the queue into the segment log
// and paces maintenance.
func (s *Store) run() {
	defer close(s.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if s.cfg.MaintenanceInterval > 0 {
		tick = time.NewTicker(s.cfg.MaintenanceInterval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case e, ok := <-s.queue:
			if !ok {
				return
			}
			s.ingest(e)
		case <-tickC:
			s.Maintain(time.Now())
		}
	}
}

// ingest applies one event to the log.
func (s *Store) ingest(e telemetry.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.processed++
	if e.Kind != telemetry.EventRouteMonitoring || !e.Prefix.IsValid() {
		s.skipped++
		s.met.skipped.Inc()
		return
	}
	bit := s.vantageBitLocked(e.PoP)
	h := contentHash(e)

	// Dedup merge path: the same route event seen from another vantage
	// within the window patches the original record in place (only
	// possible while it still sits in the active segment).
	if off, rec, ok := s.dedup.lookup(h, e.Time, s.active.seq); ok {
		if rec&bit == 0 {
			s.dedup.merge(h, bit)
			s.active.mergeVantage(off, bit)
			s.active.observe(e.Time)
			s.deduped++
			s.met.deduped.Inc()
			return
		}
		// Same vantage repeating the same content within the window is a
		// distinct protocol event (a flap leg) — store it; merging would
		// erase the flap from the timeline.
	}

	off := s.active.append(Record{
		Time: e.Time, Peer: e.Peer, PeerASN: e.PeerASN,
		Prefix: e.Prefix, PathID: e.PathID, NextHop: e.NextHop,
		ASPath: e.ASPath, Withdraw: e.Withdraw,
		Vantage: bit, Dups: 1,
	})
	s.dedup.store(h, e.Time, s.active.seq, off, bit)
	s.stored++
	s.met.stored.Inc()
	if len(s.active.buf) >= s.cfg.MaxSegmentBytes {
		s.sealLocked()
	}
}

// vantageBitLocked returns (allocating if needed) the bitmap bit for a
// PoP/collector name. The table is capped at 64 vantages; beyond that,
// events fold into the last bit (and the overflow is counted).
func (s *Store) vantageBitLocked(name string) uint64 {
	if i, ok := s.vantageBits[name]; ok {
		return 1 << uint(i)
	}
	if len(s.vantages) >= 64 {
		s.met.vantageOverflow.Inc()
		return 1 << 63
	}
	i := len(s.vantages)
	s.vantages = append(s.vantages, name)
	s.vantageBits[name] = i
	// The active segment aliases the live table by construction.
	s.active.vantages = s.vantages
	return 1 << uint(i)
}

// sealLocked freezes the active segment, writes its file, and starts a
// fresh one. Empty segments are recycled in place.
func (s *Store) sealLocked() {
	if s.active.count == 0 {
		return
	}
	seg := s.active
	seg.vantages = append([]string(nil), s.vantages...)
	seg.path = filepath.Join(s.cfg.Dir, fmt.Sprintf("seg-%08d.vhs", seg.seq))
	seg.sealed = true
	if err := seg.writeFile(); err != nil {
		s.logf("history: sealing %s: %v", seg.path, err)
	}
	s.sealed = append(s.sealed, seg)
	s.met.sealed.Inc()
	s.active = newSegment(s.nextSeq)
	s.active.vantages = s.vantages
	s.nextSeq++
	// Records in the sealed segment can no longer merge.
	s.dedup.reset()
}

// Maintain runs one maintenance pass at the given clock: seal-by-age,
// retention, and compaction. The background loop calls it periodically;
// tests call it directly with a controlled clock.
func (s *Store) Maintain(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active.count > 0 && now.UnixNano()-s.active.minTime >= int64(s.cfg.MaxSegmentAge) {
		s.sealLocked()
	}
	if s.cfg.Retention > 0 {
		cutoff := now.Add(-s.cfg.Retention).UnixNano()
		kept := s.sealed[:0]
		for _, seg := range s.sealed {
			if seg.maxTime < cutoff {
				if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
					s.logf("history: retention: %v", err)
				}
				s.retired++
				s.met.retired.Inc()
				continue
			}
			kept = append(kept, seg)
		}
		s.sealed = kept
	}
	if s.cfg.CompactAfter > 0 {
		cutoff := now.Add(-s.cfg.CompactAfter).UnixNano()
		for i, seg := range s.sealed {
			if seg.compacted || seg.maxTime >= cutoff {
				continue
			}
			compacted, removed, err := compactSegment(seg)
			if err != nil {
				s.logf("history: compacting %s: %v", seg.path, err)
				continue
			}
			if err := compacted.writeFile(); err != nil {
				s.logf("history: compacting %s: %v", seg.path, err)
				continue
			}
			s.sealed[i] = compacted
			s.compacted += uint64(removed)
			s.met.compactedEvents.Add(uint64(removed))
		}
	}
}

// compactSegment collapses intra-segment churn: per (prefix, pathID,
// peer) group, only the boundary records (first and last) survive; the
// removed flap legs are summed into the survivors' dup counters so
// observation accounting stays truthful.
func compactSegment(seg *segment) (*segment, int, error) {
	records, err := seg.records()
	if err != nil {
		return nil, 0, err
	}
	type groupKey struct {
		prefix netip.Prefix
		pathID uint32
		peer   string
	}
	keep := make([]bool, len(records))
	first := make(map[groupKey]int)
	last := make(map[groupKey]int)
	for i, r := range records {
		k := groupKey{r.Prefix, r.PathID, r.Peer}
		if _, ok := first[k]; !ok {
			first[k] = i
		}
		last[k] = i
	}
	for _, i := range first {
		keep[i] = true
	}
	for _, i := range last {
		keep[i] = true
	}
	dropped := make(map[groupKey]uint32)
	removed := 0
	for i, r := range records {
		if !keep[i] {
			k := groupKey{r.Prefix, r.PathID, r.Peer}
			dropped[k] += r.Dups
			removed++
		}
	}
	out := newSegment(seg.seq)
	out.path = seg.path
	out.sealed = true
	out.compacted = true
	out.vantages = seg.vantages
	for i, r := range records {
		if !keep[i] {
			continue
		}
		k := groupKey{r.Prefix, r.PathID, r.Peer}
		if i == last[k] {
			r.Dups += dropped[k]
		}
		out.append(r)
	}
	// Retention is driven by the newest observation, which compaction
	// must not rewind.
	if seg.maxTime > out.maxTime {
		out.maxTime = seg.maxTime
	}
	return out, removed, nil
}

// Close drains the queue, seals the active segment, and stops the
// maintenance loop. After Close the on-disk log alone reconstructs the
// full history.
func (s *Store) Close() error {
	s.queueMu.Lock()
	if s.closed {
		s.queueMu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.queue)
	s.queueMu.Unlock()
	<-s.done
	s.mu.Lock()
	s.sealLocked()
	s.mu.Unlock()
	return nil
}

// Drain blocks until every accepted event has been applied to the log
// (or the timeout lapses), reporting whether it drained.
func (s *Store) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		done := s.processed >= s.observed
		s.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Observed: s.observed, Stored: s.stored, Deduped: s.deduped,
		Dropped: s.dropped, Skipped: s.skipped,
		RetiredSegments: s.retired, CompactedEvents: s.compacted,
		Segments: len(s.sealed),
	}
	if s.active.count > 0 {
		st.Segments++
	}
	st.Records = uint64(s.active.count)
	for _, seg := range s.sealed {
		st.SealedBytes += int64(len(seg.buf))
		st.Records += uint64(seg.count)
	}
	return st
}

// Vantages returns the store's bit-ordered vantage table.
func (s *Store) Vantages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.vantages...)
}

func (s *Store) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
