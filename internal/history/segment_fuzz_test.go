package history

import (
	"bytes"
	"testing"
)

// FuzzRecordCodec mutates encoded records: any input must either fail
// cleanly or decode into a record that re-encodes to the same bytes it
// was decoded from (the codec is canonical).
func FuzzRecordCodec(f *testing.F) {
	for _, r := range seedRecords() {
		f.Add(appendRecord(nil, r))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &reader{b: data}
		r, ok := decodeRecord(d)
		if !ok {
			if d.err == nil {
				t.Fatal("decode failed without an error")
			}
			return
		}
		re := appendRecord(nil, r)
		if !bytes.Equal(re, data[:d.off]) {
			t.Fatalf("re-encode differs from input:\n in  %x\n out %x", data[:d.off], re)
		}
	})
}

// FuzzSegmentReader mutates whole segment images (sealed and unsealed):
// the reader must never panic, and whatever decodes must round-trip
// through encode/decode unchanged.
func FuzzSegmentReader(f *testing.F) {
	corpus := newSegment(1)
	corpus.vantages = []string{"amsix", "seattle"}
	for _, r := range seedRecords() {
		corpus.append(r)
	}
	corpus.sealed = true
	img := corpus.encode()
	f.Add(append([]byte(nil), img...))
	f.Add(append([]byte(nil), img[:segHeaderLen+len(corpus.buf)]...)) // unsealed image
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := decodeSegment(data)
		if err != nil {
			return
		}
		// decodeSegment validates the whole record region up front, so a
		// segment that decoded must yield exactly count records.
		records, err := seg.records()
		if err != nil {
			t.Fatalf("decoded segment has undecodable records: %v", err)
		}
		if seg.count != len(records) {
			t.Fatalf("count %d != records %d", seg.count, len(records))
		}
	})
}
