package history

import (
	"time"

	"repro/internal/telemetry"
)

// storeMetrics are the history_* series, registered once per store
// against the configured registry.
type storeMetrics struct {
	observed        *telemetry.Counter
	stored          *telemetry.Counter
	deduped         *telemetry.Counter
	dropped         *telemetry.Counter
	skipped         *telemetry.Counter
	sealed          *telemetry.Counter
	retired         *telemetry.Counter
	compactedEvents *telemetry.Counter
	vantageOverflow *telemetry.Counter

	queryState   *telemetry.Counter
	queryBetween *telemetry.Counter
	queryDiff    *telemetry.Counter
	querySeconds *telemetry.Histogram
}

// observeQuery counts a query against c and records its latency.
func (m *storeMetrics) observeQuery(c *telemetry.Counter, start time.Time) {
	c.Inc()
	m.querySeconds.Observe(time.Since(start).Seconds())
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	if reg == nil {
		reg = telemetry.Default()
	}
	queryBuckets := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}
	return storeMetrics{
		observed:        reg.Counter("history_observed_total"),
		stored:          reg.Counter("history_stored_total"),
		deduped:         reg.Counter("history_dedup_total"),
		dropped:         reg.Counter("history_dropped_total"),
		skipped:         reg.Counter("history_skipped_total"),
		sealed:          reg.Counter("history_segments_sealed_total"),
		retired:         reg.Counter("history_segments_retired_total"),
		compactedEvents: reg.Counter("history_compacted_events_total"),
		vantageOverflow: reg.Counter("history_vantage_overflow_total"),
		queryState:      reg.Counter("history_queries_total", telemetry.L("kind", "state")),
		queryBetween:    reg.Counter("history_queries_total", telemetry.L("kind", "between")),
		queryDiff:       reg.Counter("history_queries_total", telemetry.L("kind", "diff")),
		querySeconds:    reg.Histogram("history_query_seconds", queryBuckets),
	}
}
