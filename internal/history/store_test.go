package history

import (
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// openTest opens a store with the background maintenance loop disabled
// (tests drive Maintain with a controlled clock) and its own registry.
func openTest(t *testing.T, dir string, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Dir:                 dir,
		MaintenanceInterval: -1,
		Registry:            telemetry.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func routeEvent(pop string, at time.Time, prefix string, withdraw bool) telemetry.Event {
	return telemetry.Event{
		Kind: telemetry.EventRouteMonitoring, Time: at, PoP: pop,
		Peer: "exp:test", Prefix: netip.MustParsePrefix(prefix),
		NextHop: netip.MustParseAddr("100.65.0.2"),
		ASPath:  []uint32{61574}, Withdraw: withdraw,
	}
}

func observeAll(t *testing.T, s *Store, events ...telemetry.Event) {
	t.Helper()
	for _, e := range events {
		if !s.Observe(e) {
			t.Fatalf("Observe dropped %v", e)
		}
	}
	if !s.Drain(5 * time.Second) {
		t.Fatal("store did not drain")
	}
}

func TestDedupAcrossVantages(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	base := time.Unix(1000, 0)
	// The same announcement observed at two PoPs within the window, then
	// a third observation from a PoP it already has — the flap case.
	observeAll(t, s,
		routeEvent("amsix", base, "184.164.224.0/24", false),
		routeEvent("seattle", base.Add(100*time.Millisecond), "184.164.224.0/24", false),
	)
	st := s.Stats()
	if st.Stored != 1 || st.Deduped != 1 {
		t.Fatalf("stored=%d deduped=%d, want 1/1", st.Stored, st.Deduped)
	}
	events, err := s.Between(netip.MustParsePrefix("184.164.224.0/24"), base.Add(-time.Second), base.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 merged record", len(events))
	}
	if got := events[0].VantageNames; !reflect.DeepEqual(got, []string{"amsix", "seattle"}) {
		t.Fatalf("vantages = %v, want [amsix seattle]", got)
	}
	if events[0].Dups != 2 {
		t.Fatalf("dups = %d, want 2", events[0].Dups)
	}

	// Same vantage repeating identical content: a distinct flap leg,
	// stored separately even inside the window.
	observeAll(t, s, routeEvent("amsix", base.Add(200*time.Millisecond), "184.164.224.0/24", false))
	if st := s.Stats(); st.Stored != 2 {
		t.Fatalf("stored=%d after same-vantage repeat, want 2", st.Stored)
	}
}

func TestDedupWindowExpiry(t *testing.T) {
	s := openTest(t, t.TempDir(), func(c *Config) { c.DedupWindow = time.Second })
	base := time.Unix(1000, 0)
	observeAll(t, s,
		routeEvent("amsix", base, "184.164.224.0/24", false),
		routeEvent("seattle", base.Add(5*time.Second), "184.164.224.0/24", false),
	)
	if st := s.Stats(); st.Stored != 2 || st.Deduped != 0 {
		t.Fatalf("stored=%d deduped=%d, want 2/0 (outside window)", st.Stored, st.Deduped)
	}
}

func TestSkipsNonRouteEvents(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	observeAll(t, s,
		telemetry.Event{Kind: telemetry.EventPeerUp, Time: time.Unix(1000, 0), PoP: "amsix", Peer: "transit-1000"},
		routeEvent("amsix", time.Unix(1001, 0), "184.164.224.0/24", false),
		telemetry.Event{Kind: telemetry.EventStatsReport, Time: time.Unix(1002, 0), PoP: "amsix", Peer: "transit-1000"},
	)
	if st := s.Stats(); st.Stored != 1 || st.Skipped != 2 {
		t.Fatalf("stored=%d skipped=%d, want 1/2", st.Stored, st.Skipped)
	}
}

func TestRotationBySizeAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(c *Config) { c.MaxSegmentBytes = 256 })
	base := time.Unix(1000, 0)
	for i := 0; i < 40; i++ {
		observeAll(t, s, routeEvent("amsix", base.Add(time.Duration(i)*time.Second),
			"10.0.0.0/24", i%2 == 1))
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have produced several", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.vhs"))
	if len(files) < 3 {
		t.Fatalf("on-disk segments = %d, want >= 3", len(files))
	}

	// Reopen from disk only: the full timeline must be intact.
	re := openTest(t, dir, nil)
	if st := re.Stats(); st.Records != 40 {
		t.Fatalf("reopened Records = %d, want 40 (Stored = %d is lifetime-only)", st.Records, st.Stored)
	}
	events, err := re.Between(netip.MustParsePrefix("10.0.0.0/24"), base, base.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 40 {
		t.Fatalf("reopened timeline has %d events, want 40", len(events))
	}
	for i, ev := range events {
		if got := ev.Time; !got.Equal(base.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("event %d at %v, want %v (time order lost)", i, got, base.Add(time.Duration(i)*time.Second))
		}
		if ev.Withdraw != (i%2 == 1) {
			t.Fatalf("event %d withdraw = %v, want %v", i, ev.Withdraw, i%2 == 1)
		}
	}
	// 40 events ended on a withdraw: no live state.
	state, err := re.StateAt(netip.MustParsePrefix("10.0.0.0/24"), base.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 0 {
		t.Fatalf("state = %v, want empty after final withdraw", state)
	}
	// Time travel to just after an even (announce) event: one live route.
	state, err = re.StateAt(netip.MustParsePrefix("10.0.0.0/24"), base.Add(38*time.Second+time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 {
		t.Fatalf("state = %v, want one live route mid-timeline", state)
	}
}

func TestSealByAge(t *testing.T) {
	s := openTest(t, t.TempDir(), func(c *Config) { c.MaxSegmentAge = time.Minute })
	base := time.Now().Add(-2 * time.Minute)
	observeAll(t, s, routeEvent("amsix", base, "10.0.0.0/24", false))
	if st := s.Stats(); st.SealedBytes != 0 {
		t.Fatal("segment sealed before maintenance ran")
	}
	s.Maintain(time.Now())
	if st := s.Stats(); st.SealedBytes == 0 {
		t.Fatal("age-based seal did not happen")
	}
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(c *Config) {
		c.MaxSegmentBytes = 1 // every record seals its own segment
		c.Retention = time.Hour
	})
	old := time.Now().Add(-3 * time.Hour)
	fresh := time.Now().Add(-time.Minute)
	observeAll(t, s,
		routeEvent("amsix", old, "10.0.0.0/24", false),
		routeEvent("amsix", old.Add(time.Second), "10.0.1.0/24", false),
		routeEvent("amsix", fresh, "10.0.2.0/24", false),
	)
	s.Maintain(time.Now())
	st := s.Stats()
	if st.RetiredSegments < 2 {
		t.Fatalf("retired = %d, want the two old segments gone", st.RetiredSegments)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.vhs"))
	if len(files) != st.Segments && len(files) != st.Segments-1 { // active may be unsealed
		t.Fatalf("on-disk files %d vs live segments %d", len(files), st.Segments)
	}
	// In-window queries still work after retirement.
	state, err := s.StateAt(netip.MustParsePrefix("10.0.2.0/24"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 {
		t.Fatalf("in-window state lost after retention: %v", state)
	}
	// The retired prefix is gone.
	if evs, err := s.Between(netip.MustParsePrefix("10.0.0.0/24"), old.Add(-time.Hour), time.Now()); err != nil || len(evs) != 0 {
		t.Fatalf("retired segment still answers: %v, %v", evs, err)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(c *Config) {
		c.CompactAfter = time.Minute
		c.DedupWindow = time.Millisecond // no merging in this test
	})
	base := time.Now().Add(-time.Hour)
	// Churn: announce/withdraw flaps with a final announce, plus one
	// stable prefix that must be untouched.
	var evs []telemetry.Event
	for i := 0; i < 7; i++ {
		evs = append(evs, routeEvent("amsix", base.Add(time.Duration(2*i)*time.Second), "10.1.0.0/24", i%2 == 1))
	}
	evs = append(evs, routeEvent("amsix", base, "10.2.0.0/24", false))
	observeAll(t, s, evs...)
	s.mu.Lock()
	s.sealLocked()
	s.mu.Unlock()
	s.Maintain(time.Now())
	st := s.Stats()
	if st.CompactedEvents != 5 {
		t.Fatalf("compacted = %d, want 5 (7 churn events -> first+last)", st.CompactedEvents)
	}
	// Boundary semantics: state at/after segment end is exact.
	state, err := s.StateAt(netip.MustParsePrefix("10.1.0.0/24"), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 {
		t.Fatalf("post-compaction end state = %v, want the final announce", state)
	}
	events, err := s.Between(netip.MustParsePrefix("10.1.0.0/24"), base.Add(-time.Minute), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("compacted timeline has %d events, want 2 boundary records", len(events))
	}
	// Observation accounting survives: the dropped legs fold into the
	// surviving boundary's dup counter.
	total := uint32(0)
	for _, ev := range events {
		total += ev.Dups
	}
	if total != 7 {
		t.Fatalf("dup total = %d, want 7 observations preserved", total)
	}
	// The compacted file on disk is sealed, CRC-valid, and reopenable.
	re := openTest(t, dir, nil)
	events, err = re.Between(netip.MustParsePrefix("10.1.0.0/24"), base.Add(-time.Minute), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("reopened compacted timeline has %d events, want 2", len(events))
	}
	if evs, err := re.Between(netip.MustParsePrefix("10.2.0.0/24"), base.Add(-time.Minute), time.Now()); err != nil || len(evs) != 1 {
		t.Fatalf("stable prefix disturbed by compaction: %v, %v", evs, err)
	}
}

func TestDiffPoPs(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	base := time.Unix(1000, 0)
	victim := routeEvent("amsix", base, "184.164.224.0/24", false)
	victimAtB := victim
	victimAtB.PoP = "seattle"
	hijack := routeEvent("seattle", base.Add(10*time.Second), "184.164.224.0/25", false)
	hijack.Peer = "exp:rogue"
	hijack.ASPath = []uint32{666}
	observeAll(t, s, victim, victimAtB, hijack)

	// Mid-hijack: the /25 diverges, visible only at seattle; the /24,
	// held at both PoPs (merged record), does not appear.
	diffs, err := s.DiffPoPs("amsix", "seattle", base.Add(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("diffs = %+v, want exactly the /25", diffs)
	}
	d := diffs[0]
	if d.Prefix != netip.MustParsePrefix("184.164.224.0/25") || d.OnlyAt != "seattle" || d.Origin != 666 {
		t.Fatalf("divergence = %+v, want /25 only at seattle from origin 666", d)
	}
	// Before the hijack: no divergence.
	diffs, err = s.DiffPoPs("amsix", "seattle", base.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("pre-hijack diffs = %+v, want none", diffs)
	}
}

func TestPerVantageWithdraw(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	base := time.Unix(1000, 0)
	a := routeEvent("amsix", base, "184.164.224.0/24", false)
	b := routeEvent("seattle", base.Add(time.Millisecond), "184.164.224.0/24", false)
	// Withdraw observed only at amsix: seattle's copy survives.
	w := routeEvent("amsix", base.Add(10*time.Second), "184.164.224.0/24", true)
	observeAll(t, s, a, b, w)
	state, err := s.StateAt(netip.MustParsePrefix("184.164.224.0/24"), base.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 || !reflect.DeepEqual(state[0].Vantages, []string{"seattle"}) {
		t.Fatalf("state = %+v, want the route alive at seattle only", state)
	}
}

func TestObserveAfterCloseDrops(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Observe(routeEvent("amsix", time.Now(), "10.0.0.0/24", false)) {
		t.Fatal("Observe accepted after Close")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestOpenRejectsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	observeAll(t, s, routeEvent("amsix", time.Unix(1000, 0), "10.0.0.0/24", false))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.vhs"))
	if len(files) == 0 {
		t.Fatal("no sealed segment on disk")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, MaintenanceInterval: -1, Registry: telemetry.NewRegistry()}); err == nil {
		t.Fatal("Open accepted a corrupt segment (must fail closed)")
	}
}

func TestMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), func(c *Config) { c.Registry = reg })
	base := time.Unix(1000, 0)
	observeAll(t, s,
		routeEvent("amsix", base, "184.164.224.0/24", false),
		routeEvent("seattle", base.Add(time.Millisecond), "184.164.224.0/24", false),
	)
	if _, err := s.StateAt(netip.MustParsePrefix("184.164.224.0/24"), base.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"history_observed_total": 2,
		"history_stored_total":   1,
		"history_dedup_total":    1,
	}
	for name, want := range checks {
		if got := reg.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.Value("history_queries_total"); got != 1 {
		t.Errorf("history_queries_total = %v, want 1", got)
	}
}
