package ethernet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0x10,
		ID:       0xbeef,
		Flags:    0x2, // DF
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      netip.MustParseAddr("192.168.0.1"),
		Dst:      netip.MustParseAddr("10.1.0.9"),
		Payload:  []byte("payload bytes"),
	}
	var g IPv4
	if err := g.DecodeFromBytes(ip.Marshal()); err != nil {
		t.Fatal(err)
	}
	if g.TOS != ip.TOS || g.ID != ip.ID || g.Flags != ip.Flags || g.TTL != ip.TTL ||
		g.Protocol != ip.Protocol || g.Src != ip.Src || g.Dst != ip.Dst ||
		!bytes.Equal(g.Payload, ip.Payload) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", g, ip)
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	wire := (&IPv4{TTL: 64, Protocol: ProtoTCP,
		Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2")}).Marshal()
	wire[8] = 32 // corrupt TTL without fixing checksum
	var g IPv4
	if err := g.DecodeFromBytes(wire); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var g IPv4
	if err := g.DecodeFromBytes(make([]byte, 19)); err == nil {
		t.Error("truncated: want error")
	}
	wire := (&IPv4{TTL: 1, Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2")}).Marshal()
	bad := append([]byte(nil), wire...)
	bad[0] = 0x65 // version 6
	if err := g.DecodeFromBytes(bad); err == nil {
		t.Error("wrong version: want error")
	}
	bad = append([]byte(nil), wire...)
	bad[0] = 0x44 // IHL 16 bytes < minimum
	if err := g.DecodeFromBytes(bad); err == nil {
		t.Error("short IHL: want error")
	}
}

func TestIPv4TotalLengthBoundsPayload(t *testing.T) {
	// Ethernet padding after the IP datagram must not leak into Payload.
	ip := IPv4{TTL: 64, Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2"), Payload: []byte{1, 2, 3}}
	wire := append(ip.Marshal(), 0, 0, 0, 0, 0) // trailing pad
	var g IPv4
	if err := g.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if len(g.Payload) != 3 {
		t.Errorf("payload length %d, want 3", len(g.Payload))
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	fn := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst [4]byte, payload []byte) bool {
		ip := IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst), Payload: payload}
		var g IPv4
		if err := g.DecodeFromBytes(ip.Marshal()); err != nil {
			return false
		}
		return g.TOS == tos && g.ID == id && g.TTL == ttl && g.Protocol == proto &&
			g.Src == ip.Src && g.Dst == ip.Dst && bytes.Equal(g.Payload, payload)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{
		TrafficClass: 0x20,
		FlowLabel:    0xabcde,
		NextHeader:   ProtoUDP,
		HopLimit:     64,
		Src:          netip.MustParseAddr("2001:db8::1"),
		Dst:          netip.MustParseAddr("2001:db8:ffff::2"),
		Payload:      []byte("v6 payload"),
	}
	var g IPv6
	if err := g.DecodeFromBytes(ip.Marshal()); err != nil {
		t.Fatal(err)
	}
	if g.TrafficClass != ip.TrafficClass || g.FlowLabel != ip.FlowLabel ||
		g.NextHeader != ip.NextHeader || g.HopLimit != ip.HopLimit ||
		g.Src != ip.Src || g.Dst != ip.Dst || !bytes.Equal(g.Payload, ip.Payload) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", g, ip)
	}
}

func TestIPv6DecodeErrors(t *testing.T) {
	var g IPv6
	if err := g.DecodeFromBytes(make([]byte, 39)); err == nil {
		t.Error("truncated: want error")
	}
	wire := (&IPv6{HopLimit: 1, Src: netip.MustParseAddr("::1"), Dst: netip.MustParseAddr("::2")}).Marshal()
	wire[0] = 0x40 // version 4
	if err := g.DecodeFromBytes(wire); err == nil {
		t.Error("wrong version: want error")
	}
}

func TestIPv6RoundTripProperty(t *testing.T) {
	fn := func(tc uint8, fl uint32, nh, hl uint8, src, dst [16]byte, payload []byte) bool {
		ip := IPv6{TrafficClass: tc, FlowLabel: fl & 0xfffff, NextHeader: nh, HopLimit: hl,
			Src: netip.AddrFrom16(src), Dst: netip.AddrFrom16(dst), Payload: payload}
		var g IPv6
		if err := g.DecodeFromBytes(ip.Marshal()); err != nil {
			return false
		}
		return g.TrafficClass == tc && g.FlowLabel == fl&0xfffff && g.NextHeader == nh &&
			g.HopLimit == hl && g.Src == ip.Src && g.Dst == ip.Dst && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Example from RFC 1071 discussion: checksum of header with checksum
	// field zero, then verification over the completed header yields 0.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	cs := Checksum(hdr)
	if cs != 0xb861 {
		t.Errorf("checksum = %#04x, want 0xb861", cs)
	}
	hdr[10], hdr[11] = byte(cs>>8), byte(cs)
	if Checksum(hdr) != 0 {
		t.Error("verification of completed header should be 0")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#04x", got)
	}
}
