package ethernet

import (
	"errors"
	"fmt"
)

// EtherType identifies the protocol carried in an Ethernet frame payload.
type EtherType uint16

// EtherType values used by the simulator.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	TypeIPv6 EtherType = 0x86dd
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "IPv4"
	case TypeARP:
		return "ARP"
	case TypeIPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// HeaderLen is the length of an Ethernet II header (no 802.1Q tag).
const HeaderLen = 14

// ErrTruncated is returned when a buffer is too short to contain the
// header being decoded.
var ErrTruncated = errors.New("ethernet: truncated packet")

// Frame is an Ethernet II frame. Payload aliases the decoded buffer when
// produced by DecodeFromBytes; callers that retain a Frame across reuse of
// the input buffer must copy Payload.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte
}

// DecodeFromBytes parses an Ethernet II frame. The Payload field aliases
// data; it is not copied.
func (f *Frame) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("%w: ethernet header needs %d bytes, have %d", ErrTruncated, HeaderLen, len(data))
	}
	copy(f.Dst[:], data[0:6])
	copy(f.Src[:], data[6:12])
	f.Type = EtherType(uint16(data[12])<<8 | uint16(data[13]))
	f.Payload = data[HeaderLen:]
	return nil
}

// AppendTo appends the wire representation of the frame to b and returns
// the extended slice.
func (f *Frame) AppendTo(b []byte) []byte {
	b = append(b, f.Dst[:]...)
	b = append(b, f.Src[:]...)
	b = append(b, byte(f.Type>>8), byte(f.Type))
	return append(b, f.Payload...)
}

// Marshal returns the wire representation of the frame in a fresh slice.
func (f *Frame) Marshal() []byte {
	return f.AppendTo(make([]byte, 0, HeaderLen+len(f.Payload)))
}

// Clone returns a deep copy of the frame, including its payload. Use when
// a decoded frame must outlive the buffer it was decoded from.
func (f *Frame) Clone() Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return c
}

// String summarizes the frame for logs.
func (f *Frame) String() string {
	return fmt.Sprintf("%s > %s %s len=%d", f.Src, f.Dst, f.Type, len(f.Payload))
}
