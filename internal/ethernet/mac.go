// Package ethernet implements wire-format codecs for the layer-2 and
// layer-3 headers that vBGP manipulates: Ethernet II framing, ARP, and
// minimal IPv4/IPv6 headers.
//
// The codecs follow the gopacket convention: each header type has a
// DecodeFromBytes method that parses a byte slice without retaining it,
// and a SerializeTo/AppendTo method that emits the wire representation.
// All multi-byte fields are big-endian (network byte order).
package ethernet

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// MAC is a 48-bit IEEE 802 MAC address. It is a value type (comparable,
// usable as a map key), unlike net.HardwareAddr.
type MAC [6]byte

// Broadcast is the all-ones broadcast MAC address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Zero is the all-zeros MAC address, used in ARP requests for the
// unknown target hardware address.
var Zero MAC

// String formats the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit (least significant bit of the
// first octet) is set. Broadcast is a special case of multicast.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsZero reports whether m is the all-zeros address.
func (m MAC) IsZero() bool { return m == Zero }

// ParseMAC parses a colon-separated MAC address string.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("ethernet: invalid MAC %q: want 17 chars, have %d", s, len(s))
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := unhex(s[i*3])
		lo, ok2 := unhex(s[i*3+1])
		if !ok1 || !ok2 {
			return MAC{}, fmt.Errorf("ethernet: invalid MAC %q: bad hex at octet %d", s, i)
		}
		m[i] = hi<<4 | lo
		if i < 5 && s[i*3+2] != ':' {
			return MAC{}, fmt.Errorf("ethernet: invalid MAC %q: want ':' separator", s)
		}
	}
	return m, nil
}

// MustParseMAC is like ParseMAC but panics on error. Intended for tests
// and static configuration.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// MACAllocator hands out locally administered unicast MAC addresses from a
// private sequence. vBGP uses one allocator per router to assign a distinct
// MAC to each BGP neighbor (§3.2.2 of the paper).
//
// Allocated addresses have the locally-administered bit set (0x02 in the
// first octet) and the multicast bit clear, so they can never collide with
// vendor-assigned NIC addresses or be mistaken for group addresses.
type MACAllocator struct {
	mu     sync.Mutex
	prefix [2]byte // distinguishes allocators (e.g. per router)
	next   uint32
}

// NewMACAllocator returns an allocator whose addresses embed the two-byte
// scope value, so that two allocators with different scopes never produce
// the same address.
func NewMACAllocator(scope uint16) *MACAllocator {
	var a MACAllocator
	binary.BigEndian.PutUint16(a.prefix[:], scope)
	return &a
}

// Next returns the next unused MAC address.
func (a *MACAllocator) Next() MAC {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = a.prefix[0]
	m[2] = a.prefix[1]
	m[3] = byte(a.next >> 16)
	m[4] = byte(a.next >> 8)
	m[5] = byte(a.next)
	return m
}
