package ethernet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IP protocol numbers used by the simulator.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4 is an IPv4 header (RFC 791) without options. Payload aliases the
// decoded buffer.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the flags/fragment field
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
	Payload  []byte
}

// DecodeFromBytes parses an IPv4 header. Options are skipped; the header
// checksum is verified.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("%w: IPv4 header needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("ethernet: IPv4 version field is %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return fmt.Errorf("%w: IPv4 IHL %d exceeds buffer %d", ErrTruncated, ihl, len(data))
	}
	if Checksum(data[:ihl]) != 0 {
		return fmt.Errorf("ethernet: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return fmt.Errorf("%w: IPv4 total length %d, buffer %d", ErrTruncated, total, len(data))
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(flagsFrag >> 13)
	ip.FragOff = flagsFrag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Payload = data[ihl:total]
	return nil
}

// AppendTo appends the wire representation (header + payload) to b,
// computing total length and checksum. It panics if Src or Dst is not IPv4.
func (ip *IPv4) AppendTo(b []byte) []byte {
	start := len(b)
	total := IPv4HeaderLen + len(ip.Payload)
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b,
		0x45, ip.TOS,
		byte(total>>8), byte(total),
		byte(ip.ID>>8), byte(ip.ID),
		ip.Flags<<5|byte(ip.FragOff>>8), byte(ip.FragOff),
		ip.TTL, ip.Protocol,
		0, 0, // checksum placeholder
	)
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	cs := Checksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return append(b, ip.Payload...)
}

// Marshal returns the wire representation in a fresh slice.
func (ip *IPv4) Marshal() []byte {
	return ip.AppendTo(make([]byte, 0, IPv4HeaderLen+len(ip.Payload)))
}

// Checksum computes the RFC 1071 Internet checksum of data. Verifying a
// header including its checksum field yields zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}
