package ethernet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Dst:     MustParseMAC("aa:bb:cc:dd:ee:ff"),
		Src:     MustParseMAC("11:22:33:44:55:66"),
		Type:    TypeIPv4,
		Payload: []byte("hello world"),
	}
	wire := f.Marshal()
	var g Frame
	if err := g.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type || !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	fn := func(dst, src MAC, typ uint16, payload []byte) bool {
		f := Frame{Dst: dst, Src: src, Type: EtherType(typ), Payload: payload}
		var g Frame
		if err := g.DecodeFromBytes(f.Marshal()); err != nil {
			return false
		}
		return g.Dst == dst && g.Src == src && g.Type == EtherType(typ) && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var f Frame
	for n := 0; n < HeaderLen; n++ {
		if err := f.DecodeFromBytes(make([]byte, n)); err == nil {
			t.Errorf("decode of %d bytes: want error", n)
		}
	}
	if err := f.DecodeFromBytes(make([]byte, HeaderLen)); err != nil {
		t.Errorf("decode of exactly %d bytes: %v", HeaderLen, err)
	}
	if len(f.Payload) != 0 {
		t.Errorf("empty payload expected, got %d bytes", len(f.Payload))
	}
}

func TestFrameCloneIndependent(t *testing.T) {
	wire := (&Frame{Type: TypeARP, Payload: []byte{1, 2, 3}}).Marshal()
	var f Frame
	if err := f.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	c := f.Clone()
	wire[HeaderLen] = 99 // mutate the original buffer
	if c.Payload[0] != 1 {
		t.Error("Clone payload aliases original buffer")
	}
	if f.Payload[0] != 99 {
		t.Error("decoded frame should alias the buffer")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:        ARPReply,
		SenderMAC: MustParseMAC("02:00:00:00:00:01"),
		SenderIP:  netip.MustParseAddr("127.65.0.2"),
		TargetMAC: MustParseMAC("02:00:00:00:00:02"),
		TargetIP:  netip.MustParseAddr("10.0.0.1"),
	}
	var b ARP
	if err := b.DecodeFromBytes(a.Marshal()); err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", b, a)
	}
}

func TestARPRequestReplyFlow(t *testing.T) {
	// Mirrors Fig. 2b: experiment ARPs for next-hop 127.65.0.2, router
	// replies with the MAC it assigned to neighbor N2.
	expMAC := MustParseMAC("0a:00:00:00:00:01")
	n2MAC := MustParseMAC("02:00:22:22:22:22")
	req := NewARPRequest(expMAC, netip.MustParseAddr("100.65.0.9"), netip.MustParseAddr("127.65.0.2"))

	reqFrame := req.Frame(expMAC)
	if !reqFrame.Dst.IsBroadcast() {
		t.Error("ARP request frame should be broadcast")
	}

	rep := req.Reply(n2MAC)
	if rep.Op != ARPReply {
		t.Error("reply op")
	}
	if rep.SenderMAC != n2MAC || rep.SenderIP != req.TargetIP {
		t.Errorf("reply sender: %v %v", rep.SenderMAC, rep.SenderIP)
	}
	if rep.TargetMAC != expMAC || rep.TargetIP != req.SenderIP {
		t.Errorf("reply target: %v %v", rep.TargetMAC, rep.TargetIP)
	}
	repFrame := rep.Frame(n2MAC)
	if repFrame.Dst != expMAC {
		t.Error("ARP reply frame should be unicast to requester")
	}
}

func TestARPDecodeErrors(t *testing.T) {
	var a ARP
	if err := a.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("truncated ARP: want error")
	}
	// Unsupported hardware type.
	good := NewARPRequest(MAC{}, netip.MustParseAddr("1.2.3.4"), netip.MustParseAddr("5.6.7.8")).Marshal()
	good[1] = 6 // htype = IEEE 802 instead of Ethernet
	if err := a.DecodeFromBytes(good); err == nil {
		t.Error("bad htype: want error")
	}
}

func TestARPPropertyRoundTrip(t *testing.T) {
	fn := func(op bool, smac, tmac MAC, sip, tip [4]byte) bool {
		a := ARP{Op: ARPRequest, SenderMAC: smac, TargetMAC: tmac,
			SenderIP: netip.AddrFrom4(sip), TargetIP: netip.AddrFrom4(tip)}
		if op {
			a.Op = ARPReply
		}
		var b ARP
		return b.DecodeFromBytes(a.Marshal()) == nil && b == a
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
