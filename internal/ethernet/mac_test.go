package ethernet

import (
	"testing"
	"testing/quick"
)

func TestParseMACRoundTrip(t *testing.T) {
	cases := []string{
		"00:00:00:00:00:00",
		"ff:ff:ff:ff:ff:ff",
		"02:00:5e:10:00:01",
		"aa:bb:cc:dd:ee:ff",
	}
	for _, s := range cases {
		m, err := ParseMAC(s)
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", s, err)
		}
		if got := m.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseMACUppercase(t *testing.T) {
	m, err := ParseMAC("AA:BB:CC:DD:EE:FF")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}) {
		t.Errorf("got %v", m)
	}
}

func TestParseMACErrors(t *testing.T) {
	bad := []string{
		"",
		"00:00:00:00:00",      // too short
		"00:00:00:00:00:0",    // too short
		"00:00:00:00:00:00:0", // too long
		"00-00-00-00-00-00",   // wrong separator
		"0g:00:00:00:00:00",   // bad hex
		"zz:zz:zz:zz:zz:zz",
	}
	for _, s := range bad {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q): want error", s)
		}
	}
}

func TestMACStringParseProperty(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast predicates")
	}
	if !Zero.IsZero() {
		t.Error("zero predicate")
	}
	u := MAC{0x02, 0, 0, 0, 0, 1}
	if u.IsBroadcast() || u.IsMulticast() || u.IsZero() {
		t.Errorf("%v misclassified", u)
	}
	mc := MAC{0x01, 0x00, 0x5e, 0, 0, 1}
	if !mc.IsMulticast() || mc.IsBroadcast() {
		t.Errorf("%v misclassified", mc)
	}
}

func TestMustParseMACPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseMAC on bad input did not panic")
		}
	}()
	MustParseMAC("not a mac")
}

func TestMACAllocatorUnique(t *testing.T) {
	a := NewMACAllocator(7)
	seen := make(map[MAC]bool)
	for i := 0; i < 10000; i++ {
		m := a.Next()
		if seen[m] {
			t.Fatalf("duplicate MAC %v at iteration %d", m, i)
		}
		seen[m] = true
		if m.IsMulticast() {
			t.Fatalf("allocated multicast MAC %v", m)
		}
		if m[0]&0x02 == 0 {
			t.Fatalf("allocated MAC %v without locally-administered bit", m)
		}
	}
}

func TestMACAllocatorScopesDisjoint(t *testing.T) {
	a, b := NewMACAllocator(1), NewMACAllocator(2)
	am, bm := a.Next(), b.Next()
	if am == bm {
		t.Errorf("allocators with different scopes collided: %v", am)
	}
}

func TestMACAllocatorConcurrent(t *testing.T) {
	a := NewMACAllocator(3)
	const goroutines, per = 8, 500
	ch := make(chan MAC, goroutines*per)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				ch <- a.Next()
			}
		}()
	}
	seen := make(map[MAC]bool)
	for i := 0; i < goroutines*per; i++ {
		m := <-ch
		if seen[m] {
			t.Fatalf("duplicate MAC %v under concurrency", m)
		}
		seen[m] = true
	}
}
