package ethernet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6HeaderLen is the fixed IPv6 header length.
const IPv6HeaderLen = 40

// IPv6 is an IPv6 fixed header (RFC 8200). Extension headers are treated
// as payload. Payload aliases the decoded buffer.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
	Payload      []byte
}

// DecodeFromBytes parses the fixed IPv6 header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return fmt.Errorf("%w: IPv6 header needs %d bytes, have %d", ErrTruncated, IPv6HeaderLen, len(data))
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	if v := vtf >> 28; v != 6 {
		return fmt.Errorf("ethernet: IPv6 version field is %d", v)
	}
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xfffff
	plen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	if IPv6HeaderLen+plen > len(data) {
		return fmt.Errorf("%w: IPv6 payload length %d, buffer %d", ErrTruncated, plen, len(data)-IPv6HeaderLen)
	}
	ip.Payload = data[IPv6HeaderLen : IPv6HeaderLen+plen]
	return nil
}

// AppendTo appends the wire representation (header + payload) to b. It
// panics if Src or Dst is not IPv6.
func (ip *IPv6) AppendTo(b []byte) []byte {
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xfffff
	src, dst := ip.Src.As16(), ip.Dst.As16()
	b = append(b,
		byte(vtf>>24), byte(vtf>>16), byte(vtf>>8), byte(vtf),
		byte(len(ip.Payload)>>8), byte(len(ip.Payload)),
		ip.NextHeader, ip.HopLimit,
	)
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	return append(b, ip.Payload...)
}

// Marshal returns the wire representation in a fresh slice.
func (ip *IPv6) Marshal() []byte {
	return ip.AppendTo(make([]byte, 0, IPv6HeaderLen+len(ip.Payload)))
}
