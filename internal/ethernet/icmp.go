package ethernet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the simulator.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
	ICMPTimeExceed  = 11
)

// ICMP is a minimal ICMPv4 message: echo request/reply and time exceeded.
// Data carries the echo payload, or the embedded datagram for errors.
type ICMP struct {
	Type uint8
	Code uint8
	ID   uint16 // echo only
	Seq  uint16 // echo only
	Data []byte
}

// icmpHeaderLen is the fixed ICMP header length.
const icmpHeaderLen = 8

// DecodeFromBytes parses an ICMP message and verifies its checksum.
func (m *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < icmpHeaderLen {
		return fmt.Errorf("%w: ICMP needs %d bytes, have %d", ErrTruncated, icmpHeaderLen, len(data))
	}
	if Checksum(data) != 0 {
		return fmt.Errorf("ethernet: ICMP checksum mismatch")
	}
	m.Type = data[0]
	m.Code = data[1]
	m.ID = binary.BigEndian.Uint16(data[4:6])
	m.Seq = binary.BigEndian.Uint16(data[6:8])
	m.Data = data[icmpHeaderLen:]
	return nil
}

// Marshal returns the wire representation with a valid checksum.
func (m ICMP) Marshal() []byte {
	b := make([]byte, icmpHeaderLen, icmpHeaderLen+len(m.Data))
	b[0], b[1] = m.Type, m.Code
	binary.BigEndian.PutUint16(b[4:6], m.ID)
	binary.BigEndian.PutUint16(b[6:8], m.Seq)
	b = append(b, m.Data...)
	cs := Checksum(b)
	binary.BigEndian.PutUint16(b[2:4], cs)
	return b
}
