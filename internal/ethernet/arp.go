package ethernet

import (
	"fmt"
	"net/netip"
)

// ARPOp is the ARP operation code.
type ARPOp uint16

// ARP operations.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// String returns "request" or "reply".
func (op ARPOp) String() string {
	switch op {
	case ARPRequest:
		return "request"
	case ARPReply:
		return "reply"
	default:
		return fmt.Sprintf("ARPOp(%d)", uint16(op))
	}
}

// arpLen is the wire length of an Ethernet/IPv4 ARP packet.
const arpLen = 28

// ARP is an Ethernet/IPv4 ARP packet (RFC 826). vBGP answers ARP queries
// for its per-neighbor next-hop IPs with the per-neighbor MAC it allocated
// (paper §3.2.2, Fig. 2b steps 6-7).
type ARP struct {
	Op        ARPOp
	SenderMAC MAC
	SenderIP  netip.Addr // must be IPv4
	TargetMAC MAC
	TargetIP  netip.Addr // must be IPv4
}

// DecodeFromBytes parses an ARP packet. Only Ethernet/IPv4 ARP
// (htype=1, ptype=0x0800, hlen=6, plen=4) is accepted.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return fmt.Errorf("%w: ARP needs %d bytes, have %d", ErrTruncated, arpLen, len(data))
	}
	htype := uint16(data[0])<<8 | uint16(data[1])
	ptype := EtherType(uint16(data[2])<<8 | uint16(data[3]))
	hlen, plen := data[4], data[5]
	if htype != 1 || ptype != TypeIPv4 || hlen != 6 || plen != 4 {
		return fmt.Errorf("ethernet: unsupported ARP htype=%d ptype=%s hlen=%d plen=%d", htype, ptype, hlen, plen)
	}
	a.Op = ARPOp(uint16(data[6])<<8 | uint16(data[7]))
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	return nil
}

// AppendTo appends the wire representation of the ARP packet to b.
// It panics if either IP address is not IPv4.
func (a ARP) AppendTo(b []byte) []byte {
	sip, tip := a.SenderIP.As4(), a.TargetIP.As4()
	b = append(b,
		0, 1, // htype: Ethernet
		byte(TypeIPv4>>8), byte(TypeIPv4&0xff), // ptype: IPv4
		6, 4, // hlen, plen
		byte(a.Op>>8), byte(a.Op),
	)
	b = append(b, a.SenderMAC[:]...)
	b = append(b, sip[:]...)
	b = append(b, a.TargetMAC[:]...)
	return append(b, tip[:]...)
}

// Marshal returns the wire representation in a fresh slice.
func (a ARP) Marshal() []byte { return a.AppendTo(make([]byte, 0, arpLen)) }

// Frame wraps the ARP packet in an Ethernet frame from src. Requests are
// broadcast; replies are unicast to the target MAC.
func (a ARP) Frame(src MAC) Frame {
	dst := Broadcast
	if a.Op == ARPReply {
		dst = a.TargetMAC
	}
	return Frame{Dst: dst, Src: src, Type: TypeARP, Payload: a.Marshal()}
}

// NewARPRequest builds an ARP request asking who has target, from the
// given sender.
func NewARPRequest(senderMAC MAC, senderIP, target netip.Addr) ARP {
	return ARP{Op: ARPRequest, SenderMAC: senderMAC, SenderIP: senderIP, TargetIP: target}
}

// Reply builds the reply to request a, answering that answerMAC holds the
// requested IP.
func (a ARP) Reply(answerMAC MAC) ARP {
	return ARP{
		Op:        ARPReply,
		SenderMAC: answerMAC,
		SenderIP:  a.TargetIP,
		TargetMAC: a.SenderMAC,
		TargetIP:  a.SenderIP,
	}
}
