package catchment

import (
	"repro/internal/telemetry"
)

// metrics publishes the controller's observability surface:
//
//	catchment_resolves_total            — maps observed
//	catchment_clients{pop=...}          — client weight landing per PoP
//	catchment_load_bps{pop=...}         — measured goodput per PoP
//	catchment_unreachable_clients       — clients with no path in
//	te_rounds_total                     — control-loop iterations
//	te_actions_total{kind=...}          — steering actions by knob
//	te_imbalance_bp                     — worst deviation, basis points
//	te_converged                        — 1 converged, 0 infeasible/unset
type metrics struct {
	reg         *telemetry.Registry
	resolves    *telemetry.Counter
	unreachable *telemetry.Gauge
	rounds      *telemetry.Counter
	imbalanceBP *telemetry.Gauge
	converged   *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		reg:         reg,
		resolves:    reg.Counter("catchment_resolves_total"),
		unreachable: reg.Gauge("catchment_unreachable_clients"),
		rounds:      reg.Counter("te_rounds_total"),
		imbalanceBP: reg.Gauge("te_imbalance_bp"),
		converged:   reg.Gauge("te_converged"),
	}
}

// observe publishes one round's measurement.
func (m *metrics) observe(cm *Map, loadBps map[string]float64, imbalance float64) {
	m.resolves.Inc()
	m.unreachable.Set(int64(cm.Unreachable))
	m.imbalanceBP.Set(int64(imbalance * 10000))
	for pop, n := range cm.PoPClients {
		m.reg.Gauge("catchment_clients", telemetry.L("pop", pop)).Set(int64(n))
	}
	for pop, bps := range loadBps {
		m.reg.Gauge("catchment_load_bps", telemetry.L("pop", pop)).Set(int64(bps))
	}
}

// action counts one applied steering action by knob kind.
func (m *metrics) action(a Action) {
	m.reg.Counter("te_actions_total", telemetry.L("kind", a.Kind.String())).Inc()
}

func (m *metrics) round() { m.rounds.Inc() }

func (m *metrics) setConverged(ok bool) {
	if ok {
		m.converged.Set(1)
	} else {
		m.converged.Set(0)
	}
}
