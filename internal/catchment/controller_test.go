package catchment

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// modelGroup is one steerable unit of client weight in the synthetic
// steering model: it serves from its home PoP unless shed, in which
// case it lands at the model's fallback PoP.
type modelGroup struct {
	via    uint32
	home   string
	weight int
}

// steerModel is a closed-form stand-in for the platform: no-exporting a
// group's (home, via) moves it to the fallback PoP, mimicking how shed
// clients re-route through the next-best transit at another site.
type steerModel struct {
	groups    []modelGroup
	noExport  map[string]map[uint32]bool
	withdrawn map[string]bool
	pops      []string
	applied   []Action
}

func (sm *steerModel) fallback(home string) string {
	for i := len(sm.pops) - 1; i >= 0; i-- {
		if p := sm.pops[i]; p != home && !sm.withdrawn[p] {
			return p
		}
	}
	return home
}

func (sm *steerModel) Apply(a Action) error {
	sm.applied = append(sm.applied, a)
	switch a.Kind {
	case ActionNoExport:
		if sm.noExport[a.PoP] == nil {
			sm.noExport[a.PoP] = make(map[uint32]bool)
		}
		sm.noExport[a.PoP][a.Via] = true
	case ActionReExport:
		delete(sm.noExport[a.PoP], a.Via)
	case ActionWithdraw:
		sm.withdrawn[a.PoP] = true
	case ActionAnnounce:
		delete(sm.withdrawn, a.PoP)
	}
	return nil
}

func (sm *steerModel) observe() (Observation, error) {
	m := &Map{
		Prefix:      pfx("184.164.224.0/24"),
		Assignments: make(map[uint32]Assignment),
		PoPClients:  make(map[string]int),
		FIBDigests:  map[string]uint64{},
	}
	for _, g := range sm.groups {
		pop := g.home
		if sm.withdrawn[pop] || sm.noExport[pop][g.via] {
			pop = sm.fallback(g.home)
		}
		// Re-homed groups enter through the serving PoP's first via so
		// ViaWeightsOf keeps summing to PoPClients.
		via := g.via
		if pop != g.home {
			via = sm.firstVia(pop)
		}
		m.Assignments[g.via] = Assignment{PoP: pop, Via: via}
		m.PoPClients[pop] += g.weight
		m.Total += g.weight
	}
	return Observation{Map: m}, nil
}

func (sm *steerModel) firstVia(pop string) uint32 {
	best := uint32(0)
	for _, g := range sm.groups {
		if g.home == pop && (best == 0 || g.via < best) {
			best = g.via
		}
	}
	return best
}

// populations exposes the model's groups as Populations keyed by via
// ASN (one population per group, homed at the via itself).
func (sm *steerModel) populations() []Population {
	out := make([]Population, 0, len(sm.groups))
	for _, g := range sm.groups {
		out = append(out, Population{ASN: g.via, Clients: g.weight})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

func newSteerModel() *steerModel {
	return &steerModel{
		groups: []modelGroup{
			{via: 101, home: "pop01", weight: 30},
			{via: 102, home: "pop01", weight: 30},
			{via: 201, home: "pop02", weight: 20},
			{via: 202, home: "pop02", weight: 10},
			{via: 301, home: "pop03", weight: 5},
			{via: 302, home: "pop03", weight: 5},
		},
		noExport:  make(map[string]map[uint32]bool),
		withdrawn: make(map[string]bool),
		pops:      []string{"pop01", "pop02", "pop03"},
	}
}

func TestControllerConvergesFromTwoToOneImbalance(t *testing.T) {
	sm := newSteerModel()
	third := 1.0 / 3
	cfg := Config{
		Targets:     map[string]float64{"pop01": third, "pop02": third, "pop03": third},
		Tolerance:   0.10,
		Populations: sm.populations(),
		Registry:    telemetry.NewRegistry(),
	}
	ctl, err := NewController(cfg, sm.observe, sm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v (rounds %d)", res.Certificate, len(res.Rounds))
	}
	if first := res.Rounds[0].Imbalance; first < 0.5 {
		t.Fatalf("initial imbalance %.3f too mild for the scenario", first)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Imbalance > 0.10 {
		t.Errorf("final imbalance %.3f > tolerance", last.Imbalance)
	}
	if len(sm.applied) == 0 {
		t.Error("controller converged without acting")
	}
	// Every applied action must be visible in the round history.
	var recorded int
	for _, r := range res.Rounds {
		recorded += len(r.Actions)
	}
	if recorded != len(sm.applied) {
		t.Errorf("round history records %d actions, actuator saw %d", recorded, len(sm.applied))
	}
	// And in telemetry.
	var total float64
	for _, s := range cfg.Registry.Snapshot() {
		if s.Name == "te_actions_total" {
			total += s.Value
		}
	}
	if int(total) != len(sm.applied) {
		t.Errorf("te_actions_total %d, actuator saw %d", int(total), len(sm.applied))
	}
}

func TestControllerReportsInfeasibility(t *testing.T) {
	// An observer whose world never changes: no action helps, so after
	// Patience rounds the controller must emit a certificate rather
	// than loop forever.
	frozen := func() (Observation, error) {
		m := &Map{
			Prefix: pfx("184.164.224.0/24"),
			Assignments: map[uint32]Assignment{
				101: {PoP: "pop01", Via: 101},
				201: {PoP: "pop02", Via: 201},
			},
			PoPClients: map[string]int{"pop01": 90, "pop02": 10},
			Total:      100,
		}
		return Observation{Map: m}, nil
	}
	sm := newSteerModel() // actuator that accepts everything
	cfg := Config{
		Targets:     map[string]float64{"pop01": 0.5, "pop02": 0.5},
		Patience:    3,
		MaxRounds:   50,
		Populations: []Population{{ASN: 101, Clients: 90}, {ASN: 201, Clients: 10}},
		Registry:    telemetry.NewRegistry(),
	}
	ctl, err := NewController(cfg, frozen, sm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged against a frozen world")
	}
	cert := res.Certificate
	if cert == nil {
		t.Fatal("no infeasibility certificate")
	}
	if !strings.Contains(cert.Reason, "improvement") {
		t.Errorf("unexpected reason %q", cert.Reason)
	}
	if cert.BestImbalance <= 0 {
		t.Errorf("certificate best imbalance %.3f", cert.BestImbalance)
	}
	if len(cert.KnobState) != 2 {
		t.Errorf("knob state %v should cover both target PoPs", cert.KnobState)
	}
}

func TestControllerKnobExhaustion(t *testing.T) {
	// One PoP, one via group, nonzero target it can never reach down
	// to: community steering is unavailable (a single group), prepend
	// caps out, withdraw is off the table (target > 0) — the
	// controller must report exhausted knobs.
	obs := func() (Observation, error) {
		m := &Map{
			Prefix:      pfx("184.164.224.0/24"),
			Assignments: map[uint32]Assignment{101: {PoP: "pop01", Via: 101}},
			PoPClients:  map[string]int{"pop01": 100},
			Total:       100,
		}
		return Observation{Map: m}, nil
	}
	sm := newSteerModel()
	cfg := Config{
		Targets:     map[string]float64{"pop01": 0.2, "pop02": 0.8},
		MaxPrepend:  2,
		Patience:    20,
		MaxRounds:   50,
		Populations: []Population{{ASN: 101, Clients: 100}},
		Registry:    telemetry.NewRegistry(),
	}
	ctl, err := NewController(cfg, obs, sm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Certificate == nil {
		t.Fatalf("want infeasibility, got %+v", res)
	}
	if !strings.Contains(res.Certificate.Reason, "exhausted") {
		t.Errorf("reason %q, want knob exhaustion", res.Certificate.Reason)
	}
	// The prepend ladder must have been climbed to its cap on the way.
	sawPrepend := 0
	for _, a := range sm.applied {
		if a.Kind == ActionPrepend && a.PoP == "pop01" {
			sawPrepend = a.Prepend
		}
	}
	if sawPrepend != 2 {
		t.Errorf("prepend reached %d, want cap 2", sawPrepend)
	}
}
