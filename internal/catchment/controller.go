package catchment

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// ActionKind enumerates the platform knobs the controller may pull
// (Table 1: community-steered export, AS-path manipulation,
// announce/withdraw).
type ActionKind uint8

const (
	// ActionNoExport stops exporting the prefix to one neighbor at one
	// PoP (community steering: the NoExportTo control community).
	ActionNoExport ActionKind = iota + 1
	// ActionReExport undoes a NoExport.
	ActionReExport
	// ActionPrepend sets the PoP's AS-path prepend count, deflecting
	// multi-homed choosers away from (higher count) or back toward it.
	ActionPrepend
	// ActionWithdraw retracts the prefix from a PoP entirely.
	ActionWithdraw
	// ActionAnnounce re-announces the prefix at a withdrawn PoP.
	ActionAnnounce
)

func (k ActionKind) String() string {
	switch k {
	case ActionNoExport:
		return "no-export"
	case ActionReExport:
		return "re-export"
	case ActionPrepend:
		return "prepend"
	case ActionWithdraw:
		return "withdraw"
	case ActionAnnounce:
		return "announce"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// MarshalJSON renders the kind by name: the status surfaces are
// read-only inspection, where "prepend" beats a bare enum value.
func (k ActionKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Action is one steering decision.
type Action struct {
	Kind ActionKind `json:"kind"`
	PoP  string     `json:"pop"`
	// Via is the neighbor ASN for NoExport/ReExport.
	Via uint32 `json:"via,omitempty"`
	// Prepend is the PoP's new prepend count for ActionPrepend.
	Prepend int `json:"prepend,omitempty"`
	// Reason explains the decision for the round history and audit.
	Reason string `json:"reason"`
}

func (a Action) String() string {
	switch a.Kind {
	case ActionNoExport, ActionReExport:
		return fmt.Sprintf("%s %s via AS%d (%s)", a.Kind, a.PoP, a.Via, a.Reason)
	case ActionPrepend:
		return fmt.Sprintf("prepend %s x%d (%s)", a.PoP, a.Prepend, a.Reason)
	}
	return fmt.Sprintf("%s %s (%s)", a.Kind, a.PoP, a.Reason)
}

// Actuator applies a steering action to the platform. The peering
// package's implementation re-announces per-PoP versions with adjusted
// target communities and prepends through a Client, so every action
// lands in the policy engine's audit log.
type Actuator interface {
	Apply(Action) error
}

// Observation is one round's measurement: the resolved catchment map
// and, when a traffic model is wired in, the achieved load per PoP.
type Observation struct {
	Map *Map
	// LoadBps is the measured per-PoP goodput from the traffic model
	// (informational; decisions use client weights, which are exact).
	LoadBps map[string]float64
}

// Observer measures the current catchment. Implementations should wait
// for routing to settle (e.g. resolve until two consecutive identical
// maps) before returning.
type Observer func() (Observation, error)

// Config parameterizes the control loop.
type Config struct {
	// Targets is the desired share of client weight per PoP. Shares
	// are normalized against reachable clients; targets should sum to
	// ~1.
	Targets map[string]float64
	// Tolerance is the convergence bound on Imbalance (default 0.10:
	// every PoP within 10% of its target).
	Tolerance float64
	// MaxRounds bounds the loop (default 64).
	MaxRounds int
	// MaxPrepend caps the per-PoP prepend knob (default 5).
	MaxPrepend int
	// Patience is how many rounds without a new best imbalance the
	// loop tolerates before declaring infeasibility (default 8).
	Patience int
	// Populations weights the ViaWeightsOf computations; required.
	Populations []Population
	// Registry receives te_* and catchment_* metrics (default
	// telemetry.Default()).
	Registry *telemetry.Registry
	// Logf, when set, narrates decisions.
	Logf func(format string, args ...any)
}

// Round records one observe→decide→act iteration.
type Round struct {
	N         int                `json:"n"`
	Imbalance float64            `json:"imbalance"`
	Shares    map[string]float64 `json:"shares"`
	LoadBps   map[string]float64 `json:"load_bps,omitempty"`
	Actions   []Action           `json:"actions"`
}

// Certificate explains why the targets are unreachable with the
// available knobs: the knob state at the best round reached, so an
// operator can audit exactly what was tried.
type Certificate struct {
	Reason        string            `json:"reason"`
	Rounds        int               `json:"rounds"`
	BestImbalance float64           `json:"best_imbalance"`
	KnobState     map[string]string `json:"knob_state"`
}

// Result is the controller's outcome.
type Result struct {
	Converged   bool         `json:"converged"`
	Rounds      []Round      `json:"rounds"`
	FinalMap    *Map         `json:"-"`
	Certificate *Certificate `json:"certificate,omitempty"`
}

// Controller runs the closed loop. It is single-goroutine; Run blocks
// until convergence, infeasibility, or the round bound.
type Controller struct {
	cfg Config
	obs Observer
	act Actuator

	// knob state
	noExport  map[string]map[uint32]bool // pop -> via ASNs shed
	prepend   map[string]int             // pop -> prepend count
	withdrawn map[string]bool

	metrics *metrics
}

// NewController validates cfg and builds a controller.
func NewController(cfg Config, obs Observer, act Actuator) (*Controller, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("catchment: no targets")
	}
	if obs == nil || act == nil {
		return nil, fmt.Errorf("catchment: observer and actuator required")
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.10
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	if cfg.MaxPrepend <= 0 {
		cfg.MaxPrepend = 5
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	return &Controller{
		cfg:       cfg,
		obs:       obs,
		act:       act,
		noExport:  make(map[string]map[uint32]bool),
		prepend:   make(map[string]int),
		withdrawn: make(map[string]bool),
		metrics:   newMetrics(cfg.Registry),
	}, nil
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run executes observe→decide→act until every PoP is within Tolerance
// of its target, the knobs are exhausted, or progress stalls. It
// returns the round history either way; on infeasibility the Result
// carries a Certificate instead of Converged.
func (c *Controller) Run() (*Result, error) {
	res := &Result{}
	best := -1.0
	bestRound := 0
	for n := 1; n <= c.cfg.MaxRounds; n++ {
		obs, err := c.obs()
		if err != nil {
			return res, fmt.Errorf("catchment: observe round %d: %w", n, err)
		}
		m := obs.Map
		res.FinalMap = m
		imb := m.Imbalance(c.cfg.Targets)
		round := Round{N: n, Imbalance: imb, Shares: m.Shares(), LoadBps: obs.LoadBps}
		c.metrics.observe(m, obs.LoadBps, imb)

		if best < 0 || imb < best-1e-9 {
			best = imb
			bestRound = n
		}
		if imb <= c.cfg.Tolerance {
			res.Rounds = append(res.Rounds, round)
			res.Converged = true
			c.metrics.setConverged(true)
			c.logf("catchment: converged after %d rounds (imbalance %.3f)", n, imb)
			return res, nil
		}
		if n-bestRound >= c.cfg.Patience {
			res.Rounds = append(res.Rounds, round)
			res.Certificate = c.certificate("no imbalance improvement in "+
				fmt.Sprintf("%d rounds", c.cfg.Patience), n, best)
			c.logf("catchment: infeasible: %s", res.Certificate.Reason)
			return res, nil
		}

		actions := c.decide(m)
		if len(actions) == 0 {
			res.Rounds = append(res.Rounds, round)
			res.Certificate = c.certificate("steering knobs exhausted", n, best)
			c.logf("catchment: infeasible: %s", res.Certificate.Reason)
			return res, nil
		}
		for _, a := range actions {
			if err := c.act.Apply(a); err != nil {
				return res, fmt.Errorf("catchment: apply %s: %w", a, err)
			}
			c.commit(a)
			c.metrics.action(a)
			c.logf("catchment: round %d: %s", n, a)
		}
		round.Actions = actions
		res.Rounds = append(res.Rounds, round)
		c.metrics.round()
	}
	res.Certificate = c.certificate("round budget exhausted", c.cfg.MaxRounds, best)
	c.logf("catchment: infeasible: %s", res.Certificate.Reason)
	return res, nil
}

// decide picks at most one action per off-target PoP for this round:
// underloaded PoPs first give back shed capacity (re-export, prepend
// relief, re-announce), then overloaded PoPs escalate (no-export the
// best-fitting via group, then prepend, then withdraw when the target
// is zero). Working both ends at once halves convergence time without
// sacrificing the audit trail: every Action carries its reason.
func (c *Controller) decide(m *Map) []Action {
	type dev struct {
		pop    string
		excess float64 // share - target, in absolute share units
	}
	shares := m.Shares()
	var devs []dev
	for pop, target := range c.cfg.Targets {
		d := shares[pop] - target
		tolAbs := c.cfg.Tolerance * target
		if d > tolAbs || -d > tolAbs {
			devs = append(devs, dev{pop, d})
		}
	}
	// Most-overloaded first; deterministic tie-break on name.
	sort.Slice(devs, func(i, j int) bool {
		if devs[i].excess != devs[j].excess {
			return devs[i].excess > devs[j].excess
		}
		return devs[i].pop < devs[j].pop
	})

	reachable := m.Total - m.Unreachable
	var actions []Action
	for _, d := range devs {
		var a *Action
		if d.excess > 0 {
			a = c.shed(m, d.pop, d.excess, reachable)
		} else {
			a = c.restore(m, d.pop, -d.excess, reachable)
		}
		if a != nil {
			actions = append(actions, *a)
		}
	}
	if len(actions) == 0 && len(devs) > 0 {
		// Deadlock breaker: every off-target PoP is out of knobs —
		// typically a starved PoP with nothing to restore while the
		// weight it needs sits at PoPs just inside tolerance. Push weight
		// downhill by shedding from the richest PoP, sized to the worst
		// deficit.
		deficit := 0.0
		for _, d := range devs {
			if -d.excess > deficit {
				deficit = -d.excess
			}
		}
		if deficit > 0 {
			type rich struct {
				pop   string
				share float64
			}
			var order []rich
			for pop, target := range c.cfg.Targets {
				if shares[pop] > target {
					order = append(order, rich{pop, shares[pop]})
				}
			}
			sort.Slice(order, func(i, j int) bool {
				if order[i].share != order[j].share {
					return order[i].share > order[j].share
				}
				return order[i].pop < order[j].pop
			})
			for _, r := range order {
				if a := c.shed(m, r.pop, deficit, reachable); a != nil {
					a.Reason += " (donating to starved PoP)"
					actions = append(actions, *a)
					break
				}
			}
		}
	}
	return actions
}

// shed picks the escalation step for an overloaded PoP.
func (c *Controller) shed(m *Map, pop string, excess float64, reachable int) *Action {
	weights := m.ViaWeightsOf(pop, c.cfg.Populations)
	// Knob 1: community steering. Shed the via group whose weight best
	// matches the excess, never the last one serving the PoP (that
	// would be a withdraw in disguise).
	if len(weights) > 1 {
		excessClients := excess * float64(reachable)
		bestVia := uint32(0)
		bestDiff := 0.0
		for via, w := range weights {
			if c.noExport[pop][via] {
				continue
			}
			diff := abs(float64(w) - excessClients)
			if bestVia == 0 || diff < bestDiff || (diff == bestDiff && via < bestVia) {
				bestVia, bestDiff = via, diff
			}
		}
		if bestVia != 0 {
			return &Action{
				Kind: ActionNoExport, PoP: pop, Via: bestVia,
				Reason: fmt.Sprintf("shed %d clients against excess %.0f", weights[bestVia], excessClients),
			}
		}
	}
	// Knob 2: prepending deflects multi-homed choosers.
	if c.prepend[pop] < c.cfg.MaxPrepend {
		n := c.prepend[pop] + 1
		return &Action{
			Kind: ActionPrepend, PoP: pop, Prepend: n,
			Reason: fmt.Sprintf("excess %.3f with no sheddable via group", excess),
		}
	}
	// Knob 3: withdraw, only when the PoP should serve nothing.
	if c.cfg.Targets[pop] <= 0 && !c.withdrawn[pop] {
		return &Action{Kind: ActionWithdraw, PoP: pop, Reason: "target is zero"}
	}
	return nil
}

// restore picks the de-escalation step for an underloaded PoP.
func (c *Controller) restore(m *Map, pop string, deficit float64, reachable int) *Action {
	if c.withdrawn[pop] {
		return &Action{Kind: ActionAnnounce, PoP: pop, Reason: "re-announce withdrawn PoP"}
	}
	// Undo the no-export whose group historically carried the weight
	// closest to the deficit. Weight information for shed groups is
	// gone from the current map (they moved), so undo the lowest ASN
	// first: deterministic, and the loop re-measures anyway.
	if shed := c.noExport[pop]; len(shed) > 0 {
		vias := make([]uint32, 0, len(shed))
		for via := range shed {
			vias = append(vias, via)
		}
		sort.Slice(vias, func(i, j int) bool { return vias[i] < vias[j] })
		return &Action{
			Kind: ActionReExport, PoP: pop, Via: vias[0],
			Reason: fmt.Sprintf("deficit %.3f", deficit),
		}
	}
	if c.prepend[pop] > 0 {
		n := c.prepend[pop] - 1
		return &Action{
			Kind: ActionPrepend, PoP: pop, Prepend: n,
			Reason: fmt.Sprintf("relieve prepend against deficit %.3f", deficit),
		}
	}
	return nil
}

// commit records an applied action in the controller's knob state.
func (c *Controller) commit(a Action) {
	switch a.Kind {
	case ActionNoExport:
		if c.noExport[a.PoP] == nil {
			c.noExport[a.PoP] = make(map[uint32]bool)
		}
		c.noExport[a.PoP][a.Via] = true
	case ActionReExport:
		delete(c.noExport[a.PoP], a.Via)
	case ActionPrepend:
		c.prepend[a.PoP] = a.Prepend
	case ActionWithdraw:
		c.withdrawn[a.PoP] = true
	case ActionAnnounce:
		delete(c.withdrawn, a.PoP)
	}
}

// certificate snapshots the knob state for the infeasibility report.
func (c *Controller) certificate(reason string, rounds int, best float64) *Certificate {
	state := make(map[string]string)
	pops := make([]string, 0, len(c.cfg.Targets))
	for pop := range c.cfg.Targets {
		pops = append(pops, pop)
	}
	sort.Strings(pops)
	for _, pop := range pops {
		shed := make([]uint32, 0, len(c.noExport[pop]))
		for via := range c.noExport[pop] {
			shed = append(shed, via)
		}
		sort.Slice(shed, func(i, j int) bool { return shed[i] < shed[j] })
		state[pop] = fmt.Sprintf("no-export=%v prepend=%d withdrawn=%v",
			shed, c.prepend[pop], c.withdrawn[pop])
	}
	c.metrics.setConverged(false)
	return &Certificate{
		Reason:        reason,
		Rounds:        rounds,
		BestImbalance: best,
		KnobState:     state,
	}
}
