package catchment

import (
	"hash/fnv"
	"net/netip"
	"sort"

	"repro/internal/inet"
	"repro/internal/rib"
)

// NeighborRef identifies one of a PoP's local BGP neighbors: the
// platform-wide neighbor ID (the community value used for steering) and
// the neighbor's AS number (how the neighbor shows up in AS paths).
type NeighborRef struct {
	PoP string `json:"pop"`
	ID  uint32 `json:"id"`
	ASN uint32 `json:"asn"`
}

// PoPView is one PoP's contribution to catchment resolution: its local
// neighbor set plus what its FIB snapshot says about the anycast
// prefix. The FIB digest fingerprints the full snapshot contents in
// Walk order, so two views built from logically identical FIBs — e.g.
// the same routes loaded into 1-, 2-, and 16-shard tables — must match
// bit for bit (the consumer-side guard on snapshot determinism).
type PoPView struct {
	PoP       string        `json:"pop"`
	Neighbors []NeighborRef `json:"neighbors"`
	// Announced reports whether the anycast prefix is present in the
	// PoP's experiment FIB snapshot.
	Announced bool `json:"announced"`
	// FIBVersion and FIBRoutes describe the snapshot consulted.
	FIBVersion uint64 `json:"fib_version"`
	FIBRoutes  int    `json:"fib_routes"`
	// FIBDigest hashes (prefix, peer, AS path) for every best route in
	// Walk order.
	FIBDigest uint64 `json:"fib_digest"`
}

// ViewFromFIB builds a PoP's view from its experiment-FIB snapshot.
// snap may be nil (PoP not yet announcing), leaving the view empty but
// valid.
func ViewFromFIB(pop string, snap *rib.Snapshot, neighbors []NeighborRef, prefix netip.Prefix) PoPView {
	v := PoPView{PoP: pop, Neighbors: append([]NeighborRef(nil), neighbors...)}
	if snap == nil {
		return v
	}
	v.FIBVersion = snap.Version()
	v.FIBRoutes = snap.Routes()
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (56 - 8*i))
		}
		h.Write(buf[:])
	}
	snap.Walk(func(p netip.Prefix, best *rib.Path) bool {
		if p == prefix.Masked() {
			v.Announced = true
		}
		b, _ := p.MarshalBinary()
		h.Write(b)
		h.Write([]byte(best.Peer))
		if best.Attrs != nil {
			for _, asn := range best.Attrs.ASPathFlat() {
				put(uint64(asn))
			}
		}
		return true
	})
	v.FIBDigest = h.Sum64()
	return v
}

// Assignment is where one population's best path lands.
type Assignment struct {
	// PoP serving the population ("" when the population has no route
	// to the prefix, or its entry neighbor maps to no known PoP).
	PoP string `json:"pop"`
	// Via is the neighbor AS the path enters the platform through.
	Via uint32 `json:"via"`
}

// Map is a resolved catchment: every population's assignment plus
// per-PoP client weights.
type Map struct {
	Prefix      netip.Prefix          `json:"prefix"`
	Assignments map[uint32]Assignment `json:"assignments"`
	// PoPClients sums client weights per serving PoP.
	PoPClients map[string]int `json:"pop_clients"`
	// Unreachable counts clients with no route to the prefix (or an
	// entry neighbor no view claims).
	Unreachable int `json:"unreachable"`
	// Total is the full client weight, reachable or not.
	Total int `json:"total"`
	// FIBDigests records each consulted view's FIB fingerprint.
	FIBDigests map[string]uint64 `json:"fib_digests"`
}

// Resolve computes the catchment map for prefix: for each population it
// reads the AS's converged best path from the synthetic Internet, finds
// the platform ASN in it, and attributes the clients to the PoP hosting
// the entry neighbor (the path element just before the platform ASN),
// using the views' neighbor sets as the via→PoP mapping. An ASN hosted
// at several PoPs resolves to the lexicographically first PoP name —
// deterministic, and logged loudly by the callers that care.
func Resolve(top *inet.Topology, platformASN uint32, prefix netip.Prefix, views []PoPView, pops []Population) *Map {
	viaToPoP := make(map[uint32]string)
	digests := make(map[string]uint64, len(views))
	for _, v := range views {
		digests[v.PoP] = v.FIBDigest
		for _, n := range v.Neighbors {
			if cur, ok := viaToPoP[n.ASN]; !ok || v.PoP < cur {
				viaToPoP[n.ASN] = v.PoP
			}
		}
	}

	m := &Map{
		Prefix:      prefix,
		Assignments: make(map[uint32]Assignment, len(pops)),
		PoPClients:  make(map[string]int),
		FIBDigests:  digests,
	}
	for _, p := range pops {
		m.Total += p.Clients
		asgn := resolveOne(top, platformASN, prefix, viaToPoP, p.ASN)
		m.Assignments[p.ASN] = asgn
		if asgn.PoP == "" {
			m.Unreachable += p.Clients
			continue
		}
		m.PoPClients[asgn.PoP] += p.Clients
	}
	return m
}

func resolveOne(top *inet.Topology, platformASN uint32, prefix netip.Prefix, viaToPoP map[uint32]string, asn uint32) Assignment {
	rt := top.RouteAt(asn, prefix)
	if rt == nil {
		return Assignment{}
	}
	for i, hop := range rt.Path {
		if hop != platformASN {
			continue
		}
		var via uint32
		if i > 0 {
			via = rt.Path[i-1]
		} else {
			// The deciding AS is directly attached; its own ASN is the
			// entry point.
			via = asn
		}
		return Assignment{PoP: viaToPoP[via], Via: via}
	}
	return Assignment{}
}

// Shares returns each PoP's fraction of the reachable client weight.
func (m *Map) Shares() map[string]float64 {
	reachable := m.Total - m.Unreachable
	out := make(map[string]float64, len(m.PoPClients))
	if reachable <= 0 {
		return out
	}
	for pop, n := range m.PoPClients {
		out[pop] = float64(n) / float64(reachable)
	}
	return out
}

// ViaWeightsOf returns the client weight per entry neighbor at pop —
// the granularity community steering works at — given the populations
// the map was resolved for.
func (m *Map) ViaWeightsOf(pop string, pops []Population) map[uint32]int {
	out := make(map[uint32]int)
	for _, p := range pops {
		a, ok := m.Assignments[p.ASN]
		if !ok || a.PoP != pop {
			continue
		}
		out[a.Via] += p.Clients
	}
	return out
}

// Imbalance returns the worst relative deviation from the targets:
// max over target PoPs of |share − target| / target. Targets with zero
// or negative weight contribute |share| directly (any load on a
// zero-target PoP is pure excess).
func (m *Map) Imbalance(targets map[string]float64) float64 {
	shares := m.Shares()
	worst := 0.0
	for pop, target := range targets {
		share := shares[pop]
		var dev float64
		if target > 0 {
			dev = abs(share-target) / target
		} else {
			dev = share
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// Equal reports whether two maps assign every population identically
// and agree on the consulted FIB fingerprints.
func (m *Map) Equal(o *Map) bool {
	if o == nil || m.Prefix != o.Prefix || m.Total != o.Total || m.Unreachable != o.Unreachable {
		return false
	}
	if len(m.Assignments) != len(o.Assignments) {
		return false
	}
	for asn, a := range m.Assignments {
		if o.Assignments[asn] != a {
			return false
		}
	}
	if len(m.FIBDigests) != len(o.FIBDigests) {
		return false
	}
	for pop, d := range m.FIBDigests {
		if o.FIBDigests[pop] != d {
			return false
		}
	}
	return true
}

// PoPNames returns the serving PoPs, sorted.
func (m *Map) PoPNames() []string {
	out := make([]string, 0, len(m.PoPClients))
	for pop := range m.PoPClients {
		out = append(out, pop)
	}
	sort.Strings(out)
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
