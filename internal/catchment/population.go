// Package catchment builds anycast catchment maps — which PoP each
// client population's BGP best path lands on — and closes the loop from
// observed per-PoP load back to routing policy with the platform's own
// steering knobs (per-neighbor community steering, selective AS-path
// prepending, withdraw/announce splits; paper §5's ingress-engineering
// experiments at population scale).
//
// The package is deliberately mechanism-free: it reads the synthetic
// Internet (internal/inet) and router FIB snapshots (internal/rib), and
// it emits Actions. The peering package owns the wiring that turns
// Actions into real announcements (peering/te.go).
package catchment

import (
	"math/rand"
	"sort"

	"repro/internal/inet"
)

// Population is a weighted group of clients homed at one AS. Weight is
// an integer client count so shares are exact and reproducible.
type Population struct {
	// ASN the clients sit behind.
	ASN uint32
	// Clients is the population's weight.
	Clients int
}

// GeneratePopulations places total clients across the topology's ASes
// proportionally to customer cone size (an AS that reaches more of the
// Internet downstream serves more eyeballs), with seeded multiplicative
// jitter so distinct seeds give distinct — but reproducible — maps.
// Apportionment uses largest remainders, so the returned populations
// sum to exactly total. ASes apportioned zero clients are omitted.
func GeneratePopulations(top *inet.Topology, total int, seed int64) []Population {
	asns := top.ASNs()
	if len(asns) == 0 || total <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, len(asns))
	var sum float64
	for i, asn := range asns {
		w := float64(len(top.CustomerCone(asn)))
		w *= 0.5 + rng.Float64() // jitter in [0.5, 1.5)
		weights[i] = w
		sum += w
	}

	type share struct {
		idx       int
		clients   int
		remainder float64
	}
	shares := make([]share, len(asns))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		whole := int(exact)
		shares[i] = share{idx: i, clients: whole, remainder: exact - float64(whole)}
		assigned += whole
	}
	// Largest remainders take the leftover clients; ties break on the
	// lower ASN index so the result is a pure function of (topology,
	// total, seed).
	sort.SliceStable(shares, func(a, b int) bool {
		if shares[a].remainder != shares[b].remainder {
			return shares[a].remainder > shares[b].remainder
		}
		return shares[a].idx < shares[b].idx
	})
	for i := 0; i < total-assigned; i++ {
		shares[i%len(shares)].clients++
	}

	sort.Slice(shares, func(a, b int) bool { return shares[a].idx < shares[b].idx })
	out := make([]Population, 0, len(shares))
	for _, s := range shares {
		if s.clients == 0 {
			continue
		}
		out = append(out, Population{ASN: asns[s.idx], Clients: s.clients})
	}
	return out
}

// TotalClients sums the populations' weights.
func TotalClients(pops []Population) int {
	total := 0
	for _, p := range pops {
		total += p.Clients
	}
	return total
}
