package catchment

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/bgp"
	"repro/internal/rib"
)

// TestCatchmentMapShardInvariant guards PR 7's Walk/snapshot
// determinism from the consumer side: the same logical FIB contents
// loaded into 1-, 2-, and 16-shard tables must produce bit-identical
// catchment maps — same assignments AND same FIB digests, since the
// digest hashes every best route in Walk order.
func TestCatchmentMapShardInvariant(t *testing.T) {
	top, vias := steerTopology(t)
	anycast := pfx("184.164.224.0/24")
	inject(t, top, anycast, vias, nil)
	populations := GeneratePopulations(top, 100000, 47065)

	// The logical FIB for each PoP: the anycast prefix plus background
	// routes spread across the address space so multi-shard tables
	// actually use all their shards.
	buildFIB := func(pop string, shards int) *rib.Snapshot {
		table := rib.NewTableShards(pop, shards)
		add := func(prefix netip.Prefix, peer string, path ...uint32) {
			table.Add(&rib.Path{
				Prefix: prefix,
				Peer:   peer,
				Attrs: &bgp.PathAttrs{
					Origin: bgp.OriginIGP, HasOrigin: true,
					ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: path}},
					NextHop: netip.MustParseAddr("198.18.0.1"),
				},
				EBGP: true,
				Seq:  rib.NextSeq(),
			})
		}
		add(anycast, "exp", 61574)
		for i := 0; i < 512; i++ {
			add(pfx(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256)),
				fmt.Sprintf("as%d", 1000+i%7), uint32(1000+i%7), uint32(65000+i))
		}
		return table.BuildSnapshot()
	}

	resolveWith := func(shards int) *Map {
		views := []PoPView{
			ViewFromFIB("pop01", buildFIB("pop01", shards),
				[]NeighborRef{{PoP: "pop01", ID: 1, ASN: 101}, {PoP: "pop01", ID: 2, ASN: 102}}, anycast),
			ViewFromFIB("pop02", buildFIB("pop02", shards),
				[]NeighborRef{{PoP: "pop02", ID: 3, ASN: 201}, {PoP: "pop02", ID: 4, ASN: 202}}, anycast),
		}
		for _, v := range views {
			if !v.Announced {
				t.Fatalf("%s view (shards=%d) does not see the anycast prefix", v.PoP, shards)
			}
			if v.FIBRoutes != 513 {
				t.Fatalf("%s view (shards=%d) has %d routes, want 513", v.PoP, shards, v.FIBRoutes)
			}
		}
		return Resolve(top, platformASN, anycast, views, populations)
	}

	base := resolveWith(1)
	if base.Total != 100000 {
		t.Fatalf("base map total %d", base.Total)
	}
	for _, shards := range []int{2, 16} {
		m := resolveWith(shards)
		if !base.Equal(m) {
			t.Errorf("catchment map with %d shards differs from 1-shard map: digests %v vs %v, pop clients %v vs %v",
				shards, m.FIBDigests, base.FIBDigests, m.PoPClients, base.PoPClients)
		}
	}
}
