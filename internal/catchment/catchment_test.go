package catchment

import (
	"net/netip"
	"testing"

	"repro/internal/inet"
)

const platformASN = 47065

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// steerTopology builds a small controllable Internet:
//
//	T1, T2 (tier-1 peers)
//	 ├─ via11, via12 customers of T1; via21, via22 customers of T2
//	 └─ each via has 3 single-homed stub customers
//
// The platform attaches as a customer of every via (ConnectTransit
// semantics), so injections arrive customer-learned and flood globally.
func steerTopology(t testing.TB) (*inet.Topology, []uint32) {
	t.Helper()
	top := inet.NewTopology()
	top.AddAS(10, "transit")
	top.AddAS(20, "transit")
	if err := top.AddPeering(10, 20); err != nil {
		t.Fatal(err)
	}
	vias := []uint32{101, 102, 201, 202}
	parents := map[uint32]uint32{101: 10, 102: 10, 201: 20, 202: 20}
	stub := uint32(1000)
	for _, via := range vias {
		top.AddAS(via, "transit")
		if err := top.AddTransit(via, parents[via]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			top.AddAS(stub, "access")
			if err := top.AddTransit(stub, via); err != nil {
				t.Fatal(err)
			}
			stub++
		}
	}
	return top, vias
}

// inject announces the anycast prefix into the topology at each via, as
// the platform's speakers would after an experiment announcement.
func inject(t testing.TB, top *inet.Topology, prefix netip.Prefix, vias []uint32, prepend map[uint32]int) {
	t.Helper()
	const expASN = 61574
	for _, via := range vias {
		path := []uint32{platformASN, expASN}
		for i := 0; i < prepend[via]; i++ {
			path = append(path, expASN)
		}
		if err := top.InjectExternal(via, prefix, path, inet.RelCustomer); err != nil {
			t.Fatal(err)
		}
	}
}

func testViews(vias []uint32) []PoPView {
	// Two PoPs: pop01 hosts vias 101, 102; pop02 hosts 201, 202.
	mk := func(pop string, asns ...uint32) PoPView {
		v := PoPView{PoP: pop, Announced: true}
		for i, asn := range asns {
			v.Neighbors = append(v.Neighbors, NeighborRef{PoP: pop, ID: uint32(i + 1), ASN: asn})
		}
		return v
	}
	_ = vias
	return []PoPView{mk("pop01", 101, 102), mk("pop02", 201, 202)}
}

func TestResolveAssignsByEntryNeighbor(t *testing.T) {
	top, vias := steerTopology(t)
	anycast := pfx("184.164.224.0/24")
	inject(t, top, anycast, vias, nil)

	pops := []Population{}
	for _, asn := range top.ASNs() {
		pops = append(pops, Population{ASN: asn, Clients: 10})
	}
	m := Resolve(top, platformASN, anycast, testViews(vias), pops)

	if m.Unreachable != 0 {
		t.Fatalf("unreachable clients: %d", m.Unreachable)
	}
	// Every stub must land at the PoP hosting its via: stubs of 101/102
	// at pop01, stubs of 201/202 at pop02.
	for asn, a := range m.Assignments {
		if asn >= 1000 && asn < 1006 && a.PoP != "pop01" {
			t.Errorf("stub %d landed at %q via AS%d, want pop01", asn, a.PoP, a.Via)
		}
		if asn >= 1006 && asn < 1012 && a.PoP != "pop02" {
			t.Errorf("stub %d landed at %q via AS%d, want pop02", asn, a.PoP, a.Via)
		}
	}
	// The vias themselves route directly.
	for _, via := range vias {
		if m.Assignments[via].Via != via {
			t.Errorf("via %d entered through AS%d, want itself", via, m.Assignments[via].Via)
		}
	}
	if got := m.Total - m.Unreachable; got != len(pops)*10 {
		t.Errorf("reachable weight %d, want %d", got, len(pops)*10)
	}
	// Shares sum to 1.
	var sum float64
	for _, s := range m.Shares() {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum %.4f", sum)
	}
}

func TestResolveUnreachableWithoutInjection(t *testing.T) {
	top, vias := steerTopology(t)
	anycast := pfx("184.164.224.0/24")
	pops := []Population{{ASN: 1000, Clients: 5}}
	m := Resolve(top, platformASN, anycast, testViews(vias), pops)
	if m.Unreachable != 5 {
		t.Fatalf("unreachable = %d, want 5", m.Unreachable)
	}
	if len(m.PoPClients) != 0 {
		t.Fatalf("PoPClients = %v, want empty", m.PoPClients)
	}
}

func TestViaWeightsAndImbalance(t *testing.T) {
	top, vias := steerTopology(t)
	anycast := pfx("184.164.224.0/24")
	inject(t, top, anycast, vias, nil)
	pops := []Population{}
	for _, asn := range top.ASNs() {
		pops = append(pops, Population{ASN: asn, Clients: 1})
	}
	m := Resolve(top, platformASN, anycast, testViews(vias), pops)

	w1 := m.ViaWeightsOf("pop01", pops)
	if len(w1) == 0 {
		t.Fatal("no via weights at pop01")
	}
	var total1 int
	for _, w := range w1 {
		total1 += w
	}
	if total1 != m.PoPClients["pop01"] {
		t.Errorf("via weights sum %d != pop clients %d", total1, m.PoPClients["pop01"])
	}

	// Imbalance against a deliberately skewed target.
	imb := m.Imbalance(map[string]float64{"pop01": 0.99, "pop02": 0.01})
	if imb <= 0.10 {
		t.Errorf("imbalance %.3f suspiciously low for a skewed target", imb)
	}
	// And near zero against the measured shares themselves.
	if imb := m.Imbalance(m.Shares()); imb > 1e-9 {
		t.Errorf("self-imbalance %.6f, want 0", imb)
	}
}

func TestPrependSteersChoosers(t *testing.T) {
	// Prepending at 101's injection makes T1 (a multi-homed chooser)
	// prefer 102, without moving 101's single-homed stubs.
	top, vias := steerTopology(t)
	anycast := pfx("184.164.224.0/24")
	inject(t, top, anycast, vias, nil)

	before := top.RouteAt(10, anycast)
	if before == nil {
		t.Fatal("T1 has no route")
	}
	inject(t, top, anycast, []uint32{101}, map[uint32]int{101: 3})
	after := top.RouteAt(10, anycast)
	if after == nil {
		t.Fatal("T1 lost its route")
	}
	if len(after.Path) >= 2 && after.Path[1] == 101 {
		t.Errorf("T1 still enters via 101 after prepend: path %v", after.Path)
	}
	// 101's stubs stay: single-homed clients have no alternative.
	if rt := top.RouteAt(1000, anycast); rt == nil || rt.Path[1] != 101 {
		t.Errorf("stub 1000 moved or lost route: %v", rt)
	}
}

func TestGeneratePopulationsDeterministic(t *testing.T) {
	top, _ := steerTopology(t)
	a := GeneratePopulations(top, 100000, 42)
	b := GeneratePopulations(top, 100000, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if TotalClients(a) != 100000 {
		t.Errorf("total %d, want 100000", TotalClients(a))
	}
	c := GeneratePopulations(top, 100000, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
	// Cone weighting: a tier-1 (cone 7+) must out-weigh any stub.
	byASN := make(map[uint32]int)
	for _, p := range a {
		byASN[p.ASN] = p.Clients
	}
	if byASN[10] <= byASN[1000] {
		t.Errorf("tier-1 weight %d not above stub weight %d", byASN[10], byASN[1000])
	}
}
