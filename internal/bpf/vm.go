package bpf

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Program is a verified, runnable filter program. Create with Load.
type Program struct {
	// Name labels the program in logs and stats.
	Name string

	insns []Insn
	maps  []Map
	clock Clock

	// Runs, Drops, Aborts count executions for observability.
	runs, drops, aborts atomic.Uint64

	verdicts verdictCounters
}

// Load verifies insns and returns a runnable program. maps are the map
// objects referenced by index from map helpers (R1 selects the map).
func Load(name string, insns []Insn, maps []Map) (*Program, error) {
	if err := Verify(insns, len(maps)); err != nil {
		return nil, fmt.Errorf("bpf: verifier rejected %s: %w", name, err)
	}
	return &Program{Name: name, insns: insns, maps: maps, clock: MonotonicClock, verdicts: newVerdictCounters(name)}, nil
}

// SetClock overrides the timestamp source (tests).
func (p *Program) SetClock(c Clock) { p.clock = c }

// Stats returns cumulative run/drop/abort counts.
func (p *Program) Stats() (runs, drops, aborts uint64) {
	return p.runs.Load(), p.drops.Load(), p.aborts.Load()
}

// Run executes the program over pkt and returns its verdict. A packet
// load out of bounds aborts (VerdictAborted), which callers must treat as
// a drop — the fail-closed behavior the paper requires of enforcement
// (§4.7).
func (p *Program) Run(pkt []byte) Verdict {
	v := p.run(pkt)
	p.verdicts.count(v)
	return v
}

func (p *Program) run(pkt []byte) Verdict {
	p.runs.Add(1)
	var r [NumRegs]uint64
	pc := 0
	for pc < len(p.insns) {
		in := p.insns[pc]
		pc++
		switch in.Op {
		case OpMov:
			r[in.Dst] = r[in.Src]
		case OpMovImm:
			r[in.Dst] = in.Imm
		case OpLdLen:
			r[in.Dst] = uint64(len(pkt))
		case OpLdB, OpLdH, OpLdW:
			off := int(r[in.Src]) + int(in.Off)
			size := map[Op]int{OpLdB: 1, OpLdH: 2, OpLdW: 4}[in.Op]
			if off < 0 || off+size > len(pkt) {
				p.aborts.Add(1)
				return VerdictAborted
			}
			switch in.Op {
			case OpLdB:
				r[in.Dst] = uint64(pkt[off])
			case OpLdH:
				r[in.Dst] = uint64(binary.BigEndian.Uint16(pkt[off:]))
			case OpLdW:
				r[in.Dst] = uint64(binary.BigEndian.Uint32(pkt[off:]))
			}
		case OpAdd:
			r[in.Dst] += r[in.Src]
		case OpAddImm:
			r[in.Dst] += in.Imm
		case OpSub:
			r[in.Dst] -= r[in.Src]
		case OpAnd:
			r[in.Dst] &= r[in.Src]
		case OpAndImm:
			r[in.Dst] &= in.Imm
		case OpOr:
			r[in.Dst] |= r[in.Src]
		case OpOrImm:
			r[in.Dst] |= in.Imm
		case OpLsh:
			r[in.Dst] <<= in.Imm & 63
		case OpRsh:
			r[in.Dst] >>= in.Imm & 63
		case OpJmp:
			pc += int(in.Off)
		case OpJEq:
			if r[in.Dst] == r[in.Src] {
				pc += int(in.Off)
			}
		case OpJEqImm:
			if r[in.Dst] == in.Imm {
				pc += int(in.Off)
			}
		case OpJNeImm:
			if r[in.Dst] != in.Imm {
				pc += int(in.Off)
			}
		case OpJGtImm:
			if r[in.Dst] > in.Imm {
				pc += int(in.Off)
			}
		case OpJLtImm:
			if r[in.Dst] < in.Imm {
				pc += int(in.Off)
			}
		case OpJSetImm:
			if r[in.Dst]&in.Imm != 0 {
				pc += int(in.Off)
			}
		case OpCall:
			switch in.Imm {
			case HelperKtimeNS:
				r[R0] = p.clock()
			case HelperMapLookup:
				if r[R1] >= uint64(len(p.maps)) {
					p.aborts.Add(1)
					return VerdictAborted
				}
				v, ok := p.maps[r[R1]].Lookup(r[R2])
				r[R0] = v
				if ok {
					r[R9] = 1
				} else {
					r[R9] = 0
				}
			case HelperMapUpdate:
				if r[R1] >= uint64(len(p.maps)) {
					p.aborts.Add(1)
					return VerdictAborted
				}
				p.maps[r[R1]].Update(r[R2], r[R3])
			default:
				p.aborts.Add(1)
				return VerdictAborted
			}
		case OpExit:
			v := Verdict(r[R0])
			if v == VerdictDrop || v == VerdictAborted {
				p.drops.Add(1)
			}
			return v
		default:
			p.aborts.Add(1)
			return VerdictAborted
		}
	}
	// Verifier guarantees this is unreachable.
	p.aborts.Add(1)
	return VerdictAborted
}

// Verify statically checks a program, enforcing the same guarantees the
// kernel verifier provides for classic forward-jump programs:
//
//   - at most MaxInsns instructions
//   - register indexes in range
//   - jumps land inside the program and never jump backward, so every
//     execution terminates
//   - the program cannot fall off the end: the last reachable
//     instruction on every path is OpExit
//   - map helper calls only when the program has maps; the verifier
//     cannot prove R1 in range statically, so map index range is also
//     rechecked at run time via the map slice bound below
func Verify(insns []Insn, numMaps int) error {
	if len(insns) == 0 {
		return fmt.Errorf("empty program")
	}
	if len(insns) > MaxInsns {
		return fmt.Errorf("program too long: %d insns", len(insns))
	}
	hasExit := false
	for i, in := range insns {
		if int(in.Dst) >= NumRegs || int(in.Src) >= NumRegs {
			return fmt.Errorf("insn %d: register out of range", i)
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJEqImm, OpJNeImm, OpJGtImm, OpJLtImm, OpJSetImm:
			if in.Off < 0 {
				return fmt.Errorf("insn %d: backward jump", i)
			}
			if i+1+int(in.Off) > len(insns) {
				return fmt.Errorf("insn %d: jump out of bounds", i)
			}
		case OpCall:
			switch in.Imm {
			case HelperKtimeNS:
			case HelperMapLookup, HelperMapUpdate:
				if numMaps == 0 {
					return fmt.Errorf("insn %d: map helper without maps", i)
				}
			default:
				return fmt.Errorf("insn %d: unknown helper %d", i, in.Imm)
			}
		case OpExit:
			hasExit = true
		case OpMov, OpMovImm, OpLdB, OpLdH, OpLdW, OpLdLen,
			OpAdd, OpAddImm, OpSub, OpAnd, OpAndImm, OpOr, OpOrImm, OpLsh, OpRsh:
		default:
			return fmt.Errorf("insn %d: unknown opcode %d", i, in.Op)
		}
	}
	if !hasExit {
		return fmt.Errorf("program has no exit")
	}
	// No fall-through past the end: the final instruction must be an
	// unconditional control transfer (exit), since all jumps are forward.
	if last := insns[len(insns)-1]; last.Op != OpExit {
		return fmt.Errorf("program may fall off the end (last insn is not exit)")
	}
	// Map helpers index maps via R1 at run time; ensure any statically
	// visible immediate map loads are in range.
	for i, in := range insns {
		if in.Op == OpMovImm && in.Dst == R1 && i+1 < len(insns) {
			next := insns[i+1]
			if next.Op == OpCall && (next.Imm == HelperMapLookup || next.Imm == HelperMapUpdate) {
				if in.Imm >= uint64(numMaps) {
					return fmt.Errorf("insn %d: map index %d out of range", i, in.Imm)
				}
			}
		}
	}
	return nil
}
