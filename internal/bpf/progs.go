package bpf

import (
	"encoding/binary"
	"net/netip"
)

// Wire offsets within an Ethernet frame, used by the program builders.
const (
	offEtherType = 12
	offIPv4Src   = 14 + 12
	offIPv6Src   = 14 + 8
)

// EtherType values the programs match on.
const (
	etIPv4 = 0x0800
	etARP  = 0x0806
	etIPv6 = 0x86dd
)

// PacketCounter builds the canonical "count packets and pass" program:
// it increments slot 0 of counts on every invocation and returns
// VerdictPass.
func PacketCounter(name string, counts *ArrayMap) (*Program, error) {
	insns := []Insn{
		{Op: OpMovImm, Dst: R1, Imm: 0},    // map 0
		{Op: OpMovImm, Dst: R2, Imm: 0},    // key 0
		{Op: OpCall, Imm: HelperMapLookup}, // R0 = count
		{Op: OpMov, Dst: R3, Src: R0},      //
		{Op: OpAddImm, Dst: R3, Imm: 1},    // R3 = count+1
		{Op: OpCall, Imm: HelperMapUpdate}, // map[0] = R3
		{Op: OpMovImm, Dst: R0, Imm: uint64(VerdictPass)},
		{Op: OpExit},
	}
	return Load(name, insns, []Map{counts})
}

// SourceIPFilter compiles an anti-spoofing whitelist: ARP passes, IPv4
// and IPv6 packets pass only if their source address falls within one of
// the allowed prefixes, and everything else drops. This is the data-plane
// policy Peering applies to experiment traffic (paper §4.7: "cannot ...
// source traffic using address space that is not part of the
// experiment's allocation").
func SourceIPFilter(name string, allowed []netip.Prefix) (*Program, error) {
	var v4, v6 []netip.Prefix
	for _, p := range allowed {
		if p.Addr().Is6() {
			v6 = append(v6, p)
		} else {
			v4 = append(v4, p)
		}
	}

	var insns []Insn
	emit := func(in Insn) int {
		insns = append(insns, in)
		return len(insns) - 1
	}
	// Jump targets are fixed up after layout.
	var toPass, toDrop, toV6 []int

	emit(Insn{Op: OpMovImm, Dst: R6, Imm: 0})                  // R6: packet base
	emit(Insn{Op: OpLdH, Dst: R7, Src: R6, Off: offEtherType}) // R7 = ethertype
	toPass = append(toPass, emit(Insn{Op: OpJEqImm, Dst: R7, Imm: etARP}))
	toV6 = append(toV6, emit(Insn{Op: OpJEqImm, Dst: R7, Imm: etIPv6}))
	toDrop = append(toDrop, emit(Insn{Op: OpJNeImm, Dst: R7, Imm: etIPv4}))

	// IPv4: R8 = source address; compare against each prefix.
	emit(Insn{Op: OpLdW, Dst: R8, Src: R6, Off: offIPv4Src})
	for _, p := range v4 {
		addr := binary.BigEndian.Uint32(p.Addr().AsSlice())
		mask := uint32(0xffffffff)
		if b := p.Bits(); b < 32 {
			mask = ^(uint32(0xffffffff) >> b)
			if b == 0 {
				mask = 0
			}
		}
		emit(Insn{Op: OpMov, Dst: R3, Src: R8})
		emit(Insn{Op: OpAndImm, Dst: R3, Imm: uint64(mask)})
		toPass = append(toPass, emit(Insn{Op: OpJEqImm, Dst: R3, Imm: uint64(addr & mask)}))
	}
	toDrop = append(toDrop, emit(Insn{Op: OpJmp}))

	// IPv6: compare the source address word by word per prefix.
	v6Start := len(insns)
	for _, p := range v6 {
		raw := p.Addr().As16()
		bits := p.Bits()
		var miss []int
		for w := 0; w < 4 && bits > 0; w++ {
			wordBits := min(bits, 32)
			bits -= wordBits
			mask := ^(uint32(0xffffffff) >> wordBits)
			if wordBits == 0 {
				mask = 0
			}
			want := binary.BigEndian.Uint32(raw[w*4:]) & mask
			emit(Insn{Op: OpLdW, Dst: R3, Src: R6, Off: int32(offIPv6Src + w*4)})
			emit(Insn{Op: OpAndImm, Dst: R3, Imm: uint64(mask)})
			miss = append(miss, emit(Insn{Op: OpJNeImm, Dst: R3, Imm: uint64(want)}))
		}
		toPass = append(toPass, emit(Insn{Op: OpJmp}))
		next := len(insns)
		for _, i := range miss {
			insns[i].Off = int32(next - i - 1)
		}
	}
	toDrop = append(toDrop, emit(Insn{Op: OpJmp}))

	dropAt := len(insns)
	emit(Insn{Op: OpMovImm, Dst: R0, Imm: uint64(VerdictDrop)})
	emit(Insn{Op: OpExit})
	passAt := len(insns)
	emit(Insn{Op: OpMovImm, Dst: R0, Imm: uint64(VerdictPass)})
	emit(Insn{Op: OpExit})

	for _, i := range toPass {
		insns[i].Off = int32(passAt - i - 1)
	}
	for _, i := range toDrop {
		insns[i].Off = int32(dropAt - i - 1)
	}
	for _, i := range toV6 {
		insns[i].Off = int32(v6Start - i - 1)
	}
	return Load(name, insns, nil)
}

// RateLimiter builds a fixed-window packet rate limiter: at most limit
// packets per window of 2^windowShift nanoseconds (windowShift=30 is
// ~1.07 s). State lives in an ArrayMap so the limit applies across
// executions, the stateful-policy capability the paper highlights for
// eBPF enforcement (§3.3).
func RateLimiter(name string, limit uint64, windowShift uint) (*Program, *ArrayMap, error) {
	state := NewArrayMap(2) // slot 0: window id, slot 1: count
	insns := []Insn{
		/*  0 */ {Op: OpCall, Imm: HelperKtimeNS}, // R0 = now
		/*  1 */ {Op: OpRsh, Dst: R0, Imm: uint64(windowShift)},
		/*  2 */ {Op: OpMov, Dst: R8, Src: R0}, // R8 = window id
		/*  3 */ {Op: OpMovImm, Dst: R1, Imm: 0}, // map 0
		/*  4 */ {Op: OpMovImm, Dst: R2, Imm: 0}, // key 0: stored window
		/*  5 */ {Op: OpCall, Imm: HelperMapLookup}, // R0 = stored window
		/*  6 */ {Op: OpJEq, Dst: R0, Src: R8, Off: 5}, // same window: skip reset, land at 12
		// New window: store window id, reset count.
		/*  7 */ {Op: OpMov, Dst: R3, Src: R8},
		/*  8 */ {Op: OpCall, Imm: HelperMapUpdate}, // map[0] = window
		/*  9 */ {Op: OpMovImm, Dst: R2, Imm: 1},
		/* 10 */ {Op: OpMovImm, Dst: R3, Imm: 0},
		/* 11 */ {Op: OpCall, Imm: HelperMapUpdate}, // map[1] = 0
		/* 12 */ {Op: OpMovImm, Dst: R2, Imm: 1}, // key 1: count
		/* 13 */ {Op: OpCall, Imm: HelperMapLookup}, // R0 = count
		/* 14 */ {Op: OpJLtImm, Dst: R0, Imm: limit, Off: 2}, // under limit: land at 17
		// Over limit: drop.
		/* 15 */ {Op: OpMovImm, Dst: R0, Imm: uint64(VerdictDrop)},
		/* 16 */ {Op: OpExit},
		// Under limit: count++ and pass.
		/* 17 */ {Op: OpMov, Dst: R3, Src: R0},
		/* 18 */ {Op: OpAddImm, Dst: R3, Imm: 1},
		/* 19 */ {Op: OpCall, Imm: HelperMapUpdate}, // map[1] = count+1
		/* 20 */ {Op: OpMovImm, Dst: R0, Imm: uint64(VerdictPass)},
		/* 21 */ {Op: OpExit},
	}
	p, err := Load(name, insns, []Map{state})
	if err != nil {
		return nil, nil, err
	}
	return p, state, nil
}
