// Package bpf implements a small eBPF-inspired virtual machine used for
// vBGP's data-plane enforcement (paper §3.3): simple programs are loaded
// at interface hook points, inspect each packet, and return an XDP-style
// verdict. Programs may keep state in maps, enabling stateful policies
// such as per-neighbor rate limiting.
//
// Like the kernel, the package refuses to run unverified programs: Load
// runs a verifier that bounds execution (no backward jumps, all paths
// reach EXIT) and checks register and map discipline before a program can
// be attached.
package bpf

import "fmt"

// Verdict is the program return value, mirroring XDP action codes.
type Verdict uint64

// Verdicts.
const (
	VerdictAborted Verdict = 0 // internal error: treated as drop
	VerdictDrop    Verdict = 1
	VerdictPass    Verdict = 2
)

// String returns the XDP-style name of the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAborted:
		return "XDP_ABORTED"
	case VerdictDrop:
		return "XDP_DROP"
	case VerdictPass:
		return "XDP_PASS"
	default:
		return fmt.Sprintf("Verdict(%d)", uint64(v))
	}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. Loads read from the packet with bounds checking; a load beyond
// the packet aborts the program (verdict VerdictAborted).
const (
	OpMov     Op = iota // dst = src
	OpMovImm            // dst = imm
	OpLdB               // dst = packet[src+off] (byte)
	OpLdH               // dst = be16(packet[src+off:]) (half word)
	OpLdW               // dst = be32(packet[src+off:]) (word)
	OpLdLen             // dst = len(packet)
	OpAdd               // dst += src
	OpAddImm            // dst += imm
	OpSub               // dst -= src
	OpAnd               // dst &= src
	OpAndImm            // dst &= imm
	OpOr                // dst |= src
	OpOrImm             // dst |= imm
	OpLsh               // dst <<= imm
	OpRsh               // dst >>= imm
	OpJmp               // pc += off
	OpJEq               // if dst == src: pc += off
	OpJEqImm            // if dst == imm: pc += off
	OpJNeImm            // if dst != imm: pc += off
	OpJGtImm            // if dst > imm: pc += off
	OpJLtImm            // if dst < imm: pc += off
	OpJSetImm           // if dst & imm != 0: pc += off
	OpCall              // call helper imm; result in R0
	OpExit              // return R0 as the verdict
)

// Register names. R1 holds the packet context by convention (programs use
// loads relative to offsets held in registers).
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	NumRegs
)

// Helper IDs callable with OpCall.
const (
	// HelperKtimeNS returns a monotonic timestamp in nanoseconds in R0.
	HelperKtimeNS = 1
	// HelperMapLookup reads map R1 at key R2 into R0; R0 is the value,
	// or 0 if the key is missing (R9 is set to 1 when found, 0 when
	// missing).
	HelperMapLookup = 2
	// HelperMapUpdate writes value R3 at key R2 of map R1.
	HelperMapUpdate = 3
)

// Insn is one instruction.
type Insn struct {
	Op  Op
	Dst uint8
	Src uint8
	Off int32
	Imm uint64
}

// MaxInsns bounds program size, as the kernel verifier does.
const MaxInsns = 4096
