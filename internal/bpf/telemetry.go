package bpf

import "repro/internal/telemetry"

// hashMapEntries tracks live entries across every HashMap in the
// process — the map-occupancy signal for capacity-bounded rate-limit
// state (a full map silently refuses inserts, so occupancy near the
// configured capacity is the thing to alarm on).
var hashMapEntries *telemetry.Gauge

func init() {
	hashMapEntries = telemetry.Default().Gauge("bpf_hashmap_entries")
}

// verdictCounters holds one program's bpf_verdicts_total{prog,verdict}
// series, resolved at Load time.
type verdictCounters struct {
	aborted, drop, pass, other *telemetry.Counter
}

func newVerdictCounters(prog string) verdictCounters {
	reg := telemetry.Default()
	c := func(verdict string) *telemetry.Counter {
		return reg.Counter("bpf_verdicts_total", telemetry.L("prog", prog), telemetry.L("verdict", verdict))
	}
	return verdictCounters{
		aborted: c("aborted"),
		drop:    c("drop"),
		pass:    c("pass"),
		other:   c("other"),
	}
}

func (vc verdictCounters) count(v Verdict) {
	switch v {
	case VerdictAborted:
		vc.aborted.Inc()
	case VerdictDrop:
		vc.drop.Inc()
	case VerdictPass:
		vc.pass.Inc()
	default:
		vc.other.Inc()
	}
}
