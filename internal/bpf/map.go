package bpf

import (
	"sync"
	"time"
)

// Map is program-accessible state shared between executions, the
// mechanism that makes stateful policies (rate limits, counters)
// possible.
type Map interface {
	// Lookup returns the value for key and whether it was present.
	Lookup(key uint64) (uint64, bool)
	// Update sets the value for key.
	Update(key, value uint64)
}

// ArrayMap is a fixed-size array of u64 values indexed by key, like
// BPF_MAP_TYPE_ARRAY. Out-of-range keys miss.
type ArrayMap struct {
	mu     sync.Mutex
	values []uint64
}

// NewArrayMap creates an array map with n slots, all zero.
func NewArrayMap(n int) *ArrayMap {
	return &ArrayMap{values: make([]uint64, n)}
}

// Lookup implements Map.
func (m *ArrayMap) Lookup(key uint64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key >= uint64(len(m.values)) {
		return 0, false
	}
	return m.values[key], true
}

// Update implements Map. Out-of-range updates are ignored.
func (m *ArrayMap) Update(key, value uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key < uint64(len(m.values)) {
		m.values[key] = value
	}
}

// HashMap maps u64 keys to u64 values, like BPF_MAP_TYPE_HASH, with a
// capacity bound; updates beyond capacity evict nothing and are dropped,
// matching the kernel's E2BIG behavior.
type HashMap struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]uint64
}

// NewHashMap creates a hash map bounded to capacity entries.
func NewHashMap(capacity int) *HashMap {
	return &HashMap{cap: capacity, m: make(map[uint64]uint64)}
}

// Lookup implements Map.
func (m *HashMap) Lookup(key uint64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.m[key]
	return v, ok
}

// Update implements Map.
func (m *HashMap) Update(key, value uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.m[key]; !exists {
		if len(m.m) >= m.cap {
			return
		}
		hashMapEntries.Add(1)
	}
	m.m[key] = value
}

// Len returns the number of entries (for tests).
func (m *HashMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Clock abstracts time for HelperKtimeNS so tests can run deterministic
// rate-limit scenarios.
type Clock func() uint64

// MonotonicClock is the default clock.
func MonotonicClock() uint64 { return uint64(time.Now().UnixNano()) }
