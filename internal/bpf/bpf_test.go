package bpf

import (
	"net/netip"
	"testing"

	"repro/internal/ethernet"
)

func frame(t *testing.T, typ ethernet.EtherType, payload []byte) []byte {
	t.Helper()
	f := ethernet.Frame{
		Dst: ethernet.MAC{1}, Src: ethernet.MAC{2}, Type: typ, Payload: payload,
	}
	return f.Marshal()
}

func ipv4Frame(t *testing.T, src, dst string) []byte {
	t.Helper()
	ip := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst)}
	return frame(t, ethernet.TypeIPv4, ip.Marshal())
}

func ipv6Frame(t *testing.T, src, dst string) []byte {
	t.Helper()
	ip := ethernet.IPv6{HopLimit: 64, NextHeader: ethernet.ProtoUDP,
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst)}
	return frame(t, ethernet.TypeIPv6, ip.Marshal())
}

func TestVerifierRejects(t *testing.T) {
	cases := []struct {
		name  string
		insns []Insn
		maps  int
	}{
		{"empty", nil, 0},
		{"no exit", []Insn{{Op: OpMovImm, Dst: R0, Imm: 2}}, 0},
		{"backward jump", []Insn{
			{Op: OpMovImm, Dst: R0, Imm: 2},
			{Op: OpJmp, Off: -1},
			{Op: OpExit},
		}, 0},
		{"jump out of bounds", []Insn{
			{Op: OpJEqImm, Dst: R0, Off: 10},
			{Op: OpExit},
		}, 0},
		{"bad register", []Insn{
			{Op: OpMovImm, Dst: 12, Imm: 0},
			{Op: OpExit},
		}, 0},
		{"map helper without maps", []Insn{
			{Op: OpCall, Imm: HelperMapLookup},
			{Op: OpExit},
		}, 0},
		{"unknown helper", []Insn{
			{Op: OpCall, Imm: 99},
			{Op: OpExit},
		}, 0},
		{"falls off end", []Insn{
			{Op: OpExit},
			{Op: OpMovImm, Dst: R0, Imm: 2},
		}, 0},
		{"static map index out of range", []Insn{
			{Op: OpMovImm, Dst: R1, Imm: 5},
			{Op: OpCall, Imm: HelperMapLookup},
			{Op: OpExit},
		}, 1},
	}
	for _, c := range cases {
		maps := make([]Map, c.maps)
		for i := range maps {
			maps[i] = NewArrayMap(1)
		}
		if _, err := Load(c.name, c.insns, maps); err == nil {
			t.Errorf("%s: verifier accepted invalid program", c.name)
		}
	}
}

func TestVerifierProgramTooLong(t *testing.T) {
	insns := make([]Insn, MaxInsns+1)
	for i := range insns {
		insns[i] = Insn{Op: OpMovImm, Dst: R0, Imm: 2}
	}
	insns[len(insns)-1] = Insn{Op: OpExit}
	if err := Verify(insns, 0); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestRunSimplePass(t *testing.T) {
	p, err := Load("pass", []Insn{
		{Op: OpMovImm, Dst: R0, Imm: uint64(VerdictPass)},
		{Op: OpExit},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run([]byte{1, 2, 3}); v != VerdictPass {
		t.Errorf("verdict %v", v)
	}
}

func TestRunOutOfBoundsLoadAborts(t *testing.T) {
	p, err := Load("oob", []Insn{
		{Op: OpMovImm, Dst: R1, Imm: 0},
		{Op: OpLdW, Dst: R0, Src: R1, Off: 100},
		{Op: OpExit},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run([]byte{1, 2, 3}); v != VerdictAborted {
		t.Errorf("verdict %v, want aborted", v)
	}
	_, _, aborts := p.Stats()
	if aborts != 1 {
		t.Errorf("aborts = %d", aborts)
	}
}

func TestRunALUOps(t *testing.T) {
	// Compute ((5+3-2)<<4>>2)|1&0xff == 0x19 and exit with it.
	p, err := Load("alu", []Insn{
		{Op: OpMovImm, Dst: R2, Imm: 5},
		{Op: OpAddImm, Dst: R2, Imm: 3},
		{Op: OpMovImm, Dst: R3, Imm: 2},
		{Op: OpSub, Dst: R2, Src: R3},
		{Op: OpLsh, Dst: R2, Imm: 4},
		{Op: OpRsh, Dst: R2, Imm: 2},
		{Op: OpOrImm, Dst: R2, Imm: 1},
		{Op: OpAndImm, Dst: R2, Imm: 0xff},
		{Op: OpMov, Dst: R0, Src: R2},
		{Op: OpExit},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run(nil); uint64(v) != 0x19 {
		t.Errorf("ALU result %#x, want 0x19", uint64(v))
	}
}

func TestPacketCounter(t *testing.T) {
	counts := NewArrayMap(1)
	p, err := PacketCounter("counter", counts)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ipv4Frame(t, "10.0.0.1", "10.0.0.2")
	for i := 0; i < 7; i++ {
		if v := p.Run(pkt); v != VerdictPass {
			t.Fatalf("run %d verdict %v", i, v)
		}
	}
	if got, _ := counts.Lookup(0); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
}

func TestSourceIPFilterIPv4(t *testing.T) {
	p, err := SourceIPFilter("antispoof", []netip.Prefix{
		netip.MustParsePrefix("184.164.224.0/23"),
		netip.MustParsePrefix("10.5.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want Verdict
	}{
		{"184.164.224.1", VerdictPass},
		{"184.164.225.255", VerdictPass},
		{"184.164.226.1", VerdictDrop}, // outside the /23
		{"10.5.9.9", VerdictPass},
		{"10.6.0.1", VerdictDrop},
		{"8.8.8.8", VerdictDrop}, // spoofed
	}
	for _, c := range cases {
		if v := p.Run(ipv4Frame(t, c.src, "192.0.2.1")); v != c.want {
			t.Errorf("src %s: verdict %v, want %v", c.src, v, c.want)
		}
	}
}

func TestSourceIPFilterIPv6(t *testing.T) {
	p, err := SourceIPFilter("antispoof6", []netip.Prefix{
		netip.MustParsePrefix("2804:269c::/32"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run(ipv6Frame(t, "2804:269c::1", "2001:db8::1")); v != VerdictPass {
		t.Errorf("allowed v6 source dropped: %v", v)
	}
	if v := p.Run(ipv6Frame(t, "2804:269d::1", "2001:db8::1")); v != VerdictDrop {
		t.Errorf("spoofed v6 source passed: %v", v)
	}
}

func TestSourceIPFilterPassesARP(t *testing.T) {
	p, err := SourceIPFilter("antispoof", []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")})
	if err != nil {
		t.Fatal(err)
	}
	arp := ethernet.NewARPRequest(ethernet.MAC{1}, netip.MustParseAddr("192.0.2.9"), netip.MustParseAddr("192.0.2.1"))
	fr := arp.Frame(ethernet.MAC{1})
	if v := p.Run(fr.Marshal()); v != VerdictPass {
		t.Errorf("ARP dropped: %v", v)
	}
}

func TestSourceIPFilterDropsOtherEtherTypes(t *testing.T) {
	p, err := SourceIPFilter("antispoof", []netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")})
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run(frame(t, ethernet.EtherType(0x88cc), nil)); v != VerdictDrop {
		t.Errorf("LLDP frame passed: %v", v)
	}
	// A default route whitelist passes any IPv4 source.
	if v := p.Run(ipv4Frame(t, "203.0.113.7", "10.0.0.1")); v != VerdictPass {
		t.Errorf("/0 whitelist dropped: %v", v)
	}
}

func TestSourceIPFilterTruncatedPacketAborts(t *testing.T) {
	p, err := SourceIPFilter("antispoof", []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")})
	if err != nil {
		t.Fatal(err)
	}
	short := ipv4Frame(t, "10.0.0.1", "10.0.0.2")[:20] // cut inside the IP header
	if v := p.Run(short); v != VerdictAborted {
		t.Errorf("truncated packet verdict %v, want aborted (fail closed)", v)
	}
}

func TestRateLimiter(t *testing.T) {
	p, _, err := RateLimiter("limit", 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	var now uint64 = 1 << 40
	p.SetClock(func() uint64 { return now })

	pkt := ipv4Frame(t, "10.0.0.1", "10.0.0.2")
	for i := 0; i < 3; i++ {
		if v := p.Run(pkt); v != VerdictPass {
			t.Fatalf("packet %d verdict %v", i, v)
		}
	}
	for i := 0; i < 5; i++ {
		if v := p.Run(pkt); v != VerdictDrop {
			t.Fatalf("over-limit packet %d verdict %v", i, v)
		}
	}
	// Advance past the window: the limiter must reset.
	now += 2 << 30
	if v := p.Run(pkt); v != VerdictPass {
		t.Errorf("post-window packet verdict %v", v)
	}
}

func TestRateLimiterStats(t *testing.T) {
	p, _, err := RateLimiter("limit", 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	p.SetClock(func() uint64 { return 12345 << 30 })
	pkt := ipv4Frame(t, "10.0.0.1", "10.0.0.2")
	p.Run(pkt)
	p.Run(pkt)
	runs, drops, aborts := p.Stats()
	if runs != 2 || drops != 1 || aborts != 0 {
		t.Errorf("stats = %d/%d/%d", runs, drops, aborts)
	}
}

func TestHashMapCapacity(t *testing.T) {
	m := NewHashMap(2)
	m.Update(1, 10)
	m.Update(2, 20)
	m.Update(3, 30) // over capacity: dropped
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
	if _, ok := m.Lookup(3); ok {
		t.Error("over-capacity insert accepted")
	}
	m.Update(1, 11) // existing key: allowed
	if v, _ := m.Lookup(1); v != 11 {
		t.Errorf("update existing = %d", v)
	}
}

func TestArrayMapBounds(t *testing.T) {
	m := NewArrayMap(2)
	m.Update(5, 1) // out of range: ignored
	if _, ok := m.Lookup(5); ok {
		t.Error("out-of-range lookup succeeded")
	}
	m.Update(1, 42)
	if v, ok := m.Lookup(1); !ok || v != 42 {
		t.Errorf("lookup = %d,%v", v, ok)
	}
}

func TestRuntimeMapIndexAborts(t *testing.T) {
	p, err := Load("badmap", []Insn{
		{Op: OpMovImm, Dst: R4, Imm: 7},
		{Op: OpMov, Dst: R1, Src: R4}, // dynamic index: verifier can't see it
		{Op: OpCall, Imm: HelperMapLookup},
		{Op: OpMovImm, Dst: R0, Imm: uint64(VerdictPass)},
		{Op: OpExit},
	}, []Map{NewArrayMap(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Run(nil); v != VerdictAborted {
		t.Errorf("dynamic bad map index: verdict %v", v)
	}
}
