package ctlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
)

// Deploy bundles the canary/promote/rollback machinery the API's
// /v1/deploy verbs drive: the mirrored revision log plus the deployer
// that pushes a revision to PoPs (§5: "we canary the new configuration
// on a subset of our production fleet").
type Deploy struct {
	Store    *config.Store
	Deployer *config.Deployer
}

// Queries are the read-only platform views unified under /v1/. Any nil
// hook 404s its endpoint.
type Queries struct {
	// Fleet describes PoPs and their interconnections.
	Fleet func() any
	// RIB returns routes at a PoP: table is "experiments" (default) or
	// "adj-in"; prefix optionally filters.
	RIB func(pop, table string, prefix netip.Prefix) (any, error)
	// Health returns the guard ladder report.
	Health func() any
	// Catchment returns the current anycast catchment map (TE runs).
	Catchment func() (any, error)
}

// Server is the control plane's HTTP/JSON surface. Mount on a mux with
// Register; every route lives under /v1/.
type Server struct {
	store   *Store
	rec     *Reconciler
	hub     *Hub
	deploy  *Deploy
	queries Queries
	logf    func(format string, args ...any)

	mRequests *counterVecish
}

// ServerConfig wires a Server.
type ServerConfig struct {
	Store      *Store
	Reconciler *Reconciler
	Hub        *Hub
	Deploy     *Deploy
	Queries    Queries
	Logf       func(format string, args ...any)
}

// NewServer builds the API server.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		store:     cfg.Store,
		rec:       cfg.Reconciler,
		hub:       cfg.Hub,
		deploy:    cfg.Deploy,
		queries:   cfg.Queries,
		logf:      cfg.Logf,
		mRequests: &counterVecish{m: make(map[string]metric)},
	}
}

// Endpoints returns the mounted endpoint list, the /v1/ (and /) index
// payload.
func (s *Server) Endpoints() []string {
	eps := []string{
		"GET  /v1/                               this index",
		"GET  /v1/experiments                    list experiment objects + status",
		"POST /v1/experiments[?dry_run=1]        create (idempotent; dry_run validates only)",
		"GET  /v1/experiments/{name}             one object + convergence status",
		"PATCH /v1/experiments/{name}            CAS update {revision, spec}",
		"DELETE /v1/experiments/{name}[?revision=N]  tombstone + teardown",
		"GET  /v1/status                         reconciler summary",
		"GET  /v1/watch?types=a,b                SSE event stream",
	}
	if s.deploy != nil {
		eps = append(eps,
			"GET  /v1/deploy                         revision log + per-PoP deployment",
			"POST /v1/deploy/canary                  {revision, pops}",
			"POST /v1/deploy/promote                 {revision}",
			"POST /v1/deploy/rollback                {revision}",
		)
	}
	if s.queries.Fleet != nil {
		eps = append(eps, "GET  /v1/fleet                          PoPs and interconnections")
	}
	if s.queries.RIB != nil {
		eps = append(eps, "GET  /v1/rib?pop=P[&table=T][&prefix=X] routes at a PoP")
	}
	if s.queries.Health != nil {
		eps = append(eps, "GET  /v1/health                         guard ladder report")
	}
	if s.queries.Catchment != nil {
		eps = append(eps, "GET  /v1/catchment                      anycast catchment map")
	}
	sort.Strings(eps)
	return eps
}

// Register mounts the API on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/{$}", s.count("index", s.handleIndex))
	mux.HandleFunc("GET /v1/experiments", s.count("list", s.handleList))
	mux.HandleFunc("POST /v1/experiments", s.count("create", s.handleCreate))
	mux.HandleFunc("GET /v1/experiments/{name}", s.count("get", s.handleGet))
	mux.HandleFunc("PATCH /v1/experiments/{name}", s.count("update", s.handleUpdate))
	mux.HandleFunc("DELETE /v1/experiments/{name}", s.count("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/status", s.count("status", s.handleStatus))
	if s.hub != nil {
		mux.Handle("GET /v1/watch", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.mRequests.inc("watch")
			s.hub.ServeHTTP(w, r)
		}))
	}
	if s.deploy != nil {
		mux.HandleFunc("GET /v1/deploy", s.count("deploy-status", s.handleDeployStatus))
		mux.HandleFunc("POST /v1/deploy/canary", s.count("canary", s.handleDeployVerb("canary")))
		mux.HandleFunc("POST /v1/deploy/promote", s.count("promote", s.handleDeployVerb("promote")))
		mux.HandleFunc("POST /v1/deploy/rollback", s.count("rollback", s.handleDeployVerb("rollback")))
	}
	if s.queries.Fleet != nil {
		mux.HandleFunc("GET /v1/fleet", s.count("fleet", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.queries.Fleet())
		}))
	}
	if s.queries.RIB != nil {
		mux.HandleFunc("GET /v1/rib", s.count("rib", s.handleRIB))
	}
	if s.queries.Health != nil {
		mux.HandleFunc("GET /v1/health", s.count("health", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.queries.Health())
		}))
	}
	if s.queries.Catchment != nil {
		mux.HandleFunc("GET /v1/catchment", s.count("catchment", func(w http.ResponseWriter, r *http.Request) {
			v, err := s.queries.Catchment()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, http.StatusOK, v)
		}))
	}
}

// count wraps a handler with the per-endpoint request counter.
func (s *Server) count(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.inc(name)
		h(w, r)
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// statusFor maps store errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrDeleting):
		return http.StatusConflict
	case errors.Is(err, ErrStoreFailed):
		// Fail-closed after a durable-log write error: the daemon must
		// restart and recover before accepting mutations again.
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// objectView is an object plus its convergence status, the shape every
// experiment endpoint returns.
type objectView struct {
	Object Object        `json:"object"`
	Status *ObjectStatus `json:"status,omitempty"`
}

func (s *Server) view(obj Object) objectView {
	v := objectView{Object: obj}
	if s.rec != nil {
		if st, ok := s.rec.ObjectStatusFor(obj.Spec.Name); ok {
			v.Status = &st
		}
	}
	return v
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Service   string   `json:"service"`
		Revision  int64    `json:"revision"`
		Endpoints []string `json:"endpoints"`
	}{"peering-ctlplane", s.store.Revision(), s.Endpoints()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	objs := s.store.List()
	out := make([]objectView, 0, len(objs))
	for _, obj := range objs {
		out = append(out, s.view(obj))
	}
	writeJSON(w, http.StatusOK, struct {
		Revision    int64        `json:"revision"`
		Experiments []objectView `json:"experiments"`
	}{s.store.Revision(), out})
}

// maxBodyBytes bounds request bodies.
const maxBodyBytes = maxSpecBytes + 4096

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("ctlplane: %v", err))
		return nil, false
	}
	return body, true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dryRun := r.FormValue("dry_run") != "" && r.FormValue("dry_run") != "0"
	if s.rec != nil {
		// Platform-level validation (PoPs exist, no allocation clash)
		// runs on every create so errors surface synchronously instead
		// of as reconciler backoff.
		if err := s.rec.act.Validate(spec); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	if dryRun {
		writeJSON(w, http.StatusOK, struct {
			Valid  bool `json:"valid"`
			DryRun bool `json:"dry_run"`
			Spec   Spec `json:"spec"`
		}{true, true, spec})
		return
	}
	obj, created, err := s.store.Create(spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	status := http.StatusOK // idempotent re-POST
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, s.view(obj))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	obj, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(obj))
}

// updateRequest is the PATCH body: the caller's revision (CAS gate) and
// the full replacement spec.
type updateRequest struct {
	Revision int64           `json:"revision"`
	Spec     json.RawMessage `json:"spec"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req updateRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: bad update request: %v", err))
		return
	}
	if req.Revision == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: update requires the current revision (CAS)"))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: update requires a spec"))
		return
	}
	spec, err := DecodeSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.rec != nil {
		if err := s.rec.act.Validate(spec); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	obj, err := s.store.Update(name, req.Revision, spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(obj))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var rev int64
	if raw := r.FormValue("revision"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: bad revision: %v", err))
			return
		}
		rev = n
	}
	obj, err := s.store.Delete(name, rev)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(obj))
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	var statuses []ObjectStatus
	if s.rec != nil {
		statuses = s.rec.Status()
	}
	writeJSON(w, http.StatusOK, struct {
		Revision    int64          `json:"revision"`
		Subscribers int            `json:"watch_subscribers"`
		Objects     []ObjectStatus `json:"objects"`
	}{s.store.Revision(), s.subscribers(), statuses})
}

func (s *Server) subscribers() int {
	if s.hub == nil {
		return 0
	}
	return s.hub.Subscribers()
}

func (s *Server) handleRIB(w http.ResponseWriter, r *http.Request) {
	pop := r.FormValue("pop")
	if pop == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: want pop=NAME"))
		return
	}
	table := r.FormValue("table")
	if table == "" {
		table = "experiments"
	}
	var prefix netip.Prefix
	if raw := r.FormValue("prefix"); raw != "" {
		p, err := netip.ParsePrefix(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: bad prefix: %v", err))
			return
		}
		prefix = p
	}
	v, err := s.queries.RIB(pop, table, prefix)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// deployRequest is the body of the deploy verbs.
type deployRequest struct {
	Revision int      `json:"revision"`
	PoPs     []string `json:"pops,omitempty"`
}

func (s *Server) handleDeployVerb(verb string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var req deployRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: bad deploy request: %v", err))
			return
		}
		if req.Revision <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: deploy requires a positive revision"))
			return
		}
		var err error
		result := map[string]any{"verb": verb, "revision": req.Revision}
		switch verb {
		case "canary":
			if len(req.PoPs) == 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("ctlplane: canary requires pops"))
				return
			}
			err = s.deploy.Deployer.Canary(req.Revision, req.PoPs)
			result["pops"] = req.PoPs
		case "promote":
			err = s.deploy.Deployer.Promote(req.Revision)
		case "rollback":
			var newRev int
			newRev, err = s.deploy.Store.Rollback(req.Revision)
			result["new_revision"] = newRev
		}
		if err != nil {
			// A failed canary/promote leaves a partial rollout; surface
			// the per-PoP truth alongside the error.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":    err.Error(),
				"verb":     verb,
				"revision": req.Revision,
				"deployed": s.deploy.Deployer.Deployed(),
			})
			return
		}
		deployed := s.deploy.Deployer.Deployed()
		result["deployed"] = deployed
		newRev, _ := result["new_revision"].(int)
		s.store.LogDeploy(verb, req.Revision, req.PoPs, newRev, deployed)
		if s.hub != nil {
			s.hub.Publish(StreamDeploy, result)
		}
		writeJSON(w, http.StatusOK, result)
	}
}

func (s *Server) handleDeployStatus(w http.ResponseWriter, _ *http.Request) {
	_, latest := s.deploy.Store.Latest()
	writeJSON(w, http.StatusOK, struct {
		Latest   int            `json:"latest_revision"`
		Notes    map[int]string `json:"notes"`
		Deployed map[string]int `json:"deployed"`
	}{latest, s.deploy.Store.Notes(), s.deploy.Deployer.Deployed()})
}
