package ctlplane

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
)

// Store errors, mapped to HTTP statuses by the API layer.
var (
	// ErrNotFound: no object with that name.
	ErrNotFound = errors.New("ctlplane: no such experiment")
	// ErrConflict: the caller's revision is stale (CAS failure) or a
	// create collided with a different existing spec.
	ErrConflict = errors.New("ctlplane: revision conflict")
	// ErrDeleting: the object is being torn down and cannot be updated.
	ErrDeleting = errors.New("ctlplane: experiment is being deleted")
	// ErrStoreFailed: a durable-log write failed; the store fails closed
	// (read-only) until the daemon restarts and recovers from disk.
	ErrStoreFailed = errors.New("ctlplane: desired-state log write failed; store is read-only until restart")
)

// Object is one stored experiment: its desired spec plus the
// versioning metadata the CAS protocol needs.
type Object struct {
	Spec Spec `json:"spec"`
	// Revision increments on every accepted change to this object. The
	// counter is store-global, so revisions also totally order changes
	// across objects.
	Revision int64 `json:"revision"`
	// CreatedAt / UpdatedAt are wall-clock bookkeeping.
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
	// Deleting marks a tombstone: the reconciler is withdrawing the
	// experiment's state; the object disappears when teardown finishes.
	Deleting bool `json:"deleting,omitempty"`
	// ConfigRev is the revision this change produced in the mirrored
	// config.Store (0 when the store runs unmirrored).
	ConfigRev int `json:"config_rev,omitempty"`
}

// ChangeKind classifies a store commit for watchers.
type ChangeKind string

// Change kinds.
const (
	ChangeCreated ChangeKind = "created"
	ChangeUpdated ChangeKind = "updated"
	ChangeDeleted ChangeKind = "deleted" // tombstoned; teardown pending
	ChangeRemoved ChangeKind = "removed" // teardown finished, object gone
)

// Change is one committed store mutation.
type Change struct {
	Kind     ChangeKind `json:"kind"`
	Name     string     `json:"name"`
	Revision int64      `json:"revision"`
}

// Store is the versioned desired-state database behind the API: named
// experiment objects with per-object revisions and optimistic
// concurrency. It extends internal/config's revision-log model — every
// accepted commit also renders the full desired state into a
// config.Model revision in the mirrored config.Store, so the existing
// canary/promote/rollback machinery (config.Deployer) operates on
// exactly the state the reconciler converges.
type Store struct {
	mu      sync.Mutex
	objects map[string]*Object
	nextRev int64

	// cfg is the mirrored config revision log (nil = unmirrored).
	cfg *config.Store
	// base supplies the non-experiment half of the mirrored model
	// (platform ASN, PoP specs); nil mirrors experiments only.
	base func() config.Model

	// onCommit pokes the reconciler (set once, before use).
	onCommit func()
	// onChange publishes store transitions to the watch hub.
	onChange func(Change)

	// wal, when set, makes every commit durable before it is
	// acknowledged; walErr fails the store closed after a log-write
	// failure (the raced commit becomes an orphan that the recovery
	// reconciliation pass tears down on restart).
	wal    *WAL
	walErr error
	// acts mirrors the last-known actuation fingerprints (LogAct), and
	// deployed the per-PoP deploy map (LogDeploy) — both are snapshotted
	// at compaction so recovery starts with exact knowledge.
	acts     map[AnnKey]string
	deployed map[string]int
	// crashHook, when set, fires at the seeded chaos injection points
	// around the WAL write ("pre-wal-write", "post-wal-pre-actuate").
	// Test-only; nil in production.
	crashHook func(point string)

	mCommits  metric
	mObjects  gaugeMetric
	mConflict metric
}

// StoreConfig configures a Store.
type StoreConfig struct {
	// Config, when set, receives a rendered Model revision per commit.
	Config *config.Store
	// BaseModel supplies PlatformASN/GlobalPool/PoPs for the mirror.
	BaseModel func() config.Model
	// CrashHook fires at the seeded crash-injection points around the
	// durable write. Test-only; leave nil in production.
	CrashHook func(point string)
}

// NewStore creates an empty, in-memory desired-state store. Use
// RecoverStore for one backed by a durable state directory.
func NewStore(cfg StoreConfig) *Store {
	s := &Store{
		objects:   make(map[string]*Object),
		cfg:       cfg.Config,
		base:      cfg.BaseModel,
		acts:      make(map[AnnKey]string),
		crashHook: cfg.CrashHook,
	}
	s.mCommits = counter("ctlplane_store_commits_total")
	s.mObjects = gauge("ctlplane_objects")
	s.mConflict = counter("ctlplane_store_conflicts_total")
	return s
}

// RecoverStore opens the durable desired-state log in dir, replays
// snapshot + WAL, and returns a store resuming exactly where the last
// process stopped: objects with their revisions, the mirrored config
// revision log with its commit notes, and the recovered actuation
// fingerprints (for budget-free re-adoption). The mirrored config
// store must be empty — recovery reproduces its revision numbering.
func RecoverStore(cfg StoreConfig, dir string) (*Store, *WAL, *RecoveredState, error) {
	wal, rec, err := OpenWAL(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	s := NewStore(cfg)
	if rec != nil {
		if s.cfg != nil {
			if _, latest := s.cfg.Latest(); latest != 0 {
				wal.Close()
				return nil, nil, nil, fmt.Errorf("ctlplane: mirrored config store already has %d revisions; recovery needs an empty one", latest)
			}
			for i, cr := range rec.Config {
				if _, err := s.cfg.PutNoted(cr.Model, cr.Note); err != nil {
					wal.Close()
					return nil, nil, nil, fmt.Errorf("ctlplane: recovering config revision %d: %w", i+1, err)
				}
			}
		}
		s.nextRev = rec.NextRev
		for i := range rec.Objects {
			obj := rec.Objects[i]
			obj.Spec = obj.Spec.Clone()
			s.objects[obj.Spec.Name] = &obj
		}
		for key, fp := range rec.Acts {
			s.acts[key] = fp
		}
		if len(rec.Deployed) > 0 {
			s.deployed = make(map[string]int, len(rec.Deployed))
			for pop, rev := range rec.Deployed {
				s.deployed[pop] = rev
			}
		}
		s.mObjects.Set(int64(len(s.objects)))
	}
	s.wal = wal
	wal.snapshot = s.walSnapshotLocked
	return s, wal, rec, nil
}

// walSnapshotLocked builds the compaction checkpoint. Called by the WAL
// with s.mu already held (compaction runs inside commitLocked).
func (s *Store) walSnapshotLocked() walSnapshot {
	snap := walSnapshot{NextRev: s.nextRev}
	names := make([]string, 0, len(s.objects))
	for name := range s.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Objects = append(snap.Objects, *s.objects[name])
	}
	if s.cfg != nil {
		notes := s.cfg.Notes()
		for i, m := range s.cfg.Revisions() {
			snap.Config = append(snap.Config, ConfigRev{Model: m, Note: notes[i+1]})
		}
	}
	if len(s.deployed) > 0 {
		snap.Deployed = make(map[string]int, len(s.deployed))
		for pop, rev := range s.deployed {
			snap.Deployed[pop] = rev
		}
	}
	keys := make([]AnnKey, 0, len(s.acts))
	for key := range s.acts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, key := range keys {
		snap.Acts = append(snap.Acts, walAct{
			Op: "announce", Experiment: key.Experiment, PoP: key.PoP,
			Prefix: key.Prefix.String(), Version: key.Version, Fp: s.acts[key],
		})
	}
	return snap
}

// Close closes the durable log, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	wal := s.wal
	s.mu.Unlock()
	if wal == nil {
		return nil
	}
	return wal.Close()
}

// failedLocked reports the fail-closed state after a WAL write error.
func (s *Store) failedLocked() error {
	if s.walErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrStoreFailed, s.walErr)
}

// OnCommit registers the reconciler wake-up hook.
func (s *Store) OnCommit(fn func()) { s.onCommit = fn }

// OnChange registers the watch-hub publication hook.
func (s *Store) OnChange(fn func(Change)) { s.onChange = fn }

// commitLocked finalizes a mutation: bumps the global revision counter,
// mirrors the model, appends the durable commit record (fsynced before
// the commit is acknowledged), and schedules notifications. Caller
// holds s.mu and must fire the returned function after unlocking.
func (s *Store) commitLocked(obj *Object, name string, kind ChangeKind) func() {
	s.nextRev++
	rev := s.nextRev
	if obj != nil {
		obj.Revision = rev
		obj.UpdatedAt = time.Now()
	}
	var model *config.Model
	note := ""
	if s.cfg != nil {
		m := s.renderLocked()
		note = fmt.Sprintf("%s %s @%d", kind, name, rev)
		if cfgRev, err := s.cfg.PutNoted(m, note); err == nil {
			if obj != nil {
				obj.ConfigRev = cfgRev
			}
			model = &m
		}
	}
	if s.wal != nil {
		if s.crashHook != nil {
			s.crashHook("pre-wal-write")
		}
		recObj := obj
		if kind == ChangeRemoved {
			recObj = nil
			for key := range s.acts {
				if key.Experiment == name {
					delete(s.acts, key)
				}
			}
		}
		if err := s.wal.append(walTypeCommit, walCommit{
			Kind: kind, Name: name, Revision: rev,
			Object: recObj, Model: model, Note: note,
		}); err != nil {
			// Fail closed: this commit raced the log (its actuation will
			// surface as an orphan after restart) and no further
			// mutations are accepted.
			s.walErr = err
		}
		if s.crashHook != nil {
			s.crashHook("post-wal-pre-actuate")
		}
		if s.walErr == nil && s.wal.needsCompact() {
			if err := s.wal.Compact(); err != nil {
				s.walErr = err
			}
		}
	}
	s.mCommits.Inc()
	s.mObjects.Set(int64(len(s.objects)))
	change := Change{Kind: kind, Name: name, Revision: rev}
	onCommit, onChange := s.onCommit, s.onChange
	return func() {
		if onChange != nil {
			onChange(change)
		}
		if onCommit != nil {
			onCommit()
		}
	}
}

// renderLocked builds the mirrored config.Model from the live objects.
func (s *Store) renderLocked() config.Model {
	var m config.Model
	if s.base != nil {
		m = s.base()
	}
	names := make([]string, 0, len(s.objects))
	for name, obj := range s.objects {
		if !obj.Deleting {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		spec := s.objects[name].Spec
		prefixes := make([]netip.Prefix, 0, len(spec.Prefixes))
		for _, raw := range spec.Prefixes {
			prefixes = append(prefixes, netip.MustParsePrefix(raw))
		}
		m.Experiments = append(m.Experiments, config.ExperimentSpec{
			Name:     spec.Name,
			Owner:    spec.Owner,
			ASNs:     []uint32{spec.ASN},
			Prefixes: prefixes,
			Caps:     CapsFor(spec),
			Approved: true,
		})
	}
	return m
}

// Create stores a new experiment. Re-creating an identical spec is an
// idempotent no-op returning the existing object (created=false); a
// name collision with a different spec is ErrConflict.
func (s *Store) Create(spec Spec) (Object, bool, error) {
	if err := spec.Validate(); err != nil {
		return Object{}, false, err
	}
	s.mu.Lock()
	if err := s.failedLocked(); err != nil {
		s.mu.Unlock()
		return Object{}, false, err
	}
	if existing, ok := s.objects[spec.Name]; ok {
		defer s.mu.Unlock()
		if existing.Deleting {
			return Object{}, false, fmt.Errorf("%w (recreate after teardown finishes)", ErrDeleting)
		}
		if existing.Spec.Equal(spec) {
			return *existing, false, nil
		}
		s.mConflict.Inc()
		return Object{}, false, fmt.Errorf("%w: experiment %s exists at revision %d with a different spec",
			ErrConflict, spec.Name, existing.Revision)
	}
	obj := &Object{Spec: spec.Clone(), CreatedAt: time.Now()}
	s.objects[spec.Name] = obj
	notify := s.commitLocked(obj, spec.Name, ChangeCreated)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, true, nil
}

// Update replaces an object's spec, gated on the caller's revision
// (CAS). An identical spec at the current revision is a no-op. The
// spec's name must match the stored object.
func (s *Store) Update(name string, rev int64, spec Spec) (Object, error) {
	if err := spec.Validate(); err != nil {
		return Object{}, err
	}
	if spec.Name != name {
		return Object{}, fmt.Errorf("ctlplane: spec name %q does not match object %q", spec.Name, name)
	}
	s.mu.Lock()
	if err := s.failedLocked(); err != nil {
		s.mu.Unlock()
		return Object{}, err
	}
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if obj.Deleting {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrDeleting, name)
	}
	if obj.Revision != rev {
		s.mConflict.Inc()
		cur := *obj
		s.mu.Unlock()
		return cur, fmt.Errorf("%w: experiment %s is at revision %d, not %d",
			ErrConflict, name, cur.Revision, rev)
	}
	if obj.Spec.Equal(spec) {
		out := *obj
		s.mu.Unlock()
		return out, nil
	}
	obj.Spec = spec.Clone()
	notify := s.commitLocked(obj, name, ChangeUpdated)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, nil
}

// Delete tombstones an object for teardown. rev 0 deletes
// unconditionally; otherwise the revision is CAS-checked. The object
// remains visible (Deleting=true) until the reconciler calls Remove.
func (s *Store) Delete(name string, rev int64) (Object, error) {
	s.mu.Lock()
	if err := s.failedLocked(); err != nil {
		s.mu.Unlock()
		return Object{}, err
	}
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if obj.Deleting {
		out := *obj
		s.mu.Unlock()
		return out, nil // idempotent
	}
	if rev != 0 && obj.Revision != rev {
		s.mConflict.Inc()
		cur := *obj
		s.mu.Unlock()
		return cur, fmt.Errorf("%w: experiment %s is at revision %d, not %d",
			ErrConflict, name, cur.Revision, rev)
	}
	obj.Deleting = true
	notify := s.commitLocked(obj, name, ChangeDeleted)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, nil
}

// Remove drops a tombstoned object once the reconciler has finished
// tearing it down. Removing a live or unknown object is an error — the
// reconciler only calls this after Delete.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	if err := s.failedLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if !obj.Deleting {
		s.mu.Unlock()
		return fmt.Errorf("ctlplane: experiment %s is not marked for deletion", name)
	}
	delete(s.objects, name)
	notify := s.commitLocked(nil, name, ChangeRemoved)
	s.mu.Unlock()
	notify()
	return nil
}

// Get returns one object.
func (s *Store) Get(name string) (Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[name]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return *obj, nil
}

// List returns every object sorted by name.
func (s *Store) List() []Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Object, 0, len(s.objects))
	for _, obj := range s.objects {
		out = append(out, *obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// LogAct records one successful actuation in the durable log: op is
// "announce" (fp is the fingerprint installed) or "withdraw". The
// reconciler calls it after each actuator mutation so a restarted
// daemon knows exactly what was sent and can re-adopt matching
// installs without re-announcing (budget-free recovery). Best-effort:
// an append failure fails the store closed like any other WAL error.
func (s *Store) LogAct(op string, key AnnKey, fp string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op == "announce" {
		s.acts[key] = fp
	} else {
		delete(s.acts, key)
	}
	if s.wal == nil || s.walErr != nil {
		return
	}
	if err := s.wal.append(walTypeAct, walAct{
		Op: op, Experiment: key.Experiment, PoP: key.PoP,
		Prefix: key.Prefix.String(), Version: key.Version, Fp: fp,
	}); err != nil {
		s.walErr = err
	}
}

// LogDeploy records one deploy-plane operation (canary / promote /
// rollback) with the resulting per-PoP deployed map, so deploy state
// survives a restart alongside the specs it rolls out.
func (s *Store) LogDeploy(verb string, rev int, pops []string, newRev int, deployed map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(deployed) > 0 {
		if s.deployed == nil {
			s.deployed = make(map[string]int, len(deployed))
		}
		for pop, r := range deployed {
			s.deployed[pop] = r
		}
	}
	if s.wal == nil || s.walErr != nil {
		return
	}
	if err := s.wal.append(walTypeDeploy, walDeploy{
		Verb: verb, Revision: rev, PoPs: pops,
		NewRevision: newRev, Deployed: deployed,
	}); err != nil {
		s.walErr = err
	}
}

// Revision returns the store's global revision counter (the revision of
// the most recent commit).
func (s *Store) Revision() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRev
}
