package ctlplane

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
)

// Store errors, mapped to HTTP statuses by the API layer.
var (
	// ErrNotFound: no object with that name.
	ErrNotFound = errors.New("ctlplane: no such experiment")
	// ErrConflict: the caller's revision is stale (CAS failure) or a
	// create collided with a different existing spec.
	ErrConflict = errors.New("ctlplane: revision conflict")
	// ErrDeleting: the object is being torn down and cannot be updated.
	ErrDeleting = errors.New("ctlplane: experiment is being deleted")
)

// Object is one stored experiment: its desired spec plus the
// versioning metadata the CAS protocol needs.
type Object struct {
	Spec Spec `json:"spec"`
	// Revision increments on every accepted change to this object. The
	// counter is store-global, so revisions also totally order changes
	// across objects.
	Revision int64 `json:"revision"`
	// CreatedAt / UpdatedAt are wall-clock bookkeeping.
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
	// Deleting marks a tombstone: the reconciler is withdrawing the
	// experiment's state; the object disappears when teardown finishes.
	Deleting bool `json:"deleting,omitempty"`
	// ConfigRev is the revision this change produced in the mirrored
	// config.Store (0 when the store runs unmirrored).
	ConfigRev int `json:"config_rev,omitempty"`
}

// ChangeKind classifies a store commit for watchers.
type ChangeKind string

// Change kinds.
const (
	ChangeCreated ChangeKind = "created"
	ChangeUpdated ChangeKind = "updated"
	ChangeDeleted ChangeKind = "deleted" // tombstoned; teardown pending
	ChangeRemoved ChangeKind = "removed" // teardown finished, object gone
)

// Change is one committed store mutation.
type Change struct {
	Kind     ChangeKind `json:"kind"`
	Name     string     `json:"name"`
	Revision int64      `json:"revision"`
}

// Store is the versioned desired-state database behind the API: named
// experiment objects with per-object revisions and optimistic
// concurrency. It extends internal/config's revision-log model — every
// accepted commit also renders the full desired state into a
// config.Model revision in the mirrored config.Store, so the existing
// canary/promote/rollback machinery (config.Deployer) operates on
// exactly the state the reconciler converges.
type Store struct {
	mu      sync.Mutex
	objects map[string]*Object
	nextRev int64

	// cfg is the mirrored config revision log (nil = unmirrored).
	cfg *config.Store
	// base supplies the non-experiment half of the mirrored model
	// (platform ASN, PoP specs); nil mirrors experiments only.
	base func() config.Model

	// onCommit pokes the reconciler (set once, before use).
	onCommit func()
	// onChange publishes store transitions to the watch hub.
	onChange func(Change)

	mCommits  metric
	mObjects  gaugeMetric
	mConflict metric
}

// StoreConfig configures a Store.
type StoreConfig struct {
	// Config, when set, receives a rendered Model revision per commit.
	Config *config.Store
	// BaseModel supplies PlatformASN/GlobalPool/PoPs for the mirror.
	BaseModel func() config.Model
}

// NewStore creates an empty desired-state store.
func NewStore(cfg StoreConfig) *Store {
	s := &Store{
		objects: make(map[string]*Object),
		cfg:     cfg.Config,
		base:    cfg.BaseModel,
	}
	s.mCommits = counter("ctlplane_store_commits_total")
	s.mObjects = gauge("ctlplane_objects")
	s.mConflict = counter("ctlplane_store_conflicts_total")
	return s
}

// OnCommit registers the reconciler wake-up hook.
func (s *Store) OnCommit(fn func()) { s.onCommit = fn }

// OnChange registers the watch-hub publication hook.
func (s *Store) OnChange(fn func(Change)) { s.onChange = fn }

// commitLocked finalizes a mutation: bumps the global revision counter,
// mirrors the model, and schedules notifications. Caller holds s.mu and
// must fire the returned function after unlocking.
func (s *Store) commitLocked(obj *Object, name string, kind ChangeKind) func() {
	s.nextRev++
	rev := s.nextRev
	if obj != nil {
		obj.Revision = rev
		obj.UpdatedAt = time.Now()
	}
	if s.cfg != nil {
		m := s.renderLocked()
		note := fmt.Sprintf("%s %s @%d", kind, name, rev)
		if cfgRev, err := s.cfg.PutNoted(m, note); err == nil && obj != nil {
			obj.ConfigRev = cfgRev
		}
	}
	s.mCommits.Inc()
	s.mObjects.Set(int64(len(s.objects)))
	change := Change{Kind: kind, Name: name, Revision: rev}
	onCommit, onChange := s.onCommit, s.onChange
	return func() {
		if onChange != nil {
			onChange(change)
		}
		if onCommit != nil {
			onCommit()
		}
	}
}

// renderLocked builds the mirrored config.Model from the live objects.
func (s *Store) renderLocked() config.Model {
	var m config.Model
	if s.base != nil {
		m = s.base()
	}
	names := make([]string, 0, len(s.objects))
	for name, obj := range s.objects {
		if !obj.Deleting {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		spec := s.objects[name].Spec
		prefixes := make([]netip.Prefix, 0, len(spec.Prefixes))
		for _, raw := range spec.Prefixes {
			prefixes = append(prefixes, netip.MustParsePrefix(raw))
		}
		m.Experiments = append(m.Experiments, config.ExperimentSpec{
			Name:     spec.Name,
			Owner:    spec.Owner,
			ASNs:     []uint32{spec.ASN},
			Prefixes: prefixes,
			Caps:     CapsFor(spec),
			Approved: true,
		})
	}
	return m
}

// Create stores a new experiment. Re-creating an identical spec is an
// idempotent no-op returning the existing object (created=false); a
// name collision with a different spec is ErrConflict.
func (s *Store) Create(spec Spec) (Object, bool, error) {
	if err := spec.Validate(); err != nil {
		return Object{}, false, err
	}
	s.mu.Lock()
	if existing, ok := s.objects[spec.Name]; ok {
		defer s.mu.Unlock()
		if existing.Deleting {
			return Object{}, false, fmt.Errorf("%w (recreate after teardown finishes)", ErrDeleting)
		}
		if existing.Spec.Equal(spec) {
			return *existing, false, nil
		}
		s.mConflict.Inc()
		return Object{}, false, fmt.Errorf("%w: experiment %s exists at revision %d with a different spec",
			ErrConflict, spec.Name, existing.Revision)
	}
	obj := &Object{Spec: spec.Clone(), CreatedAt: time.Now()}
	s.objects[spec.Name] = obj
	notify := s.commitLocked(obj, spec.Name, ChangeCreated)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, true, nil
}

// Update replaces an object's spec, gated on the caller's revision
// (CAS). An identical spec at the current revision is a no-op. The
// spec's name must match the stored object.
func (s *Store) Update(name string, rev int64, spec Spec) (Object, error) {
	if err := spec.Validate(); err != nil {
		return Object{}, err
	}
	if spec.Name != name {
		return Object{}, fmt.Errorf("ctlplane: spec name %q does not match object %q", spec.Name, name)
	}
	s.mu.Lock()
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if obj.Deleting {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrDeleting, name)
	}
	if obj.Revision != rev {
		s.mConflict.Inc()
		cur := *obj
		s.mu.Unlock()
		return cur, fmt.Errorf("%w: experiment %s is at revision %d, not %d",
			ErrConflict, name, cur.Revision, rev)
	}
	if obj.Spec.Equal(spec) {
		out := *obj
		s.mu.Unlock()
		return out, nil
	}
	obj.Spec = spec.Clone()
	notify := s.commitLocked(obj, name, ChangeUpdated)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, nil
}

// Delete tombstones an object for teardown. rev 0 deletes
// unconditionally; otherwise the revision is CAS-checked. The object
// remains visible (Deleting=true) until the reconciler calls Remove.
func (s *Store) Delete(name string, rev int64) (Object, error) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if obj.Deleting {
		out := *obj
		s.mu.Unlock()
		return out, nil // idempotent
	}
	if rev != 0 && obj.Revision != rev {
		s.mConflict.Inc()
		cur := *obj
		s.mu.Unlock()
		return cur, fmt.Errorf("%w: experiment %s is at revision %d, not %d",
			ErrConflict, name, cur.Revision, rev)
	}
	obj.Deleting = true
	notify := s.commitLocked(obj, name, ChangeDeleted)
	out := *obj
	s.mu.Unlock()
	notify()
	return out, nil
}

// Remove drops a tombstoned object once the reconciler has finished
// tearing it down. Removing a live or unknown object is an error — the
// reconciler only calls this after Delete.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	obj, ok := s.objects[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if !obj.Deleting {
		s.mu.Unlock()
		return fmt.Errorf("ctlplane: experiment %s is not marked for deletion", name)
	}
	delete(s.objects, name)
	notify := s.commitLocked(nil, name, ChangeRemoved)
	s.mu.Unlock()
	notify()
	return nil
}

// Get returns one object.
func (s *Store) Get(name string) (Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[name]
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return *obj, nil
}

// List returns every object sorted by name.
func (s *Store) List() []Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Object, 0, len(s.objects))
	for _, obj := range s.objects {
		out = append(out, *obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Revision returns the store's global revision counter (the revision of
// the most recent commit).
func (s *Store) Revision() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRev
}
