package ctlplane

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// fakeActuator simulates the platform: actuations mutate its state
// synchronously unless installDelay holds routes back (modelling the
// asynchronous session→RIB pipeline), and any method can be forced to
// fail to drive the error/backoff paths.
type fakeActuator struct {
	mu       sync.Mutex
	sessions map[SessKey]bool
	anns     map[AnnKey]string
	ensured  map[string]int

	calls map[string]int
	fail  map[string]error // method name -> forced error

	// pendingAnns holds announced routes out of Observed() until
	// released, simulating slow RIB install.
	holdInstall bool
	pendingAnns map[AnnKey]string

	// adoptable marks fingerprint-unknown routes (anns[key] == "") that
	// Adopt should accept, simulating a recovered install whose
	// attributes still match the spec.
	adoptable map[AnnKey]bool

	// rejections drained by the reconciler's RejectionSource poll.
	rejections []Rejection
	// shedding marks PoPs reporting overload shed.
	shedding map[string]bool
}

func (f *fakeActuator) Rejections(since time.Time) []Rejection {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Rejection, 0, len(f.rejections))
	for _, rej := range f.rejections {
		if rej.At.After(since) {
			out = append(out, rej)
		}
	}
	return out
}

func (f *fakeActuator) Shedding(pop string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shedding[pop]
}

func newFakeActuator() *fakeActuator {
	return &fakeActuator{
		sessions:    make(map[SessKey]bool),
		anns:        make(map[AnnKey]string),
		ensured:     make(map[string]int),
		calls:       make(map[string]int),
		fail:        make(map[string]error),
		pendingAnns: make(map[AnnKey]string),
		adoptable:   make(map[AnnKey]bool),
		shedding:    make(map[string]bool),
	}
}

func (f *fakeActuator) called(name string) error {
	f.calls[name]++
	return f.fail[name]
}

func (f *fakeActuator) count(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[name]
}

func (f *fakeActuator) Validate(spec Spec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.called("validate")
}

func (f *fakeActuator) EnsureExperiment(spec Spec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("ensure-experiment"); err != nil {
		return err
	}
	f.ensured[spec.Name]++
	return nil
}

func (f *fakeActuator) EnsureSession(spec Spec, pop string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("ensure-session"); err != nil {
		return err
	}
	f.sessions[SessKey{spec.Name, pop}] = true
	return nil
}

func (f *fakeActuator) Announce(spec Spec, ann CompiledAnn) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("announce"); err != nil {
		return err
	}
	if f.holdInstall {
		f.pendingAnns[ann.Key] = ann.Fingerprint()
	} else {
		f.anns[ann.Key] = ann.Fingerprint()
	}
	return nil
}

func (f *fakeActuator) Adopt(spec Spec, ann CompiledAnn) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("adopt"); err != nil {
		return err
	}
	cur, ok := f.anns[ann.Key]
	if !ok {
		return fmt.Errorf("adopt %s: not installed", ann.Key)
	}
	// The fake models fingerprint-unknown recovered routes as "": an
	// adoptable route either matches the desired fingerprint already or
	// was seeded by the test as adoptable via adoptable[key].
	if cur != "" && cur != ann.Fingerprint() {
		return ErrAdoptMismatch
	}
	if cur == "" && !f.adoptable[ann.Key] {
		return ErrAdoptMismatch
	}
	f.anns[ann.Key] = ann.Fingerprint()
	return nil
}

func (f *fakeActuator) Withdraw(experiment, pop string, prefix netip.Prefix, version uint32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("withdraw"); err != nil {
		return err
	}
	delete(f.anns, AnnKey{experiment, pop, prefix, version})
	return nil
}

func (f *fakeActuator) CloseSession(experiment, pop string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("close-session"); err != nil {
		return err
	}
	delete(f.sessions, SessKey{experiment, pop})
	return nil
}

func (f *fakeActuator) Teardown(experiment string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("teardown"); err != nil {
		return err
	}
	for k := range f.sessions {
		if k.Experiment == experiment {
			delete(f.sessions, k)
		}
	}
	for k := range f.anns {
		if k.Experiment == experiment {
			delete(f.anns, k)
		}
	}
	delete(f.ensured, experiment)
	return nil
}

func (f *fakeActuator) Observed() (Observed, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.called("observed"); err != nil {
		return Observed{}, err
	}
	obs := Observed{Sessions: make(map[SessKey]bool), Anns: make(map[AnnKey]string)}
	for k, v := range f.sessions {
		obs.Sessions[k] = v
	}
	for k, v := range f.anns {
		obs.Anns[k] = v
	}
	return obs, nil
}

// releaseInstalls flushes held announcements into the observable RIB.
func (f *fakeActuator) releaseInstalls() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range f.pendingAnns {
		f.anns[k] = v
	}
	f.pendingAnns = make(map[AnnKey]string)
}

func (f *fakeActuator) setFail(method string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.fail, method)
	} else {
		f.fail[method] = err
	}
}

func testReconciler(t *testing.T, act Actuator, hub *Hub) (*Store, *Reconciler) {
	t.Helper()
	store := NewStore(StoreConfig{})
	rec := NewReconciler(store, act, hub, ReconcilerConfig{
		Resync:         5 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		ActuationGrace: 100 * time.Millisecond,
		Logf:           t.Logf,
	})
	go rec.Run()
	t.Cleanup(rec.Close)
	return store, rec
}

func waitPhase(t *testing.T, rec *Reconciler, name string, phase Phase) ObjectStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := rec.ObjectStatusFor(name); ok && st.Phase == phase {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := rec.ObjectStatusFor(name)
	t.Fatalf("experiment %s never reached %s (last: %+v)", name, phase, st)
	return ObjectStatus{}
}

func waitGone(t *testing.T, store *Store, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := store.Get(name); err != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("experiment %s never removed from store", name)
}

func TestReconcilerConverges(t *testing.T) {
	act := newFakeActuator()
	store, rec := testReconciler(t, act, nil)

	spec := testSpec("alpha")
	spec.Announcements[0].PoPs = []string{"seattle", "amsterdam"}
	obj, _, err := store.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	st := waitPhase(t, rec, "alpha", PhaseConverged)
	if st.ConvergedRevision != obj.Revision {
		t.Fatalf("converged revision = %d, want %d", st.ConvergedRevision, obj.Revision)
	}
	act.mu.Lock()
	sessions, anns := len(act.sessions), len(act.anns)
	act.mu.Unlock()
	if sessions != 2 || anns != 2 {
		t.Fatalf("actuated %d sessions, %d announcements; want 2, 2", sessions, anns)
	}
}

func TestReconcilerIdempotentSteadyState(t *testing.T) {
	act := newFakeActuator()
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)

	base := act.count("announce")
	time.Sleep(50 * time.Millisecond) // many resync passes
	if n := act.count("announce"); n != base {
		t.Fatalf("steady state re-announced: %d -> %d", base, n)
	}
	if n := act.count("ensure-experiment"); n != 1 {
		t.Fatalf("ensure-experiment ran %d times at one revision, want 1", n)
	}
}

func TestReconcilerActuationGrace(t *testing.T) {
	act := newFakeActuator()
	act.mu.Lock()
	act.holdInstall = true // announcements never appear in the RIB...
	act.mu.Unlock()
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))

	// The object stays Converging (install pending) without re-sending
	// the announcement every pass — each re-send would burn §4.7 budget.
	waitPhase(t, rec, "alpha", PhaseConverging)
	time.Sleep(40 * time.Millisecond) // ~8 resync passes inside the grace window
	if n := act.count("announce"); n != 1 {
		t.Fatalf("announce sent %d times within grace window, want 1", n)
	}
	act.releaseInstalls()
	waitPhase(t, rec, "alpha", PhaseConverged)
}

func TestReconcilerSpecUpdateSteers(t *testing.T) {
	act := newFakeActuator()
	store, rec := testReconciler(t, act, nil)
	obj, _, _ := store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)

	// Move the announcement to a different PoP with a prepend: the old
	// atom must be withdrawn, the new one announced, the old session
	// closed.
	next := testSpec("alpha")
	next.Announcements[0].PoPs = []string{"amsterdam"}
	next.Announcements[0].Prepend = 3
	upd, err := store.Update("alpha", obj.Revision, next)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, _ := rec.ObjectStatusFor("alpha")
		if st.ConvergedRevision == upd.Revision {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	act.mu.Lock()
	defer act.mu.Unlock()
	prefix := netip.MustParsePrefix("184.164.224.0/24")
	if _, old := act.anns[AnnKey{"alpha", "seattle", prefix, 0}]; old {
		t.Fatal("stale seattle announcement not withdrawn")
	}
	if _, ok := act.anns[AnnKey{"alpha", "amsterdam", prefix, 0}]; !ok {
		t.Fatal("amsterdam announcement missing")
	}
	if act.sessions[SessKey{"alpha", "seattle"}] {
		t.Fatal("unreferenced seattle session not closed")
	}
}

func TestReconcilerErrorBackoffAndRecovery(t *testing.T) {
	act := newFakeActuator()
	act.setFail("announce", fmt.Errorf("session flap"))
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))

	st := waitPhase(t, rec, "alpha", PhaseError)
	if st.LastError == "" || st.Attempts == 0 || st.NextRetry.IsZero() {
		t.Fatalf("error status incomplete: %+v", st)
	}
	act.setFail("announce", nil)
	st = waitPhase(t, rec, "alpha", PhaseConverged)
	if st.Attempts != 0 || st.LastError != "" {
		t.Fatalf("recovery did not clear error state: %+v", st)
	}
}

func TestReconcilerTeardown(t *testing.T) {
	act := newFakeActuator()
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)

	if _, err := store.Delete("alpha", 0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	waitGone(t, store, "alpha")
	act.mu.Lock()
	defer act.mu.Unlock()
	if len(act.anns) != 0 || len(act.sessions) != 0 {
		t.Fatalf("teardown left state: anns=%v sessions=%v", act.anns, act.sessions)
	}
	if act.calls["teardown"] == 0 {
		t.Fatal("teardown never called")
	}
}

func TestReconcilerPublishesTransitions(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	sub := hub.Subscribe(64, StreamReconcile)
	defer sub.Close()

	act := newFakeActuator()
	store, rec := testReconciler(t, act, hub)
	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)

	seen := make(map[Phase]bool)
	deadline := time.After(2 * time.Second)
	for !seen[PhaseConverged] {
		select {
		case e := <-sub.Events():
			payload, ok := e.Data.(struct {
				Name     string `json:"name"`
				Phase    Phase  `json:"phase"`
				Revision int64  `json:"revision"`
				Error    string `json:"error,omitempty"`
				Reject   string `json:"reject_kind,omitempty"`
			})
			if !ok {
				t.Fatalf("unexpected payload type %T", e.Data)
			}
			seen[payload.Phase] = true
		case <-deadline:
			t.Fatalf("converged transition never streamed; saw %v", seen)
		}
	}
	if !seen[PhaseConverging] {
		t.Fatalf("converging transition not streamed; saw %v", seen)
	}
}
