// Package ctlplane is the platform's reconciling control plane (paper
// §5): operators submit declarative experiment specs over an HTTP/JSON
// API, a versioned desired-state store records them with per-object
// revisions and optimistic concurrency, and a reconciler loop converges
// the fleet — diffing desired against observed platform state and
// actuating the difference through the same audited experiment-client
// knobs a researcher would use. A watch hub multiplexes telemetry,
// reconciler transitions, and health-ladder changes to any number of
// SSE subscribers over non-blocking bounded queues.
//
// The package is deliberately platform-agnostic: it talks to the world
// through the Actuator interface and a handful of query hooks, so the
// reconciler can be unit-tested against a fake and the peering package
// wires the real thing (peering/ctlplane.go).
package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Community is one BGP community in "asn:value" form, both halves
// 16-bit, the shape the policy engine's capability checks expect.
type Community struct {
	ASN   uint16 `json:"asn"`
	Value uint16 `json:"value"`
}

// String renders the conventional colon form.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.ASN, c.Value) }

// ParseCommunity parses "asn:value".
func ParseCommunity(s string) (Community, error) {
	var c Community
	if _, err := fmt.Sscanf(s, "%d:%d", &c.ASN, &c.Value); err != nil {
		return Community{}, fmt.Errorf("ctlplane: bad community %q (want asn:value)", s)
	}
	return c, nil
}

// Announcement is one desired routing intent inside a Spec: announce
// Prefix from every PoP in PoPs, shaped by the steering knobs. The
// (Prefix, Version) pair identifies the announcement; distinct versions
// of the same prefix may target different neighbors (ADD-PATH).
type Announcement struct {
	// Prefix to announce; must be within the spec's allocation.
	Prefix string `json:"prefix"`
	// PoPs the announcement originates from. Must be non-empty.
	PoPs []string `json:"pops"`
	// Version is the ADD-PATH identifier (0 = the default version).
	Version uint32 `json:"version,omitempty"`
	// Prepend adds the experiment ASN this many extra times.
	Prepend int `json:"prepend,omitempty"`
	// Poison inserts these ASNs into the path (needs the capability).
	Poison []uint32 `json:"poison,omitempty"`
	// Communities to attach, "asn:value" strings.
	Communities []string `json:"communities,omitempty"`
	// ToNeighbors whitelists export to these neighbor IDs only.
	ToNeighbors []uint32 `json:"to_neighbors,omitempty"`
	// ExceptNeighbors blacklists export to these neighbor IDs.
	ExceptNeighbors []uint32 `json:"except_neighbors,omitempty"`
}

// Overrides are per-experiment pacing knobs layered over the platform
// defaults.
type Overrides struct {
	// MRAI paces the experiment's own UPDATE stream (Go duration
	// string, e.g. "50ms"). Empty inherits the platform default.
	MRAI string `json:"mrai,omitempty"`
	// DampingHalfLife overrides the flap-damping half-life applied to
	// this experiment's announcements (informational in this
	// reproduction: recorded, validated, surfaced in status).
	DampingHalfLife string `json:"damping_half_life,omitempty"`
}

// Spec is one experiment's desired state, the JSON object the API
// accepts. It is the §5 intent model: what to announce from where, not
// how to get there.
type Spec struct {
	// Name identifies the experiment (DNS-label shaped).
	Name string `json:"name"`
	// Owner is the responsible researcher.
	Owner string `json:"owner"`
	// Plan describes goals (free text; the §4.6 review surface).
	Plan string `json:"plan,omitempty"`
	// ASN the experiment originates from.
	ASN uint32 `json:"asn"`
	// Prefixes allocated to the experiment.
	Prefixes []string `json:"prefixes"`
	// Announcements is the desired routing intent.
	Announcements []Announcement `json:"announcements,omitempty"`
	// Overrides are optional pacing knobs.
	Overrides Overrides `json:"overrides,omitempty"`
}

// specNameRE is the accepted shape of experiment names: they appear in
// URLs, tunnel credentials, and audit lines.
var specNameRE = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$`)

// maxSpecBytes bounds an encoded spec; DecodeSpec rejects larger
// bodies before parsing.
const maxSpecBytes = 1 << 20

// maxPrepend bounds AS-path padding per announcement.
const maxPrepend = 16

// DecodeSpec strictly parses a JSON spec: unknown fields are errors
// (catching typo'd knobs that would otherwise silently no-op) and the
// result is validated.
func DecodeSpec(data []byte) (Spec, error) {
	if len(data) > maxSpecBytes {
		return Spec{}, fmt.Errorf("ctlplane: spec exceeds %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("ctlplane: bad spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("ctlplane: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec's internal consistency without touching the
// platform: name shape, allocation parses and is non-overlapping,
// announcements stay within the allocation, knobs are bounded.
func (s *Spec) Validate() error {
	if !specNameRE.MatchString(s.Name) {
		return fmt.Errorf("ctlplane: bad experiment name %q (want lowercase DNS-label)", s.Name)
	}
	if s.Owner == "" {
		return fmt.Errorf("ctlplane: experiment %s: owner required", s.Name)
	}
	if s.ASN == 0 {
		return fmt.Errorf("ctlplane: experiment %s: asn required", s.Name)
	}
	if len(s.Prefixes) == 0 {
		return fmt.Errorf("ctlplane: experiment %s: at least one prefix required", s.Name)
	}
	alloc := make([]netip.Prefix, 0, len(s.Prefixes))
	for _, raw := range s.Prefixes {
		p, err := netip.ParsePrefix(raw)
		if err != nil {
			return fmt.Errorf("ctlplane: experiment %s: bad prefix %q: %v", s.Name, raw, err)
		}
		if p != p.Masked() {
			return fmt.Errorf("ctlplane: experiment %s: prefix %s has host bits set", s.Name, raw)
		}
		for _, q := range alloc {
			if p.Overlaps(q) {
				return fmt.Errorf("ctlplane: experiment %s: prefixes %s and %s overlap", s.Name, p, q)
			}
		}
		alloc = append(alloc, p)
	}
	within := func(p netip.Prefix) bool {
		for _, a := range alloc {
			if a.Bits() <= p.Bits() && a.Contains(p.Addr()) {
				return true
			}
		}
		return false
	}
	seen := make(map[string]bool)
	for i, a := range s.Announcements {
		p, err := netip.ParsePrefix(a.Prefix)
		if err != nil {
			return fmt.Errorf("ctlplane: experiment %s: announcement %d: bad prefix %q: %v", s.Name, i, a.Prefix, err)
		}
		if !within(p) {
			return fmt.Errorf("ctlplane: experiment %s: announcement %s outside allocation", s.Name, p)
		}
		key := fmt.Sprintf("%s/%d", p, a.Version)
		if seen[key] {
			return fmt.Errorf("ctlplane: experiment %s: duplicate announcement %s version %d", s.Name, p, a.Version)
		}
		seen[key] = true
		if len(a.PoPs) == 0 {
			return fmt.Errorf("ctlplane: experiment %s: announcement %s names no PoPs", s.Name, p)
		}
		pops := make(map[string]bool)
		for _, pop := range a.PoPs {
			if pop == "" {
				return fmt.Errorf("ctlplane: experiment %s: announcement %s: empty PoP name", s.Name, p)
			}
			if pops[pop] {
				return fmt.Errorf("ctlplane: experiment %s: announcement %s: duplicate PoP %s", s.Name, p, pop)
			}
			pops[pop] = true
		}
		if a.Prepend < 0 || a.Prepend > maxPrepend {
			return fmt.Errorf("ctlplane: experiment %s: announcement %s: prepend %d outside 0..%d", s.Name, p, a.Prepend, maxPrepend)
		}
		for _, c := range a.Communities {
			if _, err := ParseCommunity(c); err != nil {
				return fmt.Errorf("ctlplane: experiment %s: announcement %s: %v", s.Name, p, err)
			}
		}
		for _, asn := range a.Poison {
			if asn == 0 {
				return fmt.Errorf("ctlplane: experiment %s: announcement %s: poison ASN 0", s.Name, p)
			}
		}
	}
	if _, err := s.Overrides.mrai(); err != nil {
		return err
	}
	if _, err := s.Overrides.dampingHalfLife(); err != nil {
		return err
	}
	return nil
}

// maxOverride bounds pacing overrides to something a reconciler can
// still converge under.
const maxOverride = 5 * time.Minute

func parseOverride(what, raw string) (time.Duration, error) {
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("ctlplane: bad %s override %q: %v", what, raw, err)
	}
	if d < 0 || d > maxOverride {
		return 0, fmt.Errorf("ctlplane: %s override %s outside 0..%s", what, d, maxOverride)
	}
	return d, nil
}

func (o Overrides) mrai() (time.Duration, error) { return parseOverride("mrai", o.MRAI) }

func (o Overrides) dampingHalfLife() (time.Duration, error) {
	return parseOverride("damping_half_life", o.DampingHalfLife)
}

// ParsedMRAI returns the parsed MRAI override (zero when unset). Call
// only on validated specs.
func (o Overrides) ParsedMRAI() time.Duration { d, _ := o.mrai(); return d }

// ParsedDamping returns the parsed damping half-life override (zero
// when unset). Call only on validated specs.
func (o Overrides) ParsedDamping() time.Duration { d, _ := o.dampingHalfLife(); return d }

// Clone deep-copies the spec so stored objects never alias caller
// slices.
func (s Spec) Clone() Spec {
	out := s
	out.Prefixes = append([]string(nil), s.Prefixes...)
	out.Announcements = make([]Announcement, len(s.Announcements))
	for i, a := range s.Announcements {
		b := a
		b.PoPs = append([]string(nil), a.PoPs...)
		b.Poison = append([]uint32(nil), a.Poison...)
		b.Communities = append([]string(nil), a.Communities...)
		b.ToNeighbors = append([]uint32(nil), a.ToNeighbors...)
		b.ExceptNeighbors = append([]uint32(nil), a.ExceptNeighbors...)
		out.Announcements[i] = b
	}
	return out
}

// Equal reports whether two specs describe identical desired state
// (the no-op test for idempotent re-POSTs).
func (s Spec) Equal(t Spec) bool {
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(t)
	return bytes.Equal(a, b)
}

// AnnKey identifies one actuated announcement platform-wide.
type AnnKey struct {
	Experiment string
	PoP        string
	Prefix     netip.Prefix
	Version    uint32
}

// String renders the key for logs and stream events.
func (k AnnKey) String() string {
	return fmt.Sprintf("%s@%s:%s/v%d", k.Experiment, k.PoP, k.Prefix, k.Version)
}

// SessKey identifies one experiment BGP session.
type SessKey struct {
	Experiment string
	PoP        string
}

// CompiledAnn is one (PoP, Prefix, Version) atom expanded from a
// validated spec, with parsed knobs — what the actuator announces.
type CompiledAnn struct {
	Key             AnnKey
	Prepend         int
	Poison          []uint32
	Communities     []Community
	ToNeighbors     []uint32
	ExceptNeighbors []uint32
}

// Fingerprint is a stable digest of the announcement's knobs: the
// reconciler re-announces when the desired fingerprint differs from
// the actuated one.
func (a CompiledAnn) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prepend=%d", a.Prepend)
	writeU32s := func(tag string, v []uint32) {
		s := append([]uint32(nil), v...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		fmt.Fprintf(&b, " %s=%v", tag, s)
	}
	writeU32s("poison", a.Poison)
	writeU32s("to", a.ToNeighbors)
	writeU32s("except", a.ExceptNeighbors)
	comms := make([]string, len(a.Communities))
	for i, c := range a.Communities {
		comms[i] = c.String()
	}
	sort.Strings(comms)
	fmt.Fprintf(&b, " comms=%v", comms)
	return b.String()
}

// Compile expands a validated spec into its announcement atoms, one per
// (prefix, version, pop), sorted deterministically.
func (s Spec) Compile() []CompiledAnn {
	var out []CompiledAnn
	for _, a := range s.Announcements {
		prefix := netip.MustParsePrefix(a.Prefix)
		comms := make([]Community, 0, len(a.Communities))
		for _, raw := range a.Communities {
			c, _ := ParseCommunity(raw)
			comms = append(comms, c)
		}
		for _, pop := range a.PoPs {
			out = append(out, CompiledAnn{
				Key:             AnnKey{Experiment: s.Name, PoP: pop, Prefix: prefix, Version: a.Version},
				Prepend:         a.Prepend,
				Poison:          append([]uint32(nil), a.Poison...),
				Communities:     comms,
				ToNeighbors:     append([]uint32(nil), a.ToNeighbors...),
				ExceptNeighbors: append([]uint32(nil), a.ExceptNeighbors...),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// SessionPoPs returns the sorted set of PoPs the spec needs a session
// at (every PoP referenced by any announcement).
func (s Spec) SessionPoPs() []string {
	set := make(map[string]bool)
	for _, a := range s.Announcements {
		for _, pop := range a.PoPs {
			set[pop] = true
		}
	}
	out := make([]string, 0, len(set))
	for pop := range set {
		out = append(out, pop)
	}
	sort.Strings(out)
	return out
}
