package ctlplane

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/chaos"
)

// seedInstalled plants an installed route with an unknown fingerprint —
// what Observed reports for a graceful-restart-retained route after the
// actuator that sent it died.
func seedInstalled(act *fakeActuator, key AnnKey, adoptable bool) {
	act.mu.Lock()
	act.anns[key] = ""
	act.adoptable[key] = adoptable
	act.mu.Unlock()
}

func TestReconcilerAdoptsRecoveredInstall(t *testing.T) {
	act := newFakeActuator()
	key := AnnKey{Experiment: "alpha", PoP: "seattle",
		Prefix: netip.MustParsePrefix("184.164.224.0/24")}
	seedInstalled(act, key, true)
	store, rec := testReconciler(t, act, nil)

	obj, _, err := store.Create(testSpec("alpha"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	st := waitPhase(t, rec, "alpha", PhaseConverged)
	if st.ConvergedRevision != obj.Revision {
		t.Fatalf("converged revision = %d, want %d", st.ConvergedRevision, obj.Revision)
	}
	// The retained install was re-claimed, not re-sent: zero update
	// budget burned.
	if n := act.count("announce"); n != 0 {
		t.Fatalf("recovery announced %d times, want 0 (adoption)", n)
	}
	if n := act.count("adopt"); n != 1 {
		t.Fatalf("adopt called %d times, want 1", n)
	}
	act.mu.Lock()
	fp := act.anns[key]
	act.mu.Unlock()
	if fp == "" {
		t.Fatal("adopted route still has unknown fingerprint")
	}
}

func TestReconcilerAdoptMismatchFallsBackToAnnounce(t *testing.T) {
	act := newFakeActuator()
	key := AnnKey{Experiment: "alpha", PoP: "seattle",
		Prefix: netip.MustParsePrefix("184.164.224.0/24")}
	seedInstalled(act, key, false) // retained route no longer matches
	store, rec := testReconciler(t, act, nil)

	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)
	if n := act.count("adopt"); n == 0 {
		t.Fatal("adopt never attempted for a fingerprint-unknown install")
	}
	// ErrAdoptMismatch is not an error: the pass falls through to a
	// normal re-announce in the same batch.
	if n := act.count("announce"); n != 1 {
		t.Fatalf("announce called %d times after adopt mismatch, want 1", n)
	}
	st, _ := rec.ObjectStatusFor("alpha")
	if st.Attempts != 0 {
		t.Fatalf("adopt mismatch counted as failure: %+v", st)
	}
}

func TestReconcilerRejectedPhaseDistinguishesKinds(t *testing.T) {
	for _, kind := range []string{RejectDamping, RejectRPKI, RejectRateLimit} {
		t.Run(kind, func(t *testing.T) {
			act := newFakeActuator()
			act.setFail("announce", &RejectedError{Kind: kind, Reason: "engine said no"})
			store, rec := testReconciler(t, act, nil)
			store.Create(testSpec("alpha"))

			st := waitPhase(t, rec, "alpha", PhaseRejected)
			if st.RejectKind != kind {
				t.Fatalf("reject kind = %q, want %q", st.RejectKind, kind)
			}
			if st.NextRetry.IsZero() || st.Attempts == 0 {
				t.Fatalf("rejected status has no retry schedule: %+v", st)
			}
			// The engine relents (damping decayed, ROA fixed, window
			// rolled): the object converges and the rejection state clears.
			act.setFail("announce", nil)
			st = waitPhase(t, rec, "alpha", PhaseConverged)
			if st.RejectKind != "" || st.Attempts != 0 {
				t.Fatalf("recovery did not clear rejection state: %+v", st)
			}
		})
	}
}

func TestReconcilerShedSkipsAnnounceBudget(t *testing.T) {
	act := newFakeActuator()
	act.mu.Lock()
	act.shedding["seattle"] = true
	act.mu.Unlock()
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))

	st := waitPhase(t, rec, "alpha", PhaseRejected)
	if st.RejectKind != RejectShedding {
		t.Fatalf("reject kind = %q, want %q", st.RejectKind, RejectShedding)
	}
	// The shed check runs before the send: no update budget burned on an
	// announcement the overloaded PoP would drop.
	if n := act.count("announce"); n != 0 {
		t.Fatalf("announced %d times into a shedding PoP, want 0", n)
	}
	act.mu.Lock()
	act.shedding["seattle"] = false
	act.mu.Unlock()
	waitPhase(t, rec, "alpha", PhaseConverged)
}

func TestReconcilerAsyncRejectionMatchesInflight(t *testing.T) {
	act := newFakeActuator()
	act.mu.Lock()
	act.holdInstall = true // accepted by the session, never installed
	act.mu.Unlock()
	store, rec := testReconciler(t, act, nil)
	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverging)

	// The engine's audit log reports the rejection after the fact.
	act.mu.Lock()
	act.rejections = append(act.rejections, Rejection{
		Experiment: "alpha", PoP: "seattle",
		Prefix: netip.MustParsePrefix("184.164.224.0/24"),
		Kind:   RejectRPKI, Reason: "RPKI invalid: origin not authorized",
		At: time.Now(),
	})
	act.mu.Unlock()

	st := waitPhase(t, rec, "alpha", PhaseRejected)
	if st.RejectKind != RejectRPKI {
		t.Fatalf("reject kind = %q, want %q", st.RejectKind, RejectRPKI)
	}
	if st.LastError == "" {
		t.Fatalf("rejection reason not surfaced: %+v", st)
	}
}

func TestReconcilerSweepsOrphans(t *testing.T) {
	act := newFakeActuator()
	// Platform state with no desired object: a crash-orphaned experiment.
	ghostKey := AnnKey{Experiment: "ghost", PoP: "seattle",
		Prefix: netip.MustParsePrefix("184.164.230.0/24")}
	act.mu.Lock()
	act.anns[ghostKey] = "fp-ghost"
	act.sessions[SessKey{Experiment: "ghost", PoP: "seattle"}] = true
	act.mu.Unlock()
	store, rec := testReconciler(t, act, nil)

	// A live object rides along untouched.
	store.Create(testSpec("alpha"))
	waitPhase(t, rec, "alpha", PhaseConverged)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		act.mu.Lock()
		_, present := act.anns[ghostKey]
		act.mu.Unlock()
		if !present {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	act.mu.Lock()
	defer act.mu.Unlock()
	if _, still := act.anns[ghostKey]; still {
		t.Fatal("orphan announcement never torn down")
	}
	if act.sessions[SessKey{Experiment: "ghost", PoP: "seattle"}] {
		t.Fatal("orphan session never torn down")
	}
	// The live experiment survived the sweep.
	prefix := netip.MustParsePrefix("184.164.224.0/24")
	if _, ok := act.anns[AnnKey{Experiment: "alpha", PoP: "seattle", Prefix: prefix}]; !ok {
		t.Fatal("orphan sweep tore down a live experiment")
	}
}

func TestReconcilerCrashHookTerminatesLoop(t *testing.T) {
	crasher := chaos.NewCrasher()
	crashed := make(chan struct{})
	act := newFakeActuator()
	store := NewStore(StoreConfig{})
	rec := NewReconciler(store, act, nil, ReconcilerConfig{
		Resync:         5 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		ActuationGrace: 100 * time.Millisecond,
		CrashHook:      crasher.Hook(),
		OnCrash:        func(v any) { close(crashed) },
		Logf:           t.Logf,
	})
	done := make(chan struct{})
	go func() { rec.Run(); close(done) }()
	defer rec.Close()

	crasher.Arm("mid-batch", 0)
	store.Create(testSpec("alpha"))

	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("armed mid-batch crash never fired")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reconcile loop survived an injected crash")
	}
	if !crasher.Fired() {
		t.Fatal("crasher did not report firing")
	}
}
