package ctlplane

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHubFanOutAndFilter(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	all := hub.Subscribe(16)
	health := hub.Subscribe(16, StreamHealth)
	defer all.Close()
	defer health.Close()

	hub.Publish(StreamReconcile, "r1")
	hub.Publish(StreamHealth, "h1")

	e1 := <-all.Events()
	e2 := <-all.Events()
	if e1.Type != StreamReconcile || e2.Type != StreamHealth {
		t.Fatalf("unfiltered subscriber saw %s, %s", e1.Type, e2.Type)
	}
	if e2.Seq <= e1.Seq {
		t.Fatalf("sequence not monotonic: %d then %d", e1.Seq, e2.Seq)
	}
	h := <-health.Events()
	if h.Type != StreamHealth || h.Data != "h1" {
		t.Fatalf("filtered subscriber saw %+v", h)
	}
	select {
	case e := <-health.Events():
		t.Fatalf("filtered subscriber leaked %+v", e)
	default:
	}
}

// TestHubSlowConsumerNeverBlocks is the satellite requirement: a
// subscriber that stops reading must not block Publish or starve its
// siblings, and its losses must be accounted.
func TestHubSlowConsumerNeverBlocks(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	stalled := hub.Subscribe(4) // tiny queue, never drained
	defer stalled.Close()
	healthy := hub.Subscribe(1024)
	defer healthy.Close()

	const n = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			hub.Publish(StreamTelemetry, i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}

	// The healthy sibling got everything, in order.
	for i := 0; i < n; i++ {
		select {
		case e := <-healthy.Events():
			if e.Data != i {
				t.Fatalf("healthy subscriber saw %v at position %d", e.Data, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("healthy subscriber starved at %d/%d", i, n)
		}
	}
	// The stalled one kept its queue and dropped the rest, accounted.
	if got := stalled.Dropped(); got != n-4 {
		t.Fatalf("stalled subscriber dropped %d, want %d", got, n-4)
	}
}

func TestHubConcurrentPublishRaceClean(t *testing.T) {
	hub := NewHub()
	subs := make([]*Subscriber, 8)
	for i := range subs {
		subs[i] = hub.Subscribe(8)
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				hub.Publish(StreamStore, i)
			}
		}()
	}
	// Subscribers churn while publishers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := hub.Subscribe(4)
			s.Close()
		}
	}()
	wg.Wait()
	for _, s := range subs {
		s.Close()
	}
	hub.Close()
	hub.Publish(StreamStore, "after close") // must not panic
}

func TestHubSSEHandler(t *testing.T) {
	hub := NewHub()
	defer hub.Close()

	// Unknown type is rejected before subscribing.
	rec := httptest.NewRecorder()
	hub.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/watch?types=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("unknown type -> %d, want 400", rec.Code)
	}

	srv := httptest.NewServer(hub)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?types=reconcile")
	if err != nil {
		t.Fatalf("GET watch: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	go func() {
		// Give the subscriber a moment to register, then publish.
		for i := 0; hub.Subscribers() == 0 && i < 100; i++ {
			time.Sleep(5 * time.Millisecond)
		}
		hub.Publish(StreamReconcile, map[string]string{"name": "alpha"})
	}()

	scanner := bufio.NewScanner(resp.Body)
	var event, data string
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if event != StreamReconcile {
		t.Fatalf("SSE event = %q, want %s", event, StreamReconcile)
	}
	if !strings.Contains(data, `"alpha"`) {
		t.Fatalf("SSE data = %q", data)
	}
}

func TestHubCloseDrainsSubscribers(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe(8)
	hub.Publish(StreamStore, "last")
	hub.Close()
	// Buffered event still arrives, then the channel closes.
	e, ok := <-sub.Events()
	if !ok || e.Data != "last" {
		t.Fatalf("buffered event lost on close: %+v ok=%v", e, ok)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed after hub close")
	}
	// Subscribing after close yields an immediately-closed channel.
	late := hub.Subscribe(8)
	if _, ok := <-late.Events(); ok {
		t.Fatal("late subscription not closed")
	}
	late.Close() // must not panic (double close guard)
	_ = fmt.Sprintf("%d", late.Dropped())
}
