package ctlplane

import "testing"

// FuzzDecodeWALRecord drives the record parser with arbitrary frame
// payloads: it must never panic, and anything it accepts must carry a
// known record type (the replay switch depends on it).
func FuzzDecodeWALRecord(f *testing.F) {
	seed := func(seq uint64, typ byte, body any) {
		payload, err := encodeRecord(seq, typ, body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	seed(1, walTypeCommit, walCommit{
		Kind: ChangeCreated, Name: "alpha", Revision: 1,
		Object: &Object{Spec: Spec{Name: "alpha"}, Revision: 1},
	})
	seed(2, walTypeDeploy, walDeploy{Verb: "canary", Revision: 3, PoPs: []string{"seattle"}})
	seed(3, walTypeAct, walAct{
		Op: "announce", Experiment: "alpha", PoP: "seattle",
		Prefix: "184.164.224.0/24", Version: 1, Fp: "fp",
	})
	f.Add([]byte{})
	f.Add([]byte("vbgpwal1 not a record"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, walTypeCommit, '{', '}'})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeWALRecord(payload)
		if err != nil {
			return
		}
		switch rec.typ {
		case walTypeCommit, walTypeDeploy, walTypeAct:
		default:
			t.Fatalf("accepted record with unknown type %d", rec.typ)
		}
	})
}
