package ctlplane

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Actuator is the reconciler's hand on the platform. Every method must
// be idempotent — the reconciler retries freely — and every actuation
// must flow through the platform's audited enforcement path (the
// peering implementation drives a normal experiment Client, so policy
// evaluates and logs each change like any researcher-issued one).
type Actuator interface {
	// Validate dry-runs a spec against platform state (PoPs exist,
	// allocation does not collide) without actuating anything.
	Validate(spec Spec) error
	// EnsureExperiment registers the experiment (proposal, approval,
	// credentials, capability grant) and applies spec-level overrides.
	EnsureExperiment(spec Spec) error
	// EnsureSession brings the experiment's tunnel + BGP session at a
	// PoP to Established.
	EnsureSession(spec Spec, pop string) error
	// Announce actuates one announcement atom.
	Announce(spec Spec, ann CompiledAnn) error
	// Adopt re-claims an announcement already installed on the platform
	// (recovered from the durable log after a restart) without
	// re-sending it, so recovery does not burn the §4.7 per-prefix
	// update budget. Returns ErrAdoptMismatch when the installed route
	// does not match the desired announcement, in which case the
	// reconciler falls back to a normal Announce.
	Adopt(spec Spec, ann CompiledAnn) error
	// Withdraw retracts one announcement atom.
	Withdraw(experiment, pop string, prefix netip.Prefix, version uint32) error
	// CloseSession tears down the experiment's session at one PoP.
	CloseSession(experiment, pop string) error
	// Teardown removes the experiment entirely (sessions, credentials,
	// enforcement registration).
	Teardown(experiment string) error
	// Observed reports the actuator-managed platform state: which
	// sessions are established and which announcements are installed
	// (verified against the routers' RIBs), with the fingerprint each
	// was actuated at.
	Observed() (Observed, error)
}

// ErrAdoptMismatch is returned by Actuator.Adopt when the installed
// route does not match the desired announcement; the reconciler falls
// back to a normal (budgeted) Announce.
var ErrAdoptMismatch = errors.New("ctlplane: installed route does not match desired announcement")

// Rejection kinds, distinguishing why the engine refused an
// announcement (ObjectStatus.RejectKind).
const (
	RejectDamping   = "damping"    // RFC 2439 flap damping penalty above suppress threshold
	RejectRateLimit = "rate-limit" // §4.7 per-prefix daily update budget exhausted
	RejectRPKI      = "rpki"       // RPKI-Invalid origin (RFC 6811)
	RejectShedding  = "shedding"   // PoP overloaded; new announcements treat-as-withdrawn
	RejectPolicy    = "policy"     // any other policy-engine refusal
)

// Rejection is one engine-side refusal of an experiment announcement,
// surfaced from the platform's policy audit log.
type Rejection struct {
	Experiment string
	PoP        string
	Prefix     netip.Prefix
	Kind       string
	Reason     string
	At         time.Time
}

// RejectionSource is an optional Actuator capability: actuators that
// can read the policy engine's audit log expose the rejections
// recorded strictly after since. Route install is asynchronous, so a
// rejected announce otherwise looks identical to a slow one — polling
// this closes the loop that ROADMAP called "silent non-convergence".
type RejectionSource interface {
	Rejections(since time.Time) []Rejection
}

// ShedSource is an optional Actuator capability reporting per-PoP
// overload shedding. A shedding router treat-as-withdraws new
// announcements anyway, so the reconciler skips the send entirely —
// saving the update budget — and marks the object rejected.
type ShedSource interface {
	Shedding(pop string) bool
}

// RejectedError marks an actuation refused by the platform's admission
// machinery rather than failed; the reconciler surfaces it as
// PhaseRejected with the kind and reason instead of a generic error.
type RejectedError struct {
	Kind   string
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("rejected (%s): %s", e.Kind, e.Reason)
}

// Observed is the actuator's view of current platform state for the
// experiments it manages.
type Observed struct {
	// Sessions maps experiment sessions to "established".
	Sessions map[SessKey]bool
	// Anns maps installed announcements to the fingerprint they were
	// actuated with ("" when unknown).
	Anns map[AnnKey]string
}

// Phase is an object's convergence state.
type Phase string

// Phases.
const (
	PhasePending    Phase = "pending"    // seen, not yet reconciled
	PhaseConverging Phase = "converging" // actions issued, verification pending
	PhaseConverged  Phase = "converged"  // desired == observed at Revision
	PhaseError      Phase = "error"      // last attempt failed; backing off
	PhaseRejected   Phase = "rejected"   // engine refused the announcement; backing off
	PhaseDeleting   Phase = "deleting"   // tombstoned, teardown in progress
)

// ObjectStatus is the reconciler's per-object convergence record.
type ObjectStatus struct {
	Name  string `json:"name"`
	Phase Phase  `json:"phase"`
	// Revision is the spec revision the last reconcile pass acted on.
	Revision int64 `json:"revision"`
	// ConvergedRevision is the newest revision verified desired ==
	// observed (0 = never).
	ConvergedRevision int64 `json:"converged_revision"`
	// Actions counts actuations performed for this object.
	Actions uint64 `json:"actions"`
	// Attempts counts consecutive failed passes (reset on success).
	Attempts int `json:"attempts,omitempty"`
	// LastError is the most recent failure, if any.
	LastError string `json:"last_error,omitempty"`
	// RejectKind distinguishes engine refusals ("damping",
	// "rate-limit", "rpki", "shedding", "policy"); set while Phase is
	// PhaseRejected, cleared on any other transition.
	RejectKind string `json:"reject_kind,omitempty"`
	// NextRetry is when a backed-off object is reconsidered.
	NextRetry time.Time `json:"next_retry,omitempty"`
	// LastTransition is when Phase last changed.
	LastTransition time.Time `json:"last_transition"`
}

// ReconcilerConfig tunes the loop.
type ReconcilerConfig struct {
	// Resync is the periodic full-reconcile interval (observed state
	// can drift without a store commit). Default 250ms.
	Resync time.Duration
	// BackoffBase and BackoffMax bound the per-object exponential error
	// backoff. Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxActionsPerSecond rate-limits actuations across all objects
	// (the §4.7 stance: the control plane must not itself become an
	// update storm). Default 200.
	MaxActionsPerSecond float64
	// ActuationGrace is how long an issued announce/withdraw is treated
	// as in flight before the reconciler re-actuates it. Route install
	// is asynchronous (session send → router processing → RIB), and
	// every re-send burns the experiment's §4.7 update budget, so the
	// loop waits this long for the RIB to catch up. Default 2s.
	ActuationGrace time.Duration
	// Logf receives reconciler logs.
	Logf func(format string, args ...any)
	// CrashHook, when set, fires with the injection-point name
	// ("mid-batch") before every actuation. Chaos tests arm it to
	// panic, simulating a SIGKILL between actions. Nil in production.
	CrashHook func(point string)
	// OnCrash, when set, receives panics recovered from the reconcile
	// loop; the loop then terminates, leaving the reconciler as dead as
	// a killed process. With OnCrash nil (production) panics propagate
	// and crash the daemon — crash-only software restarts, it does not
	// limp.
	OnCrash func(v any)
}

// Reconciler converges desired state (Store) onto observed state
// (Actuator) — the §5 loop: diff, actuate, verify, repeat.
type Reconciler struct {
	store *Store
	act   Actuator
	cfg   ReconcilerConfig
	hub   *Hub // optional

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu       sync.Mutex
	statuses map[string]*ObjectStatus
	ensured  map[string]int64 // experiment -> revision EnsureExperiment last ran for
	lastAct  time.Time

	// In-flight actuation records, touched only by the Run goroutine.
	inflightAnn map[AnnKey]actRecord
	inflightWd  map[AnnKey]time.Time
	// tornDown records recent Teardown calls so the orphan sweep does
	// not re-tear an experiment while the (asynchronous) observed state
	// catches up. Run-goroutine only.
	tornDown map[string]time.Time
	// rejSince is the high-water mark for RejectionSource polling.
	// Run-goroutine only.
	rejSince time.Time

	mRuns      metric
	mErrors    metric
	mRejected  metric
	mOrphans   metric
	mConverged gaugeMetric
	mActions   map[string]metric
}

// NewReconciler wires a reconciler over a store and an actuator. hub
// may be nil. Call Run to start the loop.
func NewReconciler(store *Store, act Actuator, hub *Hub, cfg ReconcilerConfig) *Reconciler {
	if cfg.Resync <= 0 {
		cfg.Resync = 250 * time.Millisecond
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.MaxActionsPerSecond <= 0 {
		cfg.MaxActionsPerSecond = 200
	}
	if cfg.ActuationGrace <= 0 {
		cfg.ActuationGrace = 2 * time.Second
	}
	r := &Reconciler{
		store:       store,
		act:         act,
		cfg:         cfg,
		hub:         hub,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		statuses:    make(map[string]*ObjectStatus),
		ensured:     make(map[string]int64),
		inflightAnn: make(map[AnnKey]actRecord),
		inflightWd:  make(map[AnnKey]time.Time),
		tornDown:    make(map[string]time.Time),
		rejSince:    time.Now(),
		mRuns:       counter("ctlplane_reconcile_runs_total"),
		mErrors:     counter("ctlplane_reconcile_errors_total"),
		mRejected:   counter("ctlplane_reconcile_rejected_total"),
		mOrphans:    counter("ctlplane_reconcile_orphans_total"),
		mActions: map[string]metric{
			"ensure-experiment": counter("ctlplane_reconcile_actions_total", label("kind", "ensure-experiment")),
			"ensure-session":    counter("ctlplane_reconcile_actions_total", label("kind", "ensure-session")),
			"announce":          counter("ctlplane_reconcile_actions_total", label("kind", "announce")),
			"adopt":             counter("ctlplane_reconcile_actions_total", label("kind", "adopt")),
			"withdraw":          counter("ctlplane_reconcile_actions_total", label("kind", "withdraw")),
			"close-session":     counter("ctlplane_reconcile_actions_total", label("kind", "close-session")),
			"teardown":          counter("ctlplane_reconcile_actions_total", label("kind", "teardown")),
			"orphan-teardown":   counter("ctlplane_reconcile_actions_total", label("kind", "orphan-teardown")),
		},
		mConverged: gauge("ctlplane_objects_converged"),
	}
	store.OnCommit(r.Kick)
	return r
}

// Kick schedules an immediate reconcile pass (coalescing).
func (r *Reconciler) Kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Run drives the loop until Close. Call in a goroutine.
func (r *Reconciler) Run() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.Resync)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.wake:
		case <-tick.C:
		}
		if !r.pass() {
			return
		}
	}
}

// pass runs one reconcile iteration. When OnCrash is set, an injected
// crash panic is recovered, reported, and terminates the loop — the
// reconciler is then as dead as a SIGKILLed process, which is exactly
// what crash tests simulate. With OnCrash nil, panics propagate.
func (r *Reconciler) pass() (alive bool) {
	alive = true
	if r.cfg.OnCrash != nil {
		defer func() {
			if v := recover(); v != nil {
				r.cfg.OnCrash(v)
				alive = false
			}
		}()
	}
	r.reconcileOnce()
	return alive
}

// Close stops the loop and waits for the in-flight pass to finish.
func (r *Reconciler) Close() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// Status returns the per-object convergence records, sorted by name.
func (r *Reconciler) Status() []ObjectStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ObjectStatus, 0, len(r.statuses))
	for _, st := range r.statuses {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ObjectStatusFor returns one object's convergence record.
func (r *Reconciler) ObjectStatusFor(name string) (ObjectStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.statuses[name]
	if !ok {
		return ObjectStatus{}, false
	}
	return *st, true
}

// logf logs through the configured sink.
func (r *Reconciler) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// throttle enforces the global actuation rate limit; called before
// every actuator mutation.
func (r *Reconciler) throttle() {
	interval := time.Duration(float64(time.Second) / r.cfg.MaxActionsPerSecond)
	r.mu.Lock()
	next := r.lastAct.Add(interval)
	now := time.Now()
	if next.After(now) {
		r.lastAct = next
	} else {
		r.lastAct = now
	}
	r.mu.Unlock()
	if d := time.Until(next); d > 0 {
		time.Sleep(d)
	}
}

// actRecord is one in-flight announce: the fingerprint it was issued
// with and when.
type actRecord struct {
	fp string
	at time.Time
}

// action runs one rate-limited actuation, counting it per kind. st may
// be nil (orphan teardowns have no desired object to account against).
func (r *Reconciler) action(kind string, st *ObjectStatus, fn func() error) error {
	if r.cfg.CrashHook != nil {
		r.cfg.CrashHook("mid-batch")
	}
	r.throttle()
	if m, ok := r.mActions[kind]; ok {
		m.Inc()
	}
	if st != nil {
		r.mu.Lock()
		st.Actions++
		r.mu.Unlock()
	}
	return fn()
}

// backoffFor computes the exponential per-object retry delay.
func (r *Reconciler) backoffFor(attempts int) time.Duration {
	backoff := r.cfg.BackoffBase << min(uint(attempts-1), 16)
	if backoff > r.cfg.BackoffMax || backoff <= 0 {
		backoff = r.cfg.BackoffMax
	}
	return backoff
}

// setPhase transitions an object's phase, publishing to the hub when it
// actually changes.
func (r *Reconciler) setPhase(st *ObjectStatus, phase Phase, rev int64, errMsg string) {
	if phase != PhaseRejected {
		st.RejectKind = ""
	}
	changed := st.Phase != phase || st.Revision != rev || st.LastError != errMsg
	st.Phase = phase
	st.Revision = rev
	st.LastError = errMsg
	if changed {
		st.LastTransition = time.Now()
		if r.hub != nil {
			r.hub.Publish(StreamReconcile, struct {
				Name     string `json:"name"`
				Phase    Phase  `json:"phase"`
				Revision int64  `json:"revision"`
				Error    string `json:"error,omitempty"`
				Reject   string `json:"reject_kind,omitempty"`
			}{st.Name, phase, rev, errMsg, st.RejectKind})
		}
	}
}

// reconcileOnce runs one full diff-and-converge pass over every object.
func (r *Reconciler) reconcileOnce() {
	r.mRuns.Inc()
	objects := r.store.List()
	obs, err := r.act.Observed()
	if err != nil {
		r.mErrors.Inc()
		r.logf("ctlplane: observe failed: %v", err)
		return
	}
	if obs.Sessions == nil {
		obs.Sessions = make(map[SessKey]bool)
	}
	if obs.Anns == nil {
		obs.Anns = make(map[AnnKey]string)
	}

	now := time.Now()
	// Expired withdraw records are dead weight once the route is gone
	// from the observed state (nothing iterates them again).
	for key, at := range r.inflightWd {
		if now.Sub(at) >= r.cfg.ActuationGrace {
			delete(r.inflightWd, key)
		}
	}
	r.pollRejections(now)
	live := make(map[string]bool, len(objects))
	converged := 0
	for i := range objects {
		obj := &objects[i]
		live[obj.Spec.Name] = true
		st := r.statusFor(obj.Spec.Name)
		r.mu.Lock()
		skip := now.Before(st.NextRetry)
		r.mu.Unlock()
		if skip {
			continue
		}
		var passErr error
		if obj.Deleting {
			r.setPhaseLocked(st, PhaseDeleting, obj.Revision, "")
			passErr = r.teardownObject(obj, st, obs)
		} else {
			passErr = r.convergeObject(obj, st, obs)
		}
		r.mu.Lock()
		if passErr != nil {
			r.mErrors.Inc()
			st.Attempts++
			backoff := r.backoffFor(st.Attempts)
			st.NextRetry = time.Now().Add(backoff)
			phase := PhaseError
			var rej *RejectedError
			if errors.As(passErr, &rej) {
				r.mRejected.Inc()
				st.RejectKind = rej.Kind
				phase = PhaseRejected
			}
			if obj.Deleting {
				phase = PhaseDeleting
			}
			r.setPhase(st, phase, obj.Revision, passErr.Error())
			r.logf("ctlplane: reconcile %s@%d failed (attempt %d, retry in %s): %v",
				obj.Spec.Name, obj.Revision, st.Attempts, backoff, passErr)
		} else {
			st.Attempts = 0
			st.NextRetry = time.Time{}
		}
		if st.Phase == PhaseConverged {
			converged++
		}
		r.mu.Unlock()
	}
	r.sweepOrphans(obs, live, now)
	// Forget records of objects that no longer exist.
	r.mu.Lock()
	for name := range r.statuses {
		if !live[name] {
			delete(r.statuses, name)
			delete(r.ensured, name)
		}
	}
	r.mConverged.Set(int64(converged))
	r.mu.Unlock()
}

// sweepOrphans tears down platform state whose experiment has no
// desired object — the recovery half of crash-only operation: a crash
// between actuating and logging (or a spec removed while the daemon
// was down) leaves announcements dangling in the synthetic Internet
// with no owner, and nothing else will ever withdraw them.
func (r *Reconciler) sweepOrphans(obs Observed, live map[string]bool, now time.Time) {
	orphan := make(map[string]bool)
	for key := range obs.Anns {
		if !live[key.Experiment] {
			orphan[key.Experiment] = true
		}
	}
	for key := range obs.Sessions {
		if !live[key.Experiment] {
			orphan[key.Experiment] = true
		}
	}
	names := make([]string, 0, len(orphan))
	for name := range orphan {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// A just-issued teardown needs the observed state to catch up;
		// don't hammer the platform in the meantime.
		if at, ok := r.tornDown[name]; ok && now.Sub(at) < r.cfg.ActuationGrace {
			continue
		}
		name := name
		if err := r.action("orphan-teardown", nil, func() error { return r.act.Teardown(name) }); err != nil {
			r.mErrors.Inc()
			r.logf("ctlplane: orphan teardown %s failed: %v", name, err)
			continue
		}
		r.mOrphans.Inc()
		r.tornDown[name] = now
		for key := range obs.Anns {
			if key.Experiment == name {
				r.store.LogAct("withdraw", key, "")
			}
		}
		r.logf("ctlplane: tore down orphan experiment %s (platform state with no desired object)", name)
	}
	for name, at := range r.tornDown {
		if !orphan[name] && now.Sub(at) >= r.cfg.ActuationGrace {
			delete(r.tornDown, name)
		}
	}
}

// pollRejections drains engine-side rejections from the actuator (when
// it exposes them) and flips the matching objects to PhaseRejected.
// Route install is asynchronous: the session accepts the update and
// the router's policy engine refuses it later, so without this the
// object sits in "converging" forever and every grace expiry re-burns
// update budget on a prefix the engine will refuse again.
func (r *Reconciler) pollRejections(now time.Time) {
	src, ok := r.act.(RejectionSource)
	if !ok {
		return
	}
	for _, rej := range src.Rejections(r.rejSince) {
		if rej.At.After(r.rejSince) {
			r.rejSince = rej.At
		}
		// Only a rejection answering an announce this process issued
		// (and is still waiting on) flips state; stale audit entries
		// from before the announce are not ours.
		matched := false
		for key, rec := range r.inflightAnn {
			if key.Experiment != rej.Experiment || key.PoP != rej.PoP || key.Prefix != rej.Prefix {
				continue
			}
			if rej.At.Before(rec.at) {
				continue
			}
			delete(r.inflightAnn, key)
			matched = true
		}
		if !matched {
			continue
		}
		r.mRejected.Inc()
		st := r.statusFor(rej.Experiment)
		r.mu.Lock()
		st.Attempts++
		backoff := r.backoffFor(st.Attempts)
		st.NextRetry = now.Add(backoff)
		st.RejectKind = rej.Kind
		r.setPhase(st, PhaseRejected, st.Revision, rej.Reason)
		r.mu.Unlock()
		r.logf("ctlplane: %s rejected at %s (%s): %s — retry in %s",
			rej.Experiment, rej.PoP, rej.Kind, rej.Reason, backoff)
	}
}

// statusFor returns (creating if needed) the mutable status record.
func (r *Reconciler) statusFor(name string) *ObjectStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.statuses[name]
	if !ok {
		st = &ObjectStatus{Name: name, Phase: PhasePending, LastTransition: time.Now()}
		r.statuses[name] = st
	}
	return st
}

// setPhaseLocked is setPhase with its own locking (for call sites not
// already holding r.mu).
func (r *Reconciler) setPhaseLocked(st *ObjectStatus, phase Phase, rev int64, errMsg string) {
	r.mu.Lock()
	r.setPhase(st, phase, rev, errMsg)
	r.mu.Unlock()
}

// convergeObject diffs one live object against observed state and
// actuates the difference. Returns nil when the pass issued no failing
// action; convergence (diff empty) flips the phase to Converged.
func (r *Reconciler) convergeObject(obj *Object, st *ObjectStatus, obs Observed) error {
	spec := obj.Spec
	desiredAnns := spec.Compile()
	desiredPops := spec.SessionPoPs()
	actions, pending := 0, 0
	now := time.Now()

	// Registration: once per revision (idempotent in the actuator, but
	// skipping it keeps steady-state passes read-only).
	r.mu.Lock()
	needEnsure := r.ensured[spec.Name] != obj.Revision
	r.mu.Unlock()
	if needEnsure {
		actions++
		if err := r.action("ensure-experiment", st, func() error { return r.act.EnsureExperiment(spec) }); err != nil {
			return fmt.Errorf("ensure experiment: %w", err)
		}
		r.mu.Lock()
		r.ensured[spec.Name] = obj.Revision
		r.mu.Unlock()
	}

	// Sessions up at every referenced PoP.
	for _, pop := range desiredPops {
		if obs.Sessions[SessKey{spec.Name, pop}] {
			continue
		}
		actions++
		pop := pop
		if err := r.action("ensure-session", st, func() error { return r.act.EnsureSession(spec, pop) }); err != nil {
			return fmt.Errorf("ensure session at %s: %w", pop, err)
		}
	}

	// Announcements present at the desired fingerprint. An announce
	// issued within the grace window counts as pending rather than
	// missing: install is asynchronous and re-sends burn update budget.
	desired := make(map[AnnKey]bool, len(desiredAnns))
	shed, _ := r.act.(ShedSource)
	for _, ann := range desiredAnns {
		desired[ann.Key] = true
		fp := ann.Fingerprint()
		cur, ok := obs.Anns[ann.Key]
		if ok && cur == fp {
			delete(r.inflightAnn, ann.Key)
			continue
		}
		if ok && cur == "" {
			// Installed but not issued by this process — a restart
			// recovered it from the durable log. Adopt it in place
			// instead of re-announcing: re-sends burn update budget.
			actions++
			ann := ann
			err := r.action("adopt", st, func() error { return r.act.Adopt(spec, ann) })
			if err == nil {
				r.store.LogAct("announce", ann.Key, fp)
				delete(r.inflightAnn, ann.Key)
				continue
			}
			if !errors.Is(err, ErrAdoptMismatch) {
				return fmt.Errorf("adopt %s: %w", ann.Key, err)
			}
			// Installed route drifted from the spec; fall through and
			// re-announce at the desired fingerprint.
		}
		if rec, inflight := r.inflightAnn[ann.Key]; inflight && rec.fp == fp && now.Sub(rec.at) < r.cfg.ActuationGrace {
			pending++
			continue
		}
		if shed != nil && shed.Shedding(ann.Key.PoP) {
			// The router would treat-as-withdraw the announcement
			// anyway; skipping the send saves the update budget.
			return &RejectedError{Kind: RejectShedding,
				Reason: fmt.Sprintf("PoP %s is shedding new announcements (overload)", ann.Key.PoP)}
		}
		actions++
		ann := ann
		if err := r.action("announce", st, func() error { return r.act.Announce(spec, ann) }); err != nil {
			return fmt.Errorf("announce %s: %w", ann.Key, err)
		}
		r.inflightAnn[ann.Key] = actRecord{fp: fp, at: now}
		r.store.LogAct("announce", ann.Key, fp)
	}

	// Withdraw strays: observed announcements of this experiment no
	// longer in the spec. Same grace treatment as announces.
	for key := range obs.Anns {
		if key.Experiment != spec.Name || desired[key] {
			continue
		}
		if at, inflight := r.inflightWd[key]; inflight && now.Sub(at) < r.cfg.ActuationGrace {
			pending++
			continue
		}
		actions++
		key := key
		if err := r.action("withdraw", st, func() error {
			return r.act.Withdraw(key.Experiment, key.PoP, key.Prefix, key.Version)
		}); err != nil {
			return fmt.Errorf("withdraw %s: %w", key, err)
		}
		r.inflightWd[key] = now
		r.store.LogAct("withdraw", key, "")
	}

	// Close sessions at PoPs the spec no longer references.
	wantPop := make(map[string]bool, len(desiredPops))
	for _, pop := range desiredPops {
		wantPop[pop] = true
	}
	for key := range obs.Sessions {
		if key.Experiment != spec.Name || wantPop[key.PoP] {
			continue
		}
		actions++
		key := key
		if err := r.action("close-session", st, func() error {
			return r.act.CloseSession(key.Experiment, key.PoP)
		}); err != nil {
			return fmt.Errorf("close session at %s: %w", key.PoP, err)
		}
	}

	if actions == 0 && pending == 0 {
		r.setPhaseLocked(st, PhaseConverged, obj.Revision, "")
		r.mu.Lock()
		if st.ConvergedRevision < obj.Revision {
			st.ConvergedRevision = obj.Revision
		}
		r.mu.Unlock()
	} else {
		r.setPhaseLocked(st, PhaseConverging, obj.Revision, "")
	}
	return nil
}

// teardownObject withdraws a tombstoned object's state and removes it
// from the store once the platform is clean.
func (r *Reconciler) teardownObject(obj *Object, st *ObjectStatus, obs Observed) error {
	name := obj.Spec.Name
	for key := range obs.Anns {
		if key.Experiment != name {
			continue
		}
		key := key
		if err := r.action("withdraw", st, func() error {
			return r.act.Withdraw(key.Experiment, key.PoP, key.Prefix, key.Version)
		}); err != nil {
			return fmt.Errorf("withdraw %s: %w", key, err)
		}
		r.store.LogAct("withdraw", key, "")
	}
	if err := r.action("teardown", st, func() error { return r.act.Teardown(name) }); err != nil {
		return fmt.Errorf("teardown: %w", err)
	}
	r.tornDown[name] = time.Now()
	if err := r.store.Remove(name); err != nil {
		return err
	}
	for key := range r.inflightAnn {
		if key.Experiment == name {
			delete(r.inflightAnn, key)
		}
	}
	for key := range r.inflightWd {
		if key.Experiment == name {
			delete(r.inflightWd, key)
		}
	}
	r.mu.Lock()
	delete(r.ensured, name)
	r.mu.Unlock()
	return nil
}
