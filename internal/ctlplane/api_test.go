package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

// apiHarness is a full control plane over the fake actuator, served
// from an in-memory HTTP server.
type apiHarness struct {
	store *Store
	rec   *Reconciler
	hub   *Hub
	act   *fakeActuator
	srv   *httptest.Server
}

func newAPIHarness(t *testing.T) *apiHarness {
	t.Helper()
	act := newFakeActuator()
	cfgStore := config.NewStore()
	store := NewStore(StoreConfig{
		Config: cfgStore,
		BaseModel: func() config.Model {
			return config.Model{
				PlatformASN: 47065,
				GlobalPool:  netip.MustParsePrefix("184.164.224.0/19"),
				PoPs:        []config.PoPSpec{{Name: "seattle"}, {Name: "amsterdam"}},
			}
		},
	})
	hub := NewHub()
	store.OnChange(func(c Change) { hub.Publish(StreamStore, c) })
	rec := NewReconciler(store, act, hub, ReconcilerConfig{
		Resync:         5 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		ActuationGrace: 100 * time.Millisecond,
		Logf:           t.Logf,
	})
	go rec.Run()

	deployer := config.NewDeployer(cfgStore, func(pop string, m config.Model) error { return nil })
	api := NewServer(ServerConfig{
		Store:      store,
		Reconciler: rec,
		Hub:        hub,
		Deploy:     &Deploy{Store: cfgStore, Deployer: deployer},
		Queries: Queries{
			Fleet: func() any { return []string{"seattle", "amsterdam"} },
		},
		Logf: t.Logf,
	})
	mux := http.NewServeMux()
	api.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		rec.Close()
		hub.Close()
	})
	return &apiHarness{store: store, rec: rec, hub: hub, act: act, srv: srv}
}

func (h *apiHarness) do(t *testing.T, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, h.srv.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := h.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestAPICreateLifecycle(t *testing.T) {
	h := newAPIHarness(t)
	spec := testSpec("alpha")

	// Dry run validates without storing.
	resp, body := h.do(t, "POST", "/v1/experiments?dry_run=1", spec)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"dry_run": true`) {
		t.Fatalf("dry run -> %d %s", resp.StatusCode, body)
	}
	if _, err := h.store.Get("alpha"); err == nil {
		t.Fatal("dry run stored the object")
	}

	resp, body = h.do(t, "POST", "/v1/experiments", spec)
	if resp.StatusCode != 201 {
		t.Fatalf("create -> %d %s", resp.StatusCode, body)
	}
	var view objectView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decode create response: %v", err)
	}
	rev := view.Object.Revision

	// Idempotent re-POST: 200, same revision.
	resp, body = h.do(t, "POST", "/v1/experiments", spec)
	if resp.StatusCode != 200 {
		t.Fatalf("re-create -> %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &view)
	if view.Object.Revision != rev {
		t.Fatalf("re-create bumped revision %d -> %d", rev, view.Object.Revision)
	}

	// Conflicting POST: 409.
	diff := testSpec("alpha")
	diff.Plan = "other"
	resp, _ = h.do(t, "POST", "/v1/experiments", diff)
	if resp.StatusCode != 409 {
		t.Fatalf("conflicting create -> %d, want 409", resp.StatusCode)
	}

	// GET returns object + status once the reconciler has seen it.
	waitPhase(t, h.rec, "alpha", PhaseConverged)
	resp, body = h.do(t, "GET", "/v1/experiments/alpha", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("get -> %d", resp.StatusCode)
	}
	json.Unmarshal(body, &view)
	if view.Status == nil || view.Status.Phase != PhaseConverged {
		t.Fatalf("get status = %+v, want converged", view.Status)
	}

	// PATCH with stale revision: 409. With current: 200.
	next := testSpec("alpha")
	next.Plan = "v2"
	resp, _ = h.do(t, "PATCH", "/v1/experiments/alpha", map[string]any{"revision": rev + 99, "spec": next})
	if resp.StatusCode != 409 {
		t.Fatalf("stale patch -> %d, want 409", resp.StatusCode)
	}
	resp, body = h.do(t, "PATCH", "/v1/experiments/alpha", map[string]any{"revision": rev, "spec": next})
	if resp.StatusCode != 200 {
		t.Fatalf("patch -> %d %s", resp.StatusCode, body)
	}

	// DELETE tombstones (202) and the reconciler removes it.
	resp, _ = h.do(t, "DELETE", "/v1/experiments/alpha", nil)
	if resp.StatusCode != 202 {
		t.Fatalf("delete -> %d, want 202", resp.StatusCode)
	}
	waitGone(t, h.store, "alpha")
	resp, _ = h.do(t, "GET", "/v1/experiments/alpha", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("get after teardown -> %d, want 404", resp.StatusCode)
	}
}

func TestAPIRejectsBadSpecs(t *testing.T) {
	h := newAPIHarness(t)
	cases := []struct {
		name string
		body []byte
	}{
		{"unknown field", []byte(`{"name":"x","owner":"o","asn":1,"prefixes":["184.164.224.0/24"],"bogus":1}`)},
		{"trailing data", []byte(`{"name":"x","owner":"o","asn":1,"prefixes":["184.164.224.0/24"]}{}`)},
		{"bad name", []byte(`{"name":"Not OK","owner":"o","asn":1,"prefixes":["184.164.224.0/24"]}`)},
		{"no prefixes", []byte(`{"name":"x","owner":"o","asn":1}`)},
		{"not json", []byte(`announce all the things`)},
	}
	for _, c := range cases {
		resp, body := h.do(t, "POST", "/v1/experiments", c.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s -> %d %s, want 400", c.name, resp.StatusCode, body)
		}
	}
}

func TestAPIIndexAndStatus(t *testing.T) {
	h := newAPIHarness(t)
	resp, body := h.do(t, "GET", "/v1/", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/v1/experiments") {
		t.Fatalf("index -> %d %s", resp.StatusCode, body)
	}
	h.do(t, "POST", "/v1/experiments", testSpec("alpha"))
	waitPhase(t, h.rec, "alpha", PhaseConverged)
	resp, body = h.do(t, "GET", "/v1/status", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"converged"`) {
		t.Fatalf("status -> %d %s", resp.StatusCode, body)
	}
	resp, body = h.do(t, "GET", "/v1/experiments", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"alpha"`) {
		t.Fatalf("list -> %d %s", resp.StatusCode, body)
	}
	resp, body = h.do(t, "GET", "/v1/fleet", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "seattle") {
		t.Fatalf("fleet -> %d %s", resp.StatusCode, body)
	}
}

func TestAPIDeployVerbs(t *testing.T) {
	h := newAPIHarness(t)
	h.do(t, "POST", "/v1/experiments", testSpec("alpha"))

	// The create mirrored a config revision; canary it to one PoP.
	obj, _ := h.store.Get("alpha")
	if obj.ConfigRev == 0 {
		t.Fatal("create did not mirror a config revision")
	}
	resp, body := h.do(t, "POST", "/v1/deploy/canary",
		map[string]any{"revision": obj.ConfigRev, "pops": []string{"seattle"}})
	if resp.StatusCode != 200 {
		t.Fatalf("canary -> %d %s", resp.StatusCode, body)
	}
	resp, body = h.do(t, "POST", "/v1/deploy/promote", map[string]any{"revision": obj.ConfigRev})
	if resp.StatusCode != 200 {
		t.Fatalf("promote -> %d %s", resp.StatusCode, body)
	}
	var result map[string]any
	json.Unmarshal(body, &result)
	deployed, _ := result["deployed"].(map[string]any)
	if len(deployed) != 2 {
		t.Fatalf("promote deployed = %v, want both PoPs", deployed)
	}
	resp, body = h.do(t, "GET", "/v1/deploy", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "created alpha") {
		t.Fatalf("deploy status -> %d %s", resp.StatusCode, body)
	}
	resp, body = h.do(t, "POST", "/v1/deploy/rollback", map[string]any{"revision": obj.ConfigRev})
	if resp.StatusCode != 200 {
		t.Fatalf("rollback -> %d %s", resp.StatusCode, body)
	}
	// Bad revision surfaces as conflict with the deployment truth.
	resp, _ = h.do(t, "POST", "/v1/deploy/promote", map[string]any{"revision": 9999})
	if resp.StatusCode != 409 {
		t.Fatalf("bad promote -> %d, want 409", resp.StatusCode)
	}
}

func TestAPIUnprocessableWhenActuatorRejects(t *testing.T) {
	h := newAPIHarness(t)
	h.act.setFail("validate", fmt.Errorf("no such pop"))
	resp, _ := h.do(t, "POST", "/v1/experiments", testSpec("alpha"))
	if resp.StatusCode != 422 {
		t.Fatalf("rejected create -> %d, want 422", resp.StatusCode)
	}
}
