package ctlplane

import (
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// metric and gaugeMetric are the thin shims the package registers
// against the default registry, kept as interfaces so unit tests run
// without touching global state in surprising ways.
type metric interface{ Inc() }

type gaugeMetric interface{ Set(int64) }

func counter(name string, labels ...telemetry.Label) *telemetry.Counter {
	return telemetry.Default().Counter(name, labels...)
}

func gauge(name string, labels ...telemetry.Label) *telemetry.Gauge {
	return telemetry.Default().Gauge(name, labels...)
}

func label(key, value string) telemetry.Label { return telemetry.L(key, value) }

// CapsFor derives the capability grant a spec needs: least privilege,
// widened only by what the announcements actually use (§4.7 — admins
// trim risky requests; here the spec is the request and the grant is
// its exact footprint).
func CapsFor(spec Spec) policy.Capabilities {
	var caps policy.Capabilities
	for _, a := range spec.Announcements {
		if n := len(a.Poison); n > caps.MaxPoisonedASNs {
			caps.MaxPoisonedASNs = n
		}
		// Steering communities (to/except neighbors) are platform-directed
		// and extracted before policy; only user communities count.
		if n := len(a.Communities); n > caps.MaxCommunities {
			caps.MaxCommunities = n
		}
	}
	return caps
}
