package ctlplane

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/config"
)

// Durable desired-state layer: a write-ahead log plus snapshot making
// peeringd crash-only. Every Store commit (create / CAS-update /
// tombstone / remove), every deploy operation, and every successful
// actuation fingerprint is appended to the WAL and fsynced before the
// commit is acknowledged; on startup the snapshot and WAL replay
// rebuild desired state exactly — per-object revisions, the mirrored
// config revision log with its commit notes, the deployed map, and the
// fingerprints announcements were actuated with (so recovery re-adopts
// matching installs without burning the §4.7 update budget).
//
// The on-disk discipline mirrors internal/history's segment log:
// length-prefixed CRC-32C records, fsync-on-commit, snapshot-then-
// truncate compaction, and fail-closed rejection of corruption with
// the byte offset. The one deliberate exception is the final record: a
// crash mid-append leaves a torn tail (short frame or bad checksum
// extending to EOF), which is expected damage — it is truncated away
// and recovery proceeds from the last durable record. A bad checksum
// or sequence gap anywhere *before* the tail is real corruption and
// recovery refuses to proceed.

// walCastagnoli is the CRC-32C polynomial every frame is checked with
// (same discipline as internal/history).
var walCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// walMagic / snapMagic head the two files in a state directory.
var (
	walMagic  = []byte("vbgpwal1")
	snapMagic = []byte("vbgpsnp1")
)

// File names inside the state directory.
const (
	walFileName  = "ctlplane.wal"
	snapFileName = "ctlplane.snap"
)

// maxWALRecord bounds one frame's payload; anything larger mid-file is
// corruption, not data (a spec is capped at 1 MiB; a full-model commit
// record stays well under this).
const maxWALRecord = 8 << 20

// defaultCompactEvery is how many appended records trigger an automatic
// snapshot-then-truncate compaction.
const defaultCompactEvery = 1024

// Record types.
const (
	walTypeCommit byte = 1
	walTypeDeploy byte = 2
	walTypeAct    byte = 3
)

// walCommit is the durable form of one Store commit. Created, updated
// and deleted commits carry the full object; removed commits carry only
// the name. Model and Note reproduce the commit's mirrored config
// revision verbatim, so replay rebuilds the config.Store revision log
// byte-for-byte (including revision numbering and commit notes).
type walCommit struct {
	Kind     ChangeKind    `json:"kind"`
	Name     string        `json:"name"`
	Revision int64         `json:"revision"`
	Object   *Object       `json:"object,omitempty"`
	Model    *config.Model `json:"model,omitempty"`
	Note     string        `json:"note,omitempty"`
}

// walDeploy is one deploy-plane operation. Deployed snapshots the
// per-PoP revision map after the operation (replay restores it without
// re-applying); NewRevision records the revision a rollback appended.
type walDeploy struct {
	Verb        string         `json:"verb"`
	Revision    int            `json:"revision"`
	PoPs        []string       `json:"pops,omitempty"`
	NewRevision int            `json:"new_revision,omitempty"`
	Deployed    map[string]int `json:"deployed,omitempty"`
}

// walAct is one successful actuation: the fingerprint an announcement
// was installed with (op "announce") or its retraction (op "withdraw").
// Recovery hands these to the actuator so matching installs are
// re-adopted with exact knob knowledge instead of re-announced.
type walAct struct {
	Op         string `json:"op"` // "announce" | "withdraw"
	Experiment string `json:"experiment"`
	PoP        string `json:"pop"`
	Prefix     string `json:"prefix"`
	Version    uint32 `json:"version"`
	Fp         string `json:"fp,omitempty"`
}

// key rebuilds the in-memory announcement key.
func (a walAct) key() (AnnKey, error) {
	p, err := netip.ParsePrefix(a.Prefix)
	if err != nil {
		return AnnKey{}, fmt.Errorf("bad act prefix %q: %v", a.Prefix, err)
	}
	return AnnKey{Experiment: a.Experiment, PoP: a.PoP, Prefix: p, Version: a.Version}, nil
}

// walSnapshot is the compaction checkpoint: full store, config-mirror,
// deploy and actuation state as of sequence Seq. WAL records with
// seq <= Seq are superseded.
type walSnapshot struct {
	Seq      uint64         `json:"seq"`
	NextRev  int64          `json:"next_rev"`
	Objects  []Object       `json:"objects,omitempty"`
	Config   []ConfigRev    `json:"config,omitempty"`
	Deployed map[string]int `json:"deployed,omitempty"`
	Acts     []walAct       `json:"acts,omitempty"`
}

// ConfigRev is one recovered config.Store revision: the model and its
// commit note.
type ConfigRev struct {
	Model config.Model `json:"model"`
	Note  string       `json:"note,omitempty"`
}

// RecoveredState is what OpenWAL rebuilds from snapshot + replay: the
// input to a Store resuming after a restart.
type RecoveredState struct {
	// Seq is the last replayed WAL sequence number.
	Seq uint64
	// NextRev seeds the store's global revision counter.
	NextRev int64
	// Objects are the surviving desired objects (tombstones included).
	Objects []Object
	// Config reproduces the mirrored config.Store revision log.
	Config []ConfigRev
	// Deployed is the per-PoP deployed-revision map.
	Deployed map[string]int
	// Acts maps each announcement believed installed to the fingerprint
	// it was actuated with — the recovery reconciliation pass re-adopts
	// matching installs instead of re-announcing them.
	Acts map[AnnKey]string
}

// WAL is the append side of the log: one open file, fsynced per record.
type WAL struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	seq      uint64
	appended int // records since the last snapshot

	// CompactEvery is how many appends trigger auto-compaction
	// (default 1024; set before use).
	CompactEvery int
	// snapshot builds the compaction checkpoint; installed by the Store
	// that owns this WAL. Called with the store lock held.
	snapshot func() walSnapshot

	mAppends  metric
	mCompacts metric
	mReplays  metric
}

// encodeFrame wraps a payload as one length-prefixed CRC'd frame.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.Checksum(payload, walCastagnoli))
	copy(out[8:], payload)
	return out
}

// encodeRecord builds a frame payload: sequence, type tag, JSON body.
func encodeRecord(seq uint64, typ byte, body any) ([]byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 9+len(data))
	binary.BigEndian.PutUint64(payload[0:8], seq)
	payload[8] = typ
	copy(payload[9:], data)
	return payload, nil
}

// walRecord is one decoded record.
type walRecord struct {
	seq  uint64
	typ  byte
	body []byte
}

// DecodeWALRecord parses one frame payload (the bytes after the
// length+CRC header): sequence, type tag, and a strictly-decoded JSON
// body. It is the unit the fuzz target drives.
func DecodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) < 9 {
		return rec, fmt.Errorf("ctlplane: wal record too short (%d bytes)", len(payload))
	}
	rec.seq = binary.BigEndian.Uint64(payload[0:8])
	rec.typ = payload[8]
	rec.body = payload[9:]
	switch rec.typ {
	case walTypeCommit:
		var c walCommit
		if err := json.Unmarshal(rec.body, &c); err != nil {
			return rec, fmt.Errorf("ctlplane: bad commit record: %v", err)
		}
		switch c.Kind {
		case ChangeCreated, ChangeUpdated, ChangeDeleted, ChangeRemoved:
		default:
			return rec, fmt.Errorf("ctlplane: commit record has unknown kind %q", c.Kind)
		}
		if c.Name == "" {
			return rec, fmt.Errorf("ctlplane: commit record has no name")
		}
		if c.Revision <= 0 {
			return rec, fmt.Errorf("ctlplane: commit record has revision %d", c.Revision)
		}
	case walTypeDeploy:
		var d walDeploy
		if err := json.Unmarshal(rec.body, &d); err != nil {
			return rec, fmt.Errorf("ctlplane: bad deploy record: %v", err)
		}
		switch d.Verb {
		case "canary", "promote", "rollback":
		default:
			return rec, fmt.Errorf("ctlplane: deploy record has unknown verb %q", d.Verb)
		}
	case walTypeAct:
		var a walAct
		if err := json.Unmarshal(rec.body, &a); err != nil {
			return rec, fmt.Errorf("ctlplane: bad act record: %v", err)
		}
		if a.Op != "announce" && a.Op != "withdraw" {
			return rec, fmt.Errorf("ctlplane: act record has unknown op %q", a.Op)
		}
		if _, err := a.key(); err != nil {
			return rec, fmt.Errorf("ctlplane: %v", err)
		}
	default:
		return rec, fmt.Errorf("ctlplane: unknown wal record type %d", rec.typ)
	}
	return rec, nil
}

// walCorruptionError marks unrecoverable log damage: recovery fails
// closed rather than silently dropping committed state.
type walCorruptionError struct {
	file   string
	offset int64
	msg    string
}

func (e *walCorruptionError) Error() string {
	return fmt.Sprintf("ctlplane: %s: offset %d: %s (refusing to recover from a corrupt log)", e.file, e.offset, e.msg)
}

// decodeWALFile reads every intact frame of a WAL file. A torn tail —
// an incomplete final frame, or a checksum failure on a frame that
// extends to EOF — is expected crash damage: decoding stops and the
// returned truncateAt offset marks where the durable prefix ends.
// Damage anywhere else fails closed with the byte offset.
func decodeWALFile(name string, data []byte) (recs []walRecord, truncateAt int64, err error) {
	if len(data) < len(walMagic) {
		if len(data) == 0 {
			return nil, 0, nil
		}
		return nil, 0, &walCorruptionError{name, 0, "short header"}
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return nil, 0, &walCorruptionError{name, 0, fmt.Sprintf("bad magic %q", data[:len(walMagic)])}
	}
	off := int64(len(walMagic))
	var lastSeq uint64
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return recs, off, nil // torn frame header at the tail
		}
		length := binary.BigEndian.Uint32(rest[0:4])
		wantCRC := binary.BigEndian.Uint32(rest[4:8])
		end := int(off) + 8 + int(length)
		if length > maxWALRecord {
			if end >= len(data) {
				return recs, off, nil // garbage length from a torn write
			}
			return nil, 0, &walCorruptionError{name, off, fmt.Sprintf("record length %d exceeds %d", length, maxWALRecord)}
		}
		if end > len(data) {
			return recs, off, nil // torn payload at the tail
		}
		payload := rest[8 : 8+length]
		if crc32.Checksum(payload, walCastagnoli) != wantCRC {
			if end == len(data) {
				return recs, off, nil // torn final frame
			}
			return nil, 0, &walCorruptionError{name, off, "checksum mismatch"}
		}
		rec, derr := DecodeWALRecord(payload)
		if derr != nil {
			return nil, 0, &walCorruptionError{name, off, derr.Error()}
		}
		if len(recs) > 0 && rec.seq != lastSeq+1 {
			return nil, 0, &walCorruptionError{name, off, fmt.Sprintf("sequence %d after %d", rec.seq, lastSeq)}
		}
		lastSeq = rec.seq
		recs = append(recs, rec)
		off = int64(end)
	}
	return recs, -1, nil // clean to EOF
}

// loadSnapshot reads and verifies the snapshot file; a missing file is
// a fresh start, any damage is fail-closed (snapshots are written
// atomically, so a bad one is corruption, not a crash artifact).
func loadSnapshot(path string) (*walSnapshot, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(data) < len(snapMagic)+8 {
		return nil, &walCorruptionError{name, 0, "short snapshot"}
	}
	if string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, &walCorruptionError{name, 0, fmt.Sprintf("bad magic %q", data[:len(snapMagic)])}
	}
	body := data[len(snapMagic):]
	length := binary.BigEndian.Uint32(body[0:4])
	wantCRC := binary.BigEndian.Uint32(body[4:8])
	if int(length) != len(body)-8 {
		return nil, &walCorruptionError{name, int64(len(snapMagic)), fmt.Sprintf("length %d does not match %d payload bytes", length, len(body)-8)}
	}
	payload := body[8:]
	if crc32.Checksum(payload, walCastagnoli) != wantCRC {
		return nil, &walCorruptionError{name, int64(len(snapMagic)), "checksum mismatch"}
	}
	var snap walSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, &walCorruptionError{name, int64(len(snapMagic) + 8), fmt.Sprintf("bad snapshot body: %v", err)}
	}
	return &snap, nil
}

// OpenWAL opens (creating if needed) the durable desired-state log in
// dir and replays snapshot + WAL into a RecoveredState. A torn tail is
// truncated; anything else wrong with the files fails closed. The
// returned state is nil when the directory held no prior state.
func OpenWAL(dir string) (*WAL, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ctlplane: state dir: %w", err)
	}
	snap, err := loadSnapshot(filepath.Join(dir, snapFileName))
	if err != nil {
		return nil, nil, err
	}
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	recs, truncateAt, err := decodeWALFile(walFileName, data)
	if err != nil {
		return nil, nil, err
	}

	w := &WAL{
		dir:          dir,
		CompactEvery: defaultCompactEvery,
		mAppends:     counter("ctlplane_wal_appends_total"),
		mCompacts:    counter("ctlplane_wal_compactions_total"),
		mReplays:     counter("ctlplane_wal_replayed_records_total"),
	}

	fresh := snap == nil && len(recs) == 0 && truncateAt <= 0
	var rec *RecoveredState
	if !fresh {
		rec, err = replay(snap, recs)
		if err != nil {
			return nil, nil, err
		}
		w.appended = len(recs)
	}
	if rec != nil {
		w.seq = rec.Seq
	}

	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else if truncateAt >= 0 {
		// Drop the torn tail so the next append starts on a frame
		// boundary.
		if err := f.Truncate(truncateAt); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(truncateAt, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else {
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	w.f = f
	return w, rec, nil
}

// replay folds WAL records over the snapshot baseline.
func replay(snap *walSnapshot, recs []walRecord) (*RecoveredState, error) {
	st := &RecoveredState{
		Deployed: make(map[string]int),
		Acts:     make(map[AnnKey]string),
	}
	objects := make(map[string]Object)
	if snap != nil {
		st.Seq = snap.Seq
		st.NextRev = snap.NextRev
		for _, obj := range snap.Objects {
			objects[obj.Spec.Name] = obj
		}
		st.Config = append(st.Config, snap.Config...)
		for pop, rev := range snap.Deployed {
			st.Deployed[pop] = rev
		}
		for _, a := range snap.Acts {
			key, err := a.key()
			if err != nil {
				return nil, fmt.Errorf("ctlplane: %s: %v", snapFileName, err)
			}
			st.Acts[key] = a.Fp
		}
	}
	for _, r := range recs {
		if r.seq <= st.Seq {
			// Superseded by the snapshot (a crash between snapshot write
			// and WAL truncate leaves the old records behind).
			continue
		}
		st.Seq = r.seq
		switch r.typ {
		case walTypeCommit:
			var c walCommit
			if err := json.Unmarshal(r.body, &c); err != nil {
				return nil, fmt.Errorf("ctlplane: wal seq %d: %v", r.seq, err)
			}
			if c.Revision <= st.NextRev {
				return nil, fmt.Errorf("ctlplane: wal seq %d: duplicate revision %d (store already at %d)", r.seq, c.Revision, st.NextRev)
			}
			st.NextRev = c.Revision
			switch c.Kind {
			case ChangeCreated, ChangeUpdated, ChangeDeleted:
				if c.Object == nil {
					return nil, fmt.Errorf("ctlplane: wal seq %d: %s commit without object", r.seq, c.Kind)
				}
				objects[c.Name] = *c.Object
			case ChangeRemoved:
				delete(objects, c.Name)
				for key := range st.Acts {
					if key.Experiment == c.Name {
						delete(st.Acts, key)
					}
				}
			}
			if c.Model != nil {
				st.Config = append(st.Config, ConfigRev{Model: *c.Model, Note: c.Note})
			}
		case walTypeDeploy:
			var d walDeploy
			if err := json.Unmarshal(r.body, &d); err != nil {
				return nil, fmt.Errorf("ctlplane: wal seq %d: %v", r.seq, err)
			}
			if d.Verb == "rollback" {
				if d.Revision < 1 || d.Revision > len(st.Config) {
					return nil, fmt.Errorf("ctlplane: wal seq %d: rollback to unknown revision %d", r.seq, d.Revision)
				}
				st.Config = append(st.Config, ConfigRev{Model: st.Config[d.Revision-1].Model})
			}
			for pop, rev := range d.Deployed {
				st.Deployed[pop] = rev
			}
		case walTypeAct:
			var a walAct
			if err := json.Unmarshal(r.body, &a); err != nil {
				return nil, fmt.Errorf("ctlplane: wal seq %d: %v", r.seq, err)
			}
			key, err := a.key()
			if err != nil {
				return nil, fmt.Errorf("ctlplane: wal seq %d: %v", r.seq, err)
			}
			if a.Op == "announce" {
				st.Acts[key] = a.Fp
			} else {
				delete(st.Acts, key)
			}
		}
	}
	names := make([]string, 0, len(objects))
	for name := range objects {
		names = append(names, name)
	}
	// Deterministic recovery order (List() sorts too, but the store
	// seeds from this slice directly).
	sort.Strings(names)
	for _, name := range names {
		st.Objects = append(st.Objects, objects[name])
	}
	return st, nil
}

// append writes one record and fsyncs it — the durability point every
// commit waits on.
func (w *WAL) append(typ byte, body any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("ctlplane: wal is closed")
	}
	payload, err := encodeRecord(w.seq+1, typ, body)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(encodeFrame(payload)); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.seq++
	w.appended++
	w.mAppends.Inc()
	return nil
}

// needsCompact reports whether the appended-record count passed the
// compaction threshold.
func (w *WAL) needsCompact() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	every := w.CompactEvery
	if every <= 0 {
		every = defaultCompactEvery
	}
	return w.appended >= every
}

// Compact checkpoints the current state into the snapshot file
// (written atomically: temp file + rename) and truncates the WAL —
// the snapshot-then-truncate discipline. The caller must hold the
// owning store's lock (the snapshot hook reads store state directly).
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil || w.snapshot == nil {
		return fmt.Errorf("ctlplane: wal not ready to compact")
	}
	snap := w.snapshot()
	snap.Seq = w.seq
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	data := append(append([]byte(nil), snapMagic...), encodeFrame(payload)...)
	path := filepath.Join(w.dir, snapFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Snapshot is durable; the WAL's records are superseded. A crash
	// before the truncate is harmless — replay skips seq <= snapshot.
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.appended = 0
	w.mCompacts.Inc()
	return nil
}

// Seq returns the last appended sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close closes the log file. Outstanding records are already fsynced.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
