package ctlplane

import (
	"errors"
	"net/netip"
	"testing"

	"repro/internal/config"
)

func testSpec(name string) Spec {
	return Spec{
		Name:     name,
		Owner:    "researcher@example.edu",
		ASN:      61001,
		Prefixes: []string{"184.164.224.0/24"},
		Announcements: []Announcement{
			{Prefix: "184.164.224.0/24", PoPs: []string{"seattle"}},
		},
	}
}

func TestStoreCreateIdempotent(t *testing.T) {
	s := NewStore(StoreConfig{})
	obj, created, err := s.Create(testSpec("alpha"))
	if err != nil || !created {
		t.Fatalf("Create = %v, created=%v", err, created)
	}
	if obj.Revision != 1 {
		t.Fatalf("first revision = %d, want 1", obj.Revision)
	}
	// Identical re-create: no-op, same object, no revision bump.
	again, created, err := s.Create(testSpec("alpha"))
	if err != nil || created {
		t.Fatalf("re-Create = %v, created=%v, want nil,false", err, created)
	}
	if again.Revision != obj.Revision {
		t.Fatalf("re-Create bumped revision %d -> %d", obj.Revision, again.Revision)
	}
	// Different spec under the same name: conflict.
	diff := testSpec("alpha")
	diff.Plan = "different"
	if _, _, err := s.Create(diff); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting Create = %v, want ErrConflict", err)
	}
}

func TestStoreUpdateCAS(t *testing.T) {
	s := NewStore(StoreConfig{})
	obj, _, _ := s.Create(testSpec("alpha"))

	next := testSpec("alpha")
	next.Plan = "phase two"
	upd, err := s.Update("alpha", obj.Revision, next)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if upd.Revision <= obj.Revision {
		t.Fatalf("Update revision %d not past %d", upd.Revision, obj.Revision)
	}
	// Stale revision: CAS failure carrying the current object.
	stale := testSpec("alpha")
	stale.Plan = "phase three"
	cur, err := s.Update("alpha", obj.Revision, stale)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale Update = %v, want ErrConflict", err)
	}
	if cur.Revision != upd.Revision {
		t.Fatalf("conflict response revision = %d, want current %d", cur.Revision, upd.Revision)
	}
	// Identical spec at the current revision: no-op.
	same, err := s.Update("alpha", upd.Revision, next)
	if err != nil || same.Revision != upd.Revision {
		t.Fatalf("no-op Update = %v rev %d, want nil rev %d", err, same.Revision, upd.Revision)
	}
	// Name mismatch between path and spec.
	if _, err := s.Update("alpha", upd.Revision, testSpec("beta")); err == nil {
		t.Fatal("name-mismatch Update succeeded")
	}
}

func TestStoreDeleteLifecycle(t *testing.T) {
	s := NewStore(StoreConfig{})
	obj, _, _ := s.Create(testSpec("alpha"))

	if _, err := s.Delete("alpha", obj.Revision+99); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale Delete = %v, want ErrConflict", err)
	}
	tomb, err := s.Delete("alpha", obj.Revision)
	if err != nil || !tomb.Deleting {
		t.Fatalf("Delete = %v deleting=%v", err, tomb.Deleting)
	}
	// Idempotent.
	if _, err := s.Delete("alpha", 0); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
	// Tombstoned objects refuse updates and recreates.
	if _, err := s.Update("alpha", tomb.Revision, testSpec("alpha")); !errors.Is(err, ErrDeleting) {
		t.Fatalf("Update of tombstone = %v, want ErrDeleting", err)
	}
	if _, _, err := s.Create(testSpec("alpha")); !errors.Is(err, ErrDeleting) {
		t.Fatalf("Create over tombstone = %v, want ErrDeleting", err)
	}
	if err := s.Remove("alpha"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := s.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v, want ErrNotFound", err)
	}
	// Removing a live object is refused.
	s.Create(testSpec("beta"))
	if err := s.Remove("beta"); err == nil {
		t.Fatal("Remove of live object succeeded")
	}
}

func TestStoreMirrorsConfigRevisions(t *testing.T) {
	cfg := config.NewStore()
	s := NewStore(StoreConfig{
		Config: cfg,
		BaseModel: func() config.Model {
			return config.Model{
				PlatformASN: 47065,
				GlobalPool:  netip.MustParsePrefix("184.164.224.0/19"),
				PoPs:        []config.PoPSpec{{Name: "seattle"}},
			}
		},
	})
	obj, _, err := s.Create(testSpec("alpha"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if obj.ConfigRev == 0 {
		t.Fatal("Create did not mirror a config revision")
	}
	m, err := cfg.Get(obj.ConfigRev)
	if err != nil {
		t.Fatalf("config.Get(%d): %v", obj.ConfigRev, err)
	}
	if len(m.Experiments) != 1 || m.Experiments[0].Name != "alpha" {
		t.Fatalf("mirrored model experiments = %+v", m.Experiments)
	}
	if !m.Experiments[0].Approved {
		t.Fatal("mirrored experiment not approved")
	}
	if note := cfg.Note(obj.ConfigRev); note == "" {
		t.Fatal("mirrored revision has no commit note")
	}
	// Tombstoning renders the experiment out of the mirror.
	tomb, _ := s.Delete("alpha", obj.Revision)
	m, _ = cfg.Get(tomb.ConfigRev)
	if len(m.Experiments) != 0 {
		t.Fatalf("tombstoned experiment still mirrored: %+v", m.Experiments)
	}
}

func TestStoreChangeNotifications(t *testing.T) {
	s := NewStore(StoreConfig{})
	var changes []Change
	s.OnChange(func(c Change) { changes = append(changes, c) })
	kicks := 0
	s.OnCommit(func() { kicks++ })

	obj, _, _ := s.Create(testSpec("alpha"))
	next := testSpec("alpha")
	next.Plan = "v2"
	upd, _ := s.Update("alpha", obj.Revision, next)
	s.Delete("alpha", upd.Revision)
	s.Remove("alpha")

	want := []ChangeKind{ChangeCreated, ChangeUpdated, ChangeDeleted, ChangeRemoved}
	if len(changes) != len(want) {
		t.Fatalf("got %d changes, want %d: %+v", len(changes), len(want), changes)
	}
	for i, k := range want {
		if changes[i].Kind != k || changes[i].Name != "alpha" {
			t.Fatalf("change %d = %+v, want kind %s", i, changes[i], k)
		}
	}
	if kicks != len(want) {
		t.Fatalf("onCommit fired %d times, want %d", kicks, len(want))
	}
}
