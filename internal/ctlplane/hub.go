package ctlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stream event types. Subscribers filter on these.
const (
	StreamTelemetry = "telemetry" // BMP-style router events (monitoring tee)
	StreamReconcile = "reconcile" // reconciler object transitions
	StreamHealth    = "health"    // guard ladder changes
	StreamStore     = "store"     // desired-state commits
	StreamDeploy    = "deploy"    // canary/promote/rollback actions
)

// StreamEvent is one multiplexed watch event: a type tag, a timestamp,
// and a JSON-marshalable payload.
type StreamEvent struct {
	// Seq is the hub-assigned sequence number; gaps tell a consumer it
	// was too slow and events were dropped.
	Seq  uint64    `json:"seq"`
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	Data any       `json:"data"`
}

// DefaultSubscriberQueue is the per-subscriber buffer when the
// subscription does not override it.
const DefaultSubscriberQueue = 256

// Hub fans events out to subscribers. Publish never blocks: each
// subscriber has its own bounded queue, and a full queue drops the
// event for that subscriber only, with per-subscriber and global drop
// accounting. One stalled dashboard can never hold back the event
// path or its sibling subscribers.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
	seq    atomic.Uint64

	mPublished *counterVecish
	mDropped   metric
	mSubs      gaugeMetric
	mSubsTotal metric
}

// counterVecish caches per-type publish counters.
type counterVecish struct {
	mu sync.Mutex
	m  map[string]metric
}

func (c *counterVecish) inc(typ string) {
	c.mu.Lock()
	ctr, ok := c.m[typ]
	if !ok {
		ctr = counter("ctlplane_watch_events_total", label("type", typ))
		c.m[typ] = ctr
	}
	c.mu.Unlock()
	ctr.Inc()
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{
		subs:       make(map[*Subscriber]struct{}),
		mPublished: &counterVecish{m: make(map[string]metric)},
		mDropped:   counter("ctlplane_watch_dropped_total"),
		mSubs:      gauge("ctlplane_watch_subscribers"),
		mSubsTotal: counter("ctlplane_watch_subscribers_total"),
	}
}

// Subscriber is one watch consumer: a bounded event queue plus drop
// accounting.
type Subscriber struct {
	hub     *Hub
	ch      chan StreamEvent
	types   map[string]bool // nil = all
	dropped atomic.Uint64
	once    sync.Once
}

// Subscribe registers a consumer. types filters the stream (empty =
// everything); queue <= 0 selects DefaultSubscriberQueue. The caller
// must drain Events() and call Close when done.
func (h *Hub) Subscribe(queue int, types ...string) *Subscriber {
	if queue <= 0 {
		queue = DefaultSubscriberQueue
	}
	sub := &Subscriber{hub: h, ch: make(chan StreamEvent, queue)}
	if len(types) > 0 {
		sub.types = make(map[string]bool, len(types))
		for _, t := range types {
			sub.types[t] = true
		}
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		sub.once.Do(func() { close(sub.ch) })
		return sub
	}
	h.subs[sub] = struct{}{}
	n := len(h.subs)
	h.mu.Unlock()
	h.mSubs.Set(int64(n))
	h.mSubsTotal.Inc()
	return sub
}

// Events is the subscriber's receive side. The channel closes when the
// subscriber or the hub closes.
func (s *Subscriber) Events() <-chan StreamEvent { return s.ch }

// Dropped returns how many events this subscriber lost to a full queue.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscriber and closes its channel.
func (s *Subscriber) Close() {
	s.hub.mu.Lock()
	_, registered := s.hub.subs[s]
	delete(s.hub.subs, s)
	n := len(s.hub.subs)
	s.hub.mu.Unlock()
	s.hub.mSubs.Set(int64(n))
	if registered {
		s.once.Do(func() { close(s.ch) })
	}
}

// Publish broadcasts one event. Never blocks; full subscriber queues
// drop with accounting.
func (h *Hub) Publish(typ string, data any) {
	e := StreamEvent{Seq: h.seq.Add(1), Type: typ, Time: time.Now(), Data: data}
	h.mPublished.inc(typ)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	for sub := range h.subs {
		if sub.types != nil && !sub.types[typ] {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			h.mDropped.Inc()
		}
	}
	h.mu.Unlock()
}

// Close shuts the hub down: every subscriber channel closes after its
// buffered events drain, and later Publish/Subscribe calls are no-ops.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = make(map[*Subscriber]struct{})
	h.mu.Unlock()
	h.mSubs.Set(0)
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.ch) })
	}
}

// Subscribers returns the live subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// sseHeartbeat is the keep-alive comment cadence on idle streams.
const sseHeartbeat = 15 * time.Second

// ServeHTTP streams the hub over Server-Sent Events:
//
//	GET /v1/watch?types=reconcile,health&queue=512
//
// Each event is written as "event: <type>\ndata: <json>\n\n"; idle
// periods carry comment heartbeats so proxies keep the stream open.
// The stream ends when the client disconnects or the hub closes (server
// shutdown), after which the handler returns so Shutdown can drain.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "ctlplane: streaming unsupported by connection", http.StatusNotImplemented)
		return
	}
	var types []string
	if raw := strings.TrimSpace(r.FormValue("types")); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			switch t {
			case StreamTelemetry, StreamReconcile, StreamHealth, StreamStore, StreamDeploy:
				types = append(types, t)
			default:
				http.Error(w, fmt.Sprintf("ctlplane: unknown stream type %q", t), http.StatusBadRequest)
				return
			}
		}
	}
	queue := 0
	if raw := r.FormValue("queue"); raw != "" {
		if _, err := fmt.Sscanf(raw, "%d", &queue); err != nil || queue < 0 || queue > 1<<16 {
			http.Error(w, "ctlplane: bad queue size", http.StatusBadRequest)
			return
		}
	}
	sub := h.Subscribe(queue, types...)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": ctlplane watch stream\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// Also surfaces this subscriber's drop count so a slow
			// consumer can tell it is losing events.
			if _, err := fmt.Fprintf(w, ": heartbeat dropped=%d\n\n", sub.Dropped()); err != nil {
				return
			}
			flusher.Flush()
		case e, ok := <-sub.Events():
			if !ok {
				return // hub closed (shutdown)
			}
			data, err := json.Marshal(e)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"seq":%d,"type":%q,"error":"marshal failed"}`, e.Seq, e.Type))
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
