package ctlplane

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeSpec hammers the strict JSON decoder with arbitrary bytes:
// it must never panic, and anything it accepts must be a valid,
// re-encodable spec that survives a decode round trip.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"name":"alpha","owner":"o","asn":61001,"prefixes":["184.164.224.0/24"]}`))
	f.Add([]byte(`{"name":"alpha","owner":"o","asn":61001,"prefixes":["184.164.224.0/24"],` +
		`"announcements":[{"prefix":"184.164.224.0/24","pops":["seattle"],"prepend":2,` +
		`"poison":[3356],"communities":["47065:12"],"to_neighbors":[7],"version":1}],` +
		`"overrides":{"mrai":"50ms"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x","unknown_field":true}`))
	f.Add([]byte(`{"name":"x","owner":"o","asn":1,"prefixes":["184.164.224.0/24"]}{}`))
	f.Add([]byte(`{"name":"x","owner":"o","asn":1,"prefixes":["184.164.224.0/24","184.164.224.0/25"]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be internally consistent...
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		// ...compile without panicking...
		_ = spec.Compile()
		_ = spec.SessionPoPs()
		_ = CapsFor(spec)
		// ...and round-trip losslessly.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v\n%s", err, enc)
		}
		if !spec.Equal(again) {
			t.Fatalf("round trip changed the spec:\n%s", enc)
		}
	})
}
