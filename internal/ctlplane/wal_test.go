package ctlplane

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
)

// recoverTestStore opens a durable store in dir with a fresh mirrored
// config store.
func recoverTestStore(t *testing.T, dir string) (*Store, *WAL, *RecoveredState, *config.Store) {
	t.Helper()
	cfg := config.NewStore()
	s, w, rec, err := RecoverStore(StoreConfig{
		Config: cfg,
		BaseModel: func() config.Model {
			return config.Model{
				PlatformASN: 47065,
				PoPs:        []config.PoPSpec{{Name: "seattle"}},
			}
		},
	}, dir)
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	return s, w, rec, cfg
}

func actKey(exp, pop, prefix string, version uint32) AnnKey {
	return AnnKey{Experiment: exp, PoP: pop, Prefix: netip.MustParsePrefix(prefix), Version: version}
}

func TestWALRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, _, rec, cfg := recoverTestStore(t, dir)
	if rec != nil {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}

	alpha, _, err := s.Create(testSpec("alpha"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	next := testSpec("alpha")
	next.Plan = "phase two"
	alpha2, err := s.Update("alpha", alpha.Revision, next)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, _, err := s.Create(testSpec("beta")); err != nil {
		t.Fatalf("Create beta: %v", err)
	}
	if _, err := s.Delete("beta", 0); err != nil {
		t.Fatalf("Delete beta: %v", err)
	}
	if err := s.Remove("beta"); err != nil {
		t.Fatalf("Remove beta: %v", err)
	}
	keep := actKey("alpha", "seattle", "184.164.224.0/24", 1)
	drop := actKey("alpha", "seattle", "184.164.225.0/24", 2)
	s.LogAct("announce", keep, "fp-keep")
	s.LogAct("announce", drop, "fp-drop")
	s.LogAct("withdraw", drop, "")
	s.LogDeploy("canary", 3, []string{"seattle"}, 0, map[string]int{"seattle": 3})
	s.LogDeploy("promote", 3, nil, 0, map[string]int{"seattle": 3, "amsix": 3})

	wantRev := s.Revision()
	wantNotes := cfg.Notes()
	wantModels := cfg.Revisions()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, _, rec2, cfg2 := recoverTestStore(t, dir)
	defer s2.Close()
	if rec2 == nil {
		t.Fatal("no recovered state after restart")
	}
	if s2.Revision() != wantRev {
		t.Fatalf("recovered revision = %d, want %d", s2.Revision(), wantRev)
	}
	objs := s2.List()
	if len(objs) != 1 || objs[0].Spec.Name != "alpha" {
		t.Fatalf("recovered objects = %+v, want just alpha", objs)
	}
	if objs[0].Revision != alpha2.Revision || objs[0].Spec.Plan != "phase two" {
		t.Fatalf("recovered alpha = rev %d plan %q, want rev %d plan \"phase two\"",
			objs[0].Revision, objs[0].Spec.Plan, alpha2.Revision)
	}
	if got := rec2.Acts[keep]; got != "fp-keep" {
		t.Fatalf("recovered act fp = %q, want fp-keep", got)
	}
	if _, ok := rec2.Acts[drop]; ok {
		t.Fatal("withdrawn act survived recovery")
	}
	if rec2.Deployed["seattle"] != 3 || rec2.Deployed["amsix"] != 3 {
		t.Fatalf("recovered deployed = %v", rec2.Deployed)
	}
	// The mirrored config revision log is rebuilt byte-for-byte:
	// numbering and commit notes included.
	gotModels := cfg2.Revisions()
	if len(gotModels) != len(wantModels) {
		t.Fatalf("recovered %d config revisions, want %d", len(gotModels), len(wantModels))
	}
	for i := range wantModels {
		if len(gotModels[i].Experiments) != len(wantModels[i].Experiments) {
			t.Fatalf("config revision %d: %d experiments, want %d",
				i+1, len(gotModels[i].Experiments), len(wantModels[i].Experiments))
		}
	}
	gotNotes := cfg2.Notes()
	for rev, note := range wantNotes {
		if gotNotes[rev] != note {
			t.Fatalf("config revision %d note = %q, want %q", rev, gotNotes[rev], note)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail func(valid []byte) []byte
	}{
		{"short-frame", func(_ []byte) []byte { return []byte{0, 0, 0} }},
		{"torn-payload", func(_ []byte) []byte {
			// Claims 100 payload bytes, delivers 4.
			return []byte{0, 0, 0, 100, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
		}},
		{"bad-crc-at-eof", func(valid []byte) []byte {
			torn := append([]byte(nil), valid...)
			torn[len(torn)-1] ^= 0xff
			return torn
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _, _, _ := recoverTestStore(t, dir)
			if _, _, err := s.Create(testSpec("alpha")); err != nil {
				t.Fatalf("Create: %v", err)
			}
			s.Close()

			// A valid frame to mangle for the bad-CRC case.
			payload, err := encodeRecord(99, walTypeAct, walAct{
				Op: "announce", Experiment: "alpha", PoP: "seattle",
				Prefix: "184.164.224.0/24", Version: 1, Fp: "fp",
			})
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail(encodeFrame(payload))); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Recovery truncates the torn tail and proceeds.
			s2, _, rec, _ := recoverTestStore(t, dir)
			if rec == nil || len(rec.Objects) != 1 || rec.Objects[0].Spec.Name != "alpha" {
				t.Fatalf("recovered state after torn tail = %+v", rec)
			}
			// The log is writable again on a clean frame boundary.
			if _, _, err := s2.Create(testSpec("beta")); err != nil {
				t.Fatalf("Create after torn-tail recovery: %v", err)
			}
			s2.Close()
			s3, _, rec3, _ := recoverTestStore(t, dir)
			if len(rec3.Objects) != 2 {
				t.Fatalf("recovered %d objects after re-append, want 2", len(rec3.Objects))
			}
			s3.Close()
		})
	}
}

func TestWALMidFileCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := recoverTestStore(t, dir)
	if _, _, err := s.Create(testSpec("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Create(testSpec("beta")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload: damage that does
	// NOT extend to EOF is corruption, not a crash artifact.
	data[len(walMagic)+12] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, _, err = RecoverStore(StoreConfig{}, dir)
	if err == nil {
		t.Fatal("recovery from a mid-file corrupt log succeeded")
	}
	if !strings.Contains(err.Error(), "offset") || !strings.Contains(err.Error(), "refusing to recover") {
		t.Fatalf("corruption error lacks offset / fail-closed wording: %v", err)
	}
}

func TestWALDuplicateRevisionRejected(t *testing.T) {
	dir := t.TempDir()
	obj := &Object{Spec: testSpec("alpha"), Revision: 5}
	var data []byte
	data = append(data, walMagic...)
	for seq := uint64(1); seq <= 2; seq++ {
		payload, err := encodeRecord(seq, walTypeCommit, walCommit{
			Kind: ChangeCreated, Name: "alpha", Revision: 5, Object: obj,
		})
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, encodeFrame(payload)...)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenWAL(dir)
	if err == nil || !strings.Contains(err.Error(), "duplicate revision") {
		t.Fatalf("OpenWAL with duplicate revision = %v, want duplicate-revision error", err)
	}
}

func TestWALSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, w, _, cfg := recoverTestStore(t, dir)
	w.CompactEvery = 2

	names := []string{"a1", "a2", "a3", "a4", "a5"}
	for _, name := range names {
		if _, _, err := s.Create(testSpec(name)); err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
	}
	s.LogAct("announce", actKey("a1", "seattle", "184.164.224.0/24", 1), "fp1")
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("no snapshot after %d commits with CompactEvery=2: %v", len(names), err)
	}
	wantNotes := cfg.Notes()
	s.Close()

	s2, _, rec, cfg2 := recoverTestStore(t, dir)
	defer s2.Close()
	if len(rec.Objects) != len(names) {
		t.Fatalf("recovered %d objects, want %d", len(rec.Objects), len(names))
	}
	for i, name := range names {
		if rec.Objects[i].Spec.Name != name {
			t.Fatalf("recovered object %d = %s, want %s", i, rec.Objects[i].Spec.Name, name)
		}
	}
	if rec.Acts[actKey("a1", "seattle", "184.164.224.0/24", 1)] != "fp1" {
		t.Fatalf("act lost across compaction: %v", rec.Acts)
	}
	gotNotes := cfg2.Notes()
	for rev, note := range wantNotes {
		if gotNotes[rev] != note {
			t.Fatalf("config note %d = %q, want %q after compaction", rev, gotNotes[rev], note)
		}
	}
}
