// Package tunnel implements the authenticated tunnels experiments use to
// reach Peering PoPs (the paper's OpenVPN, §4.5-4.6): a
// challenge-response handshake against credentials issued by the
// management system, followed by a multiplexed carrier with two channels
// — a byte stream for the experiment's BGP session and a frame channel
// bridging the experiment's layer-2 interface onto the PoP's experiment
// LAN.
package tunnel

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/pipe"
)

// Channel tags on the carrier.
const (
	chanControl = 0 // BGP session bytes
	chanData    = 1 // layer-2 frames
)

// maxFrame bounds one mux frame.
const maxFrame = 64 * 1024

// Credentials maps experiment names to shared keys. The configuration
// pipeline generates it from approved experiments.
type Credentials map[string]string

// Tunnel is one authenticated, multiplexed connection.
type Tunnel struct {
	// Name is the authenticated experiment name.
	Name string
	// Payload is the server-provided configuration blob delivered to the
	// client at handshake (e.g. the assigned tunnel address). Empty on
	// the server side.
	Payload []byte

	carrier net.Conn

	writeMu sync.Mutex

	// control buffers inbound control-channel bytes so a late or slow
	// BGP reader never stalls data-plane frames on the shared carrier.
	control *pipe.Buffer

	frameMu sync.Mutex
	onFrame func([]byte)

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

func newTunnel(name string, carrier net.Conn) *Tunnel {
	t := &Tunnel{Name: name, carrier: carrier, control: pipe.NewBuffer(), done: make(chan struct{})}
	go t.readLoop()
	return t
}

// OnFrame installs the receiver for data-plane frames.
func (t *Tunnel) OnFrame(fn func(frame []byte)) {
	t.frameMu.Lock()
	defer t.frameMu.Unlock()
	t.onFrame = fn
}

// SendFrame transmits one layer-2 frame through the tunnel.
func (t *Tunnel) SendFrame(frame []byte) error {
	if err := t.writeMux(chanData, frame); err != nil {
		return err
	}
	framesOut.Inc()
	return nil
}

// Control returns a net.Conn carrying the control channel, suitable for
// a BGP session.
func (t *Tunnel) Control() net.Conn {
	return &controlConn{t: t}
}

// Close tears the tunnel down.
func (t *Tunnel) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.control.Close()
		t.carrier.Close()
	})
	return nil
}

// Done is closed when the tunnel ends.
func (t *Tunnel) Done() <-chan struct{} { return t.done }

func (t *Tunnel) writeMux(ch byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("tunnel: frame of %d bytes exceeds %d", len(payload), maxFrame)
	}
	hdr := [3]byte{ch, byte(len(payload) >> 8), byte(len(payload))}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if _, err := t.carrier.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.carrier.Write(payload)
	return err
}

func (t *Tunnel) readLoop() {
	defer t.Close()
	var hdr [3]byte
	for {
		if _, err := io.ReadFull(t.carrier, hdr[:]); err != nil {
			t.closeErr = err
			return
		}
		length := int(hdr[1])<<8 | int(hdr[2])
		buf := make([]byte, length)
		if _, err := io.ReadFull(t.carrier, buf); err != nil {
			t.closeErr = err
			return
		}
		switch hdr[0] {
		case chanControl:
			if _, err := t.control.Write(buf); err != nil {
				return
			}
		case chanData:
			framesIn.Inc()
			t.frameMu.Lock()
			fn := t.onFrame
			t.frameMu.Unlock()
			if fn != nil {
				fn(buf)
			}
		}
	}
}

// controlConn adapts the control channel to net.Conn.
type controlConn struct {
	t *Tunnel
}

func (c *controlConn) Read(p []byte) (int, error) { return c.t.control.Read(p) }
func (c *controlConn) Write(p []byte) (int, error) {
	// Chunk writes above the mux frame limit.
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxFrame {
			n = maxFrame
		}
		if err := c.t.writeMux(chanControl, p[:n]); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}
func (c *controlConn) Close() error { return c.t.Close() }

type tunnelAddr string

func (a tunnelAddr) Network() string { return "tunnel" }
func (a tunnelAddr) String() string  { return string(a) }

func (c *controlConn) LocalAddr() net.Addr  { return tunnelAddr(c.t.Name) }
func (c *controlConn) RemoteAddr() net.Addr { return tunnelAddr(c.t.Name + "-peer") }

// Deadlines are not used by the simulator.
func (c *controlConn) SetDeadline(time.Time) error      { return nil }
func (c *controlConn) SetReadDeadline(time.Time) error  { return nil }
func (c *controlConn) SetWriteDeadline(time.Time) error { return nil }

// handshake message sizes.
const (
	challengeLen = 32
	macLen       = sha256.Size
)

// Serve authenticates the server side of a tunnel on carrier: it issues
// a random challenge, verifies the client's name and HMAC against creds,
// sends the client its configuration blob (config may be nil), and
// returns the established tunnel. The connection is closed on
// authentication failure.
func Serve(carrier net.Conn, creds Credentials, config func(name string) []byte) (*Tunnel, error) {
	var challenge [challengeLen]byte
	if _, err := rand.Read(challenge[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	if _, err := carrier.Write(challenge[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	var nameLen [1]byte
	if _, err := io.ReadFull(carrier, nameLen[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	name := make([]byte, nameLen[0])
	if _, err := io.ReadFull(carrier, name); err != nil {
		carrier.Close()
		return nil, err
	}
	mac := make([]byte, macLen)
	if _, err := io.ReadFull(carrier, mac); err != nil {
		carrier.Close()
		return nil, err
	}
	key, ok := creds[string(name)]
	if !ok || !hmac.Equal(mac, sign(key, challenge[:], string(name))) {
		authFailures.Inc()
		carrier.Write([]byte{0})
		carrier.Close()
		return nil, fmt.Errorf("tunnel: authentication failed for %q", name)
	}
	var blob []byte
	if config != nil {
		blob = config(string(name))
	}
	if len(blob) > 0xffff {
		carrier.Close()
		return nil, fmt.Errorf("tunnel: config blob too large")
	}
	resp := append([]byte{1, byte(len(blob) >> 8), byte(len(blob))}, blob...)
	if _, err := carrier.Write(resp); err != nil {
		carrier.Close()
		return nil, err
	}
	return newTunnel(string(name), carrier), nil
}

// Dial authenticates the client side of a tunnel on carrier with the
// experiment's name and key.
func Dial(carrier net.Conn, name, key string) (*Tunnel, error) {
	if len(name) > 255 {
		carrier.Close()
		return nil, fmt.Errorf("tunnel: name too long")
	}
	var challenge [challengeLen]byte
	if _, err := io.ReadFull(carrier, challenge[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	msg := append([]byte{byte(len(name))}, name...)
	msg = append(msg, sign(key, challenge[:], name)...)
	if _, err := carrier.Write(msg); err != nil {
		carrier.Close()
		return nil, err
	}
	var verdict [1]byte
	if _, err := io.ReadFull(carrier, verdict[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	if verdict[0] != 1 {
		carrier.Close()
		return nil, fmt.Errorf("tunnel: server rejected credentials for %q", name)
	}
	var blobLen [2]byte
	if _, err := io.ReadFull(carrier, blobLen[:]); err != nil {
		carrier.Close()
		return nil, err
	}
	blob := make([]byte, int(blobLen[0])<<8|int(blobLen[1]))
	if _, err := io.ReadFull(carrier, blob); err != nil {
		carrier.Close()
		return nil, err
	}
	t := newTunnel(name, carrier)
	t.Payload = blob
	return t, nil
}

func sign(key string, challenge []byte, name string) []byte {
	h := hmac.New(sha256.New, []byte(key))
	h.Write(challenge)
	h.Write([]byte(name))
	return h.Sum(nil)
}
