package tunnel

import "repro/internal/telemetry"

// Package-wide counters resolved once against the default registry (the
// resolved-pointer pattern — hot paths touch an atomic, never a map).

var (
	framesIn     = telemetry.Default().Counter("tunnel_frames_in_total")
	framesOut    = telemetry.Default().Counter("tunnel_frames_out_total")
	authFailures = telemetry.Default().Counter("tunnel_auth_failures_total")
	reconnects   = telemetry.Default().Counter("tunnel_reconnect_attempts_total")
)

// CountReconnectAttempt records one tunnel re-dial attempt. The client
// toolkit calls it from its recovery path; the tunnel package itself
// has no dial loop.
func CountReconnectAttempt() { reconnects.Inc() }
