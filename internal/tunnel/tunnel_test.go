package tunnel

import (
	"bytes"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/pipe"
)

func pair(t *testing.T, creds Credentials, name, key string) (*Tunnel, *Tunnel) {
	t.Helper()
	ca, cb := pipe.New()
	serverCh := make(chan *Tunnel, 1)
	errCh := make(chan error, 1)
	go func() {
		srv, err := Serve(ca, creds, func(name string) []byte { return []byte("cfg:" + name) })
		if err != nil {
			errCh <- err
			return
		}
		serverCh <- srv
	}()
	client, err := Dial(cb, name, key)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	select {
	case srv := <-serverCh:
		return srv, client
	case err := <-errCh:
		t.Fatalf("serve: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("handshake hung")
	}
	return nil, nil
}

func TestHandshakeSuccess(t *testing.T) {
	srv, cli := pair(t, Credentials{"exp1": "secret"}, "exp1", "secret")
	defer srv.Close()
	defer cli.Close()
	if srv.Name != "exp1" || cli.Name != "exp1" {
		t.Errorf("names: %q %q", srv.Name, cli.Name)
	}
	if string(cli.Payload) != "cfg:exp1" {
		t.Errorf("payload = %q", cli.Payload)
	}
}

func TestHandshakeWrongKey(t *testing.T) {
	ca, cb := pipe.New()
	errCh := make(chan error, 1)
	go func() {
		_, err := Serve(ca, Credentials{"exp1": "secret"}, nil)
		errCh <- err
	}()
	if _, err := Dial(cb, "exp1", "wrong"); err == nil {
		t.Fatal("client accepted with wrong key")
	}
	if err := <-errCh; err == nil {
		t.Fatal("server accepted wrong key")
	}
}

func TestHandshakeUnknownExperiment(t *testing.T) {
	ca, cb := pipe.New()
	errCh := make(chan error, 1)
	go func() {
		_, err := Serve(ca, Credentials{"exp1": "secret"}, nil)
		errCh <- err
	}()
	if _, err := Dial(cb, "ghost", "secret"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	<-errCh
}

func TestDataFrames(t *testing.T) {
	srv, cli := pair(t, Credentials{"exp1": "k"}, "exp1", "k")
	defer srv.Close()
	defer cli.Close()

	got := make(chan []byte, 1)
	srv.OnFrame(func(f []byte) { got <- append([]byte(nil), f...) })

	frame := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := cli.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if !bytes.Equal(f, frame) {
			t.Errorf("frame %x", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame not delivered")
	}

	// Reverse direction.
	got2 := make(chan []byte, 1)
	cli.OnFrame(func(f []byte) { got2 <- append([]byte(nil), f...) })
	if err := srv.SendFrame([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got2:
		if len(f) != 3 {
			t.Errorf("frame %x", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reverse frame not delivered")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	srv, cli := pair(t, Credentials{"exp1": "k"}, "exp1", "k")
	defer srv.Close()
	defer cli.Close()
	if err := cli.SendFrame(make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestControlCarriesBGPSession(t *testing.T) {
	// The real use: a full BGP session over the tunnel's control channel
	// while data frames flow on the same carrier.
	srv, cli := pair(t, Credentials{"exp1": "k"}, "exp1", "k")
	defer srv.Close()
	defer cli.Close()

	established := make(chan struct{}, 2)
	sa := bgp.NewSession(srv.Control(), bgp.Config{
		LocalASN: 47065, RemoteASN: 61574, LocalID: netip.MustParseAddr("10.0.0.1"),
		OnEstablished: func() { established <- struct{}{} },
	})
	sb := bgp.NewSession(cli.Control(), bgp.Config{
		LocalASN: 61574, RemoteASN: 47065, LocalID: netip.MustParseAddr("10.0.0.2"),
		OnEstablished: func() { established <- struct{}{} },
	})
	go sa.Run()
	go sb.Run()
	for i := 0; i < 2; i++ {
		select {
		case <-established:
		case <-time.After(5 * time.Second):
			t.Fatal("BGP over tunnel did not establish")
		}
	}
	// Interleave data frames with control traffic.
	srv.OnFrame(func([]byte) {})
	for i := 0; i < 100; i++ {
		if err := cli.SendFrame([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	u := &bgp.Update{
		Attrs: &bgp.PathAttrs{Origin: bgp.OriginIGP, HasOrigin: true,
			ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{61574}}},
			NextHop: netip.MustParseAddr("100.65.0.1")},
		NLRI: []bgp.NLRI{{Prefix: netip.MustParsePrefix("184.164.224.0/24")}},
	}
	if err := sb.Send(u); err != nil {
		t.Fatal(err)
	}
	sa.Close()
	sb.Close()
}

func TestTunnelCloseUnblocksControl(t *testing.T) {
	srv, cli := pair(t, Credentials{"exp1": "k"}, "exp1", "k")
	ctrl := srv.Control()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := ctrl.Read(buf)
		done <- err
	}()
	cli.Close()
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("control read did not unblock on close")
	}
}

func TestHandshakeTruncatedCarrier(t *testing.T) {
	// The carrier dies at every stage of the handshake: both sides must
	// return errors rather than hang.
	for cut := 1; cut <= 3; cut++ {
		ca, cb := pipe.New()
		serveErr := make(chan error, 1)
		go func() {
			_, err := Serve(ca, Credentials{"exp1": "k"}, nil)
			serveErr <- err
		}()
		go func() {
			switch cut {
			case 1:
				cb.Close() // before reading the challenge
			case 2:
				buf := make([]byte, 32)
				io.ReadFull(cb, buf) // read challenge, then die
				cb.Close()
			case 3:
				buf := make([]byte, 32)
				io.ReadFull(cb, buf)
				cb.Write([]byte{4, 'e', 'x', 'p'}) // partial name
				cb.Close()
			}
		}()
		select {
		case err := <-serveErr:
			if err == nil {
				t.Errorf("cut %d: server succeeded on truncated handshake", cut)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("cut %d: server hung", cut)
		}
	}
}

func TestDialTruncatedCarrier(t *testing.T) {
	ca, cb := pipe.New()
	ca.Close() // the server is gone before sending a challenge
	if _, err := Dial(cb, "exp1", "k"); err == nil {
		t.Fatal("dial succeeded against a dead server")
	}
	// A server that sends a challenge but dies before the verdict.
	ca2, cb2 := pipe.New()
	go func() {
		ca2.Write(make([]byte, 32)) // challenge
		buf := make([]byte, 1+4+32)
		io.ReadFull(ca2, buf) // client's name+mac
		ca2.Close()           // die before the verdict byte
	}()
	if _, err := Dial(cb2, "exp1", "k"); err == nil {
		t.Fatal("dial succeeded without a verdict")
	}
}

func TestNameTooLong(t *testing.T) {
	_, cb := pipe.New()
	if _, err := Dial(cb, strings.Repeat("x", 300), "k"); err == nil {
		t.Fatal("oversized name accepted")
	}
}
