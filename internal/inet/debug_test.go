package inet

import (
	"strings"
	"testing"
)

func TestImportFilterBlocksPropagation(t *testing.T) {
	topo := diamond(t)
	// M2 (AS 21) carries a stale filter dropping the experiment prefix.
	if err := topo.BlockPrefixAt(21, pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	// Everything except the filtered AS and its single-homed customer
	// learns the route.
	if topo.Reachable(21, pfx("184.164.224.0/24")) {
		t.Error("filtered AS accepted the prefix")
	}
	if topo.Reachable(31, pfx("184.164.224.0/24")) {
		t.Error("customer behind the filter should be cut off")
	}
	if !topo.Reachable(11, pfx("184.164.224.0/24")) {
		t.Error("unfiltered AS lost the route")
	}
}

func TestDiagnoseFindsTheFilteringEdge(t *testing.T) {
	topo := diamond(t)
	if err := topo.BlockPrefixAt(21, pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	gaps := topo.Diagnose(pfx("184.164.224.0/24"))
	found := false
	for _, g := range gaps {
		if g.To == 21 && strings.Contains(g.Reason, "import filter") {
			found = true
		}
		if g.To != 21 && strings.Contains(g.Reason, "import filter") {
			t.Errorf("false positive at %s", g)
		}
	}
	if !found {
		t.Fatalf("the filtering edge was not identified: %v", gaps)
	}
	report := topo.DiagnoseReport(pfx("184.164.224.0/24"))
	if !strings.Contains(report, "ASes lack a route") || !strings.Contains(report, "import filter") {
		t.Errorf("report:\n%s", report)
	}
}

func TestDiagnoseCleanPrefixHasNoGaps(t *testing.T) {
	topo := diamond(t)
	if err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if gaps := topo.Diagnose(pfx("184.164.224.0/24")); len(gaps) != 0 {
		t.Errorf("clean propagation reported gaps: %v", gaps)
	}
	if got := topo.UnreachableFrom(pfx("184.164.224.0/24")); len(got) != 0 {
		t.Errorf("unreachable: %v", got)
	}
}

func TestDiagnoseIgnoresValleyFreeBoundaries(t *testing.T) {
	// A peer-injected route legitimately stops at the cone boundary;
	// Diagnose must not flag those edges.
	topo := diamond(t)
	if err := topo.InjectExternal(10, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelPeer); err != nil {
		t.Fatal(err)
	}
	for _, g := range topo.Diagnose(pfx("184.164.224.0/24")) {
		t.Errorf("valley-free boundary flagged: %s", g)
	}
}

func TestLookingGlassOutput(t *testing.T) {
	topo := diamond(t)
	if err := topo.Originate(30, pfx("10.30.0.0/24")); err != nil {
		t.Fatal(err)
	}
	have := topo.LookingGlass(31, pfx("10.30.0.0/24"))
	if !strings.Contains(have, "*>") || !strings.Contains(have, "10.30.0.0/24") {
		t.Errorf("looking glass with route:\n%s", have)
	}
	missing := topo.LookingGlass(31, pfx("203.0.113.0/24"))
	if !strings.Contains(missing, "not in table") {
		t.Errorf("looking glass without route:\n%s", missing)
	}
}

func TestSetImportFilterUnknownAS(t *testing.T) {
	topo := diamond(t)
	if err := topo.BlockPrefixAt(424242, pfx("10.0.0.0/8")); err == nil {
		t.Error("unknown AS accepted")
	}
}
