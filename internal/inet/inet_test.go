package inet

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// diamond builds:
//
//	T1a --- T1b        (tier-1 peering)
//	 |       |
//	M1      M2         (mid-tier, customers of T1s)
//	 |       |
//	S1      S2         (stubs)
func diamond(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, asn := range []uint32{10, 11, 20, 21, 30, 31} {
		topo.AddAS(asn, "test")
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(topo.AddPeering(10, 11))
	must(topo.AddTransit(20, 10))
	must(topo.AddTransit(21, 11))
	must(topo.AddTransit(30, 20))
	must(topo.AddTransit(31, 21))
	return topo
}

func TestPropagationAcrossHierarchy(t *testing.T) {
	topo := diamond(t)
	if err := topo.Originate(30, pfx("10.30.0.0/24")); err != nil {
		t.Fatal(err)
	}
	// The opposite stub reaches it: S1 -> M1 -> T1a -> T1b -> M2 -> S2.
	rt := topo.RouteAt(31, pfx("10.30.0.0/24"))
	if rt == nil {
		t.Fatal("S2 has no route")
	}
	want := []uint32{31, 21, 11, 10, 20, 30}
	if !pathEqual(rt.Path, want) {
		t.Errorf("path = %v, want %v", rt.Path, want)
	}
	if rt.LearnedOver != RelProvider {
		t.Errorf("S2 learned over %s, want provider", rt.LearnedOver)
	}
}

func TestValleyFreeEnforced(t *testing.T) {
	// A route learned from a peer must not be exported to another peer
	// or provider. Add a second peer to T1a and check it does not get a
	// path through the T1a--T1b peering chain twice.
	topo := diamond(t)
	topo.AddAS(12, "tier1")
	if err := topo.AddPeering(10, 12); err != nil {
		t.Fatal(err)
	}
	if err := topo.Originate(21, pfx("10.21.0.0/24")); err != nil {
		t.Fatal(err)
	}
	// 21 is a customer of 11. 11 exports (customer route) to its peer 10.
	// 10 learned it over a PEER edge, so 10 must NOT export it to its
	// other peer 12.
	if rt := topo.RouteAt(12, pfx("10.21.0.0/24")); rt != nil {
		t.Errorf("peer-learned route leaked to another peer: %v", rt.Path)
	}
	// But 10's customer 20 does get it.
	if rt := topo.RouteAt(20, pfx("10.21.0.0/24")); rt == nil {
		t.Error("peer-learned route not exported to customer")
	}
}

func TestCustomerRoutePreferred(t *testing.T) {
	// M1 can reach a prefix originated by S1 (its customer) directly, and
	// hypothetically via providers; customer route must win.
	topo := diamond(t)
	if err := topo.Originate(30, pfx("10.30.0.0/24")); err != nil {
		t.Fatal(err)
	}
	rt := topo.RouteAt(20, pfx("10.30.0.0/24"))
	if rt == nil || rt.LearnedOver != RelCustomer {
		t.Fatalf("M1 route %+v, want customer-learned", rt)
	}
	if len(rt.Path) != 2 {
		t.Errorf("M1 path %v", rt.Path)
	}
}

func TestWithdrawReconverges(t *testing.T) {
	topo := diamond(t)
	if err := topo.Originate(30, pfx("10.30.0.0/24")); err != nil {
		t.Fatal(err)
	}
	if !topo.Reachable(31, pfx("10.30.0.0/24")) {
		t.Fatal("precondition: reachable")
	}
	if err := topo.Withdraw(30, pfx("10.30.0.0/24")); err != nil {
		t.Fatal(err)
	}
	for _, asn := range topo.ASNs() {
		if topo.Reachable(asn, pfx("10.30.0.0/24")) {
			t.Errorf("AS%d still has a route after withdraw", asn)
		}
	}
}

func TestCustomerCone(t *testing.T) {
	topo := diamond(t)
	cone := topo.CustomerCone(10)
	want := []uint32{10, 20, 30}
	if len(cone) != len(want) {
		t.Fatalf("cone = %v, want %v", cone, want)
	}
	for i := range want {
		if cone[i] != want[i] {
			t.Fatalf("cone = %v, want %v", cone, want)
		}
	}
	if got := topo.CustomerCone(30); len(got) != 1 || got[0] != 30 {
		t.Errorf("stub cone = %v", got)
	}
}

func TestInjectExternalPropagates(t *testing.T) {
	topo := diamond(t)
	// The platform (AS 47065, not in the topology) announces an
	// experiment prefix to M1 as a customer.
	err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer)
	if err != nil {
		t.Fatal(err)
	}
	// Customer routes export everywhere: the whole topology learns it.
	for _, asn := range topo.ASNs() {
		rt := topo.RouteAt(asn, pfx("184.164.224.0/24"))
		if rt == nil {
			t.Errorf("AS%d did not learn the injected route", asn)
			continue
		}
		if rt.Path[len(rt.Path)-1] != 61574 {
			t.Errorf("AS%d origin %v", asn, rt.Path)
		}
	}
	// Catchment via M1 includes every AS (single injection point).
	if got := len(topo.ChoosersOf(pfx("184.164.224.0/24"), 20)); got != topo.Len() {
		t.Errorf("catchment %d, want %d", got, topo.Len())
	}
}

func TestInjectPeerOnlyReachesCone(t *testing.T) {
	topo := diamond(t)
	// Announce to T1a as a PEER: only T1a's customer cone learns it
	// (§4.2: "ASes in the customer cones of our peers receive
	// announcements made by experiments to peers").
	err := topo.InjectExternal(10, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelPeer)
	if err != nil {
		t.Fatal(err)
	}
	cone := map[uint32]bool{10: true, 20: true, 30: true}
	for _, asn := range topo.ASNs() {
		has := topo.Reachable(asn, pfx("184.164.224.0/24"))
		if cone[asn] && !has {
			t.Errorf("cone member AS%d missing the route", asn)
		}
		if !cone[asn] && has {
			t.Errorf("non-cone AS%d learned a peer-injected route", asn)
		}
	}
}

func TestPoisonedInjectionRejectedByTarget(t *testing.T) {
	topo := diamond(t)
	// Poison AS 21: the path already "contains" it, so 21 (and anything
	// that would route through the injection) rejects it.
	err := topo.InjectExternal(21, pfx("184.164.224.0/24"), []uint32{47065, 21, 61574}, RelCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Reachable(21, pfx("184.164.224.0/24")) {
		t.Error("poisoned AS accepted a path containing itself")
	}
	// Injecting the same prefix unpoisoned via 20 still works.
	if err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if !topo.Reachable(21, pfx("184.164.224.0/24")) {
		t.Error("AS 21 should learn the clean path via the topology")
	}
}

func TestRemoveExternal(t *testing.T) {
	topo := diamond(t)
	if err := topo.InjectExternal(20, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if err := topo.RemoveExternal(20, pfx("184.164.224.0/24")); err != nil {
		t.Fatal(err)
	}
	for _, asn := range topo.ASNs() {
		if topo.Reachable(asn, pfx("184.164.224.0/24")) {
			t.Errorf("AS%d retains withdrawn injected route", asn)
		}
	}
}

func TestMoreSpecificWins(t *testing.T) {
	// Hijack-style: a /24 injection draws traffic from the covering /23
	// — modeled at the route level by distinct prefixes (LPM is the data
	// plane's job; here both must simply coexist).
	topo := diamond(t)
	if err := topo.InjectExternal(20, pfx("184.164.224.0/23"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if err := topo.InjectExternal(21, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	if !topo.Reachable(31, pfx("184.164.224.0/23")) || !topo.Reachable(31, pfx("184.164.224.0/24")) {
		t.Error("covering and specific prefixes should both propagate")
	}
}

func TestGenerateValidates(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2 = 20
	cfg.Edges = 150
	topo := Generate(cfg)
	if err := Validate(topo); err != nil {
		t.Fatal(err)
	}
	if topo.Len() != cfg.Tier1+cfg.Tier2+cfg.Edges {
		t.Errorf("AS count %d", topo.Len())
	}
	// Deterministic for a fixed seed.
	topo2 := Generate(cfg)
	if topo2.Len() != topo.Len() {
		t.Error("generation not deterministic in size")
	}
	rt1 := topo.RouteAt(10000, PrefixForASN(100))
	rt2 := topo2.RouteAt(10000, PrefixForASN(100))
	if rt1 == nil || rt2 == nil || !pathEqual(rt1.Path, rt2.Path) {
		t.Error("generation not deterministic in routing")
	}
}

func TestGenerateTypeMix(t *testing.T) {
	cfg := DefaultGenConfig()
	topo := Generate(cfg)
	counts := topo.TypeCounts()
	total := 0
	for _, typ := range []string{"transit", "access", "content", "education", "enterprise"} {
		total += counts[typ]
	}
	if total != cfg.Edges+cfg.Tier2 { // tier-2s are labeled "transit" too
		t.Fatalf("edge-type total %d, want %d; counts=%v", total, cfg.Edges+cfg.Tier2, counts)
	}
	// The §4.2 proportions hold loosely (33/28/23%): check ordering.
	if !(counts["transit"] > counts["access"] && counts["access"] > counts["content"]) {
		t.Errorf("type mix ordering off: %v", counts)
	}
	frac := float64(counts["content"]) / float64(cfg.Edges)
	if frac < 0.15 || frac > 0.31 {
		t.Errorf("content fraction %.2f outside plausible band", frac)
	}
}

func TestFullReachabilityThroughTransit(t *testing.T) {
	// "Peering announcements can reach all ASes via transit providers"
	// (§4.2): inject as a customer of a tier-2 and verify every AS
	// learns it.
	cfg := DefaultGenConfig()
	cfg.Tier2 = 20
	cfg.Edges = 100
	topo := Generate(cfg)
	if err := topo.InjectExternal(1000, pfx("184.164.224.0/24"), []uint32{47065, 61574}, RelCustomer); err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, asn := range topo.ASNs() {
		if !topo.Reachable(asn, pfx("184.164.224.0/24")) {
			missing++
		}
	}
	if missing != 0 {
		t.Errorf("%d ASes cannot reach a transit-injected prefix", missing)
	}
}
