package inet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"repro/internal/rpki"
)

// This file wires RPKI route origin validation and Peerlock route-leak
// defense into the synthetic Internet. Deployment is partial by design:
// real-world ROV adoption is a fraction of networks, and the
// interesting experimental question (the `vbgp-bench -fig rov` sweep)
// is how hijack catchment shrinks as that fraction grows.

// SetValidator installs the validator backing every ROV-deploying AS.
// Pass an *rpki.Store (shared trust-anchor view) or an *rpki.Client
// (live RTR-synchronized cache).
func (t *Topology) SetValidator(v rpki.Validator) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.validator = v
}

// SetROVAt enables or disables route origin validation at one AS.
// Takes effect for subsequently propagated routes; held routes are not
// re-examined (matching real routers, where ROV is an import policy).
func (t *Topology) SetROVAt(asn uint32, on bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	a.rov = on
	return nil
}

// DeployROV enables ROV at a deterministic pseudo-random fraction of
// all ASes (0 ≤ fraction ≤ 1) and disables it everywhere else. The
// selection depends only on (fraction, seed) and the AS set, so sweeps
// are reproducible. Returns how many ASes now validate.
func (t *Topology) DeployROV(fraction float64, seed int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	asns := make([]uint32, 0, len(t.ases))
	for asn := range t.ases {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(asns), func(i, j int) { asns[i], asns[j] = asns[j], asns[i] })
	n := int(float64(len(asns))*fraction + 0.5)
	if n > len(asns) {
		n = len(asns)
	}
	for i, asn := range asns {
		t.ases[asn].rov = i < n
	}
	return n
}

// ROVCount returns how many ASes currently validate origins.
func (t *Topology) ROVCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, a := range t.ases {
		if a.rov {
			n++
		}
	}
	return n
}

// AddPeerlock installs a route-leak protection rule at an AS (typically
// a transit network protecting a tier-1 peer).
func (t *Topology) AddPeerlock(asn uint32, rule rpki.Peerlock) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	a.peerlocks = append(a.peerlocks, rule)
	return nil
}

// admitSecureLocked applies the receiving AS's security filters to a
// candidate route. path is the full candidate path with dst first; the
// neighbor the route arrives from is path[1] (absent for external
// injections with an empty received path).
func (t *Topology) admitSecureLocked(dst *AS, prefix netip.Prefix, path []uint32) bool {
	if len(dst.peerlocks) > 0 && len(path) >= 2 {
		if rpki.AnyBlocked(dst.peerlocks, path[1], path[1:]) {
			t.leakDrops++
			return false
		}
	}
	if dst.rov && t.validator != nil && len(path) > 0 {
		if t.validator.Validate(prefix, path[len(path)-1]) == rpki.Invalid {
			t.rovDrops++
			return false
		}
	}
	return true
}

// SecurityDrops reports how many candidate routes ROV and Peerlock
// filters have rejected across the topology's lifetime.
func (t *Topology) SecurityDrops() (rov, leak uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rovDrops, t.leakDrops
}

// ValidationCounts classifies every held route in the topology against
// a validator, returning totals per state. Origin is the last hop of
// each route's path.
func (t *Topology) ValidationCounts(v rpki.Validator) (valid, invalid, notFound int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, a := range t.ases {
		for _, rt := range a.routes {
			if len(rt.Path) == 0 {
				continue
			}
			switch v.Validate(rt.Prefix, rt.Path[len(rt.Path)-1]) {
			case rpki.Valid:
				valid++
			case rpki.Invalid:
				invalid++
			default:
				notFound++
			}
		}
	}
	return valid, invalid, notFound
}
