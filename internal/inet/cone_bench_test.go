package inet

import "testing"

// TestConeCacheInvalidation checks that CustomerCone results are
// memoized, that topology mutations invalidate the cache, and that
// callers cannot corrupt cached entries through the returned slice.
func TestConeCacheInvalidation(t *testing.T) {
	top := NewTopology()
	top.AddAS(10, "transit")
	top.AddAS(20, "edge")
	top.AddAS(30, "edge")
	if err := top.AddTransit(20, 10); err != nil {
		t.Fatal(err)
	}

	cone := top.CustomerCone(10)
	if len(cone) != 2 || cone[0] != 10 || cone[1] != 20 {
		t.Fatalf("CustomerCone(10) = %v, want [10 20]", cone)
	}

	// Mutating the returned slice must not poison the cache.
	cone[0] = 999
	if again := top.CustomerCone(10); len(again) != 2 || again[0] != 10 {
		t.Fatalf("cache corrupted through returned slice: %v", again)
	}

	// A new customer edge must invalidate the memoized cone.
	if err := top.AddTransit(30, 10); err != nil {
		t.Fatal(err)
	}
	cone = top.CustomerCone(10)
	if len(cone) != 3 || cone[2] != 30 {
		t.Fatalf("CustomerCone(10) after AddTransit = %v, want [10 20 30]", cone)
	}

	// Adding an AS also invalidates (the graph may grow under it next).
	top.AddAS(40, "edge")
	if err := top.AddTransit(40, 20); err != nil {
		t.Fatal(err)
	}
	cone = top.CustomerCone(10)
	if len(cone) != 4 {
		t.Fatalf("CustomerCone(10) after nested customer = %v, want 4 ASes", cone)
	}

	// Explicit invalidation keeps working after a recompute.
	top.InvalidateConeCache()
	if cone = top.CustomerCone(10); len(cone) != 4 {
		t.Fatalf("CustomerCone(10) after InvalidateConeCache = %v", cone)
	}
}

func benchTopology(b *testing.B) *Topology {
	b.Helper()
	return Generate(GenConfig{Tier1: 12, Tier2: 80, Edges: 900, PeeringDegree: 6, Seed: 47065})
}

// BenchmarkCustomerConeCold measures the uncached BFS: the cache is
// dropped before every lookup, as if the topology mutated each time.
func BenchmarkCustomerConeCold(b *testing.B) {
	top := benchTopology(b)
	asns := top.ASNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.InvalidateConeCache()
		top.CustomerCone(asns[i%len(asns)])
	}
}

// BenchmarkCustomerConeMemoized measures the steady state the
// population generator sees: repeated lookups on a static topology.
func BenchmarkCustomerConeMemoized(b *testing.B) {
	top := benchTopology(b)
	asns := top.ASNs()
	for _, asn := range asns {
		top.CustomerCone(asn) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.CustomerCone(asns[i%len(asns)])
	}
}
