package inet

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// GenConfig parameterizes the synthetic Internet generator. The defaults
// (DefaultGenConfig) produce a topology whose composition matches the
// §4.2 statistics: a transit hierarchy with a clique of tier-1s, a
// middle transit tier, and a large population of edge networks whose
// type mix follows the paper's PeeringDB breakdown (33% transit, 28%
// access, 23% content, 8% education/research and other, 8% enterprise).
type GenConfig struct {
	// Tier1 is the number of clique tier-1 transit ASes.
	Tier1 int
	// Tier2 is the number of mid-tier transit ASes.
	Tier2 int
	// Edges is the number of edge ASes.
	Edges int
	// PeeringDegree is the mean number of lateral peerings per tier-2.
	PeeringDegree int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig is a laptop-scale Internet: large enough to exercise
// cone and propagation behavior, small enough for tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{Tier1: 12, Tier2: 80, Edges: 900, PeeringDegree: 6, Seed: 47065}
}

// edgeTypeMix reproduces the paper's peer-type proportions (§4.2).
var edgeTypeMix = []struct {
	typ  string
	frac float64
}{
	{"transit", 0.33},
	{"access", 0.28},
	{"content", 0.23},
	{"education", 0.08},
	{"enterprise", 0.08},
}

// Generate builds a synthetic Internet. ASNs are assigned
// deterministically: tier-1s from 100, tier-2s from 1000, edges from
// 10000. Every AS originates one /24 carved from 96.0.0.0/6-ish space
// derived from its ASN.
func Generate(cfg GenConfig) *Topology {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTopology()

	var tier1s, tier2s, edges []uint32
	for i := 0; i < cfg.Tier1; i++ {
		asn := uint32(100 + i)
		t.AddAS(asn, "tier1")
		tier1s = append(tier1s, asn)
	}
	// Tier-1 clique.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			if err := t.AddPeering(a, b); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < cfg.Tier2; i++ {
		asn := uint32(1000 + i)
		t.AddAS(asn, "transit")
		tier2s = append(tier2s, asn)
		// Two providers from tier-1.
		p1 := tier1s[rng.Intn(len(tier1s))]
		p2 := tier1s[rng.Intn(len(tier1s))]
		mustLink(t.AddTransit(asn, p1))
		if p2 != p1 {
			mustLink(t.AddTransit(asn, p2))
		}
	}
	// Lateral tier-2 peering.
	for _, a := range tier2s {
		for k := 0; k < cfg.PeeringDegree/2; k++ {
			b := tier2s[rng.Intn(len(tier2s))]
			if a != b {
				mustLink(t.AddPeering(a, b))
			}
		}
	}
	// Edge networks with the §4.2 type mix.
	for i := 0; i < cfg.Edges; i++ {
		asn := uint32(10000 + i)
		t.AddAS(asn, pickType(rng))
		edges = append(edges, asn)
		// One or two providers from tier-2.
		p1 := tier2s[rng.Intn(len(tier2s))]
		mustLink(t.AddTransit(asn, p1))
		if rng.Float64() < 0.4 {
			p2 := tier2s[rng.Intn(len(tier2s))]
			if p2 != p1 {
				mustLink(t.AddTransit(asn, p2))
			}
		}
	}
	// Content networks peer laterally with access networks (flattening).
	for _, asn := range edges {
		a := t.AS(asn)
		if a.Type != "content" {
			continue
		}
		for k := 0; k < 3; k++ {
			b := edges[rng.Intn(len(edges))]
			if b != asn {
				mustLink(t.AddPeering(asn, b))
			}
		}
	}
	// Originations: one /24 per AS.
	for _, asn := range t.ASNs() {
		if err := t.Originate(asn, PrefixForASN(asn)); err != nil {
			panic(err)
		}
	}
	return t
}

func pickType(rng *rand.Rand) string {
	x := rng.Float64()
	acc := 0.0
	for _, m := range edgeTypeMix {
		acc += m.frac
		if x < acc {
			return m.typ
		}
	}
	return edgeTypeMix[len(edgeTypeMix)-1].typ
}

func mustLink(err error) {
	if err != nil {
		panic(err)
	}
}

// PrefixForASN derives the /24 an AS originates in generated topologies.
func PrefixForASN(asn uint32) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{
		byte(96 + (asn>>16)&0x03), byte(asn >> 8), byte(asn), 0,
	}), 24)
}

// Validate sanity-checks a generated topology: every AS must reach a
// tier-1-originated probe prefix (full reachability via providers).
func Validate(t *Topology) error {
	probe := PrefixForASN(100)
	for _, asn := range t.ASNs() {
		if !t.Reachable(asn, probe) {
			return fmt.Errorf("inet: AS%d cannot reach tier-1 prefix %s", asn, probe)
		}
	}
	return nil
}
