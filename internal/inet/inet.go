// Package inet simulates an AS-level Internet: a topology of autonomous
// systems with customer/provider and peer relationships, valley-free
// (Gao-Rexford) route propagation, per-AS best-route selection, and
// customer-cone computation.
//
// The paper evaluates Peering against the real Internet (923 peers, 12
// transits, reach to every AS via providers, §4.2); this package is the
// substitute substrate: vBGP's neighbors are ASes in a synthetic
// topology, and experiments' announcements propagate through it under
// the same export rules real networks apply.
package inet

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/rpki"
)

// Rel is the business relationship a route was learned over.
type Rel int

// Relationship kinds, ordered by preference (customer routes are most
// preferred, provider routes least — Gao-Rexford).
const (
	RelCustomer Rel = iota // learned from a customer
	RelPeer                // learned from a settlement-free peer
	RelProvider            // learned from a transit provider
	RelOrigin              // originated locally
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	case RelOrigin:
		return "origin"
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Route is one AS's chosen route toward a prefix.
type Route struct {
	Prefix netip.Prefix
	// Path is the AS path, nearest AS first, origin last.
	Path []uint32
	// LearnedOver is how the AS learned the route.
	LearnedOver Rel
}

// pathEqual reports whether two AS paths are identical.
func pathEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AS is one autonomous system.
type AS struct {
	ASN uint32
	// Providers, Customers, Peers hold neighbor ASNs by relationship
	// (from this AS's point of view).
	Providers []uint32
	Customers []uint32
	Peers     []uint32
	// Originated prefixes.
	Originated []netip.Prefix
	// Type labels the AS for the §4.2 peer-type statistics
	// ("transit", "access", "content", "education", "enterprise", ...).
	Type string

	// routes is the AS's chosen route per prefix.
	routes map[netip.Prefix]*Route
	// importFilter, when set, vets every route before import.
	importFilter func(prefix netip.Prefix, path []uint32) bool
	// rov marks the AS as performing RPKI route origin validation:
	// routes whose origin is Invalid against the topology's validator
	// are rejected on import.
	rov bool
	// peerlocks are the AS's route-leak protection rules.
	peerlocks []rpki.Peerlock
}

// Topology is a mutable AS graph with incremental route propagation.
// All methods are safe for concurrent use.
type Topology struct {
	mu   sync.RWMutex
	ases map[uint32]*AS
	// validator backs ROV-deploying ASes (see rov.go).
	validator rpki.Validator
	// rovDrops / leakDrops count import rejections by ROV and Peerlock
	// rules across all ASes.
	rovDrops  uint64
	leakDrops uint64
	// coneCache memoizes CustomerCone results; any mutation of the
	// customer graph (AddAS, AddTransit) invalidates it wholesale.
	coneCache map[uint32][]uint32
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{ases: make(map[uint32]*AS)}
}

// AddAS creates an AS. Adding an existing ASN returns the existing AS.
func (t *Topology) AddAS(asn uint32, typ string) *AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.ases[asn]; ok {
		return a
	}
	a := &AS{ASN: asn, Type: typ, routes: make(map[netip.Prefix]*Route)}
	t.ases[asn] = a
	t.coneCache = nil
	return a
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn uint32) *AS {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ases[asn]
}

// Len returns the number of ASes.
func (t *Topology) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.ases)
}

// ASNs returns all AS numbers, sorted.
func (t *Topology) ASNs() []uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint32, 0, len(t.ases))
	for asn := range t.ases {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddTransit links customer to provider. Both ASes must exist.
func (t *Topology) AddTransit(customer, provider uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, p := t.ases[customer], t.ases[provider]
	if c == nil || p == nil {
		return fmt.Errorf("inet: unknown AS in transit link %d->%d", customer, provider)
	}
	if hasASN(c.Providers, provider) {
		return nil
	}
	c.Providers = append(c.Providers, provider)
	p.Customers = append(p.Customers, customer)
	t.coneCache = nil
	return nil
}

// AddPeering links two ASes as settlement-free peers.
func (t *Topology) AddPeering(a, b uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	x, y := t.ases[a], t.ases[b]
	if x == nil || y == nil {
		return fmt.Errorf("inet: unknown AS in peering %d--%d", a, b)
	}
	if hasASN(x.Peers, b) {
		return nil
	}
	x.Peers = append(x.Peers, b)
	y.Peers = append(y.Peers, a)
	return nil
}

func hasASN(s []uint32, asn uint32) bool {
	for _, a := range s {
		if a == asn {
			return true
		}
	}
	return false
}

// Originate announces a prefix from an AS and propagates it to
// convergence under valley-free export rules.
func (t *Topology) Originate(asn uint32, prefix netip.Prefix) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	prefix = prefix.Masked()
	if !hasPrefix(a.Originated, prefix) {
		a.Originated = append(a.Originated, prefix)
	}
	a.routes[prefix] = &Route{Prefix: prefix, Path: []uint32{asn}, LearnedOver: RelOrigin}
	t.propagateLocked(prefix)
	return nil
}

// OriginateWithPath announces a prefix from an AS with a caller-supplied
// AS path (supporting poisoned or prepended announcements injected by
// the platform on behalf of experiments). The path's first element must
// be asn.
func (t *Topology) OriginateWithPath(asn uint32, prefix netip.Prefix, path []uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	if len(path) == 0 || path[0] != asn {
		return fmt.Errorf("inet: injected path must start with AS%d", asn)
	}
	prefix = prefix.Masked()
	if !hasPrefix(a.Originated, prefix) {
		a.Originated = append(a.Originated, prefix)
	}
	a.routes[prefix] = &Route{Prefix: prefix, Path: append([]uint32(nil), path...), LearnedOver: RelOrigin}
	t.propagateLocked(prefix)
	return nil
}

func hasPrefix(s []netip.Prefix, p netip.Prefix) bool {
	for _, have := range s {
		if have == p {
			return true
		}
	}
	return false
}

// Withdraw removes an AS's origination of a prefix and re-converges.
func (t *Topology) Withdraw(asn uint32, prefix netip.Prefix) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	prefix = prefix.Masked()
	for i, have := range a.Originated {
		if have == prefix {
			a.Originated = append(a.Originated[:i], a.Originated[i+1:]...)
			break
		}
	}
	delete(a.routes, prefix)
	// Recompute the prefix from scratch: clear every AS's route, then
	// re-propagate from remaining originators.
	var originators []*AS
	for _, other := range t.ases {
		if other.routes[prefix] != nil && other.routes[prefix].LearnedOver != RelOrigin {
			delete(other.routes, prefix)
		}
		if hasPrefix(other.Originated, prefix) {
			originators = append(originators, other)
		}
	}
	_ = originators
	t.propagateLocked(prefix)
	return nil
}

// relToward returns how dst would classify a route arriving from src.
func relToward(src, dst *AS) Rel {
	if hasASN(dst.Customers, src.ASN) {
		return RelCustomer
	}
	if hasASN(dst.Peers, src.ASN) {
		return RelPeer
	}
	return RelProvider
}

// exportable reports whether a route learned over rel may be exported to
// a neighbor of kind nbrRel (valley-free): routes from customers (or
// originated) go to everyone; routes from peers and providers go only to
// customers.
func exportable(learned Rel, nbrRel Rel) bool {
	if learned == RelCustomer || learned == RelOrigin {
		return true
	}
	return nbrRel == RelCustomer
}

// better reports whether candidate beats incumbent at an AS:
// Gao-Rexford preference (customer > peer > provider), then shortest
// path, then lexicographically lowest path for determinism. Both paths
// start with the deciding AS itself, so the comparison effectively
// starts at the first hop; the total order makes converged routes (and
// therefore anycast catchments) independent of propagation order.
func better(cand, inc *Route) bool {
	if inc == nil {
		return true
	}
	if cand.LearnedOver != inc.LearnedOver {
		return cand.LearnedOver < inc.LearnedOver
	}
	if len(cand.Path) != len(inc.Path) {
		return len(cand.Path) < len(inc.Path)
	}
	for i := range cand.Path {
		if cand.Path[i] != inc.Path[i] {
			return cand.Path[i] < inc.Path[i]
		}
	}
	return false
}

// propagateLocked runs route propagation for one prefix to convergence.
// Classic synchronous Bellman-Ford-style iteration with a work queue.
func (t *Topology) propagateLocked(prefix netip.Prefix) {
	// Seed the queue with every AS that currently has a route.
	var queue []*AS
	for _, a := range t.ases {
		if a.routes[prefix] != nil {
			queue = append(queue, a)
		}
	}
	for len(queue) > 0 {
		src := queue[0]
		queue = queue[1:]
		route := src.routes[prefix]
		if route == nil {
			continue
		}
		neighbors := make([]uint32, 0, len(src.Customers)+len(src.Peers)+len(src.Providers))
		neighbors = append(neighbors, src.Customers...)
		neighbors = append(neighbors, src.Peers...)
		neighbors = append(neighbors, src.Providers...)
		for _, nbr := range neighbors {
			dst := t.ases[nbr]
			if dst == nil {
				continue
			}
			// Export policy at src: how does src classify dst?
			dstRelAtSrc := relToward(dst, src)
			if !exportable(route.LearnedOver, dstRelAtSrc) {
				continue
			}
			// Loop prevention.
			if hasASN(route.Path, dst.ASN) {
				continue
			}
			cand := &Route{
				Prefix:      prefix,
				Path:        append([]uint32{dst.ASN}, route.Path...),
				LearnedOver: relToward(src, dst),
			}
			// Import filter at the receiver (Appendix A's stale-filter
			// scenario).
			if dst.importFilter != nil && !dst.importFilter(prefix, cand.Path) {
				continue
			}
			// Security filters at the receiver: ROV + Peerlock (rov.go).
			if !t.admitSecureLocked(dst, prefix, cand.Path) {
				continue
			}
			// The receiving AS keeps its own origination.
			if inc := dst.routes[prefix]; inc != nil && inc.LearnedOver == RelOrigin {
				continue
			} else if better(cand, inc) {
				dst.routes[prefix] = cand
				queue = append(queue, dst)
			}
		}
	}
}

// RouteAt returns the route AS asn uses toward prefix, or nil.
func (t *Topology) RouteAt(asn uint32, prefix netip.Prefix) *Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a := t.ases[asn]
	if a == nil {
		return nil
	}
	return a.routes[prefix.Masked()]
}

// RoutesAt returns every route AS asn holds, sorted by prefix.
func (t *Topology) RoutesAt(asn uint32) []*Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a := t.ases[asn]
	if a == nil {
		return nil
	}
	out := make([]*Route, 0, len(a.routes))
	for _, rt := range a.routes {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Prefix.String() < out[j].Prefix.String()
	})
	return out
}

// Reachable reports whether AS asn has any route to prefix.
func (t *Topology) Reachable(asn uint32, prefix netip.Prefix) bool {
	return t.RouteAt(asn, prefix) != nil
}

// CustomerCone returns the set of ASes in asn's customer cone (asn
// itself included): the ASes reachable by following only customer edges
// downward. Announcements made to a peer reach the peer's customer cone
// (paper §4.2).
//
// Results are memoized — population placement and catchment sweeps call
// this for every AS, repeatedly — and the cache is invalidated whenever
// the customer graph mutates (AddAS, AddTransit). Callers receive a
// fresh copy and may modify it freely.
func (t *Topology) CustomerCone(asn uint32) []uint32 {
	t.mu.RLock()
	cached, ok := t.coneCache[asn]
	t.mu.RUnlock()
	if ok {
		return append([]uint32(nil), cached...)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if cached, ok := t.coneCache[asn]; ok {
		return append([]uint32(nil), cached...)
	}
	cone := t.customerConeLocked(asn)
	if t.coneCache == nil {
		t.coneCache = make(map[uint32][]uint32)
	}
	t.coneCache[asn] = cone
	return append([]uint32(nil), cone...)
}

// InvalidateConeCache drops all memoized customer cones. Topology
// mutations call this internally; it is exported for callers that
// mutate AS structs directly (tests, gen) and for benchmarks that
// want to measure the cold path.
func (t *Topology) InvalidateConeCache() {
	t.mu.Lock()
	t.coneCache = nil
	t.mu.Unlock()
}

// customerConeLocked computes the cone by BFS over customer edges.
func (t *Topology) customerConeLocked(asn uint32) []uint32 {
	seen := map[uint32]bool{asn: true}
	queue := []uint32{asn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		a := t.ases[cur]
		if a == nil {
			continue
		}
		for _, c := range a.Customers {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TypeCounts returns how many ASes carry each Type label.
func (t *Topology) TypeCounts() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]int)
	for _, a := range t.ases {
		out[a.Type]++
	}
	return out
}
