package inet

import (
	"net"
	"net/netip"
	"time"

	"repro/internal/bgp"
)

// Speaker bridges a topology AS onto a live BGP session with a vBGP
// router: it announces the AS's routes over the session (what a real
// transit provider or IXP peer would send Peering) and injects
// announcements received from the platform into the topology so they
// propagate through the synthetic Internet.
type Speaker struct {
	topo *Topology
	asn  uint32
	addr netip.Addr
	rel  Rel // how this AS classifies the platform
	// platformASN is the remote ASN; routes whose path already carries
	// it came from the platform and are never announced back (loop
	// prevention, RFC 4271 §9.1.2).
	platformASN uint32
	// maxRoutes bounds the number of routes announced on session
	// establishment (0 = all). Scale knob for tests and benches.
	maxRoutes int

	sess *bgp.Session
}

// NewSpeaker creates a speaker for AS asn peering with the platform over
// conn. rel is the relationship the AS assigns to the platform (most of
// Peering's sessions are settlement-free peerings; transit providers use
// RelCustomer).
// maxRoutes bounds the table announced at establishment (0 = all).
func NewSpeaker(topo *Topology, asn uint32, addr netip.Addr, rel Rel, platformASN uint32, maxRoutes int, conn net.Conn) *Speaker {
	s := &Speaker{topo: topo, asn: asn, addr: addr, rel: rel, platformASN: platformASN, maxRoutes: maxRoutes}
	s.sess = bgp.NewSession(conn, bgp.Config{
		LocalASN:  asn,
		RemoteASN: platformASN,
		LocalID:   addr,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		// Real transit/peer routers support graceful restart; advertise
		// it so platform sessions configured with a restart window
		// negotiate retention. Harmless when the platform side doesn't.
		GracefulRestart: &bgp.GracefulRestartConfig{RestartTime: 10 * time.Second},
		OnEstablished:   func() { s.announceAll() },
		OnUpdate:        func(u *bgp.Update) { s.handleUpdate(u) },
	})
	go s.sess.Run()
	return s
}

// Session exposes the underlying BGP session.
func (s *Speaker) Session() *bgp.Session { return s.sess }

// Close shuts the session down.
func (s *Speaker) Close() { s.sess.Close() }

// announceAll sends the AS's routes to the platform, ending with
// End-of-RIB markers (RFC 4724 §3) so a platform session retaining
// state across a restart can sweep stale paths.
func (s *Speaker) announceAll() {
	routes := s.topo.RoutesAt(s.asn)
	sent := 0
	for _, rt := range routes {
		if s.maxRoutes > 0 && sent >= s.maxRoutes {
			break
		}
		// Split horizon: the platform's own announcements, injected into
		// the topology by an earlier session incarnation, must not be
		// reflected back at it.
		if asPathContains(rt.Path, s.platformASN) {
			continue
		}
		if err := s.AnnounceRoute(rt); err != nil {
			return
		}
		sent++
	}
	_ = s.sess.SendEndOfRIB(bgp.IPv4Unicast)
	_ = s.sess.SendEndOfRIB(bgp.IPv6Unicast)
}

func asPathContains(path []uint32, asn uint32) bool {
	for _, hop := range path {
		if hop == asn {
			return true
		}
	}
	return false
}

// AnnounceRoute sends one topology route on the session.
func (s *Speaker) AnnounceRoute(rt *Route) error {
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: rt.Path}},
		NextHop: s.addr,
	}
	return s.sess.Send(&bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: rt.Prefix}}})
}

// handleUpdate injects the platform's announcements into the topology.
func (s *Speaker) handleUpdate(u *bgp.Update) {
	for _, w := range u.Withdrawn {
		_ = s.topo.RemoveExternal(s.asn, w.Prefix)
	}
	if u.Attrs == nil {
		return
	}
	for _, nlri := range u.NLRI {
		_ = s.topo.InjectExternal(s.asn, nlri.Prefix, u.Attrs.ASPathFlat(), s.rel)
	}
}
