package inet

import (
	"fmt"
	"net/netip"
)

// InjectExternal installs a route at AS viaASN as if learned from an
// external network outside the topology (the Peering platform), over the
// given relationship, and propagates it. path is the AS path as received
// by viaASN (not including viaASN itself). This is how experiment
// announcements enter the synthetic Internet: the platform announces to
// neighbor viaASN, which classifies the platform as a customer or peer.
func (t *Topology) InjectExternal(viaASN uint32, prefix netip.Prefix, path []uint32, rel Rel) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[viaASN]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", viaASN)
	}
	prefix = prefix.Masked()
	// Loop prevention: the neighbor rejects paths containing itself.
	// This is the mechanism AS-path poisoning exploits (paper §7.1).
	if hasASN(path, viaASN) {
		return nil
	}
	cand := &Route{
		Prefix:      prefix,
		Path:        append([]uint32{viaASN}, path...),
		LearnedOver: rel,
	}
	if a.importFilter != nil && !a.importFilter(prefix, cand.Path) {
		return nil
	}
	// The entry AS applies the same security filters as internal
	// propagation: a ROV-deploying neighbor drops Invalid injections at
	// the door, and Peerlock rules catch leaks arriving over the session.
	if !t.admitSecureLocked(a, prefix, cand.Path) {
		return nil
	}
	if inc := a.routes[prefix]; inc != nil && inc.LearnedOver == RelOrigin {
		return nil
	}
	// A re-announcement over the same external session is a BGP implicit
	// withdraw of the previous version: tear the old injection's derived
	// state down and rebuild, so a WORSE path (e.g. prepended) replaces
	// the old one rather than losing the comparison to it.
	if inc := a.routes[prefix]; inc != nil && t.injectedAtLocked(inc, viaASN) {
		t.removeExternalLocked(a, prefix)
	} else if !better(cand, inc) {
		return nil
	}
	a.routes[prefix] = cand
	t.propagateLocked(prefix)
	return nil
}

// injectedAtLocked reports whether route rt was injected externally at
// viaASN (its second hop is outside the topology).
func (t *Topology) injectedAtLocked(rt *Route, viaASN uint32) bool {
	return len(rt.Path) >= 2 && rt.Path[0] == viaASN && t.ases[rt.Path[1]] == nil
}

// RemoveExternal withdraws an externally injected route at viaASN and
// re-converges the prefix.
func (t *Topology) RemoveExternal(viaASN uint32, prefix netip.Prefix) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[viaASN]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", viaASN)
	}
	prefix = prefix.Masked()
	if a.routes[prefix] == nil {
		return nil
	}
	t.removeExternalLocked(a, prefix)
	t.propagateLocked(prefix)
	return nil
}

// removeExternalLocked drops a's route for prefix and every derived
// route, keeping originations and injections rooted at other ASes.
func (t *Topology) removeExternalLocked(a *AS, prefix netip.Prefix) {
	delete(a.routes, prefix)
	for _, other := range t.ases {
		if rt := other.routes[prefix]; rt != nil && rt.LearnedOver != RelOrigin {
			// Keep injected roots at other ASes: a route whose second hop
			// is not in the topology was injected externally.
			if other != a && len(rt.Path) >= 2 && t.ases[rt.Path[1]] == nil {
				continue
			}
			delete(other.routes, prefix)
		}
	}
}

// ChoosersOf returns the ASes whose chosen route for prefix goes through
// via as the first hop after themselves — i.e. the catchment of an
// injection at via. Useful for hijack and traffic-engineering studies.
func (t *Topology) ChoosersOf(prefix netip.Prefix, via uint32) []uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []uint32
	prefix = prefix.Masked()
	for asn, a := range t.ases {
		rt := a.routes[prefix]
		if rt == nil {
			continue
		}
		if asn == via || hasASN(rt.Path, via) {
			out = append(out, asn)
		}
	}
	return out
}
