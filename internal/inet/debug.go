package inet

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// SetImportFilter installs an import filter at an AS: routes for which
// the filter returns false are rejected on import. Networks use such
// filters to stop route leaks and hijacks, and stale or misconfigured
// filters are exactly what breaks global reachability of Peering
// announcements (Appendix A: "improperly configured or out-of-date
// filters in other networks").
func (t *Topology) SetImportFilter(asn uint32, filter func(prefix netip.Prefix, path []uint32) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.ases[asn]
	if a == nil {
		return fmt.Errorf("inet: unknown AS %d", asn)
	}
	a.importFilter = filter
	return nil
}

// BlockPrefixAt installs the common misconfiguration: AS asn silently
// drops all routes for prefix (e.g. a stale bogon or max-length filter).
func (t *Topology) BlockPrefixAt(asn uint32, prefix netip.Prefix) error {
	prefix = prefix.Masked()
	return t.SetImportFilter(asn, func(p netip.Prefix, _ []uint32) bool {
		return p != prefix
	})
}

// LookingGlass renders an AS's routes for a prefix the way a public
// looking glass would: the chosen path, or nothing. The paper's central
// debugging frustration (Appendix A) is that looking glasses only show
// *presence*: when A has a route and its neighbor B does not, they
// cannot disambiguate "A did not export" from "B filtered".
func (t *Topology) LookingGlass(asn uint32, prefix netip.Prefix) string {
	rt := t.RouteAt(asn, prefix)
	if rt == nil {
		return fmt.Sprintf("AS%d> show route %s\n  network not in table", asn, prefix)
	}
	return fmt.Sprintf("AS%d> show route %s\n  *> %s  path %v  (%s)",
		asn, prefix, rt.Prefix, rt.Path, rt.LearnedOver)
}

// PropagationGap is one suspicious edge found by Diagnose: from has the
// route and was expected to export it to to, but to never accepted it.
type PropagationGap struct {
	From, To uint32
	// Reason distinguishes "filtered at To" (an import filter dropped
	// it — the case looking glasses cannot identify) from "not
	// preferred at To" (To has a different route it prefers).
	Reason string
}

// String formats the gap as one report line.
func (g PropagationGap) String() string {
	return fmt.Sprintf("AS%d -> AS%d: %s", g.From, g.To, g.Reason)
}

// Diagnose walks every AS adjacency and reports where propagation of
// prefix stopped even though export rules said it should flow — the
// automated filter-troubleshooting the paper lists as future work
// (Appendix A: "we plan to evaluate methods for automated filter
// troubleshooting"). With ground truth unavailable on the real
// Internet, the tool exists here to reproduce the *workflow*: find the
// edge, then the reason.
func (t *Topology) Diagnose(prefix netip.Prefix) []PropagationGap {
	prefix = prefix.Masked()
	t.mu.RLock()
	defer t.mu.RUnlock()
	var gaps []PropagationGap
	for _, src := range t.ases {
		route := src.routes[prefix]
		if route == nil {
			continue
		}
		neighbors := make([]uint32, 0, len(src.Customers)+len(src.Peers)+len(src.Providers))
		neighbors = append(neighbors, src.Customers...)
		neighbors = append(neighbors, src.Peers...)
		neighbors = append(neighbors, src.Providers...)
		for _, nbr := range neighbors {
			dst := t.ases[nbr]
			if dst == nil || dst.routes[prefix] != nil {
				continue
			}
			if !exportable(route.LearnedOver, relToward(dst, src)) {
				continue // valley-free: not expected to flow here
			}
			if hasASN(route.Path, dst.ASN) {
				continue // loop prevention: expected rejection
			}
			cand := &Route{
				Prefix:      prefix,
				Path:        append([]uint32{dst.ASN}, route.Path...),
				LearnedOver: relToward(src, dst),
			}
			// The receiver has no route at all, so absent a filter the
			// candidate would have been installed: the filter is the
			// culprit — exactly the disambiguation looking glasses
			// cannot provide.
			reason := "receiver holds no route despite eligible export"
			if dst.importFilter != nil && !dst.importFilter(prefix, cand.Path) {
				reason = "import filter at receiver drops the prefix"
			}
			gaps = append(gaps, PropagationGap{From: src.ASN, To: dst.ASN, Reason: reason})
		}
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].From != gaps[j].From {
			return gaps[i].From < gaps[j].From
		}
		return gaps[i].To < gaps[j].To
	})
	return gaps
}

// UnreachableFrom lists the ASes with no route to prefix, sorted.
func (t *Topology) UnreachableFrom(prefix netip.Prefix) []uint32 {
	prefix = prefix.Masked()
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []uint32
	for asn, a := range t.ases {
		if a.routes[prefix] == nil {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiagnoseReport renders a full Appendix-A-style troubleshooting
// report for a prefix.
func (t *Topology) DiagnoseReport(prefix netip.Prefix) string {
	var b strings.Builder
	unreachable := t.UnreachableFrom(prefix)
	fmt.Fprintf(&b, "prefix %s: %d ASes lack a route\n", prefix, len(unreachable))
	for _, gap := range t.Diagnose(prefix) {
		fmt.Fprintf(&b, "  %s\n", gap)
	}
	return strings.TrimRight(b.String(), "\n")
}
