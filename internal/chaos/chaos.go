// Package chaos is a deterministic, seedable fault-injection subsystem
// for the platform's transports: it wraps the net.Conns carrying BGP
// sessions and tunnels, and the netsim links under them, and injects
// connection resets, read/write stalls, byte corruption, added latency,
// link flaps, and whole-PoP partitions from a scripted or seeded-random
// schedule.
//
// The paper's platform runs for years across thirteen PoPs; sessions
// there die constantly — carrier maintenance, tunnel drops, router
// restarts — and the resilience machinery (reconnect with backoff,
// graceful restart) only counts if it can be exercised on demand and
// reproducibly. An Injector is that exercise rig: every registered
// target is addressed by (class, name, pop), every injected fault is
// recorded in an event log and counted through internal/telemetry, and
// the same seed against the same registration order replays the same
// fault sequence.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultKind names one kind of injected fault.
type FaultKind string

// Fault kinds.
const (
	// Reset closes the underlying transport, killing whatever session
	// rides on it (both directions on in-memory pipes).
	Reset FaultKind = "reset"
	// StallRead blocks reads on the wrapped conn for the duration,
	// simulating an unresponsive peer (exercises hold timers).
	StallRead FaultKind = "stall-read"
	// StallWrite blocks writes for the duration.
	StallWrite FaultKind = "stall-write"
	// Corrupt flips one byte in each of the next few reads, forcing
	// decode errors downstream.
	Corrupt FaultKind = "corrupt"
	// Delay adds per-operation latency for the duration.
	Delay FaultKind = "delay"
	// LinkFlap detaches a registered netsim link and re-attaches it
	// after the duration.
	LinkFlap FaultKind = "link-flap"
	// Partition resets every conn and flaps every link tagged with the
	// fault's PoP (all of them when PoP is empty).
	Partition FaultKind = "partition"
)

// ConnKinds are the kinds that target a wrapped conn (everything but
// link flaps and partitions).
func ConnKinds() []FaultKind {
	return []FaultKind{Reset, StallRead, StallWrite, Corrupt, Delay}
}

// ParseKind maps a fault-kind name (as spelled in the constants above,
// e.g. "reset" or "link-flap") to its FaultKind.
func ParseKind(name string) (FaultKind, error) {
	switch k := FaultKind(name); k {
	case Reset, StallRead, StallWrite, Corrupt, Delay, LinkFlap, Partition:
		return k, nil
	}
	return "", fmt.Errorf("chaos: unknown fault kind %q", name)
}

// Fault is one fault to inject. Empty Class/Name/PoP fields are
// wildcards: a scripted {Kind: Reset} resets every registered conn.
type Fault struct {
	// After is the offset from Run start at which a scripted fault
	// fires. Ignored by Inject.
	After time.Duration
	// Kind selects the fault.
	Kind FaultKind
	// Class restricts the targets ("neighbor", "backbone", "tunnel",
	// "experiment"); empty matches all.
	Class string
	// Name restricts to one registered target name; empty matches all.
	Name string
	// PoP restricts to targets tagged with a PoP; empty matches all.
	PoP string
	// Duration bounds stalls, delays, and flaps. Zero selects the
	// injector's DefaultDuration.
	Duration time.Duration
}

// Event records one injected fault.
type Event struct {
	// At is the offset from Run start (zero for direct Inject calls
	// before Run).
	At time.Duration
	// Fault is the fault as injected (Duration resolved).
	Fault Fault
	// Targets lists the class/name of every target hit.
	Targets []string
}

// Config configures an Injector.
type Config struct {
	// Seed makes the random schedule reproducible. Faults drawn from
	// the same seed against the same registration order are identical.
	Seed int64
	// Script, when non-empty, replaces the random schedule: Run fires
	// each fault at its After offset and returns.
	Script []Fault
	// Rate is the random-mode fault rate in faults per minute.
	Rate float64
	// Kinds restricts random-mode faults; defaults to ConnKinds plus
	// LinkFlap when links are registered.
	Kinds []FaultKind
	// Classes restricts random-mode conn targets; empty matches all.
	Classes []string
	// DefaultDuration is the stall/delay/flap length when a Fault
	// carries none. Defaults to 50ms.
	DefaultDuration time.Duration
	// Logf receives injection logs.
	Logf func(format string, args ...any)
}

// link is a registered flappable link.
type link struct {
	name, pop string
	down, up  func()
}

// Injector owns the registered targets and the fault schedule.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	conns  []*faultConn
	links  []*link
	events []Event
	start  time.Time

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	metrics injectorMetrics
}

// New creates an Injector. Targets are registered with WrapConn and
// RegisterLink; the schedule runs with Run or fires directly via Inject.
func New(cfg Config) *Injector {
	if cfg.DefaultDuration <= 0 {
		cfg.DefaultDuration = 50 * time.Millisecond
	}
	return &Injector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		metrics: newInjectorMetrics(),
	}
}

func (in *Injector) logf(format string, args ...any) {
	if in.cfg.Logf != nil {
		in.cfg.Logf(format, args...)
	}
}

// WrapConn registers c as a fault target addressed by (class, name,
// pop) and returns the wrapped conn to use in its place. A nil Injector
// returns c unchanged, so callers can wire chaos unconditionally.
func (in *Injector) WrapConn(class, name, pop string, c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	fc := newFaultConn(in, class, name, pop, c)
	in.mu.Lock()
	in.conns = append(in.conns, fc)
	n := len(in.conns)
	in.mu.Unlock()
	in.metrics.conns.Set(int64(n))
	return fc
}

// RegisterLink registers a flappable link (down detaches, up
// re-attaches). A nil Injector ignores the call.
func (in *Injector) RegisterLink(name, pop string, down, up func()) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.links = append(in.links, &link{name: name, pop: pop, down: down, up: up})
	n := len(in.links)
	in.mu.Unlock()
	in.metrics.links.Set(int64(n))
}

// Events returns a copy of the injection log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// match reports whether a target's tags satisfy the fault's selectors.
func match(f Fault, class, name, pop string) bool {
	if f.Class != "" && f.Class != class {
		return false
	}
	if f.Name != "" && f.Name != name {
		return false
	}
	if f.PoP != "" && f.PoP != pop {
		return false
	}
	return true
}

// pruneLocked drops closed conns from the registry. Callers hold in.mu.
func (in *Injector) pruneLocked() {
	live := in.conns[:0]
	for _, c := range in.conns {
		if !c.isClosed() {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(in.conns); i++ {
		in.conns[i] = nil
	}
	in.conns = live
}

// Inject fires one fault synchronously against every matching target
// and returns the number of targets hit. Un-flap and un-stall timers
// run in the background.
func (in *Injector) Inject(f Fault) int {
	if f.Duration <= 0 {
		f.Duration = in.cfg.DefaultDuration
	}
	in.mu.Lock()
	in.pruneLocked()
	var conns []*faultConn
	var links []*link
	switch f.Kind {
	case LinkFlap:
		for _, l := range in.links {
			if match(f, "", l.name, l.pop) {
				links = append(links, l)
			}
		}
	case Partition:
		for _, c := range in.conns {
			if f.PoP == "" || c.pop == f.PoP {
				conns = append(conns, c)
			}
		}
		for _, l := range in.links {
			if f.PoP == "" || l.pop == f.PoP {
				links = append(links, l)
			}
		}
	default:
		for _, c := range in.conns {
			if match(f, c.class, c.name, c.pop) {
				conns = append(conns, c)
			}
		}
	}
	in.mu.Unlock()

	targets := make([]string, 0, len(conns)+len(links))
	for _, c := range conns {
		kind := f.Kind
		if kind == Partition {
			kind = Reset
		}
		c.apply(kind, f.Duration)
		targets = append(targets, c.class+"/"+c.name)
	}
	for _, l := range links {
		l.down()
		up := l.up
		time.AfterFunc(f.Duration, up)
		targets = append(targets, "link/"+l.name)
	}
	in.record(f, targets)
	if len(targets) > 0 {
		in.logf("chaos: %s hit %d target(s): %v", f.Kind, len(targets), targets)
	}
	return len(targets)
}

func (in *Injector) record(f Fault, targets []string) {
	in.metrics.faults(f.Kind).Inc()
	in.metrics.targetsHit.Add(uint64(len(targets)))
	in.mu.Lock()
	at := time.Duration(0)
	if !in.start.IsZero() {
		at = time.Since(in.start)
	}
	in.events = append(in.events, Event{At: at, Fault: f, Targets: targets})
	in.mu.Unlock()
}

// randomFault draws the next random-mode fault: one kind, one concrete
// target. The draw consumes the seeded rng, so the sequence of
// (kind, target) pairs is a pure function of seed and registration
// order. It returns false when nothing is registered.
func (in *Injector) randomFault() (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.pruneLocked()

	kinds := in.cfg.Kinds
	if len(kinds) == 0 {
		kinds = ConnKinds()
		if len(in.links) > 0 {
			kinds = append(kinds, LinkFlap)
		}
	}
	kind := kinds[in.rng.Intn(len(kinds))]

	f := Fault{Kind: kind, Duration: in.cfg.DefaultDuration}
	switch kind {
	case LinkFlap:
		if len(in.links) == 0 {
			return Fault{}, false
		}
		l := in.links[in.rng.Intn(len(in.links))]
		f.Name, f.PoP = l.name, l.pop
	case Partition:
		pops := make(map[string]bool)
		var order []string
		for _, c := range in.conns {
			if c.pop != "" && !pops[c.pop] {
				pops[c.pop] = true
				order = append(order, c.pop)
			}
		}
		if len(order) == 0 {
			return Fault{}, false
		}
		f.PoP = order[in.rng.Intn(len(order))]
	default:
		var eligible []*faultConn
		for _, c := range in.conns {
			if len(in.cfg.Classes) == 0 {
				eligible = append(eligible, c)
				continue
			}
			for _, cl := range in.cfg.Classes {
				if c.class == cl {
					eligible = append(eligible, c)
					break
				}
			}
		}
		if len(eligible) == 0 {
			return Fault{}, false
		}
		c := eligible[in.rng.Intn(len(eligible))]
		f.Class, f.Name, f.PoP = c.class, c.name, c.pop
	}
	return f, true
}

// Run executes the schedule: the script when one is configured,
// otherwise seeded-random faults at cfg.Rate until Stop. It returns
// when the script completes or Stop is called.
func (in *Injector) Run() {
	defer close(in.doneCh)
	in.mu.Lock()
	in.start = time.Now()
	base := in.start
	in.mu.Unlock()

	if len(in.cfg.Script) > 0 {
		script := append([]Fault(nil), in.cfg.Script...)
		for i := 1; i < len(script); i++ {
			for j := i; j > 0 && script[j].After < script[j-1].After; j-- {
				script[j], script[j-1] = script[j-1], script[j]
			}
		}
		for _, f := range script {
			wait := time.Until(base.Add(f.After))
			if wait > 0 {
				select {
				case <-in.stopCh:
					return
				case <-time.After(wait):
				}
			}
			in.Inject(f)
		}
		return
	}

	if in.cfg.Rate <= 0 {
		<-in.stopCh
		return
	}
	mean := time.Duration(float64(time.Minute) / in.cfg.Rate)
	for {
		in.mu.Lock()
		// Jitter the gap in [0.5, 1.5) of the mean, from the seeded rng.
		gap := time.Duration(float64(mean) * (0.5 + in.rng.Float64()))
		in.mu.Unlock()
		select {
		case <-in.stopCh:
			return
		case <-time.After(gap):
		}
		if f, ok := in.randomFault(); ok {
			in.Inject(f)
		}
	}
}

// Stop ends Run. Safe to call multiple times and before Run.
func (in *Injector) Stop() {
	in.stopOnce.Do(func() { close(in.stopCh) })
}

// Done is closed when Run returns.
func (in *Injector) Done() <-chan struct{} { return in.doneCh }
