package chaos

import (
	"fmt"
	"sync"
)

// Crash is the process-death fault class: unlike the transport faults,
// which degrade a running daemon, a crash kills the control plane
// outright at a seeded instruction boundary. The paper's platform is
// crash-only — operators kill -9 peeringd and expect the durable
// desired-state log plus the recovery reconciliation pass to restore
// exactly the pre-crash trajectory — and that property is only real if
// the kill can land at the worst possible points: before the WAL
// write, after the WAL write but before actuation, and between two
// actuations of one batch.
const Crash FaultKind = "crash"

// CrashPoints are the seeded injection points the control plane
// exposes (via its CrashHook plumbing) for crash faults.
var CrashPoints = []string{
	// PreWALWrite fires inside the store commit before the durable
	// record is appended: the in-memory mutation dies with the process
	// and recovery must not resurrect it.
	"pre-wal-write",
	// PostWALPreActuate fires after the record is fsynced but before
	// the reconciler actuates it: recovery must finish the actuation
	// exactly once.
	"post-wal-pre-actuate",
	// MidBatch fires between two actuations of one reconcile pass:
	// recovery must adopt the half-installed state without re-sending
	// (and without burning update budget).
	"mid-batch",
}

// CrashPanic is the value a Crasher panics with; tests recover it at
// the process boundary they simulate.
type CrashPanic struct {
	Point string
}

func (c CrashPanic) Error() string { return fmt.Sprintf("chaos: injected crash at %s", c.Point) }

// Crasher arms one injected crash: Hook returns a func(point string)
// suitable for the control plane's CrashHook fields, and the Nth time
// the armed point is reached the hook panics with CrashPanic. The
// panic stands in for SIGKILL — the test recovers it where the process
// boundary would be, abandons every live component, and restarts the
// control plane from the durable state directory, exactly as init
// would respawn a killed daemon.
type Crasher struct {
	mu    sync.Mutex
	point string
	after int // remaining hits of point before firing
	armed bool
	fired bool
	seen  map[string]int
}

// NewCrasher returns an unarmed Crasher; its hook counts injection
// points but never fires until Arm.
func NewCrasher() *Crasher {
	return &Crasher{seen: make(map[string]int)}
}

// Arm schedules the crash: the hook panics the (after+1)th time point
// is reached (after=0 means the first hit). Re-arming resets any
// previous schedule.
func (c *Crasher) Arm(point string, after int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.point = point
	c.after = after
	c.armed = true
	c.fired = false
}

// Disarm cancels a scheduled crash without clearing hit counts.
func (c *Crasher) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = false
}

// Fired reports whether the injected crash has gone off.
func (c *Crasher) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Seen returns how many times the named injection point was reached.
func (c *Crasher) Seen(point string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen[point]
}

// Hook returns the injection function to wire into the control plane's
// CrashHook fields. Safe for concurrent use.
func (c *Crasher) Hook() func(point string) {
	return func(point string) {
		c.mu.Lock()
		c.seen[point]++
		fire := c.armed && !c.fired && point == c.point
		if fire {
			if c.after > 0 {
				c.after--
				fire = false
			} else {
				c.fired = true
				c.armed = false
			}
		}
		c.mu.Unlock()
		if fire {
			panic(CrashPanic{Point: point})
		}
	}
}
