package chaos

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipe"
	"repro/internal/telemetry"
)

func TestResetKillsBothEnds(t *testing.T) {
	in := New(Config{Seed: 1})
	a, b := pipe.New()
	wrapped := in.WrapConn("neighbor", "as100", "amsix", a)

	if n := in.Inject(Fault{Kind: Reset, Class: "neighbor"}); n != 1 {
		t.Fatalf("Inject hit %d targets, want 1", n)
	}
	if _, err := wrapped.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("wrapped read after reset: err=%v, want EOF", err)
	}
	if _, err := b.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after reset: err=%v, want EOF", err)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Fault.Kind != Reset || len(ev[0].Targets) != 1 {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Targets[0] != "neighbor/as100" {
		t.Fatalf("target = %q", ev[0].Targets[0])
	}
}

func TestSelectorsFilterTargets(t *testing.T) {
	in := New(Config{Seed: 1})
	a1, _ := pipe.New()
	a2, _ := pipe.New()
	a3, _ := pipe.New()
	in.WrapConn("neighbor", "as100", "amsix", a1)
	in.WrapConn("neighbor", "as200", "six", a2)
	in.WrapConn("tunnel", "exp1", "amsix", a3)

	if n := in.Inject(Fault{Kind: Reset, Class: "neighbor", PoP: "amsix"}); n != 1 {
		t.Fatalf("class+pop selector hit %d, want 1", n)
	}
	if n := in.Inject(Fault{Kind: Reset, Name: "exp1"}); n != 1 {
		t.Fatalf("name selector hit %d, want 1", n)
	}
	// The two reset conns are pruned; only as200 remains.
	if n := in.Inject(Fault{Kind: Reset}); n != 1 {
		t.Fatalf("wildcard after prune hit %d, want 1", n)
	}
}

func TestStallReadBlocks(t *testing.T) {
	in := New(Config{Seed: 1})
	a, b := pipe.New()
	wrapped := in.WrapConn("neighbor", "as100", "amsix", a)
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}

	const stall = 60 * time.Millisecond
	in.Inject(Fault{Kind: StallRead, Duration: stall})
	start := time.Now()
	if _, err := wrapped.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < stall/2 {
		t.Fatalf("read returned after %v, want >= %v", got, stall/2)
	}
}

func TestCorruptFlipsByte(t *testing.T) {
	in := New(Config{Seed: 1})
	a, b := pipe.New()
	wrapped := in.WrapConn("neighbor", "as100", "amsix", a)
	in.Inject(Fault{Kind: Corrupt})
	if _, err := b.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	n, err := io.ReadFull(wrapped, buf)
	if err != nil || n != 3 {
		t.Fatalf("read %d, %v", n, err)
	}
	if buf[0] == 1 && buf[1] == 2 && buf[2] == 3 {
		t.Fatalf("payload %v survived corruption intact", buf)
	}
}

func TestLinkFlapCallsDownThenUp(t *testing.T) {
	in := New(Config{Seed: 1})
	var downs, ups atomic.Int32
	in.RegisterLink("bb0", "amsix", func() { downs.Add(1) }, func() { ups.Add(1) })

	if n := in.Inject(Fault{Kind: LinkFlap, PoP: "amsix", Duration: 10 * time.Millisecond}); n != 1 {
		t.Fatalf("flap hit %d, want 1", n)
	}
	if downs.Load() != 1 {
		t.Fatalf("down called %d times", downs.Load())
	}
	deadline := time.Now().Add(time.Second)
	for ups.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("up never called")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionHitsWholePoP(t *testing.T) {
	in := New(Config{Seed: 1})
	a1, _ := pipe.New()
	a2, _ := pipe.New()
	w1 := in.WrapConn("neighbor", "as100", "amsix", a1)
	in.WrapConn("backbone", "six", "six", a2)
	var downs atomic.Int32
	in.RegisterLink("bb0", "amsix", func() { downs.Add(1) }, func() {})
	in.RegisterLink("bb0", "six", func() { t.Error("six link flapped") }, func() {})

	if n := in.Inject(Fault{Kind: Partition, PoP: "amsix", Duration: time.Millisecond}); n != 2 {
		t.Fatalf("partition hit %d targets, want 2 (conn + link)", n)
	}
	if _, err := w1.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("amsix conn not reset: %v", err)
	}
	if downs.Load() != 1 {
		t.Fatalf("amsix link down called %d times", downs.Load())
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	draw := func(seed int64) []string {
		in := New(Config{Seed: seed})
		for i, name := range []string{"as100", "as200", "as300"} {
			c, _ := pipe.New()
			pop := []string{"amsix", "six"}[i%2]
			in.WrapConn("neighbor", name, pop, c)
		}
		in.RegisterLink("bb0", "amsix", func() {}, func() {})
		var seq []string
		for i := 0; i < 32; i++ {
			f, ok := in.randomFault()
			if !ok {
				t.Fatal("no fault drawn")
			}
			if f.Kind != Reset { // keep targets alive across draws
				in.Inject(f)
			}
			seq = append(seq, string(f.Kind)+":"+f.Name+":"+f.PoP)
		}
		return seq
	}
	one, two := draw(42), draw(42)
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("draw %d diverged: %q vs %q", i, one[i], two[i])
		}
	}
	other := draw(43)
	same := true
	for i := range one {
		if one[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScriptedRunFiresInOrder(t *testing.T) {
	in := New(Config{
		Seed: 7,
		Script: []Fault{
			{After: 20 * time.Millisecond, Kind: Corrupt, Name: "as100"},
			{After: 5 * time.Millisecond, Kind: StallRead, Name: "as100", Duration: time.Millisecond},
		},
	})
	c, _ := pipe.New()
	in.WrapConn("neighbor", "as100", "amsix", c)
	go in.Run()
	select {
	case <-in.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("scripted run did not finish")
	}
	ev := in.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Fault.Kind != StallRead || ev[1].Fault.Kind != Corrupt {
		t.Fatalf("script fired out of order: %v then %v", ev[0].Fault.Kind, ev[1].Fault.Kind)
	}
}

func TestRandomRunInjectsAtRate(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 60 * 1000, Kinds: []FaultKind{Corrupt}})
	c, _ := pipe.New()
	in.WrapConn("neighbor", "as100", "amsix", c)
	go in.Run()
	deadline := time.Now().Add(2 * time.Second)
	for len(in.Events()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	<-in.Done()
	if got := len(in.Events()); got < 3 {
		t.Fatalf("random run injected %d faults in 2s at 1000/s", got)
	}
}

func TestTelemetryCountsFaults(t *testing.T) {
	reg := telemetry.Default()
	before := reg.Value("chaos_faults_total")
	in := New(Config{Seed: 1})
	c, _ := pipe.New()
	in.WrapConn("neighbor", "as100", "amsix", c)
	in.Inject(Fault{Kind: Reset})
	if got := reg.Value("chaos_faults_total"); got < before+1 {
		t.Fatalf("chaos_faults_total = %v, want >= %v", got, before+1)
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	a, b := pipe.New()
	c := in.WrapConn("neighbor", "as100", "amsix", a)
	if c != a {
		t.Fatal("nil injector wrapped the conn")
	}
	in.RegisterLink("bb0", "amsix", func() {}, func() {})
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
}
