package chaos

import "repro/internal/telemetry"

// injectorMetrics holds the counters an Injector resolves once in New,
// following the platform's resolved-pointer convention: registration is
// a map lookup, every increment afterwards is one atomic op.
type injectorMetrics struct {
	// byKind counts injected faults per kind (chaos_faults_total{kind}).
	byKind map[FaultKind]*telemetry.Counter
	// targetsHit counts targets hit across all faults.
	targetsHit *telemetry.Counter
	// resets counts conns closed by Reset (and Partition) faults.
	resets *telemetry.Counter
	// corruptions counts reads whose payload was corrupted.
	corruptions *telemetry.Counter
	// conns and links gauge the registered target population.
	conns *telemetry.Gauge
	links *telemetry.Gauge
}

func newInjectorMetrics() injectorMetrics {
	reg := telemetry.Default()
	kinds := append(ConnKinds(), LinkFlap, Partition)
	byKind := make(map[FaultKind]*telemetry.Counter, len(kinds))
	for _, k := range kinds {
		byKind[k] = reg.Counter("chaos_faults_total", telemetry.L("kind", string(k)))
	}
	return injectorMetrics{
		byKind:      byKind,
		targetsHit:  reg.Counter("chaos_targets_hit_total"),
		resets:      reg.Counter("chaos_conn_resets_total"),
		corruptions: reg.Counter("chaos_corrupted_reads_total"),
		conns:       reg.Gauge("chaos_registered_conns"),
		links:       reg.Gauge("chaos_registered_links"),
	}
}

// faults returns the per-kind counter (shared "other" series for kinds
// outside the registered set, which cannot happen for valid faults).
func (m injectorMetrics) faults(k FaultKind) *telemetry.Counter {
	if c, ok := m.byKind[k]; ok {
		return c
	}
	return telemetry.Default().Counter("chaos_faults_total", telemetry.L("kind", string(k)))
}
