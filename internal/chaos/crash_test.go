package chaos

import "testing"

func TestCrasherFiresOnceAtArmedPoint(t *testing.T) {
	c := NewCrasher()
	hook := c.Hook()

	// Unarmed: counts but never fires.
	hook("pre-wal-write")
	if c.Fired() {
		t.Fatal("unarmed crasher fired")
	}
	if c.Seen("pre-wal-write") != 1 {
		t.Fatalf("seen = %d, want 1", c.Seen("pre-wal-write"))
	}

	c.Arm("mid-batch", 1) // skip the first hit, fire on the second
	hook("pre-wal-write") // other points never fire
	hook("mid-batch")
	if c.Fired() {
		t.Fatal("fired one hit early")
	}
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("armed point did not panic")
			}
			cp, ok := v.(CrashPanic)
			if !ok || cp.Point != "mid-batch" {
				t.Fatalf("panic value = %#v, want CrashPanic{mid-batch}", v)
			}
			if cp.Error() == "" {
				t.Fatal("CrashPanic must describe itself")
			}
		}()
		hook("mid-batch")
	}()
	if !c.Fired() {
		t.Fatal("Fired() false after firing")
	}

	// One-shot: the same point never fires again until re-armed.
	hook("mid-batch")
	if c.Seen("mid-batch") != 3 {
		t.Fatalf("seen mid-batch = %d, want 3", c.Seen("mid-batch"))
	}
}

func TestCrasherDisarm(t *testing.T) {
	c := NewCrasher()
	c.Arm("pre-wal-write", 0)
	c.Disarm()
	c.Hook()("pre-wal-write")
	if c.Fired() {
		t.Fatal("disarmed crasher fired")
	}
}
