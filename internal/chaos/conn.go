package chaos

import (
	"net"
	"sync"
	"time"
)

// corruptReads is how many subsequent reads a Corrupt fault poisons.
const corruptReads = 3

// faultConn wraps a net.Conn and applies whatever fault state the
// injector has set on it. Read/Write consult the state under a mutex
// but sleep outside it, so a stalled conn does not block Inject.
type faultConn struct {
	net.Conn
	inj              *Injector
	class, name, pop string

	mu              sync.Mutex
	stallReadUntil  time.Time
	stallWriteUntil time.Time
	delayUntil      time.Time
	delay           time.Duration
	corrupt         int
	closed          bool
}

func newFaultConn(in *Injector, class, name, pop string, c net.Conn) *faultConn {
	return &faultConn{Conn: c, inj: in, class: class, name: name, pop: pop}
}

// apply sets the fault state for one conn-targeted fault kind.
func (c *faultConn) apply(kind FaultKind, d time.Duration) {
	switch kind {
	case Reset:
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.inj.metrics.resets.Inc()
		_ = c.Conn.Close()
		return
	}
	now := time.Now()
	c.mu.Lock()
	switch kind {
	case StallRead:
		c.stallReadUntil = now.Add(d)
	case StallWrite:
		c.stallWriteUntil = now.Add(d)
	case Corrupt:
		c.corrupt = corruptReads
	case Delay:
		c.delay = d / 10
		if c.delay <= 0 {
			c.delay = time.Millisecond
		}
		c.delayUntil = now.Add(d)
	}
	c.mu.Unlock()
}

// pause sleeps until deadline unless the conn closes first.
func (c *faultConn) pause(deadline time.Time) {
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			return
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if wait > 5*time.Millisecond {
			wait = 5 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

func (c *faultConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	stall := c.stallReadUntil
	var lat time.Duration
	if time.Now().Before(c.delayUntil) {
		lat = c.delay
	}
	c.mu.Unlock()
	if time.Now().Before(stall) {
		c.pause(stall)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.mu.Lock()
		corrupt := c.corrupt > 0
		if corrupt {
			c.corrupt--
		}
		c.mu.Unlock()
		if corrupt {
			b[n/2] ^= 0xFF
			c.inj.metrics.corruptions.Inc()
		}
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	stall := c.stallWriteUntil
	var lat time.Duration
	if time.Now().Before(c.delayUntil) {
		lat = c.delay
	}
	c.mu.Unlock()
	if time.Now().Before(stall) {
		c.pause(stall)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *faultConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
