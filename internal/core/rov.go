package core

import (
	"net/netip"

	"repro/internal/bgp"
	"repro/internal/rib"
	"repro/internal/rpki"
)

// RPKI integration: the router does not drop Invalid neighbor routes —
// experiments are the consumers, and observing hijacks is a primary use
// case (paper §7.1) — but it annotates every route exported to an
// experiment with its validation state so experiments can filter or
// study by it, and it re-exports routes whose state changes as the
// validated cache converges over RTR.

// rovKey identifies one neighbor route's stamped validation state.
type rovKey struct {
	neighbor string
	prefix   netip.Prefix
}

// ValidationStateCommunity builds the large community stamping a
// route's RPKI validation state.
func ValidationStateCommunity(platformASN uint32, st rpki.State) bgp.LargeCommunity {
	return bgp.LargeCommunity{Global: platformASN, Local1: largeFnValidationState, Local2: uint32(st)}
}

// ValidationStateFrom extracts the platform's validation-state stamp
// from a route's large communities. ok is false when the route carries
// none.
func ValidationStateFrom(platformASN uint32, large []bgp.LargeCommunity) (st rpki.State, ok bool) {
	for _, c := range large {
		if c.Global == platformASN && c.Local1 == largeFnValidationState {
			return rpki.State(c.Local2), true
		}
	}
	return 0, false
}

// stampValidation classifies (prefix, origin of attrs) and replaces any
// existing validation-state community with the fresh verdict, recording
// it for RevalidateExports. Returns attrs unchanged when no validator
// is configured.
func (r *Router) stampValidation(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs) *bgp.PathAttrs {
	if r.cfg.Validator == nil {
		return attrs
	}
	origin := attrs.OriginASN()
	if origin == 0 {
		origin = n.ASN
	}
	st := r.cfg.Validator.Validate(prefix, origin)
	kept := attrs.LargeCommunities[:0:0]
	for _, c := range attrs.LargeCommunities {
		// A neighbor asserting our own stamp is spoofing; drop it.
		if c.Global == r.cfg.ASN && c.Local1 == largeFnValidationState {
			continue
		}
		kept = append(kept, c)
	}
	attrs.LargeCommunities = append(kept, ValidationStateCommunity(r.cfg.ASN, st))
	r.mu.Lock()
	if r.rovStates == nil {
		r.rovStates = make(map[rovKey]rpki.State)
	}
	r.rovStates[rovKey{n.Name, prefix}] = st
	r.mu.Unlock()
	return attrs
}

// RevalidateExports re-examines every neighbor route previously
// exported to experiments and re-exports those whose validation state
// changed since it was stamped — the hook an RTR client's OnChange
// drives, so a ROA added or revoked at the trust anchor flips routes
// held by experiments without any session restart.
func (r *Router) RevalidateExports() {
	if r.cfg.Validator == nil {
		return
	}
	r.mu.Lock()
	neighbors := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		neighbors = append(neighbors, n)
	}
	states := make(map[rovKey]rpki.State, len(r.rovStates))
	for k, v := range r.rovStates {
		states[k] = v
	}
	r.mu.Unlock()

	for _, n := range neighbors {
		type entry struct {
			prefix netip.Prefix
			attrs  *bgp.PathAttrs
		}
		var changed []entry
		n.Table.WalkBest(func(prefix netip.Prefix, best *rib.Path) bool {
			origin := best.Attrs.OriginASN()
			if origin == 0 {
				origin = n.ASN
			}
			st := r.cfg.Validator.Validate(prefix, origin)
			if prev, ok := states[rovKey{n.Name, prefix}]; ok && prev == st {
				return true
			}
			changed = append(changed, entry{prefix, best.Attrs})
			return true
		})
		for _, e := range changed {
			r.exportToExperiments(n, e.prefix, e.attrs, false)
		}
	}
}
