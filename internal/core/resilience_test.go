package core

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/netsim"
	"repro/internal/pipe"
)

// grSpeaker runs one scripted neighbor session that advertises graceful
// restart and, on establishment, announces the given prefixes followed
// by End-of-RIB for both families.
func startGRSpeaker(localASN, remoteASN uint32, id string, conn net.Conn, prefixes []string) *bgp.Session {
	var sess *bgp.Session
	sess = bgp.NewSession(conn, bgp.Config{
		LocalASN: localASN, RemoteASN: remoteASN, LocalID: ip(id),
		Families:        []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		GracefulRestart: &bgp.GracefulRestartConfig{RestartTime: 5 * time.Second},
		OnEstablished: func() {
			for _, p := range prefixes {
				attrs := &bgp.PathAttrs{
					Origin: bgp.OriginIGP, HasOrigin: true,
					ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{localASN}}},
					NextHop: ip(id),
				}
				_ = sess.Send(&bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx(p)}}})
			}
			_ = sess.SendEndOfRIB(bgp.IPv4Unicast)
			_ = sess.SendEndOfRIB(bgp.IPv6Unicast)
		},
	})
	go sess.Run()
	return sess
}

// TestNeighborGracefulRestartAcrossReconnect kills a supervised
// neighbor's transport and verifies the RFC 4724 flow end to end:
// routes are retained as stale while the peer is down, the supervisor
// redials, and after the restarted peer's End-of-RIB the
// non-re-advertised path is swept while the re-advertised one survives.
func TestNeighborGracefulRestartAcrossReconnect(t *testing.T) {
	lan := netsim.NewSegment("nbr-lan")
	r := NewRouter(Config{Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1")})
	r.AddInterface("nbr0", "neighbor", pfx("192.0.2.254/24"), lan)

	var peerConn atomic.Value // net.Conn: the speaker side of the live pair
	var dials atomic.Int32
	dial := func() ([2]net.Conn, []string) {
		// First session announces two prefixes; the restarted one
		// re-advertises only the first.
		prefixes := []string{"10.0.0.0/16", "10.1.0.0/16"}
		if dials.Add(1) > 1 {
			prefixes = prefixes[:1]
		}
		cr, cn := pipe.New()
		return [2]net.Conn{cr, cn}, prefixes
	}

	pair, prefixes := dial()
	peerConn.Store(pair[1])
	startGRSpeaker(n1ASN, platformASN, "192.0.2.1", pair[1], prefixes)

	n, err := r.AddNeighbor(NeighborConfig{
		Name: "N1", ID: 1, ASN: n1ASN, Addr: ip("192.0.2.1"), Interface: "nbr0",
		Conn:            pair[0],
		GracefulRestart: 5 * time.Second,
		Redial: func() (net.Conn, error) {
			p, pfxs := dial()
			peerConn.Store(p[1])
			startGRSpeaker(n1ASN, platformASN, "192.0.2.1", p[1], pfxs)
			return p[0], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, "initial routes", func() bool { return n.Table.PathCount() == 2 })

	// Transport loss (not an administrative close).
	peerConn.Load().(net.Conn).Close()
	waitFor(t, "stale retention", func() bool { return n.Table.StaleCount(n.Name) == 2 })
	if got := n.Table.PathCount(); got != 2 {
		t.Fatalf("paths flushed on graceful drop: PathCount = %d, want 2", got)
	}

	// The supervisor redials; the restarted peer replays one prefix and
	// ends with End-of-RIB, sweeping the other.
	waitFor(t, "post-restart convergence", func() bool {
		return n.Table.StaleCount(n.Name) == 0 && n.Table.PathCount() == 1
	})
	if best := n.Table.Best(pfx("10.0.0.0/16")); best == nil || best.Stale {
		t.Fatalf("re-advertised path missing or stale: %+v", best)
	}
	if n.Table.Best(pfx("10.1.0.0/16")) != nil {
		t.Fatal("non-re-advertised path survived End-of-RIB sweep")
	}
	if dials.Load() < 2 {
		t.Fatalf("supervisor never redialed (dials = %d)", dials.Load())
	}
}

// TestExperimentGracefulReconnect drops an experiment's control session
// and verifies its announcements survive until the reconnected client
// replays them and sends End-of-RIB.
func TestExperimentGracefulReconnect(t *testing.T) {
	r := NewRouter(Config{Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1")})

	announce := func(sess *bgp.Session, prefixes ...string) {
		for _, p := range prefixes {
			attrs := &bgp.PathAttrs{
				Origin: bgp.OriginIGP, HasOrigin: true,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{expASN}}},
				NextHop: ip("100.65.0.1"),
			}
			_ = sess.Send(&bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx(p)}}})
		}
	}
	clientCfg := func(est chan struct{}) bgp.Config {
		return bgp.Config{
			LocalASN: expASN, RemoteASN: platformASN, LocalID: ip("100.65.0.1"),
			Families: []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
			AddPath: map[bgp.AFISAFI]uint8{
				bgp.IPv4Unicast: bgp.AddPathSendReceive,
				bgp.IPv6Unicast: bgp.AddPathSendReceive,
			},
			GracefulRestart: &bgp.GracefulRestartConfig{RestartTime: 5 * time.Second},
			OnEstablished:   func() { close(est) },
		}
	}

	cr, cn := pipe.New()
	if _, err := r.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	est1 := make(chan struct{})
	client := bgp.NewSession(cn, clientCfg(est1))
	go client.Run()
	<-est1
	announce(client, "10.1.0.0/24", "10.1.1.0/24")
	waitFor(t, "experiment routes", func() bool { return r.ExperimentRoutes().PathCount() == 2 })

	// Tunnel dies: transport error, routes retained as stale.
	cn.Close()
	waitFor(t, "stale experiment routes", func() bool { return r.ExperimentRoutes().StaleCount("X1") == 2 })
	if got := r.ExperimentRoutes().PathCount(); got != 2 {
		t.Fatalf("experiment routes flushed on graceful drop: %d", got)
	}

	// Reconnect under the same name: allowed because the old session is
	// dead. The client replays one prefix and signals End-of-RIB.
	cr2, cn2 := pipe.New()
	if _, err := r.ConnectExperiment("X1", expASN, cr2); err != nil {
		t.Fatalf("reconnect rejected: %v", err)
	}
	est2 := make(chan struct{})
	client2 := bgp.NewSession(cn2, clientCfg(est2))
	go client2.Run()
	<-est2
	announce(client2, "10.1.0.0/24")
	_ = client2.SendEndOfRIB(bgp.IPv4Unicast)
	_ = client2.SendEndOfRIB(bgp.IPv6Unicast)

	waitFor(t, "post-reconnect convergence", func() bool {
		tbl := r.ExperimentRoutes()
		return tbl.StaleCount("X1") == 0 && tbl.PathCount() == 1
	})
	if r.ExperimentRoutes().Best(pfx("10.1.1.0/24")) != nil {
		t.Fatal("non-replayed experiment route survived the sweep")
	}

	// A second live session under the same name is still rejected.
	cr3, _ := pipe.New()
	if _, err := r.ConnectExperiment("X1", expASN, cr3); err == nil {
		t.Fatal("duplicate live experiment session accepted")
	}
}

// TestNeighborAdministrativeCloseStillWithdraws ensures the graceful
// path does not swallow deliberate teardowns: closing the neighbor
// session administratively withdraws routes immediately even with
// graceful restart negotiated.
func TestNeighborAdministrativeCloseStillWithdraws(t *testing.T) {
	lan := netsim.NewSegment("nbr-lan")
	r := NewRouter(Config{Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1")})
	r.AddInterface("nbr0", "neighbor", pfx("192.0.2.254/24"), lan)

	cr, cn := pipe.New()
	n, err := r.AddNeighbor(NeighborConfig{
		Name: "N1", ID: 1, ASN: n1ASN, Addr: ip("192.0.2.1"), Interface: "nbr0",
		Conn:            cr,
		GracefulRestart: 5 * time.Second,
		Redial:          func() (net.Conn, error) { return nil, net.ErrClosed },
	})
	if err != nil {
		t.Fatal(err)
	}
	startGRSpeaker(n1ASN, platformASN, "192.0.2.1", cn, []string{"10.0.0.0/16"})
	waitFor(t, "initial route", func() bool { return n.Table.PathCount() == 1 })

	n.Session().Close()
	waitFor(t, "immediate withdrawal", func() bool { return n.Table.PathCount() == 0 })
	if got := n.Table.StaleCount(n.Name); got != 0 {
		t.Fatalf("administrative close left %d stale paths", got)
	}
}
