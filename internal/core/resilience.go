package core

import (
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/rib"
)

// Graceful-restart retention plumbing (RFC 4724 §4): when a resilient
// session drops, the down-handlers mark the peer's paths stale instead
// of withdrawing them, keeping forwarding state intact while the peer
// restarts. Re-advertisements replace the stale copies through the
// normal update path; whatever is still stale when End-of-RIB arrives
// for a family — or when the restart window lapses without one — is
// swept here and the resulting withdrawals propagated exactly as a
// live withdrawal would be.

// neighborEndOfRIB sweeps a neighbor family once the restarted peer
// signals that its re-advertisement is complete.
func (r *Router) neighborEndOfRIB(n *Neighbor, fam bgp.AFISAFI) {
	r.sweepNeighborStale(n, fam == bgp.IPv6Unicast)
	if n.Table.StaleCount(n.Name) == 0 {
		n.sessMu.Lock()
		if n.staleTimer != nil {
			n.staleTimer.Stop()
			n.staleTimer = nil
		}
		n.sessMu.Unlock()
	}
}

// armNeighborFlush (re)arms the restart timer that flushes still-stale
// paths if the peer never finishes restarting (RFC 4724 §4.2's "stale
// timer").
func (r *Router) armNeighborFlush(n *Neighbor) {
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	if n.staleTimer != nil {
		n.staleTimer.Stop()
	}
	n.staleTimer = time.AfterFunc(n.gr, func() {
		n.sessMu.Lock()
		n.staleTimer = nil
		n.sessMu.Unlock()
		r.logf("neighbor %s: restart window lapsed, flushing stale paths", n.Name)
		r.sweepNeighborStale(n, false)
		r.sweepNeighborStale(n, true)
	})
}

// sweepNeighborStale removes a neighbor's still-stale paths for one
// family and propagates the resulting route changes to experiments and
// (for local neighbors) the backbone mesh.
func (r *Router) sweepNeighborStale(n *Neighbor, v6 bool) {
	removed := n.Table.SweepStale(n.Name, v6)
	if r.defaultTable != nil {
		r.defaultTable.SweepStale(n.Name, v6)
	}
	r.syncNeighborRoutesGauge(n)
	seen := make(map[netip.Prefix]bool, len(removed))
	for _, p := range removed {
		if seen[p.Prefix] {
			continue
		}
		seen[p.Prefix] = true
		if best := n.Table.Best(p.Prefix); best != nil {
			// A fresh (re-advertised) path survives: re-export it so
			// downstream state converges on the post-restart route.
			r.exportToExperiments(n, p.Prefix, best.Attrs, false)
			if !n.Remote {
				r.exportToMesh(n, p.Prefix, best.Attrs, false)
			}
		} else {
			r.exportToExperiments(n, p.Prefix, nil, true)
			if !n.Remote {
				r.exportToMesh(n, p.Prefix, nil, true)
			}
		}
	}
}

// experimentEndOfRIB sweeps an experiment family once the reconnected
// client finishes replaying its announcements.
func (r *Router) experimentEndOfRIB(e *expConn, fam bgp.AFISAFI) {
	r.sweepExperimentStale(e.name, fam == bgp.IPv6Unicast)
	if r.expRoutes.StaleCount(e.name) == 0 {
		r.mu.Lock()
		if t := r.expStale[e.name]; t != nil {
			t.Stop()
			delete(r.expStale, e.name)
		}
		r.mu.Unlock()
	}
}

// armExperimentFlush (re)arms the per-experiment restart timer.
func (r *Router) armExperimentFlush(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.expStale[name]; t != nil {
		t.Stop()
	}
	r.expStale[name] = time.AfterFunc(d, func() {
		r.mu.Lock()
		delete(r.expStale, name)
		r.mu.Unlock()
		r.logf("experiment %s: restart window lapsed, flushing stale routes", name)
		r.sweepExperimentStale(name, false)
		r.sweepExperimentStale(name, true)
	})
}

// AdoptExperimentRoute clears the graceful-restart stale mark on one
// experiment route: a restarted control plane that verified the
// retained route still matches its recovered desired state re-claims
// it in place, so neither the restart-window flush nor a re-announce
// (with its update-budget cost) is needed. Returns whether a stale
// copy was found. The pending flush timer is disarmed once no stale
// routes remain for the owner.
func (r *Router) AdoptExperimentRoute(owner string, prefix netip.Prefix, id bgp.PathID) bool {
	if !r.expRoutes.AdoptPath(prefix, owner, id) {
		return false
	}
	if r.expRoutes.StaleCount(owner) == 0 {
		r.mu.Lock()
		if t := r.expStale[owner]; t != nil {
			t.Stop()
			delete(r.expStale, owner)
		}
		r.mu.Unlock()
	}
	return true
}

// PurgeExperiment withdraws every route owned by owner — both
// families, live or stale — without policy enforcement, and disarms
// any pending restart flush. This is the teardown half of orphan
// reconciliation: announcements whose desired object did not survive a
// control-plane crash must not keep dangling in the synthetic
// Internet. Returns how many routes were withdrawn.
func (r *Router) PurgeExperiment(owner string) int {
	r.mu.Lock()
	if t := r.expStale[owner]; t != nil {
		t.Stop()
		delete(r.expStale, owner)
	}
	r.mu.Unlock()
	type ver struct {
		prefix netip.Prefix
		id     bgp.PathID
	}
	var vers []ver
	r.expRoutes.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		for _, p := range paths {
			if p.Peer == owner {
				vers = append(vers, ver{prefix, p.ID})
			}
		}
		return true
	})
	for _, v := range vers {
		r.withdrawExperimentRoute(owner, v.prefix, v.id, false)
	}
	return len(vers)
}

// sweepExperimentStale removes an owner's still-stale experiment routes
// for one family, re-synchronizes neighbor exports and relays the
// withdrawals into the mesh (unless the owner itself is a mesh peer).
func (r *Router) sweepExperimentStale(owner string, v6 bool) {
	removed := r.expRoutes.SweepStale(owner, v6)
	for _, p := range removed {
		r.mu.Lock()
		delete(r.expTargets, expRouteKey{p.Prefix, owner, p.ID})
		r.mu.Unlock()
		r.syncPrefix(p.Prefix)
		if !isMeshOwner(owner) {
			r.relayExperimentRouteToMesh(p.Prefix, p.ID, nil, targetSet{}, true)
		}
	}
}

// meshPeerEndOfRIB sweeps backbone-learned state once a restarted mesh
// peer finishes replaying its dump. Mesh-peer teardown is coarse (a
// down peer stales every remote-neighbor table, mirroring the eager
// withdrawal of the non-graceful path), so the sweep covers every
// remote neighbor plus the peer's relayed experiment routes.
func (r *Router) meshPeerEndOfRIB(p *meshPeer, fam bgp.AFISAFI) {
	v6 := fam == bgp.IPv6Unicast
	for _, n := range r.remoteNeighbors() {
		r.sweepNeighborStale(n, v6)
	}
	r.sweepExperimentStale("mesh:"+p.name, v6)
	if r.meshStaleRemaining(p) == 0 {
		p.mu.Lock()
		if p.staleTimer != nil {
			p.staleTimer.Stop()
			p.staleTimer = nil
		}
		p.mu.Unlock()
	}
}

// armMeshFlush (re)arms the restart timer for a mesh peer.
func (r *Router) armMeshFlush(p *meshPeer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.staleTimer != nil {
		p.staleTimer.Stop()
	}
	p.staleTimer = time.AfterFunc(p.gr, func() {
		p.mu.Lock()
		p.staleTimer = nil
		p.mu.Unlock()
		r.logf("mesh peer %s: restart window lapsed, flushing stale state", p.name)
		for _, n := range r.remoteNeighbors() {
			r.sweepNeighborStale(n, false)
			r.sweepNeighborStale(n, true)
		}
		r.sweepExperimentStale("mesh:"+p.name, false)
		r.sweepExperimentStale("mesh:"+p.name, true)
	})
}

// meshStaleRemaining counts stale state attributable to a mesh peer's
// restart.
func (r *Router) meshStaleRemaining(p *meshPeer) int {
	total := r.expRoutes.StaleCount("mesh:" + p.name)
	for _, n := range r.remoteNeighbors() {
		total += n.Table.StaleCount(n.Name)
	}
	return total
}

// remoteNeighbors snapshots the backbone-learned neighbors.
func (r *Router) remoteNeighbors() []*Neighbor {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		if n.Remote {
			out = append(out, n)
		}
	}
	return out
}

// markRemoteNeighborsStale stales every remote-neighbor table and the
// mesh peer's relayed experiment routes, returning how many paths were
// marked.
func (r *Router) markRemoteNeighborsStale(p *meshPeer) int {
	marked := r.expRoutes.MarkPeerStale("mesh:" + p.name)
	for _, n := range r.remoteNeighbors() {
		marked += n.Table.MarkPeerStale(n.Name)
		if r.defaultTable != nil {
			r.defaultTable.MarkPeerStale(n.Name)
		}
	}
	return marked
}
