package core

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/netsim"
	"repro/internal/pipe"
	"repro/internal/policy"
)

// fig5 builds the paper's Figure 5 scenario: two vBGP routers E1 and E2
// joined by a backbone segment, E1 with neighbor N1 and E2 with neighbor
// N2, an experiment X1 attached at E1.
type fig5 struct {
	e1, e2 *Router
	bb     *netsim.Segment
	expLAN *netsim.Segment
	n2LAN  *netsim.Segment
	n1, n2 *testPeer
	n2Host *netsim.Host
	engine *policy.Engine
}

func newFig5(t *testing.T) *fig5 {
	t.Helper()
	f := &fig5{
		bb:     netsim.NewSegment("backbone"),
		expLAN: netsim.NewSegment("exp-lan"),
		n2LAN:  netsim.NewSegment("n2-lan"),
		engine: policy.NewEngine(platformASN),
	}
	f.engine.Register(&policy.Experiment{
		Name:     "X1",
		Prefixes: []netip.Prefix{pfx("10.1.0.0/24")},
		ASNs:     []uint32{expASN},
	})
	shared := NewPool(DefaultGlobalPool)

	f.e1 = NewRouter(Config{Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1"),
		GlobalPool: shared, Enforcer: f.engine,
		LocalPool: pfx("127.65.0.0/16")})
	f.e2 = NewRouter(Config{Name: "e2", ASN: platformASN, RouterID: ip("198.51.100.2"),
		GlobalPool: shared, Enforcer: f.engine,
		LocalPool: pfx("127.66.0.0/16")})

	n1LAN := netsim.NewSegment("n1-lan")
	f.e1.AddInterface("nbr0", "neighbor", pfx("192.0.2.254/24"), n1LAN)
	f.e1.AddInterface("exp0", "experiment", pfx("100.65.0.254/24"), f.expLAN)
	f.e1.AddInterface("bb0", "backbone", pfx("100.127.0.1/24"), f.bb)

	f.e2.AddInterface("nbr0", "neighbor", pfx("198.18.0.254/24"), f.n2LAN)
	f.e2.AddInterface("exp0", "experiment", pfx("100.66.0.254/24"), netsim.NewSegment("e2-exp"))
	f.e2.AddInterface("bb0", "backbone", pfx("100.127.0.2/24"), f.bb)

	// Neighbor N1 at E1.
	n1Host := netsim.NewHost("N1")
	n1Host.AddInterface("eth0", ethernet.MustParseMAC("02:00:00:00:00:11"), pfx("192.0.2.1/24"), n1LAN)
	c1r, c1n := pipe.New()
	if _, err := f.e1.AddNeighbor(NeighborConfig{
		Name: "N1", ID: 1, ASN: n1ASN, Addr: ip("192.0.2.1"), Interface: "nbr0", Conn: c1r,
	}); err != nil {
		t.Fatal(err)
	}
	f.n1 = newTestPeer(t, c1n, n1ASN, platformASN, "192.0.2.1", false)

	// Neighbor N2 at E2.
	f.n2Host = netsim.NewHost("N2")
	f.n2Host.AddInterface("eth0", ethernet.MustParseMAC("02:00:00:00:00:22"), pfx("198.18.0.1/24"), f.n2LAN)
	c2r, c2n := pipe.New()
	if _, err := f.e2.AddNeighbor(NeighborConfig{
		Name: "N2", ID: 2, ASN: n2ASN, Addr: ip("198.18.0.1"), Interface: "nbr0", Conn: c2r,
	}); err != nil {
		t.Fatal(err)
	}
	f.n2 = newTestPeer(t, c2n, n2ASN, platformASN, "198.18.0.1", false)

	f.n1.waitEstablished()
	f.n2.waitEstablished()

	// Backbone mesh session E1 <-> E2.
	m1, m2 := pipe.New()
	if err := f.e1.AddBackbonePeer("e2", ip("100.127.0.2"), m1); err != nil {
		t.Fatal(err)
	}
	if err := f.e2.AddBackbonePeer("e1", ip("100.127.0.1"), m2); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFigure5BackboneControlPlane(t *testing.T) {
	f := newFig5(t)
	// N2 announces a prefix at E2.
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "198.18.0.1")

	// E1 materializes a remote neighbor for N2 and an experiment at E1
	// sees the route with a next hop from E1's local pool.
	waitFor(t, "remote neighbor at e1", func() bool {
		for _, n := range f.e1.Neighbors() {
			if n.Remote && n.Table.PathCount() == 1 {
				return true
			}
		}
		return false
	})

	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()

	waitFor(t, "remote route at experiment", func() bool {
		for nlri, nh := range x1.routes() {
			if nlri.Prefix == pfx("192.168.0.0/24") && nlri.ID == 2 {
				return pfx("127.65.0.0/16").Contains(nh)
			}
		}
		return false
	})
}

func TestFigure5BackboneDataPlane(t *testing.T) {
	f := newFig5(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "198.18.0.1")
	var remote *Neighbor
	waitFor(t, "remote neighbor table at e1", func() bool {
		for _, n := range f.e1.Neighbors() {
			if n.Remote && n.Table.PathCount() == 1 {
				remote = n
				return true
			}
		}
		return false
	})

	// X1 on E1's experiment LAN.
	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)

	// Count frames at N2.
	var mu sync.Mutex
	var n2Frames int
	f.n2Host.Interfaces()[0].SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 {
			mu.Lock()
			n2Frames++
			mu.Unlock()
		}
	})

	// Fig. 5 walk-through: X1 ARPs E1 for the local next hop of the
	// REMOTE neighbor N2, then sends the packet at the answered MAC.
	mac, err := x1.Resolve(x1ifc, remote.LocalIP, time.Second)
	if err != nil {
		t.Fatalf("ARP for remote next hop: %v", err)
	}
	if mac != MACForGlobalIP(remote.GlobalIP) {
		t.Fatalf("ARP answered %s, want derived MAC %s", mac, MACForGlobalIP(remote.GlobalIP))
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("10.1.0.1"), Dst: ip("192.168.0.1"), Payload: []byte("across-the-backbone")}
	x1ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	waitFor(t, "frame delivered to N2 via backbone", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return n2Frames == 1
	})
	if f.e1.Forwarded.Load() == 0 || f.e2.Forwarded.Load() == 0 {
		t.Errorf("forward counters: e1=%d e2=%d", f.e1.Forwarded.Load(), f.e2.Forwarded.Load())
	}
}

func TestBackboneExperimentAnnouncementAtRemotePoP(t *testing.T) {
	// §4.4: an experiment at E1 can direct announcements to neighbors at
	// E2 using the same community mechanism.
	f := newFig5(t)
	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()

	// Announce to neighbor 2 (N2, at E2) only.
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1", AnnounceTo(platformASN, 2))

	waitFor(t, "announcement at N2 via backbone", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	time.Sleep(50 * time.Millisecond)
	if _, leaked := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]; leaked {
		t.Fatal("announcement leaked to N1 at the local PoP")
	}
	// Exported path: platform ASN prepended exactly once despite the
	// mesh hop.
	u := f.n2.lastUpdate()
	flat := u.Attrs.ASPathFlat()
	if len(flat) != 2 || flat[0] != platformASN || flat[1] != expASN {
		t.Errorf("AS path via backbone %v, want [%d %d]", flat, platformASN, expASN)
	}
}

func TestBackboneInboundTrafficReachesExperiment(t *testing.T) {
	f := newFig5(t)
	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1sess := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1sess.waitEstablished()

	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)
	var mu sync.Mutex
	var rx int
	var rxSrc ethernet.MAC
	x1ifc.SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 {
			mu.Lock()
			rx++
			rxSrc = fr.Src
			mu.Unlock()
		}
	})

	x1sess.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement at N2", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})

	// N2 sends a packet toward the experiment prefix: N2 -> E2 ->
	// backbone -> E1 -> X1.
	rtrMAC, err := f.n2Host.Resolve(f.n2Host.Interfaces()[0], ip("198.18.0.254"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("192.168.0.9"), Dst: ip("10.1.0.7"), Payload: []byte("inbound-via-bb")}
	f.n2Host.Interfaces()[0].Send(&ethernet.Frame{Dst: rtrMAC, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	waitFor(t, "inbound frame at X1", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return rx == 1
	})
	// Attribution survives the backbone: the source MAC is the derived
	// per-neighbor MAC of N2, identical at both PoPs.
	n2AtE2 := f.e2.Neighbor("N2")
	mu.Lock()
	defer mu.Unlock()
	if rxSrc != n2AtE2.LocalMAC {
		t.Errorf("source MAC %s, want N2's derived MAC %s", rxSrc, n2AtE2.LocalMAC)
	}
}

func TestMaintainDefaultTable(t *testing.T) {
	// The Fig. 6a ablation: a router additionally keeping its own
	// best-path table (needed only when it serves production traffic).
	engine := policy.NewEngine(platformASN)
	r := NewRouter(Config{Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1"),
		Enforcer: engine, MaintainDefaultTable: true})
	nbrLAN := netsim.NewSegment("nbr")
	r.AddInterface("nbr0", "neighbor", pfx("192.0.2.254/24"), nbrLAN)

	add := func(name string, id uint32, asn uint32, addr string) *testPeer {
		cr, cn := pipe.New()
		if _, err := r.AddNeighbor(NeighborConfig{Name: name, ID: id, ASN: asn,
			Addr: ip(addr), Interface: "nbr0", Conn: cr}); err != nil {
			t.Fatal(err)
		}
		p := newTestPeer(t, cn, asn, platformASN, addr, false)
		p.waitEstablished()
		return p
	}
	p1 := add("N1", 1, n1ASN, "192.0.2.1")
	p2 := add("N2", 2, n2ASN, "192.0.2.2")

	p1.announce("192.168.0.0/24", []uint32{n1ASN, 64999}, "192.0.2.1") // longer path
	p2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")        // shorter path
	waitFor(t, "default table has both", func() bool {
		return r.DefaultTable() != nil && r.DefaultTable().PathCount() == 2
	})
	best := r.DefaultTable().Best(pfx("192.168.0.0/24"))
	if best.Peer != "N2" {
		t.Errorf("default-table best via %s, want N2 (shorter path)", best.Peer)
	}
	// Withdrawal updates the default table too.
	p2.withdraw("192.168.0.0/24")
	waitFor(t, "default table best shifts", func() bool {
		b := r.DefaultTable().Best(pfx("192.168.0.0/24"))
		return b != nil && b.Peer == "N1"
	})
}

func TestMeshPeerDownWithdrawsRemoteRoutes(t *testing.T) {
	f := newFig5(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "198.18.0.1")
	waitFor(t, "remote route at e1", func() bool {
		for _, n := range f.e1.Neighbors() {
			if n.Remote && n.Table.PathCount() == 1 {
				return true
			}
		}
		return false
	})
	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()
	waitFor(t, "remote route at experiment", func() bool { return len(x1.routes()) == 1 })

	// The backbone session dies: remote-neighbor routes must be
	// withdrawn from experiments.
	f.e1.meshPeers["e2"].session.Close()
	waitFor(t, "remote route withdrawn", func() bool { return len(x1.routes()) == 0 })
}

func TestBackboneWithdrawPropagates(t *testing.T) {
	f := newFig5(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "198.18.0.1")
	waitFor(t, "remote route at e1", func() bool {
		for _, n := range f.e1.Neighbors() {
			if n.Remote && n.Table.PathCount() == 1 {
				return true
			}
		}
		return false
	})
	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()
	waitFor(t, "route at experiment", func() bool { return len(x1.routes()) == 1 })

	// N2 withdraws at e2: the withdrawal crosses the mesh and reaches
	// the experiment at e1.
	f.n2.withdraw("192.168.0.0/24")
	waitFor(t, "withdraw crosses the backbone", func() bool { return len(x1.routes()) == 0 })
	for _, n := range f.e1.Neighbors() {
		if n.Remote && n.Table.PathCount() != 0 {
			t.Fatal("remote table retains withdrawn route")
		}
	}
}

func TestBackboneIPv6RouteCrossesMesh(t *testing.T) {
	f := newFig5(t)
	f.n2.announceV6("2001:db8:2000::/36", []uint32{n2ASN}, "2001:db8::2")
	cr, ce := pipe.New()
	if _, err := f.e1.ConnectExperiment("X1", expASN, cr); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()
	waitFor(t, "v6 route at remote experiment", func() bool {
		for nlri := range x1.v6routes() {
			if nlri.Prefix == pfx("2001:db8:2000::/36") {
				return true
			}
		}
		return false
	})
	// Withdrawal crosses too.
	wd := &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{{Prefix: pfx("2001:db8:2000::/36")}}}
	if err := f.n2.sess.Send(wd); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v6 withdraw crosses the backbone", func() bool {
		for nlri := range x1.v6routes() {
			if nlri.Prefix == pfx("2001:db8:2000::/36") {
				return false
			}
		}
		return true
	})
}

func TestLateNeighborReceivesExistingAnnouncements(t *testing.T) {
	// replayExperimentRoutes: an experiment announces BEFORE a neighbor
	// session comes up; the neighbor receives the announcement once
	// established.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})

	// A third neighbor joins late.
	cr, cn := pipe.New()
	if _, err := f.router.AddNeighbor(NeighborConfig{
		Name: "N3", ID: 3, ASN: 65003, Addr: ip("192.0.2.3"), Interface: "nbr0", Conn: cr,
	}); err != nil {
		t.Fatal(err)
	}
	n3 := newTestPeer(t, cn, 65003, platformASN, "192.0.2.3", false)
	n3.waitEstablished()
	waitFor(t, "replay to the late neighbor", func() bool {
		_, ok := n3.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
}

func TestTTLExpiryAtRouterNotifiesSender(t *testing.T) {
	// sendTimeExceeded: a packet from the experiment LAN with TTL 1
	// expires at the router, which answers from its primary address.
	f := newFig1(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "route", func() bool { return f.nbr2.Table.PathCount() == 1 })

	// The sender must be resolvable for the error to route back: the
	// router delivers to registered tunnel IPs.
	f.router.SetExperimentTunnelIP("X1", ip("100.65.0.1"))
	host := netsim.NewHost("X1")
	ifc := host.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)
	var exceeded atomic.Uint64
	host.Handle(ethernet.ProtoICMP, func(_ *netsim.Host, _ *netsim.Interface, ipkt *ethernet.IPv4) {
		var m ethernet.ICMP
		if m.DecodeFromBytes(ipkt.Payload) == nil && m.Type == ethernet.ICMPTimeExceed {
			exceeded.Add(1)
		}
	})

	mac, err := host.Resolve(ifc, f.nbr2.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethernet.IPv4{TTL: 1, Protocol: ethernet.ProtoUDP,
		Src: ip("100.65.0.1"), Dst: ip("192.168.0.1")}
	ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	waitFor(t, "time exceeded back at sender", func() bool { return exceeded.Load() == 1 })
	if f.router.TTLExpired.Load() != 1 {
		t.Errorf("TTLExpired = %d", f.router.TTLExpired.Load())
	}
}
