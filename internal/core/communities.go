package core

import "repro/internal/bgp"

// Announcement-control communities (paper §3.2.1): vBGP defines
// whitelist/blacklist communities for every neighbor. An experiment tags
// an announcement with PlatformASN:<id> to export it only to the
// neighbor with that platform ID, or PlatformASN:<NoExportBase+id> to
// exclude that neighbor. Untagged announcements go to all neighbors.
// Control communities are consumed by vBGP and stripped before export to
// the Internet.
//
// The scheme requires the platform ASN to fit in 16 bits (true of
// Peering's primary ASN, 47065); platforms with 4-byte ASNs would use
// large communities instead.
const (
	// NoExportBase offsets blacklist community values.
	NoExportBase = 10000
	// maxNeighborID bounds neighbor IDs so whitelist and blacklist
	// value ranges cannot collide.
	maxNeighborID = NoExportBase - 1
	// internalOnlyID is a reserved pseudo-neighbor: a route whitelisted
	// to it is never exported to any real neighbor. Used for
	// platform-internal routes such as experiment-LAN prefixes relayed
	// over the backbone. Real neighbor IDs must stay below it.
	internalOnlyID = maxNeighborID
)

// AnnounceTo builds the whitelist community for a neighbor ID.
func AnnounceTo(platformASN uint32, neighborID uint32) bgp.Community {
	return bgp.NewCommunity(uint16(platformASN), uint16(neighborID))
}

// NoExportTo builds the blacklist community for a neighbor ID.
func NoExportTo(platformASN uint32, neighborID uint32) bgp.Community {
	return bgp.NewCommunity(uint16(platformASN), uint16(NoExportBase+neighborID))
}

// Large-community function values (RFC 8092): the platform's large
// communities are <PlatformASN>:<function>:<neighborID>, usable by
// platforms whose ASN does not fit the 16-bit regular-community field.
const (
	largeFnAnnounceTo = 1
	largeFnNoExportTo = 2
	// largeFnValidationState stamps routes exported to experiments with
	// their RPKI origin-validation state (RFC 8097 in spirit):
	// <PlatformASN>:3:<state>, state per rpki.State (0 NotFound, 1
	// Valid, 2 Invalid). Informational — experiments choose routes
	// themselves, and many deliberately study Invalid ones.
	largeFnValidationState = 3
)

// LargeAnnounceTo builds the large-community whitelist for a neighbor.
func LargeAnnounceTo(platformASN, neighborID uint32) bgp.LargeCommunity {
	return bgp.LargeCommunity{Global: platformASN, Local1: largeFnAnnounceTo, Local2: neighborID}
}

// LargeNoExportTo builds the large-community blacklist for a neighbor.
func LargeNoExportTo(platformASN, neighborID uint32) bgp.LargeCommunity {
	return bgp.LargeCommunity{Global: platformASN, Local1: largeFnNoExportTo, Local2: neighborID}
}

// targetSet is the parsed export policy of one announcement.
type targetSet struct {
	// allow, when non-empty, whitelists neighbor IDs.
	allow map[uint32]bool
	// deny blacklists neighbor IDs.
	deny map[uint32]bool
}

// parseTargets extracts the control communities addressed to platformASN
// from comms and returns the export policy along with the remaining
// (non-control) communities.
func parseTargets(platformASN uint32, comms []bgp.Community) (targetSet, []bgp.Community) {
	ts := targetSet{allow: map[uint32]bool{}, deny: map[uint32]bool{}}
	var rest []bgp.Community
	for _, c := range comms {
		if uint32(c.ASN()) != platformASN {
			rest = append(rest, c)
			continue
		}
		v := uint32(c.Value())
		switch {
		case v >= NoExportBase && v <= NoExportBase+maxNeighborID:
			ts.deny[v-NoExportBase] = true
		case v > 0:
			ts.allow[v] = true
		default:
			rest = append(rest, c)
		}
	}
	return ts, rest
}

// parseLargeTargets folds large-community controls (RFC 8092) into an
// existing target set, returning the remaining non-control large
// communities.
func parseLargeTargets(platformASN uint32, ts targetSet, large []bgp.LargeCommunity) (targetSet, []bgp.LargeCommunity) {
	var rest []bgp.LargeCommunity
	for _, c := range large {
		if c.Global != platformASN {
			rest = append(rest, c)
			continue
		}
		switch c.Local1 {
		case largeFnAnnounceTo:
			ts.allow[c.Local2] = true
		case largeFnNoExportTo:
			ts.deny[c.Local2] = true
		default:
			rest = append(rest, c)
		}
	}
	return ts, rest
}

// controlCommunities re-encodes the target set as communities, used when
// relaying an experiment announcement across the backbone so the remote
// PoP can apply the same export policy.
func (ts targetSet) controlCommunities(platformASN uint32) []bgp.Community {
	var out []bgp.Community
	for id := range ts.allow {
		out = append(out, AnnounceTo(platformASN, id))
	}
	for id := range ts.deny {
		out = append(out, NoExportTo(platformASN, id))
	}
	return out
}

// includes reports whether the neighbor with the given ID is an export
// target.
func (ts targetSet) includes(id uint32) bool {
	if ts.deny[id] {
		return false
	}
	if len(ts.allow) > 0 {
		return ts.allow[id]
	}
	return true
}
