package core

import (
	"net/netip"

	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/netsim"
	"repro/internal/rib"
)

// handleFrame is the router's data plane (paper §3.2.2, Fig. 2b). The
// destination MAC of each frame selects the forwarding behavior:
//
//   - a per-neighbor MAC (assigned by this router or, thanks to the
//     derived-MAC scheme, by any router on the backbone) selects that
//     neighbor's routing table: the experiment chose this route;
//   - the interface's own MAC means inbound traffic for an experiment
//     prefix, forwarded toward the announcing experiment with the source
//     MAC rewritten to identify the delivering neighbor.
func (r *Router) handleFrame(ifc *netsim.Interface, frame *ethernet.Frame) {
	if frame.Type != ethernet.TypeIPv4 {
		return
	}
	var ip ethernet.IPv4
	if ip.DecodeFromBytes(frame.Payload) != nil {
		return
	}

	r.mu.Lock()
	n := r.byLocalMAC[frame.Dst]
	r.mu.Unlock()

	if n != nil {
		r.metrics.tableSelections.Inc()
		r.forwardViaNeighbor(ifc, frame, &ip, n)
		return
	}
	if frame.Dst == ifc.MAC() {
		r.forwardInbound(ifc, frame, &ip)
	}
}

// forwardViaNeighbor enacts the experiment's per-packet route selection:
// look up the destination in the chosen neighbor's table and forward via
// that neighbor (locally, or across the backbone for a remote neighbor).
func (r *Router) forwardViaNeighbor(in *netsim.Interface, frame *ethernet.Frame, ip *ethernet.IPv4, n *Neighbor) {
	path := n.Table.Lookup(ip.Dst)
	if path == nil {
		r.DroppedNoRoute.Add(1)
		return
	}
	if ip.TTL <= 1 {
		r.TTLExpired.Add(1)
		r.sendTimeExceeded(in, ip)
		return
	}
	fwd := *ip
	fwd.TTL--
	fwd.Payload = append([]byte(nil), ip.Payload...)

	if n.Remote {
		// Fig. 5: resolve the remote external neighbor's GlobalIP on the
		// backbone; the owning router answers with the derived MAC and
		// repeats the lookup in its own per-neighbor table.
		r.mu.Lock()
		bb := r.bbIfc
		r.mu.Unlock()
		if bb == nil {
			r.DroppedNoRoute.Add(1)
			return
		}
		nh := path.NextHop()
		dstMAC, err := bb.Resolve(bb.PrimaryAddr(), nh, arpTimeout)
		if err != nil {
			r.DroppedNoMAC.Add(1)
			return
		}
		r.Forwarded.Add(1)
		r.metrics.backboneForwards.Inc()
		bb.Send(&ethernet.Frame{
			Dst: dstMAC, Src: frame.Src, Type: ethernet.TypeIPv4, Payload: fwd.Marshal(),
		})
		return
	}

	// Direct neighbors forward to the neighbor itself; route-server
	// tables preserve each member's next hop, so the lookup decides.
	nh := path.NextHop()
	if !nh.IsValid() {
		nh = n.Addr
	}
	dstMAC := n.realMAC
	if dstMAC.IsZero() || nh != n.Addr {
		var err error
		dstMAC, err = n.ifc.Resolve(n.ifc.PrimaryAddr(), nh, arpTimeout)
		if err != nil {
			r.DroppedNoMAC.Add(1)
			return
		}
		if nh == n.Addr {
			r.mu.Lock()
			n.realMAC = dstMAC
			r.byRealMAC[dstMAC] = n
			r.mu.Unlock()
		}
	}
	r.Forwarded.Add(1)
	n.ifc.Send(&ethernet.Frame{
		Dst: dstMAC, Src: n.ifc.MAC(), Type: ethernet.TypeIPv4, Payload: fwd.Marshal(),
	})
}

// forwardInbound delivers traffic destined to experiment prefixes:
// locally connected experiments get the frame on the experiment LAN with
// the source MAC rewritten to the delivering neighbor's assigned MAC;
// prefixes announced at other PoPs are forwarded across the backbone.
func (r *Router) forwardInbound(in *netsim.Interface, frame *ethernet.Frame, ip *ethernet.IPv4) {
	path := r.expRoutes.Lookup(ip.Dst)
	if path == nil {
		// Traffic for an experiment's tunnel address (hosted services,
		// probe replies) is delivered even without an announcement —
		// including addresses registered ahead of the BGP session.
		r.mu.Lock()
		var owner string
		for name, e := range r.experiments {
			if e.tunnelIP == ip.Dst {
				owner = name
				break
			}
		}
		if owner == "" {
			for name, addr := range r.tunnelIPs {
				if addr == ip.Dst {
					owner = name
					break
				}
			}
		}
		r.mu.Unlock()
		if owner == "" {
			r.DroppedNoRoute.Add(1)
			return
		}
		path = &rib.Path{Peer: owner, Attrs: &bgp.PathAttrs{NextHop: ip.Dst}}
	}
	if ip.TTL <= 1 {
		r.TTLExpired.Add(1)
		r.sendTimeExceeded(in, ip)
		return
	}
	fwd := *ip
	fwd.TTL--
	fwd.Payload = append([]byte(nil), ip.Payload...)

	srcMAC := r.attributionMAC(frame.Src)

	if isMeshOwner(path.Peer) {
		r.mu.Lock()
		bb := r.bbIfc
		r.mu.Unlock()
		if bb == nil {
			r.DroppedNoRoute.Add(1)
			return
		}
		dstMAC, err := bb.Resolve(bb.PrimaryAddr(), path.NextHop(), arpTimeout)
		if err != nil {
			r.DroppedNoMAC.Add(1)
			return
		}
		r.Forwarded.Add(1)
		r.metrics.backboneForwards.Inc()
		bb.Send(&ethernet.Frame{Dst: dstMAC, Src: srcMAC, Type: ethernet.TypeIPv4, Payload: fwd.Marshal()})
		return
	}

	r.mu.Lock()
	expIfc := r.expIfc
	var tunnelIP netip.Addr
	if e := r.experiments[path.Peer]; e != nil {
		tunnelIP = e.tunnelIP
	} else {
		tunnelIP = r.tunnelIPs[path.Peer]
	}
	r.mu.Unlock()
	if expIfc == nil {
		r.DroppedNoRoute.Add(1)
		return
	}
	if !tunnelIP.IsValid() {
		tunnelIP = path.NextHop() // fall back to the announced next hop
	}
	if !tunnelIP.IsValid() {
		r.DroppedNoMAC.Add(1)
		return
	}
	dstMAC, err := expIfc.Resolve(expIfc.PrimaryAddr(), tunnelIP, arpTimeout)
	if err != nil {
		r.DroppedNoMAC.Add(1)
		return
	}
	if srcMAC.IsZero() {
		srcMAC = expIfc.MAC()
	}
	r.Forwarded.Add(1)
	expIfc.Send(&ethernet.Frame{Dst: dstMAC, Src: srcMAC, Type: ethernet.TypeIPv4, Payload: fwd.Marshal()})
}

// sendTimeExceeded emits an ICMP time-exceeded for an expired packet,
// sourced from the ingress interface's PRIMARY address — the kernel
// behavior Peering's network controller preserves so traceroutes show
// the intended hop identity (§5).
func (r *Router) sendTimeExceeded(in *netsim.Interface, ip *ethernet.IPv4) {
	src := in.PrimaryAddr()
	if !src.IsValid() || !ip.Src.IsValid() {
		return
	}
	orig := ip.Marshal()
	if len(orig) > ethernet.IPv4HeaderLen+8 {
		orig = orig[:ethernet.IPv4HeaderLen+8]
	}
	exceeded := ethernet.ICMP{Type: ethernet.ICMPTimeExceed, Data: orig}
	reply := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoICMP,
		Src: src, Dst: ip.Src, Payload: exceeded.Marshal()}
	// Route the error back the way inbound experiment traffic goes.
	var fr ethernet.Frame
	fr.Type = ethernet.TypeIPv4
	fr.Payload = reply.Marshal()
	fr.Dst = in.MAC() // loop through the inbound path locally
	r.forwardInbound(in, &fr, &reply)
}

// attributionMAC maps the frame's source to the per-neighbor MAC
// experiments use to identify the delivering neighbor. A frame from a
// local neighbor matches its real MAC; a frame relayed over the backbone
// already carries a derived per-neighbor MAC, which is preserved.
func (r *Router) attributionMAC(src ethernet.MAC) ethernet.MAC {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.byRealMAC[src]; ok {
		r.metrics.macRewrites.Inc()
		return n.LocalMAC
	}
	if _, ok := r.byLocalMAC[src]; ok {
		return src // already attributed by another PoP
	}
	if src[0] == 0x02 && src[1] == 0x7f {
		return src // derived per-neighbor MAC from a PoP we haven't met
	}
	return ethernet.MAC{}
}

// LookupVia returns the route neighbor n would use for dst — the lookup
// the data plane performs per packet — for tests and diagnostics.
func (r *Router) LookupVia(neighborName string, dst netip.Addr) *rib.Path {
	n := r.Neighbor(neighborName)
	if n == nil {
		return nil
	}
	return n.Table.Lookup(dst)
}
