package core

import (
	"testing"
	"time"

	"repro/internal/bgp"
)

func TestParseTargetsWhitelistBlacklist(t *testing.T) {
	comms := []bgp.Community{
		AnnounceTo(platformASN, 3),
		NoExportTo(platformASN, 5),
		bgp.NewCommunity(3356, 70), // foreign: preserved
	}
	ts, rest := parseTargets(platformASN, comms)
	if !ts.allow[3] || !ts.deny[5] {
		t.Errorf("targets %+v", ts)
	}
	if len(rest) != 1 || rest[0] != bgp.NewCommunity(3356, 70) {
		t.Errorf("rest %v", rest)
	}
	if ts.includes(5) {
		t.Error("denied neighbor included")
	}
	if !ts.includes(3) {
		t.Error("whitelisted neighbor excluded")
	}
	if ts.includes(4) {
		t.Error("non-whitelisted neighbor included despite whitelist")
	}
}

func TestParseTargetsEmptyMeansAll(t *testing.T) {
	ts, _ := parseTargets(platformASN, nil)
	if !ts.includes(1) || !ts.includes(9998) {
		t.Error("empty targets should include every neighbor")
	}
	// Blacklist-only: everything but the denied.
	ts2, _ := parseTargets(platformASN, []bgp.Community{NoExportTo(platformASN, 7)})
	if ts2.includes(7) || !ts2.includes(8) {
		t.Error("blacklist semantics")
	}
}

func TestParseTargetsRoundTrip(t *testing.T) {
	ts, _ := parseTargets(platformASN, []bgp.Community{
		AnnounceTo(platformASN, 1), AnnounceTo(platformASN, 2), NoExportTo(platformASN, 3),
	})
	re := ts.controlCommunities(platformASN)
	ts2, rest := parseTargets(platformASN, re)
	if len(rest) != 0 {
		t.Errorf("re-encoded controls left a remainder: %v", rest)
	}
	for id := uint32(1); id <= 4; id++ {
		if ts.includes(id) != ts2.includes(id) {
			t.Errorf("neighbor %d differs after round trip", id)
		}
	}
}

func TestParseLargeTargets(t *testing.T) {
	ts, _ := parseTargets(platformASN, nil)
	large := []bgp.LargeCommunity{
		LargeAnnounceTo(platformASN, 12),
		LargeNoExportTo(platformASN, 13),
		{Global: 4200000000, Local1: 1, Local2: 1},   // foreign: preserved
		{Global: platformASN, Local1: 99, Local2: 1}, // unknown fn: preserved
	}
	ts, rest := parseLargeTargets(platformASN, ts, large)
	if !ts.allow[12] || !ts.deny[13] {
		t.Errorf("large targets %+v", ts)
	}
	if len(rest) != 2 {
		t.Errorf("rest %v", rest)
	}
}

func TestLargeCommunitySteering(t *testing.T) {
	// End to end: steer with large communities instead of regular ones.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:           []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{expASN}}},
		NextHop:          ip("100.65.0.1"),
		LargeCommunities: []bgp.LargeCommunity{LargeAnnounceTo(platformASN, 2)},
	}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx("10.1.0.0/24")}}}
	if err := x1.sess.Send(u); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement at N2", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	time.Sleep(50 * time.Millisecond)
	if _, leaked := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]; leaked {
		t.Fatal("large-community whitelist leaked to N1")
	}
	// The control large community must be stripped on export.
	lu := f.n2.lastUpdate()
	for _, lc := range lu.Attrs.LargeCommunities {
		if lc.Global == platformASN {
			t.Errorf("control large community %v leaked", lc)
		}
	}
}
