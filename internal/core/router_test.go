package core

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/netsim"
	"repro/internal/pipe"
	"repro/internal/policy"
	"repro/internal/rib"
)

const (
	platformASN = 47065
	n1ASN       = 65001
	n2ASN       = 65002
	expASN      = 61574
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testPeer is a scripted BGP speaker playing a neighbor or experiment.
type testPeer struct {
	t    *testing.T
	sess *bgp.Session

	mu      sync.Mutex
	updates []*bgp.Update
	estCh   chan struct{}
}

func newTestPeer(t *testing.T, conn *pipe.Conn, localASN, remoteASN uint32, id string, addPath bool) *testPeer {
	p := &testPeer{t: t, estCh: make(chan struct{})}
	cfg := bgp.Config{
		LocalASN: localASN, RemoteASN: remoteASN, LocalID: ip(id),
		Families: []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		OnUpdate: func(u *bgp.Update) {
			p.mu.Lock()
			p.updates = append(p.updates, u)
			p.mu.Unlock()
		},
		OnEstablished: func() { close(p.estCh) },
	}
	if addPath {
		cfg.AddPath = map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSendReceive,
			bgp.IPv6Unicast: bgp.AddPathSendReceive,
		}
	}
	p.sess = bgp.NewSession(conn, cfg)
	go p.sess.Run()
	return p
}

func (p *testPeer) waitEstablished() {
	p.t.Helper()
	select {
	case <-p.estCh:
	case <-time.After(5 * time.Second):
		p.t.Fatal("test peer did not establish")
	}
}

// routes returns all (prefix, pathID, nexthop) tuples received so far.
func (p *testPeer) routes() map[bgp.NLRI]netip.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[bgp.NLRI]netip.Addr)
	for _, u := range p.updates {
		for _, w := range u.Withdrawn {
			delete(out, w)
		}
		for _, n := range u.NLRI {
			out[n] = u.Attrs.NextHop
		}
	}
	return out
}

func (p *testPeer) lastUpdate() *bgp.Update {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.updates) == 0 {
		return nil
	}
	return p.updates[len(p.updates)-1]
}

func (p *testPeer) updateCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.updates)
}

// announce sends an UPDATE from the peer.
func (p *testPeer) announce(prefix string, asns []uint32, nexthop string, comms ...bgp.Community) {
	p.announceV(prefix, 0, asns, nexthop, comms...)
}

// announceV is announce with an explicit ADD-PATH version ID.
func (p *testPeer) announceV(prefix string, id bgp.PathID, asns []uint32, nexthop string, comms ...bgp.Community) {
	p.t.Helper()
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop:     ip(nexthop),
		Communities: comms,
	}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx(prefix), ID: id}}}
	if err := p.sess.Send(u); err != nil {
		p.t.Fatalf("announce: %v", err)
	}
}

func (p *testPeer) withdraw(prefix string) {
	p.t.Helper()
	u := &bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: pfx(prefix)}}}
	if err := p.sess.Send(u); err != nil {
		p.t.Fatalf("withdraw: %v", err)
	}
}

// fig1 builds the paper's Figure 1 scenario: router E1 with neighbors N1
// and N2 on a shared LAN and an experiment LAN.
type fig1 struct {
	router *Router
	nbrLAN *netsim.Segment
	expLAN *netsim.Segment
	n1, n2 *testPeer
	nbr1   *Neighbor
	nbr2   *Neighbor
	n1Host *netsim.Host
	n2Host *netsim.Host
	engine *policy.Engine
}

func newFig1(t *testing.T) *fig1 { return newFig1With(t, nil) }

// newFig1With is newFig1 with a router Config hook (damping, MRAI, ...).
func newFig1With(t *testing.T, mod func(*Config)) *fig1 {
	t.Helper()
	f := &fig1{
		nbrLAN: netsim.NewSegment("nbr-lan"),
		expLAN: netsim.NewSegment("exp-lan"),
		engine: policy.NewEngine(platformASN),
	}
	f.engine.Register(&policy.Experiment{
		Name:     "X1",
		Prefixes: []netip.Prefix{pfx("10.1.0.0/24")},
		ASNs:     []uint32{expASN},
	})
	f.engine.Register(&policy.Experiment{
		Name:     "X2",
		Prefixes: []netip.Prefix{pfx("10.2.0.0/24")},
		ASNs:     []uint32{expASN + 1},
	})
	rcfg := Config{
		Name: "e1", ASN: platformASN, RouterID: ip("198.51.100.1"),
		Enforcer: f.engine,
	}
	if mod != nil {
		mod(&rcfg)
	}
	f.router = NewRouter(rcfg)
	f.router.AddInterface("nbr0", "neighbor", pfx("192.0.2.254/24"), f.nbrLAN)
	f.router.AddInterface("exp0", "experiment", pfx("100.65.0.254/24"), f.expLAN)

	// Neighbor hosts answer ARP for their addresses and count frames.
	f.n1Host = netsim.NewHost("N1")
	f.n1Host.AddInterface("eth0", ethernet.MustParseMAC("02:00:00:00:00:11"), pfx("192.0.2.1/24"), f.nbrLAN)
	f.n2Host = netsim.NewHost("N2")
	f.n2Host.AddInterface("eth0", ethernet.MustParseMAC("02:00:00:00:00:22"), pfx("192.0.2.2/24"), f.nbrLAN)

	c1r, c1n := pipe.New()
	var err error
	f.nbr1, err = f.router.AddNeighbor(NeighborConfig{
		Name: "N1", ID: 1, ASN: n1ASN, Addr: ip("192.0.2.1"), Interface: "nbr0", Conn: c1r,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.n1 = newTestPeer(t, c1n, n1ASN, platformASN, "192.0.2.1", false)

	c2r, c2n := pipe.New()
	f.nbr2, err = f.router.AddNeighbor(NeighborConfig{
		Name: "N2", ID: 2, ASN: n2ASN, Addr: ip("192.0.2.2"), Interface: "nbr0", Conn: c2r,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.n2 = newTestPeer(t, c2n, n2ASN, platformASN, "192.0.2.2", false)

	f.n1.waitEstablished()
	f.n2.waitEstablished()
	return f
}

// connectExperiment attaches an experiment BGP session.
func (f *fig1) connectExperiment(t *testing.T, name string, addPath bool) *testPeer {
	t.Helper()
	cr, ce := pipe.New()
	if _, err := f.router.ConnectExperiment(name, expASN, cr); err != nil {
		t.Fatal(err)
	}
	x := newTestPeer(t, ce, expASN, platformASN, "100.65.0.1", addPath)
	x.waitEstablished()
	return x
}

func TestFigure2ControlPlane(t *testing.T) {
	f := newFig1(t)
	// N1 and N2 both announce 192.168.0.0/24 (Fig. 1).
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "routes in neighbor tables", func() bool {
		return f.nbr1.Table.PathCount() == 1 && f.nbr2.Table.PathCount() == 1
	})

	x1 := f.connectExperiment(t, "X1", true)
	// Fig. 2a: the experiment sees BOTH routes, with next hops rewritten
	// into the local pool and path IDs identifying the neighbors.
	waitFor(t, "both paths at experiment", func() bool {
		return len(x1.routes()) == 2
	})
	routes := x1.routes()
	nh1, ok1 := routes[bgp.NLRI{Prefix: pfx("192.168.0.0/24"), ID: 1}]
	nh2, ok2 := routes[bgp.NLRI{Prefix: pfx("192.168.0.0/24"), ID: 2}]
	if !ok1 || !ok2 {
		t.Fatalf("missing per-neighbor paths: %v", routes)
	}
	if nh1 != f.nbr1.LocalIP || nh2 != f.nbr2.LocalIP {
		t.Errorf("next hops %s/%s, want %s/%s", nh1, nh2, f.nbr1.LocalIP, f.nbr2.LocalIP)
	}
	if !DefaultLocalPool.Contains(nh1) || !DefaultLocalPool.Contains(nh2) {
		t.Errorf("next hops not from the local pool: %s %s", nh1, nh2)
	}

	// Late-arriving routes are exported incrementally.
	f.n1.announce("203.0.113.0/24", []uint32{n1ASN, 64999}, "192.0.2.1")
	waitFor(t, "incremental export", func() bool {
		_, ok := x1.routes()[bgp.NLRI{Prefix: pfx("203.0.113.0/24"), ID: 1}]
		return ok
	})

	// Withdrawals propagate with the right path ID.
	f.n1.withdraw("192.168.0.0/24")
	waitFor(t, "withdraw export", func() bool {
		_, ok := x1.routes()[bgp.NLRI{Prefix: pfx("192.168.0.0/24"), ID: 1}]
		return !ok
	})
	if _, ok := x1.routes()[bgp.NLRI{Prefix: pfx("192.168.0.0/24"), ID: 2}]; !ok {
		t.Error("N2's path must survive N1's withdrawal")
	}
}

func TestAblationNoAddPath(t *testing.T) {
	// Without ADD-PATH the experiment cannot see both neighbors' routes
	// for one prefix — the visibility limitation of §2.2.2.
	f := newFig1(t)
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "routes in tables", func() bool {
		return f.nbr1.Table.PathCount() == 1 && f.nbr2.Table.PathCount() == 1
	})
	x1 := f.connectExperiment(t, "X1", false) // no ADD-PATH capability
	waitFor(t, "at least one route", func() bool { return len(x1.routes()) >= 1 })
	time.Sleep(50 * time.Millisecond)
	if got := len(x1.routes()); got != 1 {
		t.Errorf("without ADD-PATH the experiment sees %d routes, want exactly 1", got)
	}
}

func TestFigure2DataPlane(t *testing.T) {
	f := newFig1(t)
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "routes", func() bool {
		return f.nbr1.Table.PathCount() == 1 && f.nbr2.Table.PathCount() == 1
	})

	// X1 is a plain host on the experiment LAN preferring N2's route.
	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)

	// Count IPv4 frames arriving at each neighbor.
	var mu sync.Mutex
	got := map[string]int{}
	count := func(name string, h *netsim.Host) {
		h.Interfaces()[0].SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
			if fr.Type == ethernet.TypeIPv4 {
				mu.Lock()
				got[name]++
				mu.Unlock()
			}
		})
	}
	count("N1", f.n1Host)
	count("N2", f.n2Host)

	// Fig. 2b steps 5-8: ARP for N2's local next hop, then address the
	// frame to the MAC in the reply.
	nh2 := f.nbr2.LocalIP
	mac, err := x1.Resolve(x1ifc, nh2, time.Second)
	if err != nil {
		t.Fatalf("ARP for %s: %v", nh2, err)
	}
	if mac != f.nbr2.LocalMAC {
		t.Fatalf("ARP answered %s, want N2's assigned MAC %s", mac, f.nbr2.LocalMAC)
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("10.1.0.1"), Dst: ip("192.168.0.1"), Payload: []byte("via-n2")}
	x1ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	waitFor(t, "frame at N2", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got["N2"] == 1
	})
	mu.Lock()
	if got["N1"] != 0 {
		t.Errorf("frame leaked to N1 (%d)", got["N1"])
	}
	mu.Unlock()

	// Same destination via N1's MAC goes to N1: per-packet control.
	mac1, err := x1.Resolve(x1ifc, f.nbr1.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	x1ifc.Send(&ethernet.Frame{Dst: mac1, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	waitFor(t, "frame at N1", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got["N1"] == 1
	})
	if f.router.Forwarded.Load() != 2 {
		t.Errorf("forwarded = %d", f.router.Forwarded.Load())
	}
}

func TestDataPlaneNoRouteDrops(t *testing.T) {
	f := newFig1(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "route", func() bool { return f.nbr2.Table.PathCount() == 1 })

	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)
	// N1 announced nothing: steering a packet at N1's MAC must drop.
	mac1, err := x1.Resolve(x1ifc, f.nbr1.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethernet.IPv4{TTL: 64, Src: ip("10.1.0.1"), Dst: ip("192.168.0.1")}
	x1ifc.Send(&ethernet.Frame{Dst: mac1, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	waitFor(t, "drop counted", func() bool { return f.router.DroppedNoRoute.Load() == 1 })
}

func TestInboundTrafficSourceMACAttribution(t *testing.T) {
	f := newFig1(t)
	x1sess := f.connectExperiment(t, "X1", true)
	_ = x1sess

	// Experiment host on the LAN and its announcement with the tunnel IP
	// as next hop.
	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)

	var mu sync.Mutex
	var rxSrcMAC ethernet.MAC
	var rxCount int
	x1ifc.SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 {
			mu.Lock()
			rxSrcMAC = fr.Src
			rxCount++
			mu.Unlock()
		}
	})

	x1sess.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "experiment route installed", func() bool {
		return f.router.ExperimentRoutes().Lookup(ip("10.1.0.1")) != nil
	})
	// The announcement reached both neighbors (no communities attached).
	waitFor(t, "announcement at N2", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})

	// N2 sends traffic to the experiment prefix via the router.
	rtrMAC, err := f.n2Host.Resolve(f.n2Host.Interfaces()[0], ip("192.0.2.254"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("192.168.0.9"), Dst: ip("10.1.0.7"), Payload: []byte("inbound")}
	f.n2Host.Interfaces()[0].Send(&ethernet.Frame{Dst: rtrMAC, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	waitFor(t, "inbound frame at experiment", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return rxCount == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if rxSrcMAC != f.nbr2.LocalMAC {
		t.Errorf("source MAC %s, want N2's assigned MAC %s (delivering-neighbor attribution)",
			rxSrcMAC, f.nbr2.LocalMAC)
	}
}

func TestCommunitySteeredAnnouncements(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	// Whitelist: announce only to N1 (community platform:1).
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1", AnnounceTo(platformASN, 1))
	waitFor(t, "announcement at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	time.Sleep(50 * time.Millisecond)
	if _, leaked := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]; leaked {
		t.Fatal("whitelisted announcement leaked to N2")
	}

	// The control community must be stripped and the platform ASN
	// prepended on the exported route.
	u := f.n1.lastUpdate()
	if u == nil || len(u.NLRI) == 0 {
		t.Fatal("no update at N1")
	}
	for _, c := range u.Attrs.Communities {
		if uint32(c.ASN()) == platformASN {
			t.Errorf("control community %s leaked to the Internet", c)
		}
	}
	flat := u.Attrs.ASPathFlat()
	if len(flat) != 2 || flat[0] != platformASN || flat[1] != expASN {
		t.Errorf("exported AS path %v, want [%d %d]", flat, platformASN, expASN)
	}
	if u.Attrs.NextHop != ip("192.0.2.254") {
		t.Errorf("exported next hop %s, want router address", u.Attrs.NextHop)
	}
}

func TestCommunityBlacklist(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1", NoExportTo(platformASN, 1))
	waitFor(t, "announcement at N2", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	time.Sleep(50 * time.Millisecond)
	if _, leaked := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]; leaked {
		t.Fatal("blacklisted neighbor received the announcement")
	}
}

func TestPerNeighborDifferentAnnouncements(t *testing.T) {
	// §2.2.2's motivating example: prepended announcement to N1, plain
	// announcement of the SAME prefix to N2, in parallel.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	x1.announceV("10.1.0.0/24", 1, []uint32{expASN, expASN, expASN}, "100.65.0.1", AnnounceTo(platformASN, 1))
	x1.announceV("10.1.0.0/24", 2, []uint32{expASN}, "100.65.0.1", AnnounceTo(platformASN, 2))

	waitFor(t, "both neighbors have the prefix", func() bool {
		_, a := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		_, b := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return a && b
	})
	u1, u2 := f.n1.lastUpdate(), f.n2.lastUpdate()
	if l := u1.Attrs.ASPathLen(); l != 4 { // platform + 3x experiment
		t.Errorf("N1 path length %d, want 4 (prepended)", l)
	}
	if l := u2.Attrs.ASPathLen(); l != 2 {
		t.Errorf("N2 path length %d, want 2 (plain)", l)
	}
}

func TestHijackBlockedAtRouter(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	// X1 tries to announce address space it does not own.
	x1.announce("8.8.8.0/24", []uint32{expASN}, "100.65.0.1")
	time.Sleep(100 * time.Millisecond)
	if _, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("8.8.8.0/24")}]; ok {
		t.Fatal("hijack propagated to a neighbor")
	}
	if f.router.ExperimentRoutes().Lookup(ip("8.8.8.8")) != nil {
		t.Fatal("hijack installed in experiment routes")
	}
	// The audit log attributes the attempt.
	found := false
	for _, e := range f.engine.Audit() {
		if e.Experiment == "X1" && e.Action == policy.ActionReject {
			found = true
		}
	}
	if !found {
		t.Error("no audit entry for rejected hijack")
	}
}

func TestExperimentWithdrawPropagates(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	x1.withdraw("10.1.0.0/24")
	waitFor(t, "withdraw at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return !ok
	})
	waitFor(t, "exp route removed", func() bool {
		return f.router.ExperimentRoutes().Lookup(ip("10.1.0.1")) == nil
	})
}

func TestExperimentDisconnectWithdrawsRoutes(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement at N2", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	x1.sess.Close()
	waitFor(t, "withdraw at N2 after disconnect", func() bool {
		_, ok := f.n2.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return !ok
	})
}

func TestNeighborDownWithdrawsFromExperiments(t *testing.T) {
	f := newFig1(t)
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	waitFor(t, "route", func() bool { return f.nbr1.Table.PathCount() == 1 })
	x1 := f.connectExperiment(t, "X1", true)
	waitFor(t, "route at experiment", func() bool { return len(x1.routes()) == 1 })

	f.n1.sess.Close()
	waitFor(t, "withdraw at experiment", func() bool { return len(x1.routes()) == 0 })
}

func TestParallelExperimentsIsolated(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x2 := f.connectExperiment(t, "X2", true)

	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	x2.announce("10.2.0.0/24", []uint32{expASN + 1}, "100.65.0.2")
	waitFor(t, "both announcements at N1", func() bool {
		r := f.n1.routes()
		_, a := r[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		_, b := r[bgp.NLRI{Prefix: pfx("10.2.0.0/24")}]
		return a && b
	})
	// X2 cannot announce X1's prefix (isolation between experiments).
	x2.announce("10.1.0.0/24", []uint32{expASN + 1}, "100.65.0.2")
	time.Sleep(100 * time.Millisecond)
	paths := f.router.ExperimentRoutes().Paths(pfx("10.1.0.0/24"))
	for _, p := range paths {
		if p.Peer == "X2" {
			t.Fatal("X2 hijacked X1's prefix")
		}
	}
}

func TestMACForGlobalIPDeterministic(t *testing.T) {
	gip := ip("127.127.0.9")
	m1, m2 := MACForGlobalIP(gip), MACForGlobalIP(gip)
	if m1 != m2 {
		t.Fatal("derived MAC not deterministic")
	}
	if m1.IsMulticast() || m1[0]&0x02 == 0 {
		t.Errorf("derived MAC %s not locally administered unicast", m1)
	}
	if MACForGlobalIP(ip("127.127.0.10")) == m1 {
		t.Error("distinct global IPs must derive distinct MACs")
	}
}

func TestPoolAllocation(t *testing.T) {
	p := NewPool(pfx("127.65.0.0/30"))
	a1 := p.MustAlloc()
	a2 := p.MustAlloc()
	a3 := p.MustAlloc()
	if a1 == a2 || a2 == a3 {
		t.Error("pool reused addresses")
	}
	if !p.Contains(a1) || !p.Contains(a3) {
		t.Error("allocations outside pool")
	}
	if _, err := p.Alloc(); err == nil {
		t.Error("exhausted pool kept allocating")
	}
}

func TestDuplicateNeighborRejected(t *testing.T) {
	f := newFig1(t)
	c, _ := pipe.New()
	_, err := f.router.AddNeighbor(NeighborConfig{
		Name: "N1", ID: 9, ASN: 65009, Addr: ip("192.0.2.9"), Interface: "nbr0", Conn: c,
	})
	if err == nil {
		t.Fatal("duplicate neighbor accepted")
	}
	_, err = f.router.AddNeighbor(NeighborConfig{
		Name: "N9", ID: 0, ASN: 65009, Addr: ip("192.0.2.9"), Interface: "nbr0", Conn: c,
	})
	if err == nil {
		t.Fatal("zero neighbor ID accepted")
	}
}

func TestRouteCount(t *testing.T) {
	f := newFig1(t)
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	f.n1.announce("192.168.1.0/24", []uint32{n1ASN}, "192.0.2.1")
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "3 routes", func() bool { return f.router.RouteCount() == 3 })
}

func TestLookupVia(t *testing.T) {
	f := newFig1(t)
	f.n1.announce("192.168.0.0/24", []uint32{n1ASN}, "192.0.2.1")
	waitFor(t, "route", func() bool { return f.nbr1.Table.PathCount() == 1 })
	if p := f.router.LookupVia("N1", ip("192.168.0.77")); p == nil {
		t.Fatal("LookupVia miss")
	}
	if p := f.router.LookupVia("N2", ip("192.168.0.77")); p != nil {
		t.Fatal("LookupVia hit on wrong neighbor table")
	}
	if p := f.router.LookupVia("nope", ip("192.168.0.77")); p != nil {
		t.Fatal("LookupVia hit on unknown neighbor")
	}
	_ = rib.Path{} // keep the rib import for the helper types above
}

func TestNeighborRateLimit(t *testing.T) {
	f := newFig1(t)
	f.n2.announce("192.168.0.0/24", []uint32{n2ASN}, "192.0.2.2")
	waitFor(t, "route", func() bool { return f.nbr2.Table.PathCount() == 1 })

	// Resolve the neighbor MAC first so the limiter can match frames.
	x1 := netsim.NewHost("X1")
	x1ifc := x1.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:01"), pfx("100.65.0.1/24"), f.expLAN)
	mac, err := x1.Resolve(x1ifc, f.nbr2.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("10.1.0.1"), Dst: ip("192.168.0.1")}
	// Prime the router's ARP for the neighbor by forwarding once before
	// the limiter is installed.
	x1ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	waitFor(t, "first forward", func() bool { return f.router.Forwarded.Load() == 1 })

	prog, err := f.router.SetNeighborRateLimit("N2", 3, 40) // 3 pkts per ~18min window
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.SetNeighborRateLimit("ghost", 3, 40); err == nil {
		t.Fatal("rate limit on unknown neighbor accepted")
	}

	delivered := int(f.n2Host.Interfaces()[0].RxFrames.Load())
	for i := 0; i < 10; i++ {
		x1ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	}
	got := int(f.n2Host.Interfaces()[0].RxFrames.Load()) - delivered
	if got != 3 {
		t.Errorf("delivered %d frames under a 3-packet limit", got)
	}
	_, drops, _ := prog.Stats()
	if drops != 7 {
		t.Errorf("limiter drops = %d, want 7", drops)
	}
}

func TestTwoOctetNeighborSeesASTransWithAS4Path(t *testing.T) {
	// Interop (RFC 6793): an experiment with a 4-octet ASN announces; a
	// neighbor whose session has no 4-octet-AS capability receives
	// AS_TRANS in AS_PATH plus AS4_PATH, which its decoder merges back.
	f := newFig1(t)
	const bigASN = 4200000001
	f.engine.Register(&policy.Experiment{
		Name:     "X1",
		Prefixes: []netip.Prefix{pfx("10.1.0.0/24")},
		ASNs:     []uint32{bigASN},
	})

	// Replace N1 with a 2-octet-only speaker.
	cr, cn := pipe.New()
	if _, err := f.router.AddNeighbor(NeighborConfig{
		Name: "oldrouter", ID: 9, ASN: 64999, Addr: ip("192.0.2.9"), Interface: "nbr0", Conn: cr,
	}); err != nil {
		t.Fatal(err)
	}
	old := &testPeer{t: t, estCh: make(chan struct{})}
	old.sess = bgp.NewSession(cn, bgp.Config{
		LocalASN: 64999, RemoteASN: platformASN, LocalID: ip("192.0.2.9"),
		DisableAS4: true,
		OnUpdate: func(u *bgp.Update) {
			old.mu.Lock()
			old.updates = append(old.updates, u)
			old.mu.Unlock()
		},
		OnEstablished: func() { close(old.estCh) },
	})
	go old.sess.Run()
	old.waitEstablished()

	cr2, ce := pipe.New()
	if _, err := f.router.ConnectExperiment("X1", bigASN, cr2); err != nil {
		t.Fatal(err)
	}
	x1 := newTestPeer(t, ce, bigASN, platformASN, "100.65.0.1", true)
	x1.waitEstablished()
	x1.announce("10.1.0.0/24", []uint32{bigASN}, "100.65.0.1")

	waitFor(t, "announcement at 2-octet neighbor", func() bool {
		_, ok := old.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	u := old.lastUpdate()
	flat := u.Attrs.ASPathFlat()
	// The decoder merged AS4_PATH: the true 4-octet origin is visible.
	if len(flat) != 2 || flat[0] != platformASN || flat[1] != bigASN {
		t.Errorf("merged path %v, want [%d %d]", flat, platformASN, bigASN)
	}
}

func TestExperimentsDoNotSeeEachOthersAnnouncements(t *testing.T) {
	// Visibility isolation: experiment announcements go to neighbors and
	// the mesh, never to the other experiments' sessions.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)
	x2 := f.connectExperiment(t, "X2", true)

	x1.announce("10.1.0.0/24", []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	time.Sleep(50 * time.Millisecond)
	for nlri := range x2.routes() {
		if nlri.Prefix == pfx("10.1.0.0/24") {
			t.Fatal("X2 received X1's announcement")
		}
	}
}

func TestVersionWithdrawFallsBackToOlderVersion(t *testing.T) {
	// syncPrefix reconciliation: withdrawing the newest version of a
	// prefix re-exports the surviving older version to the neighbors it
	// targets.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	x1.announceV("10.1.0.0/24", 1, []uint32{expASN, expASN}, "100.65.0.1") // prepended
	waitFor(t, "v1 at N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return ok
	})
	x1.announceV("10.1.0.0/24", 2, []uint32{expASN}, "100.65.0.1") // plain, newer
	waitFor(t, "v2 at N1", func() bool {
		u := f.n1.lastUpdate()
		return u != nil && len(u.NLRI) == 1 && u.Attrs.ASPathLen() == 2
	})

	// Withdraw version 2: version 1 (prepended) must come back.
	u := &bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: pfx("10.1.0.0/24"), ID: 2}}}
	if err := x1.sess.Send(u); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fallback to v1", func() bool {
		last := f.n1.lastUpdate()
		return last != nil && len(last.NLRI) == 1 && last.Attrs.ASPathLen() == 3
	})

	// Withdrawing the final version removes the prefix entirely.
	u = &bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: pfx("10.1.0.0/24"), ID: 1}}}
	if err := x1.sess.Send(u); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "prefix gone from N1", func() bool {
		_, ok := f.n1.routes()[bgp.NLRI{Prefix: pfx("10.1.0.0/24")}]
		return !ok
	})
}

func TestFacebookVariantControllerInjection(t *testing.T) {
	// §7.2: a centralized controller injects routes directly into
	// per-neighbor tables; per-packet MAC signaling selects them, no BGP
	// from the controller involved.
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath: []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{n2ASN, 64999}}},
	}
	if err := f.router.InjectRoute("N2", pfx("198.51.0.0/16"), attrs); err != nil {
		t.Fatal(err)
	}
	if err := f.router.InjectRoute("ghost", pfx("198.51.0.0/16"), attrs); err == nil {
		t.Fatal("injection into unknown neighbor accepted")
	}
	// The experiment sees the injected route via ADD-PATH like any other.
	waitFor(t, "injected route at experiment", func() bool {
		_, ok := x1.routes()[bgp.NLRI{Prefix: pfx("198.51.0.0/16"), ID: 2}]
		return ok
	})
	// Data plane: steer a packet at N2's MAC; the injected route carries it.
	host := netsim.NewHost("ctrl")
	ifc := host.AddInterface("tap0", ethernet.MustParseMAC("0a:00:00:00:00:07"), pfx("100.65.0.7/24"), f.expLAN)
	mac, err := host.Resolve(ifc, f.nbr2.LocalIP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var rx atomic.Uint64
	f.n2Host.Interfaces()[0].SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 {
			rx.Add(1)
		}
	})
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ip("10.1.0.1"), Dst: ip("198.51.100.77")}
	ifc.Send(&ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})
	waitFor(t, "packet via injected route", func() bool { return rx.Load() == 1 })

	// Removal withdraws it everywhere.
	if err := f.router.RemoveInjectedRoute("N2", pfx("198.51.0.0/16")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "withdraw at experiment", func() bool {
		_, ok := x1.routes()[bgp.NLRI{Prefix: pfx("198.51.0.0/16"), ID: 2}]
		return !ok
	})
	if err := f.router.RemoveInjectedRoute("N2", pfx("198.51.0.0/16")); err == nil {
		t.Fatal("double removal succeeded")
	}
}
