package core

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

const arpTimeout = 2 * time.Second

// meshExpFlag marks experiment-route NLRIs on backbone sessions,
// separating their version IDs from neighbor platform IDs.
const meshExpFlag bgp.PathID = 1 << 31

// expRouteKey identifies one version of one experiment announcement. An
// experiment may announce the same prefix several times with different
// ADD-PATH IDs, each version carrying different attributes and targeting
// different neighbors (§2.2.2's prepend-to-N1, plain-to-N2 example).
type expRouteKey struct {
	prefix netip.Prefix
	owner  string
	id     bgp.PathID
}

// handleNeighborUpdate processes an UPDATE from a local external
// neighbor: it stores routes in the neighbor's own table with forwarding
// next hops, mirrors them into the optional default table, re-advertises
// them to every experiment with the next hop rewritten to the neighbor's
// LocalIP and the neighbor's ID as the ADD-PATH identifier (§3.2.1,
// Fig. 2a), and relays them into the backbone mesh with the neighbor's
// GlobalIP as next hop (§4.4).
//
// RIB mutations and downstream exports are batched: the UPDATE's NLRIs
// are installed/removed with one shard-lock acquisition per shard
// (rib.Table.AddBatch/WithdrawBatch), and all resulting exports leave
// as one block per destination session (exportCollector).
func (r *Router) handleNeighborUpdate(n *Neighbor, u *bgp.Update) {
	r.updatesProcessed.Add(1)
	defer r.syncNeighborRoutesGauge(n)
	var remoteID netip.Addr
	if sess := n.Session(); sess != nil {
		remoteID = sess.RemoteID()
	}
	col := r.newCollector()
	defer col.flush()

	withdrawn := append(append([]bgp.NLRI(nil), u.Withdrawn...), u.MPUnreach...)
	if len(withdrawn) > 0 {
		reqs := make([]rib.WithdrawRequest, len(withdrawn))
		for i, w := range withdrawn {
			reqs[i] = rib.WithdrawRequest{Prefix: w.Prefix, Peer: n.Name, ID: w.ID}
		}
		removed := n.Table.WithdrawBatch(reqs)
		for i, w := range withdrawn {
			if removed[i] == nil {
				continue
			}
			suppressed, _ := r.dampNeighborRoute(n, w.Prefix, false)
			r.emit(telemetry.Event{
				Kind: telemetry.EventRouteMonitoring, Peer: n.Name, PeerASN: n.ASN,
				Prefix: w.Prefix, PathID: uint32(w.ID), Withdraw: true,
			})
			if r.defaultTable != nil {
				r.defaultTable.Withdraw(w.Prefix, n.Name, w.ID)
			}
			// Export the surviving best path (route servers hold several
			// paths per prefix), or a withdrawal if none remains — or if
			// damping suppressed the route, in which case downstream must
			// stop using it even though the adj-RIB-in keeps what's left.
			if best := n.Table.Best(w.Prefix); best != nil && !suppressed {
				col.exportToExperiments(n, w.Prefix, best.Attrs, false)
				col.exportToMesh(n, w.Prefix, best.Attrs, false)
			} else {
				col.exportToExperiments(n, w.Prefix, nil, true)
				col.exportToMesh(n, w.Prefix, nil, true)
			}
		}
	}

	// Announcements: filter and build the accepted paths first, install
	// them as one batch per table, then run damping, telemetry, and
	// export per NLRI against the settled table state.
	type accepted struct {
		nlri bgp.NLRI
		path *rib.Path
	}
	var adds []accepted
	admit := func(nlri bgp.NLRI, attrs *bgp.PathAttrs) {
		if attrs == nil {
			return
		}
		// AS-path loop prevention (RFC 4271 §9.1.2): a path already
		// carrying the platform's ASN is one of our own announcements
		// reflected back — accepting it would loop it into every
		// experiment's view.
		for _, hop := range attrs.ASPathFlat() {
			if hop == r.cfg.ASN {
				return
			}
		}
		stored := attrs.Clone()
		// Forwarding next hop: the neighbor itself for a direct
		// adjacency; route servers are transparent, so their routes keep
		// the announcing member's next hop (RFC 7947).
		if nlri.Prefix.Addr().Is4() && !n.RouteServer {
			stored.NextHop = n.Addr
		}
		adds = append(adds, accepted{nlri, &rib.Path{
			Prefix: nlri.Prefix, ID: nlri.ID, Peer: n.Name, Attrs: stored,
			EBGP: true, Seq: rib.NextSeq(),
			PeerAddr: n.Addr, PeerRouterID: remoteID,
		}})
	}
	for _, nlri := range u.NLRI {
		admit(nlri, u.Attrs)
	}
	for _, nlri := range u.MPReach {
		admit(nlri, u.Attrs)
	}
	if len(adds) == 0 {
		return
	}
	batch := make([]*rib.Path, len(adds))
	for i, a := range adds {
		batch[i] = a.path
	}
	n.Table.AddBatch(batch)
	if r.defaultTable != nil {
		mirror := make([]*rib.Path, len(adds))
		for i, a := range adds {
			dp := *a.path
			mirror[i] = &dp
		}
		r.defaultTable.AddBatch(mirror)
	}
	for _, a := range adds {
		suppressed, entered := r.dampNeighborRoute(n, a.nlri.Prefix, true)
		r.emit(telemetry.Event{
			Kind: telemetry.EventRouteMonitoring, Peer: n.Name, PeerASN: n.ASN,
			Prefix: a.nlri.Prefix, PathID: uint32(a.nlri.ID),
			NextHop: a.path.Attrs.NextHop, ASPath: a.path.Attrs.ASPathFlat(),
		})
		switch {
		case suppressed && entered:
			// The flap that crossed the suppress threshold: retract the
			// route downstream; the adj-RIB-in copy stays for reuse.
			r.logf("damping: suppressing %s from %s", a.nlri.Prefix, n.Name)
			col.exportToExperiments(n, a.nlri.Prefix, nil, true)
			col.exportToMesh(n, a.nlri.Prefix, nil, true)
		case suppressed:
			// Still suppressed: withhold, and spare downstream the churn.
		default:
			if best := n.Table.Best(a.nlri.Prefix); best != nil {
				col.exportToExperiments(n, a.nlri.Prefix, best.Attrs, false)
				col.exportToMesh(n, a.nlri.Prefix, best.Attrs, false)
			}
		}
	}
}

// dampNeighborRoute registers one flap (announce or withdraw) of a
// neighbor route with the damper. It reports whether the route is
// suppressed and whether this flap was the one that crossed the
// suppress threshold (so callers retract downstream exactly once).
// Suppressed routes are marked in the adj-RIB-in — never removed: they
// must survive the suppression window to be reusable after decay.
func (r *Router) dampNeighborRoute(n *Neighbor, prefix netip.Prefix, announce bool) (suppressed, entered bool) {
	if r.damper == nil {
		return false, false
	}
	key := guard.Key{Peer: n.Name, Prefix: prefix}
	was := r.damper.Suppressed(key)
	if announce {
		suppressed, _ = r.damper.Announce(key)
	} else {
		suppressed, _ = r.damper.Withdraw(key)
	}
	if suppressed {
		n.Table.MarkDamped(prefix, n.Name, true)
	}
	return suppressed, suppressed && !was
}

// exportCollector accumulates the experiment- and mesh-facing UPDATEs
// produced while processing one inbound event, then delivers each
// destination its whole block with a single batched write
// (bgp.Session.SendBatch) at flush, so per-prefix exports stop paying a
// session write lock and an encode allocation each.
type exportCollector struct {
	r    *Router
	exp  []*bgp.Update
	mesh []*bgp.Update
	// Destination existence is checked once per collection so a fan-out
	// with no experiments (or no mesh peers) costs nothing per route.
	expChecked, meshChecked bool
	haveExp, haveMesh       bool
}

func (r *Router) newCollector() *exportCollector { return &exportCollector{r: r} }

// exportToExperiments queues one route (or withdrawal) from neighbor n
// for every connected experiment.
func (c *exportCollector) exportToExperiments(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) {
	if !c.expChecked {
		c.expChecked = true
		c.r.mu.Lock()
		c.haveExp = len(c.r.experiments) > 0
		c.r.mu.Unlock()
	}
	if !c.haveExp {
		return
	}
	c.exp = append(c.exp, c.r.experimentUpdate(n, prefix, attrs, withdraw))
}

// exportToMesh queues one locally learned neighbor route (or
// withdrawal) for every backbone peer.
func (c *exportCollector) exportToMesh(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) {
	if !c.meshChecked {
		c.meshChecked = true
		c.r.mu.Lock()
		c.haveMesh = len(c.r.meshPeers) > 0
		c.r.mu.Unlock()
	}
	if !c.haveMesh {
		return
	}
	c.mesh = append(c.mesh, c.r.meshUpdate(n, prefix, attrs, withdraw))
}

// flush delivers the accumulated blocks and resets the collector.
func (c *exportCollector) flush() {
	r := c.r
	if len(c.exp) > 0 {
		r.mu.Lock()
		sessions := make([]*bgp.Session, 0, len(r.experiments))
		for _, e := range r.experiments {
			sessions = append(sessions, e.session)
		}
		r.mu.Unlock()
		for _, s := range sessions {
			if s.State() != bgp.StateEstablished {
				continue
			}
			if err := s.SendBatch(c.exp); err != nil {
				r.logf("export to experiment: %v", err)
				continue
			}
			r.metrics.addPathExports.Add(uint64(len(c.exp)))
		}
		c.exp = c.exp[:0]
	}
	if len(c.mesh) > 0 {
		r.mu.Lock()
		peers := make([]*meshPeer, 0, len(r.meshPeers))
		for _, p := range r.meshPeers {
			peers = append(peers, p)
		}
		r.mu.Unlock()
		for _, p := range peers {
			if s := p.sess(); s != nil && s.State() == bgp.StateEstablished {
				if err := s.SendBatch(c.mesh); err != nil {
					r.logf("mesh export to %s: %v", p.name, err)
				}
			}
		}
		c.mesh = c.mesh[:0]
	}
}

// exportToExperiments sends one route (or withdrawal) from neighbor n to
// every connected experiment (a batch of one; multi-route callers hold
// their own collector).
func (r *Router) exportToExperiments(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) {
	c := r.newCollector()
	c.exportToExperiments(n, prefix, attrs, withdraw)
	c.flush()
}

// experimentUpdate builds the experiment-facing UPDATE for one route of
// neighbor n: next hop rewritten to the neighbor's local pool address and
// the neighbor ID carried as the ADD-PATH path ID.
func (r *Router) experimentUpdate(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) *bgp.Update {
	nlri := bgp.NLRI{Prefix: prefix, ID: bgp.PathID(n.ID)}
	v6 := prefix.Addr().Is6()
	if withdraw {
		if v6 {
			return &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{nlri}}
		}
		return &bgp.Update{Withdrawn: []bgp.NLRI{nlri}}
	}
	out := attrs.Clone()
	out = r.stampValidation(n, prefix, out)
	r.metrics.nexthopRewrites.Inc()
	if v6 {
		out.MPNextHop = localIP6(n.GlobalIP)
		out.NextHop = netip.Addr{}
		return &bgp.Update{Attrs: out, MPReach: []bgp.NLRI{nlri}}
	}
	out.NextHop = n.LocalIP
	return &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{nlri}}
}

// localIP6 derives the IPv6 next hop exposed to experiments for a
// neighbor (the NDP-equivalent of the IPv4 local pool).
func localIP6(globalIP netip.Addr) netip.Addr {
	g := globalIP.As4()
	var raw [16]byte
	raw[0], raw[1], raw[2], raw[3] = 0xfd, 0x47, 0x00, 0x65
	copy(raw[12:], g[:])
	return netip.AddrFrom16(raw)
}

// meshUpdate builds the backbone-facing UPDATE for one neighbor route
// or its withdrawal.
func (r *Router) meshUpdate(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) *bgp.Update {
	if withdraw {
		nlri := bgp.NLRI{Prefix: prefix, ID: bgp.PathID(n.ID)}
		if prefix.Addr().Is6() {
			return &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{nlri}}
		}
		return &bgp.Update{Withdrawn: []bgp.NLRI{nlri}}
	}
	return r.meshUpdateForNeighborRoute(n, prefix, attrs)
}

// exportToMesh relays a locally learned neighbor route to every backbone
// peer with the neighbor's GlobalIP as next hop and its platform ID as
// the path ID, so remote PoPs can reconstruct per-neighbor tables
// (Fig. 5). A batch of one; multi-route callers hold their own
// collector.
func (r *Router) exportToMesh(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs, withdraw bool) {
	c := r.newCollector()
	c.exportToMesh(n, prefix, attrs, withdraw)
	c.flush()
}

// experimentGRTime is the graceful-restart window advertised on
// experiment sessions: how long an experiment's routes survive a
// dropped control session (e.g. a tunnel redial) before being flushed.
const experimentGRTime = 10 * time.Second

// ConnectExperiment attaches an experiment BGP session over conn. The
// experiment's routes are validated by the enforcement engine; the
// experiment receives every known route via ADD-PATH once established.
// Reconnecting under a name whose previous session already died
// replaces the old registration (the redial path of a resilient
// experiment client).
func (r *Router) ConnectExperiment(name string, expASN uint32, conn net.Conn) (*bgp.Session, error) {
	e := &expConn{name: name, gr: experimentGRTime}
	sess := bgp.NewSession(conn, bgp.Config{
		LocalASN:  r.cfg.ASN,
		RemoteASN: expASN,
		LocalID:   r.cfg.RouterID,
		PeerName:  r.cfg.Name + ":exp:" + name,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSendReceive,
			bgp.IPv6Unicast: bgp.AddPathSendReceive,
		},
		GracefulRestart: &bgp.GracefulRestartConfig{RestartTime: experimentGRTime},
		OnUpdate:        func(u *bgp.Update) { r.handleExperimentUpdate(e, u) },
		OnEstablished: func() {
			r.emit(telemetry.Event{Kind: telemetry.EventPeerUp, Peer: "exp:" + name, PeerASN: expASN})
			r.dumpTablesToExperiment(e)
		},
		OnRouteRefresh: func(bgp.AFISAFI) { r.dumpTablesToExperiment(e) },
		OnEndOfRIB:     func(fam bgp.AFISAFI) { r.experimentEndOfRIB(e, fam) },
		OnClose:        func(err error) { r.experimentDown(e, err) },
		Logf:           r.cfg.Logf,
	})
	e.session = sess

	r.mu.Lock()
	if old, dup := r.experiments[name]; dup {
		// Allow replacement only when the previous session is dead; a
		// live session under the same name is a configuration error.
		select {
		case <-old.session.Done():
		default:
			r.mu.Unlock()
			return nil, fmt.Errorf("core: experiment %s already connected", name)
		}
	}
	e.tunnelIP = r.tunnelIPs[name]
	r.experiments[name] = e
	r.mu.Unlock()

	go sess.Run()
	return sess, nil
}

// dumpBlockSize bounds how many UPDATEs a table replay hands to one
// SendBatch call, so a million-route dump streams in blocks instead of
// materializing one giant frame run.
const dumpBlockSize = 128

// dumpTablesToExperiment replays every neighbor's routes to a newly
// established experiment session in batched blocks.
func (r *Router) dumpTablesToExperiment(e *expConn) {
	r.logf("experiment %s established, dumping tables", e.name)
	r.mu.Lock()
	neighbors := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		neighbors = append(neighbors, n)
	}
	r.mu.Unlock()
	for _, n := range neighbors {
		type entry struct {
			prefix netip.Prefix
			attrs  *bgp.PathAttrs
		}
		var entries []entry
		// One route per prefix per neighbor: the decision-process best,
		// matching what incremental exports deliver (route servers hold
		// several member paths per prefix). Entries are collected first —
		// experimentUpdate may take router locks, which must not nest
		// inside the table's shard locks.
		n.Table.WalkBest(func(prefix netip.Prefix, best *rib.Path) bool {
			entries = append(entries, entry{prefix, best.Attrs})
			return true
		})
		for start := 0; start < len(entries); start += dumpBlockSize {
			end := min(start+dumpBlockSize, len(entries))
			us := make([]*bgp.Update, 0, end-start)
			for _, en := range entries[start:end] {
				us = append(us, r.experimentUpdate(n, en.prefix, en.attrs, false))
			}
			if err := e.session.SendBatch(us); err != nil {
				r.logf("table dump to %s: %v", e.name, err)
				return
			}
			r.metrics.addPathExports.Add(uint64(end - start))
		}
	}
	// End-of-RIB after the initial dump (RFC 4724 §3): lets a restarting
	// experiment sweep stale paths as soon as the replay completes.
	for _, fam := range []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast} {
		if err := e.session.SendEndOfRIB(fam); err != nil {
			return
		}
	}
}

// handleExperimentUpdate validates and propagates an experiment's
// announcements and withdrawals. Each NLRI's ADD-PATH ID names a version
// of the announcement; versions coexist, letting the experiment send
// different announcements for the same prefix to different neighbors.
func (r *Router) handleExperimentUpdate(e *expConn, u *bgp.Update) {
	r.updatesProcessed.Add(1)
	for _, w := range append(append([]bgp.NLRI(nil), u.Withdrawn...), u.MPUnreach...) {
		r.emit(telemetry.Event{
			Kind: telemetry.EventRouteMonitoring, Peer: "exp:" + e.name,
			Prefix: w.Prefix, PathID: uint32(w.ID), Withdraw: true,
		})
		r.withdrawExperimentRoute(e.name, w.Prefix, w.ID, true)
	}
	process := func(nlri bgp.NLRI, attrs *bgp.PathAttrs) {
		if attrs == nil {
			return
		}
		// Control communities are platform-directed: extract them before
		// policy evaluation so they do not count against (or get caught
		// by) the experiment's community capability.
		targets, rest := parseTargets(r.cfg.ASN, attrs.Communities)
		targets, restLarge := parseLargeTargets(r.cfg.ASN, targets, attrs.LargeCommunities)
		cleaned := attrs.Clone()
		cleaned.Communities = rest
		cleaned.LargeCommunities = restLarge

		if r.cfg.Enforcer != nil {
			res := r.cfg.Enforcer.EvaluateAnnouncement(e.name, r.cfg.Name, nlri.Prefix, cleaned)
			if res.Action == policy.ActionReject {
				r.logf("rejected announcement %s from %s: %v", nlri.Prefix, e.name, res.Reasons)
				return
			}
			cleaned = res.Attrs
		}

		// Overload shedding, last stage: under shedding pressure a new
		// announcement is treated as a withdrawal (the platform-level
		// analogue of RFC 7606 treat-as-withdraw). Policy above still
		// ran, so flap penalties and audit attribution keep accruing —
		// only the expensive install/propagate fan-out is shed.
		if r.shedAnnounce.Load() {
			r.metrics.shedAnnouncements.Inc()
			r.withdrawExperimentRoute(e.name, nlri.Prefix, nlri.ID, false)
			return
		}

		if v4 := cleaned.NextHop; v4.IsValid() && v4.Is4() {
			r.mu.Lock()
			e.tunnelIP = v4
			r.mu.Unlock()
		}

		r.emit(telemetry.Event{
			Kind: telemetry.EventRouteMonitoring, Peer: "exp:" + e.name,
			Prefix: nlri.Prefix, PathID: uint32(nlri.ID),
			NextHop: cleaned.NextHop, ASPath: cleaned.ASPathFlat(),
		})
		r.expRoutes.Add(&rib.Path{
			Prefix: nlri.Prefix, ID: nlri.ID, Peer: e.name, Attrs: cleaned.Clone(),
			EBGP: true, Seq: rib.NextSeq(),
		})
		r.mu.Lock()
		if r.expTargets == nil {
			r.expTargets = make(map[expRouteKey]targetSet)
		}
		r.expTargets[expRouteKey{nlri.Prefix, e.name, nlri.ID}] = targets
		r.mu.Unlock()

		r.syncPrefix(nlri.Prefix)
		r.relayExperimentRouteToMesh(nlri.Prefix, nlri.ID, cleaned, targets, false)
	}
	for _, nlri := range u.NLRI {
		process(nlri, u.Attrs)
	}
	for _, nlri := range u.MPReach {
		process(nlri, u.Attrs)
	}
}

// withdrawExperimentRoute removes one version of an experiment's route
// and re-synchronizes neighbor exports. enforce selects whether the
// withdrawal consumes policy budget (it does when coming from the
// experiment itself).
func (r *Router) withdrawExperimentRoute(owner string, prefix netip.Prefix, id bgp.PathID, enforce bool) {
	if enforce && r.cfg.Enforcer != nil {
		res := r.cfg.Enforcer.EvaluateWithdraw(owner, r.cfg.Name, prefix)
		if res.Action == policy.ActionReject {
			r.logf("rejected withdraw %s from %s: %v", prefix, owner, res.Reasons)
			return
		}
	}
	if r.expRoutes.Withdraw(prefix, owner, id) == nil {
		return
	}
	r.mu.Lock()
	delete(r.expTargets, expRouteKey{prefix, owner, id})
	r.mu.Unlock()
	r.syncPrefix(prefix)
	if !isMeshOwner(owner) {
		r.relayExperimentRouteToMesh(prefix, id, nil, targetSet{}, true)
	}
}

func isMeshOwner(owner string) bool {
	return len(owner) > 5 && owner[:5] == "mesh:"
}

// localNeighborsLocked returns local (directly connected) neighbors;
// r.mu must be held.
func (r *Router) localNeighborsLocked() []*Neighbor {
	out := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		if !n.Remote {
			out = append(out, n)
		}
	}
	return out
}

// syncPrefix reconciles every local neighbor's export state for one
// experiment prefix: each neighbor receives the newest announcement
// version that targets it, or a withdrawal if none does.
func (r *Router) syncPrefix(prefix netip.Prefix) {
	paths := r.expRoutes.Paths(prefix)
	r.mu.Lock()
	neighbors := r.localNeighborsLocked()
	targets := make(map[expRouteKey]targetSet, len(r.expTargets))
	for k, v := range r.expTargets {
		targets[k] = v
	}
	r.mu.Unlock()

	for _, n := range neighbors {
		var chosen *rib.Path
		for _, p := range paths {
			ts, ok := targets[expRouteKey{prefix, p.Peer, p.ID}]
			if ok && !ts.includes(n.ID) {
				continue
			}
			if chosen == nil || p.Seq > chosen.Seq {
				chosen = p
			}
		}
		cur := n.AdjOut.Paths(prefix)
		switch {
		case chosen == nil && len(cur) > 0:
			r.sendExperimentWithdrawToNeighbor(n, prefix)
		case chosen != nil:
			// Skip if this exact version was already exported.
			if len(cur) == 1 && cur[0].Peer == chosen.Peer && cur[0].ID == chosen.ID && cur[0].Seq == chosen.Seq {
				continue
			}
			r.sendExperimentRouteToNeighbor(n, chosen)
		}
	}
}

// sendExperimentRouteToNeighbor exports one experiment route version on a
// neighbor session: control communities are stripped, the platform ASN
// is prepended, and the next hop becomes the router's own address on the
// neighbor's segment.
func (r *Router) sendExperimentRouteToNeighbor(n *Neighbor, chosen *rib.Path) {
	prefix := chosen.Prefix
	out := chosen.Attrs.Clone()
	ts, rest := parseTargets(r.cfg.ASN, out.Communities)
	_, restLarge := parseLargeTargets(r.cfg.ASN, ts, out.LargeCommunities)
	out.Communities = rest
	out.LargeCommunities = restLarge
	out.PrependAS(r.cfg.ASN, 1)
	v6 := prefix.Addr().Is6()
	var u *bgp.Update
	if v6 {
		out.NextHop = netip.Addr{}
		if n.ifc != nil {
			out.MPNextHop = bbAddr6(n.ifc.PrimaryAddr())
		}
		u = &bgp.Update{Attrs: out, MPReach: []bgp.NLRI{{Prefix: prefix}}}
	} else {
		if n.ifc != nil {
			out.NextHop = n.ifc.PrimaryAddr()
		}
		u = &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{{Prefix: prefix}}}
	}
	// Track the exported version regardless of session state so
	// replayExperimentRoutes can recover after establishment.
	for _, p := range n.AdjOut.Paths(prefix) {
		n.AdjOut.Withdraw(prefix, p.Peer, p.ID)
	}
	n.AdjOut.Add(&rib.Path{Prefix: prefix, ID: chosen.ID, Peer: chosen.Peer, Attrs: out, Seq: chosen.Seq})
	sess := n.Session()
	if sess == nil || sess.State() != bgp.StateEstablished {
		return
	}
	if err := sess.Send(u); err != nil {
		r.logf("export %s to neighbor %s: %v", prefix, n.Name, err)
	}
}

// sendExperimentWithdrawToNeighbor withdraws the prefix from a neighbor.
func (r *Router) sendExperimentWithdrawToNeighbor(n *Neighbor, prefix netip.Prefix) {
	for _, p := range n.AdjOut.Paths(prefix) {
		n.AdjOut.Withdraw(prefix, p.Peer, p.ID)
	}
	sess := n.Session()
	if sess == nil || sess.State() != bgp.StateEstablished {
		return
	}
	var u *bgp.Update
	if prefix.Addr().Is6() {
		u = &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{{Prefix: prefix}}}
	} else {
		u = &bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: prefix}}}
	}
	if err := sess.Send(u); err != nil {
		r.logf("withdraw %s from neighbor %s: %v", prefix, n.Name, err)
	}
}

// replayExperimentRoutes exports existing experiment announcements to a
// neighbor whose session just established.
func (r *Router) replayExperimentRoutes(n *Neighbor) {
	var prefixes []netip.Prefix
	r.expRoutes.Walk(func(prefix netip.Prefix, _ []*rib.Path) bool {
		prefixes = append(prefixes, prefix)
		return true
	})
	for _, prefix := range prefixes {
		// Force a resend by clearing the tracked export state.
		for _, p := range n.AdjOut.Paths(prefix) {
			n.AdjOut.Withdraw(prefix, p.Peer, p.ID)
		}
		r.syncPrefix(prefix)
	}
}

// relayExperimentRouteToMesh forwards an experiment announcement to
// every backbone peer so remote PoPs can export it to their neighbors
// (§4.4) and route inbound traffic back here. The target set is
// re-encoded as control communities; the next hop is this router's
// backbone address; the version ID is carried with the meshExpFlag bit.
func (r *Router) relayExperimentRouteToMesh(prefix netip.Prefix, id bgp.PathID, attrs *bgp.PathAttrs, targets targetSet, withdraw bool) {
	r.mu.Lock()
	peers := make([]*meshPeer, 0, len(r.meshPeers))
	for _, p := range r.meshPeers {
		peers = append(peers, p)
	}
	bb := r.bbIfc
	r.mu.Unlock()
	if len(peers) == 0 || bb == nil {
		return
	}
	nlri := bgp.NLRI{Prefix: prefix, ID: id | meshExpFlag}
	var u *bgp.Update
	if withdraw {
		if prefix.Addr().Is6() {
			u = &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{nlri}}
		} else {
			u = &bgp.Update{Withdrawn: []bgp.NLRI{nlri}}
		}
	} else {
		out := attrs.Clone()
		out.Communities = append(out.Communities, targets.controlCommunities(r.cfg.ASN)...)
		if prefix.Addr().Is6() {
			out.MPNextHop = bbAddr6(bb.PrimaryAddr())
			out.NextHop = netip.Addr{}
			u = &bgp.Update{Attrs: out, MPReach: []bgp.NLRI{nlri}}
		} else {
			out.NextHop = bb.PrimaryAddr()
			u = &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{nlri}}
		}
	}
	for _, p := range peers {
		if s := p.sess(); s != nil && s.State() == bgp.StateEstablished {
			if err := s.Send(u); err != nil {
				r.logf("mesh relay to %s: %v", p.name, err)
			}
		}
	}
}

// bbAddr6 maps a backbone IPv4 address into the v6 relay space.
func bbAddr6(v4 netip.Addr) netip.Addr {
	raw4 := v4.As4()
	var raw [16]byte
	raw[0], raw[1], raw[2], raw[3] = 0xfd, 0x47, 0x00, 0xbb
	copy(raw[12:], raw4[:])
	return netip.AddrFrom16(raw)
}

// experimentDown handles a disconnected experiment. When the session
// negotiated graceful restart and died on an error (not an
// administrative close), the experiment's routes are retained as stale
// for the restart window so a reconnecting client finds its
// announcements still exported; otherwise everything is withdrawn
// immediately.
func (r *Router) experimentDown(e *expConn, err error) {
	r.mu.Lock()
	// A replacement session may already be registered under the name
	// (redial racing ahead of this callback); only unregister ourselves.
	if cur := r.experiments[e.name]; cur == e {
		delete(r.experiments, e.name)
	}
	r.mu.Unlock()
	if err != nil && e.gr > 0 && e.session.GracefulRestartNegotiated() {
		r.logf("experiment %s down: %v (graceful restart, retaining routes for %s)", e.name, err, e.gr)
		r.emit(telemetry.Event{
			Kind: telemetry.EventPeerDown, Peer: "exp:" + e.name,
			Reason: closeReason(err) + " (graceful restart)",
		})
		if r.expRoutes.MarkPeerStale(e.name) > 0 {
			r.armExperimentFlush(e.name, e.gr)
		}
		return
	}
	r.logf("experiment %s disconnected: %v", e.name, err)
	r.emit(telemetry.Event{Kind: telemetry.EventPeerDown, Peer: "exp:" + e.name, Reason: closeReason(err)})
	type ver struct {
		prefix netip.Prefix
		id     bgp.PathID
	}
	var vers []ver
	r.expRoutes.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		for _, p := range paths {
			if p.Peer == e.name {
				vers = append(vers, ver{prefix, p.ID})
			}
		}
		return true
	})
	for _, v := range vers {
		r.withdrawExperimentRoute(e.name, v.prefix, v.id, false)
	}
}

// neighborDown handles a dropped neighbor session. A supervised session
// that negotiated graceful restart and died on a transport error keeps
// its routes as stale (forwarding state preserved, RFC 4724) until the
// peer re-establishes and sends End-of-RIB, or the restart window
// lapses. Everything else gets the immediate full withdrawal.
func (r *Router) neighborDown(n *Neighbor, err error) {
	sess := n.Session()
	if err != nil && n.sup != nil && n.gr > 0 && sess != nil && sess.GracefulRestartNegotiated() {
		r.logf("neighbor %s down: %v (graceful restart, retaining routes for %s)", n.Name, err, n.gr)
		r.emit(telemetry.Event{
			Kind: telemetry.EventPeerDown, Peer: n.Name, PeerASN: n.ASN,
			Reason: closeReason(err) + " (graceful restart)",
		})
		marked := n.Table.MarkPeerStale(n.Name)
		if r.defaultTable != nil {
			r.defaultTable.MarkPeerStale(n.Name)
		}
		if marked > 0 {
			r.armNeighborFlush(n)
		}
		// byRealMAC stays: forwarding continues on retained state.
		return
	}
	r.logf("neighbor %s down: %v", n.Name, err)
	r.emit(telemetry.Event{Kind: telemetry.EventPeerDown, Peer: n.Name, PeerASN: n.ASN, Reason: closeReason(err)})
	removed := n.Table.WithdrawPeer(n.Name)
	r.syncNeighborRoutesGauge(n)
	col := r.newCollector()
	for _, p := range removed {
		if r.defaultTable != nil {
			r.defaultTable.Withdraw(p.Prefix, n.Name, 0)
		}
		col.exportToExperiments(n, p.Prefix, nil, true)
		col.exportToMesh(n, p.Prefix, nil, true)
	}
	col.flush()
	r.mu.Lock()
	delete(r.byRealMAC, n.realMAC)
	r.mu.Unlock()
}
