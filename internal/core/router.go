package core

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgp"
	"repro/internal/bpf"
	"repro/internal/ethernet"
	"repro/internal/guard"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/rib"
	"repro/internal/rpki"
	"repro/internal/telemetry"
)

// Config configures a vBGP router (one Peering PoP).
type Config struct {
	// Name is the PoP name, e.g. "amsix".
	Name string
	// ASN is the platform's AS number.
	ASN uint32
	// RouterID is the BGP identifier.
	RouterID netip.Addr
	// LocalPool is the per-router next-hop pool exposed to experiments.
	// Defaults to 127.65.0.0/16.
	LocalPool netip.Prefix
	// GlobalPool is the platform-wide external-neighbor pool, shared by
	// every router on the backbone. Required for backbone operation;
	// a private pool is created when nil.
	GlobalPool *Pool
	// Enforcer is the control-plane enforcement engine applied to
	// experiment announcements. Nil disables enforcement (used only by
	// the accept-all baseline in the Fig. 6b benchmark).
	Enforcer *policy.Engine
	// Monitor, when set, receives BMP-style monitoring events (peer
	// up/down, route monitoring, stats reports) from this router. The
	// emit path never blocks: a full queue drops with a counter.
	Monitor *telemetry.Emitter
	// Validator, when set, classifies every neighbor route exported to
	// experiments against the RPKI and tags it with a validation-state
	// large community (rov.go). Typically an *rpki.Client whose cache is
	// kept live over an RTR session.
	Validator rpki.Validator
	// Damping, when non-nil, applies RFC 2439 flap damping to routes
	// learned from neighbors: a flapping (neighbor, prefix) accumulates
	// penalty, and once suppressed it is withheld from experiment and
	// mesh export — while staying in the adj-RIB-in — until the penalty
	// decays below the reuse threshold.
	Damping *guard.DampingConfig
	// NeighborMRAI, when positive, sets the MinRouteAdvertisementInterval
	// on every neighbor session (overridable per neighbor via
	// NeighborConfig.MRAI) so rapid churn toward real neighbors
	// coalesces into one batched advertisement per interval.
	NeighborMRAI time.Duration
	// MaintainDefaultTable additionally maintains a best-path Loc-RIB,
	// the overhead a router serving production traffic would pay; vBGP
	// does not need it because experiments pick their own routes. This
	// is the third curve of Fig. 6a.
	MaintainDefaultTable bool
	// SnapshotInterval sets rib.Table auto-snapshotting on every table
	// the router creates: after this many table versions a compressed
	// read-only FIB snapshot is rebuilt, letting data-plane lookups run
	// lock-free. Zero applies DefaultSnapshotInterval; negative disables
	// snapshots entirely.
	SnapshotInterval int
	// Logf, when set, receives router event logs.
	Logf func(format string, args ...any)
}

// Neighbor is one BGP adjacency of the router: a directly connected
// external network (local), or an external neighbor of another PoP
// reachable over the backbone (remote).
type Neighbor struct {
	// Name identifies the neighbor ("AMS-IX-RS1", "remote:127.127.0.9").
	Name string
	// ID is the neighbor's platform-wide identifier, used as the
	// ADD-PATH path ID on experiment sessions and as the value of the
	// announcement-control communities.
	ID uint32
	// ASN is the neighbor's AS number.
	ASN uint32
	// Addr is the neighbor's interface address (local neighbors).
	Addr netip.Addr
	// Remote marks neighbors of other PoPs learned over the backbone.
	Remote bool
	// RouteServer marks transparent route-server sessions (RFC 7947):
	// relayed routes keep each member's next hop and arrive with
	// per-member ADD-PATH IDs, so the neighbor's table holds many paths
	// per prefix.
	RouteServer bool

	// LocalIP is the address from the router's local pool that
	// experiments use as this neighbor's next hop.
	LocalIP netip.Addr
	// LocalMAC is the MAC the LocalIP resolves to. It is derived from
	// GlobalIP, so the same neighbor has the same MAC at every PoP and
	// source-MAC attribution survives backbone forwarding.
	LocalMAC ethernet.MAC
	// GlobalIP is the neighbor's platform-wide pool address (Fig. 5).
	GlobalIP netip.Addr

	// Table holds the routes learned from this neighbor. Path next hops
	// are forwarding next hops: Addr for local neighbors, the remote
	// external neighbor's GlobalIP for remote ones.
	Table *rib.Table
	// AdjOut holds experiment announcements exported to this neighbor.
	AdjOut *rib.Table

	ifc     *netsim.Interface // attachment of local neighbors
	realMAC ethernet.MAC      // local neighbor's resolved MAC

	// sessMu guards session, which is replaced on every reconnect when
	// the neighbor is supervised.
	sessMu  sync.Mutex
	session *bgp.Session // nil for remote neighbors
	sup     *bgp.Supervisor
	// gr is the graceful-restart retention window (0 = GR off).
	gr time.Duration
	// staleTimer flushes still-stale paths when the restart window
	// lapses without End-of-RIB. Guarded by sessMu.
	staleTimer *time.Timer

	// routesGauge publishes Table occupancy (core_neighbor_routes).
	routesGauge *telemetry.Gauge
}

// Session returns the neighbor's current BGP session (nil for remote
// neighbors). Supervised neighbors get a fresh session on every
// reconnect, so callers must not cache the result.
func (n *Neighbor) Session() *bgp.Session {
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	return n.session
}

func (n *Neighbor) setSession(s *bgp.Session) {
	n.sessMu.Lock()
	n.session = s
	n.sessMu.Unlock()
}

// expConn is one connected experiment. The session is set once at
// construction; a reconnecting experiment gets a whole new expConn.
type expConn struct {
	name    string
	session *bgp.Session
	// gr is the graceful-restart retention window for this experiment's
	// routes after its session drops.
	gr time.Duration
	// tunnelIP is the experiment's address on the experiment LAN,
	// learned from its announcements' next hop.
	tunnelIP netip.Addr
}

// meshPeer is a backbone session to another vBGP router.
type meshPeer struct {
	name    string
	session *bgp.Session
	// addr is the remote router's backbone address.
	addr netip.Addr

	// mu guards session (replaced on reconnect) and staleTimer.
	mu  sync.Mutex
	sup *bgp.Supervisor
	// gr is the graceful-restart retention window (0 = GR off).
	gr time.Duration
	// resilient marks peers wired for re-establishment: either this
	// side supervises a redial, or the remote side redials into
	// AcceptBackbonePeerConn.
	resilient  bool
	staleTimer *time.Timer
}

// sess returns the peer's current BGP session.
func (p *meshPeer) sess() *bgp.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.session
}

func (p *meshPeer) setSess(s *bgp.Session) {
	p.mu.Lock()
	p.session = s
	p.mu.Unlock()
}

// Router is a vBGP instance.
type Router struct {
	cfg        Config
	localPool  *Pool
	globalPool *Pool

	mu           sync.Mutex
	ifcs         map[string]*netsim.Interface
	expIfc       *netsim.Interface
	expLANPrefix netip.Prefix
	bbIfc        *netsim.Interface
	neighbors    map[string]*Neighbor
	byLocalMAC   map[ethernet.MAC]*Neighbor
	byGlobalIP   map[netip.Addr]*Neighbor // local neighbors, for backbone ARP
	byRealMAC    map[ethernet.MAC]*Neighbor
	experiments  map[string]*expConn
	meshPeers    map[string]*meshPeer
	// expTargets records each experiment announcement's export policy.
	expTargets map[expRouteKey]targetSet
	// tunnelIPs records experiment tunnel addresses registered before
	// the BGP session connects.
	tunnelIPs map[string]netip.Addr
	// expStale holds per-experiment graceful-restart flush timers.
	expStale map[string]*time.Timer
	// rovStates records the validation state last stamped on each
	// neighbor route exported to experiments, so RevalidateExports can
	// re-export exactly the routes whose state flipped.
	rovStates map[rovKey]rpki.State

	// expRoutes maps experiment prefixes to the connected experiment (or
	// the backbone peer fronting it) for inbound forwarding.
	expRoutes *rib.Table
	// defaultTable is the optional router-managed best-path table.
	defaultTable *rib.Table

	// Data plane counters.
	Forwarded      atomic.Uint64
	DroppedNoMAC   atomic.Uint64
	DroppedNoRoute atomic.Uint64
	TTLExpired     atomic.Uint64

	// damper holds the RFC 2439 flap-damping state for neighbor routes
	// (nil when Config.Damping is nil).
	damper *guard.Damper
	// updatesProcessed counts control-plane updates handled on both the
	// neighbor and experiment paths — the watchdog's rate signal.
	updatesProcessed atomic.Uint64
	// shedTelemetry and shedAnnounce are the overload-shedding switches
	// the platform watchdog flips: degraded mode drops monitoring
	// emission, shedding mode additionally treats new experiment
	// announcements as withdrawals.
	shedTelemetry atomic.Bool
	shedAnnounce  atomic.Bool

	metrics routerMetrics
}

// DefaultSnapshotInterval is the table-version stride between FIB
// snapshot rebuilds when Config.SnapshotInterval is zero.
const DefaultSnapshotInterval = 1024

// NewRouter creates a vBGP router.
func NewRouter(cfg Config) *Router {
	if !cfg.LocalPool.IsValid() {
		cfg.LocalPool = DefaultLocalPool
	}
	gp := cfg.GlobalPool
	if gp == nil {
		gp = NewPool(DefaultGlobalPool)
	}
	r := &Router{
		cfg:         cfg,
		localPool:   NewPool(cfg.LocalPool),
		globalPool:  gp,
		ifcs:        make(map[string]*netsim.Interface),
		neighbors:   make(map[string]*Neighbor),
		byLocalMAC:  make(map[ethernet.MAC]*Neighbor),
		byGlobalIP:  make(map[netip.Addr]*Neighbor),
		byRealMAC:   make(map[ethernet.MAC]*Neighbor),
		experiments: make(map[string]*expConn),
		meshPeers:   make(map[string]*meshPeer),
		tunnelIPs:   make(map[string]netip.Addr),
		expStale:    make(map[string]*time.Timer),
		expRoutes:   rib.NewTable(cfg.Name + ":exp-routes"),
		metrics:     newRouterMetrics(cfg.Name),
	}
	r.expRoutes.EnableAutoSnapshot(r.snapshotEvery())
	if cfg.MaintainDefaultTable {
		r.defaultTable = rib.NewTable(cfg.Name + ":default")
		r.defaultTable.EnableAutoSnapshot(r.snapshotEvery())
	}
	if cfg.Damping != nil {
		dc := *cfg.Damping
		dc.OnReuse = r.reuseNeighborRoute
		r.damper = guard.NewDamper(dc)
	}
	return r
}

// snapshotEvery resolves Config.SnapshotInterval to the value handed to
// rib.Table.EnableAutoSnapshot: the default stride when unset, 0
// (disabled) when negative.
func (r *Router) snapshotEvery() int {
	switch {
	case r.cfg.SnapshotInterval < 0:
		return 0
	case r.cfg.SnapshotInterval == 0:
		return DefaultSnapshotInterval
	default:
		return r.cfg.SnapshotInterval
	}
}

// Name returns the router's PoP name.
func (r *Router) Name() string { return r.cfg.Name }

// ASN returns the platform AS number.
func (r *Router) ASN() uint32 { return r.cfg.ASN }

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("["+r.cfg.Name+"] "+format, args...)
	}
}

// MACForGlobalIP derives the platform-wide per-neighbor MAC from the
// neighbor's global pool address. Deriving rather than allocating makes
// the MAC identical at every PoP, so per-packet attribution (source-MAC
// rewriting, §3.2.2) and backbone next-hop resolution (§4.4) compose.
func MACForGlobalIP(gip netip.Addr) ethernet.MAC {
	raw := gip.As4()
	return ethernet.MAC{0x02, 0x7f, raw[0], raw[1], raw[2], raw[3]}
}

// AddInterface creates a router interface named name with the given
// address, attached to seg. The role selects the interface's duty:
// "experiment" (faces experiment tunnels), "backbone", or "neighbor".
func (r *Router) AddInterface(name, role string, addr netip.Prefix, seg *netsim.Segment) *netsim.Interface {
	mac := deriveIfcMAC(r.cfg.Name, name)
	ifc := netsim.NewInterface(r.cfg.Name+":"+name, mac)
	ifc.AddAddr(addr.Addr())
	ifc.SetHandler(r.handleFrame)
	switch role {
	case "experiment":
		ifc.SetARPResponder(r.answerExperimentARP)
	case "backbone":
		ifc.SetARPResponder(r.answerBackboneARP)
	}
	ifc.Attach(seg)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifcs[name] = ifc
	switch role {
	case "experiment":
		r.expIfc = ifc
		r.expLANPrefix = addr.Masked()
	case "backbone":
		r.bbIfc = ifc
	}
	return ifc
}

// deriveIfcMAC builds a stable unicast MAC from the router and interface
// names.
func deriveIfcMAC(router, ifc string) ethernet.MAC {
	h := fnv64(router + "/" + ifc)
	var m ethernet.MAC
	m[0] = 0x02
	m[1] = 0x10
	binary.BigEndian.PutUint32(m[2:], uint32(h))
	return m
}

func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Interface returns the named router interface, or nil.
func (r *Router) Interface(name string) *netsim.Interface {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ifcs[name]
}

// answerExperimentARP implements the proxy-ARP of Fig. 2b: requests for a
// neighbor's LocalIP are answered with the neighbor's LocalMAC.
func (r *Router) answerExperimentARP(target netip.Addr) (ethernet.MAC, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.neighbors {
		if n.LocalIP == target {
			return n.LocalMAC, true
		}
	}
	return ethernet.MAC{}, false
}

// answerBackboneARP implements Fig. 5: requests for the GlobalIP of one
// of this router's local neighbors are answered with the neighbor's MAC,
// steering backbone frames for that neighbor to this router.
func (r *Router) answerBackboneARP(target netip.Addr) (ethernet.MAC, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.byGlobalIP[target]; ok {
		return n.LocalMAC, true
	}
	return ethernet.MAC{}, false
}

// NeighborConfig configures one external BGP adjacency.
type NeighborConfig struct {
	// Name identifies the neighbor.
	Name string
	// ID is the neighbor's platform-wide identifier (community value and
	// experiment-session path ID). Must be unique across the platform
	// and nonzero.
	ID uint32
	// ASN is the neighbor's AS number. Zero accepts any (route server
	// sessions relay many origin ASes, but the session ASN is still the
	// route server's; use the server's ASN here).
	ASN uint32
	// Addr is the neighbor's address on the shared segment.
	Addr netip.Addr
	// Interface names the router interface the neighbor is reached
	// through.
	Interface string
	// Conn is the BGP transport to the neighbor.
	Conn net.Conn
	// RouteServer negotiates ADD-PATH reception for a transparent
	// route-server session.
	RouteServer bool
	// Redial, when set, makes the session resilient: after a transport
	// failure a bgp.Supervisor redials with exponential backoff and
	// re-establishes (RFC 4271 IdleHoldTime). Nil keeps the one-shot
	// behavior.
	Redial func() (net.Conn, error)
	// GracefulRestart, when nonzero, advertises the RFC 4724 capability
	// with this restart time and retains the neighbor's paths as stale
	// for the same window after a supervised session drops.
	GracefulRestart time.Duration
	// MRAI overrides the router's Config.NeighborMRAI for this session.
	MRAI time.Duration
}

// AddNeighbor registers a local external neighbor and starts its BGP
// session. The returned Neighbor is live once the session establishes.
func (r *Router) AddNeighbor(cfg NeighborConfig) (*Neighbor, error) {
	if cfg.ID == 0 {
		return nil, fmt.Errorf("core: neighbor %s needs a nonzero platform ID", cfg.Name)
	}
	r.mu.Lock()
	if _, dup := r.neighbors[cfg.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: duplicate neighbor %s", cfg.Name)
	}
	ifc := r.ifcs[cfg.Interface]
	if ifc == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: unknown interface %s", cfg.Interface)
	}
	localIP, err := r.localPool.Alloc()
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	globalIP, err := r.globalPool.Alloc()
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	n := &Neighbor{
		Name: cfg.Name, ID: cfg.ID, ASN: cfg.ASN, Addr: cfg.Addr,
		RouteServer: cfg.RouteServer,
		LocalIP:     localIP, GlobalIP: globalIP, LocalMAC: MACForGlobalIP(globalIP),
		Table:  rib.NewTable(r.cfg.Name + ":adj-in:" + cfg.Name),
		AdjOut: rib.NewTable(r.cfg.Name + ":adj-out:" + cfg.Name),
		ifc:    ifc,
		routesGauge: telemetry.Default().Gauge("core_neighbor_routes",
			telemetry.L("pop", r.cfg.Name), telemetry.L("neighbor", cfg.Name)),
	}
	n.Table.EnableAutoSnapshot(r.snapshotEvery())
	r.neighbors[cfg.Name] = n
	r.byLocalMAC[n.LocalMAC] = n
	r.byGlobalIP[globalIP] = n
	// Frames for the neighbor's MAC arrive on the experiment LAN and the
	// backbone; accept them there.
	if r.expIfc != nil {
		r.expIfc.AddMAC(n.LocalMAC)
	}
	if r.bbIfc != nil {
		r.bbIfc.AddMAC(n.LocalMAC)
	}
	r.mu.Unlock()

	mrai := cfg.MRAI
	if mrai <= 0 {
		mrai = r.cfg.NeighborMRAI
	}
	scfg := bgp.Config{
		LocalASN:  r.cfg.ASN,
		RemoteASN: cfg.ASN,
		LocalID:   r.cfg.RouterID,
		PeerName:  r.cfg.Name + ":" + cfg.Name,
		MRAI:      mrai,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		OnUpdate:  func(u *bgp.Update) { r.handleNeighborUpdate(n, u) },
		OnEstablished: func() {
			r.logf("neighbor %s established", n.Name)
			r.emit(telemetry.Event{Kind: telemetry.EventPeerUp, Peer: n.Name, PeerASN: n.ASN})
			r.resolveNeighborMAC(n)
			r.replayExperimentRoutes(n)
		},
		OnClose: func(err error) { r.neighborDown(n, err) },
		Logf:    r.cfg.Logf,
	}
	if cfg.RouteServer {
		scfg.AddPath = map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathReceive,
			bgp.IPv6Unicast: bgp.AddPathReceive,
		}
	}
	if cfg.GracefulRestart > 0 {
		n.gr = cfg.GracefulRestart
		scfg.GracefulRestart = &bgp.GracefulRestartConfig{RestartTime: cfg.GracefulRestart}
		scfg.OnEndOfRIB = func(fam bgp.AFISAFI) { r.neighborEndOfRIB(n, fam) }
	}
	if cfg.Redial != nil {
		n.sup = bgp.NewSupervisor(bgp.SupervisorConfig{
			Session:   scfg,
			Conn:      cfg.Conn,
			Dial:      cfg.Redial,
			OnSession: n.setSession,
			Logf:      r.cfg.Logf,
		})
		n.sup.Start()
	} else {
		sess := bgp.NewSession(cfg.Conn, scfg)
		n.setSession(sess)
		go sess.Run()
	}
	return n, nil
}

// resolveNeighborMAC learns the neighbor's real MAC so inbound frames can
// be attributed to it (source-MAC rewriting, §3.2.2).
func (r *Router) resolveNeighborMAC(n *Neighbor) {
	if n.ifc == nil || !n.Addr.IsValid() {
		return
	}
	mac, err := n.ifc.Resolve(n.ifc.PrimaryAddr(), n.Addr, arpTimeout)
	if err != nil {
		r.logf("ARP for neighbor %s (%s): %v", n.Name, n.Addr, err)
		return
	}
	r.mu.Lock()
	n.realMAC = mac
	r.byRealMAC[mac] = n
	r.mu.Unlock()
}

// SetNeighborRateLimit polices traffic the router forwards via one
// neighbor to at most pps packets per window of 2^windowShift
// nanoseconds, using a BPF program on the neighbor's egress interface —
// the per-neighbor rate limiting the paper's data-plane enforcement
// supports (§3.3). It returns the program so callers can inspect stats.
func (r *Router) SetNeighborRateLimit(name string, pps uint64, windowShift uint) (*bpf.Program, error) {
	n := r.Neighbor(name)
	if n == nil || n.ifc == nil {
		return nil, fmt.Errorf("core: no local neighbor %s", name)
	}
	prog, _, err := bpf.RateLimiter("rate-"+name, pps, windowShift)
	if err != nil {
		return nil, err
	}
	mac := n.realMAC
	nbr := n
	n.ifc.AddEgressFilter(netsim.FilterFunc(func(data []byte) netsim.Verdict {
		var fr ethernet.Frame
		if fr.DecodeFromBytes(data) != nil || fr.Type != ethernet.TypeIPv4 {
			return netsim.VerdictPass
		}
		// Only police frames actually destined to this neighbor (the
		// interface may be shared, e.g. an IXP fabric).
		_ = mac
		if fr.Dst != nbr.realMAC && !nbr.realMAC.IsZero() {
			return netsim.VerdictPass
		}
		if prog.Run(data) == bpf.VerdictPass {
			return netsim.VerdictPass
		}
		return netsim.VerdictDrop
	}))
	return prog, nil
}

// Neighbor returns the named neighbor, or nil.
func (r *Router) Neighbor(name string) *Neighbor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.neighbors[name]
}

// Neighbors returns all neighbors (local and remote).
func (r *Router) Neighbors() []*Neighbor {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		out = append(out, n)
	}
	return out
}

// RouteCount returns the total number of paths across all neighbor
// tables (the quantity Fig. 6a plots memory against).
func (r *Router) RouteCount() int {
	r.mu.Lock()
	neighbors := make([]*Neighbor, 0, len(r.neighbors))
	for _, n := range r.neighbors {
		neighbors = append(neighbors, n)
	}
	r.mu.Unlock()
	total := 0
	for _, n := range neighbors {
		total += n.Table.PathCount()
	}
	return total
}

// SetExperimentTunnelIP registers an experiment's tunnel address so the
// data plane can deliver traffic addressed to it (experiments may host
// services reachable on the tunnel IP, §4.6) even before the experiment
// announces prefixes.
func (r *Router) SetExperimentTunnelIP(name string, ip netip.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tunnelIPs[name] = ip
	if e := r.experiments[name]; e != nil {
		e.tunnelIP = ip
	}
}

// ExperimentRoutes exposes the experiment-prefix table (tests and the
// peering facade).
func (r *Router) ExperimentRoutes() *rib.Table { return r.expRoutes }

// Damper returns the router's flap damper, or nil when damping is off.
func (r *Router) Damper() *guard.Damper { return r.damper }

// UpdatesProcessed reports how many control-plane updates the router
// has handled (neighbor + experiment paths) — the watchdog samples it
// to derive the per-PoP update rate.
func (r *Router) UpdatesProcessed() uint64 { return r.updatesProcessed.Load() }

// SetTelemetryShed toggles dropping of monitoring emission, the first
// (cheapest) overload-shedding stage.
func (r *Router) SetTelemetryShed(on bool) { r.shedTelemetry.Store(on) }

// SetAnnouncementShed toggles treat-as-withdraw for new experiment
// announcements (RFC 7606-style at the platform level), the last
// shedding stage: withdrawals and established state keep flowing, but
// no new routes are installed or propagated until pressure recedes.
func (r *Router) SetAnnouncementShed(on bool) { r.shedAnnounce.Store(on) }

// ShedNonEstablishedExperiments closes experiment sessions that are
// not (or no longer) Established — half-open connections holding
// goroutines and buffers a PoP under pressure cannot spare. Returns how
// many sessions were closed.
func (r *Router) ShedNonEstablishedExperiments() int {
	r.mu.Lock()
	var victims []*expConn
	for _, e := range r.experiments {
		if e.session != nil && e.session.State() != bgp.StateEstablished {
			victims = append(victims, e)
		}
	}
	r.mu.Unlock()
	for _, e := range victims {
		r.logf("shedding: closing non-established experiment session %s", e.name)
		e.session.Close()
	}
	r.metrics.shedSessions.Add(uint64(len(victims)))
	return len(victims)
}

// reuseNeighborRoute is the damper's OnReuse callback: the penalty has
// decayed below the reuse threshold, so the adj-RIB-in copy retained
// through suppression is exported again.
func (r *Router) reuseNeighborRoute(key guard.Key) {
	r.mu.Lock()
	n := r.neighbors[key.Peer]
	r.mu.Unlock()
	if n == nil {
		return
	}
	n.Table.MarkDamped(key.Prefix, key.Peer, false)
	if best := n.Table.Best(key.Prefix); best != nil {
		r.logf("damping: %s reusable again, re-exporting", key)
		r.exportToExperiments(n, key.Prefix, best.Attrs, false)
		r.exportToMesh(n, key.Prefix, best.Attrs, false)
	}
}

// DefaultTable returns the router-managed best-path table, or nil when
// MaintainDefaultTable is off.
func (r *Router) DefaultTable() *rib.Table { return r.defaultTable }

// InjectRoute installs a route into a neighbor's table directly, without
// a BGP session — the deployment variant §7.2 describes ("a centralized
// controller decides which routes to use and injects them into tables at
// routers", the design vBGP inspired at Facebook). The data plane's
// per-packet MAC signaling then selects among injected routes exactly as
// it does among learned ones. The injected route is also exported to
// experiments.
func (r *Router) InjectRoute(neighborName string, prefix netip.Prefix, attrs *bgp.PathAttrs) error {
	n := r.Neighbor(neighborName)
	if n == nil {
		return fmt.Errorf("core: no neighbor %s", neighborName)
	}
	stored := attrs.Clone()
	if prefix.Addr().Is4() && !n.RouteServer && n.Addr.IsValid() {
		stored.NextHop = n.Addr
	}
	n.Table.Add(&rib.Path{
		Prefix: prefix, Peer: n.Name, Attrs: stored,
		EBGP: true, Seq: rib.NextSeq(), PeerAddr: n.Addr,
	})
	if r.defaultTable != nil {
		r.defaultTable.Add(&rib.Path{Prefix: prefix, Peer: n.Name, Attrs: stored.Clone(), Seq: rib.NextSeq()})
	}
	r.exportToExperiments(n, prefix, stored, false)
	r.exportToMesh(n, prefix, stored, false)
	return nil
}

// RemoveInjectedRoute withdraws a controller-injected route.
func (r *Router) RemoveInjectedRoute(neighborName string, prefix netip.Prefix) error {
	n := r.Neighbor(neighborName)
	if n == nil {
		return fmt.Errorf("core: no neighbor %s", neighborName)
	}
	if n.Table.Withdraw(prefix, n.Name, 0) == nil {
		return fmt.Errorf("core: no injected route for %s via %s", prefix, neighborName)
	}
	if r.defaultTable != nil {
		r.defaultTable.Withdraw(prefix, n.Name, 0)
	}
	if best := n.Table.Best(prefix); best != nil {
		r.exportToExperiments(n, prefix, best.Attrs, false)
		r.exportToMesh(n, prefix, best.Attrs, false)
	} else {
		r.exportToExperiments(n, prefix, nil, true)
		r.exportToMesh(n, prefix, nil, true)
	}
	return nil
}
