package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/policy"
)

// announceV6 sends an IPv6 route from a test peer via MP_REACH.
func (p *testPeer) announceV6(prefix string, asns []uint32, nexthop string) {
	p.t.Helper()
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:    []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		MPNextHop: ip(nexthop),
	}
	u := &bgp.Update{Attrs: attrs, MPReach: []bgp.NLRI{{Prefix: pfx(prefix)}}}
	if err := p.sess.Send(u); err != nil {
		p.t.Fatalf("announce v6: %v", err)
	}
}

// v6routes tracks MP_REACH/MP_UNREACH state at the peer.
func (p *testPeer) v6routes() map[bgp.NLRI]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[bgp.NLRI]string)
	for _, u := range p.updates {
		for _, w := range u.MPUnreach {
			delete(out, w)
		}
		for _, n := range u.MPReach {
			out[n] = u.Attrs.MPNextHop.String()
		}
	}
	return out
}

func TestIPv6ControlPlaneDelegation(t *testing.T) {
	f := newFig1(t)
	// N1 announces an IPv6 prefix over MP-BGP.
	f.n1.announceV6("2001:db8:1000::/36", []uint32{n1ASN}, "2001:db8::1")
	waitFor(t, "v6 route in N1's table", func() bool {
		return f.nbr1.Table.PathCount() == 1
	})

	x1 := f.connectExperiment(t, "X1", true)
	waitFor(t, "v6 route at experiment", func() bool {
		_, ok := x1.v6routes()[bgp.NLRI{Prefix: pfx("2001:db8:1000::/36"), ID: 1}]
		return ok
	})
	// The next hop exposed to the experiment is the per-neighbor v6
	// local address derived from the neighbor's global IP.
	nh := x1.v6routes()[bgp.NLRI{Prefix: pfx("2001:db8:1000::/36"), ID: 1}]
	if nh != localIP6(f.nbr1.GlobalIP).String() {
		t.Errorf("v6 next hop %s, want %s", nh, localIP6(f.nbr1.GlobalIP))
	}

	// Withdrawal propagates via MP_UNREACH with the same path ID.
	wd := &bgp.Update{Attrs: &bgp.PathAttrs{}, MPUnreach: []bgp.NLRI{{Prefix: pfx("2001:db8:1000::/36")}}}
	if err := f.n1.sess.Send(wd); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v6 withdraw at experiment", func() bool {
		_, ok := x1.v6routes()[bgp.NLRI{Prefix: pfx("2001:db8:1000::/36"), ID: 1}]
		return !ok
	})
}

func TestIPv6ExperimentAnnouncement(t *testing.T) {
	f := newFig1(t)
	// Re-register X1 with a v6 allocation.
	f.engine.Register(&policy.Experiment{
		Name:     "X1",
		Prefixes: []netip.Prefix{pfx("10.1.0.0/24"), pfx("2804:269c::/32")},
		ASNs:     []uint32{expASN},
	})

	x1 := f.connectExperiment(t, "X1", true)
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:    []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{expASN}}},
		MPNextHop: ip("fd00::1"),
	}
	u := &bgp.Update{Attrs: attrs, MPReach: []bgp.NLRI{{Prefix: pfx("2804:269c::/32")}}}
	if err := x1.sess.Send(u); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v6 announcement at N1", func() bool {
		_, ok := f.n1.v6routes()[bgp.NLRI{Prefix: pfx("2804:269c::/32")}]
		return ok
	})
	// Hijacking foreign v6 space is still rejected.
	u2 := &bgp.Update{Attrs: attrs, MPReach: []bgp.NLRI{{Prefix: pfx("2001:4860::/32")}}}
	if err := x1.sess.Send(u2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := f.n1.v6routes()[bgp.NLRI{Prefix: pfx("2001:4860::/32")}]; ok {
		t.Fatal("v6 hijack propagated")
	}
}
