// Package core implements vBGP, the paper's primary contribution: a
// framework that virtualizes the data and control planes of a BGP edge
// router and delegates them to multiple parallel experiments while
// interposing security enforcement on both planes (paper §3).
//
// A Router terminates BGP sessions with external neighbors, maintains one
// routing table per neighbor, rewrites the next hop of every learned
// route to a private per-neighbor IP address, and exports all routes to
// each experiment over a single ADD-PATH BGP session. Experiments select
// the route for each packet by addressing the frame to the per-neighbor
// MAC that the private next hop resolves to (§3.2.2, Fig. 2). Across the
// platform backbone, a global pool assigns each external neighbor a
// platform-wide IP so the same mechanism chains hop by hop (§4.4,
// Fig. 5).
package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
)

// Pool allocates IPv4 addresses sequentially from a prefix. vBGP uses two
// pools: a per-router local pool (conventionally 127.65.0.0/16) whose
// addresses are handed to experiments as next hops, and a platform-wide
// global pool (conventionally 127.127.0.0/16) that names each external
// neighbor uniquely across all PoPs.
type Pool struct {
	prefix netip.Prefix

	mu   sync.Mutex
	next uint32
}

// NewPool creates an allocator over an IPv4 prefix. The network address
// itself is never allocated.
func NewPool(prefix netip.Prefix) *Pool {
	if prefix.Addr().Is6() {
		panic("core: pools are IPv4")
	}
	return &Pool{prefix: prefix.Masked()}
}

// Prefix returns the pool's covering prefix.
func (p *Pool) Prefix() netip.Prefix { return p.prefix }

// Contains reports whether addr was carved from this pool's prefix.
func (p *Pool) Contains(addr netip.Addr) bool {
	return addr.Is4() && p.prefix.Contains(addr)
}

// Alloc returns the next unused address.
func (p *Pool) Alloc() (netip.Addr, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	hostBits := 32 - p.prefix.Bits()
	if hostBits < 32 && p.next >= 1<<hostBits {
		return netip.Addr{}, fmt.Errorf("core: pool %s exhausted", p.prefix)
	}
	base := binary.BigEndian.Uint32(p.prefix.Addr().AsSlice())
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], base+p.next)
	return netip.AddrFrom4(raw), nil
}

// MustAlloc is Alloc, panicking on exhaustion. For configuration paths
// where pool sizing is static.
func (p *Pool) MustAlloc() netip.Addr {
	a, err := p.Alloc()
	if err != nil {
		panic(err)
	}
	return a
}

// Default pool prefixes from the paper's examples.
var (
	// DefaultLocalPool is the per-router next-hop pool (Fig. 2).
	DefaultLocalPool = netip.MustParsePrefix("127.65.0.0/16")
	// DefaultGlobalPool is the platform-wide neighbor pool (Fig. 5).
	DefaultGlobalPool = netip.MustParsePrefix("127.127.0.0/16")
)
