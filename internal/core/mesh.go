package core

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

// BackbonePeerConfig configures one backbone mesh session.
type BackbonePeerConfig struct {
	// Name is the remote router's PoP name.
	Name string
	// Addr is the peer router's backbone address, used as the next hop
	// for experiment routes relayed from that PoP.
	Addr netip.Addr
	// Conn is the initial BGP transport.
	Conn net.Conn
	// Redial, when set, supervises the session: transport failures are
	// followed by redials with exponential backoff.
	Redial func() (net.Conn, error)
	// Resilient marks a passive peer that re-establishes by the remote
	// side redialing into AcceptBackbonePeerConn; state is retained
	// across failures as for a supervised peer.
	Resilient bool
	// GracefulRestart, when nonzero, advertises RFC 4724 and retains
	// backbone-learned state as stale for this window after a drop.
	GracefulRestart time.Duration
}

// AddBackbonePeer connects this router to another vBGP router over the
// backbone with an iBGP-style session (same ASN, ADD-PATH in both
// directions). The session is one-shot: transport loss tears the
// peer's state down. Use AddBackbonePeerConfig for resilient peers.
func (r *Router) AddBackbonePeer(name string, remoteAddr netip.Addr, conn net.Conn) error {
	return r.AddBackbonePeerConfig(BackbonePeerConfig{Name: name, Addr: remoteAddr, Conn: conn})
}

// AddBackbonePeerConfig registers a backbone mesh peer per cfg.
func (r *Router) AddBackbonePeerConfig(cfg BackbonePeerConfig) error {
	r.mu.Lock()
	if _, dup := r.meshPeers[cfg.Name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("core: duplicate backbone peer %s", cfg.Name)
	}
	p := &meshPeer{
		name: cfg.Name, addr: cfg.Addr,
		gr:        cfg.GracefulRestart,
		resilient: cfg.Redial != nil || cfg.Resilient,
	}
	r.meshPeers[cfg.Name] = p
	r.mu.Unlock()

	scfg := r.meshSessionConfig(p)
	if cfg.Redial != nil {
		p.sup = bgp.NewSupervisor(bgp.SupervisorConfig{
			Session:   scfg,
			Conn:      cfg.Conn,
			Dial:      cfg.Redial,
			OnSession: p.setSess,
			Logf:      r.cfg.Logf,
		})
		p.sup.Start()
		return nil
	}
	sess := bgp.NewSession(cfg.Conn, scfg)
	p.setSess(sess)
	go sess.Run()
	return nil
}

// AcceptBackbonePeerConn re-attaches a known backbone peer over a fresh
// transport — the passive half of mesh resilience: the remote router's
// supervisor redials, this side accepts and replaces the dead session.
func (r *Router) AcceptBackbonePeerConn(name string, conn net.Conn) error {
	r.mu.Lock()
	p := r.meshPeers[name]
	r.mu.Unlock()
	if p == nil {
		return fmt.Errorf("core: unknown backbone peer %s", name)
	}
	if old := p.sess(); old != nil {
		// No-op when the old session already died (the usual case).
		old.Close()
	}
	sess := bgp.NewSession(conn, r.meshSessionConfig(p))
	p.setSess(sess)
	go sess.Run()
	return nil
}

// meshSessionConfig builds the (re)usable session config for a mesh
// peer. The callbacks read the peer's current session, which the
// supervisor or accept path updates before the session runs.
func (r *Router) meshSessionConfig(p *meshPeer) bgp.Config {
	scfg := bgp.Config{
		LocalASN:  r.cfg.ASN,
		RemoteASN: r.cfg.ASN,
		LocalID:   r.cfg.RouterID,
		PeerName:  r.cfg.Name + ":mesh:" + p.name,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSendReceive,
			bgp.IPv6Unicast: bgp.AddPathSendReceive,
		},
		OnUpdate: func(u *bgp.Update) { r.handleMeshUpdate(p, u) },
		OnEstablished: func() {
			r.emit(telemetry.Event{Kind: telemetry.EventPeerUp, Peer: "mesh:" + p.name, PeerASN: r.cfg.ASN})
			r.dumpToMeshPeer(p)
		},
		OnClose: func(err error) { r.meshPeerDown(p, err) },
		Logf:    r.cfg.Logf,
	}
	if p.gr > 0 {
		scfg.GracefulRestart = &bgp.GracefulRestartConfig{RestartTime: p.gr}
		scfg.OnEndOfRIB = func(fam bgp.AFISAFI) { r.meshPeerEndOfRIB(p, fam) }
	}
	return scfg
}

// dumpToMeshPeer replays local state to a newly established backbone
// peer: every local neighbor's routes (next hop GlobalIP, path ID = the
// neighbor's platform ID) and every local experiment announcement.
func (r *Router) dumpToMeshPeer(p *meshPeer) {
	r.logf("backbone peer %s established", p.name)
	s := p.sess()
	if s == nil {
		return
	}
	r.mu.Lock()
	neighbors := r.localNeighborsLocked()
	targets := make(map[expRouteKey]targetSet, len(r.expTargets))
	for k, v := range r.expTargets {
		targets[k] = v
	}
	r.mu.Unlock()

	for _, n := range neighbors {
		type entry struct {
			prefix netip.Prefix
			attrs  *bgp.PathAttrs
		}
		var entries []entry
		n.Table.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
			for _, pt := range paths {
				entries = append(entries, entry{prefix, pt.Attrs})
			}
			return true
		})
		for start := 0; start < len(entries); start += dumpBlockSize {
			end := min(start+dumpBlockSize, len(entries))
			us := make([]*bgp.Update, 0, end-start)
			for _, en := range entries[start:end] {
				us = append(us, r.meshUpdateForNeighborRoute(n, en.prefix, en.attrs))
			}
			if err := s.SendBatch(us); err != nil {
				r.logf("mesh dump to %s: %v", p.name, err)
				return
			}
		}
	}

	// Local experiment routes.
	type expEntry struct {
		prefix netip.Prefix
		owner  string
		id     bgp.PathID
		attrs  *bgp.PathAttrs
	}
	var expEntries []expEntry
	r.expRoutes.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		for _, pt := range paths {
			if !isMeshOwner(pt.Peer) {
				expEntries = append(expEntries, expEntry{prefix, pt.Peer, pt.ID, pt.Attrs})
			}
		}
		return true
	})
	r.mu.Lock()
	bb := r.bbIfc
	lan := r.expLANPrefix
	r.mu.Unlock()
	if bb == nil {
		return
	}
	// Relay the experiment-LAN prefix so tunnel-address traffic (probe
	// replies, hosted services) arriving at other PoPs routes back here.
	// Whitelisting the reserved internal-only pseudo-neighbor keeps it
	// off the Internet.
	if lan.IsValid() {
		out := &bgp.PathAttrs{
			Origin: bgp.OriginIGP, HasOrigin: true,
			ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{r.cfg.ASN}}},
			NextHop:     bb.PrimaryAddr(),
			Communities: []bgp.Community{AnnounceTo(r.cfg.ASN, internalOnlyID)},
		}
		u := &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{{Prefix: lan, ID: meshExpFlag}}}
		if err := s.Send(u); err != nil {
			r.logf("mesh lan relay to %s: %v", p.name, err)
			return
		}
	}
	expUpdates := make([]*bgp.Update, 0, len(expEntries))
	for _, en := range expEntries {
		out := en.attrs.Clone()
		ts := targets[expRouteKey{en.prefix, en.owner, en.id}]
		out.Communities = append(out.Communities, ts.controlCommunities(r.cfg.ASN)...)
		nlri := bgp.NLRI{Prefix: en.prefix, ID: en.id | meshExpFlag}
		var u *bgp.Update
		if en.prefix.Addr().Is6() {
			out.MPNextHop = bbAddr6(bb.PrimaryAddr())
			out.NextHop = netip.Addr{}
			u = &bgp.Update{Attrs: out, MPReach: []bgp.NLRI{nlri}}
		} else {
			out.NextHop = bb.PrimaryAddr()
			u = &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{nlri}}
		}
		expUpdates = append(expUpdates, u)
	}
	for start := 0; start < len(expUpdates); start += dumpBlockSize {
		end := min(start+dumpBlockSize, len(expUpdates))
		if err := s.SendBatch(expUpdates[start:end]); err != nil {
			r.logf("mesh dump to %s: %v", p.name, err)
			return
		}
	}
	// End-of-RIB after the full dump (RFC 4724 §3) so a peer retaining
	// this router's state across a restart can sweep what was not
	// re-announced.
	for _, fam := range []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast} {
		if err := s.SendEndOfRIB(fam); err != nil {
			return
		}
	}
}

func (r *Router) meshUpdateForNeighborRoute(n *Neighbor, prefix netip.Prefix, attrs *bgp.PathAttrs) *bgp.Update {
	nlri := bgp.NLRI{Prefix: prefix, ID: bgp.PathID(n.ID)}
	out := attrs.Clone()
	if prefix.Addr().Is6() {
		out.MPNextHop = localIP6(n.GlobalIP)
		out.NextHop = netip.Addr{}
		return &bgp.Update{Attrs: out, MPReach: []bgp.NLRI{nlri}}
	}
	out.NextHop = n.GlobalIP
	return &bgp.Update{Attrs: out, NLRI: []bgp.NLRI{nlri}}
}

// handleMeshUpdate processes routes from another PoP. Routes whose next
// hop is in the platform's global pool describe a remote PoP's external
// neighbor: the router materializes a remote Neighbor (local pool IP,
// derived MAC, own table) and re-exports the route to its experiments —
// the hop-by-hop rewrite of §4.4. Other routes are experiment
// announcements relayed for export through this PoP's neighbors.
func (r *Router) handleMeshUpdate(p *meshPeer, u *bgp.Update) {
	for _, w := range u.Withdrawn {
		r.withdrawMeshRoute(p, w)
	}
	for _, w := range u.MPUnreach {
		r.withdrawMeshRoute(p, w)
	}
	process := func(nlri bgp.NLRI, attrs *bgp.PathAttrs, v6 bool) {
		if attrs == nil {
			return
		}
		nh := attrs.NextHop
		if v6 {
			// v6 relays carry the identity in the mapped suffix.
			nh = v6Embedded(attrs.MPNextHop)
		}
		if nlri.ID&meshExpFlag == 0 && r.globalPool.Contains(nh) {
			r.handleRemoteNeighborRoute(p, nlri, attrs, nh)
			return
		}
		r.handleRelayedExperimentRoute(p, nlri, attrs, nh)
	}
	for _, nlri := range u.NLRI {
		process(nlri, u.Attrs, false)
	}
	for _, nlri := range u.MPReach {
		process(nlri, u.Attrs, true)
	}
}

// v6Embedded recovers the v4 identity embedded in a relay v6 next hop.
func v6Embedded(a netip.Addr) netip.Addr {
	if !a.IsValid() || !a.Is6() {
		return netip.Addr{}
	}
	raw := a.As16()
	return netip.AddrFrom4([4]byte(raw[12:16]))
}

// handleRemoteNeighborRoute stores a route from a remote PoP's external
// neighbor and exports it to local experiments.
func (r *Router) handleRemoteNeighborRoute(p *meshPeer, nlri bgp.NLRI, attrs *bgp.PathAttrs, globalIP netip.Addr) {
	n, err := r.remoteNeighbor(globalIP, uint32(nlri.ID), attrs.FirstASN())
	if err != nil {
		r.logf("remote neighbor for %s: %v", globalIP, err)
		return
	}
	stored := attrs.Clone()
	if nlri.Prefix.Addr().Is4() {
		stored.NextHop = globalIP // forwarding next hop across the backbone
	}
	r.metrics.backboneRewrites.Inc()
	n.Table.Add(&rib.Path{
		Prefix: nlri.Prefix, Peer: n.Name, Attrs: stored,
		EBGP: true, Seq: rib.NextSeq(), PeerAddr: globalIP,
	})
	r.syncNeighborRoutesGauge(n)
	if r.defaultTable != nil {
		r.defaultTable.Add(&rib.Path{
			Prefix: nlri.Prefix, Peer: n.Name, Attrs: stored.Clone(),
			Seq: rib.NextSeq(), PeerAddr: globalIP,
		})
	}
	r.exportToExperiments(n, nlri.Prefix, attrs, false)
}

// remoteNeighbor finds or creates the remote-neighbor entry for a global
// pool address.
func (r *Router) remoteNeighbor(globalIP netip.Addr, id uint32, asn uint32) (*Neighbor, error) {
	name := "remote:" + globalIP.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.neighbors[name]; ok {
		return n, nil
	}
	localIP, err := r.localPool.Alloc()
	if err != nil {
		return nil, err
	}
	n := &Neighbor{
		Name: name, ID: id, ASN: asn, Remote: true,
		LocalIP: localIP, GlobalIP: globalIP, LocalMAC: MACForGlobalIP(globalIP),
		Table:  rib.NewTable(r.cfg.Name + ":adj-in:" + name),
		AdjOut: rib.NewTable(r.cfg.Name + ":adj-out:" + name),
		routesGauge: telemetry.Default().Gauge("core_neighbor_routes",
			telemetry.L("pop", r.cfg.Name), telemetry.L("neighbor", name)),
	}
	n.Table.EnableAutoSnapshot(r.snapshotEvery())
	r.neighbors[name] = n
	r.byLocalMAC[n.LocalMAC] = n
	if r.expIfc != nil {
		r.expIfc.AddMAC(n.LocalMAC)
	}
	return n, nil
}

// handleRelayedExperimentRoute exports an experiment route announced at
// another PoP through this PoP's neighbors, honoring the control
// communities, and records it for inbound forwarding across the
// backbone.
func (r *Router) handleRelayedExperimentRoute(p *meshPeer, nlri bgp.NLRI, attrs *bgp.PathAttrs, remoteBB netip.Addr) {
	owner := "mesh:" + p.name
	id := nlri.ID &^ meshExpFlag
	targets, rest := parseTargets(r.cfg.ASN, attrs.Communities)
	cleaned := attrs.Clone()
	cleaned.Communities = rest
	if nlri.Prefix.Addr().Is4() {
		cleaned.NextHop = remoteBB
	}
	r.expRoutes.Add(&rib.Path{
		Prefix: nlri.Prefix, ID: id, Peer: owner, Attrs: cleaned, Seq: rib.NextSeq(),
	})
	r.mu.Lock()
	if r.expTargets == nil {
		r.expTargets = make(map[expRouteKey]targetSet)
	}
	r.expTargets[expRouteKey{nlri.Prefix, owner, id}] = targets
	r.mu.Unlock()
	r.syncPrefix(nlri.Prefix)
}

// withdrawMeshRoute handles a withdrawal from a backbone peer.
func (r *Router) withdrawMeshRoute(p *meshPeer, w bgp.NLRI) {
	if w.ID&meshExpFlag != 0 {
		// Experiment route version withdrawn at its home PoP.
		r.withdrawExperimentRoute("mesh:"+p.name, w.Prefix, w.ID&^meshExpFlag, false)
		return
	}
	// Remote-neighbor withdrawal: the path ID names the neighbor.
	if w.ID != 0 {
		r.mu.Lock()
		var n *Neighbor
		for _, cand := range r.neighbors {
			if cand.Remote && cand.ID == uint32(w.ID) {
				n = cand
				break
			}
		}
		r.mu.Unlock()
		if n != nil && n.Table.Withdraw(w.Prefix, n.Name, 0) != nil {
			if r.defaultTable != nil {
				r.defaultTable.Withdraw(w.Prefix, n.Name, 0)
			}
			r.exportToExperiments(n, w.Prefix, nil, true)
		}
		return
	}
	// Experiment route withdrawal relayed without a version ID.
	r.withdrawExperimentRoute("mesh:"+p.name, w.Prefix, 0, false)
}

// meshPeerDown handles a dropped backbone session. Resilient peers
// (supervised, or re-accepted by the remote side) keep their mesh-peer
// registration so the next session slots in; with graceful restart
// negotiated their learned state is additionally retained as stale
// until the replay's End-of-RIB or the restart window. Non-resilient
// peers get the original full teardown.
func (r *Router) meshPeerDown(p *meshPeer, err error) {
	sess := p.sess()
	if sess != nil && sess.State() == bgp.StateEstablished {
		// A replacement session is already live (late close callback
		// from a superseded session): nothing to tear down.
		return
	}
	resilient := p.resilient && err != nil
	graceful := resilient && p.gr > 0 && sess != nil && sess.GracefulRestartNegotiated()
	r.mu.Lock()
	if !resilient {
		delete(r.meshPeers, p.name)
	}
	var remotes []*Neighbor
	for _, n := range r.neighbors {
		if n.Remote {
			remotes = append(remotes, n)
		}
	}
	r.mu.Unlock()
	if graceful {
		r.logf("backbone peer %s down: %v (graceful restart, retaining state for %s)", p.name, err, p.gr)
		r.emit(telemetry.Event{
			Kind: telemetry.EventPeerDown, Peer: "mesh:" + p.name, PeerASN: r.cfg.ASN,
			Reason: closeReason(err) + " (graceful restart)",
		})
		if r.markRemoteNeighborsStale(p) > 0 {
			r.armMeshFlush(p)
		}
		return
	}
	r.logf("backbone peer %s down: %v", p.name, err)
	r.emit(telemetry.Event{Kind: telemetry.EventPeerDown, Peer: "mesh:" + p.name, PeerASN: r.cfg.ASN, Reason: closeReason(err)})
	// Without per-peer ownership of remote neighbors we withdraw all
	// remote tables; peers still up will re-announce (route refresh).
	for _, n := range remotes {
		removed := n.Table.WithdrawPeer(n.Name)
		col := r.newCollector()
		for _, pt := range removed {
			col.exportToExperiments(n, pt.Prefix, nil, true)
		}
		col.flush()
	}
	owner := "mesh:" + p.name
	var prefixes []netip.Prefix
	r.expRoutes.Walk(func(prefix netip.Prefix, paths []*rib.Path) bool {
		for _, pt := range paths {
			if pt.Peer == owner {
				prefixes = append(prefixes, prefix)
			}
		}
		return true
	})
	for _, prefix := range prefixes {
		for _, pt := range r.expRoutes.Paths(prefix) {
			if pt.Peer == owner {
				r.withdrawExperimentRoute(owner, prefix, pt.ID, false)
			}
		}
	}
}
