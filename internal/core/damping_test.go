package core

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/guard"
)

// TestDampedRouteWithheldButRetained pins the RFC 2439 contract on the
// neighbor path: a suppressed route is withdrawn from experiments but
// stays in the adj-RIB-in, and is re-exported automatically once its
// penalty decays below the reuse threshold.
func TestDampedRouteWithheldButRetained(t *testing.T) {
	f := newFig1With(t, func(cfg *Config) {
		cfg.Damping = &guard.DampingConfig{HalfLife: 100 * time.Millisecond}
	})
	x1 := f.connectExperiment(t, "X1", true)

	prefix := "192.168.9.0/24"
	nlri := bgp.NLRI{Prefix: pfx(prefix), ID: 1}
	f.n1.announce(prefix, []uint32{n1ASN}, "192.0.2.1")
	waitFor(t, "route exported to experiment", func() bool {
		_, ok := x1.routes()[nlri]
		return ok
	})

	// Flap until suppressed: withdraw+announce twice is 4 flaps, past
	// the default 3000 threshold.
	for i := 0; i < 2; i++ {
		f.n1.withdraw(prefix)
		f.n1.announce(prefix, []uint32{n1ASN}, "192.0.2.1")
	}
	waitFor(t, "suppressed route withdrawn from experiment", func() bool {
		_, ok := x1.routes()[nlri]
		return !ok
	})
	if !f.router.Damper().Suppressed(guard.Key{Peer: "N1", Prefix: pfx(prefix)}) {
		t.Fatal("damper does not report the route suppressed")
	}
	// The announcement survives in the adj-RIB-in, marked damped — it
	// must be reusable without the neighbor re-announcing.
	if n := f.nbr1.Table.PathCount(); n != 1 {
		t.Fatalf("adj-RIB-in path count = %d, want 1 (suppression must not evict)", n)
	}
	if n := f.nbr1.Table.DampedCount(); n != 1 {
		t.Fatalf("damped paths in adj-RIB-in = %d, want 1", n)
	}

	// Decay releases the route and the reuse callback re-exports the
	// retained copy — no neighbor activity required.
	waitFor(t, "route re-exported after penalty decay", func() bool {
		_, ok := x1.routes()[nlri]
		return ok
	})
	if f.nbr1.Table.DampedCount() != 0 {
		t.Fatal("damped mark not cleared on reuse")
	}
	if f.router.Damper().Suppressed(guard.Key{Peer: "N1", Prefix: pfx(prefix)}) {
		t.Fatal("damper still reports suppression after reuse")
	}
}

// TestShedAnnouncementsTreatAsWithdraw pins the last shedding stage:
// with announcement shedding on, a new experiment announcement is not
// installed (treat-as-withdraw) while withdrawals keep working; turning
// shedding off restores normal operation.
func TestShedAnnouncementsTreatAsWithdraw(t *testing.T) {
	f := newFig1(t)
	x1 := f.connectExperiment(t, "X1", true)

	x1.announceV("10.1.0.0/24", 1, []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement installed", func() bool {
		return f.router.ExperimentRoutes().PathCount() == 1
	})

	f.router.SetAnnouncementShed(true)
	x1.announceV("10.1.0.0/24", 2, []uint32{expASN}, "100.65.0.1")
	// The shed announcement must not appear; give the pipeline a moment.
	time.Sleep(100 * time.Millisecond)
	if n := f.router.ExperimentRoutes().PathCount(); n != 1 {
		t.Fatalf("expRoutes path count = %d under shedding, want 1", n)
	}

	f.router.SetAnnouncementShed(false)
	x1.announceV("10.1.0.0/24", 2, []uint32{expASN}, "100.65.0.1")
	waitFor(t, "announcement installed after shedding lifted", func() bool {
		return f.router.ExperimentRoutes().PathCount() == 2
	})
}
