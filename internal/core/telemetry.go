package core

import (
	"time"

	"repro/internal/telemetry"
)

// routerMetrics holds the per-PoP counters a router resolves once in
// NewRouter. Each series carries the pop label so a multi-PoP platform
// (one process, many routers) stays distinguishable in one registry.
type routerMetrics struct {
	// tableSelections counts data-plane packets whose destination MAC
	// selected a per-neighbor table (§3.2.2's per-packet route choice).
	tableSelections *telemetry.Counter
	// backboneForwards counts frames sent across the backbone (remote
	// neighbor egress and inbound relay to the owning PoP).
	backboneForwards *telemetry.Counter
	// macRewrites counts inbound frames whose source MAC was rewritten
	// to a per-neighbor attribution MAC.
	macRewrites *telemetry.Counter
	// nexthopRewrites counts neighbor routes re-advertised to
	// experiments with the next hop rewritten to a local pool address.
	nexthopRewrites *telemetry.Counter
	// backboneRewrites counts routes from other PoPs re-rewritten into
	// local per-neighbor state (the hop-by-hop rewrite of §4.4).
	backboneRewrites *telemetry.Counter
	// addPathExports counts UPDATEs sent to experiment sessions carrying
	// platform ADD-PATH identifiers.
	addPathExports *telemetry.Counter
	// Overload-shedding counters (guard_* namespace: the actions belong
	// to the guard layer even though the router executes them).
	shedTelemetry     *telemetry.Counter
	shedAnnouncements *telemetry.Counter
	shedSessions      *telemetry.Counter
}

func newRouterMetrics(pop string) routerMetrics {
	reg := telemetry.Default()
	pl := telemetry.L("pop", pop)
	return routerMetrics{
		tableSelections:  reg.Counter("core_table_selections_total", pl),
		backboneForwards: reg.Counter("core_backbone_forwards_total", pl),
		macRewrites:      reg.Counter("core_mac_rewrites_total", pl),
		nexthopRewrites:  reg.Counter("core_nexthop_rewrites_total", pl),
		backboneRewrites: reg.Counter("core_backbone_rewrites_total", pl),
		addPathExports:   reg.Counter("core_addpath_exports_total", pl),

		shedTelemetry:     reg.Counter("guard_shed_telemetry_total", pl),
		shedAnnouncements: reg.Counter("guard_shed_announcements_total", pl),
		shedSessions:      reg.Counter("guard_shed_sessions_total", pl),
	}
}

// emit sends a monitoring event to the configured station hook, filling
// in the PoP name and timestamp. A nil Monitor makes this a no-op; a
// full queue drops (counted by the emitter) rather than blocking the
// control plane.
func (r *Router) emit(e telemetry.Event) {
	if r.cfg.Monitor == nil {
		return
	}
	// First shedding stage: a degraded PoP drops monitoring emission —
	// the lowest-priority work — before touching routing behavior.
	if r.shedTelemetry.Load() {
		r.metrics.shedTelemetry.Inc()
		return
	}
	e.PoP = r.cfg.Name
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.cfg.Monitor.Emit(e)
}

func closeReason(err error) string {
	if err == nil {
		return "administrative shutdown"
	}
	return err.Error()
}

// syncNeighborRoutesGauge publishes the neighbor's current Adj-RIB-In
// occupancy (core_neighbor_routes{pop,neighbor}).
func (r *Router) syncNeighborRoutesGauge(n *Neighbor) {
	if n.routesGauge != nil {
		n.routesGauge.Set(int64(n.Table.PathCount()))
	}
}

// EmitStatsReport emits one BMP-style StatsReport event per neighbor
// with a live session, carrying RIB occupancy and the session's §6
// counters. Callers (peeringd's stats ticker, vbgp-bench's monitor
// fixture) decide the cadence.
func (r *Router) EmitStatsReport() {
	if r.cfg.Monitor == nil {
		return
	}
	for _, n := range r.Neighbors() {
		sess := n.Session()
		if sess == nil {
			continue
		}
		stats := []telemetry.Stat{
			{Type: telemetry.StatRoutesAdjIn, Value: uint64(n.Table.PathCount())},
			{Type: telemetry.StatUpdatesIn, Value: sess.UpdatesIn.Load()},
			{Type: telemetry.StatUpdatesOut, Value: sess.UpdatesOut.Load()},
			{Type: telemetry.StatBytesIn, Value: sess.BytesIn.Load()},
			{Type: telemetry.StatBytesOut, Value: sess.BytesOut.Load()},
			{Type: telemetry.StatMRAISuppressed, Value: sess.MRAISuppressed.Load()},
		}
		if r.damper != nil {
			stats = append(stats, telemetry.Stat{
				Type: telemetry.StatDampingSuppressed, Value: uint64(r.damper.SuppressedFor(n.Name)),
			})
		}
		r.emit(telemetry.Event{
			Kind:    telemetry.EventStatsReport,
			Peer:    n.Name,
			PeerASN: n.ASN,
			Stats:   stats,
		})
	}
}
