// Package netsim provides an in-memory layer-2 network simulator: broadcast
// segments (links and IXP-style switch fabrics), interfaces with MAC and IP
// addressing, ARP resolution, and attachment points for ingress/egress
// packet filters.
//
// Frames are delivered synchronously: Interface.Send serializes the frame
// and invokes the receivers' handlers on the calling goroutine. This keeps
// forwarding deterministic and easy to test; components guard their own
// state with locks, so segments may be driven from multiple goroutines.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ethernet"
)

// Verdict is the result of an attached packet filter, mirroring XDP-style
// return codes: a frame is either passed up the stack or dropped early.
type Verdict int

// Filter verdicts.
const (
	VerdictPass Verdict = iota
	VerdictDrop
)

// Filter inspects a raw frame at an interface hook point. Filters must not
// retain data.
type Filter interface {
	Process(data []byte) Verdict
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(data []byte) Verdict

// Process implements Filter.
func (f FilterFunc) Process(data []byte) Verdict { return f(data) }

// Segment is a broadcast domain: a point-to-point link when it has two
// ports, or a switch fabric (e.g. an IXP LAN) when it has more. Delivery
// is by destination MAC: unicast frames go to ports owning the MAC,
// broadcast/multicast frames flood to all other ports.
type Segment struct {
	// Name identifies the segment in logs and errors.
	Name string

	// CapacityBps is the provisioned capacity of the segment in bits per
	// second. Zero means unconstrained. Delivery is not throttled; the
	// value is metadata consumed by the traffic package's fluid-flow
	// model (used for the backbone throughput experiment, paper §6).
	CapacityBps float64

	// Latency is the one-way propagation delay of the segment, also
	// consumed by the traffic model.
	Latency time.Duration

	mu    sync.RWMutex
	ports []*Interface

	// Frames and Bytes count total deliveries across the segment.
	Frames atomic.Uint64
	Bytes  atomic.Uint64
}

// NewSegment creates a named, unconstrained segment.
func NewSegment(name string) *Segment {
	return &Segment{Name: name}
}

// NewLink creates a segment with the given capacity and latency, intended
// for point-to-point backbone links.
func NewLink(name string, capacityBps float64, latency time.Duration) *Segment {
	return &Segment{Name: name, CapacityBps: capacityBps, Latency: latency}
}

// attach registers an interface on the segment.
func (s *Segment) attach(ifc *Interface) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports = append(s.ports, ifc)
}

// detach removes an interface from the segment.
func (s *Segment) detach(ifc *Interface) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range s.ports {
		if p == ifc {
			s.ports = append(s.ports[:i], s.ports[i+1:]...)
			return
		}
	}
}

// Ports returns a snapshot of the interfaces attached to the segment.
func (s *Segment) Ports() []*Interface {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Interface(nil), s.ports...)
}

// transmit delivers a serialized frame originating at src to the other
// ports on the segment according to the destination MAC.
func (s *Segment) transmit(src *Interface, dst ethernet.MAC, data []byte) {
	s.mu.RLock()
	ports := s.ports
	var targets []*Interface
	if dst.IsMulticast() {
		targets = append(targets, ports...)
	} else {
		for _, p := range ports {
			if p != src && p.ownsMAC(dst) {
				targets = append(targets, p)
			}
		}
	}
	s.mu.RUnlock()

	for _, p := range targets {
		if p == src {
			continue
		}
		s.Frames.Add(1)
		s.Bytes.Add(uint64(len(data)))
		p.deliver(data)
	}
}

// String implements fmt.Stringer.
func (s *Segment) String() string { return fmt.Sprintf("segment(%s)", s.Name) }
