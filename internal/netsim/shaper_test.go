package netsim

import (
	"testing"
	"time"
)

func TestTokenBucketAdmitsWithinRate(t *testing.T) {
	f := NewTokenBucketFilter(8000, 0) // 1000 B/s, burst 1000 B
	now := time.Unix(0, 0)
	f.Now = func() time.Time { return now }

	frame := make([]byte, 100)
	// The initial burst covers 10 frames.
	for i := 0; i < 10; i++ {
		if f.Process(frame) != VerdictPass {
			t.Fatalf("frame %d within burst dropped", i)
		}
	}
	if f.Process(frame) != VerdictDrop {
		t.Fatal("over-burst frame admitted")
	}
	// After 100ms, 100 bytes of tokens accrue: exactly one more frame.
	now = now.Add(100 * time.Millisecond)
	if f.Process(frame) != VerdictPass {
		t.Fatal("refilled frame dropped")
	}
	if f.Process(frame) != VerdictDrop {
		t.Fatal("second frame admitted without tokens")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	f := NewTokenBucketFilter(8000, 500)
	now := time.Unix(0, 0)
	f.Now = func() time.Time { return now }
	// A long idle period must not accumulate unlimited credit.
	now = now.Add(time.Hour)
	frame := make([]byte, 100)
	passed := 0
	for i := 0; i < 100; i++ {
		if f.Process(frame) == VerdictPass {
			passed++
		}
	}
	if passed != 5 { // 500-byte bucket / 100-byte frames
		t.Errorf("passed %d frames, want 5 (burst cap)", passed)
	}
}

func TestTokenBucketSteadyRate(t *testing.T) {
	f := NewTokenBucketFilter(80_000, 1000) // 10 KB/s
	now := time.Unix(0, 0)
	f.Now = func() time.Time { return now }
	frame := make([]byte, 1000)
	delivered := 0
	for i := 0; i < 100; i++ { // 10 seconds at 10 Hz offered (10 KB/s offered exactly)
		if f.Process(frame) == VerdictPass {
			delivered++
		}
		now = now.Add(100 * time.Millisecond)
	}
	// Offered rate == policed rate: nearly everything passes.
	if delivered < 95 {
		t.Errorf("steady-state delivery %d/100", delivered)
	}
}
