package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ethernet"
)

// Handler receives a decoded frame from an interface. The frame's payload
// aliases a buffer owned by the caller; handlers that retain it must use
// Frame.Clone.
type Handler func(ifc *Interface, frame *ethernet.Frame)

// ARPResponder decides whether the interface answers an ARP request for
// target, and with which MAC. vBGP installs a responder that answers for
// every per-neighbor next-hop IP it allocated (paper §3.2.2).
type ARPResponder func(target netip.Addr) (ethernet.MAC, bool)

// Interface is a network interface attached to at most one segment. It
// owns a primary MAC, optionally additional MACs (vBGP accepts frames
// addressed to any MAC it assigned to a neighbor), and a set of IP
// addresses of which the first is primary.
//
// The primary address matters: Linux uses it as the source of ICMP errors
// (paper §5), and the netctl reconciler enforces its ordering.
type Interface struct {
	// Name identifies the interface, e.g. "amsix0" or "exp1-tap".
	Name string

	mac ethernet.MAC

	mu        sync.RWMutex
	seg       *Segment
	addrs     []netip.Addr // addrs[0] is the primary address
	extraMACs map[ethernet.MAC]bool
	handler   Handler
	responder ARPResponder
	ingress   []Filter
	egress    []Filter
	promisc   bool

	arpMu    sync.Mutex
	arpCache map[netip.Addr]ethernet.MAC
	arpWait  map[netip.Addr][]chan ethernet.MAC

	// RxFrames/TxFrames/RxDrops count traffic through the interface.
	// RxDrops counts frames discarded by ingress filters.
	RxFrames atomic.Uint64
	TxFrames atomic.Uint64
	RxDrops  atomic.Uint64
	TxDrops  atomic.Uint64
}

// NewInterface creates a detached interface with the given MAC.
func NewInterface(name string, mac ethernet.MAC) *Interface {
	return &Interface{
		Name: name, mac: mac,
		extraMACs: make(map[ethernet.MAC]bool),
		arpCache:  make(map[netip.Addr]ethernet.MAC),
		arpWait:   make(map[netip.Addr][]chan ethernet.MAC),
	}
}

// MAC returns the interface's primary MAC address.
func (ifc *Interface) MAC() ethernet.MAC { return ifc.mac }

// Attach connects the interface to a segment, detaching it from any
// previous segment.
func (ifc *Interface) Attach(seg *Segment) {
	ifc.mu.Lock()
	old := ifc.seg
	ifc.seg = seg
	ifc.mu.Unlock()
	if old != nil {
		old.detach(ifc)
	}
	if seg != nil {
		seg.attach(ifc)
	}
}

// Segment returns the segment the interface is attached to, or nil.
func (ifc *Interface) Segment() *Segment {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	return ifc.seg
}

// SetHandler installs the receive handler.
func (ifc *Interface) SetHandler(h Handler) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.handler = h
}

// SetARPResponder installs a proxy-ARP responder consulted for requests
// whose target is not one of the interface's own addresses.
func (ifc *Interface) SetARPResponder(r ARPResponder) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.responder = r
}

// SetPromiscuous makes the interface accept unicast frames regardless of
// destination MAC.
func (ifc *Interface) SetPromiscuous(on bool) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.promisc = on
}

// AddIngressFilter appends a filter run on every received frame before the
// handler. If any filter returns VerdictDrop the frame is discarded, as
// with an XDP program returning XDP_DROP.
func (ifc *Interface) AddIngressFilter(f Filter) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.ingress = append(ifc.ingress, f)
}

// AddEgressFilter appends a filter run on every transmitted frame.
func (ifc *Interface) AddEgressFilter(f Filter) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.egress = append(ifc.egress, f)
}

// ClearFilters removes all ingress and egress filters.
func (ifc *Interface) ClearFilters() {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.ingress, ifc.egress = nil, nil
}

// AddMAC makes the interface additionally accept frames destined to mac.
func (ifc *Interface) AddMAC(mac ethernet.MAC) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.extraMACs[mac] = true
}

// HasMAC reports whether the interface accepts frames destined to mac
// beyond its primary MAC.
func (ifc *Interface) HasMAC(mac ethernet.MAC) bool {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	return ifc.extraMACs[mac]
}

// ExtraMACs returns the additional MACs the interface accepts.
func (ifc *Interface) ExtraMACs() []ethernet.MAC {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	out := make([]ethernet.MAC, 0, len(ifc.extraMACs))
	for m := range ifc.extraMACs {
		out = append(out, m)
	}
	return out
}

// RemoveMAC stops accepting frames destined to mac.
func (ifc *Interface) RemoveMAC(mac ethernet.MAC) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	delete(ifc.extraMACs, mac)
}

func (ifc *Interface) ownsMAC(mac ethernet.MAC) bool {
	if mac == ifc.mac {
		return true
	}
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	return ifc.promisc || ifc.extraMACs[mac]
}

// AddAddr adds an IP address to the interface. The first address added is
// the primary address.
func (ifc *Interface) AddAddr(a netip.Addr) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	for _, have := range ifc.addrs {
		if have == a {
			return
		}
	}
	ifc.addrs = append(ifc.addrs, a)
}

// RemoveAddr removes an IP address from the interface.
func (ifc *Interface) RemoveAddr(a netip.Addr) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	for i, have := range ifc.addrs {
		if have == a {
			ifc.addrs = append(ifc.addrs[:i], ifc.addrs[i+1:]...)
			return
		}
	}
}

// SetAddrs replaces the interface's addresses; addrs[0] becomes primary.
func (ifc *Interface) SetAddrs(addrs []netip.Addr) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	ifc.addrs = append([]netip.Addr(nil), addrs...)
}

// Addrs returns the interface's addresses in order; index 0 is primary.
func (ifc *Interface) Addrs() []netip.Addr {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	return append([]netip.Addr(nil), ifc.addrs...)
}

// PrimaryAddr returns the primary address, or the zero Addr if none.
func (ifc *Interface) PrimaryAddr() netip.Addr {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	if len(ifc.addrs) == 0 {
		return netip.Addr{}
	}
	return ifc.addrs[0]
}

// HasAddr reports whether a is one of the interface's addresses.
func (ifc *Interface) HasAddr(a netip.Addr) bool {
	ifc.mu.RLock()
	defer ifc.mu.RUnlock()
	for _, have := range ifc.addrs {
		if have == a {
			return true
		}
	}
	return false
}

// Send serializes the frame, stamps the interface MAC as source if the
// frame has a zero source, runs egress filters, and transmits it on the
// attached segment. It is a no-op if the interface is detached.
func (ifc *Interface) Send(frame *ethernet.Frame) {
	if frame.Src.IsZero() {
		frame.Src = ifc.mac
	}
	ifc.mu.RLock()
	seg := ifc.seg
	egress := ifc.egress
	ifc.mu.RUnlock()
	if seg == nil {
		return
	}
	data := frame.Marshal()
	for _, f := range egress {
		if f.Process(data) == VerdictDrop {
			ifc.TxDrops.Add(1)
			return
		}
	}
	ifc.TxFrames.Add(1)
	seg.transmit(ifc, frame.Dst, data)
}

// deliver is called by the segment with a serialized frame addressed to
// this interface (or broadcast). It runs ingress filters, answers ARP
// requests, and hands other frames to the handler.
func (ifc *Interface) deliver(data []byte) {
	ifc.mu.RLock()
	ingress := ifc.ingress
	handler := ifc.handler
	ifc.mu.RUnlock()

	for _, f := range ingress {
		if f.Process(data) == VerdictDrop {
			ifc.RxDrops.Add(1)
			return
		}
	}
	ifc.RxFrames.Add(1)

	var frame ethernet.Frame
	if err := frame.DecodeFromBytes(data); err != nil {
		return
	}
	if frame.Type == ethernet.TypeARP && ifc.handleARP(&frame) {
		return
	}
	if handler != nil {
		handler(ifc, &frame)
	}
}

// Resolve returns the MAC for the on-link address target, consulting the
// interface ARP cache and, on a miss, sending an ARP request and waiting
// up to timeout for a reply. senderIP is the source protocol address to
// put in the request (typically the interface's primary address).
func (ifc *Interface) Resolve(senderIP, target netip.Addr, timeout time.Duration) (ethernet.MAC, error) {
	ifc.arpMu.Lock()
	if mac, ok := ifc.arpCache[target]; ok {
		ifc.arpMu.Unlock()
		return mac, nil
	}
	ch := make(chan ethernet.MAC, 1)
	ifc.arpWait[target] = append(ifc.arpWait[target], ch)
	ifc.arpMu.Unlock()

	req := ethernet.NewARPRequest(ifc.mac, senderIP, target)
	fr := req.Frame(ifc.mac)
	ifc.Send(&fr)

	select {
	case mac := <-ch:
		return mac, nil
	case <-time.After(timeout):
		return ethernet.MAC{}, fmt.Errorf("netsim: ARP for %s on %s timed out", target, ifc.Name)
	}
}

// learnARP records a sender's binding and wakes Resolve waiters.
func (ifc *Interface) learnARP(addr netip.Addr, mac ethernet.MAC) {
	ifc.arpMu.Lock()
	ifc.arpCache[addr] = mac
	waiters := ifc.arpWait[addr]
	delete(ifc.arpWait, addr)
	ifc.arpMu.Unlock()
	for _, ch := range waiters {
		ch <- mac
	}
}

// FlushARP drops the interface's ARP cache.
func (ifc *Interface) FlushARP() {
	ifc.arpMu.Lock()
	defer ifc.arpMu.Unlock()
	ifc.arpCache = make(map[netip.Addr]ethernet.MAC)
}

// handleARP answers ARP requests for the interface's own addresses and for
// any address its ARPResponder claims, and learns bindings from replies.
// It returns true if the frame was consumed.
func (ifc *Interface) handleARP(frame *ethernet.Frame) bool {
	var req ethernet.ARP
	if err := req.DecodeFromBytes(frame.Payload); err != nil {
		return true // malformed ARP: consume silently
	}
	if req.Op == ethernet.ARPReply {
		ifc.learnARP(req.SenderIP, req.SenderMAC)
		return false // also surface replies to the handler
	}
	if req.Op != ethernet.ARPRequest {
		return false
	}
	answer, ok := ifc.arpAnswer(req.TargetIP)
	if !ok {
		// Not ours: surface to the handler so bridges can relay the
		// request toward whoever owns the address.
		return false
	}
	rep := req.Reply(answer)
	fr := rep.Frame(ifc.mac)
	ifc.Send(&fr)
	return true
}

func (ifc *Interface) arpAnswer(target netip.Addr) (ethernet.MAC, bool) {
	ifc.mu.RLock()
	responder := ifc.responder
	owns := false
	for _, a := range ifc.addrs {
		if a == target {
			owns = true
			break
		}
	}
	ifc.mu.RUnlock()
	if owns {
		return ifc.mac, true
	}
	if responder != nil {
		return responder(target)
	}
	return ethernet.MAC{}, false
}

// String implements fmt.Stringer.
func (ifc *Interface) String() string {
	addrs := ifc.Addrs()
	strs := make([]string, len(addrs))
	for i, a := range addrs {
		strs[i] = a.String()
	}
	sort.Strings(strs[1:]) // keep primary first, order the rest for stability
	return fmt.Sprintf("%s(%s %v)", ifc.Name, ifc.mac, strs)
}
