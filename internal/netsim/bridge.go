package netsim

import (
	"sync"
	"sync/atomic"

	"repro/internal/ethernet"
)

// Bridge joins segments into one layer-2 broadcast domain with MAC
// learning, like the switch fabric of an exchange: unicast frames whose
// destination was learned forward only toward that segment; unknown
// unicast and broadcast flood everywhere else. There is no spanning
// tree — attaching a bridge in a loop is the operator's problem, as on
// real fabrics.
type Bridge struct {
	// Name identifies the bridge.
	Name string

	mu    sync.Mutex
	ports map[*Segment]*Interface
	fdb   map[ethernet.MAC]*Segment

	// Flooded and Forwarded count unknown-destination floods and
	// learned-path forwards.
	Flooded   atomic.Uint64
	Forwarded atomic.Uint64
}

// NewBridge creates a bridge with no ports.
func NewBridge(name string) *Bridge {
	return &Bridge{
		Name:  name,
		ports: make(map[*Segment]*Interface),
		fdb:   make(map[ethernet.MAC]*Segment),
	}
}

// AttachSegment adds a segment as a bridge port.
func (b *Bridge) AttachSegment(seg *Segment) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.ports[seg]; dup {
		return
	}
	mac := deriveBridgeMAC(b.Name, len(b.ports))
	ifc := NewInterface(b.Name+"-"+seg.Name, mac)
	ifc.SetPromiscuous(true)
	ifc.SetHandler(func(in *Interface, fr *ethernet.Frame) { b.relay(seg, in, fr) })
	ifc.Attach(seg)
	b.ports[seg] = ifc
}

func deriveBridgeMAC(name string, idx int) ethernet.MAC {
	var m ethernet.MAC
	m[0], m[1] = 0x02, 0xb8
	for i := 0; i < len(name) && i < 3; i++ {
		m[2+i] = name[i]
	}
	m[5] = byte(idx)
	return m
}

// Lookup reports which segment a MAC was learned on (tests/diagnostics).
func (b *Bridge) Lookup(mac ethernet.MAC) (*Segment, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	seg, ok := b.fdb[mac]
	return seg, ok
}

// relay learns the source and forwards or floods the frame.
func (b *Bridge) relay(ingress *Segment, in *Interface, fr *ethernet.Frame) {
	b.mu.Lock()
	// Never learn or re-forward our own port MACs (split horizon for
	// frames another bridge port already re-injected).
	for _, p := range b.ports {
		if fr.Src == p.MAC() {
			b.mu.Unlock()
			return
		}
	}
	b.fdb[fr.Src] = ingress
	var targets []*Interface
	if dst, known := b.fdb[fr.Dst]; known && !fr.Dst.IsMulticast() {
		if dst != ingress {
			targets = append(targets, b.ports[dst])
			b.Forwarded.Add(1)
		}
		// Known on the ingress segment: nothing to do.
	} else {
		for seg, port := range b.ports {
			if seg != ingress {
				targets = append(targets, port)
			}
		}
		b.Flooded.Add(1)
	}
	b.mu.Unlock()

	copy := fr.Clone()
	for _, port := range targets {
		port.Send(&copy)
	}
}
