package netsim

import (
	"testing"
	"time"

	"repro/internal/ethernet"
)

func TestBridgeConnectsSegments(t *testing.T) {
	seg1, seg2 := NewSegment("s1"), NewSegment("s2")
	br := NewBridge("br0")
	br.AttachSegment(seg1)
	br.AttachSegment(seg2)

	h1 := NewHost("h1")
	h1.AddInterface("eth0", mac(1), p("10.0.0.1/24"), seg1)
	h2 := NewHost("h2")
	h2.AddInterface("eth0", mac(2), p("10.0.0.2/24"), seg2)

	// ARP (broadcast) floods through the bridge; the ping round-trips.
	if _, err := h1.Ping(a("10.0.0.2"), 9, 1, time.Second); err != nil {
		t.Fatalf("ping across bridge: %v", err)
	}
	// Both MACs are now learned.
	if seg, ok := br.Lookup(mac(1)); !ok || seg != seg1 {
		t.Error("h1 not learned on s1")
	}
	if seg, ok := br.Lookup(mac(2)); !ok || seg != seg2 {
		t.Error("h2 not learned on s2")
	}
}

func TestBridgeUnicastDoesNotFloodAfterLearning(t *testing.T) {
	seg1, seg2, seg3 := NewSegment("s1"), NewSegment("s2"), NewSegment("s3")
	br := NewBridge("br0")
	br.AttachSegment(seg1)
	br.AttachSegment(seg2)
	br.AttachSegment(seg3)

	h1 := NewHost("h1")
	h1.AddInterface("eth0", mac(1), p("10.0.0.1/24"), seg1)
	h2 := NewHost("h2")
	h2.AddInterface("eth0", mac(2), p("10.0.0.2/24"), seg2)

	// Sniffer on the third segment counts leaked unicast.
	var leaked int
	sniff := NewInterface("sniff", mac(9))
	sniff.SetPromiscuous(true)
	sniff.SetHandler(func(_ *Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 && !fr.Dst.IsMulticast() {
			leaked++
		}
	})
	sniff.Attach(seg3)

	if _, err := h1.Ping(a("10.0.0.2"), 9, 1, time.Second); err != nil {
		t.Fatal(err)
	}
	// Learned: further unicast between h1 and h2 must not reach seg3.
	before := leaked
	if _, err := h1.Ping(a("10.0.0.2"), 9, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	if leaked != before {
		t.Errorf("unicast flooded to unrelated segment after learning (%d new frames)", leaked-before)
	}
	if br.Forwarded.Load() == 0 {
		t.Error("no learned-path forwards recorded")
	}
}

func TestBridgeLookupMiss(t *testing.T) {
	br := NewBridge("br0")
	if _, ok := br.Lookup(mac(42)); ok {
		t.Error("empty FDB hit")
	}
	// Attaching the same segment twice is a no-op.
	seg := NewSegment("s1")
	br.AttachSegment(seg)
	br.AttachSegment(seg)
	if len(seg.Ports()) != 1 {
		t.Errorf("duplicate attach created %d ports", len(seg.Ports()))
	}
}
