package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/ethernet"
)

// hostRoute is a simple routing table entry for a Host.
type hostRoute struct {
	prefix  netip.Prefix
	nextHop netip.Addr // zero Addr means on-link
	ifc     *Interface
}

// PacketHandler receives an IPv4 packet delivered to a Host.
type PacketHandler func(h *Host, ifc *Interface, ip *ethernet.IPv4)

// Host is a simple IPv4 end system: one or more interfaces, an ARP cache,
// a longest-prefix-match routing table, an ICMP echo responder, and
// TTL-exceeded generation sourced from the ingress interface's primary
// address (the behavior Peering's network controller preserves, §5).
//
// Hosts model experiment machines and neighbor-side traffic sinks in
// tests and examples; BGP speakers use their own forwarding logic.
type Host struct {
	// Name identifies the host in logs.
	Name string

	// Forwarding enables packet forwarding between interfaces (router
	// behavior with TTL decrement and time-exceeded generation).
	Forwarding bool

	// EchoAll makes the host answer ICMP echo requests addressed to ANY
	// destination, standing in for "the rest of the Internet" behind a
	// neighbor in examples and tests.
	EchoAll bool

	mu       sync.Mutex
	ifcs     []*Interface
	routes   []hostRoute
	handlers map[uint8]PacketHandler

	echoMu   sync.Mutex
	echoWait map[echoKey]chan *ethernet.ICMP
}

type echoKey struct {
	id, seq uint16
}

// NewHost creates a host with no interfaces.
func NewHost(name string) *Host {
	return &Host{
		Name:     name,
		handlers: make(map[uint8]PacketHandler),
		echoWait: make(map[echoKey]chan *ethernet.ICMP),
	}
}

// AddInterface creates an interface on the host, assigns addr (with its
// prefix installed as an on-link route), and attaches it to seg.
func (h *Host) AddInterface(name string, mac ethernet.MAC, addr netip.Prefix, seg *Segment) *Interface {
	ifc := NewInterface(name, mac)
	ifc.AddAddr(addr.Addr())
	ifc.SetHandler(h.receive)
	ifc.Attach(seg)

	h.mu.Lock()
	defer h.mu.Unlock()
	h.ifcs = append(h.ifcs, ifc)
	h.routes = append(h.routes, hostRoute{prefix: addr.Masked(), ifc: ifc})
	return ifc
}

// Interfaces returns the host's interfaces.
func (h *Host) Interfaces() []*Interface {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Interface(nil), h.ifcs...)
}

// AddRoute installs a static route for prefix via nextHop out ifc. A zero
// nextHop means the prefix is on-link.
func (h *Host) AddRoute(prefix netip.Prefix, nextHop netip.Addr, ifc *Interface) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.routes = append(h.routes, hostRoute{prefix: prefix.Masked(), nextHop: nextHop, ifc: ifc})
}

// SetDefaultRoute installs 0.0.0.0/0 via nextHop out ifc.
func (h *Host) SetDefaultRoute(nextHop netip.Addr, ifc *Interface) {
	h.AddRoute(netip.PrefixFrom(netip.IPv4Unspecified(), 0), nextHop, ifc)
}

// Handle registers a handler for an IP protocol number. ICMP echo is
// handled internally; other ICMP types are passed to a ProtoICMP handler
// if registered.
func (h *Host) Handle(proto uint8, fn PacketHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[proto] = fn
}

// lookup returns the longest-prefix-match route for dst.
func (h *Host) lookup(dst netip.Addr) (hostRoute, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	best, ok := hostRoute{}, false
	for _, r := range h.routes {
		if r.prefix.Contains(dst) && (!ok || r.prefix.Bits() > best.prefix.Bits()) {
			best, ok = r, true
		}
	}
	return best, ok
}

// Resolve returns the MAC address for on-link IP addr out ifc, sending an
// ARP request if needed and waiting up to the timeout for the reply.
func (h *Host) Resolve(ifc *Interface, addr netip.Addr, timeout time.Duration) (ethernet.MAC, error) {
	return ifc.Resolve(ifc.PrimaryAddr(), addr, timeout)
}

// SendIP routes and transmits an IPv4 packet. The packet's Src is filled
// from the egress interface's primary address when unset.
func (h *Host) SendIP(pkt *ethernet.IPv4) error {
	rt, ok := h.lookup(pkt.Dst)
	if !ok {
		return fmt.Errorf("netsim: %s: no route to %s", h.Name, pkt.Dst)
	}
	nh := rt.nextHop
	if !nh.IsValid() {
		nh = pkt.Dst // on-link
	}
	if !pkt.Src.IsValid() {
		pkt.Src = rt.ifc.PrimaryAddr()
	}
	mac, err := h.Resolve(rt.ifc, nh, time.Second)
	if err != nil {
		return err
	}
	rt.ifc.Send(&ethernet.Frame{
		Dst: mac, Src: rt.ifc.MAC(), Type: ethernet.TypeIPv4, Payload: pkt.Marshal(),
	})
	return nil
}

// Ping sends an ICMP echo request to dst and waits for the reply,
// returning the round-trip time.
func (h *Host) Ping(dst netip.Addr, id, seq uint16, timeout time.Duration) (time.Duration, error) {
	ch := make(chan *ethernet.ICMP, 1)
	key := echoKey{id, seq}
	h.echoMu.Lock()
	h.echoWait[key] = ch
	h.echoMu.Unlock()
	defer func() {
		h.echoMu.Lock()
		delete(h.echoWait, key)
		h.echoMu.Unlock()
	}()

	echo := ethernet.ICMP{Type: ethernet.ICMPEchoRequest, ID: id, Seq: seq, Data: []byte("peering-probe")}
	start := time.Now()
	err := h.SendIP(&ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoICMP, Dst: dst, Payload: echo.Marshal()})
	if err != nil {
		return 0, err
	}
	select {
	case <-ch:
		return time.Since(start), nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("netsim: ping %s timed out", dst)
	}
}

// receive is the interface handler: it learns ARP replies, delivers local
// IPv4 packets, and forwards others when Forwarding is set.
func (h *Host) receive(ifc *Interface, frame *ethernet.Frame) {
	switch frame.Type {
	case ethernet.TypeIPv4:
		var ip ethernet.IPv4
		if ip.DecodeFromBytes(frame.Payload) != nil {
			return
		}
		if h.isLocal(ip.Dst) {
			h.deliverLocal(ifc, &ip)
			return
		}
		if h.EchoAll && ip.Protocol == ethernet.ProtoICMP {
			var m ethernet.ICMP
			if m.DecodeFromBytes(ip.Payload) == nil && m.Type == ethernet.ICMPEchoRequest {
				reply := ethernet.ICMP{Type: ethernet.ICMPEchoReply, ID: m.ID, Seq: m.Seq, Data: append([]byte(nil), m.Data...)}
				_ = h.SendIP(&ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoICMP, Src: ip.Dst, Dst: ip.Src, Payload: reply.Marshal()})
				return
			}
		}
		if h.Forwarding {
			h.forward(ifc, &ip)
		}
	}
}

func (h *Host) isLocal(dst netip.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ifc := range h.ifcs {
		if ifc.HasAddr(dst) {
			return true
		}
	}
	return false
}

func (h *Host) deliverLocal(ifc *Interface, ip *ethernet.IPv4) {
	if ip.Protocol == ethernet.ProtoICMP {
		var m ethernet.ICMP
		if m.DecodeFromBytes(ip.Payload) != nil {
			return
		}
		switch m.Type {
		case ethernet.ICMPEchoRequest:
			reply := ethernet.ICMP{Type: ethernet.ICMPEchoReply, ID: m.ID, Seq: m.Seq, Data: append([]byte(nil), m.Data...)}
			_ = h.SendIP(&ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoICMP, Src: ip.Dst, Dst: ip.Src, Payload: reply.Marshal()})
			return
		case ethernet.ICMPEchoReply:
			h.echoMu.Lock()
			ch := h.echoWait[echoKey{m.ID, m.Seq}]
			h.echoMu.Unlock()
			if ch != nil {
				cp := m
				cp.Data = append([]byte(nil), m.Data...)
				select {
				case ch <- &cp:
				default:
				}
				return
			}
		}
	}
	h.mu.Lock()
	fn := h.handlers[ip.Protocol]
	h.mu.Unlock()
	if fn != nil {
		fn(h, ifc, ip)
	}
}

// forward implements router-style forwarding: decrement TTL, emit ICMP
// time exceeded (sourced from the ingress interface's primary address)
// when it hits zero, otherwise route onward.
func (h *Host) forward(in *Interface, ip *ethernet.IPv4) {
	if ip.TTL <= 1 {
		// Embed the offending header per RFC 792.
		orig := ip.Marshal()
		if len(orig) > ethernet.IPv4HeaderLen+8 {
			orig = orig[:ethernet.IPv4HeaderLen+8]
		}
		exceeded := ethernet.ICMP{Type: ethernet.ICMPTimeExceed, Data: orig}
		_ = h.SendIP(&ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoICMP,
			Src: in.PrimaryAddr(), Dst: ip.Src, Payload: exceeded.Marshal(),
		})
		return
	}
	fwd := *ip
	fwd.TTL--
	fwd.Payload = append([]byte(nil), ip.Payload...)
	_ = h.SendIP(&fwd)
}
