package netsim

import (
	"sync"
	"time"
)

// TokenBucketFilter polices traffic to a byte rate with a token bucket:
// frames that exceed the bucket are dropped. Peering shapes experiment
// traffic at its two bandwidth-constrained sites to the rates agreed
// with the site operators (paper §4.7, "policing rate").
type TokenBucketFilter struct {
	rate  float64 // bytes per second
	burst float64 // bucket depth in bytes
	// Now is the clock, injectable for deterministic tests.
	Now func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucketFilter creates a policer admitting rateBps bits per
// second with a burst allowance of burstBytes (defaults to one second's
// worth when zero).
func NewTokenBucketFilter(rateBps float64, burstBytes float64) *TokenBucketFilter {
	if burstBytes <= 0 {
		burstBytes = rateBps / 8
	}
	return &TokenBucketFilter{
		rate:   rateBps / 8,
		burst:  burstBytes,
		Now:    time.Now,
		tokens: burstBytes,
	}
}

// Process implements Filter.
func (f *TokenBucketFilter) Process(data []byte) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.Now()
	if !f.last.IsZero() {
		f.tokens += now.Sub(f.last).Seconds() * f.rate
		if f.tokens > f.burst {
			f.tokens = f.burst
		}
	}
	f.last = now
	need := float64(len(data))
	if f.tokens < need {
		return VerdictDrop
	}
	f.tokens -= need
	return VerdictPass
}
