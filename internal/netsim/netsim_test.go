package netsim

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/ethernet"
)

func mac(b byte) ethernet.MAC { return ethernet.MAC{0x02, 0, 0, 0, 0, b} }

func p(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func a(s string) netip.Addr   { return netip.MustParseAddr(s) }

func TestSegmentUnicastDelivery(t *testing.T) {
	seg := NewSegment("lan")
	var got []string
	var mu sync.Mutex
	mk := func(name string, m ethernet.MAC) *Interface {
		ifc := NewInterface(name, m)
		ifc.SetHandler(func(_ *Interface, f *ethernet.Frame) {
			mu.Lock()
			got = append(got, name)
			mu.Unlock()
		})
		ifc.Attach(seg)
		return ifc
	}
	ia := mk("a", mac(1))
	mk("b", mac(2))
	mk("c", mac(3))

	ia.Send(&ethernet.Frame{Dst: mac(2), Type: ethernet.TypeIPv4, Payload: []byte{1}})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("unicast delivered to %v, want [b]", got)
	}
}

func TestSegmentBroadcastFloods(t *testing.T) {
	seg := NewSegment("lan")
	var mu sync.Mutex
	count := map[string]int{}
	mk := func(name string, m ethernet.MAC) *Interface {
		ifc := NewInterface(name, m)
		ifc.SetHandler(func(_ *Interface, f *ethernet.Frame) {
			mu.Lock()
			count[name]++
			mu.Unlock()
		})
		ifc.Attach(seg)
		return ifc
	}
	ia := mk("a", mac(1))
	mk("b", mac(2))
	mk("c", mac(3))

	ia.Send(&ethernet.Frame{Dst: ethernet.Broadcast, Type: ethernet.TypeIPv4})
	mu.Lock()
	defer mu.Unlock()
	if count["a"] != 0 || count["b"] != 1 || count["c"] != 1 {
		t.Errorf("broadcast counts = %v", count)
	}
}

func TestInterfaceExtraMAC(t *testing.T) {
	seg := NewSegment("lan")
	var hit int
	rx := NewInterface("rx", mac(1))
	rx.SetHandler(func(_ *Interface, _ *ethernet.Frame) { hit++ })
	rx.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.Attach(seg)

	neighborMAC := mac(0x42)
	tx.Send(&ethernet.Frame{Dst: neighborMAC, Type: ethernet.TypeIPv4})
	if hit != 0 {
		t.Fatal("frame for unowned MAC delivered")
	}
	rx.AddMAC(neighborMAC)
	tx.Send(&ethernet.Frame{Dst: neighborMAC, Type: ethernet.TypeIPv4})
	if hit != 1 {
		t.Fatal("frame for extra MAC not delivered")
	}
	rx.RemoveMAC(neighborMAC)
	tx.Send(&ethernet.Frame{Dst: neighborMAC, Type: ethernet.TypeIPv4})
	if hit != 1 {
		t.Fatal("frame delivered after RemoveMAC")
	}
}

func TestPromiscuousMode(t *testing.T) {
	seg := NewSegment("lan")
	var hit int
	rx := NewInterface("rx", mac(1))
	rx.SetHandler(func(_ *Interface, _ *ethernet.Frame) { hit++ })
	rx.SetPromiscuous(true)
	rx.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.Attach(seg)

	tx.Send(&ethernet.Frame{Dst: mac(0x99), Type: ethernet.TypeIPv4})
	if hit != 1 {
		t.Fatal("promiscuous interface missed frame")
	}
}

func TestIngressFilterDrop(t *testing.T) {
	seg := NewSegment("lan")
	var hit int
	rx := NewInterface("rx", mac(1))
	rx.SetHandler(func(_ *Interface, _ *ethernet.Frame) { hit++ })
	rx.AddIngressFilter(FilterFunc(func(data []byte) Verdict {
		var f ethernet.Frame
		if f.DecodeFromBytes(data) == nil && f.Type == ethernet.TypeIPv4 {
			return VerdictDrop
		}
		return VerdictPass
	}))
	rx.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.Attach(seg)

	tx.Send(&ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv4})
	tx.Send(&ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv6})
	if hit != 1 {
		t.Errorf("handler hits = %d, want 1 (IPv4 dropped)", hit)
	}
	if rx.RxDrops.Load() != 1 {
		t.Errorf("RxDrops = %d, want 1", rx.RxDrops.Load())
	}
}

func TestEgressFilterDrop(t *testing.T) {
	seg := NewSegment("lan")
	var hit int
	rx := NewInterface("rx", mac(1))
	rx.SetHandler(func(_ *Interface, _ *ethernet.Frame) { hit++ })
	rx.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.AddEgressFilter(FilterFunc(func([]byte) Verdict { return VerdictDrop }))
	tx.Attach(seg)

	tx.Send(&ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv4})
	if hit != 0 || tx.TxDrops.Load() != 1 {
		t.Errorf("egress drop failed: hits=%d drops=%d", hit, tx.TxDrops.Load())
	}
}

func TestARPOwnAddress(t *testing.T) {
	seg := NewSegment("lan")
	responderIfc := NewInterface("r", mac(9))
	responderIfc.AddAddr(a("10.0.0.1"))
	responderIfc.Attach(seg)

	h := NewHost("client")
	ifc := h.AddInterface("eth0", mac(1), p("10.0.0.2/24"), seg)
	got, err := h.Resolve(ifc, a("10.0.0.1"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != mac(9) {
		t.Errorf("resolved %v, want %v", got, mac(9))
	}
}

func TestARPProxyResponder(t *testing.T) {
	// Mirrors Fig. 2b: the vBGP router answers for next-hop IPs it
	// allocated, each with a distinct MAC.
	seg := NewSegment("lan")
	vbgp := NewInterface("vbgp", mac(9))
	vbgp.SetARPResponder(func(target netip.Addr) (ethernet.MAC, bool) {
		if target == a("127.65.0.2") {
			return mac(0x22), true
		}
		return ethernet.MAC{}, false
	})
	vbgp.Attach(seg)

	h := NewHost("exp")
	ifc := h.AddInterface("tap0", mac(1), p("100.65.0.1/24"), seg)

	got, err := h.Resolve(ifc, a("127.65.0.2"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != mac(0x22) {
		t.Errorf("proxy ARP answered %v, want %v", got, mac(0x22))
	}
	if _, err := h.Resolve(ifc, a("127.65.0.3"), 50*time.Millisecond); err == nil {
		t.Error("unclaimed address should not resolve")
	}
}

func TestHostPingOnLink(t *testing.T) {
	seg := NewSegment("lan")
	h1 := NewHost("h1")
	h1.AddInterface("eth0", mac(1), p("10.0.0.1/24"), seg)
	h2 := NewHost("h2")
	h2.AddInterface("eth0", mac(2), p("10.0.0.2/24"), seg)

	if _, err := h1.Ping(a("10.0.0.2"), 1, 1, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestHostPingThroughRouter(t *testing.T) {
	left, right := NewSegment("left"), NewSegment("right")
	rtr := NewHost("rtr")
	rtr.Forwarding = true
	rtr.AddInterface("l", mac(10), p("10.0.0.254/24"), left)
	rtr.AddInterface("r", mac(11), p("10.1.0.254/24"), right)

	h1 := NewHost("h1")
	i1 := h1.AddInterface("eth0", mac(1), p("10.0.0.1/24"), left)
	h1.SetDefaultRoute(a("10.0.0.254"), i1)
	h2 := NewHost("h2")
	i2 := h2.AddInterface("eth0", mac(2), p("10.1.0.1/24"), right)
	h2.SetDefaultRoute(a("10.1.0.254"), i2)

	if _, err := h1.Ping(a("10.1.0.1"), 7, 1, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTTLExceededUsesPrimaryAddress(t *testing.T) {
	left, right := NewSegment("left"), NewSegment("right")
	rtr := NewHost("rtr")
	rtr.Forwarding = true
	lif := rtr.AddInterface("l", mac(10), p("10.0.0.254/24"), left)
	// A secondary address on the ingress interface: TTL exceeded must be
	// sourced from the primary (paper §5, network controller requirement).
	lif.AddAddr(a("10.0.0.253"))
	rtr.AddInterface("r", mac(11), p("10.1.0.254/24"), right)

	h1 := NewHost("h1")
	i1 := h1.AddInterface("eth0", mac(1), p("10.0.0.1/24"), left)
	h1.SetDefaultRoute(a("10.0.0.254"), i1)

	var srcMu sync.Mutex
	var exceededSrc netip.Addr
	h1.Handle(ethernet.ProtoICMP, func(_ *Host, _ *Interface, ip *ethernet.IPv4) {
		var m ethernet.ICMP
		if m.DecodeFromBytes(ip.Payload) == nil && m.Type == ethernet.ICMPTimeExceed {
			srcMu.Lock()
			exceededSrc = ip.Src
			srcMu.Unlock()
		}
	})

	probe := ethernet.ICMP{Type: ethernet.ICMPEchoRequest, ID: 1, Seq: 1}
	err := h1.SendIP(&ethernet.IPv4{TTL: 1, Protocol: ethernet.ProtoICMP, Dst: a("10.1.0.1"), Payload: probe.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	srcMu.Lock()
	defer srcMu.Unlock()
	if exceededSrc != a("10.0.0.254") {
		t.Errorf("time-exceeded sourced from %v, want primary 10.0.0.254", exceededSrc)
	}
}

func TestHostNoRoute(t *testing.T) {
	h := NewHost("h")
	h.AddInterface("eth0", mac(1), p("10.0.0.1/24"), NewSegment("lan"))
	err := h.SendIP(&ethernet.IPv4{TTL: 64, Dst: a("192.168.9.9")})
	if err == nil {
		t.Error("want no-route error")
	}
}

func TestLongestPrefixMatchRouting(t *testing.T) {
	segA, segB := NewSegment("a"), NewSegment("b")
	h := NewHost("h")
	ia := h.AddInterface("a", mac(1), p("10.0.0.1/24"), segA)
	ib := h.AddInterface("b", mac(2), p("10.0.1.1/24"), segB)
	h.AddRoute(p("192.168.0.0/16"), a("10.0.0.254"), ia)
	h.AddRoute(p("192.168.1.0/24"), a("10.0.1.254"), ib)

	gwB := NewHost("gwB")
	gwB.AddInterface("eth0", mac(4), p("10.0.1.254/24"), segB)
	var gotMu sync.Mutex
	var got bool
	gwB.Handle(ethernet.ProtoUDP, func(_ *Host, _ *Interface, ip *ethernet.IPv4) {
		gotMu.Lock()
		got = true
		gotMu.Unlock()
	})
	// gwB must accept the forwarded packet even though dst is not local;
	// use promiscuous capture via a dedicated sniffer instead.
	sniff := NewInterface("sniffer", mac(5))
	var seenMu sync.Mutex
	var seenDst netip.Addr
	sniff.SetPromiscuous(true)
	sniff.SetHandler(func(_ *Interface, f *ethernet.Frame) {
		var ip ethernet.IPv4
		if f.Type == ethernet.TypeIPv4 && ip.DecodeFromBytes(f.Payload) == nil {
			seenMu.Lock()
			seenDst = ip.Dst
			seenMu.Unlock()
		}
	})
	sniff.Attach(segB)

	err := h.SendIP(&ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP, Dst: a("192.168.1.5")})
	if err != nil {
		t.Fatal(err)
	}
	seenMu.Lock()
	defer seenMu.Unlock()
	if seenDst != a("192.168.1.5") {
		t.Errorf("more-specific route not used; segment B saw dst %v", seenDst)
	}
	_ = got
	gotMu.Lock()
	defer gotMu.Unlock()
}

func TestSegmentCounters(t *testing.T) {
	seg := NewSegment("lan")
	rxd := NewInterface("rx", mac(1))
	rxd.SetHandler(func(*Interface, *ethernet.Frame) {})
	rxd.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.Attach(seg)

	fr := &ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv4, Payload: make([]byte, 100)}
	for i := 0; i < 5; i++ {
		tx.Send(fr)
	}
	if seg.Frames.Load() != 5 {
		t.Errorf("segment frames = %d, want 5", seg.Frames.Load())
	}
	if seg.Bytes.Load() != 5*(ethernet.HeaderLen+100) {
		t.Errorf("segment bytes = %d", seg.Bytes.Load())
	}
	if tx.TxFrames.Load() != 5 || rxd.RxFrames.Load() != 5 {
		t.Errorf("interface counters tx=%d rx=%d", tx.TxFrames.Load(), rxd.RxFrames.Load())
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	seg := NewSegment("lan")
	var hit int
	rx := NewInterface("rx", mac(1))
	rx.SetHandler(func(*Interface, *ethernet.Frame) { hit++ })
	rx.Attach(seg)
	tx := NewInterface("tx", mac(2))
	tx.Attach(seg)

	tx.Send(&ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv4})
	rx.Attach(nil)
	tx.Send(&ethernet.Frame{Dst: mac(1), Type: ethernet.TypeIPv4})
	if hit != 1 {
		t.Errorf("hits = %d, want 1", hit)
	}
}

func TestPrimaryAddrOrdering(t *testing.T) {
	ifc := NewInterface("x", mac(1))
	if ifc.PrimaryAddr().IsValid() {
		t.Error("empty interface should have no primary")
	}
	ifc.AddAddr(a("10.0.0.1"))
	ifc.AddAddr(a("10.0.0.2"))
	if ifc.PrimaryAddr() != a("10.0.0.1") {
		t.Error("first added address should be primary")
	}
	ifc.SetAddrs([]netip.Addr{a("10.0.0.2"), a("10.0.0.1")})
	if ifc.PrimaryAddr() != a("10.0.0.2") {
		t.Error("SetAddrs should reorder primary")
	}
	ifc.AddAddr(a("10.0.0.2")) // duplicate: no-op
	if len(ifc.Addrs()) != 2 {
		t.Error("duplicate AddAddr changed address list")
	}
	ifc.RemoveAddr(a("10.0.0.2"))
	if ifc.PrimaryAddr() != a("10.0.0.1") {
		t.Error("remove should promote next address")
	}
}
