package collector

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"

	"repro/internal/bgp"
)

// Dump format: a compact MRT-inspired binary framing. Each record:
//
//	magic   uint16  0x5052 ("PR")
//	kind    uint8   EventKind
//	time    int64   Unix nanoseconds
//	pathID  uint32
//	family  uint8   4 or 6
//	bits    uint8
//	addr    4 or 16 bytes
//	nhFam   uint8   0 (none), 4, or 6
//	nh      0/4/16 bytes
//	pathLen uint16, then pathLen x uint32
//	commLen uint16, then commLen x uint32
//
// All integers big-endian. The format is versionless by design — the
// magic doubles as a sync marker.
const dumpMagic = 0x5052

// WriteEvents serializes events to w in dump format.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := writeEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEvent(w io.Writer, e Event) error {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, dumpMagic)
	b = append(b, byte(e.Kind))
	b = binary.BigEndian.AppendUint64(b, uint64(e.Time.UnixNano()))
	b = binary.BigEndian.AppendUint32(b, e.PathID)
	addr := e.Prefix.Addr()
	if addr.Is6() {
		raw := addr.As16()
		b = append(b, 6, byte(e.Prefix.Bits()))
		b = append(b, raw[:]...)
	} else {
		raw := addr.As4()
		b = append(b, 4, byte(e.Prefix.Bits()))
		b = append(b, raw[:]...)
	}
	switch {
	case !e.NextHop.IsValid():
		b = append(b, 0)
	case e.NextHop.Is6():
		raw := e.NextHop.As16()
		b = append(b, 6)
		b = append(b, raw[:]...)
	default:
		raw := e.NextHop.As4()
		b = append(b, 4)
		b = append(b, raw[:]...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.ASPath)))
	for _, asn := range e.ASPath {
		b = binary.BigEndian.AppendUint32(b, asn)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Communities)))
	for _, c := range e.Communities {
		b = binary.BigEndian.AppendUint32(b, uint32(c))
	}
	_, err := w.Write(b)
	return err
}

// ReadEvents parses a dump stream until EOF.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var out []Event
	for {
		e, err := readEvent(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

func readEvent(r *bufio.Reader) (Event, error) {
	var e Event
	var hdr [15]byte // magic(2) kind(1) time(8) pathID(4)
	if _, err := io.ReadFull(r, hdr[:2]); err != nil {
		return e, err // clean EOF between records
	}
	if binary.BigEndian.Uint16(hdr[:2]) != dumpMagic {
		return e, fmt.Errorf("collector: bad record magic %#x", hdr[:2])
	}
	if _, err := io.ReadFull(r, hdr[2:]); err != nil {
		return e, unexpected(err)
	}
	e.Kind = EventKind(hdr[2])
	e.Time = timeFromNanos(int64(binary.BigEndian.Uint64(hdr[3:11])))
	e.PathID = binary.BigEndian.Uint32(hdr[11:15])

	var fb [2]byte
	if _, err := io.ReadFull(r, fb[:]); err != nil {
		return e, unexpected(err)
	}
	fam, bits := fb[0], int(fb[1])
	switch fam {
	case 4:
		var raw [4]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return e, unexpected(err)
		}
		if bits > 32 {
			return e, fmt.Errorf("collector: v4 prefix bits %d", bits)
		}
		e.Prefix = netip.PrefixFrom(netip.AddrFrom4(raw), bits)
	case 6:
		var raw [16]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return e, unexpected(err)
		}
		if bits > 128 {
			return e, fmt.Errorf("collector: v6 prefix bits %d", bits)
		}
		e.Prefix = netip.PrefixFrom(netip.AddrFrom16(raw), bits)
	default:
		return e, fmt.Errorf("collector: bad address family %d", fam)
	}

	nhFam, err := r.ReadByte()
	if err != nil {
		return e, unexpected(err)
	}
	switch nhFam {
	case 0:
	case 4:
		var raw [4]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return e, unexpected(err)
		}
		e.NextHop = netip.AddrFrom4(raw)
	case 6:
		var raw [16]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return e, unexpected(err)
		}
		e.NextHop = netip.AddrFrom16(raw)
	default:
		return e, fmt.Errorf("collector: bad next-hop family %d", nhFam)
	}

	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return e, unexpected(err)
	}
	pathLen := int(binary.BigEndian.Uint16(lenBuf[:]))
	for i := 0; i < pathLen; i++ {
		var asn [4]byte
		if _, err := io.ReadFull(r, asn[:]); err != nil {
			return e, unexpected(err)
		}
		e.ASPath = append(e.ASPath, binary.BigEndian.Uint32(asn[:]))
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return e, unexpected(err)
	}
	commLen := int(binary.BigEndian.Uint16(lenBuf[:]))
	for i := 0; i < commLen; i++ {
		var c [4]byte
		if _, err := io.ReadFull(r, c[:]); err != nil {
			return e, unexpected(err)
		}
		e.Communities = append(e.Communities, bgp.Community(binary.BigEndian.Uint32(c[:])))
	}
	return e, nil
}

// unexpected maps a mid-record EOF to an explicit truncation error.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func timeFromNanos(ns int64) time.Time { return time.Unix(0, ns) }
