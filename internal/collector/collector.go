// Package collector implements a passive BGP route collector in the
// style of RouteViews and RIPE RIS (paper §8): it peers with a router,
// records every update with a timestamp, maintains the resulting RIB,
// and serializes both to a compact MRT-inspired binary format.
//
// The paper positions Peering as complementary to collectors — they
// observe, Peering interacts — and Peering experiments routinely consume
// collector feeds for ground truth. Attaching a collector to a vBGP PoP
// reproduces that measurement loop inside the testbed.
package collector

import (
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/rib"
	"repro/internal/telemetry"
)

// Recorded-event counters by kind, across every collector in the
// process.
var (
	announcesRecorded *telemetry.Counter
	withdrawsRecorded *telemetry.Counter
)

func init() {
	reg := telemetry.Default()
	announcesRecorded = reg.Counter("collector_events_total", telemetry.L("kind", "announce"))
	withdrawsRecorded = reg.Counter("collector_events_total", telemetry.L("kind", "withdraw"))
}

// EventKind distinguishes recorded events.
type EventKind uint8

// Event kinds.
const (
	KindAnnounce EventKind = 1
	KindWithdraw EventKind = 2
)

// Event is one recorded routing event.
type Event struct {
	// Time the collector observed the event.
	Time time.Time
	// Kind is announce or withdraw.
	Kind EventKind
	// Prefix affected.
	Prefix netip.Prefix
	// PathID is the ADD-PATH identifier on the collecting session.
	PathID uint32
	// ASPath of an announcement (nil for withdrawals).
	ASPath []uint32
	// NextHop of an announcement.
	NextHop netip.Addr
	// Communities attached to an announcement.
	Communities []bgp.Community
}

// Collector is one collecting session.
type Collector struct {
	// Name identifies the collector ("route-views.amsix").
	Name string

	sess *bgp.Session

	mu     sync.Mutex
	events []Event
	table  *rib.Table
	// Now is the clock, injectable for deterministic tests.
	Now func() time.Time
}

// New creates a collector that peers over conn with a router speaking
// from platformASN. The collector advertises ADD-PATH reception so it
// records every path, exactly as modern collectors do.
func New(name string, localASN, platformASN uint32, localID netip.Addr, conn net.Conn) *Collector {
	c := &Collector{
		Name:  name,
		table: rib.NewTable(name),
		Now:   time.Now,
	}
	c.sess = bgp.NewSession(conn, bgp.Config{
		LocalASN:  localASN,
		RemoteASN: platformASN,
		LocalID:   localID,
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathReceive,
			bgp.IPv6Unicast: bgp.AddPathReceive,
		},
		OnUpdate: c.record,
	})
	go c.sess.Run()
	return c
}

// Session exposes the collecting BGP session.
func (c *Collector) Session() *bgp.Session { return c.sess }

// Close stops collecting.
func (c *Collector) Close() { c.sess.Close() }

func (c *Collector) record(u *bgp.Update) {
	now := c.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range append(append([]bgp.NLRI(nil), u.Withdrawn...), u.MPUnreach...) {
		c.events = append(c.events, Event{
			Time: now, Kind: KindWithdraw, Prefix: w.Prefix, PathID: uint32(w.ID),
		})
		withdrawsRecorded.Inc()
		c.table.Withdraw(w.Prefix, c.Name, w.ID)
	}
	store := func(nlri bgp.NLRI) {
		if u.Attrs == nil {
			return
		}
		e := Event{
			Time: now, Kind: KindAnnounce, Prefix: nlri.Prefix, PathID: uint32(nlri.ID),
			ASPath:      append([]uint32(nil), u.Attrs.ASPathFlat()...),
			NextHop:     u.Attrs.NextHop,
			Communities: append([]bgp.Community(nil), u.Attrs.Communities...),
		}
		if nlri.Prefix.Addr().Is6() {
			e.NextHop = u.Attrs.MPNextHop
		}
		c.events = append(c.events, e)
		announcesRecorded.Inc()
		c.table.Add(&rib.Path{
			Prefix: nlri.Prefix, ID: nlri.ID, Peer: c.Name,
			Attrs: u.Attrs.Clone(), EBGP: true, Seq: rib.NextSeq(),
		})
	}
	for _, nlri := range u.NLRI {
		store(nlri)
	}
	for _, nlri := range u.MPReach {
		store(nlri)
	}
}

// Events returns the recorded events in arrival order, optionally
// bounded to [from, to) (zero times mean unbounded).
func (c *Collector) Events(from, to time.Time) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if !from.IsZero() && e.Time.Before(from) {
			continue
		}
		if !to.IsZero() && !e.Time.Before(to) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// EventCount returns the number of recorded events.
func (c *Collector) EventCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// RIB returns the collector's current table (shared; treat read-only).
func (c *Collector) RIB() *rib.Table { return c.table }

// History returns the events affecting a prefix, in order — the per-
// prefix timeline tools like BGPStream reconstruct.
func (c *Collector) History(prefix netip.Prefix) []Event {
	prefix = prefix.Masked()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Prefix == prefix {
			out = append(out, e)
		}
	}
	return out
}

// Snapshot returns the current best paths per prefix, sorted by prefix —
// a TABLE_DUMP-style RIB view.
func (c *Collector) Snapshot() []Event {
	var out []Event
	c.table.WalkBest(func(prefix netip.Prefix, best *rib.Path) bool {
		out = append(out, Event{
			Kind: KindAnnounce, Prefix: prefix, PathID: uint32(best.ID),
			ASPath:      best.Attrs.ASPathFlat(),
			NextHop:     best.NextHop(),
			Communities: best.Attrs.Communities,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}
