package collector

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/pipe"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// speakerFor wires a collector against a scripted announcing session.
func speakerFor(t *testing.T, c func(conn *pipe.Conn)) *Collector {
	t.Helper()
	ca, cb := pipe.New()
	col := New("rv.test", 6447, 47065, ip("128.223.51.102"), ca)
	t.Cleanup(col.Close)
	c(cb)
	return col
}

func startAnnouncer(t *testing.T, conn *pipe.Conn) *bgp.Session {
	t.Helper()
	est := make(chan struct{})
	s := bgp.NewSession(conn, bgp.Config{
		LocalASN: 47065, RemoteASN: 6447, LocalID: ip("198.51.100.1"),
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSend,
			bgp.IPv6Unicast: bgp.AddPathSend,
		},
		OnEstablished: func() { close(est) },
	})
	go s.Run()
	t.Cleanup(func() { s.Close() })
	select {
	case <-est:
	case <-time.After(5 * time.Second):
		t.Fatal("announcer did not establish")
	}
	return s
}

func announce(t *testing.T, s *bgp.Session, prefix string, id uint32, asns []uint32) {
	t.Helper()
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop:     ip("198.51.100.1"),
		Communities: []bgp.Community{bgp.NewCommunity(47065, 100)},
	}
	if err := s.Send(&bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx(prefix), ID: bgp.PathID(id)}}}); err != nil {
		t.Fatal(err)
	}
}

func waitEvents(t *testing.T, col *Collector, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for col.EventCount() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if col.EventCount() < n {
		t.Fatalf("events = %d, want >= %d", col.EventCount(), n)
	}
}

func TestCollectorRecordsAnnouncesAndWithdraws(t *testing.T) {
	var sess *bgp.Session
	col := speakerFor(t, func(conn *pipe.Conn) { sess = startAnnouncer(t, conn) })

	announce(t, sess, "192.168.0.0/24", 1, []uint32{65001, 65002})
	announce(t, sess, "192.168.0.0/24", 2, []uint32{65003})
	waitEvents(t, col, 2)
	if got := col.RIB().PathCount(); got != 2 {
		t.Fatalf("RIB paths = %d (ADD-PATH reception)", got)
	}

	if err := sess.Send(&bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: pfx("192.168.0.0/24"), ID: 1}}}); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, col, 3)
	if got := col.RIB().PathCount(); got != 1 {
		t.Fatalf("RIB paths after withdraw = %d", got)
	}

	hist := col.History(pfx("192.168.0.0/24"))
	if len(hist) != 3 || hist[0].Kind != KindAnnounce || hist[2].Kind != KindWithdraw {
		t.Fatalf("history kinds: %+v", hist)
	}
	if hist[0].ASPath[0] != 65001 || len(hist[0].Communities) != 1 {
		t.Errorf("recorded attrs: %+v", hist[0])
	}

	snap := col.Snapshot()
	if len(snap) != 1 || snap[0].PathID != 2 {
		t.Errorf("snapshot: %+v", snap)
	}
}

func TestCollectorTimeWindow(t *testing.T) {
	var sess *bgp.Session
	col := speakerFor(t, func(conn *pipe.Conn) { sess = startAnnouncer(t, conn) })
	base := time.Unix(1700000000, 0)
	now := base
	col.Now = func() time.Time { return now }

	announce(t, sess, "10.0.0.0/24", 0, []uint32{65001})
	waitEvents(t, col, 1)
	now = base.Add(time.Hour)
	announce(t, sess, "10.0.1.0/24", 0, []uint32{65001})
	waitEvents(t, col, 2)

	early := col.Events(time.Time{}, base.Add(time.Minute))
	if len(early) != 1 || early[0].Prefix != pfx("10.0.0.0/24") {
		t.Errorf("early window: %+v", early)
	}
	late := col.Events(base.Add(time.Minute), time.Time{})
	if len(late) != 1 || late[0].Prefix != pfx("10.0.1.0/24") {
		t.Errorf("late window: %+v", late)
	}
	if all := col.Events(time.Time{}, time.Time{}); len(all) != 2 {
		t.Errorf("unbounded window: %d", len(all))
	}
}

func TestDumpRoundTrip(t *testing.T) {
	events := []Event{
		{Time: time.Unix(1700000000, 123), Kind: KindAnnounce, Prefix: pfx("192.168.0.0/24"),
			PathID: 7, ASPath: []uint32{47065, 61574}, NextHop: ip("127.65.0.1"),
			Communities: []bgp.Community{bgp.NewCommunity(47065, 1)}},
		{Time: time.Unix(1700000060, 0), Kind: KindWithdraw, Prefix: pfx("192.168.0.0/24"), PathID: 7},
		{Time: time.Unix(1700000120, 0), Kind: KindAnnounce, Prefix: pfx("2001:db8::/32"),
			PathID: 1, ASPath: []uint32{4200000001}, NextHop: ip("2001:db8::1")},
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("records = %d", len(got))
	}
	for i := range events {
		if !events[i].Time.Equal(got[i].Time) {
			t.Errorf("record %d time %v vs %v", i, got[i].Time, events[i].Time)
		}
		g, w := got[i], events[i]
		g.Time, w.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestDumpRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, []Event{{Time: time.Unix(0, 0), Kind: KindAnnounce,
		Prefix: pfx("10.0.0.0/8"), NextHop: ip("1.1.1.1"), ASPath: []uint32{1}}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the magic.
	bad := append([]byte(nil), data...)
	bad[0] = 0
	if _, err := ReadEvents(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Truncate mid-record.
	if _, err := ReadEvents(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestDumpPropertyRoundTrip(t *testing.T) {
	fn := func(kind bool, ns int64, id uint32, addr [4]byte, bits uint8, nh [4]byte, path []uint32, comms []uint32) bool {
		if len(path) > 100 {
			path = path[:100]
		}
		if len(comms) > 100 {
			comms = comms[:100]
		}
		e := Event{
			Time: time.Unix(0, ns), Kind: KindAnnounce,
			Prefix: netip.PrefixFrom(netip.AddrFrom4(addr), int(bits%33)),
			PathID: id, NextHop: netip.AddrFrom4(nh),
		}
		if kind {
			e.Kind = KindWithdraw
		}
		e.ASPath = append([]uint32(nil), path...)
		for _, c := range comms {
			e.Communities = append(e.Communities, bgp.Community(c))
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, []Event{e}); err != nil {
			return false
		}
		got, err := ReadEvents(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		if !g.Time.Equal(e.Time) {
			return false
		}
		g.Time, e.Time = time.Time{}, time.Time{}
		return reflect.DeepEqual(g, e)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzReadEvents hammers the dump parser with arbitrary bytes; as a
// plain test it replays the seed corpus.
func FuzzReadEvents(f *testing.F) {
	var buf bytes.Buffer
	WriteEvents(&buf, []Event{
		{Time: time.Unix(1700000000, 0), Kind: KindAnnounce, Prefix: pfx("10.0.0.0/8"),
			PathID: 1, ASPath: []uint32{65001}, NextHop: ip("1.1.1.1"),
			Communities: []bgp.Community{bgp.NewCommunity(47065, 1)}},
		{Time: time.Unix(1700000001, 0), Kind: KindWithdraw, Prefix: pfx("2001:db8::/32")},
	})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x52})
	seed := buf.Bytes()
	f.Add(seed[:len(seed)-5]) // truncated mid-record
	f.Add([]byte{0x50})       // half a magic
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0xFF // one corrupted byte mid-stream
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded events must re-encode and re-decode identically.
		var out bytes.Buffer
		if err := WriteEvents(&out, events); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadEvents(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed record count %d -> %d", len(events), len(again))
		}
	})
}
