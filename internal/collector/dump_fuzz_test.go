package collector

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// fuzzSeedEvents is a small dump covering both address families, an
// absent next hop, and path/community lists — the corpus the fuzzer
// mutates from.
func fuzzSeedEvents() []Event {
	return []Event{
		{
			Time: time.Unix(0, 1234), Kind: KindAnnounce,
			Prefix: netip.MustParsePrefix("184.164.224.0/24"), PathID: 1,
			ASPath:      []uint32{61574, 47065, 3356},
			NextHop:     netip.MustParseAddr("100.65.0.2"),
			Communities: []bgp.Community{bgp.Community(47065<<16 | 100)},
		},
		{
			Time: time.Unix(0, 5678), Kind: KindWithdraw,
			Prefix: netip.MustParsePrefix("2804:269c::/32"), PathID: 2,
		},
	}
}

// TestDumpCorruptInputs drives the decoder through every structured
// failure mode: each corruption must surface as an error, never a
// panic, and truncations must read as unexpected EOF.
func TestDumpCorruptInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, fuzzSeedEvents()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mutate := func(fn func(b []byte) []byte) []byte {
		return fn(append([]byte(nil), good...))
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string // substring of the expected error ("" = any)
		wantEOF bool   // io.ErrUnexpectedEOF expected
	}{
		{
			name:    "bad magic",
			data:    mutate(func(b []byte) []byte { b[0] = 0xAA; return b }),
			wantErr: "bad record magic",
		},
		{
			name:    "truncated header",
			data:    good[:10],
			wantEOF: true,
		},
		{
			name:    "truncated mid-address",
			data:    good[:20],
			wantEOF: true,
		},
		{
			name:    "bad address family",
			data:    mutate(func(b []byte) []byte { b[15] = 9; return b }),
			wantErr: "bad address family",
		},
		{
			name:    "v4 prefix bits out of range",
			data:    mutate(func(b []byte) []byte { b[16] = 77; return b }),
			wantErr: "v4 prefix bits",
		},
		{
			name:    "bad next-hop family",
			data:    mutate(func(b []byte) []byte { b[21] = 3; return b }),
			wantErr: "bad next-hop family",
		},
		{
			name: "path length claims more than stream holds",
			data: mutate(func(b []byte) []byte {
				// The first record's path-length field sits after
				// hdr(15) + fam/bits(2) + v4 addr(4) + nhFam(1) + nh(4).
				binary.BigEndian.PutUint16(b[26:28], 0xFFFF)
				return b
			}),
			wantEOF: true,
		},
		{
			name: "garbage between records",
			data: func() []byte {
				var one bytes.Buffer
				if err := WriteEvents(&one, fuzzSeedEvents()[:1]); err != nil {
					t.Fatal(err)
				}
				return append(one.Bytes(), 0xDE, 0xAD, 0xBE, 0xEF)
			}(),
			wantErr: "bad record magic",
		},
		{
			name:    "truncated final record",
			data:    good[:len(good)-3],
			wantEOF: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEvents(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt input parsed without error")
			}
			if tc.wantEOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
