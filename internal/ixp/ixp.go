// Package ixp models an Internet exchange point: a shared layer-2
// fabric, member networks drawn from a synthetic Internet topology,
// transparent route servers (RFC 7947) offering multilateral peering,
// and bilateral BGP sessions with a subset of members.
//
// Peering's richest PoPs live at IXPs — AMS-IX with 854 peer ASes (106
// bilateral, 4 route servers, 2 transits), Seattle-IX with 306 (63), and
// so on (paper §4.2, §6). This package reproduces those settings at
// configurable scale.
package ixp

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/bgp"
	"repro/internal/inet"
	"repro/internal/netsim"
)

// Member is one network present on the IXP fabric.
type Member struct {
	// ASN identifies the member in the topology.
	ASN uint32
	// Addr is the member's address on the peering LAN.
	Addr netip.Addr
	// Bilateral marks members that also hold a direct BGP session with
	// the platform (the "129 bilateral" of §4.2); all members are
	// reachable through the route servers.
	Bilateral bool
}

// IXP is one exchange.
type IXP struct {
	// Name is the exchange name, e.g. "AMS-IX".
	Name string
	// RouteServerASN is the ASN the route servers speak from.
	RouteServerASN uint32
	// Fabric is the shared peering LAN.
	Fabric *netsim.Segment

	topo *inet.Topology

	mu      sync.Mutex
	members map[uint32]*Member
	lanHost map[uint32]*netsim.Host
	nextIP  uint32
	lan     netip.Prefix
}

// New creates an exchange whose peering LAN is lan (members get
// addresses allocated from it).
func New(name string, rsASN uint32, topo *inet.Topology, lan netip.Prefix) *IXP {
	return &IXP{
		Name:           name,
		RouteServerASN: rsASN,
		Fabric:         netsim.NewSegment(name + "-fabric"),
		topo:           topo,
		members:        make(map[uint32]*Member),
		lanHost:        make(map[uint32]*netsim.Host),
		lan:            lan.Masked(),
	}
}

// AddMember joins an AS to the exchange, allocating it a LAN address and
// attaching a host to the fabric so the address answers ARP.
func (x *IXP) AddMember(asn uint32, bilateral bool) (*Member, error) {
	if x.topo.AS(asn) == nil {
		return nil, fmt.Errorf("ixp: AS%d not in topology", asn)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if m, ok := x.members[asn]; ok {
		return m, nil
	}
	x.nextIP++
	raw := x.lan.Addr().As4()
	host := x.nextIP
	raw[2] += byte(host >> 8)
	raw[3] += byte(host)
	m := &Member{ASN: asn, Addr: netip.AddrFrom4(raw), Bilateral: bilateral}
	x.members[asn] = m

	h := netsim.NewHost(fmt.Sprintf("%s-as%d", x.Name, asn))
	mac := memberMAC(asn)
	h.AddInterface("ix0", mac, netip.PrefixFrom(m.Addr, x.lan.Bits()), x.Fabric)
	x.lanHost[asn] = h
	return m, nil
}

// memberMAC derives a member's fabric MAC from its ASN.
func memberMAC(asn uint32) (m [6]byte) {
	m[0], m[1] = 0x02, 0x1e
	m[2], m[3], m[4], m[5] = byte(asn>>24), byte(asn>>16), byte(asn>>8), byte(asn)
	return
}

// Members returns the exchange's members sorted by ASN.
func (x *IXP) Members() []*Member {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]*Member, 0, len(x.members))
	for _, m := range x.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// MemberCounts returns (total, bilateral) member counts — the §4.2
// statistics.
func (x *IXP) MemberCounts() (total, bilateral int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, m := range x.members {
		total++
		if m.Bilateral {
			bilateral++
		}
	}
	return total, bilateral
}

// Host returns the fabric host simulating a member (tests).
func (x *IXP) Host(asn uint32) *netsim.Host {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.lanHost[asn]
}

// RouteServer is one transparent route server: it relays every member's
// routes over a single session without inserting its own ASN in the path
// and without altering the next hop, which remains the member's fabric
// address (RFC 7947) — exactly the property that lets vBGP build one
// forwarding table per member behind a single session.
type RouteServer struct {
	// Name distinguishes the servers ("rs1".."rs4" at AMS-IX).
	Name string

	x    *IXP
	sess *bgp.Session
	// MaxRoutesPerMember bounds announcements (scale knob; 0 = all).
	MaxRoutesPerMember int
}

// ConnectRouteServer starts a route-server session toward the platform
// over conn and returns the server. Routes of every current member are
// announced on establishment.
func (x *IXP) ConnectRouteServer(name string, platformASN uint32, conn net.Conn, maxRoutesPerMember int) *RouteServer {
	rs := &RouteServer{Name: name, x: x, MaxRoutesPerMember: maxRoutesPerMember}
	rs.sess = bgp.NewSession(conn, bgp.Config{
		LocalASN:  x.RouteServerASN,
		RemoteASN: platformASN,
		LocalID:   netip.MustParseAddr("192.0.2.99"),
		Families:  []bgp.AFISAFI{bgp.IPv4Unicast, bgp.IPv6Unicast},
		// Per-member path IDs let one session carry every member's route
		// for the same prefix.
		AddPath: map[bgp.AFISAFI]uint8{
			bgp.IPv4Unicast: bgp.AddPathSend,
			bgp.IPv6Unicast: bgp.AddPathSend,
		},
		OnEstablished: func() { rs.announceAll() },
		OnUpdate:      func(u *bgp.Update) { rs.handleUpdate(u) },
	})
	go rs.sess.Run()
	return rs
}

// Session exposes the route server's BGP session.
func (rs *RouteServer) Session() *bgp.Session { return rs.sess }

// Close shuts the session down.
func (rs *RouteServer) Close() { rs.sess.Close() }

func (rs *RouteServer) announceAll() {
	for _, m := range rs.x.Members() {
		routes := rs.x.topo.RoutesAt(m.ASN)
		// When capped, announce the member's own originations first so a
		// scaled-down exchange still carries every member's identity.
		sort.SliceStable(routes, func(i, j int) bool {
			return routes[i].LearnedOver == inet.RelOrigin && routes[j].LearnedOver != inet.RelOrigin
		})
		for i, rt := range routes {
			if rs.MaxRoutesPerMember > 0 && i >= rs.MaxRoutesPerMember {
				break
			}
			attrs := &bgp.PathAttrs{
				Origin: bgp.OriginIGP, HasOrigin: true,
				ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: rt.Path}},
				NextHop: m.Addr, // transparent: next hop is the member
			}
			u := &bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: rt.Prefix, ID: bgp.PathID(m.ASN)}}}
			if err := rs.sess.Send(u); err != nil {
				return
			}
		}
	}
}

// handleUpdate relays a platform announcement into every member AS: the
// route server redistributes to all members, each of which classifies
// the platform as a peer.
func (rs *RouteServer) handleUpdate(u *bgp.Update) {
	for _, m := range rs.x.Members() {
		for _, w := range u.Withdrawn {
			_ = rs.x.topo.RemoveExternal(m.ASN, w.Prefix)
		}
		if u.Attrs == nil {
			continue
		}
		for _, nlri := range u.NLRI {
			_ = rs.x.topo.InjectExternal(m.ASN, nlri.Prefix, u.Attrs.ASPathFlat(), inet.RelPeer)
		}
	}
}

// ConnectBilateral starts a direct session between member asn and the
// platform over conn (a bilateral peering, inet.RelPeer). maxRoutes
// bounds the member's announced table (0 = all).
func (x *IXP) ConnectBilateral(asn uint32, platformASN uint32, maxRoutes int, conn net.Conn) (*inet.Speaker, error) {
	x.mu.Lock()
	m := x.members[asn]
	x.mu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("ixp: AS%d is not a member of %s", asn, x.Name)
	}
	return inet.NewSpeaker(x.topo, asn, m.Addr, inet.RelPeer, platformASN, maxRoutes, conn), nil
}
