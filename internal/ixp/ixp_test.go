package ixp

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/pipe"
)

const platformASN = 47065

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func smallInternet(t *testing.T) *inet.Topology {
	t.Helper()
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)
	if err := inet.Validate(topo); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestMembershipAndAddressing(t *testing.T) {
	topo := smallInternet(t)
	x := New("TEST-IX", 64700, topo, pfx("80.249.208.0/21"))
	m1, err := x.AddMember(10000, true)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := x.AddMember(10001, false)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Addr == m2.Addr {
		t.Error("members share a LAN address")
	}
	if !pfx("80.249.208.0/21").Contains(m1.Addr) {
		t.Errorf("member address %s outside LAN", m1.Addr)
	}
	total, bilateral := x.MemberCounts()
	if total != 2 || bilateral != 1 {
		t.Errorf("counts = %d/%d", total, bilateral)
	}
	// Duplicate membership is idempotent.
	again, _ := x.AddMember(10000, true)
	if again != m1 {
		t.Error("duplicate AddMember created a new member")
	}
	if _, err := x.AddMember(999999, false); err == nil {
		t.Error("unknown AS admitted")
	}
}

func TestRouteServerAnnouncesMemberRoutes(t *testing.T) {
	topo := smallInternet(t)
	x := New("TEST-IX", 64700, topo, pfx("80.249.208.0/21"))
	m1, _ := x.AddMember(10000, false)
	m2, _ := x.AddMember(10001, false)

	router := core.NewRouter(core.Config{
		Name: "pop", ASN: platformASN, RouterID: netip.MustParseAddr("198.51.100.1"),
	})
	router.AddInterface("ix0", "neighbor", pfx("80.249.208.254/21"), x.Fabric)

	cr, cx := pipe.New()
	nbr, err := router.AddNeighbor(core.NeighborConfig{
		Name: "rs1", ID: 1, ASN: 64700, Addr: netip.MustParseAddr("80.249.208.250"),
		Interface: "ix0", Conn: cr, RouteServer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := x.ConnectRouteServer("rs1", platformASN, cx, 5)
	defer rs.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && nbr.Table.PathCount() < 10 {
		time.Sleep(5 * time.Millisecond)
	}
	// 2 members x 5 routes each.
	if got := nbr.Table.PathCount(); got != 10 {
		t.Fatalf("routes via route server = %d, want 10", got)
	}
	// Next hops are the members' fabric addresses (transparent RS), and
	// the RS ASN never appears in paths.
	rt := router.LookupVia("rs1", inet.PrefixForASN(10000).Addr())
	if rt == nil {
		t.Fatal("member 10000's prefix not in RS table")
	}
	for _, asn := range rt.Attrs.ASPathFlat() {
		if asn == 64700 {
			t.Error("route server ASN leaked into the path")
		}
	}
	_ = m1
	_ = m2
}

func TestRouteServerRelaysPlatformAnnouncements(t *testing.T) {
	topo := smallInternet(t)
	x := New("TEST-IX", 64700, topo, pfx("80.249.208.0/21"))
	x.AddMember(10000, false)
	x.AddMember(10001, false)

	router := core.NewRouter(core.Config{
		Name: "pop", ASN: platformASN, RouterID: netip.MustParseAddr("198.51.100.1"),
	})
	router.AddInterface("ix0", "neighbor", pfx("80.249.208.254/21"), x.Fabric)
	cr, cx := pipe.New()
	if _, err := router.AddNeighbor(core.NeighborConfig{
		Name: "rs1", ID: 1, ASN: 64700, Addr: netip.MustParseAddr("80.249.208.250"),
		Interface: "ix0", Conn: cr, RouteServer: true,
	}); err != nil {
		t.Fatal(err)
	}
	rs := x.ConnectRouteServer("rs1", platformASN, cx, 1)
	defer rs.Close()

	// An experiment announces through the platform; the RS relays to all
	// members, whose customer cones learn the prefix.
	er, ee := pipe.New()
	if _, err := router.ConnectExperiment("X1", 61574, er); err != nil {
		t.Fatal(err)
	}
	exp := bgp.NewSession(ee, bgp.Config{
		LocalASN: 61574, RemoteASN: platformASN,
		LocalID: netip.MustParseAddr("100.65.0.1"),
	})
	go exp.Run()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && exp.State() != bgp.StateEstablished {
		time.Sleep(5 * time.Millisecond)
	}
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{61574}}},
		NextHop: netip.MustParseAddr("100.65.0.1"),
	}
	// No policy engine configured: announcement passes through.
	if err := exp.Send(&bgp.Update{Attrs: attrs, NLRI: []bgp.NLRI{{Prefix: pfx("184.164.224.0/24")}}}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if topo.Reachable(10000, pfx("184.164.224.0/24")) && topo.Reachable(10001, pfx("184.164.224.0/24")) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !topo.Reachable(10000, pfx("184.164.224.0/24")) {
		t.Fatal("member did not learn the platform announcement via RS")
	}
	rt := topo.RouteAt(10000, pfx("184.164.224.0/24"))
	want := []uint32{10000, platformASN, 61574}
	if len(rt.Path) != 3 || rt.Path[0] != want[0] || rt.Path[1] != want[1] || rt.Path[2] != want[2] {
		t.Errorf("member path %v, want %v", rt.Path, want)
	}
}

func TestBilateralSession(t *testing.T) {
	topo := smallInternet(t)
	x := New("TEST-IX", 64700, topo, pfx("80.249.208.0/21"))
	m, _ := x.AddMember(10000, true)

	router := core.NewRouter(core.Config{
		Name: "pop", ASN: platformASN, RouterID: netip.MustParseAddr("198.51.100.1"),
	})
	router.AddInterface("ix0", "neighbor", pfx("80.249.208.254/21"), x.Fabric)
	cr, cx := pipe.New()
	nbr, err := router.AddNeighbor(core.NeighborConfig{
		Name: "as10000", ID: 5, ASN: 10000, Addr: m.Addr, Interface: "ix0", Conn: cr,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := x.ConnectBilateral(10000, platformASN, 0, cx)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && nbr.Table.PathCount() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if nbr.Table.PathCount() == 0 {
		t.Fatal("no routes over bilateral session")
	}
	// First AS of each path must be the member itself (no RS in between).
	rt := router.LookupVia("as10000", inet.PrefixForASN(100).Addr())
	if rt == nil {
		t.Fatal("tier-1 prefix missing from bilateral table")
	}
	if rt.Attrs.FirstASN() != 10000 {
		t.Errorf("first ASN %d, want 10000", rt.Attrs.FirstASN())
	}
	if _, err := x.ConnectBilateral(424242, platformASN, 0, cx); err == nil {
		t.Error("bilateral with non-member accepted")
	}
}

func TestRouteServerDataPlaneForwardsToMember(t *testing.T) {
	// Transparent RS semantics end to end: a frame steered at the RS
	// neighbor's MAC must be forwarded to the MEMBER whose route wins,
	// using the member's fabric address as next hop (RFC 7947), not the
	// route server's.
	topo := smallInternet(t)
	x := New("TEST-IX", 64700, topo, pfx("80.249.208.0/21"))
	m, _ := x.AddMember(10000, false)

	router := core.NewRouter(core.Config{
		Name: "pop", ASN: platformASN, RouterID: netip.MustParseAddr("198.51.100.1"),
	})
	router.AddInterface("ix0", "neighbor", pfx("80.249.215.254/21"), x.Fabric)
	expLAN := netsim.NewSegment("exp-lan")
	router.AddInterface("exp0", "experiment", pfx("100.65.0.254/24"), expLAN)

	cr, cx := pipe.New()
	nbr, err := router.AddNeighbor(core.NeighborConfig{
		Name: "rs1", ID: 1, ASN: 64700, Addr: netip.MustParseAddr("80.249.215.250"),
		Interface: "ix0", Conn: cr, RouteServer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := x.ConnectRouteServer("rs1", platformASN, cx, 3)
	defer rs.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && nbr.Table.PathCount() < 3 {
		time.Sleep(5 * time.Millisecond)
	}

	// Count IPv4 frames at the member's fabric host.
	memberIfc := x.Host(10000).Interfaces()[0]
	var rx atomic.Uint64
	memberIfc.SetHandler(func(_ *netsim.Interface, fr *ethernet.Frame) {
		if fr.Type == ethernet.TypeIPv4 {
			rx.Add(1)
		}
	})

	// An experiment-side interface steers a packet at the RS table.
	tx := netsim.NewInterface("tx", ethernet.MAC{0x0a, 0, 0, 0, 0, 1})
	tx.Attach(expLAN)
	dst := inet.PrefixForASN(10000).Addr().Next()
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: netip.MustParseAddr("184.164.224.1"), Dst: dst}
	tx.Send(&ethernet.Frame{Dst: nbr.LocalMAC, Type: ethernet.TypeIPv4, Payload: pkt.Marshal()})

	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rx.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if rx.Load() != 1 {
		t.Fatalf("member received %d frames; next hop should be member %s", rx.Load(), m.Addr)
	}
}
