package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("code", "200"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same series regardless of
	// label order.
	c2 := r.Counter("multi_total", L("a", "1"), L("b", "2"))
	c3 := r.Counter("multi_total", L("b", "2"), L("a", "1"))
	if c2 != c3 {
		t.Error("label order created distinct series")
	}
	// Distinct labels are distinct series.
	if r.Counter("requests_total", L("code", "500")) == c {
		t.Error("distinct labels shared a series")
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	var sample Sample
	for _, s := range r.Snapshot() {
		if s.Name == "latency" {
			sample = s
		}
	}
	// Cumulative buckets: <=1: 2, <=10: 3, <=100: 4, +Inf: 5.
	want := []uint64{2, 3, 4, 5}
	if len(sample.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", sample.Buckets)
	}
	for i, b := range sample.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
}

func TestSnapshotSortedAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", L("x", "1")).Add(3)
	r.Counter("a_total", L("x", "2")).Add(4)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	if snap[0].Name != "a_total" || snap[2].Name != "b_total" {
		t.Errorf("snapshot not sorted: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if got := r.Value("a_total"); got != 7 {
		t.Errorf("Value(a_total) = %g, want 7 (sum over label sets)", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("updates_total", L("pop", "amsix")).Add(12)
	r.Gauge("routes").Set(3)
	r.Histogram("bytes", []float64{64}).Observe(32)
	text := r.Text()
	for _, want := range []string{
		"# TYPE updates_total counter",
		`updates_total{pop="amsix"} 12`,
		"routes 3",
		`bytes_bucket{le="64"} 1`,
		`bytes_bucket{le="+Inf"} 1`,
		"bytes_sum 32",
		"bytes_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", L("w", "x")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10}).Observe(float64(j % 20))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", L("w", "x")).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
