package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestStationStatsAndReport(t *testing.T) {
	reg := NewRegistry()
	st := NewStation(reg)
	st.Handle(Event{Kind: EventPeerUp, Time: time.Unix(10, 0), PoP: "amsix", Peer: "transit1", PeerASN: 1000})
	st.Handle(Event{Kind: EventStatsReport, Time: time.Unix(20, 0), PoP: "amsix", Peer: "transit1",
		Stats: []Stat{{Type: StatRoutesAdjIn, Value: 7}, {Type: StatUpdatesIn, Value: 42}}})
	st.Handle(Event{Kind: EventPeerUp, Time: time.Unix(5, 0), PoP: "seattle", Peer: "peer64", PeerASN: 10000})

	p, ok := st.Peer("amsix", "transit1")
	if !ok {
		t.Fatal("transit1 not tracked")
	}
	if !p.Up || p.Stats[StatRoutesAdjIn] != 7 || p.Stats[StatUpdatesIn] != 42 {
		t.Errorf("peer state = %+v", p)
	}
	if !p.LastSeen.Equal(time.Unix(20, 0)) {
		t.Errorf("LastSeen = %v, want the stats-report time", p.LastSeen)
	}

	peers := st.Peers()
	if len(peers) != 2 || peers[0].PoP != "amsix" || peers[1].PoP != "seattle" {
		t.Fatalf("Peers() = %+v", peers)
	}

	report := st.Report()
	for _, want := range []string{"transit1", "peer64", "1000", "10000", "up", "7"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	if got := reg.Value("telemetry_station_events_total"); got != 3 {
		t.Errorf("telemetry_station_events_total = %g, want 3", got)
	}
	if st.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", st.Processed())
	}
}
