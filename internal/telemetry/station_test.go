package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStationStatsAndReport(t *testing.T) {
	reg := NewRegistry()
	st := NewStation(reg)
	st.Handle(Event{Kind: EventPeerUp, Time: time.Unix(10, 0), PoP: "amsix", Peer: "transit1", PeerASN: 1000})
	st.Handle(Event{Kind: EventStatsReport, Time: time.Unix(20, 0), PoP: "amsix", Peer: "transit1",
		Stats: []Stat{{Type: StatRoutesAdjIn, Value: 7}, {Type: StatUpdatesIn, Value: 42}}})
	st.Handle(Event{Kind: EventPeerUp, Time: time.Unix(5, 0), PoP: "seattle", Peer: "peer64", PeerASN: 10000})

	p, ok := st.Peer("amsix", "transit1")
	if !ok {
		t.Fatal("transit1 not tracked")
	}
	if !p.Up || p.Stats[StatRoutesAdjIn] != 7 || p.Stats[StatUpdatesIn] != 42 {
		t.Errorf("peer state = %+v", p)
	}
	if !p.LastSeen.Equal(time.Unix(20, 0)) {
		t.Errorf("LastSeen = %v, want the stats-report time", p.LastSeen)
	}

	peers := st.Peers()
	if len(peers) != 2 || peers[0].PoP != "amsix" || peers[1].PoP != "seattle" {
		t.Fatalf("Peers() = %+v", peers)
	}

	report := st.Report()
	for _, want := range []string{"transit1", "peer64", "1000", "10000", "up", "7"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	if got := reg.Value("telemetry_station_events_total"); got != 3 {
		t.Errorf("telemetry_station_events_total = %g, want 3", got)
	}
	if st.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", st.Processed())
	}
}

// TestStationConcurrentAccess hammers Handle from several writers while
// readers pull Peer/Peers snapshots and mutate them. The accessors
// return deep copies, so writing into a returned Stats map must never
// race the station's own state (run with -race to enforce this) nor
// corrupt what later readers observe.
func TestStationConcurrentAccess(t *testing.T) {
	st := NewStation(NewRegistry())
	pops := []string{"amsix", "seattle", "phoenix"}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				pop := pops[i%len(pops)]
				st.Handle(Event{Kind: EventPeerUp, Time: time.Unix(int64(i), 0), PoP: pop, Peer: "transit", PeerASN: 1000})
				st.Handle(Event{Kind: EventRouteMonitoring, Time: time.Unix(int64(i), 1), PoP: pop, Peer: "transit"})
				st.Handle(Event{Kind: EventStatsReport, Time: time.Unix(int64(i), 2), PoP: pop, Peer: "transit",
					Stats: []Stat{{Type: StatRoutesAdjIn, Value: uint64(i)}}})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if p, ok := st.Peer("amsix", "transit"); ok {
					p.Stats[StatRoutesAdjIn] = 0xdead // must only touch the copy
					p.Announces = 0
				}
				for _, p := range st.Peers() {
					p.Stats[StatUpdatesIn] = 0xbeef
				}
			}
		}()
	}
	wg.Wait()

	for _, p := range st.Peers() {
		if p.Stats[StatRoutesAdjIn] == 0xdead || p.Stats[StatUpdatesIn] == 0xbeef {
			t.Fatalf("reader mutation leaked into station state: %+v", p)
		}
		if p.Announces == 0 {
			t.Errorf("announces for %s zeroed by a reader mutation", p.PoP)
		}
	}
	if got, want := st.Processed(), uint64(4*500*3); got != want {
		t.Errorf("Processed = %d, want %d", got, want)
	}
}
