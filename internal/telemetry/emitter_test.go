package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestEmitterFloodDoesNotBlock is the bounded-queue overflow test:
// many producers flood a small queue with no consumer. Every Emit must
// return promptly (the producers finish), and accepted + dropped must
// account for every event, with dropped mirrored into
// telemetry_events_dropped_total.
func TestEmitterFloodDoesNotBlock(t *testing.T) {
	reg := NewRegistry()
	const capacity = 16
	em := NewEmitter(reg, capacity)

	const producers = 8
	const perProducer = 5000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				em.Emit(Event{Kind: EventRouteMonitoring, Peer: "flood"})
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producers blocked: Emit is not non-blocking under flood")
	}

	total := em.Accepted() + em.Dropped()
	if want := uint64(producers * perProducer); total != want {
		t.Errorf("accepted(%d) + dropped(%d) = %d, want %d", em.Accepted(), em.Dropped(), total, want)
	}
	if em.Accepted() > uint64(capacity) {
		t.Errorf("accepted %d events into a capacity-%d queue with no consumer", em.Accepted(), capacity)
	}
	if em.Dropped() == 0 {
		t.Error("flood of a tiny queue dropped nothing")
	}
	if got := uint64(reg.Value("telemetry_events_dropped_total")); got != em.Dropped() {
		t.Errorf("telemetry_events_dropped_total = %d, want %d", got, em.Dropped())
	}
	if got := uint64(reg.Value("telemetry_events_total")); got != em.Accepted() {
		t.Errorf("telemetry_events_total = %d, want %d", got, em.Accepted())
	}
}

// TestEmitterCloseRace: Emit concurrent with Close must never panic
// (send on closed channel) and post-close emits must count as drops.
func TestEmitterCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		em := NewEmitter(NewRegistry(), 4)
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					em.Emit(Event{Kind: EventPeerUp})
				}
			}()
		}
		em.Close()
		wg.Wait()
		if em.Emit(Event{Kind: EventPeerUp}) {
			t.Fatal("Emit accepted an event after Close")
		}
	}
}

func TestEmitterDeliversToStation(t *testing.T) {
	reg := NewRegistry()
	em := NewEmitter(reg, 64)
	st := NewStation(reg)
	go st.Run(em)

	em.Emit(Event{Kind: EventPeerUp, PoP: "amsix", Peer: "transit1", PeerASN: 1000})
	em.Emit(Event{Kind: EventRouteMonitoring, PoP: "amsix", Peer: "transit1"})
	em.Emit(Event{Kind: EventRouteMonitoring, PoP: "amsix", Peer: "transit1", Withdraw: true})
	em.Emit(Event{Kind: EventPeerDown, PoP: "amsix", Peer: "transit1", Reason: "test"})
	em.Close()

	deadline := time.Now().Add(5 * time.Second)
	for st.Processed() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("station processed %d of 4 events", st.Processed())
		}
		time.Sleep(time.Millisecond)
	}
	p, ok := st.Peer("amsix", "transit1")
	if !ok {
		t.Fatal("peer not tracked")
	}
	if p.Up || p.UpCount != 1 || p.DownCount != 1 || p.Announces != 1 || p.Withdraws != 1 {
		t.Errorf("peer state = %+v", p)
	}
	if p.ASN != 1000 {
		t.Errorf("ASN = %d, want 1000 (learned from PeerUp)", p.ASN)
	}
	if p.LastReason != "test" {
		t.Errorf("LastReason = %q", p.LastReason)
	}
}
