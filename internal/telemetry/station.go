package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PeerStatus is the station's view of one monitored session, keyed by
// (PoP, Peer) — the per-peer state a BMP station reconstructs from the
// event stream.
type PeerStatus struct {
	PoP  string
	Peer string
	ASN  uint32
	// Up is the last known session state.
	Up bool
	// UpCount and DownCount tally session transitions; DownCount > 1
	// means flapping.
	UpCount   uint64
	DownCount uint64
	// Announces and Withdraws count RouteMonitoring events — the
	// per-neighbor update/withdraw dynamics route-leak and community-
	// churn studies measure.
	Announces uint64
	Withdraws uint64
	// LastReason is the most recent PeerDown reason.
	LastReason string
	// LastSeen is the timestamp of the most recent event.
	LastSeen time.Time
	// Stats holds the latest StatsReport TLVs by type.
	Stats map[uint16]uint64
}

type peerKey struct {
	pop, peer string
}

// Station is the consumer half of the monitoring hook: it applies the
// event stream to per-peer state and renders operator reports. One
// station can watch every router of a platform.
type Station struct {
	mu        sync.Mutex
	peers     map[peerKey]*PeerStatus
	processed atomic.Uint64

	eventCounters [5]*Counter // by kind, index 1..4
}

// NewStation creates a station registering its counters against reg
// (nil selects Default()).
func NewStation(reg *Registry) *Station {
	if reg == nil {
		reg = Default()
	}
	s := &Station{peers: make(map[peerKey]*PeerStatus)}
	for k := EventPeerUp; k <= EventStatsReport; k++ {
		s.eventCounters[k] = reg.Counter("telemetry_station_events_total", L("kind", k.String()))
	}
	return s
}

// Handle applies one event to the station's state.
func (s *Station) Handle(e Event) {
	if e.Kind >= EventPeerUp && e.Kind <= EventStatsReport {
		s.eventCounters[e.Kind].Inc()
	}
	s.mu.Lock()
	key := peerKey{e.PoP, e.Peer}
	p := s.peers[key]
	if p == nil {
		p = &PeerStatus{PoP: e.PoP, Peer: e.Peer, Stats: make(map[uint16]uint64)}
		s.peers[key] = p
	}
	if e.PeerASN != 0 {
		p.ASN = e.PeerASN
	}
	if e.Time.After(p.LastSeen) {
		p.LastSeen = e.Time
	}
	switch e.Kind {
	case EventPeerUp:
		p.Up = true
		p.UpCount++
	case EventPeerDown:
		p.Up = false
		p.DownCount++
		p.LastReason = e.Reason
	case EventRouteMonitoring:
		if e.Withdraw {
			p.Withdraws++
		} else {
			p.Announces++
		}
	case EventStatsReport:
		for _, st := range e.Stats {
			p.Stats[st.Type] = st.Value
		}
	}
	s.mu.Unlock()
	s.processed.Add(1)
}

// Run consumes em's events until the emitter is closed and drained.
// Call in a goroutine.
func (s *Station) Run(em *Emitter) {
	for e := range em.Events() {
		s.Handle(e)
	}
}

// Processed returns how many events the station has applied.
func (s *Station) Processed() uint64 { return s.processed.Load() }

// Peer returns the status of one monitored session.
func (s *Station) Peer(pop, peer string) (PeerStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[peerKey{pop, peer}]
	if !ok {
		return PeerStatus{}, false
	}
	return copyStatus(p), true
}

// Peers returns every monitored session, sorted by PoP then peer name.
func (s *Station) Peers() []PeerStatus {
	s.mu.Lock()
	out := make([]PeerStatus, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, copyStatus(p))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].PoP != out[j].PoP {
			return out[i].PoP < out[j].PoP
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

func copyStatus(p *PeerStatus) PeerStatus {
	out := *p
	out.Stats = make(map[uint16]uint64, len(p.Stats))
	for k, v := range p.Stats {
		out.Stats[k] = v
	}
	return out
}

// Report renders the per-peer state as an operator table.
func (s *Station) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %-10s %5s %9s %9s %9s %10s\n",
		"pop", "peer", "asn", "state", "announces", "withdraws", "flaps", "routes")
	for _, p := range s.Peers() {
		state := "down"
		if p.Up {
			state = "up"
		}
		routes := "-"
		if r, ok := p.Stats[StatRoutesAdjIn]; ok {
			routes = fmt.Sprintf("%d", r)
		}
		flaps := uint64(0)
		if p.DownCount > 0 {
			flaps = p.DownCount
		}
		fmt.Fprintf(&b, "%-8s %-22s %-10d %5s %9d %9d %9d %10s\n",
			p.PoP, p.Peer, p.ASN, state, p.Announces, p.Withdraws, flaps, routes)
	}
	return b.String()
}
