package telemetry

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// FuzzEventDecode feeds arbitrary bytes to the event decoder. The
// decoder must never panic, and any event it accepts must re-encode to
// exactly the bytes it consumed (canonical-form round-trip).
func FuzzEventDecode(f *testing.F) {
	seeds := []Event{
		{Kind: EventPeerUp, Time: time.Unix(0, 1), PoP: "amsix", Peer: "transit1", PeerASN: 1000},
		{Kind: EventPeerDown, Time: time.Unix(0, 2), PoP: "amsix", Peer: "peer64", Reason: "hold timer expired"},
		{
			Kind: EventRouteMonitoring, Time: time.Unix(0, 3), PoP: "seattle", Peer: "exp:exp1",
			PeerASN: 61574, PathID: 7,
			Prefix:  netip.MustParsePrefix("184.164.224.0/23"),
			NextHop: netip.MustParseAddr("100.65.0.1"),
			ASPath:  []uint32{61574, 47065},
		},
		{
			Kind: EventRouteMonitoring, Time: time.Unix(0, 4), PoP: "seattle", Peer: "exp:exp1",
			Prefix: netip.MustParsePrefix("2804:269c::/32"), Withdraw: true,
		},
		{
			Kind: EventStatsReport, Time: time.Unix(0, 5), PoP: "amsix", Peer: "transit1",
			Stats: []Stat{{Type: StatRoutesAdjIn, Value: 12}, {Type: StatUpdatesIn, Value: 90}},
		},
	}
	for _, e := range seeds {
		f.Add(AppendEncode(nil, e))
	}
	f.Add([]byte{0x42, 0x4d})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeEvent(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendEncode(nil, e)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data[:n], re)
		}
	})
}
