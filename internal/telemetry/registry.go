// Package telemetry is the platform-wide observability layer: a
// dependency-free, race-safe metrics registry (counters, gauges,
// fixed-bucket histograms with labels) plus a BMP-inspired monitoring
// station (RFC 7854) that consumes session and route events from vBGP
// routers over a non-blocking bounded queue.
//
// The paper's operations story (§5: intent-based configuration,
// reconciliation, attribution of experiment actions) presupposes that
// operators can see what vBGP is doing; PEERING runs collectors and
// per-PoP monitoring in production. This package is that layer for the
// reproduction: every instrumented subsystem registers metrics against
// Default(), routers emit PeerUp/PeerDown/RouteMonitoring/StatsReport
// events through an Emitter, and a Station keeps the per-neighbor view
// an operator (or the vbgp-bench monitor report) reads.
//
// Monitoring must never stall the control plane: Emitter.Emit is
// non-blocking and drops with a counter on overflow, and every metric
// mutation is a single atomic operation after the first (registration)
// lookup.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in the exposition format.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use; mutation is one atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observations are counted into
// the first bucket whose upper bound is >= the value; values above every
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one cumulative histogram bucket in a Sample.
type Bucket struct {
	// UpperBound is the inclusive upper edge (+Inf for the last).
	UpperBound float64
	// Count is the cumulative count of observations <= UpperBound.
	Count uint64
}

// Sample is one metric's state in a Snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value is the counter or gauge value; for histograms it is the sum.
	Value float64
	// Count is the observation count (histograms only).
	Count uint64
	// Buckets are the cumulative bucket counts (histograms only).
	Buckets []Bucket
}

// metric is one registered (name, labels) series.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a race-safe collection of metrics. The zero value is not
// usable; create with NewRegistry or use the process-wide Default.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that instrumented packages
// (bgp, core, policy, bpf, rib, collector) register against.
func Default() *Registry { return defaultRegistry }

// key renders the canonical identity of a series. Labels are sorted so
// registration order does not matter.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String(), sorted
}

func (r *Registry) lookup(name string, kind Kind, labels []Label) *metric {
	key, sorted := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: sorted, kind: kind}
	r.metrics[key] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use. Callers on hot paths should resolve once and keep the pointer.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, KindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, KindGauge, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds, creating it on first use. Later calls for the
// same series ignore buckets (the first registration wins).
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	m := r.lookup(name, KindHistogram, labels)
	if m.h == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		m.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return m.h
}

// Snapshot returns the state of every registered series, sorted by name
// then label signature — the programmatic view tests and benches use.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	byKey := make(map[string]*metric, len(r.metrics))
	for k, m := range r.metrics {
		keys = append(keys, k)
		byKey[k] = m
	}
	r.mu.Unlock()
	sort.Strings(keys)

	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		m := byKey[k]
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = float64(m.g.Value())
		case KindHistogram:
			s.Value = m.h.Sum()
			s.Count = m.h.Count()
			cum := uint64(0)
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(m.h.bounds) {
					ub = m.h.bounds[i]
				}
				s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
			}
		}
		out = append(out, s)
	}
	return out
}

// Value sums the current value of every series named name (all label
// sets) — a convenience for test assertions. Histograms contribute
// their observation count.
func (r *Registry) Value(name string) float64 {
	total := 0.0
	for _, s := range r.Snapshot() {
		if s.Name != name {
			continue
		}
		if s.Kind == KindHistogram {
			total += float64(s.Count)
		} else {
			total += s.Value
		}
	}
	return total
}

// formatValue renders floats without exponent noise for whole numbers.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText renders every series in the plain-text exposition format
// (one `name{labels} value` line per series, preceded by a # TYPE
// comment), the format peeringd serves on -metrics and peering-cli
// renders with the metrics verb.
func (r *Registry) WriteText(w io.Writer) error {
	lastTyped := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastTyped = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatValue(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, labelString(s.Labels, L("le", le)), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text renders WriteText to a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
